package fs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
)

// TestRandomizedAgainstModel drives hundreds of random file-system
// operations against both the volume and an in-memory model, checking
// full equivalence (content, listings, errors) after every step.
func TestRandomizedAgainstModel(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(99, 100))

	type modelFile struct {
		content []byte
	}
	files := map[string]*modelFile{} // path → file
	dirs := map[string]bool{"": true}

	dirList := func() []string {
		var out []string
		for d := range dirs {
			out = append(out, d)
		}
		return out
	}
	randDir := func() string {
		ds := dirList()
		return ds[rng.IntN(len(ds))]
	}
	fileList := func() []string {
		var out []string
		for f := range files {
			out = append(out, f)
		}
		return out
	}

	for stepN := 0; stepN < 400; stepN++ {
		switch op := rng.IntN(10); {
		case op < 3: // write a (possibly new) file
			dir := randDir()
			path := fmt.Sprintf("%s/f%d", dir, rng.IntN(8))
			content := make([]byte, rng.IntN(3*BlockSize))
			for i := range content {
				content[i] = byte(rng.Uint64())
			}
			err := v.WriteFile(ctx, path, content)
			if dirs[path] {
				if !errors.Is(err, ErrIsDir) {
					t.Fatalf("step %d: writing dir path %q: %v", stepN, path, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: WriteFile(%q): %v", stepN, path, err)
			}
			files[path] = &modelFile{content: content}
		case op < 5: // mkdir
			parent := randDir()
			path := fmt.Sprintf("%s/d%d", parent, rng.IntN(5))
			err := v.Mkdir(ctx, path)
			switch {
			case dirs[path]:
				if !errors.Is(err, ErrExist) {
					t.Fatalf("step %d: re-mkdir %q: %v", stepN, path, err)
				}
			case files[path] != nil:
				if !errors.Is(err, ErrExist) {
					t.Fatalf("step %d: mkdir over file %q: %v", stepN, path, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: Mkdir(%q): %v", stepN, path, err)
				}
				dirs[path] = true
			}
		case op < 7: // read a random file
			fl := fileList()
			if len(fl) == 0 {
				continue
			}
			path := fl[rng.IntN(len(fl))]
			data, err := v.ReadFile(ctx, path)
			if err != nil {
				t.Fatalf("step %d: ReadFile(%q): %v", stepN, path, err)
			}
			if !bytes.Equal(data, files[path].content) {
				t.Fatalf("step %d: content mismatch at %q", stepN, path)
			}
		case op < 8: // remove a file
			fl := fileList()
			if len(fl) == 0 {
				continue
			}
			path := fl[rng.IntN(len(fl))]
			if err := v.Remove(ctx, path); err != nil {
				t.Fatalf("step %d: Remove(%q): %v", stepN, path, err)
			}
			delete(files, path)
		case op < 9: // rename a file
			fl := fileList()
			if len(fl) == 0 {
				continue
			}
			oldPath := fl[rng.IntN(len(fl))]
			newPath := fmt.Sprintf("%s/m%d", randDir(), rng.IntN(8))
			err := v.Rename(ctx, oldPath, newPath)
			if files[newPath] != nil || dirs[newPath] {
				if !errors.Is(err, ErrExist) && newPath != oldPath {
					t.Fatalf("step %d: rename onto existing %q: %v", stepN, newPath, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: Rename(%q, %q): %v", stepN, oldPath, newPath, err)
			}
			files[newPath] = files[oldPath]
			delete(files, oldPath)
		default: // occasionally flush
			if err := v.Sync(ctx); err != nil {
				t.Fatalf("step %d: Sync: %v", stepN, err)
			}
		}
	}

	// Final equivalence: every directory listing matches the model.
	for d := range dirs {
		infos, err := v.ReadDir(ctx, "/"+d)
		if err != nil {
			t.Fatalf("final ReadDir(%q): %v", d, err)
		}
		want := map[string]bool{}
		for f := range files {
			if parentOf(f) == d {
				want[baseOf(f)] = true
			}
		}
		for sub := range dirs {
			if sub != "" && parentOf(sub) == d {
				want[baseOf(sub)] = true
			}
		}
		got := map[string]bool{}
		for _, fi := range infos {
			got[fi.Name] = true
		}
		if len(got) != len(want) {
			t.Fatalf("dir %q: got %v, want %v", d, got, want)
		}
		for name := range want {
			if !got[name] {
				t.Fatalf("dir %q missing %q", d, name)
			}
		}
	}
	// And every file's content survives a final sync + fresh reads.
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for path, mf := range files {
		data, err := v.ReadFile(ctx, path)
		if err != nil || !bytes.Equal(data, mf.content) {
			t.Fatalf("final content mismatch at %q: %v", path, err)
		}
	}
}

func parentOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return ""
}

func baseOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
