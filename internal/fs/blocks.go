// Package fs implements D2-FS (§3): a CFS-style file system layered on
// DHT blocks with locality-preserving keys. It maintains four block types
// — a mutable signed root block, directory blocks, file inodes, and data
// blocks — all at most 8 KB. Metadata blocks store the content hashes and
// version hashes of the blocks they point to, so signing the root signs
// the whole tree, and slightly stale readers still fetch consistent old
// versions (§4.2). Small file data is inlined in the metadata block.
// A 30-second write-back cache absorbs temporary files and repeat reads.
package fs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/trace"
	"github.com/defragdht/d2/internal/wire"
)

// BlockSize is the maximum block payload (§3).
const BlockSize = trace.BlockSize

// InlineMax is the largest file stored inline in its metadata block.
const InlineMax = 4096

// Errors mirroring os file-system semantics.
var (
	ErrNotExist  = errors.New("fs: file does not exist")
	ErrExist     = errors.New("fs: file already exists")
	ErrNotDir    = errors.New("fs: not a directory")
	ErrIsDir     = errors.New("fs: is a directory")
	ErrNotEmpty  = errors.New("fs: directory not empty")
	ErrReadOnly  = errors.New("fs: volume opened read-only")
	ErrIntegrity = errors.New("fs: block integrity check failed")
	ErrBadSig    = errors.New("fs: root signature invalid")
)

// Inode is a file or directory's metadata block (block 0 of its key
// range). For directories, the content blocks hold the serialized entry
// list.
type Inode struct {
	IsDir bool
	Size  int64
	// Inline holds the whole content when it fits (≤ InlineMax).
	Inline []byte
	// BlockVers and BlockHashes describe content blocks 1..N: the
	// version hash selecting each block's key and the content hash
	// verifying it.
	BlockVers   []uint32
	BlockHashes [][32]byte
	// NextSlot is the next unused 2-byte directory slot (directories
	// only; §4.2 assigns slots by examining the directory state).
	NextSlot uint16
}

// DirEntry is one name in a directory.
type DirEntry struct {
	Name  string
	IsDir bool
	Size  int64
	// Slot is the 2-byte value this entry consumes in its directory.
	Slot uint16
	// Ver and Hash locate and verify the child's inode block.
	Ver  uint32
	Hash [32]byte
	// Moved marks a renamed entry: the child's blocks keep their original
	// keys (§4.2); OrigSlots/OrigRemainder reconstruct that key prefix.
	Moved         bool
	OrigSlots     []uint16
	OrigRemainder [8]byte
}

// RootBlock is the volume's only mutable block: it embeds the root
// directory's inode and is signed by the publisher, which transitively
// signs all metadata (§3).
type RootBlock struct {
	Name      string
	PublicKey []byte
	Version   uint32
	Root      Inode
	Signature []byte
}

// Metadata blocks carry a hand-rolled binary encoding (internal/wire):
// a one-byte kind magic, a one-byte format version, then the fields in
// fixed order. Unlike gob, the bytes are canonical — identical across
// processes regardless of encode history — so content hashes and block
// keys derived from them agree cluster-wide.
const (
	magicInode   = 'I'
	magicEntries = 'E'
	magicRoot    = 'R'
	blockCodecV1 = 1
)

// appendInode appends an inode's fields (shared by the inode block and
// root block encodings).
func appendInode(b []byte, ino *Inode) []byte {
	b = wire.AppendBool(b, ino.IsDir)
	b = wire.AppendI64(b, ino.Size)
	b = wire.AppendBytes(b, ino.Inline)
	b = wire.AppendU32(b, uint32(len(ino.BlockVers)))
	for _, v := range ino.BlockVers {
		b = wire.AppendU32(b, v)
	}
	b = wire.AppendU32(b, uint32(len(ino.BlockHashes)))
	for i := range ino.BlockHashes {
		b = append(b, ino.BlockHashes[i][:]...)
	}
	return wire.AppendU16(b, ino.NextSlot)
}

// readInodeFields decodes appendInode's output. Byte fields are copied:
// inode structs outlive the block buffer they were parsed from.
func readInodeFields(r *wire.Reader, ino *Inode) {
	ino.IsDir = r.Bool()
	ino.Size = r.I64()
	ino.Inline = r.BytesCopy()
	n := r.Count(4)
	if n > 0 {
		ino.BlockVers = make([]uint32, n)
		for i := range ino.BlockVers {
			ino.BlockVers[i] = r.U32()
		}
	} else {
		ino.BlockVers = nil
	}
	n = r.Count(32)
	if n > 0 {
		ino.BlockHashes = make([][32]byte, n)
		for i := range ino.BlockHashes {
			copy(ino.BlockHashes[i][:], r.Take(32))
		}
	} else {
		ino.BlockHashes = nil
	}
	ino.NextSlot = r.U16()
}

// checkMagic consumes and validates a block's kind and version bytes.
func checkMagic(r *wire.Reader, kind byte) error {
	if got := r.U8(); got != kind && r.Err() == nil {
		return fmt.Errorf("%w: block magic %q (want %q)", wire.ErrMalformed, got, kind)
	}
	if v := r.U8(); v != blockCodecV1 && r.Err() == nil {
		return fmt.Errorf("%w: block codec version %d", wire.ErrMalformed, v)
	}
	return r.Err()
}

// encodeInode serializes a file or directory metadata block.
func encodeInode(ino *Inode) []byte {
	b := make([]byte, 0, 64+len(ino.Inline)+4*len(ino.BlockVers)+32*len(ino.BlockHashes))
	b = append(b, magicInode, blockCodecV1)
	return appendInode(b, ino)
}

// decodeInode parses an inode block.
func decodeInode(data []byte) (Inode, error) {
	var ino Inode
	r := wire.NewReader(data)
	if err := checkMagic(&r, magicInode); err != nil {
		return Inode{}, fmt.Errorf("fs: decode inode: %w", err)
	}
	readInodeFields(&r, &ino)
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		return Inode{}, fmt.Errorf("fs: decode inode: %w", err)
	}
	return ino, nil
}

// encodeEntries serializes a directory's entry list (its content blocks).
func encodeEntries(entries []DirEntry) []byte {
	b := []byte{magicEntries, blockCodecV1}
	b = wire.AppendU32(b, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		b = wire.AppendShortString(b, e.Name)
		b = wire.AppendBool(b, e.IsDir)
		b = wire.AppendI64(b, e.Size)
		b = wire.AppendU16(b, e.Slot)
		b = wire.AppendU32(b, e.Ver)
		b = append(b, e.Hash[:]...)
		b = wire.AppendBool(b, e.Moved)
		b = wire.AppendU16(b, uint16(len(e.OrigSlots)))
		for _, s := range e.OrigSlots {
			b = wire.AppendU16(b, s)
		}
		b = append(b, e.OrigRemainder[:]...)
	}
	return b
}

// minDirEntry is the smallest encoded DirEntry.
const minDirEntry = 2 + 1 + 8 + 2 + 4 + 32 + 1 + 2 + 8

// decodeEntries parses a directory's entry list.
func decodeEntries(content []byte) ([]DirEntry, error) {
	r := wire.NewReader(content)
	if err := checkMagic(&r, magicEntries); err != nil {
		return nil, fmt.Errorf("fs: decode dir entries: %w", err)
	}
	n := r.Count(minDirEntry)
	var entries []DirEntry
	if n > 0 {
		entries = make([]DirEntry, n)
	}
	for i := range entries {
		e := &entries[i]
		e.Name = r.ShortString()
		e.IsDir = r.Bool()
		e.Size = r.I64()
		e.Slot = r.U16()
		e.Ver = r.U32()
		copy(e.Hash[:], r.Take(32))
		e.Moved = r.Bool()
		if ns := int(r.U16()); ns > 0 && r.Err() == nil {
			if ns*2 > r.Len() {
				return nil, fmt.Errorf("fs: decode dir entries: %w: slot count %d", wire.ErrMalformed, ns)
			}
			e.OrigSlots = make([]uint16, ns)
			for j := range e.OrigSlots {
				e.OrigSlots[j] = r.U16()
			}
		}
		copy(e.OrigRemainder[:], r.Take(8))
	}
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fs: decode dir entries: %w", err)
	}
	return entries, nil
}

// encodeRoot serializes the volume's signed root block.
func encodeRoot(root *RootBlock) []byte {
	b := []byte{magicRoot, blockCodecV1}
	b = wire.AppendString(b, root.Name)
	b = wire.AppendBytes(b, root.PublicKey)
	b = wire.AppendU32(b, root.Version)
	b = appendInode(b, &root.Root)
	return wire.AppendBytes(b, root.Signature)
}

// decodeRoot parses a root block.
func decodeRoot(data []byte) (RootBlock, error) {
	var root RootBlock
	r := wire.NewReader(data)
	if err := checkMagic(&r, magicRoot); err != nil {
		return RootBlock{}, fmt.Errorf("fs: decode root block: %w", err)
	}
	root.Name = r.String()
	root.PublicKey = r.BytesCopy()
	root.Version = r.U32()
	readInodeFields(&r, &root.Root)
	root.Signature = r.BytesCopy()
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		return RootBlock{}, fmt.Errorf("fs: decode root block: %w", err)
	}
	return root, nil
}

// contentHash is the integrity hash stored in parent metadata.
func contentHash(data []byte) [32]byte { return sha256.Sum256(data) }

// versionHash derives the 4-byte version field of a block's key from its
// content (§4.2: the last key bytes distinguish versions of an
// overwritten block).
func versionHash(data []byte) uint32 {
	h := contentHash(data)
	v := binary.BigEndian.Uint32(h[:4])
	if v == 0 {
		v = 1 // version 0 is reserved for in-place metadata
	}
	return v
}

// signablePayload serializes the root block without its signature.
//
// The payload is a hand-rolled canonical encoding, NOT gob: gob assigns
// wire type IDs from a process-global counter in first-use order, so the
// same struct encodes to different bytes depending on what else the
// process gob-encoded earlier (e.g. transport RPCs). A signature over a
// gob encoding therefore only verifies in a process whose encode history
// matches the signer's — which is why it must never be signed directly.
func (r *RootBlock) signablePayload() ([]byte, error) {
	var buf bytes.Buffer
	writeBytes := func(b []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	writeU32 := func(v uint32) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], v)
		buf.Write(n[:])
	}
	writeBytes([]byte(r.Name))
	writeBytes(r.PublicKey)
	writeU32(r.Version)
	ino := &r.Root
	if ino.IsDir {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(ino.Size))
	buf.Write(sz[:])
	writeBytes(ino.Inline)
	writeU32(uint32(len(ino.BlockVers)))
	for _, v := range ino.BlockVers {
		writeU32(v)
	}
	writeU32(uint32(len(ino.BlockHashes)))
	for i := range ino.BlockHashes {
		buf.Write(ino.BlockHashes[i][:])
	}
	writeU32(uint32(ino.NextSlot))
	return buf.Bytes(), nil
}

// pathCursor tracks the slot chain while resolving a path, producing the
// child key prefixes the Figure 4 encoding needs. Moved entries (renames)
// freeze the cursor at the child's original encoding so blocks keep their
// keys (§4.2).
type pathCursor struct {
	vol   keys.VolumeID
	slots []uint16
	// deep holds components beyond MaxPathDepth, hashed into the key's
	// remainder field.
	deep []string
	// frozenRemainder carries a moved deep entry's precomputed remainder.
	frozen          bool
	frozenRemainder [8]byte
}

// newCursor starts at the volume root.
func newCursor(vol keys.VolumeID) pathCursor {
	return pathCursor{vol: vol}
}

// child returns the cursor for a child entry with the given name.
func (c pathCursor) child(e *DirEntry, name string) pathCursor {
	if e.Moved {
		out := pathCursor{vol: c.vol, slots: append([]uint16{}, e.OrigSlots...)}
		if e.OrigRemainder != ([8]byte{}) {
			out.frozen = true
			out.frozenRemainder = e.OrigRemainder
		}
		return out
	}
	out := pathCursor{
		vol:             c.vol,
		slots:           append([]uint16{}, c.slots...),
		deep:            append([]string{}, c.deep...),
		frozen:          c.frozen,
		frozenRemainder: c.frozenRemainder,
	}
	if len(out.slots) < keys.MaxPathDepth {
		out.slots = append(out.slots, e.Slot)
	} else {
		out.deep = append(out.deep, name)
	}
	return out
}

// code builds the PathCode at this cursor.
func (c pathCursor) code() keys.PathCode {
	if c.frozen {
		pc := keys.PathCode{Slots: c.slots, Remainder: c.frozenRemainder}
		if len(c.deep) > 0 {
			// Children added under a deep moved directory extend the
			// frozen remainder deterministically.
			h := sha256.New()
			h.Write(pc.Remainder[:])
			for _, d := range c.deep {
				h.Write([]byte(d))
			}
			copy(pc.Remainder[:], h.Sum(nil))
		}
		return pc
	}
	return keys.NewPathCode(c.slots, c.deep)
}

// blockKey returns the key for the given block and version at this path.
func (c pathCursor) blockKey(block uint64, ver uint32) keys.Key {
	return keys.Encode(c.vol, c.code(), block, ver)
}

// origEncoding exports the encoding for rename bookkeeping.
func (c pathCursor) origEncoding() ([]uint16, [8]byte) {
	pc := c.code()
	return pc.Slots, pc.Remainder
}
