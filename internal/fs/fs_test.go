package fs

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"github.com/defragdht/d2/internal/keys"
)

// memService is an in-memory BlockService test double.
type memService struct {
	mu     sync.Mutex
	blocks map[keys.Key][]byte
	puts   int
	gets   int
}

func newMemService() *memService {
	return &memService{blocks: make(map[keys.Key][]byte)}
}

func (m *memService) Put(_ context.Context, k keys.Key, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[k] = append([]byte{}, data...)
	m.puts++
	return nil
}

func (m *memService) Get(_ context.Context, k keys.Key) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	data, ok := m.blocks[k]
	if !ok {
		return nil, ErrNotExist
	}
	return data, nil
}

func (m *memService) Remove(_ context.Context, k keys.Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blocks, k)
	return nil
}

func (m *memService) numBlocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

var testKey = ed25519.NewKeyFromSeed(bytes.Repeat([]byte{7}, ed25519.SeedSize))

func newTestVolume(t *testing.T) (*Volume, *memService) {
	t.Helper()
	svc := newMemService()
	v, err := Create(context.Background(), svc, "testvol", testKey, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v, svc
}

func TestWriteReadSmallFile(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	if err := v.WriteFile(ctx, "/hello.txt", []byte("hi there")); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile(ctx, "/hello.txt")
	if err != nil || string(data) != "hi there" {
		t.Fatalf("ReadFile = (%q, %v)", data, err)
	}
}

func TestWriteReadLargeFile(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(1, 2))
	big := make([]byte, 3*BlockSize+1234)
	for i := range big {
		big[i] = byte(rng.Uint64())
	}
	if err := v.WriteFile(ctx, "/big.bin", big); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(ctx, "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large file corrupted on round trip")
	}
	info, err := v.Stat(ctx, "/big.bin")
	if err != nil || info.Size != int64(len(big)) {
		t.Fatalf("Stat = (%+v, %v)", info, err)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	if err := v.MkdirAll(ctx, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile(ctx, "/a/b/c/deep.txt", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile(ctx, "/a/b/c/deep.txt")
	if err != nil || string(data) != "deep" {
		t.Fatalf("nested read = (%q, %v)", data, err)
	}
	infos, err := v.ReadDir(ctx, "/a/b")
	if err != nil || len(infos) != 1 || infos[0].Name != "c" || !infos[0].IsDir {
		t.Fatalf("ReadDir = (%v, %v)", infos, err)
	}
	if err := v.Mkdir(ctx, "/a"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate Mkdir err = %v", err)
	}
}

func TestOverwriteReplacesVersions(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	big1 := bytes.Repeat([]byte{1}, 2*BlockSize)
	big2 := bytes.Repeat([]byte{2}, 2*BlockSize)
	if err := v.WriteFile(ctx, "/f", big1); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	before := svc.numBlocks()
	if err := v.WriteFile(ctx, "/f", big2); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(ctx, "/f")
	if err != nil || !bytes.Equal(got, big2) {
		t.Fatalf("overwritten content wrong: %v", err)
	}
	// Old versions removed: block count must not grow.
	if after := svc.numBlocks(); after > before {
		t.Errorf("block count grew %d -> %d; old versions leaked", before, after)
	}
}

func TestRemoveFileAndDir(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	if err := v.MkdirAll(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile(ctx, "/d/f", bytes.Repeat([]byte{3}, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove(ctx, "/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("removing non-empty dir: %v", err)
	}
	if err := v.Remove(ctx, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile(ctx, "/d/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("removed file still readable: %v", err)
	}
	if err := v.Remove(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Only the root block should remain.
	if n := svc.numBlocks(); n != 1 {
		t.Errorf("%d blocks remain after removing everything, want 1 (root)", n)
	}
}

func TestRenameKeepsKeysAndContent(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	if err := v.MkdirAll(ctx, "/src"); err != nil {
		t.Fatal(err)
	}
	if err := v.MkdirAll(ctx, "/dst"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte{9}, 2*BlockSize)
	if err := v.WriteFile(ctx, "/src/file", content); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	before := svc.numBlocks()
	if err := v.Rename(ctx, "/src/file", "/dst/moved"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(ctx, "/dst/moved")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("moved file unreadable: %v", err)
	}
	if _, err := v.ReadFile(ctx, "/src/file"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old path still resolves: %v", err)
	}
	// Rename must not migrate data blocks (§4.2): block count unchanged.
	if after := svc.numBlocks(); after != before {
		t.Errorf("blocks %d -> %d across rename; data should not move", before, after)
	}
	// The moved file must remain writable at its new name.
	if err := v.WriteFile(ctx, "/dst/moved", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadFile(ctx, "/dst/moved")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("rewrite after rename = (%q, %v)", got, err)
	}
}

func TestRenameDirectorySubtreeReadable(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	if err := v.MkdirAll(ctx, "/proj/sub"); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile(ctx, "/proj/sub/a.txt", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename(ctx, "/proj", "/archive"); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile(ctx, "/archive/sub/a.txt")
	if err != nil || string(data) != "alpha" {
		t.Fatalf("read under renamed dir = (%q, %v)", data, err)
	}
	// New files under the renamed directory still work.
	if err := v.WriteFile(ctx, "/archive/sub/b.txt", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if data, err := v.ReadFile(ctx, "/archive/sub/b.txt"); err != nil || string(data) != "beta" {
		t.Fatalf("new file under renamed dir = (%q, %v)", data, err)
	}
}

func TestReaderSeesFlushedWrites(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	if err := v.WriteFile(ctx, "/shared.txt", []byte("published")); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	reader, err := Open(ctx, svc, "testvol", testKey.Public().(ed25519.PublicKey), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := reader.ReadFile(ctx, "/shared.txt")
	if err != nil || string(data) != "published" {
		t.Fatalf("reader sees (%q, %v)", data, err)
	}
	// Read-only volumes reject writes.
	if err := reader.WriteFile(ctx, "/x", nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("read-only write err = %v", err)
	}
}

func TestSignatureVerificationRejectsTamper(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	if err := v.WriteFile(ctx, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Corrupt the root block in the store.
	rootKey := v.rootKey()
	svc.mu.Lock()
	data := svc.blocks[rootKey]
	data[len(data)-1] ^= 0xFF
	svc.mu.Unlock()
	_, err := Open(ctx, svc, "testvol", testKey.Public().(ed25519.PublicKey), nil, Options{})
	if err == nil {
		t.Fatal("tampered root accepted")
	}
}

func TestWriteBackBuffersUntilSync(t *testing.T) {
	v, svc := newTestVolume(t)
	ctx := context.Background()
	puts0 := svc.puts
	if err := v.WriteFile(ctx, "/buffered", []byte("lazy")); err != nil {
		t.Fatal(err)
	}
	if svc.puts != puts0 {
		t.Errorf("write hit the DHT before Sync (%d puts)", svc.puts-puts0)
	}
	// The writer still reads its own pending data.
	if data, err := v.ReadFile(ctx, "/buffered"); err != nil || string(data) != "lazy" {
		t.Fatalf("read-your-writes = (%q, %v)", data, err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if svc.puts == puts0 {
		t.Error("Sync flushed nothing")
	}
}

func TestLocalityOfFileKeys(t *testing.T) {
	// All blocks written for files in one directory must fall inside the
	// volume's key range and cluster tightly vs a hashed layout.
	v, svc := newTestVolume(t)
	ctx := context.Background()
	if err := v.MkdirAll(ctx, "/docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := v.WriteFile(ctx, fmt.Sprintf("/docs/f%d", i), bytes.Repeat([]byte{byte(i)}, 2*BlockSize))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	lo, hi := keys.VolumeRange(v.VolumeID())
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for k := range svc.blocks {
		if k.Less(lo) || !k.Less(hi) {
			t.Fatalf("block key %s outside volume range", k.Short())
		}
	}
}

func TestErrorsOnBadPaths(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	if _, err := v.ReadFile(ctx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file: %v", err)
	}
	if err := v.WriteFile(ctx, "/nodir/f", nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing parent: %v", err)
	}
	if err := v.MkdirAll(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile(ctx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("reading a dir: %v", err)
	}
	if err := v.WriteFile(ctx, "/d", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("writing a dir: %v", err)
	}
	if _, err := v.ReadDir(ctx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadDir missing: %v", err)
	}
}

func TestManyFilesAndDirs(t *testing.T) {
	v, _ := newTestVolume(t)
	ctx := context.Background()
	for d := 0; d < 5; d++ {
		dir := fmt.Sprintf("/dir%d", d)
		if err := v.MkdirAll(ctx, dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			path := fmt.Sprintf("%s/file%02d", dir, f)
			if err := v.WriteFile(ctx, path, []byte(path)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 5; d++ {
		infos, err := v.ReadDir(ctx, fmt.Sprintf("/dir%d", d))
		if err != nil || len(infos) != 20 {
			t.Fatalf("dir%d has %d entries (%v)", d, len(infos), err)
		}
	}
	// Spot-check contents.
	data, err := v.ReadFile(ctx, "/dir3/file07")
	if err != nil || string(data) != "/dir3/file07" {
		t.Fatalf("spot check = (%q, %v)", data, err)
	}
}
