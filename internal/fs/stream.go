package fs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// SegmentBlockService is implemented by block services with a streaming
// segment read path (the live client's GetSegment): GetMany semantics
// plus per-key not-found retries tuned for reads racing churn. The
// streaming layer prefers it over plain GetMany.
type SegmentBlockService interface {
	BatchBlockService
	GetSegment(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error)
}

// Streaming parameters. A segment is the prefetch pipeline's unit of
// fan-out: one owner-grouped batch request covering SegmentBlocks
// consecutive content blocks. The window is how many segments may be in
// flight (issued but not yet consumed) ahead of the read cursor, so
// stream memory is bounded by maxStreamWindow*SegmentBytes regardless of
// file size.
const (
	// SegmentBlocks is the content blocks fetched per stream segment.
	SegmentBlocks = 16
	// SegmentBytes is the payload capacity of one segment buffer.
	SegmentBytes = SegmentBlocks * BlockSize
	// minStreamWindow / maxStreamWindow bound the adaptive in-flight
	// window, in segments.
	minStreamWindow = 1
	maxStreamWindow = 16
	// initStreamWindow is the window a fresh stream starts with: wide
	// enough to pipeline the second segment behind the first, narrow
	// enough that a consumer that stops after the head wastes little.
	initStreamWindow = 2
	// streamTrajectoryCap bounds the recorded window trajectory.
	streamTrajectoryCap = 256
)

// streamRamp sizes (in blocks) the first prefetch segments. A full-size
// first segment would put 128 KB on the wire ahead of the first byte,
// making TTFB a whole-segment latency; ramping 1→4→8 blocks delivers
// the first byte after a single-block fetch and reaches full segments
// within ~100 KB, like OS readahead ramps.
var streamRamp = []int{1, 4, 8}

// segBufPool recycles segment payload buffers (SegmentBytes each) so the
// steady-state consume path allocates no fresh block storage per segment.
var segBufPool = sync.Pool{
	New: func() any { return make([]byte, SegmentBytes) },
}

// StreamStats describes a finished (or in-progress) stream, for callers
// that report TTFB and sustained throughput (d2ctl cat -v, d2bench).
type StreamStats struct {
	// TTFB is the delay from ReadStream returning to the first byte
	// handed to the consumer (zero until the first Read).
	TTFB time.Duration
	// Bytes is the total bytes delivered to the consumer so far.
	Bytes int64
	// Elapsed is the time from open to the last Read (or Close).
	Elapsed time.Duration
	// Stalls counts Reads that blocked waiting for an in-flight segment
	// (the prefetch pipeline ran behind the consumer).
	Stalls int
	// WastedBlocks counts blocks fetched but never consumed (the stream
	// was closed before the window drained).
	WastedBlocks int
	// WindowTrajectory records the adaptive window size over the
	// stream's lifetime, starting with the initial window.
	WindowTrajectory []int
}

// MBps returns the sustained consumer throughput in megabytes per second.
func (s StreamStats) MBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) / (1 << 20) / s.Elapsed.Seconds()
}

// StatStream is the concrete interface ReadStream's io.ReadCloser also
// satisfies: streaming callers can type-assert to read TTFB/throughput.
type StatStream interface {
	io.ReadCloser
	Stats() StreamStats
}

// streamSegment is one in-flight prefetch unit. The fetcher fills buf
// and closes done; the consumer copies out of buf and recycles it.
type streamSegment struct {
	buf    []byte // pooled, cap SegmentBytes
	n      int    // valid bytes in buf
	blocks int    // content blocks covered
	head   bool   // fetched inline by the first Read, outside the window
	err    error
	done   chan struct{}
}

// streamReader streams a file's content blocks through a windowed
// prefetch pipeline: a prefetcher walks the inode's contiguous content
// key range issuing up to `window` segment fetches ahead of the read
// cursor, with in-order reassembly and backpressure (tokens return only
// when the consumer finishes a segment, so a stalled consumer freezes
// the pipeline with at most maxStreamWindow segments of memory held).
type streamReader struct {
	v      *Volume
	ctx    context.Context
	cancel context.CancelFunc
	cur    pathCursor
	ino    Inode
	sp     *tracing.ActiveSpan

	segCh  chan *streamSegment
	tokens chan struct{}
	wg     sync.WaitGroup
	ready  atomic.Int64 // segments completed but not yet consumed

	// Consumer state, guarded by rmu (Read/Stats/Close may race; Close
	// first cancels ctx so a blocked Read wakes before cleanup).
	rmu         sync.Mutex
	headBlocks  int  // head segment size, fetched inline by the first Read
	started     bool // prefetch pipeline launched (by the first Read)
	seg         *streamSegment
	segOff      int
	window      int
	debt        int // shrink decisions waiting to swallow a returned token
	readyStreak int
	opened      time.Time
	ttfb        time.Duration
	bytes       int64
	elapsed     time.Duration
	stalls      int
	waste       int
	traj        []int
	closed      bool
	err         error
}

// ReadStream opens path for sequential streaming. The returned reader
// pipelines segment prefetches ahead of the consumer (see streamReader)
// and also implements StatStream. Close abandons outstanding segments
// without leaking goroutines or pooled buffers; it is safe to call while
// a Read is blocked.
func (v *Volume) ReadStream(ctx context.Context, path string) (io.ReadCloser, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return nil, ErrIsDir
	}
	// The span stays open for the stream's lifetime: stream.segment
	// fetches appear under it, and Close ends it.
	sctx, sp := tracing.ChildSpan(ctx, "fs.read_stream")
	if sp != nil {
		sp.Annotate("path", path)
	}
	cur, ino, err := v.resolveFile(sctx, comps)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	v.metrics.streamOpens.Inc()
	if len(ino.BlockVers) == 0 {
		// Empty or inline content: no pipeline needed.
		sp.End()
		return &inlineStream{data: ino.Inline, opened: time.Now(), v: v}, nil
	}
	sctx, cancel := context.WithCancel(sctx)
	r := &streamReader{
		v:      v,
		ctx:    sctx,
		cancel: cancel,
		cur:    cur,
		ino:    ino,
		sp:     sp,
		segCh:  make(chan *streamSegment, maxStreamWindow),
		tokens: make(chan struct{}, maxStreamWindow),
		window: initStreamWindow,
		opened: time.Now(),
		traj:   []int{initStreamWindow},
	}
	// The first ramp segment is fetched synchronously by the first Read:
	// goroutine handoffs would sit directly on the first byte's critical
	// path, and a single-block fetch is cheaper inline than pipelined.
	r.headBlocks = streamRamp[0]
	if r.headBlocks > len(ino.BlockVers) {
		r.headBlocks = len(ino.BlockVers)
	}
	v.metrics.streamWindow.Observe(initStreamWindow)
	for i := 0; i < initStreamWindow; i++ {
		r.tokens <- struct{}{}
	}
	// The prefetcher starts from the first Read (after the inline head
	// fetch): window segments issued at open would compete with the head
	// block for the wire and push TTFB toward a full-segment latency.
	return r, nil
}

// resolveFile walks to the file at comps and returns its cursor and
// verified inode.
func (v *Volume) resolveFile(ctx context.Context, comps []string) (pathCursor, Inode, error) {
	root, err := v.currentRoot(ctx)
	if err != nil {
		return pathCursor{}, Inode{}, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	chain, err := v.walk(ctx, root, comps[:len(comps)-1])
	if err != nil {
		return pathCursor{}, Inode{}, err
	}
	parent := &chain[len(chain)-1]
	name := comps[len(comps)-1]
	idx := findEntry(parent.entries, name)
	if idx < 0 {
		return pathCursor{}, Inode{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	e := &parent.entries[idx]
	if e.IsDir {
		return pathCursor{}, Inode{}, fmt.Errorf("%w: %s", ErrIsDir, name)
	}
	cur := parent.cur.child(e, name)
	ino, err := v.readInode(ctx, cur, e.Ver, e.Hash)
	if err != nil {
		return pathCursor{}, Inode{}, err
	}
	return cur, ino, nil
}

// prefetch is the pipeline driver: it walks segments in order, acquiring
// one window token per issue (tokens return when the consumer finishes a
// segment — that is the backpressure), spawns the fetch, and queues the
// segment for in-order consumption. segCh's capacity is maxStreamWindow,
// and at most that many tokens exist, so the send never blocks.
func (r *streamReader) prefetch() {
	defer r.wg.Done()
	defer close(r.segCh)
	nblocks := len(r.ino.BlockVers)
	// Segment 0 (the ramp head) is the first Read's inline fetch; the
	// pipeline covers everything after it.
	for start, idx := r.headBlocks, 1; start < nblocks; idx++ {
		select {
		case <-r.ctx.Done():
			return
		case <-r.tokens:
		}
		blocks := SegmentBlocks
		if idx < len(streamRamp) {
			blocks = streamRamp[idx]
		}
		end := start + blocks
		if end > nblocks {
			end = nblocks
		}
		seg := &streamSegment{
			buf:    segBufPool.Get().([]byte),
			blocks: end - start,
			done:   make(chan struct{}),
		}
		r.v.metrics.streamSegments.Inc()
		r.wg.Add(1)
		go r.fetchSegment(seg, start, end)
		r.segCh <- seg
		start = end
	}
}

// fetchSegment fills one segment, tracing it as a stream.segment child
// of the stream's span.
func (r *streamReader) fetchSegment(seg *streamSegment, start, end int) {
	defer r.wg.Done()
	defer close(seg.done)
	sctx, sp := tracing.ChildSpan(r.ctx, "stream.segment")
	if sp != nil {
		sp.Annotate("first_block", start+1, "blocks", end-start)
	}
	seg.err = r.v.fillSegment(sctx, r.cur, &r.ino, seg, start, end)
	r.ready.Add(1)
	sp.EndErr(seg.err)
}

// fillSegment fetches content blocks [start, end) into seg.buf, in
// order. Pending writes and the read cache are consulted (read-your-
// writes), but fetched blocks deliberately do NOT enter the read cache:
// a multi-GB stream must not evict the hot metadata working set (§3's
// cache exists for repeat reads, not one-pass scans).
func (v *Volume) fillSegment(ctx context.Context, cur pathCursor, ino *Inode, seg *streamSegment, start, end int) error {
	n := end - start
	var (
		need []keys.Key
		pos  []int // block index (file-wide) per needed key
	)
	fill := func(i int, data []byte) error {
		if contentHash(data) != ino.BlockHashes[i] {
			return fmt.Errorf("%w: block %d", ErrIntegrity, i+1)
		}
		copy(seg.buf[(i-start)*BlockSize:], data)
		return nil
	}
	for i := start; i < end; i++ {
		k := cur.blockKey(uint64(i+1), ino.BlockVers[i])
		if data, ok := v.cachedRead(k); ok {
			v.metrics.cacheHits.Inc()
			if err := fill(i, data); err != nil {
				return err
			}
			continue
		}
		need = append(need, k)
		pos = append(pos, i)
	}
	if len(need) > 0 {
		var (
			got map[keys.Key][]byte
			err error
		)
		switch svc := v.svc.(type) {
		case SegmentBlockService:
			got, err = svc.GetSegment(ctx, need)
		case BatchBlockService:
			got, err = svc.GetMany(ctx, need)
		}
		if err != nil {
			return err
		}
		for j, k := range need {
			data, ok := got[k]
			if !ok {
				// Batch miss (stale owner, mid-churn move): the per-key
				// path walks replicas and retries not-found answers.
				data, err = v.svc.Get(ctx, k)
				if err != nil {
					return fmt.Errorf("fs: stream block %d: %w", pos[j]+1, err)
				}
			}
			v.metrics.blocksRead.Inc()
			v.metrics.bytesRead.Add(uint64(len(data)))
			if err := fill(pos[j], data); err != nil {
				return err
			}
		}
	}
	// Segment byte count: full blocks except possibly the file's last.
	seg.n = n * BlockSize
	if end == len(ino.BlockVers) {
		seg.n = int(ino.Size) - start*BlockSize
	}
	return nil
}

// Read hands out the next in-order bytes, waiting on the front segment
// when the pipeline runs behind and adapting the window: a wait means
// the consumer outpaces the prefetcher (grow), a fully-ready window
// means the consumer is the bottleneck (shrink after a streak).
func (r *streamReader) Read(p []byte) (int, error) {
	r.rmu.Lock()
	defer r.rmu.Unlock()
	if r.err != nil {
		return 0, r.err
	}
	if r.closed {
		return 0, fmt.Errorf("fs: stream: read after Close")
	}
	if r.headBlocks > 0 && r.seg == nil && r.bytes == 0 {
		// First Read: fetch the ramp head synchronously — no pipeline
		// handoff between the caller and its first byte.
		seg := &streamSegment{
			buf:    segBufPool.Get().([]byte),
			blocks: r.headBlocks,
			head:   true,
			done:   make(chan struct{}),
		}
		close(seg.done)
		r.v.metrics.streamSegments.Inc()
		sctx, sp := tracing.ChildSpan(r.ctx, "stream.segment")
		if sp != nil {
			sp.Annotate("first_block", 1, "blocks", r.headBlocks)
		}
		err := r.v.fillSegment(sctx, r.cur, &r.ino, seg, 0, r.headBlocks)
		sp.EndErr(err)
		if err != nil {
			r.recycleLocked(seg)
			return 0, r.fail(err)
		}
		r.seg, r.segOff = seg, 0
		r.started = true
		r.wg.Add(1)
		go r.prefetch()
	}
	for r.seg == nil || r.segOff == r.seg.n {
		if r.seg != nil {
			wasHead := r.seg.head
			if !wasHead {
				// A window segment was fully consumed. Judge the
				// pipeline now, before the token return launches the
				// next fetch (which would always read as not-ready): if
				// every other in-flight slot is already fetched, the
				// consumer is the bottleneck, and a sustained streak
				// shrinks the window.
				if int(r.ready.Load()) >= r.window-1 {
					r.readyStreak++
					if r.readyStreak >= 2 {
						r.setWindow(r.window - 1)
						r.readyStreak = 0
					}
				} else {
					r.readyStreak = 0
				}
			}
			r.recycleLocked(r.seg)
			r.seg = nil
			if !wasHead {
				// The head segment holds no window token to give back.
				r.returnToken()
			}
		}
		var (
			seg *streamSegment
			ok  bool
		)
		select {
		case seg, ok = <-r.segCh:
		case <-r.ctx.Done():
			return 0, r.fail(r.ctx.Err())
		}
		if !ok {
			if err := r.ctx.Err(); err != nil {
				return 0, r.fail(err)
			}
			r.elapsed = time.Since(r.opened)
			r.err = io.EOF
			r.finishMetrics()
			return 0, io.EOF
		}
		select {
		case <-seg.done:
		default:
			// The pipeline is behind the consumer: count the stall and
			// widen the window before blocking.
			r.stalls++
			r.v.metrics.streamStalls.Inc()
			r.setWindow(r.window + 1)
			r.readyStreak = 0
			select {
			case <-seg.done:
			case <-r.ctx.Done():
				// The segment buffer is still owned by the fetcher until
				// done closes; park it on r.seg so Close (which waits for
				// every fetcher first) can recycle it.
				r.seg, r.segOff = seg, 0
				return 0, r.fail(r.ctx.Err())
			}
		}
		r.ready.Add(-1)
		if seg.err != nil {
			err := seg.err
			r.recycleLocked(seg)
			return 0, r.fail(err)
		}
		r.seg, r.segOff = seg, 0
	}
	n := copy(p, r.seg.buf[r.segOff:r.seg.n])
	r.segOff += n
	if r.bytes == 0 && n > 0 {
		r.ttfb = time.Since(r.opened)
		r.v.metrics.streamTTFB.Observe(int64(r.ttfb))
	}
	r.bytes += int64(n)
	r.elapsed = time.Since(r.opened)
	r.v.metrics.streamBytes.Add(uint64(n))
	return n, nil
}

// setWindow clamps and applies a new window size, adjusting the token
// supply: growth releases an extra token (or cancels a pending debt),
// shrink swallows a free token now or defers it to the next return.
func (r *streamReader) setWindow(w int) {
	if w < minStreamWindow {
		w = minStreamWindow
	}
	if w > maxStreamWindow {
		w = maxStreamWindow
	}
	if w == r.window {
		return
	}
	if w > r.window {
		for i := 0; i < w-r.window; i++ {
			if r.debt > 0 {
				r.debt--
				continue
			}
			select {
			case r.tokens <- struct{}{}:
			default:
			}
		}
	} else {
		for i := 0; i < r.window-w; i++ {
			select {
			case <-r.tokens:
			default:
				r.debt++
			}
		}
	}
	r.window = w
	if len(r.traj) < streamTrajectoryCap {
		r.traj = append(r.traj, w)
	}
	r.v.metrics.streamWindow.Observe(int64(w))
}

// returnToken gives the consumed segment's window slot back to the
// prefetcher, unless a pending shrink swallows it.
func (r *streamReader) returnToken() {
	if r.debt > 0 {
		r.debt--
		return
	}
	select {
	case r.tokens <- struct{}{}:
	default:
	}
}

// recycleLocked returns a segment's buffer to the pool.
func (r *streamReader) recycleLocked(seg *streamSegment) {
	if seg.buf != nil {
		segBufPool.Put(seg.buf[:SegmentBytes])
		seg.buf = nil
	}
}

// fail records a sticky read error.
func (r *streamReader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	r.elapsed = time.Since(r.opened)
	return r.err
}

// Close cancels the pipeline, waits for every goroutine, recycles all
// pooled segment buffers, and records the stream's metrics. Safe to call
// more than once and concurrently with a blocked Read.
func (r *streamReader) Close() error {
	r.cancel()
	r.rmu.Lock()
	if r.closed {
		r.rmu.Unlock()
		return nil
	}
	r.closed = true
	// Reads check closed at entry, so started is final once we hold the
	// lock — and if the first Read never ran, nothing closes segCh and
	// there is no pipeline to drain.
	started := r.started
	r.rmu.Unlock()
	r.wg.Wait()
	r.rmu.Lock()
	defer r.rmu.Unlock()
	if started {
		// Drain abandoned segments: fetchers have all returned, so every
		// segment's done channel is closed and its buffer is ours.
		for seg := range r.segCh {
			<-seg.done
			if seg.err == nil {
				r.waste += seg.blocks
			}
			r.recycleLocked(seg)
		}
	}
	if r.seg != nil {
		r.recycleLocked(r.seg)
		r.seg = nil
	}
	if r.elapsed == 0 {
		r.elapsed = time.Since(r.opened)
	}
	r.finishMetrics()
	if r.err != nil && r.err != io.EOF {
		r.sp.EndErr(r.err)
	} else {
		r.sp.End()
	}
	r.sp = nil
	return nil
}

// finishMetrics records the whole-stream aggregates (idempotent: callers
// ensure it runs once via closed/err state; waste is only known here).
func (r *streamReader) finishMetrics() {
	m := r.v.metrics
	if r.waste > 0 {
		m.streamWaste.Add(uint64(r.waste))
	}
	if r.elapsed > 0 && r.bytes > 0 {
		m.streamBps.Set(int64(float64(r.bytes) / r.elapsed.Seconds()))
	}
}

// Stats snapshots the stream's performance counters.
func (r *streamReader) Stats() StreamStats {
	r.rmu.Lock()
	defer r.rmu.Unlock()
	traj := make([]int, len(r.traj))
	copy(traj, r.traj)
	return StreamStats{
		TTFB:             r.ttfb,
		Bytes:            r.bytes,
		Elapsed:          r.elapsed,
		Stalls:           r.stalls,
		WastedBlocks:     r.waste,
		WindowTrajectory: traj,
	}
}

// inlineStream serves empty and inline files (content already in the
// metadata block) through the same StatStream interface.
type inlineStream struct {
	v      *Volume
	data   []byte
	off    int
	opened time.Time
	ttfb   time.Duration
	closed bool
}

func (s *inlineStream) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:])
	if s.off == 0 && n > 0 {
		s.ttfb = time.Since(s.opened)
		s.v.metrics.streamTTFB.Observe(int64(s.ttfb))
		s.v.metrics.streamBytes.Add(uint64(len(s.data)))
	}
	s.off += n
	return n, nil
}

func (s *inlineStream) Close() error { s.closed = true; return nil }

func (s *inlineStream) Stats() StreamStats {
	return StreamStats{
		TTFB:             s.ttfb,
		Bytes:            int64(s.off),
		Elapsed:          time.Since(s.opened),
		WindowTrajectory: []int{0},
	}
}
