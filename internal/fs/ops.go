package fs

import (
	"context"
	"fmt"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

// ensureWriter guards mutating operations.
func (v *Volume) ensureWriter() error {
	if v.priv == nil {
		return ErrReadOnly
	}
	return nil
}

// WriteFile creates or overwrites the file at path with data, updating
// the metadata chain up to the signed root.
func (v *Volume) WriteFile(ctx context.Context, path string, data []byte) error {
	if err := v.ensureWriter(); err != nil {
		return err
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return fmt.Errorf("%w: empty path", ErrIsDir)
	}
	ctx, sp := tracing.ChildSpan(ctx, "fs.write_file")
	if sp != nil {
		sp.Annotate("path", path, "bytes", len(data))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	err := v.writeFileLocked(ctx, comps, data)
	sp.EndErr(err)
	return err
}

func (v *Volume) writeFileLocked(ctx context.Context, comps []string, data []byte) error {
	root := v.root
	dirComps, name := comps[:len(comps)-1], comps[len(comps)-1]
	chain, err := v.walkLocked(ctx, root, dirComps)
	if err != nil {
		return err
	}
	parent := &chain[len(chain)-1]
	idx := findEntry(parent.entries, name)

	var cur pathCursor
	var oldIno *Inode
	var oldVer uint32
	if idx >= 0 {
		e := &parent.entries[idx]
		if e.IsDir {
			return fmt.Errorf("%w: %s", ErrIsDir, name)
		}
		cur = parent.cur.child(e, name)
		ino, err := v.readInode(ctx, cur, e.Ver, e.Hash)
		if err != nil {
			return err
		}
		oldIno = &ino
		oldVer = e.Ver
	} else {
		// New file: allocate the next unused slot in this directory
		// (§4.2).
		slot := parent.ino.NextSlot
		if slot == 0 {
			slot = 1
		}
		parent.ino.NextSlot = slot + 1
		parent.entries = append(parent.entries, DirEntry{Name: name, Slot: slot})
		idx = len(parent.entries) - 1
		cur = parent.cur.child(&parent.entries[idx], name)
	}

	var ino Inode
	v.writeContentUnlocked(cur, data, oldIno, &ino)
	ver, hash, err := v.writeInodeUnlocked(cur, &ino, oldVer)
	if err != nil {
		return err
	}
	e := &parent.entries[idx]
	e.Ver, e.Hash, e.Size = ver, hash, ino.Size
	return v.commitChainLocked(ctx, root, chain)
}

// ReadFile returns the file's full content.
func (v *Volume) ReadFile(ctx context.Context, path string) ([]byte, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return nil, ErrIsDir
	}
	ctx, sp := tracing.ChildSpan(ctx, "fs.read_file")
	if sp != nil {
		sp.Annotate("path", path)
	}
	data, err := v.readFile(ctx, path, comps)
	sp.EndErr(err)
	return data, err
}

// readFile is ReadFile without the tracing shell.
func (v *Volume) readFile(ctx context.Context, path string, comps []string) ([]byte, error) {
	root, err := v.currentRoot(ctx)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	chain, err := v.walkLocked(ctx, root, comps[:len(comps)-1])
	if err != nil {
		return nil, err
	}
	parent := &chain[len(chain)-1]
	idx := findEntry(parent.entries, comps[len(comps)-1])
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	e := &parent.entries[idx]
	if e.IsDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	cur := parent.cur.child(e, e.Name)
	ino, err := v.readInode(ctx, cur, e.Ver, e.Hash)
	if err != nil {
		return nil, err
	}
	return v.readContent(ctx, cur, &ino)
}

// Mkdir creates a directory (parents must exist).
func (v *Volume) Mkdir(ctx context.Context, path string) error {
	if err := v.ensureWriter(); err != nil {
		return err
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return ErrExist
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	root := v.root
	dirComps, name := comps[:len(comps)-1], comps[len(comps)-1]
	chain, err := v.walkLocked(ctx, root, dirComps)
	if err != nil {
		return err
	}
	parent := &chain[len(chain)-1]
	if findEntry(parent.entries, name) >= 0 {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	slot := parent.ino.NextSlot
	if slot == 0 {
		slot = 1
	}
	parent.ino.NextSlot = slot + 1
	entry := DirEntry{Name: name, IsDir: true, Slot: slot}
	parent.entries = append(parent.entries, entry)
	idx := len(parent.entries) - 1
	cur := parent.cur.child(&parent.entries[idx], name)

	ino := Inode{IsDir: true, NextSlot: 1}
	ver, hash, err := v.writeInodeUnlocked(cur, &ino, 0)
	if err != nil {
		return err
	}
	parent.entries[idx].Ver = ver
	parent.entries[idx].Hash = hash
	return v.commitChainLocked(ctx, root, chain)
}

// MkdirAll creates a directory and any missing parents.
func (v *Volume) MkdirAll(ctx context.Context, path string) error {
	comps := splitPath(path)
	for i := 1; i <= len(comps); i++ {
		err := v.Mkdir(ctx, "/"+joinPath(comps[:i]))
		if err != nil && !isExist(err) {
			return err
		}
	}
	return nil
}

func joinPath(comps []string) string {
	out := ""
	for i, c := range comps {
		if i > 0 {
			out += "/"
		}
		out += c
	}
	return out
}

func isExist(err error) bool {
	for err != nil {
		if err == ErrExist {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ReadDir lists a directory.
func (v *Volume) ReadDir(ctx context.Context, path string) ([]FileInfo, error) {
	root, err := v.currentRoot(ctx)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	chain, err := v.walkLocked(ctx, root, splitPath(path))
	if err != nil {
		return nil, err
	}
	dir := &chain[len(chain)-1]
	out := make([]FileInfo, 0, len(dir.entries))
	for _, e := range dir.entries {
		out = append(out, FileInfo{Name: e.Name, Size: e.Size, IsDir: e.IsDir})
	}
	return out, nil
}

// Stat describes the file or directory at path.
func (v *Volume) Stat(ctx context.Context, path string) (FileInfo, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return FileInfo{Name: "/", IsDir: true}, nil
	}
	root, err := v.currentRoot(ctx)
	if err != nil {
		return FileInfo{}, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	chain, err := v.walkLocked(ctx, root, comps[:len(comps)-1])
	if err != nil {
		return FileInfo{}, err
	}
	parent := &chain[len(chain)-1]
	idx := findEntry(parent.entries, comps[len(comps)-1])
	if idx < 0 {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	e := parent.entries[idx]
	return FileInfo{Name: e.Name, Size: e.Size, IsDir: e.IsDir}, nil
}

// Remove deletes a file or an empty directory, queueing removal of its
// blocks (§3: quick removal keeps deleted data from fragmenting live
// data).
func (v *Volume) Remove(ctx context.Context, path string) error {
	if err := v.ensureWriter(); err != nil {
		return err
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return ErrIsDir
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	root := v.root
	chain, err := v.walkLocked(ctx, root, comps[:len(comps)-1])
	if err != nil {
		return err
	}
	parent := &chain[len(chain)-1]
	name := comps[len(comps)-1]
	idx := findEntry(parent.entries, name)
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	e := parent.entries[idx]
	cur := parent.cur.child(&e, name)
	ino, err := v.readInode(ctx, cur, e.Ver, e.Hash)
	if err != nil {
		return err
	}
	if e.IsDir {
		entries, err := v.loadEntries(ctx, cur, &ino)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
	}
	// Queue removal of the inode and all content blocks.
	v.removeBlock(cur.blockKey(0, e.Ver))
	for i, ver := range ino.BlockVers {
		v.removeBlock(cur.blockKey(uint64(i+1), ver))
	}
	parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
	return v.commitChainLocked(ctx, root, chain)
}

// Rename moves a file or directory. The moved object's blocks keep their
// original keys; the new parent entry records the original encoding
// (§4.2: renamed files simply point to their original location).
func (v *Volume) Rename(ctx context.Context, oldPath, newPath string) error {
	if err := v.ensureWriter(); err != nil {
		return err
	}
	oldComps := splitPath(oldPath)
	newComps := splitPath(newPath)
	if len(oldComps) == 0 || len(newComps) == 0 {
		return ErrIsDir
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	root := v.root

	// Validate the destination before touching the source, so a failed
	// rename never unlinks anything.
	newName := newComps[len(newComps)-1]
	preChain, err := v.walkLocked(ctx, root, newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	if findEntry(preChain[len(preChain)-1].entries, newName) >= 0 {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}

	oldChain, err := v.walkLocked(ctx, root, oldComps[:len(oldComps)-1])
	if err != nil {
		return err
	}
	oldParent := &oldChain[len(oldChain)-1]
	oldName := oldComps[len(oldComps)-1]
	oldIdx := findEntry(oldParent.entries, oldName)
	if oldIdx < 0 {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	moved := oldParent.entries[oldIdx]
	movedCur := oldParent.cur.child(&moved, oldName)

	// Remove from the old parent and commit that chain first.
	oldParent.entries = append(oldParent.entries[:oldIdx], oldParent.entries[oldIdx+1:]...)
	if err := v.commitChainLocked(ctx, root, oldChain); err != nil {
		return err
	}

	// Insert into the new parent with the original key encoding frozen.
	newChain, err := v.walkLocked(ctx, root, newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	newParent := &newChain[len(newChain)-1]
	slots, remainder := movedCur.origEncoding()
	entry := DirEntry{
		Name:          newName,
		IsDir:         moved.IsDir,
		Size:          moved.Size,
		Slot:          0, // moved entries consume no slot; keys stay put
		Ver:           moved.Ver,
		Hash:          moved.Hash,
		Moved:         true,
		OrigSlots:     slots,
		OrigRemainder: remainder,
	}
	newParent.entries = append(newParent.entries, entry)
	return v.commitChainLocked(ctx, root, newChain)
}

// walkLocked and friends assume v.mu is held; the exported read methods
// take the lock to serialize against the single writer in this process.
func (v *Volume) walkLocked(ctx context.Context, root *RootBlock, comps []string) ([]step, error) {
	return v.walk(ctx, root, comps)
}

func (v *Volume) writeContentUnlocked(cur pathCursor, data []byte, old, ino *Inode) {
	v.writeContent(cur, data, old, ino)
}

func (v *Volume) writeInodeUnlocked(cur pathCursor, ino *Inode, oldVer uint32) (uint32, [32]byte, error) {
	return v.writeInode(cur, ino, oldVer)
}

func (v *Volume) commitChainLocked(ctx context.Context, root *RootBlock, chain []step) error {
	return v.commitChain(ctx, root, chain)
}

// FlushAfter exposes the write-back delay for callers pacing Sync calls.
func (v *Volume) FlushAfter() time.Duration { return v.opts.WriteBackDelay }
