package fs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkStreamConsume measures the steady-state consume path over an
// in-memory block service: open, stream 8 MB through the windowed
// pipeline, close. The interesting number is B/op — pooled segment
// buffers must recycle, so allocated bytes per pass stay far below the
// 8 MB streamed (scripts/verify.sh stream gates on it; a broken pool
// shows up as ≥ one segment buffer per segment, the full file size).
func BenchmarkStreamConsume(b *testing.B) {
	ctx := context.Background()
	svc := newBatchMemService()
	v, err := Create(ctx, svc, "streamvol", testKey, Options{})
	if err != nil {
		b.Fatal(err)
	}
	want := randBytes(64 * SegmentBytes)
	if err := v.WriteFile(ctx, "/bench.bin", want); err != nil {
		b.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		b.Fatal(err)
	}
	v.dropReadCacheForTest()
	b.SetBytes(int64(len(want)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := v.ReadStream(ctx, "/bench.bin")
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil || n != int64(len(want)) {
			b.Fatalf("stream = (%d, %v)", n, err)
		}
	}
}
