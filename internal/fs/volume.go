package fs

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/placement"
)

// BlockService is the DHT interface D2-FS runs on: the put/get/remove of
// D2-Store (§3). Both the live cluster client and in-memory test doubles
// satisfy it.
type BlockService interface {
	Put(ctx context.Context, k keys.Key, data []byte) error
	Get(ctx context.Context, k keys.Key) ([]byte, error)
	Remove(ctx context.Context, k keys.Key) error
}

// BatchBlockService is implemented by block services with a batched read
// path (the live client's GetMany). Multi-block file reads use it to
// fetch a file's whole key run in ~one RPC per owner instead of one per
// block; plain BlockServices keep the sequential path.
type BatchBlockService interface {
	BlockService
	GetMany(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error)
}

// Options tunes a volume.
type Options struct {
	// WriteBackDelay is the write-back/read cache window (default 30 s,
	// §3). Writes become visible to other readers on Sync or after the
	// background flusher runs (when started with AutoFlush).
	WriteBackDelay time.Duration
	// AutoFlush starts a background flusher; Close stops it. Without it,
	// call Sync explicitly.
	AutoFlush bool
	// Metrics receives the volume's block-IO counters; nil creates a
	// fresh registry (the live client passes its own so one scrape covers
	// fs and DHT activity together).
	Metrics *obs.Registry
	// ReadCacheBytes caps the read cache's retained bytes (default
	// 32 MiB). Streaming reads bypass the cache entirely, so a multi-GB
	// stream cannot evict the hot metadata working set; this cap bounds
	// what the whole-file read path can accumulate.
	ReadCacheBytes int64
}

func (o *Options) applyDefaults() {
	if o.WriteBackDelay == 0 {
		o.WriteBackDelay = 30 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.New()
	}
	if o.ReadCacheBytes == 0 {
		o.ReadCacheBytes = 32 << 20
	}
}

// Volume is one D2-FS file-system volume: single writer, many readers
// (§3). All methods are safe for concurrent use within the process.
type Volume struct {
	svc   BlockService
	volID keys.VolumeID
	name  string
	pub   ed25519.PublicKey
	priv  ed25519.PrivateKey // nil for read-only volumes
	opts  Options

	// mu serializes namespace operations (single-writer volumes, §3).
	mu   sync.Mutex
	root *RootBlock // writer: authoritative copy

	// cmu guards the block caches, separately from mu so operations
	// holding mu can perform block IO.
	cmu     sync.Mutex
	pending map[keys.Key][]byte
	removes []keys.Key
	rcache  map[keys.Key]cachedBlock
	// rcacheBytes tracks the read cache's retained payload, enforced
	// against opts.ReadCacheBytes by pruneCacheLocked.
	rcacheBytes int64

	stop chan struct{}
	wg   sync.WaitGroup

	metrics volumeMetrics
}

// volumeMetrics counts the volume's block IO against the DHT and its
// write-back caches, plus the streaming pipeline's health counters.
type volumeMetrics struct {
	blocksRead     *obs.Counter // blocks fetched from the DHT
	blocksWritten  *obs.Counter // blocks buffered for write-back
	bytesRead      *obs.Counter
	bytesWritten   *obs.Counter
	cacheHits      *obs.Counter // reads served by pending writes or read cache
	cacheEvictions *obs.Counter // read-cache entries evicted by the byte cap
	removes        *obs.Counter // delayed removals queued (§3)
	syncs          *obs.Counter // Sync rounds run

	// Streaming (ReadStream) pipeline metrics.
	streamOpens    *obs.Counter   // streams opened
	streamSegments *obs.Counter   // prefetch segments issued
	streamBytes    *obs.Counter   // bytes delivered to stream consumers
	streamStalls   *obs.Counter   // reads that blocked on an in-flight segment
	streamWaste    *obs.Counter   // prefetched blocks never consumed
	streamTTFB     *obs.Histogram // open-to-first-byte latency
	streamWindow   *obs.Histogram // adaptive window sizes observed
	streamBps      *obs.Gauge     // last stream's sustained bytes/s
}

func newVolumeMetrics(reg *obs.Registry) volumeMetrics {
	return volumeMetrics{
		blocksRead:     reg.Counter("d2_fs_blocks_read_total"),
		blocksWritten:  reg.Counter("d2_fs_blocks_written_total"),
		bytesRead:      reg.Counter(`d2_fs_bytes_total{dir="read"}`),
		bytesWritten:   reg.Counter(`d2_fs_bytes_total{dir="written"}`),
		cacheHits:      reg.Counter("d2_fs_cache_hits_total"),
		cacheEvictions: reg.Counter("d2_fs_cache_evictions_total"),
		removes:        reg.Counter("d2_fs_removes_total"),
		syncs:          reg.Counter("d2_fs_syncs_total"),
		streamOpens:    reg.Counter("d2_stream_opens_total"),
		streamSegments: reg.Counter("d2_stream_segments_total"),
		streamBytes:    reg.Counter("d2_stream_bytes_total"),
		streamStalls:   reg.Counter("d2_stream_stalls_total"),
		streamWaste:    reg.Counter("d2_stream_prefetch_waste_total"),
		streamTTFB:     reg.Histogram("d2_stream_ttfb_ns", obs.LatencyBuckets),
		streamWindow:   reg.Histogram("d2_stream_window", obs.CountBuckets),
		streamBps:      reg.Gauge("d2_stream_throughput_bps"),
	}
}

type cachedBlock struct {
	data []byte
	at   time.Time
}

// VolumeID returns the volume's 20-byte identifier.
func (v *Volume) VolumeID() keys.VolumeID { return v.volID }

// Keyer returns a placement keyer addressing this volume's path space
// directly (used by trace replay and benchmarks; regular access goes
// through the Volume API).
func (v *Volume) Keyer() placement.Keyer { return placement.NewNamespace(v.volID) }

// rootKey returns the volume's root block key (block 0, version 0 of the
// empty path — the only in-place-updated block, §3).
func (v *Volume) rootKey() keys.Key {
	return keys.Encode(v.volID, keys.PathCode{}, 0, 0)
}

// Create writes a fresh volume with an empty root directory and returns a
// writable handle. The volume ID derives from the publisher key and name.
func Create(ctx context.Context, svc BlockService, name string, priv ed25519.PrivateKey, opts Options) (*Volume, error) {
	opts.applyDefaults()
	pub := priv.Public().(ed25519.PublicKey)
	v := &Volume{
		svc:     svc,
		volID:   keys.NewVolumeID(pub, name),
		name:    name,
		pub:     pub,
		priv:    priv,
		opts:    opts,
		pending: make(map[keys.Key][]byte),
		rcache:  make(map[keys.Key]cachedBlock),
		stop:    make(chan struct{}),
		metrics: newVolumeMetrics(opts.Metrics),
	}
	v.root = &RootBlock{
		Name:      name,
		PublicKey: pub,
		Version:   1,
		Root:      Inode{IsDir: true, NextSlot: 1},
	}
	if err := v.signRoot(); err != nil {
		return nil, err
	}
	data := encodeRoot(v.root)
	if err := svc.Put(ctx, v.rootKey(), data); err != nil {
		return nil, fmt.Errorf("fs: create volume %q: %w", name, err)
	}
	v.startFlusher()
	return v, nil
}

// Open attaches to an existing volume. priv may be nil for read-only
// access; the root signature is verified against pub.
func Open(ctx context.Context, svc BlockService, name string, pub ed25519.PublicKey, priv ed25519.PrivateKey, opts Options) (*Volume, error) {
	opts.applyDefaults()
	v := &Volume{
		svc:     svc,
		volID:   keys.NewVolumeID(pub, name),
		name:    name,
		pub:     pub,
		priv:    priv,
		opts:    opts,
		pending: make(map[keys.Key][]byte),
		rcache:  make(map[keys.Key]cachedBlock),
		stop:    make(chan struct{}),
		metrics: newVolumeMetrics(opts.Metrics),
	}
	root, err := v.fetchRoot(ctx)
	if err != nil {
		return nil, err
	}
	if priv != nil {
		v.root = root
	}
	v.startFlusher()
	return v, nil
}

func (v *Volume) startFlusher() {
	if !v.opts.AutoFlush {
		return
	}
	v.wg.Add(1)
	go func() {
		defer v.wg.Done()
		t := time.NewTicker(v.opts.WriteBackDelay)
		defer t.Stop()
		for {
			select {
			case <-v.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_ = v.Sync(ctx)
				cancel()
			}
		}
	}()
}

// Close flushes pending writes and stops the background flusher.
func (v *Volume) Close(ctx context.Context) error {
	select {
	case <-v.stop:
	default:
		close(v.stop)
	}
	v.wg.Wait()
	return v.Sync(ctx)
}

// signRoot re-signs the root block (writer only).
func (v *Volume) signRoot() error {
	payload, err := v.root.signablePayload()
	if err != nil {
		return err
	}
	v.root.Signature = ed25519.Sign(v.priv, payload)
	return nil
}

// fetchRoot reads and verifies the root block from the DHT.
func (v *Volume) fetchRoot(ctx context.Context) (*RootBlock, error) {
	data, err := v.readBlock(ctx, v.rootKey())
	if err != nil {
		return nil, fmt.Errorf("fs: open volume %q: %w", v.name, err)
	}
	root, err := decodeRoot(data)
	if err != nil {
		return nil, err
	}
	payload, err := root.signablePayload()
	if err != nil {
		return nil, err
	}
	if !ed25519.Verify(v.pub, payload, root.Signature) {
		return nil, ErrBadSig
	}
	return &root, nil
}

// currentRoot returns the writer's root or a freshly fetched one.
func (v *Volume) currentRoot(ctx context.Context) (*RootBlock, error) {
	v.mu.Lock()
	r := v.root
	v.mu.Unlock()
	if r != nil {
		return r, nil
	}
	return v.fetchRoot(ctx)
}

// --- block IO with write-back and read caching ---

// readBlock fetches a block: pending writes win, then the 30 s read
// cache, then the DHT.
func (v *Volume) readBlock(ctx context.Context, k keys.Key) ([]byte, error) {
	if data, ok := v.cachedRead(k); ok {
		v.metrics.cacheHits.Inc()
		return data, nil
	}
	data, err := v.svc.Get(ctx, k)
	if err != nil {
		return nil, err
	}
	v.metrics.blocksRead.Inc()
	v.metrics.bytesRead.Add(uint64(len(data)))
	v.cacheRead(k, data)
	return data, nil
}

// cachedRead checks pending writes and the read cache for a block.
func (v *Volume) cachedRead(k keys.Key) ([]byte, bool) {
	v.cmu.Lock()
	defer v.cmu.Unlock()
	if data, ok := v.pending[k]; ok {
		return data, true
	}
	if c, ok := v.rcache[k]; ok && time.Since(c.at) < v.opts.WriteBackDelay {
		return c.data, true
	}
	return nil, false
}

// cacheRead records a fetched block in the read cache.
func (v *Volume) cacheRead(k keys.Key, data []byte) {
	v.cmu.Lock()
	defer v.cmu.Unlock()
	v.cacheStoreLocked(k, data)
	if len(v.rcache) > 4096 || v.rcacheBytes > v.opts.ReadCacheBytes {
		v.pruneCacheLocked()
	}
}

// cacheStoreLocked inserts or replaces a read-cache entry, keeping the
// byte accounting exact across replacements.
func (v *Volume) cacheStoreLocked(k keys.Key, data []byte) {
	if prev, ok := v.rcache[k]; ok {
		v.rcacheBytes -= int64(len(prev.data))
	}
	v.rcache[k] = cachedBlock{data: data, at: time.Now()}
	v.rcacheBytes += int64(len(data))
}

// pruneCacheLocked evicts expired read-cache entries, then — if the
// cache still exceeds its byte cap — the oldest live entries until it
// fits in 3/4 of the cap (hysteresis so a hot cache is not pruned on
// every insert).
func (v *Volume) pruneCacheLocked() {
	cutoff := time.Now().Add(-v.opts.WriteBackDelay)
	for k, c := range v.rcache {
		if c.at.Before(cutoff) {
			v.rcacheBytes -= int64(len(c.data))
			v.metrics.cacheEvictions.Inc()
			delete(v.rcache, k)
		}
	}
	if v.rcacheBytes <= v.opts.ReadCacheBytes {
		return
	}
	type aged struct {
		k  keys.Key
		at time.Time
	}
	order := make([]aged, 0, len(v.rcache))
	for k, c := range v.rcache {
		order = append(order, aged{k: k, at: c.at})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].at.Before(order[j].at) })
	target := v.opts.ReadCacheBytes * 3 / 4
	for _, a := range order {
		if v.rcacheBytes <= target {
			break
		}
		v.rcacheBytes -= int64(len(v.rcache[a.k].data))
		v.metrics.cacheEvictions.Inc()
		delete(v.rcache, a.k)
	}
}

// writeBlock buffers a block write.
func (v *Volume) writeBlock(k keys.Key, data []byte) {
	v.metrics.blocksWritten.Inc()
	v.metrics.bytesWritten.Add(uint64(len(data)))
	v.cmu.Lock()
	defer v.cmu.Unlock()
	v.pending[k] = data
	v.cacheStoreLocked(k, data)
}

// removeBlock queues a delayed removal (issued at the Sync after the
// write-back window, so stale readers finish first, §3).
func (v *Volume) removeBlock(k keys.Key) {
	v.metrics.removes.Inc()
	v.cmu.Lock()
	defer v.cmu.Unlock()
	v.removes = append(v.removes, k)
}

// Sync flushes buffered writes (in key order, which keeps contiguous
// ranges contiguous on the wire) and issues queued removals.
func (v *Volume) Sync(ctx context.Context) error {
	v.metrics.syncs.Inc()
	v.cmu.Lock()
	batch := make([]keys.Key, 0, len(v.pending))
	for k := range v.pending {
		batch = append(batch, k)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Less(batch[j]) })
	data := make(map[keys.Key][]byte, len(batch))
	for _, k := range batch {
		data[k] = v.pending[k]
	}
	removes := v.removes
	v.pending = make(map[keys.Key][]byte)
	v.removes = nil
	v.cmu.Unlock()

	for _, k := range batch {
		if err := v.svc.Put(ctx, k, data[k]); err != nil {
			return fmt.Errorf("fs: sync put %s: %w", k.Short(), err)
		}
	}
	for _, k := range removes {
		if err := v.svc.Remove(ctx, k); err != nil {
			return fmt.Errorf("fs: sync remove %s: %w", k.Short(), err)
		}
	}
	return nil
}

// --- path resolution ---

// splitPath normalizes a slash path into components.
func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// step is one directory on a resolution chain.
type step struct {
	cur     pathCursor
	ino     Inode
	entries []DirEntry
	// entryIdx is this directory's index within its parent's entries
	// (-1 for the root).
	entryIdx int
	name     string
}

// walk resolves the directory chain for the given components, loading
// entries at every level. It returns the chain of directories; comps must
// all be directories.
func (v *Volume) walk(ctx context.Context, root *RootBlock, comps []string) ([]step, error) {
	cur := newCursor(v.volID)
	chain := []step{{cur: cur, ino: root.Root, entryIdx: -1}}
	entries, err := v.loadEntries(ctx, cur, &root.Root)
	if err != nil {
		return nil, err
	}
	chain[0].entries = entries
	for _, name := range comps {
		last := &chain[len(chain)-1]
		idx := findEntry(last.entries, name)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		e := &last.entries[idx]
		if !e.IsDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
		}
		childCur := last.cur.child(e, name)
		ino, err := v.readInode(ctx, childCur, e.Ver, e.Hash)
		if err != nil {
			return nil, err
		}
		childEntries, err := v.loadEntries(ctx, childCur, &ino)
		if err != nil {
			return nil, err
		}
		chain = append(chain, step{
			cur: childCur, ino: ino, entries: childEntries, entryIdx: idx, name: name,
		})
	}
	return chain, nil
}

func findEntry(entries []DirEntry, name string) int {
	for i := range entries {
		if entries[i].Name == name {
			return i
		}
	}
	return -1
}

// readInode fetches and verifies an inode block.
func (v *Volume) readInode(ctx context.Context, cur pathCursor, ver uint32, hash [32]byte) (Inode, error) {
	data, err := v.readBlock(ctx, cur.blockKey(0, ver))
	if err != nil {
		return Inode{}, err
	}
	if contentHash(data) != hash {
		return Inode{}, fmt.Errorf("%w: inode", ErrIntegrity)
	}
	return decodeInode(data)
}

// readContent returns a file or directory's full content bytes. Under a
// trace the assembly is one fs.assemble span: block count in, integrity-
// checked bytes out.
func (v *Volume) readContent(ctx context.Context, cur pathCursor, ino *Inode) ([]byte, error) {
	if ino.Size == 0 {
		return nil, nil
	}
	if len(ino.Inline) > 0 || len(ino.BlockVers) == 0 {
		return ino.Inline, nil
	}
	ctx, sp := tracing.ChildSpan(ctx, "fs.assemble")
	if sp != nil {
		sp.Annotate("blocks", len(ino.BlockVers), "bytes", ino.Size)
	}
	out, err := v.assembleBlocks(ctx, cur, ino)
	sp.EndErr(err)
	return out, err
}

// assembleBlocks fetches and verifies a file's content blocks.
func (v *Volume) assembleBlocks(ctx context.Context, cur pathCursor, ino *Inode) ([]byte, error) {
	blks := make([][]byte, len(ino.BlockVers))
	if batch, ok := v.svc.(BatchBlockService); ok && len(ino.BlockVers) > 1 {
		if err := v.fetchBlocksBatched(ctx, batch, cur, ino, blks); err != nil {
			return nil, err
		}
	} else {
		for i, ver := range ino.BlockVers {
			data, err := v.readBlock(ctx, cur.blockKey(uint64(i+1), ver))
			if err != nil {
				return nil, err
			}
			blks[i] = data
		}
	}
	out := make([]byte, 0, ino.Size)
	for i, data := range blks {
		if contentHash(data) != ino.BlockHashes[i] {
			return nil, fmt.Errorf("%w: block %d", ErrIntegrity, i+1)
		}
		out = append(out, data...)
	}
	return out, nil
}

// fetchBlocksBatched fills blks with the file's data blocks, fetching
// cache misses through the service's batched read path. A file's blocks
// form one contiguous key run (§4), so the batch usually costs one RPC
// per owner; blocks the batch could not resolve retry on the sequential
// path (which walks replicas) before failing.
func (v *Volume) fetchBlocksBatched(ctx context.Context, batch BatchBlockService, cur pathCursor, ino *Inode, blks [][]byte) error {
	var missing []keys.Key
	at := make(map[keys.Key]int, len(ino.BlockVers))
	for i, ver := range ino.BlockVers {
		k := cur.blockKey(uint64(i+1), ver)
		if data, ok := v.cachedRead(k); ok {
			blks[i] = data
			continue
		}
		at[k] = i
		missing = append(missing, k)
	}
	if len(missing) == 0 {
		return nil
	}
	got, err := batch.GetMany(ctx, missing)
	if err != nil {
		return err
	}
	for k, i := range at {
		data, ok := got[k]
		if !ok {
			data, err = v.readBlock(ctx, k)
			if err != nil {
				return err
			}
			blks[i] = data
			continue
		}
		v.cacheRead(k, data)
		blks[i] = data
	}
	return nil
}

// loadEntries decodes a directory's entry list.
func (v *Volume) loadEntries(ctx context.Context, cur pathCursor, ino *Inode) ([]DirEntry, error) {
	if !ino.IsDir {
		return nil, ErrNotDir
	}
	content, err := v.readContent(ctx, cur, ino)
	if err != nil {
		return nil, err
	}
	if len(content) == 0 {
		return nil, nil
	}
	return decodeEntries(content)
}

// writeContent writes content blocks for a file or directory, queuing
// removals of the previous version's blocks, and fills the inode's
// content fields.
func (v *Volume) writeContent(cur pathCursor, data []byte, old *Inode, ino *Inode) {
	// Queue removal of superseded content blocks.
	if old != nil {
		for i, ver := range old.BlockVers {
			v.removeBlock(cur.blockKey(uint64(i+1), ver))
		}
	}
	ino.Size = int64(len(data))
	ino.Inline = nil
	ino.BlockVers = nil
	ino.BlockHashes = nil
	if len(data) <= InlineMax {
		// Small content lives in the metadata block itself (§3).
		ino.Inline = append([]byte{}, data...)
		return
	}
	for off := 0; off < len(data); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		blk := data[off:end]
		ver := versionHash(blk)
		ino.BlockVers = append(ino.BlockVers, ver)
		ino.BlockHashes = append(ino.BlockHashes, contentHash(blk))
		v.writeBlock(cur.blockKey(uint64(off/BlockSize+1), ver), blk)
	}
}

// writeInode serializes an inode, queues the block write, removes the old
// version, and returns the new version hash and content hash.
func (v *Volume) writeInode(cur pathCursor, ino *Inode, oldVer uint32) (uint32, [32]byte, error) {
	data := encodeInode(ino)
	ver := versionHash(data)
	if oldVer != 0 && oldVer != ver {
		v.removeBlock(cur.blockKey(0, oldVer))
	}
	v.writeBlock(cur.blockKey(0, ver), data)
	return ver, contentHash(data), nil
}

// commitChain writes the modified directory chain bottom-up: each dir's
// entries are re-encoded, its inode rewritten, and its parent's entry
// updated; the root block is finally re-signed and written in place (§3:
// every write updates all metadata blocks along the path to the root).
func (v *Volume) commitChain(ctx context.Context, root *RootBlock, chain []step) error {
	for i := len(chain) - 1; i >= 1; i-- {
		s := &chain[i]
		content := encodeEntries(s.entries)
		oldIno := s.ino
		v.writeContent(s.cur, content, &oldIno, &s.ino)
		oldVer := chain[i-1].entries[s.entryIdx].Ver
		ver, hash, err := v.writeInode(s.cur, &s.ino, oldVer)
		if err != nil {
			return err
		}
		parentEntry := &chain[i-1].entries[s.entryIdx]
		parentEntry.Ver = ver
		parentEntry.Hash = hash
		parentEntry.Size = s.ino.Size
	}
	// Root directory: entries embed in the root block's inode content.
	rootStep := &chain[0]
	content := encodeEntries(rootStep.entries)
	oldRoot := root.Root
	v.writeContent(rootStep.cur, content, &oldRoot, &rootStep.ino)
	root.Root = rootStep.ino
	root.Version++
	if err := v.signRoot(); err != nil {
		return err
	}
	v.writeBlock(v.rootKey(), encodeRoot(root))
	return nil
}
