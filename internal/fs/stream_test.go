package fs

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

// batchMemService wraps memService with a batched read path plus fault
// and latency injection for pipeline tests.
type batchMemService struct {
	*memService
	mu        sync.Mutex
	delay     time.Duration // per-GetMany latency
	dropEvery int           // omit every n-th requested key (batch miss)
	gate      chan struct{} // when set, GetMany blocks until closed
	batchGets int
	served    int // blocks returned via GetMany
}

func newBatchMemService() *batchMemService {
	return &batchMemService{memService: newMemService()}
}

func (s *batchMemService) GetMany(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error) {
	s.mu.Lock()
	s.batchGets++
	delay, drop, gate := s.delay, s.dropEvery, s.gate
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make(map[keys.Key][]byte, len(ks))
	for i, k := range ks {
		if drop > 0 && (i+1)%drop == 0 {
			continue
		}
		data, err := s.memService.Get(ctx, k)
		if err != nil {
			continue // GetMany semantics: absent keys are omitted
		}
		out[k] = data
	}
	s.mu.Lock()
	s.served += len(out)
	s.mu.Unlock()
	return out, nil
}

func (s *batchMemService) servedBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func newStreamVolume(t *testing.T) (*Volume, *batchMemService) {
	t.Helper()
	svc := newBatchMemService()
	v, err := Create(context.Background(), svc, "streamvol", testKey, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v, svc
}

func randBytes(n int) []byte {
	rng := rand.New(rand.NewPCG(7, 9))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

func TestStreamRoundTripSizes(t *testing.T) {
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	sizes := []int{0, 100, InlineMax, InlineMax + 1, BlockSize,
		3*BlockSize + 1234, SegmentBytes, 2*SegmentBytes + BlockSize/2}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("size=%d", n), func(t *testing.T) {
			path := fmt.Sprintf("/f%d", n)
			want := randBytes(n)
			if err := v.WriteFile(ctx, path, want); err != nil {
				t.Fatal(err)
			}
			r, err := v.ReadStream(ctx, path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("size %d: stream content mismatch (got %d bytes)", n, len(got))
			}
			st := r.(StatStream).Stats()
			if st.Bytes != int64(n) {
				t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, n)
			}
			if n > 0 && st.TTFB <= 0 {
				t.Errorf("Stats.TTFB = %v, want > 0", st.TTFB)
			}
		})
	}
}

func TestWriteStreamRoundTrip(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(5*BlockSize + 777)
	w, err := v.WriteStream(ctx, "/ingest.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Odd chunk sizes exercise the block-boundary accumulation.
	for off := 0; off < len(want); {
		n := 3000
		if off+n > len(want) {
			n = len(want) - off
		}
		if _, err := w.Write(want[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(ctx, "/ingest.bin")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadFile after WriteStream: %v (got %d bytes, want %d)", err, len(got), len(want))
	}
	// Overwriting via WriteStream must not leak the old version's blocks.
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	before := svc.numBlocks()
	w, err = v.WriteStream(ctx, "/ingest.bin")
	if err != nil {
		t.Fatal(err)
	}
	want2 := randBytes(2 * BlockSize)
	if _, err := w.Write(want2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadFile(ctx, "/ingest.bin")
	if err != nil || !bytes.Equal(got, want2) {
		t.Fatalf("overwrite round trip: %v", err)
	}
	if after := svc.numBlocks(); after > before {
		t.Errorf("blocks grew %d -> %d after smaller overwrite; old versions leaked", before, after)
	}
	// Small streams inline like WriteFile does.
	w, err = v.WriteStream(ctx, "/tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("inline me")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadFile(ctx, "/tiny")
	if err != nil || string(got) != "inline me" {
		t.Fatalf("tiny stream write = (%q, %v)", got, err)
	}
}

func TestStreamReadYourWrites(t *testing.T) {
	// Unsynced content (still in the write-back cache) must stream.
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(3 * BlockSize)
	if err := v.WriteFile(ctx, "/pending.bin", want); err != nil {
		t.Fatal(err)
	}
	r, err := v.ReadStream(ctx, "/pending.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("stream of pending write: %v", err)
	}
}

func TestStreamBatchMissFallsBackPerKey(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(3 * SegmentBytes)
	if err := v.WriteFile(ctx, "/holey.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	svc.mu.Lock()
	svc.dropEvery = 4 // batch path loses every 4th key
	svc.mu.Unlock()
	r, err := v.ReadStream(ctx, "/holey.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("stream with batch misses: %v", err)
	}
}

// dropReadCacheForTest empties the read cache so a test observes real
// service fetches.
func (v *Volume) dropReadCacheForTest() {
	v.cmu.Lock()
	defer v.cmu.Unlock()
	v.rcache = make(map[keys.Key]cachedBlock)
	v.rcacheBytes = 0
}

func TestStreamBackpressureBoundsPrefetch(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	const nblocks = 40 * SegmentBlocks // 40 segments, far beyond the window
	want := randBytes(nblocks * BlockSize)
	if err := v.WriteFile(ctx, "/big.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	r, err := v.ReadStream(ctx, "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Consume one segment, then stall. The pipeline may finish what is
	// in flight but must not run ahead more than the window allows.
	buf := make([]byte, SegmentBytes)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want[:SegmentBytes]) {
		t.Fatal("first segment content mismatch")
	}
	time.Sleep(200 * time.Millisecond) // let any runaway prefetch happen
	fetched := svc.servedBlocks()
	// Hard bound: consumed segment + a full window of prefetch, in blocks.
	limit := (1 + maxStreamWindow) * SegmentBlocks
	if fetched > limit {
		t.Fatalf("prefetch ran ahead: %d blocks fetched with consumer stalled (limit %d)", fetched, limit)
	}
	// And memory for the stall is bounded by the window, not file size.
	time.Sleep(100 * time.Millisecond)
	if again := svc.servedBlocks(); again != fetched {
		t.Fatalf("prefetch still advancing while stalled: %d -> %d", fetched, again)
	}
}

func TestStreamCtxCancelLeaksNothing(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(20 * SegmentBytes)
	if err := v.WriteFile(ctx, "/cancel.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		gate := make(chan struct{})
		svc.mu.Lock()
		svc.gate = gate // fetches hang until released
		svc.mu.Unlock()
		cctx, cancel := context.WithCancel(ctx)
		r, err := v.ReadStream(cctx, "/cancel.bin")
		if err != nil {
			t.Fatal(err)
		}
		readDone := make(chan error, 1)
		go func() {
			buf := make([]byte, 1)
			_, err := r.Read(buf) // blocks: the gate holds every fetch
			readDone <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel() // mid-stream cancellation with reads in flight
		if err := <-readDone; !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked Read after cancel = %v, want context.Canceled", err)
		}
		close(gate)
		if err := r.Close(); err != nil {
			t.Fatalf("Close after cancel: %v", err)
		}
		// A second Close is a no-op.
		if err := r.Close(); err != nil {
			t.Fatalf("double Close: %v", err)
		}
		svc.mu.Lock()
		svc.gate = nil
		svc.mu.Unlock()
	}
	// All pipeline goroutines must exit (give the runtime a moment).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel/close cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStreamEarlyCloseCountsWaste(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(10 * SegmentBytes)
	if err := v.WriteFile(ctx, "/waste.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	r, err := v.ReadStream(ctx, "/waste.bin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	// The pipeline starts with the first Read; wait until it has fetched
	// at least one segment past the head so the close abandons real work.
	deadline := time.Now().Add(5 * time.Second)
	for svc.servedBlocks() <= 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing one block into a 10-segment file abandons prefetched
	// segments; they must be accounted, not leaked.
	st := r.(StatStream).Stats()
	if st.WastedBlocks == 0 {
		t.Error("early close reported zero wasted blocks; prefetched segments unaccounted")
	}
	if v.metrics.streamWaste.Value() == 0 {
		t.Error("d2_stream_prefetch_waste_total not incremented")
	}
}

func TestStreamAdaptiveWindowGrowsUnderStall(t *testing.T) {
	v, svc := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(30 * SegmentBytes)
	if err := v.WriteFile(ctx, "/slow.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	svc.mu.Lock()
	svc.delay = 5 * time.Millisecond // network slower than the consumer
	svc.mu.Unlock()
	r, err := v.ReadStream(ctx, "/slow.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	st := r.(StatStream).Stats()
	if st.Stalls == 0 {
		t.Error("fast consumer over slow service reported no stalls")
	}
	max := 0
	for _, w := range st.WindowTrajectory {
		if w > max {
			max = w
		}
	}
	if max <= initStreamWindow {
		t.Errorf("window never grew under sustained stalls: trajectory %v", st.WindowTrajectory)
	}
}

func TestStreamAdaptiveWindowShrinksOnSlowConsumer(t *testing.T) {
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	want := randBytes(20 * SegmentBytes)
	if err := v.WriteFile(ctx, "/fastsvc.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	r, err := v.ReadStream(ctx, "/fastsvc.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, SegmentBytes)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond) // consumer slower than the service
	}
	st := r.(StatStream).Stats()
	min := maxStreamWindow + 1
	for _, w := range st.WindowTrajectory {
		if w < min {
			min = w
		}
	}
	if min > minStreamWindow {
		t.Errorf("window never shrank with a slow consumer: trajectory %v", st.WindowTrajectory)
	}
}

func TestStreamBypassesReadCache(t *testing.T) {
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	// File bigger than the configured cache cap.
	v.opts.ReadCacheBytes = 4 * BlockSize
	want := randBytes(4 * SegmentBytes)
	if err := v.WriteFile(ctx, "/bypass.bin", want); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	r, err := v.ReadStream(ctx, "/bypass.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	v.cmu.Lock()
	cached := v.rcacheBytes
	entries := len(v.rcache)
	v.cmu.Unlock()
	// Only the metadata walked on open may be cached; the streamed
	// content blocks must not be.
	if cached > 2*BlockSize {
		t.Errorf("stream populated the read cache: %d bytes in %d entries", cached, entries)
	}
}

func TestReadCacheByteCap(t *testing.T) {
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	v.opts.ReadCacheBytes = 8 * BlockSize
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/hot%d", i)
		if err := v.WriteFile(ctx, path, randBytes(2*BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	v.dropReadCacheForTest()
	// Whole-file reads of 32 blocks through an 8-block cap.
	for i := 0; i < 8; i++ {
		if _, err := v.ReadFile(ctx, fmt.Sprintf("/hot%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	v.cmu.Lock()
	cached := v.rcacheBytes
	v.cmu.Unlock()
	if cached > v.opts.ReadCacheBytes {
		t.Errorf("read cache over cap: %d > %d", cached, v.opts.ReadCacheBytes)
	}
	if v.metrics.cacheEvictions.Value() == 0 {
		t.Error("no evictions recorded while exceeding the cap")
	}
}

func TestStreamErrorsSurface(t *testing.T) {
	v, _ := newStreamVolume(t)
	ctx := context.Background()
	if _, err := v.ReadStream(ctx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file: %v", err)
	}
	if err := v.MkdirAll(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadStream(ctx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("streaming a dir: %v", err)
	}
	if _, err := v.ReadStream(ctx, "/"); !errors.Is(err, ErrIsDir) {
		t.Errorf("streaming root: %v", err)
	}
	if _, err := v.WriteStream(ctx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("stream-writing a dir: %v", err)
	}
	// Read-only volumes reject stream writes.
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(ctx, v.svc, "streamvol", testKey.Public().(ed25519.PublicKey), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteStream(ctx, "/x"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("read-only WriteStream err = %v", err)
	}
}
