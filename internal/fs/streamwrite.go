package fs

import (
	"context"
	"fmt"
	"io"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// WriteStream opens path for streaming ingest and returns an
// io.WriteCloser. The file is created (or truncated) immediately — the
// open commits an empty inode so the entry and its key range exist — and
// each full data block is written straight to the DHT as it fills, so
// writer memory stays O(BlockSize) regardless of file size. Close
// commits the final inode (size, block versions, content hashes) up the
// metadata chain; until then readers see the empty file. An abandoned
// writer (no Close) leaves the file empty.
func (v *Volume) WriteStream(ctx context.Context, path string) (io.WriteCloser, error) {
	if err := v.ensureWriter(); err != nil {
		return nil, err
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return nil, fmt.Errorf("%w: empty path", ErrIsDir)
	}
	sctx, sp := tracing.ChildSpan(ctx, "fs.write_stream")
	if sp != nil {
		sp.Annotate("path", path)
	}
	v.mu.Lock()
	err := v.writeFileLocked(sctx, comps, nil)
	v.mu.Unlock()
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	cur, _, err := v.resolveFile(sctx, comps)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	return &streamWriter{
		v:     v,
		ctx:   sctx,
		sp:    sp,
		comps: comps,
		cur:   cur,
		buf:   make([]byte, 0, BlockSize),
	}, nil
}

// streamWriter accumulates BlockSize chunks and writes each full block
// directly to the DHT under the file's next content key.
type streamWriter struct {
	v     *Volume
	ctx   context.Context
	sp    *tracing.ActiveSpan
	comps []string
	cur   pathCursor

	buf    []byte // partial tail block, cap BlockSize
	ino    Inode  // accumulates Size/BlockVers/BlockHashes
	closed bool
	err    error
}

func (w *streamWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("fs: stream: write after Close")
	}
	total := 0
	for len(p) > 0 {
		room := BlockSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == BlockSize {
			if err := w.flushBlock(); err != nil {
				w.err = err
				return total, err
			}
		}
	}
	w.ino.Size += int64(total)
	return total, nil
}

// flushBlock ships the buffered block to the DHT. The data is copied:
// stores on the in-process transport retain the put slice by reference,
// so the writer's scratch buffer cannot be reused for the payload.
func (w *streamWriter) flushBlock() error {
	data := append(make([]byte, 0, len(w.buf)), w.buf...)
	ver := versionHash(data)
	idx := uint64(len(w.ino.BlockVers) + 1)
	if err := w.v.svc.Put(w.ctx, w.cur.blockKey(idx, ver), data); err != nil {
		return fmt.Errorf("fs: stream put block %d: %w", idx, err)
	}
	w.v.metrics.blocksWritten.Inc()
	w.v.metrics.bytesWritten.Add(uint64(len(data)))
	w.ino.BlockVers = append(w.ino.BlockVers, ver)
	w.ino.BlockHashes = append(w.ino.BlockHashes, contentHash(data))
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the tail and commits the file's metadata chain. Like
// WriteFile, the metadata lands in the write-back cache; call Sync to
// publish to other readers immediately.
func (w *streamWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.sp.EndErr(w.err)
		return w.err
	}
	if len(w.ino.BlockVers) == 0 && len(w.buf) <= InlineMax {
		// Whole content fits inline in the metadata block (§3).
		w.ino.Inline = append([]byte(nil), w.buf...)
	} else if len(w.buf) > 0 {
		if err := w.flushBlock(); err != nil {
			w.err = err
			w.sp.EndErr(err)
			return err
		}
	}
	w.err = w.commit()
	if w.err != nil {
		w.sp.EndErr(w.err)
		return w.err
	}
	w.sp.End()
	return nil
}

// commit rewrites the file's inode with the streamed content layout and
// updates the metadata chain to the signed root.
func (w *streamWriter) commit() error {
	v := w.v
	v.mu.Lock()
	defer v.mu.Unlock()
	root := v.root
	dirComps, name := w.comps[:len(w.comps)-1], w.comps[len(w.comps)-1]
	chain, err := v.walk(w.ctx, root, dirComps)
	if err != nil {
		return err
	}
	parent := &chain[len(chain)-1]
	idx := findEntry(parent.entries, name)
	if idx < 0 {
		return fmt.Errorf("%w: %s (removed during stream write)", ErrNotExist, name)
	}
	e := &parent.entries[idx]
	if e.IsDir {
		return fmt.Errorf("%w: %s", ErrIsDir, name)
	}
	ver, hash, err := v.writeInode(w.cur, &w.ino, e.Ver)
	if err != nil {
		return err
	}
	e.Ver, e.Hash, e.Size = ver, hash, w.ino.Size
	return v.commitChain(w.ctx, root, chain)
}
