package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TreeNode is one span with its resolved children, for rendering an
// assembled trace.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
}

// Assemble builds span trees from a flat span set (typically one trace's
// spans gathered across nodes). Spans whose parent is absent — the true
// root, or subtrees whose upstream spans were lost to ring wraparound —
// become top-level trees. Trees and children are ordered by start time.
func Assemble(spans []Span) []*TreeNode {
	byID := make(map[uint64]*TreeNode, len(spans))
	ordered := make([]*TreeNode, 0, len(spans))
	sorted := append([]Span(nil), spans...)
	sortSpans(sorted)
	for _, sp := range sorted {
		if _, dup := byID[sp.ID]; dup {
			continue // same span fetched from two sources
		}
		n := &TreeNode{Span: sp}
		byID[sp.ID] = n
		ordered = append(ordered, n)
	}
	var roots []*TreeNode
	for _, n := range ordered {
		if p, ok := byID[n.Span.Parent]; ok && n.Span.Parent != n.Span.ID {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	return roots
}

// NodeCount returns the number of distinct node labels in a span set —
// how many processes a trace touched.
func NodeCount(spans []Span) int {
	seen := make(map[string]struct{}, 4)
	for _, sp := range spans {
		if sp.Node != "" {
			seen[sp.Node] = struct{}{}
		}
	}
	return len(seen)
}

// WriteTree renders assembled span trees as indented text with per-span
// timing offsets relative to the earliest span: the d2ctl trace and
// /tracez?trace= view.
func WriteTree(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start < base {
			base = sp.Start
		}
	}
	for _, root := range Assemble(spans) {
		if err := writeTreeNode(w, root, base, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeTreeNode(w io.Writer, n *TreeNode, base int64, depth int) error {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-28s +%-9s %-9s", indent, n.Span.Name,
		time.Duration(n.Span.Start-base).Round(time.Microsecond),
		time.Duration(n.Span.Dur).Round(time.Microsecond))
	if n.Span.Node != "" {
		line += " @" + n.Span.Node
	}
	if n.Span.Attrs != "" {
		line += "  [" + n.Span.Attrs + "]"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeTreeNode(w, c, base, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the spans as a JSON array (the machine-readable
// /tracez export).
func WriteJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// chromeEvent is one Chrome trace-event ("X" complete event). Perfetto
// and chrome://tracing load an array of these directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  string            `json:"pid"`
	Tid  string            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the spans in Chrome trace-event format: one
// complete event per span, processes labeled by node and threads by trace
// ID, timestamps relative to the earliest span. Load the output in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var base int64
	for i, sp := range spans {
		if i == 0 || sp.Start < base {
			base = sp.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		node := sp.Node
		if node == "" {
			node = "unknown"
		}
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start-base) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  node,
			Tid:  "trace " + TraceIDString(sp.Trace),
			Args: map[string]string{
				"trace": TraceIDString(sp.Trace),
				"span":  fmt.Sprintf("%016x", sp.ID),
			},
		}
		if sp.Parent != 0 {
			ev.Args["parent"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.Attrs != "" {
			ev.Args["attrs"] = sp.Attrs
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
