// Package tracing is D2's causal request tracer: sampled per-request span
// trees threaded through context.Context and across the RPC wire. A trace
// is identified by a 64-bit trace ID; every span carries its own 64-bit
// span ID and its parent's, so spans recorded on different nodes reassemble
// into one tree (d2ctl trace, /tracez). The package is self-contained
// (stdlib only) so every other layer — obs, transport, node, client, fs,
// simdht — can import it without cycles.
//
// Cost model: when a request is not traced (sampling off, no slow
// threshold, no trace in context) the Start* functions return a nil span
// and the original context, and the whole path is allocation-free — the
// hot-path guarantee BenchmarkBatchedRead's alloc guard asserts. Traced
// requests allocate (span records, a context value); they are the sampled
// few.
//
// Sampling is head-based with a tail-latency escape hatch: a root span is
// kept if it was head-sampled (1 in N), or — when a slow threshold is set —
// if the whole operation exceeded the threshold, regardless of the
// sampling rate. To make the latter possible, root spans buffer their
// subtree locally and flush to the ring sink only on keep; spans recorded
// on remote nodes flush to that node's sink immediately (a remote node
// cannot know the root's outcome), so a dropped trace leaves at most a few
// orphaned remote spans that age out of the ring.
package tracing

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded operation: a node in a trace tree. Fields are
// exported for gob (the TraceFetch RPC) and JSON (/tracez, exports).
type Span struct {
	// Trace groups spans of one request; Parent is zero on the root.
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation, dotted ("client.get", "rpc.find_succ").
	Name string `json:"name"`
	// Node labels the process/node that recorded the span (its transport
	// address, or "client"/"sim" style labels).
	Node string `json:"node,omitempty"`
	// Start is the span's wall-clock start in Unix nanoseconds; Dur its
	// duration in nanoseconds. Cross-node ordering assumes loosely
	// synchronized clocks (exact within one process).
	Start int64 `json:"start"`
	Dur   int64 `json:"dur"`
	// Attrs is a rendered "k=v k=v" annotation list (cache hit/miss,
	// redirect targets, batch widths).
	Attrs string `json:"attrs,omitempty"`
}

// TraceIDString renders a trace ID the way every surface prints it.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses the TraceIDString form.
func ParseTraceID(s string) (uint64, error) {
	var id uint64
	_, err := fmt.Sscanf(strings.TrimSpace(s), "%x", &id)
	return id, err
}

// Config parameterizes a Tracer.
type Config struct {
	// Node labels spans recorded by this tracer.
	Node string
	// SampleEvery keeps 1 in N root operations (0 disables head sampling).
	SampleEvery int
	// SlowThreshold force-keeps any root operation at least this slow,
	// regardless of SampleEvery. Setting it makes every root provisionally
	// traced (buffered, then dropped if fast), which costs allocations on
	// every operation — the price of tail sampling.
	SlowThreshold time.Duration
	// SinkSpans is the ring-buffer capacity (default 4096).
	SinkSpans int
}

// Tracer makes sampling decisions and owns the process-local span sink.
// All methods are safe on a nil receiver (tracing off) and for concurrent
// use.
type Tracer struct {
	node        string
	sink        *Sink
	sampleEvery atomic.Int64
	slowNS      atomic.Int64
	seq         atomic.Uint64 // head-sampling round-robin

	mu     sync.Mutex
	onSlow func(root Span) // called for force-kept slow roots
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	t := &Tracer{node: cfg.Node, sink: NewSink(cfg.SinkSpans)}
	t.sampleEvery.Store(int64(cfg.SampleEvery))
	t.slowNS.Store(int64(cfg.SlowThreshold))
	return t
}

// Sink returns the tracer's span ring (nil-safe).
func (t *Tracer) Sink() *Sink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Node returns the tracer's span label.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// SetSampleEvery changes the head-sampling rate (0 disables).
func (t *Tracer) SetSampleEvery(n int) {
	if t != nil {
		t.sampleEvery.Store(int64(n))
	}
}

// SetSlowThreshold changes the slow force-keep threshold (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNS.Store(int64(d))
	}
}

// SlowThreshold returns the current slow force-keep threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS.Load())
}

// OnSlow installs a hook invoked with the root span of every force-kept
// slow trace (the slow-request log). The hook runs on the request
// goroutine; keep it cheap.
func (t *Tracer) OnSlow(fn func(root Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onSlow = fn
	t.mu.Unlock()
}

func (t *Tracer) slowHook() func(Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onSlow
}

// ActiveSpan is a span being recorded. A nil *ActiveSpan is a no-op on
// every method, so untraced paths carry no conditionals.
type ActiveSpan struct {
	t       *Tracer
	buf     *traceBuf // root-local buffer; nil = flush straight to sink
	rec     Span
	sampled bool // head-sampled (kept regardless of latency)
	root    bool
	remote  bool // parent marker from the wire; never recorded itself
	ended   atomic.Bool

	mu sync.Mutex // guards rec.Attrs (fan-out children may share a parent)
}

// traceBuf collects a root's subtree until the keep/drop decision.
type traceBuf struct {
	mu    sync.Mutex
	spans []Span
}

type ctxKey struct{}

// FromContext returns the active span in ctx, or nil.
func FromContext(ctx context.Context) *ActiveSpan {
	sp, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return sp
}

// ContextWith returns ctx carrying sp.
func ContextWith(ctx context.Context, sp *ActiveSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// IDs returns the span's trace and span IDs (zero on nil).
func (s *ActiveSpan) IDs() (trace, span uint64) {
	if s == nil {
		return 0, 0
	}
	return s.rec.Trace, s.rec.ID
}

// TraceID returns the span's trace ID (zero on nil).
func (s *ActiveSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// WireContext extracts the trace/span IDs an RPC should propagate from
// ctx: the active span's, or zeros when untraced.
func WireContext(ctx context.Context) (trace, span uint64) {
	return FromContext(ctx).IDs()
}

// WithRemote returns ctx carrying a remote parent: the server-side
// counterpart of WireContext. Spans started under it flush straight to
// their tracer's sink. A zero trace ID returns ctx unchanged.
func WithRemote(ctx context.Context, trace, span uint64) context.Context {
	if trace == 0 {
		return ctx
	}
	return ContextWith(ctx, &ActiveSpan{
		remote: true,
		rec:    Span{Trace: trace, ID: span},
	})
}

// HandlerContext converts a caller-side context into the context an RPC
// handler should run under: a fresh background context carrying only the
// caller's trace position (what the wire would carry). The in-memory
// transport uses it so mem and TCP handlers see identical trace state.
func HandlerContext(ctx context.Context) context.Context {
	tr, sp := WireContext(ctx)
	return WithRemote(context.Background(), tr, sp)
}

// id returns a non-zero random 64-bit ID.
func id() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// StartOp begins a client-operation span: a child when ctx already carries
// a trace, otherwise a new root subject to the sampling policy. It returns
// the (possibly updated) context and the span, nil when untraced.
func (t *Tracer) StartOp(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if sp := FromContext(ctx); sp != nil {
		return t.startChild(ctx, sp, name)
	}
	if t == nil {
		return ctx, nil
	}
	sampled := false
	if n := t.sampleEvery.Load(); n > 0 {
		sampled = t.seq.Add(1)%uint64(n) == 0
	}
	if !sampled && t.slowNS.Load() <= 0 {
		return ctx, nil
	}
	return t.startRoot(ctx, name, sampled)
}

// ForceOp begins an always-kept root span (d2ctl trace, tests), ignoring
// the sampling rate. A trace already in ctx gets a child instead.
func (t *Tracer) ForceOp(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if sp := FromContext(ctx); sp != nil {
		return t.startChild(ctx, sp, name)
	}
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, name, true)
}

// StartSpan begins a child span of whatever trace ctx carries; a no-op
// (nil span, same ctx) when ctx is untraced. This is the instrumentation
// entry point for everything below the operation root: lookups, RPC
// sends, handlers, block assembly.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	sp := FromContext(ctx)
	if sp == nil {
		return ctx, nil
	}
	return t.startChild(ctx, sp, name)
}

// ChildSpan begins a child span of whatever trace ctx carries using only
// the parent's recording state — for layers (like fs) that sit above a
// traced client and hold no tracer of their own. A no-op on untraced
// contexts, exactly like StartSpan.
func ChildSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return (*Tracer)(nil).StartSpan(ctx, name)
}

func (t *Tracer) startRoot(ctx context.Context, name string, sampled bool) (context.Context, *ActiveSpan) {
	sp := &ActiveSpan{
		t:       t,
		buf:     &traceBuf{},
		sampled: sampled,
		root:    true,
		rec: Span{
			Trace: id(),
			ID:    id(),
			Name:  name,
			Node:  t.node,
			Start: time.Now().UnixNano(),
		},
	}
	return ContextWith(ctx, sp), sp
}

// startChild creates a child of parent. The child inherits the parent's
// root buffer when it has one (local subtree); children of remote parents
// flush straight to t's sink. t may differ from the parent's tracer (a
// node handler span under a client's trace) and may be nil, in which case
// the child still records — into the parent's buffer — labeled with the
// parent's node only if set.
func (t *Tracer) startChild(ctx context.Context, parent *ActiveSpan, name string) (context.Context, *ActiveSpan) {
	var buf *traceBuf
	if !parent.remote {
		buf = parent.buf
	}
	if buf == nil && t.Sink() == nil {
		// Nowhere to record: keep the parent in ctx for propagation.
		return ctx, nil
	}
	sp := &ActiveSpan{
		t:       t,
		buf:     buf,
		sampled: parent.sampled,
		rec: Span{
			Trace:  parent.rec.Trace,
			ID:     id(),
			Parent: parent.rec.ID,
			Name:   name,
			Node:   t.Node(),
			Start:  time.Now().UnixNano(),
		},
	}
	return ContextWith(ctx, sp), sp
}

// Annotate appends key=value pairs to the span (values rendered with %v).
// Safe on nil and concurrently with other annotations.
func (s *ActiveSpan) Annotate(kv ...any) {
	if s == nil {
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v=%v", kv[i], kv[i+1])
	}
	s.mu.Lock()
	if s.rec.Attrs == "" {
		s.rec.Attrs = b.String()
	} else {
		s.rec.Attrs += " " + b.String()
	}
	s.mu.Unlock()
}

// Duration returns the span's duration so far (zero on nil).
func (s *ActiveSpan) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - s.rec.Start)
}

// End completes the span. Children append to their root's buffer (or
// flush straight to the sink under a remote parent); the root then
// decides keep vs drop: head-sampled roots and roots at or above the slow
// threshold flush the whole buffered subtree. End is idempotent and
// nil-safe.
func (s *ActiveSpan) End() {
	if s == nil || s.remote || s.ended.Swap(true) {
		return
	}
	s.mu.Lock()
	s.rec.Dur = time.Now().UnixNano() - s.rec.Start
	rec := s.rec
	s.mu.Unlock()

	if s.buf == nil {
		s.t.Sink().put(rec)
		return
	}
	s.buf.mu.Lock()
	s.buf.spans = append(s.buf.spans, rec)
	s.buf.mu.Unlock()
	if !s.root {
		return
	}
	slow := false
	if thr := s.t.slowNS.Load(); thr > 0 && rec.Dur >= thr {
		slow = true
	}
	if !s.sampled && !slow {
		return // drop: fast and unsampled
	}
	sink := s.t.Sink()
	s.buf.mu.Lock()
	spans := s.buf.spans
	s.buf.spans = nil
	s.buf.mu.Unlock()
	for _, sp := range spans {
		sink.put(sp)
	}
	if slow && !s.sampled {
		if fn := s.t.slowHook(); fn != nil {
			fn(rec)
		}
	}
}

// EndErr annotates the span with a non-nil error, then ends it.
func (s *ActiveSpan) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Annotate("err", err)
	}
	s.End()
}
