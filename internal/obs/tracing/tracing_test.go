package tracing

import (
	"context"
	"testing"
	"time"
)

func TestSinkWraparound(t *testing.T) {
	s := NewSink(4)
	for i := 1; i <= 10; i++ {
		s.Record(Span{Trace: 1, ID: uint64(i)})
	}
	if got := s.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	spans := s.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Fatalf("slot %d holds span %d, want %d (oldest-first after wrap)", i, sp.ID, want)
		}
	}
}

func TestSinkNilSafe(t *testing.T) {
	var s *Sink
	s.Record(Span{ID: 1})
	if s.Total() != 0 || s.Spans() != nil || s.Trace(1) != nil || s.Roots() != nil {
		t.Fatal("nil sink must discard and report empty")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{Node: "n", SampleEvery: 2})
	ctx := context.Background()
	var kept int
	for i := 0; i < 10; i++ {
		sctx, sp := tr.StartOp(ctx, "op")
		if sp == nil {
			if sctx != ctx {
				t.Fatal("unsampled StartOp must return ctx unchanged")
			}
			continue
		}
		kept++
		sp.End()
	}
	if kept != 5 {
		t.Fatalf("kept %d of 10 ops at SampleEvery=2, want 5", kept)
	}
	if got := len(tr.Sink().Spans()); got != 5 {
		t.Fatalf("sink holds %d spans, want 5", got)
	}
}

func TestForceOpBypassesSampling(t *testing.T) {
	tr := New(Config{Node: "n"}) // sampling off
	sctx, root := tr.ForceOp(context.Background(), "forced")
	if root == nil {
		t.Fatal("ForceOp returned nil span")
	}
	_, child := tr.StartSpan(sctx, "child")
	if child == nil {
		t.Fatal("StartSpan under a forced root returned nil")
	}
	child.End()
	root.End()
	spans := tr.Sink().Trace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	rootID := root.TraceID()
	for _, sp := range spans {
		if sp.Trace != rootID {
			t.Fatalf("span %q trace %d, want %d", sp.Name, sp.Trace, rootID)
		}
	}
	var rootRec, childRec *Span
	for i := range spans {
		switch spans[i].Name {
		case "forced":
			rootRec = &spans[i]
		case "child":
			childRec = &spans[i]
		}
	}
	if rootRec == nil || childRec == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if childRec.Parent != rootRec.ID {
		t.Fatalf("child parent %d, want root span %d", childRec.Parent, rootRec.ID)
	}
}

func TestSlowThresholdForceKeeps(t *testing.T) {
	tr := New(Config{Node: "n", SlowThreshold: time.Nanosecond})
	var slowRoot Span
	tr.OnSlow(func(root Span) { slowRoot = root })
	_, sp := tr.StartOp(context.Background(), "slowop")
	if sp == nil {
		t.Fatal("StartOp with a slow threshold must provisionally trace")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	if got := len(tr.Sink().Spans()); got != 1 {
		t.Fatalf("sink holds %d spans, want the force-kept slow root", got)
	}
	if slowRoot.Name != "slowop" {
		t.Fatalf("OnSlow saw %q, want slowop", slowRoot.Name)
	}
}

func TestFastUnsampledRootDropped(t *testing.T) {
	tr := New(Config{Node: "n", SlowThreshold: time.Hour})
	sctx, sp := tr.StartOp(context.Background(), "fastop")
	if sp == nil {
		t.Fatal("StartOp with a slow threshold must provisionally trace")
	}
	_, child := tr.StartSpan(sctx, "child")
	child.End()
	sp.End()
	if got := len(tr.Sink().Spans()); got != 0 {
		t.Fatalf("sink holds %d spans, want 0 (fast unsampled root drops its subtree)", got)
	}
}

func TestRemoteParentFlushesToLocalSink(t *testing.T) {
	// Server side of an RPC: the wire carries (trace, span); spans started
	// under the reconstructed remote parent flush straight to this node's
	// sink, never waiting for the (remote) root's keep decision.
	tr := New(Config{Node: "server"})
	ctx := WithRemote(context.Background(), 42, 7)
	sctx, sp := tr.StartSpan(ctx, "serve.get")
	if sp == nil {
		t.Fatal("StartSpan under a remote parent returned nil")
	}
	_, inner := tr.StartSpan(sctx, "inner")
	inner.End()
	sp.End()
	spans := tr.Sink().Trace(42)
	if len(spans) != 2 {
		t.Fatalf("sink holds %d spans of trace 42, want 2", len(spans))
	}
	var serve *Span
	for i := range spans {
		if spans[i].Name == "serve.get" {
			serve = &spans[i]
		}
	}
	if serve == nil || serve.Parent != 7 {
		t.Fatalf("serve span = %+v, want Parent 7", serve)
	}
}

func TestWireContextRoundTrip(t *testing.T) {
	if tr, sp := WireContext(context.Background()); tr != 0 || sp != 0 {
		t.Fatalf("untraced WireContext = (%d, %d), want zeros", tr, sp)
	}
	tr := New(Config{Node: "n"})
	sctx, root := tr.ForceOp(context.Background(), "op")
	wantTrace, wantSpan := root.IDs()
	gotTrace, gotSpan := WireContext(sctx)
	if gotTrace != wantTrace || gotSpan != wantSpan {
		t.Fatalf("WireContext = (%d, %d), want (%d, %d)", gotTrace, gotSpan, wantTrace, wantSpan)
	}
	hctx := HandlerContext(sctx)
	if hctx.Done() != nil {
		t.Fatal("HandlerContext must not inherit caller cancellation")
	}
	rTrace, rSpan := WireContext(hctx)
	if rTrace != wantTrace || rSpan != wantSpan {
		t.Fatalf("HandlerContext carries (%d, %d), want (%d, %d)", rTrace, rSpan, wantTrace, wantSpan)
	}
	root.End()
}

func TestParseTraceID(t *testing.T) {
	id := uint64(0xdeadbeef01234567)
	s := TraceIDString(id)
	got, err := ParseTraceID(s)
	if err != nil || got != id {
		t.Fatalf("ParseTraceID(%q) = (%x, %v), want %x", s, got, err, id)
	}
	if _, err := ParseTraceID("not hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestAssembleBuildsTreeAndPromotesOrphans(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 10, Name: "root", Node: "client", Start: 100},
		{Trace: 1, ID: 11, Parent: 10, Name: "child-a", Node: "client", Start: 110},
		{Trace: 1, ID: 12, Parent: 11, Name: "grandchild", Node: "node-1", Start: 120},
		{Trace: 1, ID: 13, Parent: 99, Name: "orphan", Node: "node-2", Start: 130},
		{Trace: 1, ID: 13, Parent: 99, Name: "orphan", Node: "node-2", Start: 130}, // duplicate scrape
	}
	roots := Assemble(spans)
	if len(roots) != 2 {
		t.Fatalf("Assemble returned %d top-level nodes, want root + promoted orphan", len(roots))
	}
	if roots[0].Span.Name != "root" || len(roots[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", roots[0])
	}
	if roots[0].Children[0].Children[0].Span.Name != "grandchild" {
		t.Fatal("grandchild not nested under child-a")
	}
	if n := NodeCount(spans); n != 3 {
		t.Fatalf("NodeCount = %d, want 3 distinct node labels", n)
	}
}

// TestUnsampledStartOpAllocates asserts the zero-cost claim: with head
// sampling off and no slow threshold, StartOp on an untraced context must
// not allocate at all.
func TestUnsampledStartOpAllocates(t *testing.T) {
	tr := New(Config{Node: "n"})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, sp := tr.StartOp(ctx, "op")
		if sp != nil {
			t.Fatal("unsampled StartOp returned a span")
		}
		_ = sctx
	})
	if allocs != 0 {
		t.Fatalf("unsampled StartOp allocates %.1f per op, want 0", allocs)
	}
	var nilTracer *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		_, sp := nilTracer.StartOp(ctx, "op")
		if sp != nil {
			t.Fatal("nil tracer returned a span")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer StartOp allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkStartOpUnsampled is the alloc guard the verify trace tier runs
// with -benchmem: the untraced hot path must report 0 allocs/op.
func BenchmarkStartOpUnsampled(b *testing.B) {
	tr := New(Config{Node: "n"})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartOp(ctx, "op")
		if sp != nil {
			b.Fatal("unsampled StartOp returned a span")
		}
	}
}

func BenchmarkStartOpSampled(b *testing.B) {
	tr := New(Config{Node: "n", SampleEvery: 1})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartOp(ctx, "op")
		sp.End()
	}
}
