package tracing

import (
	"sort"
	"sync/atomic"
)

// Sink is a fixed-capacity, lock-free ring buffer of completed spans.
// Writers claim a slot with one atomic add and publish the span with one
// atomic pointer store; readers snapshot by atomic loads. Memory is
// bounded at capacity spans; old spans are overwritten. A nil *Sink
// discards spans.
type Sink struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64 // total spans ever recorded
}

// DefaultSinkSpans is the ring capacity when Config.SinkSpans is zero.
const DefaultSinkSpans = 4096

// NewSink creates a ring keeping the most recent capacity spans.
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkSpans
	}
	return &Sink{slots: make([]atomic.Pointer[Span], capacity)}
}

// Record appends one externally built span (simulators and importers; the
// tracer's own spans arrive as their ActiveSpans end).
func (s *Sink) Record(rec Span) { s.put(rec) }

// put records one completed span.
func (s *Sink) put(rec Span) {
	if s == nil {
		return
	}
	slot := (s.next.Add(1) - 1) % uint64(len(s.slots))
	cp := rec
	s.slots[slot].Store(&cp)
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.next.Load()
}

// Spans snapshots the retained spans, oldest first by recording order.
// Under concurrent writes the snapshot is a consistent set of individually
// complete spans, not necessarily a gap-free window.
func (s *Sink) Spans() []Span {
	if s == nil {
		return nil
	}
	n := s.next.Load()
	cap64 := uint64(len(s.slots))
	kept := n
	if kept > cap64 {
		kept = cap64
	}
	start := (n - kept) % cap64
	out := make([]Span, 0, kept)
	for i := uint64(0); i < kept; i++ {
		if p := s.slots[(start+i)%cap64].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Trace returns the retained spans of one trace, sorted by start time.
func (s *Sink) Trace(id uint64) []Span {
	var out []Span
	for _, sp := range s.Spans() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	sortSpans(out)
	return out
}

// Roots returns the retained root spans (Parent == 0), newest first.
func (s *Sink) Roots() []Span {
	var out []Span
	for _, sp := range s.Spans() {
		if sp.Parent == 0 {
			out = append(out, sp)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SlowestRoots returns up to n retained root spans by descending duration.
func (s *Sink) SlowestRoots(n int) []Span {
	roots := s.Roots()
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Dur > roots[j].Dur })
	if n > 0 && len(roots) > n {
		roots = roots[:n]
	}
	return roots
}

// SortedByStart returns the spans ordered by start time (then span ID),
// without mutating the input — the ordering every multi-node merge wants.
func SortedByStart(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	sortSpans(out)
	return out
}

// sortSpans orders spans by start time, then span ID for determinism.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}
