package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// Event levels, in increasing severity.
const (
	LevelDebug = "debug"
	LevelInfo  = "info"
	LevelWarn  = "warn"
	LevelError = "error"
)

// Event is one structured log entry: a named event plus key=value fields,
// pre-rendered at log time (the log is for humans and /eventz, not for
// machine parsing on the hot path).
type Event struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	// Name identifies the event kind, dotted ("balance.move").
	Name string `json:"name"`
	// Fields is the rendered key=value list.
	Fields string `json:"fields,omitempty"`
	// Trace is the request trace active when the event was logged (zero
	// outside traced requests), cross-referencing /eventz with /tracez.
	Trace uint64 `json:"trace,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("%s %-5s %s", e.Time.Format("15:04:05.000"), e.Level, e.Name)
	if e.Fields != "" {
		s += " " + e.Fields
	}
	if e.Trace != 0 {
		s += " trace=" + tracing.TraceIDString(e.Trace)
	}
	return s
}

// EventLog is a fixed-capacity ring buffer of structured events: churn
// events (joins, moves, drops) are appended forever and the buffer keeps
// the most recent window for /eventz. A nil *EventLog discards events, so
// callers never need nil checks.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int
	n    int // total events ever logged
	// dropped, when set, counts ring overwrites of unread entries
	// (d2_events_dropped_total) so silent overflow is visible.
	dropped *Counter
	// notify, when set, observes every appended event (flight-recorder
	// triggers). Called outside the log's lock, on the logging goroutine.
	notify func(Event)
}

// NewEventLog creates a log keeping the last capacity events
// (default 1024 when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Log appends an event. kv must alternate keys and values; values are
// rendered with %v. Safe on a nil receiver (no-op).
func (l *EventLog) Log(level, name string, kv ...any) {
	l.log(0, level, name, kv...)
}

// LogCtx appends an event tagged with the trace active in ctx (untagged
// when ctx carries no trace), so traced requests' events cross-reference
// their span tree. Safe on a nil receiver.
func (l *EventLog) LogCtx(ctx context.Context, level, name string, kv ...any) {
	if l == nil {
		return
	}
	trace, _ := tracing.WireContext(ctx)
	l.log(trace, level, name, kv...)
}

func (l *EventLog) log(trace uint64, level, name string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v=%v", kv[i], kv[i+1])
	}
	e := Event{Time: time.Now(), Level: level, Name: name, Fields: b.String(), Trace: trace}
	l.mu.Lock()
	if l.n >= len(l.buf) && l.dropped != nil {
		l.dropped.Inc() // the slot being overwritten still held an event
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	l.n++
	notify := l.notify
	l.mu.Unlock()
	if notify != nil {
		notify(e)
	}
}

// CountDrops attaches a counter incremented each time the ring
// overwrites a retained entry — the event log's data-loss signal
// (conventionally registered as d2_events_dropped_total). Safe on a nil
// receiver.
func (l *EventLog) CountDrops(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dropped = c
	l.mu.Unlock()
}

// Notify installs a hook observing every appended event. The hook runs
// on the logging goroutine, outside the log's lock (it may log further
// events, though each triggers the hook again). One hook; later calls
// replace earlier ones. Safe on a nil receiver.
func (l *EventLog) Notify(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.notify = fn
	l.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.n
	if kept > len(l.buf) {
		kept = len(l.buf)
	}
	out := make([]Event, 0, kept)
	start := (l.next - kept + len(l.buf)) % len(l.buf)
	for i := 0; i < kept; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Total returns the number of events ever logged (including ones the ring
// has dropped).
func (l *EventLog) Total() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
