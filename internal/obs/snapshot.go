package obs

// Snapshot is a point-in-time copy of a registry's metrics, suitable for
// JSON transport between nodes and for merging into cluster-wide views.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one histogram's frozen state.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	// Sum is the sum of all observations.
	Sum int64 `json:"sum"`
}

// Count returns the histogram's total observation count.
func (h HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mean returns the average observation, or 0 with no observations.
func (h HistSnapshot) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum) / float64(n)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket containing it, the standard
// fixed-bucket estimate. Observations in the overflow bucket report the
// largest bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		hi := float64(h.Bounds[i])
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Snapshot freezes the registry's current state. Gauge functions are
// evaluated here.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(gaugeFuncs)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		hs := HistSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[k] = hs
	}
	return s
}

// Merge combines two snapshots into a cluster-wide view: counters and
// histograms add, gauges sum (a cluster's stored bytes is the sum of its
// nodes'). Same-name histograms with mismatched bounds cannot be added;
// the one with the greater bounds (longer, then lexicographically larger)
// wins outright — equivalent to summing only the entries in the maximal
// bounds class, which keeps Merge associative and commutative regardless
// of fold order. Neither input is modified.
func Merge(a, b Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(a.Counters)+len(b.Counters)),
		Gauges:     make(map[string]int64, len(a.Gauges)+len(b.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(a.Histograms)+len(b.Histograms)),
	}
	for k, v := range a.Counters {
		out.Counters[k] = v
	}
	for k, v := range b.Counters {
		out.Counters[k] += v
	}
	for k, v := range a.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range b.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range a.Histograms {
		out.Histograms[k] = cloneHist(v)
	}
	for k, v := range b.Histograms {
		prev, ok := out.Histograms[k]
		if !ok {
			out.Histograms[k] = cloneHist(v)
			continue
		}
		switch compareBounds(prev.Bounds, v.Bounds) {
		case 0:
			for i := range prev.Counts {
				prev.Counts[i] += v.Counts[i]
			}
			prev.Sum += v.Sum
			out.Histograms[k] = prev
		case -1:
			out.Histograms[k] = cloneHist(v) // greater bounds win
		}
	}
	return out
}

// MergeAll folds a list of snapshots into one.
func MergeAll(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for i, s := range snaps {
		if i == 0 {
			out = Merge(Snapshot{}, s) // deep copy
			continue
		}
		out = Merge(out, s)
	}
	return out
}

func cloneHist(h HistSnapshot) HistSnapshot {
	return HistSnapshot{
		Bounds: append([]int64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Sum:    h.Sum,
	}
}

// compareBounds totally orders bucket-bound vectors: by length, then
// element-wise. Returns -1, 0, or 1.
func compareBounds(a, b []int64) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
