package obs

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers one counter, gauge, and histogram from
// many goroutines; totals must be exact. Run under -race (tier 2) this
// also proves the hot paths are race-free.
func TestConcurrentIncrements(t *testing.T) {
	reg := New()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_ns", LatencyBuckets)

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%2_000_000 + 1))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRegistryGetOrCreate checks the same name returns the same metric.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := New()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("Counter did not return the existing metric")
	}
	if reg.Gauge("y") != reg.Gauge("y") {
		t.Fatal("Gauge did not return the existing metric")
	}
	if reg.Histogram("z", CountBuckets) != reg.Histogram("z", LatencyBuckets) {
		t.Fatal("Histogram did not return the existing metric")
	}
}

// TestHistogramBucketBoundaries pins down the le semantics: a value goes
// to the first bucket with v <= bound; values above every bound go to the
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []int64{10, 20, 30}
	cases := []struct {
		value  int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0},
		{11, 1}, {20, 1},
		{21, 2}, {30, 2},
		{31, 3}, {1 << 40, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("v=%d", tc.value), func(t *testing.T) {
			h := NewHistogram(bounds)
			h.Observe(tc.value)
			for i := range h.counts {
				want := uint64(0)
				if i == tc.bucket {
					want = 1
				}
				if got := h.counts[i].Load(); got != want {
					t.Errorf("bucket[%d] = %d, want %d", i, got, want)
				}
			}
			if h.Sum() != tc.value {
				t.Errorf("sum = %d, want %d", h.Sum(), tc.value)
			}
		})
	}
}

// TestHistogramQuantile sanity-checks the bucket interpolation.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400})
	for i := 0; i < 100; i++ {
		h.Observe(50) // all in the first bucket
	}
	s := snapHist(h)
	if q := s.Quantile(0.5); q <= 0 || q > 100 {
		t.Fatalf("p50 = %v, want in (0, 100]", q)
	}
	h2 := NewHistogram([]int64{100, 200, 400})
	h2.Observe(1000) // overflow only
	if q := snapHist(h2).Quantile(0.99); q != 400 {
		t.Fatalf("overflow quantile = %v, want 400 (largest bound)", q)
	}
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func snapHist(h *Histogram) HistSnapshot {
	reg := New()
	reg.mu.Lock()
	reg.hists["h"] = h
	reg.mu.Unlock()
	return reg.Snapshot().Histograms["h"]
}

// randomSnapshot builds a snapshot drawing metric names from a small pool
// so merges genuinely collide.
func randomSnapshot(rng *rand.Rand) Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if rng.IntN(2) == 0 {
			s.Counters[n] = uint64(rng.IntN(1000))
		}
		if rng.IntN(2) == 0 {
			s.Gauges[n] = int64(rng.IntN(1000)) - 500
		}
		if rng.IntN(2) == 0 {
			bounds := []int64{10, 20}
			if rng.IntN(4) == 0 {
				bounds = []int64{10, 20, 30} // occasional mismatch
			}
			counts := make([]uint64, len(bounds)+1)
			var sum int64
			for i := range counts {
				counts[i] = uint64(rng.IntN(50))
				sum += int64(counts[i]) * 10
			}
			s.Histograms[n] = HistSnapshot{Bounds: bounds, Counts: counts, Sum: sum}
		}
	}
	return s
}

// TestMergeAssociative is the property test: for random snapshots,
// merge(merge(a,b),c) == merge(a,merge(b,c)), and merging must not
// mutate its inputs.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		aCopy := MergeAll(a)
		left := Merge(Merge(a, b), c)
		right := Merge(a, Merge(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative:\nleft  %#v\nright %#v", trial, left, right)
		}
		if !reflect.DeepEqual(MergeAll(a), aCopy) {
			t.Fatalf("trial %d: Merge mutated its input", trial)
		}
	}
}

// TestMergeCounts checks the merge arithmetic on a concrete example.
func TestMergeCounts(t *testing.T) {
	a := Snapshot{
		Counters:   map[string]uint64{"x": 2},
		Gauges:     map[string]int64{"g": 10},
		Histograms: map[string]HistSnapshot{"h": {Bounds: []int64{5}, Counts: []uint64{1, 2}, Sum: 30}},
	}
	b := Snapshot{
		Counters:   map[string]uint64{"x": 3, "y": 1},
		Gauges:     map[string]int64{"g": -4},
		Histograms: map[string]HistSnapshot{"h": {Bounds: []int64{5}, Counts: []uint64{4, 0}, Sum: 8}},
	}
	m := Merge(a, b)
	if m.Counters["x"] != 5 || m.Counters["y"] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 6 {
		t.Fatalf("gauge = %d, want 6", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Counts[0] != 5 || h.Counts[1] != 2 || h.Sum != 38 {
		t.Fatalf("histogram = %+v", h)
	}
}

// TestGaugeFunc checks snapshot-time evaluation.
func TestGaugeFunc(t *testing.T) {
	reg := New()
	v := int64(7)
	reg.GaugeFunc("fn", func() int64 { return v })
	if got := reg.Snapshot().Gauges["fn"]; got != 7 {
		t.Fatalf("gauge func = %d, want 7", got)
	}
	v = 9
	if got := reg.Snapshot().Gauges["fn"]; got != 9 {
		t.Fatalf("gauge func = %d, want 9", got)
	}
}

// TestEventLogRing checks capacity, ordering, and wraparound.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Log(LevelInfo, "ev", "i", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for j, e := range evs {
		want := fmt.Sprintf("i=%d", 6+j)
		if e.Fields != want {
			t.Fatalf("event %d fields = %q, want %q", j, e.Fields, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	var nilLog *EventLog
	nilLog.Log(LevelInfo, "ignored") // must not panic
	if nilLog.Events() != nil || nilLog.Total() != 0 {
		t.Fatal("nil event log should be inert")
	}
}
