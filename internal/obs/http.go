package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// NewMux builds the admin/debug HTTP mux over a registry, event log, and
// span sink:
//
//	/metrics      Prometheus text exposition
//	/statsz       JSON snapshot (the same document d2ctl merges)
//	/eventz       recent structured events, newest last
//	/tracez       recent traces and slowest roots; ?trace=<id> for one tree
//	/debug/pprof  the standard Go profiler endpoints
//
// Callers add application endpoints (/healthz, /ringz) on the returned
// mux. events and sink may be nil.
func NewMux(reg *Registry, events *EventLog, sink *tracing.Sink) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		evs := events.Events()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(evs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# %d events retained (%d total)\n", len(evs), events.Total())
		for _, e := range evs {
			fmt.Fprintln(w, e.String())
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		serveTracez(w, r, sink)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveTracez renders the span sink. Without parameters it lists recent
// root spans (newest first) and the slowest-N roots; ?trace=<hex id>
// renders that trace's span tree. format=json returns raw spans;
// format=chrome returns Chrome trace-event JSON for Perfetto.
func serveTracez(w http.ResponseWriter, r *http.Request, sink *tracing.Sink) {
	q := r.URL.Query()
	var spans []tracing.Span
	byTrace := false
	if t := q.Get("trace"); t != "" {
		id, err := tracing.ParseTraceID(t)
		if err != nil {
			http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		spans = sink.Trace(id)
		byTrace = true
	} else {
		spans = sink.Spans()
	}
	switch q.Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tracing.WriteJSON(w, spans)
		return
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = tracing.WriteChromeTrace(w, spans)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if byTrace {
		_ = tracing.WriteTree(w, spans)
		return
	}
	fmt.Fprintf(w, "# %d spans retained (%d recorded)\n", len(spans), sink.Total())
	n := 20
	if v, err := strconv.Atoi(q.Get("n")); err == nil && v > 0 {
		n = v
	}
	roots := sink.Roots()
	fmt.Fprintf(w, "\n## recent traces (newest first, up to %d)\n", n)
	for i, sp := range roots {
		if i >= n {
			break
		}
		writeRootLine(w, sp)
	}
	fmt.Fprintf(w, "\n## slowest traces (up to %d)\n", n)
	for _, sp := range sink.SlowestRoots(n) {
		writeRootLine(w, sp)
	}
	fmt.Fprintln(w, "\n# drill down with ?trace=<id>, export with &format=json|chrome")
}

// writeRootLine prints one root span as a /tracez listing row.
func writeRootLine(w http.ResponseWriter, sp tracing.Span) {
	line := fmt.Sprintf("%s  %-24s %-10v", tracing.TraceIDString(sp.Trace),
		sp.Name, time.Duration(sp.Dur).Round(time.Microsecond))
	if sp.Attrs != "" {
		line += "  [" + sp.Attrs + "]"
	}
	fmt.Fprintln(w, line)
}
