package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the admin/debug HTTP mux over a registry and event log:
//
//	/metrics      Prometheus text exposition
//	/statsz       JSON snapshot (the same document d2ctl merges)
//	/eventz       recent structured events, newest last
//	/debug/pprof  the standard Go profiler endpoints
//
// Callers add application endpoints (/healthz, /ringz) on the returned
// mux. events may be nil.
func NewMux(reg *Registry, events *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		evs := events.Events()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(evs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# %d events retained (%d total)\n", len(evs), events.Total())
		for _, e := range evs {
			fmt.Fprintln(w, e.String())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
