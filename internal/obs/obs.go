// Package obs is D2's zero-dependency observability layer: a metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// allocation-free hot paths, snapshot/merge support for cluster-wide
// aggregation, Prometheus-text and JSON export, a ring-buffer-backed
// structured event log, and an admin HTTP mux (/metrics, /statsz,
// /eventz, pprof). Every layer of the live system — transport, node,
// client, fs — and the simulator report through it, so experiment
// counters and production counters share one code path.
//
// Naming convention: metrics are named like Prometheus series,
// `d2_<layer>_<what>[_total]{label="value"}` — the optional label block
// is part of the registry key and is parsed back out by the Prometheus
// exporter. Counters end in _total; histograms carry their unit in the
// name (_ns, _bytes); gauges are instantaneous values and are summed
// across nodes by Merge.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Inc/Add are lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (store bytes,
// in-flight requests). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations (latency
// in nanoseconds, sizes in bytes, small counts like hops). Observation i
// lands in the first bucket with v <= bounds[i], or the overflow bucket.
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow (+Inf)
	sum    atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// NumBuckets returns the bucket count including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// NumBounds returns the number of finite upper bounds (NumBuckets - 1).
func (h *Histogram) NumBounds() int { return len(h.bounds) }

// Bound returns the i-th finite upper bound.
func (h *Histogram) Bound(i int) int64 { return h.bounds[i] }

// ReadCounts copies the current per-bucket counts into dst, which must
// hold NumBuckets entries. Allocation-free: history samplers read whole
// histograms on every tick through it.
func (h *Histogram) ReadCounts(dst []uint64) {
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
}

// Common bucket sets. Bounds are upper bounds in the metric's unit.
var (
	// LatencyBuckets spans 50µs to 10s, in nanoseconds.
	LatencyBuckets = []int64{
		50_000, 100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000,
		25_000_000, 50_000_000, 100_000_000, 250_000_000,
		500_000_000, 1_000_000_000, 2_500_000_000, 10_000_000_000,
	}
	// SizeBuckets spans 64 B to 16 MiB, in bytes.
	SizeBuckets = []int64{
		64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20,
	}
	// CountBuckets suits small discrete quantities: lookup hops, batch
	// fan-out widths, pipeline depths.
	CountBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128}
)

// Registry holds named metrics. Registration takes a lock; the returned
// metric handles are then used directly, so the hot path never touches
// the registry again. Metric names must be unique within their type; a
// second registration of the same name returns the existing metric.
type Registry struct {
	mu         sync.Mutex
	version    uint64
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

var defaultRegistry = New()

// Default returns the process-wide registry, for single-node processes
// (d2node) where process scope and node scope coincide.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.version++
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.version++
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// (store volume, ring position load). The function must be safe to call
// from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
	r.version++
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
		r.version++
	}
	return h
}

// Version returns a counter bumped by every registration. History
// samplers cache enumerated metric handles keyed on it, rebuilding only
// when the registry actually grew, so the steady-state sampling tick
// never touches the registry maps.
func (r *Registry) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// VisitCounters calls fn for every registered counter (unordered). fn
// must not re-enter the registry.
func (r *Registry) VisitCounters(fn func(name string, c *Counter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		fn(name, c)
	}
}

// VisitGauges calls fn for every registered gauge (unordered).
func (r *Registry) VisitGauges(fn func(name string, g *Gauge)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, g := range r.gauges {
		fn(name, g)
	}
}

// VisitGaugeFuncs calls fn for every registered gauge function
// (unordered). The visited functions are evaluated later, by the caller.
func (r *Registry) VisitGaugeFuncs(fn func(name string, f func() int64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.gaugeFuncs {
		fn(name, f)
	}
}

// VisitHistograms calls fn for every registered histogram (unordered).
func (r *Registry) VisitHistograms(fn func(name string, h *Histogram)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, h := range r.hists {
		fn(name, h)
	}
}

// sortedKeys returns map keys in sorted order, for deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
