package obs

import "testing"

// The metrics hot path must not allocate: these run with ReportAllocs and
// the acceptance bar is 0 allocs/op for counter and histogram events.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := New().Gauge("bench_gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_ns", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000_000)
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := New().Counter("bench_par_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
