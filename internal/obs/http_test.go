package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsHandlerGolden pins the exact /metrics output for a small
// fixed registry: the Prometheus text format is a wire contract, so any
// drift (ordering, label merging, cumulative buckets) must be deliberate.
func TestMetricsHandlerGolden(t *testing.T) {
	reg := New()
	reg.Counter(`d2_rpc_client_total{rpc="get"}`).Add(7)
	reg.Counter(`d2_rpc_client_total{rpc="put"}`).Add(3)
	reg.Counter("d2_client_cache_hits_total").Add(41)
	reg.Gauge("d2_node_store_bytes").Set(4096)
	h := reg.Histogram(`d2_rpc_client_latency_ns{rpc="get"}`, []int64{1000, 5000})
	h.Observe(500)  // first bucket
	h.Observe(4000) // second bucket
	h.Observe(9000) // overflow

	srv := httptest.NewServer(NewMux(reg, NewEventLog(8), nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	want := `# TYPE d2_client_cache_hits_total counter
d2_client_cache_hits_total 41
# TYPE d2_rpc_client_total counter
d2_rpc_client_total{rpc="get"} 7
d2_rpc_client_total{rpc="put"} 3
# TYPE d2_node_store_bytes gauge
d2_node_store_bytes 4096
# TYPE d2_rpc_client_latency_ns histogram
d2_rpc_client_latency_ns_bucket{rpc="get",le="1000"} 1
d2_rpc_client_latency_ns_bucket{rpc="get",le="5000"} 2
d2_rpc_client_latency_ns_bucket{rpc="get",le="+Inf"} 3
d2_rpc_client_latency_ns_sum{rpc="get"} 13500
d2_rpc_client_latency_ns_count{rpc="get"} 3
`
	if string(body) != want {
		t.Fatalf("/metrics output mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestStatszRoundTrip checks the JSON snapshot served by /statsz decodes
// back into an equivalent snapshot (the document d2ctl merges).
func TestStatszRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("c_total").Add(5)
	reg.Histogram("h_ns", []int64{10}).Observe(3)

	srv := httptest.NewServer(NewMux(reg, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c_total"] != 5 {
		t.Fatalf("counter = %d, want 5", snap.Counters["c_total"])
	}
	h := snap.Histograms["h_ns"]
	if h.Count() != 1 || h.Sum != 3 {
		t.Fatalf("histogram = %+v", h)
	}
}

// TestEventzHandler checks the text and JSON event views.
func TestEventzHandler(t *testing.T) {
	log := NewEventLog(16)
	log.Log(LevelInfo, "ring.join", "succ", "127.0.0.1:7001")
	srv := httptest.NewServer(NewMux(New(), log, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/eventz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ring.join succ=127.0.0.1:7001") {
		t.Fatalf("/eventz missing event line:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/eventz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "ring.join" {
		t.Fatalf("events = %+v", evs)
	}
}
