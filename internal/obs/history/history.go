// Package history is D2's cluster health engine: a background sampler
// that snapshots an obs.Registry into a fixed-size ring of timestamped
// samples, derived per-second rates and interval latency percentiles
// computed from consecutive samples (true rates, not cumulative
// counters), a threshold-check health evaluator that turns the node's
// /healthz stub into a real status document, and a flight recorder that
// dumps a self-contained JSON diagnostic bundle (health, rates, recent
// events, triggering spans) on health transitions, slow requests, and
// peer deaths.
//
// The hot paths are allocation-free: the sampling tick reads every
// counter, gauge, and histogram bucket through pre-enumerated handles
// into pre-allocated ring slots, and health evaluation computes numeric
// check results into a pre-allocated slice. Handle lists rebuild only
// when the registry's Version changes (registration is a startup-time
// event); everything rendered for humans — status JSON, evidence
// strings, rate documents — lives on the cold serve path.
package history

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// Config parameterizes an Engine. Zero values take the defaults noted.
type Config struct {
	// Registry is the sampled registry (required).
	Registry *obs.Registry
	// Events is the node's event log, included in flight bundles and
	// watched for trigger events. May be nil.
	Events *obs.EventLog
	// Sink is the node's span sink, scraped for the triggering trace's
	// spans in flight bundles. May be nil.
	Sink *tracing.Sink
	// Node labels status documents and bundles ("127.0.0.1:7001").
	Node string
	// Interval is the sampling period (default 2 s).
	Interval time.Duration
	// Window is the ring capacity in samples (default 150 — five
	// minutes of history at the default interval).
	Window int
	// Lookback is how many samples back rates and health deltas reach
	// (default 15 — a 30 s window at the default interval), clamped to
	// the available history.
	Lookback int
	// Checks are the health checks to evaluate each tick; nil uses
	// DefaultChecks.
	Checks []Check
	// FlightDir enables the flight recorder: diagnostic bundles are
	// written there on triggers. Empty disables dumps (Trigger becomes
	// a no-op).
	FlightDir string
	// FlightMinGap rate-limits bundle dumps (default 10 s).
	FlightMinGap time.Duration
}

func (c *Config) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Window <= 1 {
		c.Window = 150
	}
	if c.Lookback <= 0 {
		c.Lookback = 15
	}
	if c.Lookback >= c.Window {
		c.Lookback = c.Window - 1
	}
	if c.Checks == nil {
		c.Checks = DefaultChecks()
	}
	if c.FlightMinGap <= 0 {
		c.FlightMinGap = 10 * time.Second
	}
}

// sample is one ring slot: every metric's value at one instant, in
// pre-allocated arrays parallel to the engine's handle lists.
type sample struct {
	at         int64 // unix nanoseconds; 0 = slot never written
	counters   []uint64
	gauges     []int64    // registered gauges, then gauge funcs
	histCounts [][]uint64 // per-histogram bucket counts
	histSums   []int64
}

// Engine is the health engine: sampler ring, evaluator, and flight
// recorder over one registry. Create with New, then either Start the
// background loop or drive Tick manually (tests, simulators).
type Engine struct {
	cfg Config

	mu      sync.Mutex
	version uint64 // registry version the handle lists were built at

	counterNames []string
	counters     []*obs.Counter
	counterIdx   map[string]int
	gaugeNames   []string // gauges then gauge funcs, matching sample.gauges
	gauges       []*obs.Gauge
	fns          []func() int64
	gaugeIdx     map[string]int
	histNames    []string
	hists        []*obs.Histogram
	histIdx      map[string]int

	ring  []sample
	next  int    // slot the next tick writes
	ticks uint64 // samples taken since the last rebuild

	// scratch holds per-bucket interval deltas during quantile
	// evaluation; sized to the largest histogram.
	scratch []uint64

	view    View
	results []CheckResult
	state   State

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	flightMu   sync.Mutex
	lastFlight time.Time
	flightSeq  int
}

// New creates an engine over cfg.Registry. It takes no samples until
// Start or Tick.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{
		cfg:     cfg,
		results: make([]CheckResult, len(cfg.Checks)),
		state:   StateOK,
		stop:    make(chan struct{}),
	}
	for i, c := range cfg.Checks {
		e.results[i] = CheckResult{Name: c.Name, State: StateOK}
	}
	e.view.e = e
	return e
}

// Start launches the background sampling loop. Pair with Close.
func (e *Engine) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case now := <-t.C:
				e.Tick(now)
			}
		}
	}()
}

// Close stops the background loop. Idempotent.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// Interval returns the configured sampling period.
func (e *Engine) Interval() time.Duration { return e.cfg.Interval }

// Tick takes one sample and re-evaluates health. Allocation-free in the
// steady state; when the registry grew since the last tick, the handle
// lists and ring slots rebuild first (a startup-time cold path that
// restarts the sample history). Safe to call concurrently with Start's
// loop, though normally one driver owns the clock.
func (e *Engine) Tick(now time.Time) {
	e.mu.Lock()
	if v := e.cfg.Registry.Version(); v != e.version {
		e.rebuildLocked(v)
	}
	s := &e.ring[e.next]
	s.at = now.UnixNano()
	for i, c := range e.counters {
		s.counters[i] = c.Value()
	}
	for i, g := range e.gauges {
		s.gauges[i] = g.Value()
	}
	for i, fn := range e.fns {
		s.gauges[len(e.gauges)+i] = fn()
	}
	for i, h := range e.hists {
		h.ReadCounts(s.histCounts[i])
		s.histSums[i] = h.Sum()
	}
	e.next = (e.next + 1) % len(e.ring)
	e.ticks++

	transition, from, to := e.evaluateLocked()
	e.mu.Unlock()

	if transition {
		e.cfg.Events.Log(obs.LevelWarn, "health.transition",
			"from", from.String(), "to", to.String())
		e.Trigger("health_transition", from.String()+" -> "+to.String(), 0)
	}
}

// rebuildLocked re-enumerates the registry into sorted handle lists and
// re-allocates every ring slot to the new layout. Old samples mix
// layouts, so the history restarts.
func (e *Engine) rebuildLocked(version uint64) {
	e.version = version

	e.counterNames = e.counterNames[:0]
	e.counters = e.counters[:0]
	e.cfg.Registry.VisitCounters(func(name string, c *obs.Counter) {
		e.counterNames = append(e.counterNames, name)
		e.counters = append(e.counters, c)
	})
	sortParallel(e.counterNames, func(i, j int) {
		e.counters[i], e.counters[j] = e.counters[j], e.counters[i]
	})
	e.counterIdx = indexOf(e.counterNames)

	e.gaugeNames = e.gaugeNames[:0]
	e.gauges = e.gauges[:0]
	e.cfg.Registry.VisitGauges(func(name string, g *obs.Gauge) {
		e.gaugeNames = append(e.gaugeNames, name)
		e.gauges = append(e.gauges, g)
	})
	sortParallel(e.gaugeNames, func(i, j int) {
		e.gauges[i], e.gauges[j] = e.gauges[j], e.gauges[i]
	})
	fnNames := []string(nil)
	e.fns = e.fns[:0]
	e.cfg.Registry.VisitGaugeFuncs(func(name string, f func() int64) {
		fnNames = append(fnNames, name)
		e.fns = append(e.fns, f)
	})
	sortParallel(fnNames, func(i, j int) {
		e.fns[i], e.fns[j] = e.fns[j], e.fns[i]
	})
	e.gaugeNames = append(e.gaugeNames, fnNames...)
	e.gaugeIdx = indexOf(e.gaugeNames)

	e.histNames = e.histNames[:0]
	e.hists = e.hists[:0]
	e.cfg.Registry.VisitHistograms(func(name string, h *obs.Histogram) {
		e.histNames = append(e.histNames, name)
		e.hists = append(e.hists, h)
	})
	sortParallel(e.histNames, func(i, j int) {
		e.hists[i], e.hists[j] = e.hists[j], e.hists[i]
	})
	e.histIdx = indexOf(e.histNames)

	maxBuckets := 0
	for _, h := range e.hists {
		if n := h.NumBuckets(); n > maxBuckets {
			maxBuckets = n
		}
	}
	e.scratch = make([]uint64, maxBuckets)

	if len(e.ring) != e.cfg.Window {
		e.ring = make([]sample, e.cfg.Window)
	}
	for i := range e.ring {
		s := &e.ring[i]
		s.at = 0
		s.counters = make([]uint64, len(e.counters))
		s.gauges = make([]int64, len(e.gauges)+len(e.fns))
		s.histCounts = make([][]uint64, len(e.hists))
		for j, h := range e.hists {
			s.histCounts[j] = make([]uint64, h.NumBuckets())
		}
		s.histSums = make([]int64, len(e.hists))
	}
	e.next = 0
	e.ticks = 0
}

// sortParallel sorts names ascending, applying the same swaps to a
// parallel slice via swap.
func sortParallel(names []string, swap func(i, j int)) {
	sort.Sort(&parallelSorter{names: names, swap: swap})
}

type parallelSorter struct {
	names []string
	swap  func(i, j int)
}

func (p *parallelSorter) Len() int           { return len(p.names) }
func (p *parallelSorter) Less(i, j int) bool { return p.names[i] < p.names[j] }
func (p *parallelSorter) Swap(i, j int) {
	p.names[i], p.names[j] = p.names[j], p.names[i]
	p.swap(i, j)
}

func indexOf(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	return m
}

// sampleAt returns the k-th most recent sample (0 = newest), or nil when
// fewer than k+1 samples exist.
func (e *Engine) sampleAt(k int) *sample {
	if uint64(k) >= e.ticks {
		return nil
	}
	if k >= len(e.ring) {
		return nil
	}
	i := (e.next - 1 - k + 2*len(e.ring)) % len(e.ring)
	return &e.ring[i]
}

// lookbackSamples returns the newest sample and the one Lookback ticks
// older (clamped to the oldest available), or nils without history.
func (e *Engine) lookbackSamples() (newest, oldest *sample) {
	newest = e.sampleAt(0)
	if newest == nil {
		return nil, nil
	}
	lb := e.cfg.Lookback
	if uint64(lb) >= e.ticks {
		lb = int(e.ticks) - 1
	}
	return newest, e.sampleAt(lb)
}

// Ticks returns the number of samples taken since the last registry
// rebuild.
func (e *Engine) Ticks() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ticks
}

// --- derived documents (cold paths; these allocate freely) ---

// HistQuantiles summarizes one histogram's observations inside the rate
// window: interval percentiles, not lifetime ones.
type HistQuantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Rates is the derived-rate document: per-second counter rates and
// interval histogram percentiles over the lookback window, plus current
// gauge values. Only series that moved inside the window appear.
type Rates struct {
	Node       string                   `json:"node,omitempty"`
	At         time.Time                `json:"at"`
	WindowSec  float64                  `json:"window_sec"`
	Counters   map[string]float64       `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]HistQuantiles `json:"histograms,omitempty"`
}

// Rates computes the current derived-rate document.
func (e *Engine) Rates() Rates {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Rates{Node: e.cfg.Node, At: time.Now()}
	newest, oldest := e.lookbackSamples()
	if newest == nil {
		return out
	}
	out.At = time.Unix(0, newest.at)
	sec := float64(newest.at-oldest.at) / 1e9
	out.WindowSec = sec
	out.Gauges = make(map[string]int64, len(e.gaugeNames))
	for i, name := range e.gaugeNames {
		if v := newest.gauges[i]; v != 0 {
			out.Gauges[name] = v
		}
	}
	if sec <= 0 {
		return out
	}
	out.Counters = make(map[string]float64, len(e.counterNames))
	for i, name := range e.counterNames {
		if d := newest.counters[i] - oldest.counters[i]; d > 0 {
			out.Counters[name] = float64(d) / sec
		}
	}
	out.Histograms = make(map[string]HistQuantiles, len(e.histNames))
	for i, name := range e.histNames {
		var count uint64
		for b, c := range newest.histCounts[i] {
			d := c - oldest.histCounts[i][b]
			e.scratch[b] = d
			count += d
		}
		if count == 0 {
			continue
		}
		counts := e.scratch[:len(newest.histCounts[i])]
		h := e.hists[i]
		out.Histograms[name] = HistQuantiles{
			Count: count,
			Mean:  float64(newest.histSums[i]-oldest.histSums[i]) / float64(count),
			P50:   quantileFromCounts(h, counts, count, 0.50),
			P90:   quantileFromCounts(h, counts, count, 0.90),
			P99:   quantileFromCounts(h, counts, count, 0.99),
		}
	}
	return out
}

// RatesJSON returns the Rates document JSON-encoded (nil on error).
func (e *Engine) RatesJSON() []byte {
	b, err := json.Marshal(e.Rates())
	if err != nil {
		return nil
	}
	return b
}

// Point is one retained sample, rendered for /historyz.
type Point struct {
	At       time.Time         `json:"at"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
}

// Dump is the /historyz document: the retained sample ring, oldest
// first, with zero-valued series elided per point.
type Dump struct {
	Node       string  `json:"node,omitempty"`
	IntervalMS int64   `json:"interval_ms"`
	Ticks      uint64  `json:"ticks"`
	Points     []Point `json:"points"`
}

// DumpHistory renders up to maxPoints retained samples, oldest first
// (maxPoints <= 0 means all).
func (e *Engine) DumpHistory(maxPoints int) Dump {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := Dump{
		Node:       e.cfg.Node,
		IntervalMS: e.cfg.Interval.Milliseconds(),
		Ticks:      e.ticks,
	}
	kept := int(e.ticks)
	if kept > len(e.ring) {
		kept = len(e.ring)
	}
	if maxPoints > 0 && kept > maxPoints {
		kept = maxPoints
	}
	for k := kept - 1; k >= 0; k-- {
		s := e.sampleAt(k)
		if s == nil {
			continue
		}
		p := Point{
			At:       time.Unix(0, s.at),
			Counters: make(map[string]uint64),
			Gauges:   make(map[string]int64),
		}
		for i, name := range e.counterNames {
			if v := s.counters[i]; v != 0 {
				p.Counters[name] = v
			}
		}
		for i, name := range e.gaugeNames {
			if v := s.gauges[i]; v != 0 {
				p.Gauges[name] = v
			}
		}
		d.Points = append(d.Points, p)
	}
	return d
}

// quantileFromCounts estimates a quantile by linear interpolation over
// interval bucket deltas — HistSnapshot.Quantile's algorithm lifted to
// operate on a scratch count vector without building a snapshot.
func quantileFromCounts(h *obs.Histogram, counts []uint64, total uint64, q float64) float64 {
	nb := h.NumBounds()
	if total == 0 || nb == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= nb {
			return float64(h.Bound(nb - 1))
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.Bound(i - 1))
		}
		hi := float64(h.Bound(i))
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(h.Bound(nb - 1))
}

// ratePrefixLocked returns the per-second rate summed over every counter
// whose name begins with prefix (label blocks included in the match).
func (e *Engine) ratePrefixLocked(newest, oldest *sample, prefix string) float64 {
	sec := float64(newest.at-oldest.at) / 1e9
	if sec <= 0 {
		return 0
	}
	var d uint64
	for i, name := range e.counterNames {
		if strings.HasPrefix(name, prefix) {
			d += newest.counters[i] - oldest.counters[i]
		}
	}
	return float64(d) / sec
}
