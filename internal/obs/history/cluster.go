package history

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/defragdht/d2/internal/stats"
)

// ClusterNode is one ring member's health as gathered by a HealthReq
// walk: identity, load, and the node's own status/rates documents
// (parsed from the wire JSON; either may be nil for nodes without an
// engine, e.g. in-memory test clusters).
type ClusterNode struct {
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	RespBytes   int64   `json:"resp_bytes"`
	StoredBytes int64   `json:"stored_bytes"`
	Blocks      int64   `json:"blocks"`
	Status      *Status `json:"status,omitempty"`
	Rates       *Rates  `json:"rates,omitempty"`
}

// Problem names one failing or degraded check on one node.
type Problem struct {
	Node     string  `json:"node"`
	Check    string  `json:"check"`
	State    string  `json:"state"`
	Value    float64 `json:"value"`
	Evidence string  `json:"evidence,omitempty"`
}

// ClusterReport is `d2ctl doctor`'s document: the worst state across
// the ring, the §10 load-imbalance check evaluated over per-node
// responsible-range loads, and every per-node problem found.
type ClusterReport struct {
	At        time.Time     `json:"at"`
	Nodes     int           `json:"nodes"`
	State     string        `json:"state"`
	Imbalance CheckStatus   `json:"imbalance"`
	Members   []ClusterNode `json:"members"`
	Problems  []Problem     `json:"problems,omitempty"`
}

// Imbalance thresholds: the paper's §10 experiments hold the normalized
// standard deviation of per-node load near 0.25 under defragmentation;
// a uniform-hashing ring sits far higher. We warn past 0.45 and fail
// past 0.85 (a nearly-idle or single-node ring reports 0).
const (
	imbalanceWarn = 0.45
	imbalanceFail = 0.85
)

// BuildClusterReport evaluates cluster-level health over per-node
// results: overall state is the worst member state escalated by the
// imbalance check, and Problems collects every non-ok check naming its
// node — `d2ctl doctor`'s "which node, which check" answer.
func BuildClusterReport(members []ClusterNode) ClusterReport {
	r := ClusterReport{At: time.Now(), Nodes: len(members), Members: members}

	worst := StateOK
	loads := make([]float64, 0, len(members))
	for _, m := range members {
		loads = append(loads, float64(m.RespBytes))
		st := stateFromString(m.State)
		if st > worst {
			worst = st
		}
		if m.Status == nil {
			continue
		}
		for _, c := range m.Status.Checks {
			if c.State == StateOK.String() {
				continue
			}
			r.Problems = append(r.Problems, Problem{
				Node:     m.Addr,
				Check:    c.Name,
				State:    c.State,
				Value:    c.Value,
				Evidence: c.Evidence,
			})
		}
	}

	nsd := 0.0
	if len(loads) > 1 && stats.Sum(loads) > 0 {
		nsd = stats.NormStdDev(loads)
	}
	imb := StateOK
	switch {
	case nsd >= imbalanceFail:
		imb = StateFailing
	case nsd >= imbalanceWarn:
		imb = StateDegraded
	}
	r.Imbalance = CheckStatus{
		Name:  "load_imbalance",
		State: imb.String(),
		Value: nsd,
		Warn:  imbalanceWarn,
		Fail:  imbalanceFail,
		Evidence: fmt.Sprintf(
			"normalized stddev of responsible-range bytes across %d nodes: %.3f (warn >= %.2g, fail >= %.2g)",
			len(loads), nsd, imbalanceWarn, imbalanceFail),
	}
	if imb > worst {
		worst = imb
	}
	if imb != StateOK {
		r.Problems = append(r.Problems, Problem{
			Node:     "*",
			Check:    r.Imbalance.Name,
			State:    r.Imbalance.State,
			Value:    r.Imbalance.Value,
			Evidence: r.Imbalance.Evidence,
		})
	}
	r.State = worst.String()
	return r
}

// stateFromString parses a wire state name; unknown strings (including
// "unknown" from engine-less nodes) count as ok so bare test clusters
// don't read as sick.
func stateFromString(s string) State {
	for i, n := range stateNames {
		if n == s {
			return State(i)
		}
	}
	return StateOK
}

// ParseStatus decodes a node's StatusJSON wire document (nil input or
// parse failure yields nil).
func ParseStatus(b []byte) *Status {
	if len(b) == 0 {
		return nil
	}
	var s Status
	if err := json.Unmarshal(b, &s); err != nil {
		return nil
	}
	return &s
}

// ParseRates decodes a node's RatesJSON wire document (nil input or
// parse failure yields nil).
func ParseRates(b []byte) *Rates {
	if len(b) == 0 {
		return nil
	}
	var r Rates
	if err := json.Unmarshal(b, &r); err != nil {
		return nil
	}
	return &r
}
