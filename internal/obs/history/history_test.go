package history

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/obs"
)

// tickAt advances the engine by one sample at a fixed instant, so tests
// control the window arithmetic exactly.
func tickAt(e *Engine, sec int64) { e.Tick(time.Unix(sec, 0)) }

func TestSamplerRatesAndQuantiles(t *testing.T) {
	reg := obs.New()
	c := reg.Counter("d2_test_ops_total")
	g := reg.Gauge("d2_test_depth")
	h := reg.Histogram("d2_test_lat_ns", []int64{100, 200, 400})
	reg.GaugeFunc("d2_test_fn", func() int64 { return 7 })

	e := New(Config{Registry: reg, Node: "n1", Lookback: 10})
	tickAt(e, 100)

	c.Add(30)
	g.Set(5)
	for i := 0; i < 10; i++ {
		h.Observe(150) // second bucket
	}
	tickAt(e, 110)

	r := e.Rates()
	if r.Node != "n1" || r.WindowSec != 10 {
		t.Fatalf("rates header: %+v", r)
	}
	if got := r.Counters["d2_test_ops_total"]; got != 3.0 {
		t.Fatalf("counter rate = %v, want 3/s", got)
	}
	if got := r.Gauges["d2_test_depth"]; got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if got := r.Gauges["d2_test_fn"]; got != 7 {
		t.Fatalf("gauge func = %d, want 7", got)
	}
	q := r.Histograms["d2_test_lat_ns"]
	if q.Count != 10 || q.Mean != 150 {
		t.Fatalf("hist quantiles: %+v", q)
	}
	if q.P50 <= 100 || q.P50 > 200 {
		t.Fatalf("p50 = %v, want within (100, 200]", q.P50)
	}

	// The window reaches Lookback samples back, not just one.
	c.Add(10)
	tickAt(e, 115)
	r = e.Rates()
	if r.WindowSec != 15 {
		t.Fatalf("window = %v, want 15s (lookback clamped to history)", r.WindowSec)
	}
	if got := r.Counters["d2_test_ops_total"]; math.Abs(got-40.0/15) > 1e-9 {
		t.Fatalf("counter rate = %v, want 40/15", got)
	}
}

func TestRebuildOnRegistryGrowth(t *testing.T) {
	reg := obs.New()
	reg.Counter("a_total").Add(5)
	e := New(Config{Registry: reg})
	tickAt(e, 100)
	tickAt(e, 110)
	if e.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2", e.Ticks())
	}

	// A new registration changes the sample layout: history restarts.
	reg.Counter("b_total").Add(1)
	tickAt(e, 120)
	if e.Ticks() != 1 {
		t.Fatalf("ticks after rebuild = %d, want 1", e.Ticks())
	}
	tickAt(e, 130)
	r := e.Rates()
	if _, ok := r.Counters["a_total"]; ok {
		t.Fatal("unmoved counter should be elided from rates")
	}
	reg.Counter("b_total").Add(10)
	tickAt(e, 140)
	// Lookback reaches the post-rebuild origin at t=120: 10 ops / 20 s.
	if got := e.Rates().Counters["b_total"]; got != 0.5 {
		t.Fatalf("post-rebuild rate = %v, want 0.5/s", got)
	}
}

func TestRingWindowBounded(t *testing.T) {
	reg := obs.New()
	c := reg.Counter("x_total")
	e := New(Config{Registry: reg, Window: 4, Lookback: 10})
	for i := int64(0); i < 20; i++ {
		c.Add(1)
		tickAt(e, 100+i)
	}
	// Lookback is clamped to Window-1 = 3 retained deltas.
	if r := e.Rates(); r.WindowSec != 3 {
		t.Fatalf("window = %v, want 3s (ring keeps 4 samples)", r.WindowSec)
	}
	d := e.DumpHistory(0)
	if len(d.Points) != 4 {
		t.Fatalf("dump kept %d points, want 4", len(d.Points))
	}
	if !d.Points[0].At.Before(d.Points[3].At) {
		t.Fatal("dump not oldest-first")
	}
}

func TestHealthTransitions(t *testing.T) {
	reg := obs.New()
	g := reg.Gauge("d2_node_replica_deficit")
	events := obs.NewEventLog(64)
	e := New(Config{Registry: reg, Events: events})

	tickAt(e, 100)
	if e.State() != StateOK {
		t.Fatalf("initial state = %v, want ok", e.State())
	}

	g.Set(3) // past warn (1), below fail (64)
	tickAt(e, 110)
	if e.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", e.State())
	}

	g.Set(100) // past fail
	tickAt(e, 120)
	if e.State() != StateFailing {
		t.Fatalf("state = %v, want failing", e.State())
	}

	g.Set(0)
	tickAt(e, 130)
	if e.State() != StateOK {
		t.Fatalf("state = %v, want ok after recovery", e.State())
	}

	// Each transition logs a health.transition event.
	var transitions int
	for _, ev := range events.Events() {
		if ev.Name == "health.transition" {
			transitions++
		}
	}
	if transitions != 3 {
		t.Fatalf("logged %d transitions, want 3", transitions)
	}

	// The status document names the check with evidence.
	g.Set(2)
	tickAt(e, 140)
	st := e.Status()
	if st.State != "degraded" {
		t.Fatalf("status state = %q", st.State)
	}
	found := false
	for _, c := range st.Checks {
		if c.Name == "replica_deficit" {
			found = true
			if c.State != "degraded" || c.Value != 2 || c.Evidence == "" {
				t.Fatalf("replica_deficit check: %+v", c)
			}
		}
	}
	if !found {
		t.Fatal("status has no replica_deficit check")
	}
	if !json.Valid(e.StatusJSON()) {
		t.Fatal("StatusJSON not valid JSON")
	}
}

func TestHealthRatioAndRateChecks(t *testing.T) {
	reg := obs.New()
	stalls := reg.Counter("d2_stream_stalls_total")
	segs := reg.Counter("d2_stream_segments_total")
	e := New(Config{Registry: reg})

	tickAt(e, 100)
	segs.Add(100)
	stalls.Add(10) // 10% stalled: under the 25% warn line
	tickAt(e, 110)
	if e.State() != StateOK {
		t.Fatalf("state = %v, want ok at 10%% stalls", e.State())
	}
	segs.Add(10)
	stalls.Add(9) // window now ~17/110... still under warn across lookback
	tickAt(e, 120)

	// Push the ratio past warn within one window.
	segs.Add(100)
	stalls.Add(60)
	tickAt(e, 200) // fresh window: previous samples beyond... lookback clamps
	if e.State() == StateOK {
		// The lookback window spans several samples; compute the expected
		// ratio to make the failure informative.
		t.Fatalf("state = %v after 60/100 stalls, want degraded", e.State())
	}
}

func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	c := reg.Counter("d2_test_ops_total")
	events := obs.NewEventLog(16)
	events.Log(obs.LevelInfo, "test.event", "k", "v")
	e := New(Config{
		Registry: reg, Events: events, Node: "n1",
		FlightDir: dir, FlightMinGap: time.Hour,
	})
	c.Add(5)
	tickAt(e, 100)
	c.Add(5)
	tickAt(e, 110)

	e.Trigger("slow_request", "op=get dur_ms=900", 0xabcd)
	waitFlightFiles(t, dir, 1)

	// Rate limit: a second trigger inside FlightMinGap is dropped.
	e.Trigger("peer_dead", "addr=x", 0)
	time.Sleep(50 * time.Millisecond)
	files := flightFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("rate limit failed: %d bundles, want 1", len(files))
	}

	raw, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("bundle not valid JSON: %v", err)
	}
	if b.Trigger != "slow_request" || b.Node != "n1" || b.Trace != "000000000000abcd" {
		t.Fatalf("bundle header: %+v", b)
	}
	if len(b.Events) == 0 || b.Events[0].Name != "test.event" {
		t.Fatalf("bundle events: %+v", b.Events)
	}
	if b.Health.State == "" || len(b.Health.Checks) == 0 {
		t.Fatalf("bundle health: %+v", b.Health)
	}
	if len(b.Rates.Counters) == 0 {
		t.Fatalf("bundle rates empty: %+v", b.Rates)
	}
	if !strings.Contains(files[0], "slow_request") {
		t.Fatalf("bundle filename %q should name the trigger", files[0])
	}
}

func flightFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "flight-") {
			out = append(out, ent.Name())
		}
	}
	return out
}

func waitFlightFiles(t *testing.T, dir string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(flightFiles(t, dir)) >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no flight bundle appeared in %s", dir)
}

func TestClusterReport(t *testing.T) {
	failing := &Status{
		State: "failing",
		Checks: []CheckStatus{
			{Name: "replica_deficit", State: "failing", Value: 80, Evidence: "replicas missing"},
			{Name: "pool_failfast", State: "ok"},
		},
	}
	members := []ClusterNode{
		{Addr: "a:1", State: "ok", RespBytes: 1000, Status: &Status{State: "ok"}},
		{Addr: "b:1", State: "failing", RespBytes: 1100, Status: failing},
		{Addr: "c:1", State: "ok", RespBytes: 900, Status: &Status{State: "ok"}},
	}
	r := BuildClusterReport(members)
	if r.Nodes != 3 || r.State != "failing" {
		t.Fatalf("report: state=%q nodes=%d", r.State, r.Nodes)
	}
	if len(r.Problems) != 1 || r.Problems[0].Node != "b:1" || r.Problems[0].Check != "replica_deficit" {
		t.Fatalf("problems: %+v", r.Problems)
	}
	if r.Imbalance.State != "ok" || r.Imbalance.Value > 0.1 {
		t.Fatalf("near-uniform load flagged imbalanced: %+v", r.Imbalance)
	}

	// A heavily skewed ring trips the §10 imbalance check even when every
	// node is individually healthy.
	skewed := []ClusterNode{
		{Addr: "a:1", State: "ok", RespBytes: 10000},
		{Addr: "b:1", State: "ok", RespBytes: 10},
		{Addr: "c:1", State: "ok", RespBytes: 10},
	}
	r = BuildClusterReport(skewed)
	if r.State == "ok" {
		t.Fatalf("skewed ring reported ok: imbalance=%+v", r.Imbalance)
	}
	found := false
	for _, p := range r.Problems {
		if p.Check == "load_imbalance" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no load_imbalance problem: %+v", r.Problems)
	}

	// Engine-less members ("unknown") don't poison the verdict.
	r = BuildClusterReport([]ClusterNode{{Addr: "a:1", State: "unknown", RespBytes: 5}})
	if r.State != "ok" {
		t.Fatalf("unknown-state member: %q", r.State)
	}
}

// TestSamplerSoak hammers the registry from several goroutines while the
// background sampler runs at a tight interval — the -race half of the
// verify.sh obs tier. D2_HISTORY_SOAK stretches the duration (the obs
// tier uses ~10s); the default keeps `go test` fast.
func TestSamplerSoak(t *testing.T) {
	dur := 500 * time.Millisecond
	if s := os.Getenv("D2_HISTORY_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("D2_HISTORY_SOAK: %v", err)
		}
		dur = d
	}

	reg := obs.New()
	events := obs.NewEventLog(32)
	e := New(Config{Registry: reg, Events: events, Interval: 2 * time.Millisecond, Window: 50})
	e.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := reg.Counter("soak_ops_total")
			h := reg.Histogram("soak_lat_ns", obs.LatencyBuckets)
			g := reg.Gauge("soak_depth")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(j%1000) * 1000)
				g.Set(int64(j % 10))
				if j%1000 == 0 {
					// Keep registrations appearing mid-flight so rebuilds race
					// real ticks.
					reg.Counter("soak_late_total")
				}
				if j%100 == 0 {
					events.Log(obs.LevelInfo, "soak.event", "j", j)
				}
			}
		}(i)
	}
	// Concurrent readers of the cold paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Rates()
			_ = e.Status()
			_ = e.State()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	e.Close()

	if e.Ticks() == 0 {
		t.Fatal("sampler took no ticks during soak")
	}
	if r := e.Rates(); r.Counters["soak_ops_total"] <= 0 {
		t.Fatalf("soak counter rate missing: %+v", r.Counters)
	}
}

// benchEngine builds an engine over a realistically sized registry:
// ~60 counters, 10 gauges, 4 gauge funcs, 8 histograms — about what a
// loaded d2node carries.
func benchEngine() (*Engine, *obs.Registry) {
	reg := obs.New()
	for _, name := range []string{
		"d2_tcp_pool_failfast_total", "d2_events_dropped_total",
		"d2_stream_stalls_total", "d2_stream_segments_total",
	} {
		reg.Counter(name)
	}
	for i := 0; i < 56; i++ {
		reg.Counter("d2_bench_counter_total" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	reg.Gauge("d2_node_replica_deficit")
	for i := 0; i < 9; i++ {
		reg.Gauge("d2_bench_gauge" + string(rune('a'+i)))
	}
	for i := 0; i < 4; i++ {
		reg.GaugeFunc("d2_bench_fn"+string(rune('a'+i)), func() int64 { return 42 })
	}
	reg.Histogram("d2_node_lookup_hops", obs.CountBuckets)
	for i := 0; i < 7; i++ {
		reg.Histogram("d2_bench_hist"+string(rune('a'+i)), obs.LatencyBuckets)
	}
	return New(Config{Registry: reg, Node: "bench"}), reg
}

// BenchmarkSamplerTick gates the full sampling tick — handle reads,
// ring write, and health evaluation — at 0 allocs/op (verify.sh obs).
func BenchmarkSamplerTick(b *testing.B) {
	e, _ := benchEngine()
	now := time.Unix(1000, 0)
	e.Tick(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		e.Tick(now)
	}
}

// BenchmarkHealthEvaluate gates the evaluator alone at 0 allocs/op.
func BenchmarkHealthEvaluate(b *testing.B) {
	e, _ := benchEngine()
	e.Tick(time.Unix(1000, 0))
	e.Tick(time.Unix(1010, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.mu.Lock()
		e.evaluateLocked()
		e.mu.Unlock()
	}
}
