package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// Bundle is one flight-recorder dump: a self-contained diagnostic
// document capturing what the node knew at the moment of a trigger —
// the health verdict, the derived rates over the lookback window, the
// retained event log, and (when the trigger carried a trace ID) every
// retained span of the triggering request.
type Bundle struct {
	Node    string         `json:"node,omitempty"`
	Trigger string         `json:"trigger"`
	Reason  string         `json:"reason,omitempty"`
	Trace   string         `json:"trace,omitempty"`
	At      time.Time      `json:"at"`
	Health  Status         `json:"health"`
	Rates   Rates          `json:"rates"`
	Events  []obs.Event    `json:"events,omitempty"`
	Spans   []tracing.Span `json:"spans,omitempty"`
}

// Trigger asks the flight recorder to dump a diagnostic bundle. trigger
// names the cause ("health_transition", "slow_request", "peer_dead"),
// reason is free-form evidence, and trace, when nonzero, selects the
// triggering request's spans for inclusion. Dumps are rate-limited to
// one per FlightMinGap and written asynchronously, so callers on hot
// paths (event hooks, the sampling tick) return immediately. No-op when
// FlightDir is unset.
func (e *Engine) Trigger(trigger, reason string, trace uint64) {
	if e.cfg.FlightDir == "" {
		return
	}
	e.flightMu.Lock()
	now := time.Now()
	if !e.lastFlight.IsZero() && now.Sub(e.lastFlight) < e.cfg.FlightMinGap {
		e.flightMu.Unlock()
		return
	}
	e.lastFlight = now
	e.flightSeq++
	seq := e.flightSeq
	e.flightMu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.dumpBundle(now, seq, trigger, reason, trace)
	}()
}

// dumpBundle assembles and writes one bundle file,
// flight-<unixms>-<seq>-<trigger>.json in FlightDir. Errors are
// swallowed: the flight recorder must never take the node down.
func (e *Engine) dumpBundle(now time.Time, seq int, trigger, reason string, trace uint64) {
	// Take a fresh sample first so the bundle's rates and health reflect
	// the triggering moment, not the last scheduled tick.
	e.Tick(time.Now())

	b := Bundle{
		Node:    e.cfg.Node,
		Trigger: trigger,
		Reason:  reason,
		At:      now,
		Health:  e.Status(),
		Rates:   e.Rates(),
		Events:  e.cfg.Events.Events(),
	}
	if trace != 0 {
		b.Trace = tracing.TraceIDString(trace)
		if e.cfg.Sink != nil {
			b.Spans = e.cfg.Sink.Trace(trace)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(e.cfg.FlightDir, 0o755); err != nil {
		return
	}
	name := fmt.Sprintf("flight-%d-%03d-%s.json", now.UnixMilli(), seq, trigger)
	_ = os.WriteFile(filepath.Join(e.cfg.FlightDir, name), data, 0o644)
}
