package history

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/defragdht/d2/internal/obs/census"
)

// State is a health verdict, ordered by severity.
type State uint8

const (
	StateOK State = iota
	StateDegraded
	StateFailing
)

var stateNames = [...]string{"ok", "degraded", "failing"}

// String returns "ok", "degraded", or "failing" (static strings; no
// allocation).
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Check is one threshold health check. Value reads the current sample
// window through the View's allocation-free accessors; the check
// degrades at Value >= Warn and fails at Value >= Fail.
type Check struct {
	// Name identifies the check in status documents ("replica_deficit").
	Name string
	// Describe explains what the value measures, for evidence strings.
	Describe string
	// Value computes the checked quantity from the sample window.
	Value func(v *View) float64
	// Warn and Fail are the ascending thresholds (Warn <= Fail). Use
	// math.Inf(1) for a check that can degrade but never fail.
	Warn, Fail float64
}

// CheckResult is one check's numeric outcome — static name, enum state,
// floats. Evidence strings render only when a status document is built.
type CheckResult struct {
	Name  string
	State State
	Value float64
	Warn  float64
	Fail  float64
}

// View gives checks windowed access to the sample ring: the newest
// sample against the one Lookback ticks older. Every accessor is
// allocation-free and returns 0 for series the registry doesn't carry,
// so one default check set works across nodes, clients, and simulators.
type View struct {
	e      *Engine
	newest *sample
	oldest *sample
}

// Seconds returns the window's wall-clock span.
func (v *View) Seconds() float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	return float64(v.newest.at-v.oldest.at) / 1e9
}

// Gauge returns the named gauge's newest sampled value.
func (v *View) Gauge(name string) float64 {
	if v.newest == nil {
		return 0
	}
	i, ok := v.e.gaugeIdx[name]
	if !ok {
		return 0
	}
	return float64(v.newest.gauges[i])
}

// CounterDelta returns the named counter's increase across the window.
func (v *View) CounterDelta(name string) float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	i, ok := v.e.counterIdx[name]
	if !ok {
		return 0
	}
	return float64(v.newest.counters[i] - v.oldest.counters[i])
}

// Rate returns the named counter's per-second rate across the window.
func (v *View) Rate(name string) float64 {
	sec := v.Seconds()
	if sec <= 0 {
		return 0
	}
	return v.CounterDelta(name) / sec
}

// RatePrefix returns the per-second rate summed over all counters whose
// name starts with prefix (covering labeled families like
// d2_rpc_client_errors_total{rpc="..."}).
func (v *View) RatePrefix(prefix string) float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	return v.e.ratePrefixLocked(v.newest, v.oldest, prefix)
}

// Ratio returns delta(num)/delta(den) across the window (0 when the
// denominator didn't move) — stall fractions, error fractions.
func (v *View) Ratio(num, den string) float64 {
	d := v.CounterDelta(den)
	if d <= 0 {
		return 0
	}
	return v.CounterDelta(num) / d
}

// DeltaCount returns how many observations the named histogram recorded
// inside the window.
func (v *View) DeltaCount(name string) float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	i, ok := v.e.histIdx[name]
	if !ok {
		return 0
	}
	var n uint64
	for b, c := range v.newest.histCounts[i] {
		n += c - v.oldest.histCounts[i][b]
	}
	return float64(n)
}

// DeltaMean returns the mean of the named histogram's observations
// inside the window.
func (v *View) DeltaMean(name string) float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	i, ok := v.e.histIdx[name]
	if !ok {
		return 0
	}
	var n uint64
	for b, c := range v.newest.histCounts[i] {
		n += c - v.oldest.histCounts[i][b]
	}
	if n == 0 {
		return 0
	}
	return float64(v.newest.histSums[i]-v.oldest.histSums[i]) / float64(n)
}

// DeltaQuantile returns the q-th quantile of the named histogram's
// observations inside the window, interpolated over interval bucket
// deltas in the engine's scratch buffer.
func (v *View) DeltaQuantile(name string, q float64) float64 {
	if v.newest == nil || v.newest == v.oldest {
		return 0
	}
	i, ok := v.e.histIdx[name]
	if !ok {
		return 0
	}
	var n uint64
	for b, c := range v.newest.histCounts[i] {
		d := c - v.oldest.histCounts[i][b]
		v.e.scratch[b] = d
		n += d
	}
	if n == 0 {
		return 0
	}
	return quantileFromCounts(v.e.hists[i], v.e.scratch[:len(v.newest.histCounts[i])], n, q)
}

// DefaultChecks returns the node health check set:
//
//   - replica_deficit: block replicas the last repair round could not
//     place (missing successors or failed pushes) — churn has outrun
//     replication.
//   - pool_failfast: rate of calls refused by a peer pool's dial-backoff
//     window — a peer is down or flapping.
//   - lookup_hops: mean hops per lookup inside the window — routing
//     inflation from stale successor lists or partitions.
//   - stream_stalls: fraction of stream segments that stalled the
//     consumer — the readahead window can't keep up.
//   - events_dropped: event-log ring overwrites per second — the
//     diagnostic window is being lost while something is wrong.
//   - rpc_errors: client-side RPC errors per second across all kinds.
//   - wal_stall: durable-store commits per second that waited longer
//     than the stall threshold for their group fsync — the device can't
//     keep up with the write load (0 on in-memory nodes, which never
//     carry the series).
//   - fragmentation: the placement census's runs-per-file ratio — the
//     paper's defrag invariant measured live (0 on nodes without a
//     census sweeper, which never carry the series).
//
// §10 load imbalance is a cluster-level property and is evaluated by
// BuildClusterReport over per-node loads, not here.
func DefaultChecks() []Check {
	return []Check{
		{
			Name:     "replica_deficit",
			Describe: "block replicas missing after the last repair round",
			Value:    func(v *View) float64 { return v.Gauge("d2_node_replica_deficit") },
			Warn:     1,
			Fail:     64,
		},
		{
			Name:     "pool_failfast",
			Describe: "calls refused during peer dial backoff, per second",
			Value:    func(v *View) float64 { return v.Rate("d2_tcp_pool_failfast_total") },
			Warn:     0.2,
			Fail:     20,
		},
		{
			Name:     "lookup_hops",
			Describe: "mean hops per lookup in the window",
			Value:    func(v *View) float64 { return v.DeltaMean("d2_node_lookup_hops") },
			Warn:     8,
			Fail:     32,
		},
		{
			Name:     "stream_stalls",
			Describe: "fraction of stream segments that stalled",
			Value:    func(v *View) float64 { return v.Ratio("d2_stream_stalls_total", "d2_stream_segments_total") },
			Warn:     0.25,
			Fail:     0.75,
		},
		{
			Name:     "events_dropped",
			Describe: "event-log entries overwritten unread, per second",
			Value:    func(v *View) float64 { return v.Rate("d2_events_dropped_total") },
			Warn:     1,
			Fail:     200,
		},
		{
			Name:     "rpc_errors",
			Describe: "client-side RPC errors per second, all kinds",
			Value:    func(v *View) float64 { return v.RatePrefix("d2_rpc_client_errors_total") },
			Warn:     2,
			Fail:     100,
		},
		{
			Name:     "wal_stall",
			Describe: "durable-store commits stalled on their group fsync, per second",
			Value:    func(v *View) float64 { return v.Rate("d2_store_wal_stalls_total") },
			Warn:     1,
			Fail:     50,
		},
		{
			Name:     "fragmentation",
			Describe: "placement-census runs per file (1.0 = fully defragmented)",
			Value:    func(v *View) float64 { return v.Gauge("d2_census_frag_ratio_milli") / 1000 },
			Warn:     census.FragWarn,
			Fail:     census.FragFail,
		},
	}
}

// evaluateLocked recomputes every check against the current window and
// returns whether the overall state changed (plus the edge). Called with
// e.mu held; allocation-free in the steady state.
func (e *Engine) evaluateLocked() (transition bool, from, to State) {
	e.view.newest, e.view.oldest = e.lookbackSamples()
	overall := StateOK
	for i := range e.cfg.Checks {
		c := &e.cfg.Checks[i]
		val := c.Value(&e.view)
		st := StateOK
		switch {
		case val >= c.Fail:
			st = StateFailing
		case val >= c.Warn:
			st = StateDegraded
		}
		e.results[i] = CheckResult{Name: c.Name, State: st, Value: val, Warn: c.Warn, Fail: c.Fail}
		if st > overall {
			overall = st
		}
	}
	if overall != e.state {
		from, to = e.state, overall
		e.state = overall
		return true, from, to
	}
	return false, e.state, e.state
}

// State returns the current overall health state.
func (e *Engine) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Results copies the current per-check results (newest evaluation).
func (e *Engine) Results() []CheckResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]CheckResult, len(e.results))
	copy(out, e.results)
	return out
}

// CheckStatus is one check in a rendered status document.
type CheckStatus struct {
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Value    float64 `json:"value"`
	Warn     float64 `json:"warn"`
	Fail     float64 `json:"fail,omitempty"`
	Evidence string  `json:"evidence,omitempty"`
}

// Status is the /healthz document: the overall verdict with per-check
// evidence.
type Status struct {
	Node       string        `json:"node,omitempty"`
	State      string        `json:"state"`
	At         time.Time     `json:"at"`
	Ticks      uint64        `json:"ticks"`
	IntervalMS int64         `json:"interval_ms"`
	WindowSec  float64       `json:"window_sec"`
	Checks     []CheckStatus `json:"checks"`
}

// Status renders the current health state with per-check evidence (cold
// path; allocates).
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Node:       e.cfg.Node,
		State:      e.state.String(),
		At:         time.Now(),
		Ticks:      e.ticks,
		IntervalMS: e.cfg.Interval.Milliseconds(),
	}
	if newest, oldest := e.lookbackSamples(); newest != nil && newest != oldest {
		st.WindowSec = float64(newest.at-oldest.at) / 1e9
	}
	for i, r := range e.results {
		cs := CheckStatus{
			Name:  r.Name,
			State: r.State.String(),
			Value: r.Value,
			Warn:  r.Warn,
			Fail:  r.Fail,
		}
		if math.IsInf(r.Fail, 1) {
			cs.Fail = 0
		}
		describe := ""
		if i < len(e.cfg.Checks) {
			describe = e.cfg.Checks[i].Describe
		}
		cs.Evidence = fmt.Sprintf("%s: %.4g (warn >= %.4g, fail >= %.4g) over %.0fs",
			describe, r.Value, r.Warn, r.Fail, st.WindowSec)
		st.Checks = append(st.Checks, cs)
	}
	return st
}

// StatusJSON returns the Status document JSON-encoded (nil on error).
func (e *Engine) StatusJSON() []byte {
	b, err := json.Marshal(e.Status())
	if err != nil {
		return nil
	}
	return b
}
