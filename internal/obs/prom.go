package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Registry names may carry a label block (`name{k="v"}`), which
// is split out so histogram bucket series get an additional `le` label.
// Series are emitted in sorted name order, grouped so each base name gets
// one # TYPE header.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	writeFamily(bw, s.Counters, "counter", func(name, labels string, v uint64) {
		bw.printf("%s%s %d\n", name, wrapLabels(labels), v)
	})
	writeFamily(bw, s.Gauges, "gauge", func(name, labels string, v int64) {
		bw.printf("%s%s %d\n", name, wrapLabels(labels), v)
	})
	writeFamily(bw, s.Histograms, "histogram", func(name, labels string, h HistSnapshot) {
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			bw.printf("%s_bucket%s %d\n", name, joinLabels(labels, `le="`+le+`"`), cum)
		}
		bw.printf("%s_sum%s %d\n", name, wrapLabels(labels), h.Sum)
		bw.printf("%s_count%s %d\n", name, wrapLabels(labels), cum)
	})
	return bw.err
}

// writeFamily emits one metric family (sorted, TYPE header per base name).
func writeFamily[V any](bw *errWriter, m map[string]V, typ string, emit func(name, labels string, v V)) {
	lastBase := ""
	for _, key := range sortedKeys(m) {
		name, labels := splitLabels(key)
		if name != lastBase {
			bw.printf("# TYPE %s %s\n", name, typ)
			lastBase = name
		}
		emit(name, labels, m[key])
	}
}

// splitLabels separates `name{k="v"}` into name and the inner label list.
func splitLabels(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

// wrapLabels re-wraps an inner label list in braces (empty stays empty).
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels merges an inner label list with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// errWriter latches the first write error so the writers above stay
// uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
