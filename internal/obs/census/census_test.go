package census

import (
	"encoding/binary"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/store"
)

// rawKey builds a key byte-wise: vol selects the volume (first byte of
// the 20-byte volume region), file a path slot (first byte of the path
// region), block the 8-byte block number. Keys of one file with
// ascending blocks sort consecutively, which is the layout invariant
// the census counts runs over.
func rawKey(vol, file byte, block uint64) keys.Key {
	var k keys.Key
	k[0] = vol
	k[20] = file
	binary.BigEndian.PutUint64(k[52:60], block)
	return k
}

// wholeRingBounds classifies every entry as primary (single-node view).
func wholeRingBounds() Bounds {
	var self keys.Key
	self[0] = 0x80
	return Bounds{Self: self, Ok: true}
}

func newSweeper(t testing.TB, st store.Engine, bounds func() Bounds) *Sweeper {
	t.Helper()
	return New(Config{Store: st, Bounds: bounds, Registry: obs.New()})
}

// TestGoldenFullyLocal sweeps a fully-local layout: three files of eight
// consecutive blocks each, all primary. Every file must census as one
// run, so the fragmentation ratio is exactly 1.0.
func TestGoldenFullyLocal(t *testing.T) {
	st := store.New()
	now := time.Now()
	for file := byte(1); file <= 3; file++ {
		for b := uint64(0); b < 8; b++ {
			st.Put(rawKey(1, file, b), make([]byte, 100), 0, now)
		}
	}
	s := newSweeper(t, st, wholeRingBounds)
	s.Sweep()
	r := s.Snapshot()

	if r.PrimaryBlocks != 24 || r.PrimaryBytes != 2400 {
		t.Fatalf("primary = %d blocks / %d bytes, want 24 / 2400", r.PrimaryBlocks, r.PrimaryBytes)
	}
	if r.Files != 3 || r.Runs != 3 || r.OwnerSwitches != 0 {
		t.Fatalf("files=%d runs=%d switches=%d, want 3/3/0", r.Files, r.Runs, r.OwnerSwitches)
	}
	if got := r.FragRatio(); got != 1.0 {
		t.Fatalf("frag ratio = %v, want 1.0", got)
	}
	if len(r.Volumes) != 1 {
		t.Fatalf("volumes = %d, want 1", len(r.Volumes))
	}
	v := r.Volumes[0]
	if v.MaxRun != 8 {
		t.Fatalf("max run = %d, want 8", v.MaxRun)
	}
	// All three runs have length 8, which lands in bucket (4,8].
	var wantHist [RunBuckets]int64
	wantHist[runBucket(8)] = 3
	if v.RunHist != wantHist {
		t.Fatalf("run hist = %v, want %v", v.RunHist, wantHist)
	}
}

// TestGoldenFullyScattered sweeps the worst case: two files whose
// present blocks are all non-consecutive, so every block is its own run.
func TestGoldenFullyScattered(t *testing.T) {
	st := store.New()
	now := time.Now()
	for file := byte(1); file <= 2; file++ {
		for _, b := range []uint64{0, 2, 4, 6} {
			st.Put(rawKey(1, file, b), make([]byte, 10), 0, now)
		}
	}
	s := newSweeper(t, st, wholeRingBounds)
	s.Sweep()
	r := s.Snapshot()

	if r.Files != 2 || r.Runs != 8 || r.OwnerSwitches != 6 {
		t.Fatalf("files=%d runs=%d switches=%d, want 2/8/6", r.Files, r.Runs, r.OwnerSwitches)
	}
	if got := r.FragRatio(); got != 4.0 {
		t.Fatalf("frag ratio = %v, want 4.0", got)
	}
	v := r.Volumes[0]
	if v.MaxRun != 1 || v.RunHist[runBucket(1)] != 8 {
		t.Fatalf("max run = %d hist[0]=%d, want 1 and 8 singleton runs", v.MaxRun, v.RunHist[0])
	}
}

// TestGoldenKnownRunLengths pins the run detector on a hand-built
// layout: one file holding blocks 0-4 (a run of 5) and 10-11 (a run of
// 2), and checks both the counts and the histogram buckets they land in.
func TestGoldenKnownRunLengths(t *testing.T) {
	st := store.New()
	now := time.Now()
	for _, b := range []uint64{0, 1, 2, 3, 4, 10, 11} {
		st.Put(rawKey(1, 1, b), make([]byte, 10), 0, now)
	}
	s := newSweeper(t, st, wholeRingBounds)
	s.Sweep()
	r := s.Snapshot()

	if r.Files != 1 || r.Runs != 2 || r.OwnerSwitches != 1 {
		t.Fatalf("files=%d runs=%d switches=%d, want 1/2/1", r.Files, r.Runs, r.OwnerSwitches)
	}
	v := r.Volumes[0]
	if v.MaxRun != 5 {
		t.Fatalf("max run = %d, want 5", v.MaxRun)
	}
	var wantHist [RunBuckets]int64
	wantHist[runBucket(5)]++ // bucket (4,8]
	wantHist[runBucket(2)]++ // bucket (1,2]
	if v.RunHist != wantHist {
		t.Fatalf("run hist = %v, want %v", v.RunHist, wantHist)
	}
	if runBucket(5) != 3 || runBucket(2) != 1 || runBucket(1) != 0 || runBucket(4) != 2 {
		t.Fatalf("bucket mapping drifted: 1→%d 2→%d 4→%d 5→%d",
			runBucket(1), runBucket(2), runBucket(4), runBucket(5))
	}
}

// TestRoleClassification gives the sweeper a real arc (pred 0x40, self
// 0x80) over a store holding primary data, replica data outside the
// arc, a fresh pointer, and a stale pointer, and checks every role
// tally. Replica and pointer entries must not contribute runs or files.
func TestRoleClassification(t *testing.T) {
	st := store.New()
	now := time.Now()
	// Volume 0x50 is inside (0x40, 0x80]: primary, one file of 4 blocks.
	for b := uint64(0); b < 4; b++ {
		st.Put(rawKey(0x50, 1, b), make([]byte, 100), 0, now)
	}
	// Volume 0x10 is outside the arc: replica, file head included.
	for b := uint64(0); b < 3; b++ {
		st.Put(rawKey(0x10, 1, b), make([]byte, 50), 0, now)
	}
	// One fresh and one stale pointer (default StaleAfter is 1h).
	st.PutPointer(rawKey(0x50, 2, 0), "peer:1", 64, now)
	st.PutPointer(rawKey(0x50, 3, 0), "peer:2", 64, now.Add(-2*time.Hour))

	var self, pred keys.Key
	self[0], pred[0] = 0x80, 0x40
	s := newSweeper(t, st, func() Bounds { return Bounds{Self: self, Pred: pred, Ok: true} })
	s.Sweep()
	r := s.Snapshot()

	if r.PrimaryBlocks != 4 || r.PrimaryBytes != 400 {
		t.Fatalf("primary = %d/%d, want 4 blocks / 400 bytes", r.PrimaryBlocks, r.PrimaryBytes)
	}
	if r.ReplicaBlocks != 3 || r.ReplicaBytes != 150 {
		t.Fatalf("replica = %d/%d, want 3 blocks / 150 bytes", r.ReplicaBlocks, r.ReplicaBytes)
	}
	if r.PointerBlocks != 2 || r.PointerBytes != 128 || r.StalePointers != 1 {
		t.Fatalf("pointers = %d blocks / %d bytes / %d stale, want 2/128/1",
			r.PointerBlocks, r.PointerBytes, r.StalePointers)
	}
	// Only the primary file counts: replica heads and pointer heads don't.
	if r.Files != 1 || r.Runs != 1 {
		t.Fatalf("files=%d runs=%d, want 1/1", r.Files, r.Runs)
	}
}

// TestSweepResetsBetweenTicks mutates the store between sweeps and
// checks the persistent accumulators fully reset: counts reflect the
// current index, not history.
func TestSweepResetsBetweenTicks(t *testing.T) {
	st := store.New()
	now := time.Now()
	for b := uint64(0); b < 8; b++ {
		st.Put(rawKey(1, 1, b), make([]byte, 10), 0, now)
	}
	s := newSweeper(t, st, wholeRingBounds)
	s.Sweep()
	if r := s.Snapshot(); r.Runs != 1 || r.PrimaryBlocks != 8 {
		t.Fatalf("first sweep: runs=%d blocks=%d, want 1/8", r.Runs, r.PrimaryBlocks)
	}
	// Punch holes: delete blocks 2 and 5 → runs 0-1, 3-4, 6-7.
	st.Delete(rawKey(1, 1, 2))
	st.Delete(rawKey(1, 1, 5))
	s.Sweep()
	r := s.Snapshot()
	if r.Runs != 3 || r.PrimaryBlocks != 6 {
		t.Fatalf("second sweep: runs=%d blocks=%d, want 3/6", r.Runs, r.PrimaryBlocks)
	}
	if r.Sweeps != 2 {
		t.Fatalf("sweeps = %d, want 2", r.Sweeps)
	}
}

// TestMergeAssociative checks Merge over three real sweep reports:
// any grouping and any order must produce identical cluster totals —
// the property that makes ClusterCensus independent of walk order.
func TestMergeAssociative(t *testing.T) {
	mk := func(seed byte, blocks []uint64) *Report {
		st := store.New()
		now := time.Now()
		for _, b := range blocks {
			st.Put(rawKey(seed, 1, b), make([]byte, 10), 0, now)
			st.Put(rawKey(seed+1, 2, b*2), make([]byte, 20), 0, now)
		}
		st.PutPointer(rawKey(seed, 9, 0), "p:1", 5, now.Add(-2*time.Hour))
		s := newSweeper(t, st, wholeRingBounds)
		s.Sweep()
		return s.Snapshot()
	}
	a := mk(1, []uint64{0, 1, 2, 5})
	b := mk(3, []uint64{0, 4})
	c := mk(1, []uint64{7, 8, 9}) // overlaps a's volumes: exercises the by-ID merge

	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("associativity broken:\n (a+b)+c = %+v\n a+(b+c) = %+v", left, right)
	}
	if !reflect.DeepEqual(Merge(a, b), Merge(b, a)) {
		t.Fatal("commutativity broken")
	}
	// Merging with nil must be the identity on content.
	if got := Merge(a, nil); !reflect.DeepEqual(got, Merge(nil, a)) {
		t.Fatalf("nil merge asymmetric: %+v", got)
	}

	// Spot-check the merged totals against the inputs.
	wantBlocks := a.PrimaryBlocks + b.PrimaryBlocks + c.PrimaryBlocks
	if left.PrimaryBlocks != wantBlocks {
		t.Fatalf("merged blocks = %d, want %d", left.PrimaryBlocks, wantBlocks)
	}
	if left.StalePointers != 3 {
		t.Fatalf("merged stale pointers = %d, want 3", left.StalePointers)
	}
}

// TestBuildClusterGolden checks the derived §5/§10 metrics over
// hand-built node reports, including a census-less node that must be
// listed but contribute nothing.
func TestBuildClusterGolden(t *testing.T) {
	nodes := []NodeReport{
		{Addr: "a:1", ID: "aa", Rep: &Report{
			PrimaryBlocks: 10, PrimaryBytes: 1000, ReplicaBytes: 500,
			Files: 2, Runs: 2,
			Volumes: []VolumeCensus{{Volume: "v1", Blocks: 10, Bytes: 1000, Files: 2, Runs: 2, MaxRun: 5}},
		}},
		{Addr: "b:1", ID: "bb", Rep: &Report{
			PrimaryBlocks: 10, PrimaryBytes: 3000, ReplicaBytes: 500,
			Files: 1, Runs: 4, OwnerSwitches: 3, StalePointers: 2,
			Volumes: []VolumeCensus{{Volume: "v1", Blocks: 10, Bytes: 3000, Files: 1, Runs: 4, MaxRun: 3}},
		}},
		{Addr: "c:1", ID: "cc"}, // census disabled
	}
	c := BuildCluster(nodes)

	if c.TotalBlocks != 20 || c.TotalBytes != 4000 || c.TotalFiles != 3 || c.TotalRuns != 6 {
		t.Fatalf("totals = %d blocks %d bytes %d files %d runs, want 20/4000/3/6",
			c.TotalBlocks, c.TotalBytes, c.TotalFiles, c.TotalRuns)
	}
	if c.StalePointers != 2 {
		t.Fatalf("stale = %d, want 2", c.StalePointers)
	}
	if c.FragRatio != 2.0 || c.Locality != 1.0 {
		t.Fatalf("frag=%v locality=%v, want 2.0 and 1.0", c.FragRatio, c.Locality)
	}
	if c.State != "ok" {
		t.Fatalf("state = %q, want ok at frag 2.0", c.State)
	}
	if len(c.Volumes) != 1 || c.Volumes[0].Blocks != 20 || c.Volumes[0].MaxRun != 5 {
		t.Fatalf("merged volumes wrong: %+v", c.Volumes)
	}
	// Imbalance over primary bytes {1000, 3000} is stddev/mean = 0.5.
	if c.Imbalance < 0.49 || c.Imbalance > 0.51 {
		t.Fatalf("imbalance = %v, want 0.5", c.Imbalance)
	}
	// Replica bytes are equal, so spread must be 0.
	if c.ReplicaSpread != 0 {
		t.Fatalf("replica spread = %v, want 0", c.ReplicaSpread)
	}

	// State thresholds.
	failing := BuildCluster([]NodeReport{{Addr: "a:1", Rep: &Report{Files: 1, Runs: 20}}})
	if failing.State != "failing" {
		t.Fatalf("frag 20 state = %q, want failing", failing.State)
	}
}

// TestReportJSONRoundTrip pins the wire form: ReportJSON → ParseReport
// must reproduce the snapshot exactly, and malformed input must yield
// nil rather than a zero report.
func TestReportJSONRoundTrip(t *testing.T) {
	st := store.New()
	now := time.Now()
	for b := uint64(0); b < 5; b++ {
		st.Put(rawKey(1, 1, b), make([]byte, 10), 0, now)
	}
	st.PutPointer(rawKey(1, 2, 0), "p:1", 9, now)
	s := newSweeper(t, st, wholeRingBounds)
	s.Sweep()

	want := s.Snapshot()
	got := ParseReport(s.ReportJSON())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if ParseReport(nil) != nil || ParseReport([]byte("{broken")) != nil {
		t.Fatal("ParseReport must return nil for empty or malformed input")
	}
}

// TestSkipsWithoutBounds checks a sweeper whose node has no ring
// position yet does nothing rather than publishing a bogus census.
func TestSkipsWithoutBounds(t *testing.T) {
	st := store.New()
	st.Put(rawKey(1, 1, 0), make([]byte, 10), 0, time.Now())
	s := newSweeper(t, st, func() Bounds { return Bounds{} })
	s.Sweep()
	if r := s.Snapshot(); r.Sweeps != 0 || r.PrimaryBlocks != 0 {
		t.Fatalf("sweep without bounds ran: %+v", r)
	}
}

// TestSweepZeroAllocs is the tentpole gate in test form: a steady-state
// sweep tick over a populated store must not allocate. Skipped under
// the race detector, whose instrumentation changes allocation behavior;
// the verify tier enforces the same bound through BenchmarkSweepTick.
func TestSweepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	s := benchSweeper(t)
	allocs := testing.AllocsPerRun(20, s.Sweep)
	if allocs != 0 {
		t.Fatalf("steady-state sweep allocates %v times per tick, want 0", allocs)
	}
}

// benchSweeper builds a sweeper over a store with several volumes,
// files, and roles, and warms it (first sweep allocates the per-volume
// accumulators; later ones must not).
func benchSweeper(tb testing.TB) *Sweeper {
	tb.Helper()
	st := store.New()
	now := time.Now()
	for vol := byte(1); vol <= 4; vol++ {
		for file := byte(1); file <= 16; file++ {
			for b := uint64(0); b < 16; b++ {
				if b%5 == 4 {
					continue // holes: exercise run closing mid-file
				}
				st.Put(rawKey(vol, file, b), make([]byte, 32), 0, now)
			}
		}
	}
	st.PutPointer(rawKey(5, 1, 0), "p:1", 7, now.Add(-2*time.Hour))
	s := newSweeper(tb, st, wholeRingBounds)
	s.Sweep()
	return s
}

// BenchmarkSweepTick measures the steady-state census tick; the verify
// census tier gates on its allocation report staying at 0 allocs/op.
func BenchmarkSweepTick(b *testing.B) {
	s := benchSweeper(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sweep()
	}
}

// TestSweepDuringChurn runs sweeps concurrently with store churn
// (puts, deletes, pointer writes) and snapshot reads — the sweeper must
// stay consistent and race-free (the verify tier runs this under -race
// and, with D2_CENSUS_SOAK set, for a longer wall-clock window).
func TestSweepDuringChurn(t *testing.T) {
	dur := 200 * time.Millisecond
	if env := os.Getenv("D2_CENSUS_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad D2_CENSUS_SOAK %q: %v", env, err)
		}
		dur = d
	}
	st := store.New()
	s := newSweeper(t, st, wholeRingBounds)
	stop := make(chan struct{})
	done := make(chan struct{})

	go func() {
		defer close(done)
		now := time.Now()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vol, file, block := byte(1+i%3), byte(1+i%7), i%64
			switch i % 5 {
			case 0, 1, 2:
				st.Put(rawKey(vol, file, block), make([]byte, 64), 0, now)
			case 3:
				st.Delete(rawKey(vol, file, (i/2)%64))
			case 4:
				st.PutPointer(rawKey(vol, file+10, block), "p:1", 8, now)
			}
		}
	}()

	deadline := time.Now().Add(dur)
	sweeps := 0
	for time.Now().Before(deadline) {
		s.Sweep()
		sweeps++
		r := s.Snapshot()
		// Invariants that hold under any interleaving of the churn.
		if r.Runs < 0 || r.Files < 0 || r.Runs > r.PrimaryBlocks {
			t.Fatalf("inconsistent snapshot under churn: %+v", r)
		}
		for _, v := range r.Volumes {
			if v.Runs > v.Blocks || v.Files > v.Blocks {
				t.Fatalf("inconsistent volume under churn: %+v", v)
			}
		}
	}
	close(stop)
	<-done
	if sweeps == 0 {
		t.Fatal("no sweeps completed")
	}
	t.Logf("churn soak: %d sweeps in %v", sweeps, dur)
}

// TestFragThresholdOrdering pins the shared thresholds: warn must stay
// below fail, and both must classify as documented.
func TestFragThresholdOrdering(t *testing.T) {
	if FragWarn >= FragFail {
		t.Fatalf("FragWarn %v >= FragFail %v", FragWarn, FragFail)
	}
	for _, tc := range []struct {
		runs  int64
		state string
	}{{2, "ok"}, {8, "warn"}, {40, "failing"}} {
		c := BuildCluster([]NodeReport{{Rep: &Report{Files: 2, Runs: tc.runs}}})
		if c.State != tc.state {
			t.Fatalf("runs/files %d: state %q, want %q", tc.runs/2, c.State, tc.state)
		}
	}
}
