//go:build !race

package census

// raceEnabled reports whether the race detector instruments this build;
// the zero-alloc assertion skips under it (see TestSweepZeroAllocs).
const raceEnabled = false
