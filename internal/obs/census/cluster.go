package census

import (
	"sort"

	"github.com/defragdht/d2/internal/stats"
)

// NodeReport pairs a node's identity with its parsed census report, as
// gathered by Client.ClusterCensus over WalkRing.
type NodeReport struct {
	Addr string  `json:"addr"`
	ID   string  `json:"id"` // short hex node ID
	Rep  *Report `json:"report,omitempty"`
}

// Cluster is the merged §5-style view of placement across the ring.
type Cluster struct {
	Nodes   []NodeReport   `json:"nodes"`
	Volumes []VolumeCensus `json:"volumes,omitempty"`

	TotalBlocks   int64 `json:"total_blocks"`
	TotalBytes    int64 `json:"total_bytes"`
	TotalFiles    int64 `json:"total_files"`
	TotalRuns     int64 `json:"total_runs"`
	StalePointers int64 `json:"stale_pointers"`

	// Locality is the expected number of owner switches a sequential
	// scan of an average file incurs: max(runs-files, 0)/files over the
	// merged per-volume counts. 0 is the paper's ideal — every file
	// wholly on one node.
	Locality float64 `json:"locality"`
	// FragRatio is mean contiguous runs per file (Locality + 1 when any
	// files exist); 1.0 is fully defragmented.
	FragRatio float64 `json:"frag_ratio"`
	// Imbalance is the §10 load metric: normalized standard deviation
	// of per-node primary bytes.
	Imbalance float64 `json:"imbalance"`
	// ReplicaSpread is the same statistic over per-node replica bytes —
	// how evenly replica placement spreads the secondary copies.
	ReplicaSpread float64 `json:"replica_spread"`

	// State classifies FragRatio against FragWarn/FragFail:
	// "ok", "warn", or "failing".
	State string `json:"state"`
}

// Merge combines two reports of disjoint primary ranges. It is
// associative and commutative (pure sums, max for MaxRun), so cluster
// aggregation is independent of walk order — the property the
// merge-associativity test pins down.
func Merge(a, b *Report) *Report {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		a = &Report{}
	case b == nil:
		b = &Report{}
	}
	out := &Report{
		PrimaryBlocks: a.PrimaryBlocks + b.PrimaryBlocks,
		PrimaryBytes:  a.PrimaryBytes + b.PrimaryBytes,
		ReplicaBlocks: a.ReplicaBlocks + b.ReplicaBlocks,
		ReplicaBytes:  a.ReplicaBytes + b.ReplicaBytes,
		PointerBlocks: a.PointerBlocks + b.PointerBlocks,
		PointerBytes:  a.PointerBytes + b.PointerBytes,
		StalePointers: a.StalePointers + b.StalePointers,
		Files:         a.Files + b.Files,
		Runs:          a.Runs + b.Runs,
		SweepNanos:    maxI64(a.SweepNanos, b.SweepNanos),
		Sweeps:        a.Sweeps + b.Sweeps,
		Volumes:       mergeVolumes(a.Volumes, b.Volumes),
	}
	if d := out.Runs - out.Files; d > 0 {
		out.OwnerSwitches = d
	}
	return out
}

// mergeVolumes merges two sorted-or-not volume lists by volume ID,
// returning a sorted result.
func mergeVolumes(a, b []VolumeCensus) []VolumeCensus {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	byID := make(map[string]*VolumeCensus, len(a)+len(b))
	add := func(v VolumeCensus) {
		m, ok := byID[v.Volume]
		if !ok {
			cp := v
			byID[v.Volume] = &cp
			return
		}
		m.Blocks += v.Blocks
		m.Bytes += v.Bytes
		m.Files += v.Files
		m.Runs += v.Runs
		m.MaxRun = maxI64(m.MaxRun, v.MaxRun)
		for i := range m.RunHist {
			m.RunHist[i] += v.RunHist[i]
		}
	}
	for _, v := range a {
		add(v)
	}
	for _, v := range b {
		add(v)
	}
	out := make([]VolumeCensus, 0, len(byID))
	for _, v := range byID {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Volume < out[j].Volume })
	return out
}

// BuildCluster merges per-node reports into the cluster view and
// derives the §5/§10 metrics. Nodes with a nil report (census disabled
// or an older binary) still appear in Nodes but contribute nothing.
func BuildCluster(nodes []NodeReport) *Cluster {
	c := &Cluster{Nodes: nodes, State: "ok"}
	merged := &Report{}
	var primary, replica []float64
	for _, n := range nodes {
		if n.Rep == nil {
			continue
		}
		merged = Merge(merged, n.Rep)
		primary = append(primary, float64(n.Rep.PrimaryBytes))
		replica = append(replica, float64(n.Rep.ReplicaBytes))
	}
	c.Volumes = merged.Volumes
	c.TotalBlocks = merged.PrimaryBlocks
	c.TotalBytes = merged.PrimaryBytes
	c.TotalFiles = merged.Files
	c.TotalRuns = merged.Runs
	c.StalePointers = merged.StalePointers
	if merged.Files > 0 {
		c.FragRatio = float64(merged.Runs) / float64(merged.Files)
		c.Locality = float64(merged.OwnerSwitches) / float64(merged.Files)
	}
	c.Imbalance = stats.NormStdDev(primary)
	c.ReplicaSpread = stats.NormStdDev(replica)
	switch {
	case c.FragRatio >= FragFail:
		c.State = "failing"
	case c.FragRatio >= FragWarn:
		c.State = "warn"
	}
	return c
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
