// Package census is the live placement census (the observability layer
// for the paper's §5 claims): a background sweeper on every node walks
// the local store index in key order and measures, on the real ring,
// the thing the offline simulators estimate — how fragmented each
// volume's block placement actually is. Per node it tallies blocks and
// bytes by role (primary / replica / pointer), per-volume contiguous
// run-length histograms, file counts, and stale pointers; cluster
// aggregation (cluster.go) merges the per-node reports into §5-style
// metrics: a locality score (expected owner switches per sequential
// file scan), per-volume fragmentation ratios, §10 load imbalance, and
// replica-placement spread.
//
// The sweep is index-only (store.Engine.ArcVisit) and the steady-state
// tick holds zero allocations, like the history sampler: accumulator
// structs persist across ticks, per-volume slots are reused, and report
// materialization (JSON, sorting) happens only on demand when an RPC or
// admin endpoint asks.
package census

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/store"
)

// RunBuckets is the number of power-of-two run-length histogram
// buckets: bucket i counts runs of length in (2^(i-1), 2^i], so bucket
// 0 holds runs of length 1, bucket 1 length 2, bucket 2 lengths 3-4,
// and so on. The last bucket absorbs everything longer.
const RunBuckets = 16

// runBucket maps a run length (≥ 1) to its histogram bucket.
func runBucket(n int64) int {
	b := bits.Len64(uint64(n - 1))
	if b >= RunBuckets {
		return RunBuckets - 1
	}
	return b
}

// Fragmentation-ratio thresholds shared by the doctor health check, the
// cluster state classification, and d2ctl frag's exit code. The ratio
// is mean contiguous runs per file: 1.0 is perfectly defragmented, N
// means a sequential reader of an average file hops owners N-1 times.
const (
	FragWarn = 4.0
	FragFail = 16.0
)

// VolumeCensus is one volume's placement stats over a node's primary
// range (or, after merging, over the whole cluster).
type VolumeCensus struct {
	// Volume is the short hex volume ID (keys.VolumeID.String).
	Volume string `json:"volume"`
	// Blocks and Bytes count primary data entries of the volume.
	Blocks int64 `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// Files counts file heads (block-0 entries) seen.
	Files int64 `json:"files"`
	// Runs counts maximal contiguous block sequences (same file,
	// consecutive block numbers) — the unit of the §5 locality story.
	Runs int64 `json:"runs"`
	// MaxRun is the longest run observed.
	MaxRun int64 `json:"max_run"`
	// RunHist is the power-of-two run-length histogram (see RunBuckets).
	RunHist [RunBuckets]int64 `json:"run_hist"`
}

// FragRatio returns mean runs per file (0 when no file heads were
// seen, e.g. a node holding only tail blocks).
func (v *VolumeCensus) FragRatio() float64 {
	if v.Files == 0 {
		return 0
	}
	return float64(v.Runs) / float64(v.Files)
}

// Report is one node's placement census: role totals plus the
// per-volume breakdown of its primary range.
type Report struct {
	PrimaryBlocks int64 `json:"primary_blocks"`
	PrimaryBytes  int64 `json:"primary_bytes"`
	ReplicaBlocks int64 `json:"replica_blocks"`
	ReplicaBytes  int64 `json:"replica_bytes"`
	PointerBlocks int64 `json:"pointer_blocks"`
	PointerBytes  int64 `json:"pointer_bytes"`
	// StalePointers counts pointer entries older than the stabilization
	// window — pointers that should already have been resolved.
	StalePointers int64 `json:"stale_pointers"`
	// Files and Runs sum the per-volume counts.
	Files int64 `json:"files"`
	Runs  int64 `json:"runs"`
	// OwnerSwitches is max(Runs-Files, 0): how many times a sequential
	// scan of every locally-headed file leaves a contiguous run.
	OwnerSwitches int64          `json:"owner_switches"`
	Volumes       []VolumeCensus `json:"volumes,omitempty"`
	// SweepNanos is the duration of the last sweep; Sweeps counts them.
	SweepNanos int64 `json:"sweep_nanos"`
	Sweeps     int64 `json:"sweeps"`
}

// FragRatio returns the node-local mean runs per file.
func (r *Report) FragRatio() float64 {
	if r.Files == 0 {
		return 0
	}
	return float64(r.Runs) / float64(r.Files)
}

// ParseReport decodes a Report from its JSON wire form, returning nil
// for empty or malformed input (census-less or older nodes).
func ParseReport(b []byte) *Report {
	if len(b) == 0 {
		return nil
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil
	}
	return &r
}

// Bounds is the ring position the sweeper classifies roles against: a
// data entry in (Pred, Self] is primary, anything else replica.
type Bounds struct {
	Self, Pred keys.Key
	// Ok false (no ring position yet) skips the sweep.
	Ok bool
}

// Config configures a Sweeper.
type Config struct {
	// Store is the engine to sweep. Required.
	Store store.Engine
	// Bounds returns the node's current ring position. Required.
	Bounds func() Bounds
	// Registry receives the d2_census_* gauges (obs.Default when nil).
	Registry *obs.Registry
	// StaleAfter is the pointer age beyond which a pointer counts as
	// stale (default 1h, the pointer-stabilization default).
	StaleAfter time.Duration
}

// Sweeper runs the periodic placement census over one node's store.
// All state persists across sweeps so the steady-state tick allocates
// nothing; Snapshot and ReportJSON materialize results on demand.
type Sweeper struct {
	st         store.Engine
	bounds     func() Bounds
	staleAfter time.Duration
	visit      func(keys.Key, store.Meta) bool // pre-bound s.step

	mu sync.Mutex // serializes sweeps and guards everything below

	// Totals of the last completed sweep.
	primaryBlocks, primaryBytes int64
	replicaBlocks, replicaBytes int64
	pointerBlocks, pointerBytes int64
	stalePtrs                   int64
	files, runs                 int64
	sweepNanos, sweeps          int64
	vols                        map[keys.VolumeID]*volAcc

	// Walk state, valid only inside a sweep.
	self, pred  keys.Key
	wholeRing   bool
	staleBefore int64
	run         runState

	// Gauges published after every sweep.
	gPrimaryBlocks, gPrimaryBytes *obs.Gauge
	gReplicaBlocks, gReplicaBytes *obs.Gauge
	gPointerBlocks, gStalePtrs    *obs.Gauge
	gFiles, gRuns, gSwitches      *obs.Gauge
	gFragMilli, gSweepNanos       *obs.Gauge
	cSweeps                       *obs.Counter
}

type volAcc struct {
	name                             string // hex volume ID, set once
	blocks, bytes, files, runs, maxR int64
	hist                             [RunBuckets]int64
}

type runState struct {
	prev keys.Key
	acc  *volAcc
	len  int64
}

// New creates a sweeper. It does not start anything: the owner calls
// Sweep on its own cadence (the node ticker loop, or SweepNow around a
// balance move).
func New(cfg Config) *Sweeper {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = time.Hour
	}
	s := &Sweeper{
		st:         cfg.Store,
		bounds:     cfg.Bounds,
		staleAfter: cfg.StaleAfter,
		vols:       make(map[keys.VolumeID]*volAcc),

		gPrimaryBlocks: reg.Gauge("d2_census_primary_blocks"),
		gPrimaryBytes:  reg.Gauge("d2_census_primary_bytes"),
		gReplicaBlocks: reg.Gauge("d2_census_replica_blocks"),
		gReplicaBytes:  reg.Gauge("d2_census_replica_bytes"),
		gPointerBlocks: reg.Gauge("d2_census_pointer_blocks"),
		gStalePtrs:     reg.Gauge("d2_census_stale_pointers"),
		gFiles:         reg.Gauge("d2_census_files"),
		gRuns:          reg.Gauge("d2_census_runs"),
		gSwitches:      reg.Gauge("d2_census_owner_switches"),
		gFragMilli:     reg.Gauge("d2_census_frag_ratio_milli"),
		gSweepNanos:    reg.Gauge("d2_census_sweep_nanos"),
		cSweeps:        reg.Counter("d2_census_sweeps_total"),
	}
	s.visit = s.step
	return s
}

// Sweep runs one census pass: reset the persistent accumulators, walk
// the whole store index once in key order, publish gauges. Safe to call
// from multiple goroutines (the ticker loop and SweepNow callers); the
// steady-state call allocates nothing.
func (s *Sweeper) Sweep() {
	b := s.bounds()
	if !b.Ok {
		return
	}
	start := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.self, s.pred = b.Self, b.Pred
	s.wholeRing = b.Pred.IsZero() || b.Pred.Equal(b.Self)
	s.staleBefore = start.Add(-s.staleAfter).UnixNano()

	s.primaryBlocks, s.primaryBytes = 0, 0
	s.replicaBlocks, s.replicaBytes = 0, 0
	s.pointerBlocks, s.pointerBytes = 0, 0
	s.stalePtrs, s.files, s.runs = 0, 0, 0
	for _, acc := range s.vols {
		*acc = volAcc{name: acc.name}
	}
	s.run = runState{}

	// Arc (self, self] is the whole ring: one linear walk from the key
	// origin, which is exactly the order run detection needs.
	s.st.ArcVisit(s.self, s.self, s.visit)
	s.closeRun()

	s.sweeps++
	s.sweepNanos = time.Since(start).Nanoseconds()
	s.publishLocked()
}

// SweepNow is Sweep under a name that documents intent at call sites
// that force an out-of-cadence census (balance-move delta capture).
func (s *Sweeper) SweepNow() { s.Sweep() }

// step classifies one index entry. It is the per-entry hot path: no
// allocation, no payload access.
func (s *Sweeper) step(k keys.Key, m store.Meta) bool {
	if m.IsPointer() {
		s.pointerBlocks++
		s.pointerBytes += m.Size
		if m.PointerSince < s.staleBefore {
			s.stalePtrs++
		}
		return true
	}
	if !s.wholeRing && !k.Between(s.pred, s.self) {
		s.replicaBlocks++
		s.replicaBytes += m.Size
		return true
	}

	s.primaryBlocks++
	s.primaryBytes += m.Size
	v := k.Volume()
	acc := s.vols[v]
	if acc == nil { // first sight of this volume: the one allowed alloc
		acc = &volAcc{name: v.String()}
		s.vols[v] = acc
	}
	acc.blocks++
	acc.bytes += m.Size
	if k.BlockNum() == 0 {
		acc.files++
		s.files++
	}
	if s.run.len > 0 && keys.SameFile(s.run.prev, k) && k.BlockNum() == s.run.prev.BlockNum()+1 {
		s.run.len++
	} else {
		s.closeRun()
		s.run.len = 1
		s.run.acc = acc
		acc.runs++
		s.runs++
	}
	s.run.prev = k
	return true
}

// closeRun books the finished run into its volume's histogram.
func (s *Sweeper) closeRun() {
	if s.run.len == 0 {
		return
	}
	acc := s.run.acc
	if s.run.len > acc.maxR {
		acc.maxR = s.run.len
	}
	acc.hist[runBucket(s.run.len)]++
	s.run.len = 0
}

// publishLocked pushes the sweep totals into the d2_census_* gauges.
func (s *Sweeper) publishLocked() {
	s.gPrimaryBlocks.Set(s.primaryBlocks)
	s.gPrimaryBytes.Set(s.primaryBytes)
	s.gReplicaBlocks.Set(s.replicaBlocks)
	s.gReplicaBytes.Set(s.replicaBytes)
	s.gPointerBlocks.Set(s.pointerBlocks)
	s.gStalePtrs.Set(s.stalePtrs)
	s.gFiles.Set(s.files)
	s.gRuns.Set(s.runs)
	switches := s.runs - s.files
	if switches < 0 {
		switches = 0
	}
	s.gSwitches.Set(switches)
	var fragMilli int64
	if s.files > 0 {
		fragMilli = s.runs * 1000 / s.files
	}
	s.gFragMilli.Set(fragMilli)
	s.gSweepNanos.Set(s.sweepNanos)
	s.cSweeps.Inc()
}

// FragMilli returns the last sweep's fragmentation ratio ×1000 — the
// cheap handle balance-move delta events read before and after a move.
func (s *Sweeper) FragMilli() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.files == 0 {
		return 0
	}
	return s.runs * 1000 / s.files
}

// Totals returns the last sweep's primary run and file counts — the
// cheap handles balance/split census-delta events record.
func (s *Sweeper) Totals() (runs, files int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.files
}

// Snapshot materializes the last sweep as a Report (volumes sorted by
// ID, zero-entry volumes dropped). Allocates; not for the tick path.
func (s *Sweeper) Snapshot() *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Report{
		PrimaryBlocks: s.primaryBlocks, PrimaryBytes: s.primaryBytes,
		ReplicaBlocks: s.replicaBlocks, ReplicaBytes: s.replicaBytes,
		PointerBlocks: s.pointerBlocks, PointerBytes: s.pointerBytes,
		StalePointers: s.stalePtrs,
		Files:         s.files, Runs: s.runs,
		SweepNanos: s.sweepNanos, Sweeps: s.sweeps,
	}
	if d := r.Runs - r.Files; d > 0 {
		r.OwnerSwitches = d
	}
	for _, acc := range s.vols {
		if acc.blocks == 0 {
			continue
		}
		r.Volumes = append(r.Volumes, VolumeCensus{
			Volume: acc.name,
			Blocks: acc.blocks, Bytes: acc.bytes,
			Files: acc.files, Runs: acc.runs, MaxRun: acc.maxR,
			RunHist: acc.hist,
		})
	}
	sort.Slice(r.Volumes, func(i, j int) bool { return r.Volumes[i].Volume < r.Volumes[j].Volume })
	return r
}

// ReportJSON returns the JSON wire form of Snapshot, for the CensusReq
// RPC and the /censusz admin endpoint.
func (s *Sweeper) ReportJSON() []byte {
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		return nil
	}
	return b
}
