package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/defragdht/d2/internal/obs/tracing"
)

func TestLogCtxTagsTraceID(t *testing.T) {
	l := NewEventLog(8)
	tr := tracing.New(tracing.Config{Node: "n"})
	sctx, root := tr.ForceOp(context.Background(), "op")

	l.LogCtx(sctx, LevelInfo, "traced.event", "k", "v")
	l.LogCtx(context.Background(), LevelInfo, "untraced.event")
	root.End()

	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("logged %d events, want 2", len(evs))
	}
	if evs[0].Trace != root.TraceID() {
		t.Fatalf("traced event carries %x, want %x", evs[0].Trace, root.TraceID())
	}
	if !strings.Contains(evs[0].String(), "trace="+tracing.TraceIDString(root.TraceID())) {
		t.Fatalf("event line %q lacks trace tag", evs[0].String())
	}
	if evs[1].Trace != 0 {
		t.Fatalf("untraced event carries trace %x, want 0", evs[1].Trace)
	}
	if strings.Contains(evs[1].String(), "trace=") {
		t.Fatalf("untraced event line %q has a trace tag", evs[1].String())
	}
}

func TestTracezHandler(t *testing.T) {
	reg := New()
	sink := tracing.NewSink(16)
	sink.Record(tracing.Span{Trace: 0xabc, ID: 1, Name: "client.get", Node: "client", Start: 100, Dur: 5000})
	sink.Record(tracing.Span{Trace: 0xabc, ID: 2, Parent: 1, Name: "rpc.get", Node: "client", Start: 200, Dur: 3000})
	mux := NewMux(reg, NewEventLog(8), sink)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	body := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(body, "client.get") {
		t.Fatalf("/tracez = %d %q", rec.Code, body)
	}
	if !strings.Contains(body, tracing.TraceIDString(0xabc)) {
		t.Fatalf("/tracez listing lacks the trace ID: %q", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace="+tracing.TraceIDString(0xabc), nil))
	body = rec.Body.String()
	if !strings.Contains(body, "rpc.get") {
		t.Fatalf("/tracez?trace= tree lacks the child span: %q", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace="+tracing.TraceIDString(0xabc)+"&format=chrome", nil))
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("chrome export has %d events, want 2", len(events))
	}
	if events[0]["ph"] != "X" {
		t.Fatalf("chrome event ph = %v, want X", events[0]["ph"])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace id returned %d, want 400", rec.Code)
	}
}
