package experiments

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/parexp"
	"github.com/defragdht/d2/internal/trace"
)

// Table1 reproduces Table 1: the workload summary (duration, accesses,
// active data).
func Table1(s Scale) *Table {
	t := &Table{
		Title:   "Table 1: Workloads analyzed (synthetic stand-ins, scale=" + s.Name + ")",
		Headers: []string{"Workload", "Duration", "Accesses", "Active Data (MB)"},
	}
	for _, tr := range []*trace.Trace{s.HarvardTrace(), s.HPTrace(), s.WebTrace()} {
		active := tr.TotalInitialBytes()
		t.Rows = append(t.Rows, []string{
			tr.Name,
			tr.Duration.String(),
			fmt.Sprintf("%d", len(tr.Events)),
			mb(active),
		})
	}
	return t
}

// census maps every block that ever exists in a trace to its position in
// the name-ordered layout, supporting the three §4.1 scenarios.
type census struct {
	// nameNode maps block → node under the ordered scenario.
	nameNode map[trace.BlockID]int32
	// fileIdx resolves paths.
	cat *trace.Catalog
	// nodes is the cluster size implied by bytesPerNode.
	nodes int
	// blocksPerNodeBytes is the per-node capacity in bytes.
	perNode int64
}

// buildCensus enumerates all files a trace ever contains (initial plus
// created) and assigns ordered-scenario nodes by cumulative bytes in
// (path, block) order — "keys consistent with the alphabetical ordering of
// block names" (§4.1).
func buildCensus(tr *trace.Trace, perNode int64) *census {
	cat := trace.NewCatalog(nil)
	maxSize := map[int32]int64{}
	note := func(path string, size int64) {
		i := cat.Index(path)
		if size > maxSize[i] {
			maxSize[i] = size
		}
	}
	for _, f := range tr.Initial {
		note(f.Path, f.Size)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Op {
		case trace.OpCreate:
			note(e.Path, e.Length)
		case trace.OpWrite:
			note(e.Path, e.Offset+e.Length)
		}
	}
	// Order files by path; blocks by number within the file.
	order := make([]int32, 0, cat.NumFiles())
	for i := int32(0); i < int32(cat.NumFiles()); i++ {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		return cat.Path(order[a]) < cat.Path(order[b])
	})
	var total int64
	for _, sz := range maxSize {
		total += sz
	}
	nodes := int((total + perNode - 1) / perNode)
	if nodes < 1 {
		nodes = 1
	}
	c := &census{
		nameNode: make(map[trace.BlockID]int32),
		cat:      cat,
		nodes:    nodes,
		perNode:  perNode,
	}
	var acc int64
	for _, fi := range order {
		size := maxSize[fi]
		blocks := (size + trace.BlockSize - 1) / trace.BlockSize
		// Block 0 (inode) followed by data blocks.
		for b := int64(0); b <= blocks; b++ {
			node := int32(acc / perNode)
			if node >= int32(nodes) {
				node = int32(nodes) - 1
			}
			c.nameNode[trace.BlockID{FileIdx: fi, BlockNum: b}] = node
			if b == 0 {
				acc += 512
			} else {
				bs := size - (b-1)*trace.BlockSize
				if bs > trace.BlockSize {
					bs = trace.BlockSize
				}
				acc += bs
			}
		}
	}
	return c
}

// orderedNode returns the block's node under the ordered scenario.
func (c *census) orderedNode(id trace.BlockID) int32 { return c.nameNode[id] }

// hashedBlockNode returns the node under per-block consistent hashing.
func (c *census) hashedBlockNode(id trace.BlockID) int32 {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(id.FileIdx))
	binary.BigEndian.PutUint64(buf[4:], uint64(id.BlockNum))
	k := keys.HashKey(buf[:])
	return int32(binary.BigEndian.Uint64(k[:8]) % uint64(c.nodes))
}

// hashedFileNode returns the node under per-file consistent hashing.
func (c *census) hashedFileNode(id trace.BlockID) int32 {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(id.FileIdx))
	k := keys.HashKey(buf[:])
	return int32(binary.BigEndian.Uint64(k[:8]) % uint64(c.nodes))
}

// eventBlocks enumerates the block IDs an event touches (inode + data).
func (c *census) eventBlocks(e *trace.Event, fn func(trace.BlockID, int64)) {
	fi, ok := c.cat.Lookup(e.Path)
	if !ok {
		return
	}
	fn(trace.BlockID{FileIdx: fi, BlockNum: 0}, 512)
	first, count := e.BlockSpan()
	for b := first; b < first+count; b++ {
		fn(trace.BlockID{FileIdx: fi, BlockNum: b}, trace.BlockSize)
	}
}

// Fig3Row is one workload's bar group in Figure 3, normalized so the
// traditional scenario is 1.
type Fig3Row struct {
	Workload    string
	Nodes       int
	Traditional float64 // raw mean nodes per user-hour
	Ordered     float64
	LowerBound  float64
}

// Fig3 reproduces Figure 3: mean nodes accessed per user per hour under
// the traditional, ordered, and lower-bound scenarios.
func Fig3(s Scale) []Fig3Row {
	// Each workload's trace is synthesized inside its own task so the
	// three analyses (and their trace generation) overlap.
	builders := []func() *trace.Trace{s.HarvardTrace, s.HPTrace, s.WebTrace}
	return parexp.Map(s.Workers, len(builders), func(i int) Fig3Row {
		return fig3One(builders[i](), s.BytesPerNode)
	})
}

func fig3One(tr *trace.Trace, perNode int64) Fig3Row {
	c := buildCensus(tr, perNode)
	type userHour struct {
		user int32
		hour int32
	}
	tradSets := map[userHour]map[int32]bool{}
	ordSets := map[userHour]map[int32]bool{}
	bytesAcc := map[userHour]int64{}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Op != trace.OpRead && e.Op != trace.OpWrite {
			continue
		}
		uh := userHour{user: e.User, hour: int32(e.At / time.Hour)}
		ts := tradSets[uh]
		if ts == nil {
			ts = map[int32]bool{}
			tradSets[uh] = ts
			ordSets[uh] = map[int32]bool{}
		}
		os := ordSets[uh]
		c.eventBlocks(e, func(id trace.BlockID, sz int64) {
			ts[c.hashedBlockNode(id)] = true
			os[c.orderedNode(id)] = true
			bytesAcc[uh] += sz
		})
	}
	var tradSum, ordSum, lbSum float64
	n := 0
	for uh, ts := range tradSets {
		tradSum += float64(len(ts))
		ordSum += float64(len(ordSets[uh]))
		lb := float64(bytesAcc[uh]) / float64(perNode)
		if lb < 1 {
			lb = 1
		}
		lbSum += lb
		n++
	}
	if n == 0 {
		return Fig3Row{Workload: tr.Name, Nodes: c.nodes}
	}
	return Fig3Row{
		Workload:    tr.Name,
		Nodes:       c.nodes,
		Traditional: tradSum / float64(n),
		Ordered:     ordSum / float64(n),
		LowerBound:  lbSum / float64(n),
	}
}

// RenderFig3 formats Figure 3 as a table with both raw and normalized
// values.
func RenderFig3(rows []Fig3Row) *Table {
	t := &Table{
		Title: "Figure 3: Mean nodes accessed per user-hour (normalized to traditional)",
		Headers: []string{"Workload", "Nodes", "Traditional", "Ordered", "LowerBound",
			"Ordered/Trad", "LB/Trad"},
	}
	for _, r := range rows {
		var on, ln float64
		if r.Traditional > 0 {
			on = r.Ordered / r.Traditional
			ln = r.LowerBound / r.Traditional
		}
		t.Rows = append(t.Rows, []string{
			r.Workload, fmt.Sprintf("%d", r.Nodes),
			f2(r.Traditional), f2(r.Ordered), f2(r.LowerBound), f4(on), f4(ln),
		})
	}
	return t
}

// Table2Row is one inter-arrival threshold's row of Table 2.
type Table2Row struct {
	Inter      time.Duration
	MeanBlocks float64
	MeanFiles  float64
	NodesBlock float64 // traditional DHT
	NodesFile  float64 // traditional-file DHT
	NodesD2    float64
}

// Table2 reproduces Table 2: mean objects and mean nodes accessed per task
// under the three systems, for inter ∈ {1 s, 5 s, 15 s, 1 min}.
func Table2(s Scale) []Table2Row {
	tr := s.HarvardTrace()
	c := buildCensus(tr, s.BytesPerNode)
	var rows []Table2Row
	for _, inter := range []time.Duration{time.Second, 5 * time.Second, 15 * time.Second, time.Minute} {
		rows = append(rows, table2One(tr, c, inter))
	}
	return rows
}

func table2One(tr *trace.Trace, c *census, inter time.Duration) Table2Row {
	tasks := trace.Tasks(tr, inter, 5*time.Minute)
	var blocks, files, nb, nf, nd float64
	n := 0
	for ti := range tasks {
		task := &tasks[ti]
		blockSet := map[trace.BlockID]bool{}
		fileSet := map[int32]bool{}
		tradNodes := map[int32]bool{}
		fileNodes := map[int32]bool{}
		d2Nodes := map[int32]bool{}
		touched := false
		for _, ei := range task.Events {
			e := &tr.Events[ei]
			if e.Op != trace.OpRead && e.Op != trace.OpWrite {
				continue
			}
			c.eventBlocks(e, func(id trace.BlockID, _ int64) {
				touched = true
				blockSet[id] = true
				fileSet[id.FileIdx] = true
				tradNodes[c.hashedBlockNode(id)] = true
				fileNodes[c.hashedFileNode(id)] = true
				d2Nodes[c.orderedNode(id)] = true
			})
		}
		if !touched {
			continue
		}
		blocks += float64(len(blockSet))
		files += float64(len(fileSet))
		nb += float64(len(tradNodes))
		nf += float64(len(fileNodes))
		nd += float64(len(d2Nodes))
		n++
	}
	if n == 0 {
		return Table2Row{Inter: inter}
	}
	fn := float64(n)
	return Table2Row{
		Inter:      inter,
		MeanBlocks: blocks / fn,
		MeanFiles:  files / fn,
		NodesBlock: nb / fn,
		NodesFile:  nf / fn,
		NodesD2:    nd / fn,
	}
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Table2Row) *Table {
	t := &Table{
		Title: "Table 2: Mean objects and nodes accessed per task",
		Headers: []string{"inter", "blocks", "files",
			"nodes(block)", "nodes(file)", "nodes(D2)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Inter.String(), f2(r.MeanBlocks), f2(r.MeanFiles),
			f2(r.NodesBlock), f2(r.NodesFile), f2(r.NodesD2),
		})
	}
	return t
}
