package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/parexp"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/sim"
	"github.com/defragdht/d2/internal/simdht"
	"github.com/defragdht/d2/internal/synth"
	"github.com/defragdht/d2/internal/trace"
)

// WarmupBalance is the pre-trace balancing period (§8.1: "the load
// balancing process is then simulated for 3 days so that node positions
// stabilize").
const WarmupBalance = 3 * 24 * time.Hour

// availabilitySystems are the three designs of Figure 7.
func availabilitySystems() []struct {
	Name     string
	Strategy placement.Strategy
	Balance  bool
} {
	return []struct {
		Name     string
		Strategy placement.Strategy
		Balance  bool
	}{
		{"d2", placement.D2, true},
		{"traditional", placement.HashedBlock, false},
		{"traditional-file", placement.HashedFile, false},
	}
}

// availRun holds one trial's per-event read outcomes.
type availRun struct {
	tr       *trace.Trace
	outcomes map[int]bool // read event index → ok
}

// runAvailabilityTrial simulates one (system, trial) pair: initial insert,
// 3-day balance warm-up, then the workload replayed against the failure
// schedule.
func runAvailabilityTrial(s Scale, strategy placement.Strategy, balance bool, replicas int, trial int) *availRun {
	tr := s.HarvardTrace()
	fcfg := s.Failures
	fcfg.Seed = s.Seed + uint64(trial)*1000
	fcfg.Nodes = s.AvailNodes
	fcfg.Duration = tr.Duration
	fails := synth.Failures(fcfg)
	eng := &sim.Engine{}
	c := simdht.New(eng, simdht.Config{
		Nodes:        s.AvailNodes,
		Replicas:     replicas,
		Balance:      balance,
		MigrationBPS: s.MigrationBPS,
		Seed:         s.Seed + uint64(trial)*7919,
	})
	vol := keys.NewVolumeID([]byte("d2-avail"), tr.Name)
	rep := simdht.NewReplay(c, placement.ForStrategy(strategy, vol), tr, WarmupBalance)
	rep.InsertInitial()
	eng.Run(WarmupBalance) // stabilize positions before failures begin

	rep.ScheduleFailures(fails)
	run := &availRun{tr: tr, outcomes: make(map[int]bool)}
	rep.ScheduleEvents(func(ei int, ok bool) { run.outcomes[ei] = ok })
	eng.Run(WarmupBalance + tr.Duration + time.Hour)
	return run
}

// taskStats segments the trial's events into tasks at the given threshold
// and counts failures: a task fails if any of its reads failed (§8).
func (a *availRun) taskStats(inter time.Duration) (tasks, failed int, perUser map[int32][2]int) {
	segmented := trace.Tasks(a.tr, inter, 5*time.Minute)
	perUser = make(map[int32][2]int)
	for ti := range segmented {
		task := &segmented[ti]
		sawRead := false
		ok := true
		for _, ei := range task.Events {
			verdict, observed := a.outcomes[ei]
			if !observed {
				continue // not a read, or skipped
			}
			sawRead = true
			if !verdict {
				ok = false
			}
		}
		if !sawRead {
			continue
		}
		tasks++
		pu := perUser[task.User]
		pu[0]++
		if !ok {
			failed++
			pu[1]++
		}
		perUser[task.User] = pu
	}
	return tasks, failed, perUser
}

// Fig7Result holds Figure 7's bars: per-system, per-inter, per-trial task
// unavailability.
type Fig7Result struct {
	Inters []time.Duration
	// Unavail[system][interIdx][trial] is the fraction of failed tasks.
	Unavail map[string][][]float64
}

// Fig7 reproduces Figure 7: task unavailability under each system while
// varying inter, over several trials with different random node IDs.
func Fig7(s Scale) *Fig7Result {
	return fig7WithReplicas(s, 3)
}

func fig7WithReplicas(s Scale, replicas int) *Fig7Result {
	inters := []time.Duration{time.Second, 5 * time.Second, 15 * time.Second, time.Minute}
	res := &Fig7Result{Inters: inters, Unavail: make(map[string][][]float64)}
	systems := availabilitySystems()
	// Every (system, trial) pair is an independent simulation: each builds
	// its own trace, engine, cluster, and keyer, with all randomness seeded
	// from the trial index, so the fan-out is exactly the serial run.
	runs := parexp.Map(s.Workers, len(systems)*s.Trials, func(i int) *availRun {
		sys := systems[i/s.Trials]
		return runAvailabilityTrial(s, sys.Strategy, sys.Balance, replicas, i%s.Trials)
	})
	for si, sys := range systems {
		series := make([][]float64, len(inters))
		for trial := 0; trial < s.Trials; trial++ {
			run := runs[si*s.Trials+trial]
			for ii, inter := range inters {
				tasks, failed, _ := run.taskStats(inter)
				frac := 0.0
				if tasks > 0 {
					frac = float64(failed) / float64(tasks)
				}
				series[ii] = append(series[ii], frac)
			}
		}
		res.Unavail[sys.Name] = series
	}
	return res
}

// RenderFig7 formats Figure 7 with min/mean/max over trials.
func RenderFig7(r *Fig7Result) *Table {
	t := &Table{
		Title:   "Figure 7: Task unavailability vs inter (min / mean / max over trials)",
		Headers: []string{"inter", "system", "min", "mean", "max"},
	}
	for ii, inter := range r.Inters {
		for _, sys := range []string{"d2", "traditional", "traditional-file"} {
			trials := r.Unavail[sys][ii]
			mn, mx, sum := trials[0], trials[0], 0.0
			for _, v := range trials {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
				sum += v
			}
			t.Rows = append(t.Rows, []string{
				inter.String(), sys, sci(mn), sci(sum / float64(len(trials))), sci(mx),
			})
		}
	}
	return t
}

// Fig8Row is one user's unavailability in the ranked Figure 8 plot.
type Fig8Row struct {
	System  string
	Rank    int
	Unavail float64
}

// Fig8 reproduces Figure 8: per-user task unavailability at inter = 5 s,
// ranked by decreasing unavailability; users with none are omitted, as in
// the paper.
func Fig8(s Scale) []Fig8Row {
	var rows []Fig8Row
	systems := availabilitySystems()
	runs := parexp.Map(s.Workers, len(systems), func(i int) *availRun {
		return runAvailabilityTrial(s, systems[i].Strategy, systems[i].Balance, 3, 0)
	})
	for si, sys := range systems {
		run := runs[si]
		_, _, perUser := run.taskStats(5 * time.Second)
		var fracs []float64
		for _, pu := range perUser {
			if pu[1] > 0 {
				fracs = append(fracs, float64(pu[1])/float64(pu[0]))
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(fracs)))
		for i, f := range fracs {
			rows = append(rows, Fig8Row{System: sys.Name, Rank: i + 1, Unavail: f})
		}
	}
	return rows
}

// RenderFig8 formats Figure 8.
func RenderFig8(rows []Fig8Row) *Table {
	t := &Table{
		Title:   "Figure 8: Per-user task unavailability, ranked (inter = 5s; users with zero omitted)",
		Headers: []string{"system", "rank", "unavailability"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.System, fmt.Sprintf("%d", r.Rank), sci(r.Unavail)})
	}
	return t
}

// AblationReplicas compares task unavailability at r = 3 vs r = 4 (§8.2:
// with 4 replicas D2 had no failures while the traditional system did).
func AblationReplicas(s Scale) *Table {
	t := &Table{
		Title:   "Ablation: replicas r ∈ {3, 4}, task unavailability at inter = 5s (mean over trials)",
		Headers: []string{"system", "r=3", "r=4"},
	}
	systems := availabilitySystems()
	reps := []int{3, 4}
	// Flatten (replicas × system × trial) into one task list so all
	// simulations of both replica settings run concurrently.
	perRep := len(systems) * s.Trials
	fracs := parexp.Map(s.Workers, len(reps)*perRep, func(i int) float64 {
		sys := systems[(i%perRep)/s.Trials]
		run := runAvailabilityTrial(s, sys.Strategy, sys.Balance, reps[i/perRep], i%s.Trials)
		tasks, failed, _ := run.taskStats(5 * time.Second)
		if tasks == 0 {
			return 0
		}
		return float64(failed) / float64(tasks)
	})
	collect := func(ri int) map[string]float64 {
		out := map[string]float64{}
		for si, sys := range systems {
			var sum float64
			for trial := 0; trial < s.Trials; trial++ {
				sum += fracs[ri*perRep+si*s.Trials+trial]
			}
			out[sys.Name] = sum / float64(s.Trials)
		}
		return out
	}
	r3 := collect(0)
	r4 := collect(1)
	for _, sys := range []string{"d2", "traditional", "traditional-file"} {
		t.Rows = append(t.Rows, []string{sys, sci(r3[sys]), sci(r4[sys])})
	}
	return t
}
