package experiments

import "testing"

func TestAblationHybridRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("perf runs in -short mode")
	}
	tbl := AblationHybrid(Small)
	if len(tbl.Rows) != 2*len(Small.PerfNodes) {
		t.Fatalf("hybrid ablation has %d rows", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[2] == "0.00" {
			t.Errorf("system %s at %s nodes: zero speedup recorded", r[1], r[0])
		}
	}
}
