package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/netmodel"
	"github.com/defragdht/d2/internal/parexp"
	"github.com/defragdht/d2/internal/perfsim"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/stats"
)

// PerfPoint is one (size, bandwidth, mode) cell of the §9 sweep with all
// three systems' results.
type PerfPoint struct {
	Nodes    int
	BPS      int64
	Parallel bool
	D2       *perfsim.Result
	Trad     *perfsim.Result
	TradFile *perfsim.Result
}

// perfSystems builds the three compared systems over one volume.
func perfSystems() []perfsim.System {
	vol := keys.NewVolumeID([]byte("d2-perf"), "harvard")
	return []perfsim.System{
		{Name: "d2", Keyer: placement.ForStrategy(placement.D2, vol), Balanced: true},
		{Name: "traditional", Keyer: placement.ForStrategy(placement.HashedBlock, vol)},
		{Name: "traditional-file", Keyer: placement.ForStrategy(placement.HashedFile, vol)},
	}
}

// RunPerfSweep executes the full §9 sweep: every node count × bandwidth ×
// mode, for D2, traditional, and traditional-file. Figures 9–15 all read
// from this result set.
func RunPerfSweep(s Scale) []PerfPoint {
	tr := s.HarvardTrace()
	type cell struct {
		nodes    int
		bps      int64
		parallel bool
	}
	var cells []cell
	for _, nodes := range s.PerfNodes {
		for _, bps := range []int64{1_500_000, 384_000} {
			for _, parallel := range []bool{false, true} {
				cells = append(cells, cell{nodes, bps, parallel})
			}
		}
	}
	// One task per (cell, system). Each task builds its own topology
	// (NewTopology is deterministic in (nodes, seed)) and its own keyer
	// (the D2 namespace keyer is stateful), so tasks share only the
	// read-only trace.
	const numSys = 3
	results := parexp.Map(s.Workers, len(cells)*numSys, func(i int) *perfsim.Result {
		cl := cells[i/numSys]
		sys := perfSystems()[i%numSys]
		topo := netmodel.NewTopology(cl.nodes, s.Seed+5)
		cfg := perfsim.Config{
			Nodes:      cl.nodes,
			AccessBPS:  cl.bps,
			Parallel:   cl.parallel,
			NumWindows: s.PerfWindows,
			Seed:       s.Seed + 17,
		}
		return perfsim.Run(cfg, sys, tr, topo)
	})
	points := make([]PerfPoint, len(cells))
	for ci, cl := range cells {
		points[ci] = PerfPoint{
			Nodes: cl.nodes, BPS: cl.bps, Parallel: cl.parallel,
			D2:       results[ci*numSys+0],
			Trad:     results[ci*numSys+1],
			TradFile: results[ci*numSys+2],
		}
	}
	return points
}

// modeName labels seq/para.
func modeName(parallel bool) string {
	if parallel {
		return "para"
	}
	return "seq"
}

// Fig9 renders lookup messages per node vs system size (Figure 9), at
// 1500 kbps as in the paper's lookup-traffic plot.
func Fig9(points []PerfPoint) *Table {
	t := &Table{
		Title:   "Figure 9: DHT lookup messages per node (1500 kbps windows)",
		Headers: []string{"nodes", "mode", "d2", "traditional", "trad-file", "d2/trad"},
	}
	for _, p := range points {
		if p.BPS != 1_500_000 {
			continue
		}
		ratio := 0.0
		if p.Trad.MsgsPerNode() > 0 {
			ratio = p.D2.MsgsPerNode() / p.Trad.MsgsPerNode()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes), modeName(p.Parallel),
			f2(p.D2.MsgsPerNode()), f2(p.Trad.MsgsPerNode()),
			f2(p.TradFile.MsgsPerNode()), f4(ratio),
		})
	}
	return t
}

// speedup returns the overall geometric-mean speedup of sys a over sys b:
// per user, the geomean of per-group latency ratios; overall, the geomean
// over users (§9.3).
func speedup(slow, fast *perfsim.Result) float64 {
	perUser := perUserSpeedup(slow, fast)
	var vals []float64
	for _, v := range perUser {
		vals = append(vals, v)
	}
	return stats.GeoMean(vals)
}

// perUserSpeedup returns each user's geomean speedup of fast over slow.
func perUserSpeedup(slow, fast *perfsim.Result) map[int32]float64 {
	logSums := map[int32]float64{}
	counts := map[int32]int{}
	for gi, fLat := range fast.Groups {
		sLat, ok := slow.Groups[gi]
		if !ok || fLat <= 0 || sLat <= 0 {
			continue
		}
		u := fast.GroupUser[gi]
		logSums[u] += math.Log(float64(sLat) / float64(fLat))
		counts[u]++
	}
	out := make(map[int32]float64, len(logSums))
	for u, ls := range logSums {
		out[u] = math.Exp(ls / float64(counts[u]))
	}
	return out
}

// Fig10 renders D2's speedup over the traditional DHT (Figure 10).
func Fig10(points []PerfPoint) *Table {
	t := &Table{
		Title:   "Figure 10: Geometric-mean speedup of D2 over the traditional DHT",
		Headers: []string{"nodes", "bps", "mode", "speedup"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.BPS/1000),
			modeName(p.Parallel), f2(speedup(p.Trad, p.D2)),
		})
	}
	return t
}

// Fig11 renders D2's speedup over the traditional-file DHT (Figure 11).
func Fig11(points []PerfPoint) *Table {
	t := &Table{
		Title:   "Figure 11: Geometric-mean speedup of D2 over the traditional-file DHT",
		Headers: []string{"nodes", "bps", "mode", "speedup"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.BPS/1000),
			modeName(p.Parallel), f2(speedup(p.TradFile, p.D2)),
		})
	}
	return t
}

// Fig12 renders per-user mean speedups at the largest size and 1500 kbps
// (Figure 12), ranked by decreasing speedup.
func Fig12(points []PerfPoint) *Table {
	t := &Table{
		Title:   "Figure 12: Per-user speedup over traditional (largest size, 1500 kbps)",
		Headers: []string{"mode", "rank", "speedup"},
	}
	maxNodes := 0
	for _, p := range points {
		if p.Nodes > maxNodes {
			maxNodes = p.Nodes
		}
	}
	for _, p := range points {
		if p.Nodes != maxNodes || p.BPS != 1_500_000 {
			continue
		}
		per := perUserSpeedup(p.Trad, p.D2)
		var vals []float64
		for _, v := range per {
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		for i, v := range vals {
			t.Rows = append(t.Rows, []string{modeName(p.Parallel), fmt.Sprintf("%d", i+1), f2(v)})
		}
	}
	return t
}

// Fig13 renders mean per-user lookup-cache miss rates (Figure 13).
func Fig13(points []PerfPoint) *Table {
	t := &Table{
		Title:   "Figure 13: Mean per-user lookup cache miss rate",
		Headers: []string{"nodes", "bps", "mode", "d2", "traditional", "trad-file"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.BPS/1000),
			modeName(p.Parallel),
			f2(p.D2.MeanUserMissRate()), f2(p.Trad.MeanUserMissRate()),
			f2(p.TradFile.MeanUserMissRate()),
		})
	}
	return t
}

// ScatterPoint is one access group's latency under two systems (Figures
// 14 and 15).
type ScatterPoint struct {
	Group    int
	Other    time.Duration // traditional or traditional-file
	D2       time.Duration
	FasterD2 bool
}

// Fig14Scatter extracts the latency scatter of D2 vs the traditional DHT
// at the largest size and 1500 kbps.
func Fig14Scatter(points []PerfPoint, parallel bool) []ScatterPoint {
	return scatter(points, parallel, func(p PerfPoint) *perfsim.Result { return p.Trad })
}

// Fig15Scatter extracts the scatter of D2 vs the traditional-file DHT.
func Fig15Scatter(points []PerfPoint, parallel bool) []ScatterPoint {
	return scatter(points, parallel, func(p PerfPoint) *perfsim.Result { return p.TradFile })
}

func scatter(points []PerfPoint, parallel bool, pick func(PerfPoint) *perfsim.Result) []ScatterPoint {
	maxNodes := 0
	for _, p := range points {
		if p.Nodes > maxNodes {
			maxNodes = p.Nodes
		}
	}
	var out []ScatterPoint
	for _, p := range points {
		if p.Nodes != maxNodes || p.BPS != 1_500_000 || p.Parallel != parallel {
			continue
		}
		other := pick(p)
		for gi, d2Lat := range p.D2.Groups {
			oLat, ok := other.Groups[gi]
			if !ok {
				continue
			}
			out = append(out, ScatterPoint{
				Group: gi, Other: oLat, D2: d2Lat, FasterD2: d2Lat < oLat,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// RenderScatter summarizes a latency scatter: the share of groups above
// the diagonal overall and among slow (> 5 s) groups, as the paper's
// discussion of Figures 14/15 reads the plots.
func RenderScatter(title string, pts []ScatterPoint) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"groups", "faster in D2", "share", "slow(>5s) groups", "slow faster in D2"},
	}
	faster := 0
	slow, slowFaster := 0, 0
	for _, p := range pts {
		if p.FasterD2 {
			faster++
		}
		if p.Other > 5*time.Second || p.D2 > 5*time.Second {
			slow++
			if p.FasterD2 {
				slowFaster++
			}
		}
	}
	share := 0.0
	if len(pts) > 0 {
		share = float64(faster) / float64(len(pts))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", len(pts)), fmt.Sprintf("%d", faster), f2(share),
		fmt.Sprintf("%d", slow), fmt.Sprintf("%d", slowFaster),
	})
	return t
}

// AblationCacheTTL sweeps the lookup-cache TTL and reports D2's miss rate
// and lookup traffic at the largest configured size.
func AblationCacheTTL(s Scale) *Table {
	t := &Table{
		Title:   "Ablation: lookup-cache TTL sweep (D2, seq, 1500 kbps, largest size)",
		Headers: []string{"ttl", "miss rate", "lookup msgs/node"},
	}
	tr := s.HarvardTrace()
	nodes := s.PerfNodes[len(s.PerfNodes)-1]
	ttls := []time.Duration{5 * time.Minute, 20 * time.Minute, 75 * time.Minute, 5 * time.Hour}
	t.Rows = parexp.Map(s.Workers, len(ttls), func(i int) []string {
		// Topology and keyer rebuilt per task: both are deterministic, and
		// the D2 keyer is stateful so it cannot be shared across goroutines.
		topo := netmodel.NewTopology(nodes, s.Seed+5)
		res := perfsim.Run(perfsim.Config{
			Nodes:      nodes,
			CacheTTL:   ttls[i],
			NumWindows: s.PerfWindows,
			Seed:       s.Seed + 17,
		}, perfSystems()[0], tr, topo)
		return []string{ttls[i].String(), f2(res.MeanUserMissRate()), f2(res.MsgsPerNode())}
	})
	return t
}

// AblationHybrid evaluates the paper's §11 future-work placement: hybrid
// locality + consistent hashing. It reports para-mode speedup over the
// traditional DHT at the constrained 384 kbps links, where pure D2 loses
// parallel bandwidth on large files, alongside lookup traffic.
func AblationHybrid(s Scale) *Table {
	t := &Table{
		Title:   "Ablation: hybrid placement (§11) — para mode at 384 kbps",
		Headers: []string{"nodes", "system", "speedup vs trad", "msgs/node", "miss rate"},
	}
	tr := s.HarvardTrace()
	// Three runs per node count (traditional baseline, d2, hybrid), each an
	// independent task with its own topology and keyer.
	const numSys = 3
	results := parexp.Map(s.Workers, len(s.PerfNodes)*numSys, func(i int) *perfsim.Result {
		nodes := s.PerfNodes[i/numSys]
		topo := netmodel.NewTopology(nodes, s.Seed+5)
		cfg := perfsim.Config{
			Nodes:      nodes,
			AccessBPS:  384_000,
			Parallel:   true,
			NumWindows: s.PerfWindows,
			Seed:       s.Seed + 17,
		}
		vol := keys.NewVolumeID([]byte("d2-hybrid"), "harvard")
		var sys perfsim.System
		switch i % numSys {
		case 0:
			sys = perfsim.System{Name: "traditional", Keyer: placement.ForStrategy(placement.HashedBlock, vol)}
		case 1:
			sys = perfsim.System{Name: "d2", Keyer: placement.ForStrategy(placement.D2, vol), Balanced: true}
		default:
			sys = perfsim.System{Name: "hybrid", Keyer: placement.NewHybrid(vol, 8), Balanced: true}
		}
		return perfsim.Run(cfg, sys, tr, topo)
	})
	for ni, nodes := range s.PerfNodes {
		tradRes := results[ni*numSys]
		for si, name := range []string{"d2", "hybrid"} {
			res := results[ni*numSys+1+si]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", nodes), name,
				f2(speedup(tradRes, res)), f2(res.MsgsPerNode()), f2(res.MeanUserMissRate()),
			})
		}
	}
	return t
}
