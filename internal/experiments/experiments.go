// Package experiments reproduces every table and figure of the paper's
// evaluation (§4.1, §8–§10). Each experiment is a pure function from a
// Scale (how large a run to perform) to a structured result with a text
// renderer, so the cmd/ tools and the benchmark harness share one
// implementation. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/defragdht/d2/internal/synth"
	"github.com/defragdht/d2/internal/trace"
)

// Scale selects the size of an experiment run. The paper's absolute data
// volumes (40–93 GB, 238 M accesses) are scaled down with per-node
// capacity scaled alongside, preserving every ratio the figures report;
// see EXPERIMENTS.md for the scaling argument.
type Scale struct {
	Name string

	// Harvard workload parameters.
	HarvardBytes int64
	HarvardUsers int
	Days         int

	// HP workload parameters.
	HPBytes int64
	HPApps  int

	// Web workload parameters.
	WebBytes   int64
	WebClients int
	WebDomains int

	// BytesPerNode is the per-node storage used by the locality analysis
	// (the paper uses 250 MB; scaled runs shrink it proportionally).
	BytesPerNode int64

	// AvailNodes is the cluster size for availability and load-balance
	// simulations (the paper uses 247).
	AvailNodes int
	// Trials is the number of random-ID trials for Figure 7 (paper: 5).
	Trials int
	// MigrationBPS scales the per-node migration bandwidth so that
	// regenerating one node's data takes roughly the paper's 250 MB at
	// 750 kbps (≈ 45 min) despite the scaled-down data volume. Zero uses
	// the paper's raw 750 kbps.
	MigrationBPS int64
	// Failures overrides the failure-model shape (Seed, Nodes, and
	// Duration are always set per trial). The zero value uses the
	// PlanetLab-calibrated defaults; small scales harshen it so the
	// shorter, smaller runs still exhibit whole-group failures.
	Failures synth.FailureConfig

	// PerfNodes are the DHT sizes swept in the performance experiments
	// (paper: 200, 500, 1000).
	PerfNodes []int
	// PerfWindows is the number of measured 15-minute windows (paper: 8).
	PerfWindows int

	// Seed namespaces all randomness for the run.
	Seed uint64

	// Workers bounds the experiment worker pool fanning independent
	// (system × config × trial) simulations across goroutines; zero or
	// negative means one worker per core. Results are identical for every
	// value: each cell derives its randomness from its own index, never
	// from scheduling order.
	Workers int
}

// Small is sized for unit tests: seconds per experiment.
var Small = Scale{
	Name:         "small",
	HarvardBytes: 48 << 20,
	HarvardUsers: 12,
	Days:         2,
	HPBytes:      64 << 20,
	HPApps:       8,
	WebBytes:     48 << 20,
	WebClients:   24,
	WebDomains:   400,
	BytesPerNode: 2 << 20,
	AvailNodes:   40,
	Trials:       2,
	MigrationBPS: 8_000, // ~3.6 MB per node regenerates in ~1 h
	Failures: synth.FailureConfig{
		MeanUp:           24 * time.Hour,
		MeanDown:         4 * time.Hour,
		CorrelatedEvents: 8,
		CorrelatedFrac:   0.30,
		CorrelatedDown:   8 * time.Hour,
	},
	PerfNodes:   []int{120, 240},
	PerfWindows: 8,
	Seed:        1,
}

// Medium is the default for the CLI tools and benchmarks: minutes for the
// full suite.
var Medium = Scale{
	Name:         "medium",
	HarvardBytes: 1 << 30,
	HarvardUsers: 40,
	Days:         5,
	HPBytes:      512 << 20,
	HPApps:       20,
	WebBytes:     512 << 20,
	WebClients:   80,
	WebDomains:   1500,
	BytesPerNode: 8 << 20,
	AvailNodes:   120,
	Trials:       3,
	MigrationBPS: 75_000, // ~25 MB per node regenerates in ~45 min
	// The paper chose a PlanetLab week "with a particularly large number
	// of failures"; with scaled-down task counts the failure model is
	// harshened similarly so unavailability is measurable (the relative
	// comparison is what Figure 7 reports).
	Failures: synth.FailureConfig{
		MeanUp:           40 * time.Hour,
		MeanDown:         3 * time.Hour,
		CorrelatedEvents: 5,
		CorrelatedFrac:   0.20,
		CorrelatedDown:   4 * time.Hour,
	},
	PerfNodes:   []int{200, 350, 500},
	PerfWindows: 5,
	Seed:        1,
}

// Full approaches the paper's setup: 83 users, a week, 247 nodes, and the
// 200/500/1000-node performance sweep. Expect tens of minutes.
var Full = Scale{
	Name:         "full",
	HarvardBytes: 4 << 30,
	HarvardUsers: 83,
	Days:         7,
	HPBytes:      2 << 30,
	HPApps:       40,
	WebBytes:     2 << 30,
	WebClients:   200,
	WebDomains:   4000,
	BytesPerNode: 16 << 20,
	AvailNodes:   247,
	Trials:       5,
	MigrationBPS: 150_000, // ~50 MB per node regenerates in ~45 min
	Failures: synth.FailureConfig{
		MeanUp:           50 * time.Hour,
		MeanDown:         3 * time.Hour,
		CorrelatedEvents: 5,
		CorrelatedFrac:   0.18,
		CorrelatedDown:   4 * time.Hour,
	},
	PerfNodes:   []int{200, 500, 1000},
	PerfWindows: 8,
	Seed:        1,
}

// ScaleByName returns a named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (want small, medium, or full)", name)
	}
}

// HarvardTrace builds the scale's Harvard workload.
func (s Scale) HarvardTrace() *trace.Trace {
	return synth.Harvard(synth.HarvardConfig{
		Seed:        s.Seed,
		Users:       s.HarvardUsers,
		Days:        s.Days,
		TargetBytes: s.HarvardBytes,
	})
}

// HPTrace builds the scale's HP block workload.
func (s Scale) HPTrace() *trace.Trace {
	return synth.HP(synth.HPConfig{
		Seed:      s.Seed,
		Apps:      s.HPApps,
		Days:      s.Days,
		DiskBytes: s.HPBytes,
	})
}

// WebTrace builds the scale's web workload.
func (s Scale) WebTrace() *trace.Trace {
	return synth.Web(synth.WebConfig{
		Seed:        s.Seed,
		Clients:     s.WebClients,
		Days:        s.Days,
		Domains:     s.WebDomains,
		TargetBytes: s.WebBytes,
	})
}

// WebCacheTrace builds the Squirrel-style cache workload (§10).
func (s Scale) WebCacheTrace() *trace.Trace {
	return synth.WebCache(s.WebTrace(), 24*time.Hour)
}

// Table is a rendered experiment result: a title, column headers, and
// rows, printable as aligned text.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f2 formats a float with two decimals; f4 with four.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// sci formats small probabilities in scientific notation.
func sci(x float64) string {
	if x == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", x)
}

// mb formats a byte count in MB.
func mb(b int64) string { return fmt.Sprintf("%d", b>>20) }
