package experiments

import (
	"fmt"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/parexp"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/sim"
	"github.com/defragdht/d2/internal/simdht"
	"github.com/defragdht/d2/internal/trace"
)

// lbSystem describes one line of Figures 16/17.
type lbSystem struct {
	Name     string
	Strategy placement.Strategy
	Balance  bool
	URLKeys  bool // webcache uses hashed-slot D2 keys (§4.2 footnote 2)
	// Trace receives simulated-time transfer spans (d2sim -trace).
	Trace *tracing.Sink
}

func lbSystems() []lbSystem {
	return []lbSystem{
		{Name: "traditional-file", Strategy: placement.HashedFile},
		{Name: "traditional", Strategy: placement.HashedBlock},
		{Name: "traditional+merc", Strategy: placement.HashedBlock, Balance: true},
		{Name: "d2", Strategy: placement.D2, Balance: true},
	}
}

// LBSeries is one system's load-imbalance time series.
type LBSeries struct {
	System string
	// Times are snapshot instants (trace-relative).
	Times []time.Duration
	// Imbalance is the normalized std-dev of stored node load.
	Imbalance []float64
	// MaxRatio is max load / mean load.
	MaxRatio []float64
	// DailyWritten and DailyMigrated are per-day byte volumes (Table 4).
	DailyWritten  []int64
	DailyMigrated []int64
}

// runLoadBalance simulates one system over the trace with hourly snapshots
// and no failures (§10 isolates balancing overhead from regeneration).
func runLoadBalance(s Scale, tr *trace.Trace, sys lbSystem) *LBSeries {
	eng := &sim.Engine{}
	c := simdht.New(eng, simdht.Config{
		Nodes:        s.AvailNodes,
		Replicas:     3,
		Balance:      sys.Balance,
		MigrationBPS: s.MigrationBPS,
		Seed:         s.Seed + 31,
		Trace:        sys.Trace,
	})
	vol := keys.NewVolumeID([]byte("d2-lb"), tr.Name)
	var keyer placement.Keyer
	if sys.URLKeys && sys.Strategy == placement.D2 {
		keyer = placement.NewURLNamespace(vol)
	} else {
		keyer = placement.ForStrategy(sys.Strategy, vol)
	}
	// A non-empty initial file system gets the §8.1 3-day balancing
	// warm-up, and the warm-up's convergence traffic is excluded from the
	// Table 4 accounting. The webcache workload starts empty, so it runs
	// cold, as in §10.
	var offset time.Duration
	if len(tr.Initial) > 0 {
		offset = WarmupBalance
	}
	rep := simdht.NewReplay(c, keyer, tr, offset)
	rep.InsertInitial()
	eng.Run(offset)
	rep.ScheduleEvents(nil)

	out := &LBSeries{System: sys.Name}
	days := int(tr.Duration / (24 * time.Hour))
	if days == 0 {
		days = 1
	}
	out.DailyWritten = make([]int64, days)
	out.DailyMigrated = make([]int64, days)
	prevW, prevM := c.WrittenBytes(), c.MigratedBytes()
	eng.Every(time.Hour, func() bool {
		now := eng.Now() - offset
		if now > tr.Duration {
			return false
		}
		out.Times = append(out.Times, now)
		out.Imbalance = append(out.Imbalance, c.Imbalance())
		out.MaxRatio = append(out.MaxRatio, c.MaxLoadRatio())
		day := int(now / (24 * time.Hour))
		if day >= days {
			day = days - 1
		}
		out.DailyWritten[day] += c.WrittenBytes() - prevW
		out.DailyMigrated[day] += c.MigratedBytes() - prevM
		prevW, prevM = c.WrittenBytes(), c.MigratedBytes()
		return true
	})
	eng.Run(offset + tr.Duration + time.Hour)
	return out
}

// TraceMigration runs the D2 system over the Harvard workload with a span
// sink attached: every completed block transfer (regeneration, rebalance,
// and pointer-stabilization fetch) lands in the sink as one span stamped
// with simulated time — the d2sim -trace data source.
func TraceMigration(s Scale, sink *tracing.Sink) *LBSeries {
	return runLoadBalance(s, s.HarvardTrace(),
		lbSystem{Name: "d2", Strategy: placement.D2, Balance: true, Trace: sink})
}

// Fig16 reproduces Figure 16: load imbalance over time on the Harvard
// workload for the four systems.
func Fig16(s Scale) []*LBSeries {
	tr := s.HarvardTrace()
	systems := lbSystems()
	// One simulation per system; the trace is read-only during replay, so
	// the four clusters can share it.
	return parexp.Map(s.Workers, len(systems), func(i int) *LBSeries {
		return runLoadBalance(s, tr, systems[i])
	})
}

// Fig17 reproduces Figure 17: load imbalance over time on the Webcache
// workload.
func Fig17(s Scale) []*LBSeries {
	tr := s.WebCacheTrace()
	systems := lbSystems()
	return parexp.Map(s.Workers, len(systems), func(i int) *LBSeries {
		sys := systems[i]
		sys.URLKeys = true
		return runLoadBalance(s, tr, sys)
	})
}

// RenderLBSeries formats imbalance series sampled every few hours.
func RenderLBSeries(title string, series []*LBSeries) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"hour"},
	}
	for _, s := range series {
		t.Headers = append(t.Headers, s.System)
	}
	if len(series) == 0 || len(series[0].Times) == 0 {
		return t
	}
	step := len(series[0].Times) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(series[0].Times); i += step {
		row := []string{fmt.Sprintf("%d", int(series[0].Times[i]/time.Hour))}
		for _, s := range series {
			if i < len(s.Imbalance) {
				row = append(row, f2(s.Imbalance[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Summary rows: mean imbalance and mean max/mean ratio.
	meanRow := []string{"mean"}
	maxRow := []string{"max/mean(avg)"}
	for _, s := range series {
		var sum, rsum float64
		for i := range s.Imbalance {
			sum += s.Imbalance[i]
			rsum += s.MaxRatio[i]
		}
		n := float64(len(s.Imbalance))
		meanRow = append(meanRow, f2(sum/n))
		maxRow = append(maxRow, f2(rsum/n))
	}
	t.Rows = append(t.Rows, meanRow, maxRow)
	return t
}

// Table3 reproduces Table 3: per-day written and removed byte volume
// relative to the data resident at the start of each day.
func Table3(s Scale) *Table {
	t := &Table{
		Title:   "Table 3: Daily churn W_i/T_i and R_i/T_i",
		Headers: []string{"day", "harvard W/T", "harvard R/T", "webcache W/T", "webcache R/T"},
	}
	h := trace.DailyChurn(s.HarvardTrace())
	w := trace.DailyChurn(s.WebCacheTrace())
	days := len(h)
	if len(w) > days {
		days = len(w)
	}
	get := func(c []trace.ChurnDay, d int) (float64, float64) {
		if d >= len(c) {
			return 0, 0
		}
		return c[d].WriteRatio(), c[d].RemoveRatio()
	}
	for d := 0; d < days; d++ {
		hw, hr := get(h, d)
		ww, wr := get(w, d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d+1), f2(hw), f2(hr), f2(ww), f2(wr),
		})
	}
	return t
}

// Table4 reproduces Table 4: mean per-node write traffic W_i vs load
// balancing (migration) traffic L_i on each day, for the D2 system.
func Table4(s Scale) *Table {
	t := &Table{
		Title:   "Table 4: Mean write traffic W_i vs load-balancing traffic L_i per node-day (MB)",
		Headers: []string{"workload", "day", "W_i (MB)", "L_i (MB)", "L/W"},
	}
	add := func(name string, series *LBSeries) {
		var wTot, lTot int64
		for d := range series.DailyWritten {
			wi := series.DailyWritten[d] / int64(s.AvailNodes)
			li := series.DailyMigrated[d] / int64(s.AvailNodes)
			wTot += wi
			lTot += li
			ratio := "-"
			if wi > 0 {
				ratio = f2(float64(li) / float64(wi))
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", d+1), mb(wi), mb(li), ratio,
			})
		}
		total := "-"
		if wTot > 0 {
			total = f2(float64(lTot) / float64(wTot))
		}
		t.Rows = append(t.Rows, []string{name, "total", mb(wTot), mb(lTot), total})
	}
	// The two workloads run concurrently; each task synthesizes its own
	// trace so even trace generation overlaps.
	runs := parexp.Map(s.Workers, 2, func(i int) *LBSeries {
		if i == 0 {
			return runLoadBalance(s, s.HarvardTrace(), lbSystem{Name: "d2", Strategy: placement.D2, Balance: true})
		}
		return runLoadBalance(s, s.WebCacheTrace(), lbSystem{Name: "d2", Strategy: placement.D2, Balance: true, URLKeys: true})
	})
	add("harvard", runs[0])
	add("webcache", runs[1])
	return t
}

// AblationPointers compares migration traffic with and without block
// pointers on the Harvard workload (§6: pointers avoid duplicate moves).
func AblationPointers(s Scale) *Table {
	t := &Table{
		Title:   "Ablation: block pointers on/off — migration traffic over the trace",
		Headers: []string{"pointers", "migrated (MB)", "migrated/written"},
	}
	tr := s.HarvardTrace()
	t.Rows = parexp.Map(s.Workers, 2, func(i int) []string {
		disable := i == 1
		eng := &sim.Engine{}
		c := simdht.New(eng, simdht.Config{
			Nodes:           s.AvailNodes,
			Replicas:        3,
			Balance:         true,
			DisablePointers: disable,
			MigrationBPS:    s.MigrationBPS,
			Seed:            s.Seed + 67,
		})
		vol := keys.NewVolumeID([]byte("d2-ablate"), "ptr")
		rep := simdht.NewReplay(c, placement.ForStrategy(placement.D2, vol), tr, 0)
		rep.InsertInitial()
		rep.ScheduleEvents(nil)
		eng.Run(tr.Duration + time.Hour)
		label := "on"
		if disable {
			label = "off"
		}
		ratio := "-"
		if c.WrittenBytes() > 0 {
			ratio = f2(float64(c.MigratedBytes()) / float64(c.WrittenBytes()))
		}
		return []string{label, mb(c.MigratedBytes()), ratio}
	})
	return t
}
