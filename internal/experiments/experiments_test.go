package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTable1HasThreeWorkloads(t *testing.T) {
	tbl := Table1(Small)
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(tbl.Rows))
	}
	out := tbl.String()
	for _, w := range []string{"harvard", "hp", "web"} {
		if !strings.Contains(out, w) {
			t.Errorf("Table 1 missing workload %q:\n%s", w, out)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(Small)
	if len(rows) != 3 {
		t.Fatalf("Fig 3 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Traditional <= 0 {
			t.Fatalf("%s: traditional mean is %v", r.Workload, r.Traditional)
		}
		// The paper's ordering: lower-bound ≤ ordered ≪ traditional,
		// with ordered about 10× better than traditional.
		if r.Ordered >= r.Traditional {
			t.Errorf("%s: ordered (%.1f) not below traditional (%.1f)",
				r.Workload, r.Ordered, r.Traditional)
		}
		if r.LowerBound > r.Ordered*1.05 {
			t.Errorf("%s: lower bound (%.1f) above ordered (%.1f)",
				r.Workload, r.LowerBound, r.Ordered)
		}
		if ratio := r.Ordered / r.Traditional; ratio > 0.5 {
			t.Errorf("%s: ordered/traditional = %.2f, want ≪ 1 (paper ≈ 0.1)",
				r.Workload, ratio)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(Small)
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	for i, r := range rows {
		// Within each row: D2 ≤ file ≤ block, strictly fewer nodes for D2.
		if r.NodesD2 >= r.NodesFile || r.NodesFile > r.NodesBlock {
			t.Errorf("inter=%v: nodes D2=%.1f file=%.1f block=%.1f, want D2 < file ≤ block",
				r.Inter, r.NodesD2, r.NodesFile, r.NodesBlock)
		}
		if r.MeanFiles > r.MeanBlocks {
			t.Errorf("inter=%v: files %.1f > blocks %.1f", r.Inter, r.MeanFiles, r.MeanBlocks)
		}
		// Longer thresholds give at least as large tasks.
		if i > 0 && r.MeanBlocks < rows[i-1].MeanBlocks {
			t.Errorf("blocks per task shrank from inter=%v to %v", rows[i-1].Inter, r.Inter)
		}
	}
}

func TestFig7D2AvailabilityWins(t *testing.T) {
	if testing.Short() {
		t.Skip("availability simulation in -short mode")
	}
	res := Fig7(Small)
	mean := func(sys string, interIdx int) float64 {
		var sum float64
		for _, v := range res.Unavail[sys][interIdx] {
			sum += v
		}
		return sum / float64(len(res.Unavail[sys][interIdx]))
	}
	for ii := range res.Inters {
		d2 := mean("d2", ii)
		trad := mean("traditional", ii)
		if d2 > trad {
			t.Errorf("inter=%v: D2 unavailability %.2e above traditional %.2e",
				res.Inters[ii], d2, trad)
		}
	}
	// At some threshold traditional must actually show failures at this
	// scale (otherwise the comparison is vacuous).
	anyTrad := false
	for ii := range res.Inters {
		if mean("traditional", ii) > 0 {
			anyTrad = true
		}
	}
	if !anyTrad {
		t.Error("traditional system showed no failures at all; failure model too weak to compare")
	}
}

func TestFig16D2KeepsBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("load-balance simulation in -short mode")
	}
	series := Fig16(Small)
	byName := map[string]*LBSeries{}
	for _, s := range series {
		byName[s.System] = s
	}
	tail := func(s *LBSeries) float64 {
		// Mean imbalance over the last half of the run (post warm-up).
		n := len(s.Imbalance)
		var sum float64
		for _, v := range s.Imbalance[n/2:] {
			sum += v
		}
		return sum / float64(n-n/2)
	}
	d2 := tail(byName["d2"])
	trad := tail(byName["traditional"])
	tradFile := tail(byName["traditional-file"])
	merc := tail(byName["traditional+merc"])
	// Paper: trad-file worst; D2 ≤ traditional; D2 close to Trad+Merc.
	if d2 > trad*1.15 {
		t.Errorf("D2 imbalance %.3f well above traditional %.3f", d2, trad)
	}
	if tradFile < trad {
		t.Errorf("traditional-file imbalance %.3f below traditional %.3f; paper says it is worst",
			tradFile, trad)
	}
	if d2 > merc*2.5 {
		t.Errorf("D2 imbalance %.3f far above Traditional+Merc %.3f", d2, merc)
	}
}

func TestTable3Renders(t *testing.T) {
	tbl := Table3(Small)
	if len(tbl.Rows) == 0 {
		t.Fatal("Table 3 empty")
	}
	out := tbl.String()
	if !strings.Contains(out, "harvard") && !strings.Contains(out, "W/T") {
		t.Errorf("Table 3 output malformed:\n%s", out)
	}
}

func TestTable4MigrationOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("load-balance simulation in -short mode")
	}
	tbl := Table4(Small)
	if len(tbl.Rows) < 4 {
		t.Fatalf("Table 4 has %d rows", len(tbl.Rows))
	}
	// Find the harvard total row: migration should be a modest multiple
	// of writes (paper: ≈ 0.5; accept < 2 at small scale).
	var found bool
	for _, row := range tbl.Rows {
		if row[0] == "harvard" && row[1] == "total" && row[4] != "-" {
			found = true
			ratio, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatalf("bad ratio %q", row[4])
			}
			// At the tiny Small scale each balancer move costs ~2 mean
			// node loads of migration, so the ratio sits above the
			// paper's 0.5; it falls toward it at larger scales (see
			// EXPERIMENTS.md).
			if ratio > 2.0 {
				t.Errorf("harvard L/W = %.2f, want bounded (paper: 0.5)", ratio)
			}
		}
	}
	if !found {
		t.Fatalf("no harvard total row in:\n%s", tbl.String())
	}
}

func TestPerfSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	points := RunPerfSweep(Small)
	want := len(Small.PerfNodes) * 2 * 2
	if len(points) != want {
		t.Fatalf("sweep has %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.BPS != 1_500_000 || p.Parallel {
			continue
		}
		// Fig 9: D2 sends far fewer lookup messages per node.
		if p.D2.MsgsPerNode() >= p.Trad.MsgsPerNode() {
			t.Errorf("nodes=%d: D2 msgs/node %.1f ≥ traditional %.1f",
				p.Nodes, p.D2.MsgsPerNode(), p.Trad.MsgsPerNode())
		}
		// Fig 13: D2's miss rate below traditional's.
		if p.D2.MeanUserMissRate() >= p.Trad.MeanUserMissRate() {
			t.Errorf("nodes=%d: D2 miss %.2f ≥ traditional %.2f",
				p.Nodes, p.D2.MeanUserMissRate(), p.Trad.MeanUserMissRate())
		}
		// Fig 10 seq: D2 faster.
		if sp := speedup(p.Trad, p.D2); sp <= 1 {
			t.Errorf("nodes=%d seq: speedup %.2f ≤ 1", p.Nodes, sp)
		}
	}
	// Fig 9 trend: traditional msgs/node grows with size; D2's shrinks
	// (compare smallest and largest sizes, seq @1500).
	var small, large *PerfPoint
	for i := range points {
		p := &points[i]
		if p.BPS != 1_500_000 || p.Parallel {
			continue
		}
		if small == nil || p.Nodes < small.Nodes {
			small = p
		}
		if large == nil || p.Nodes > large.Nodes {
			large = p
		}
	}
	// Traditional total lookup traffic grows with system size (its cache
	// miss rate climbs); per-node traffic is diluted by the larger node
	// count at fixed user activity — EXPERIMENTS.md discusses this
	// deviation from Figure 9's per-node presentation.
	if large.Trad.LookupMsgs <= small.Trad.LookupMsgs {
		t.Errorf("traditional total lookup msgs fell from %d to %d with size; miss growth should raise it",
			small.Trad.LookupMsgs, large.Trad.LookupMsgs)
	}
	if large.D2.MsgsPerNode() > small.D2.MsgsPerNode()*1.2 {
		t.Errorf("D2 msgs/node grew from %.1f to %.1f with size; paper says it shrinks",
			small.D2.MsgsPerNode(), large.D2.MsgsPerNode())
	}
}

func TestScatterSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	points := RunPerfSweep(Small)
	for _, parallel := range []bool{false, true} {
		pts := Fig14Scatter(points, parallel)
		if len(pts) == 0 {
			t.Fatalf("no scatter points (parallel=%v)", parallel)
		}
		faster := 0
		for _, p := range pts {
			if p.FasterD2 {
				faster++
			}
		}
		if !parallel && float64(faster)/float64(len(pts)) < 0.5 {
			t.Errorf("seq scatter: only %d/%d groups faster in D2; weight should be above diagonal",
				faster, len(pts))
		}
	}
	if pts := Fig15Scatter(points, false); len(pts) == 0 {
		t.Error("no Fig 15 scatter points")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "full"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = (%v, %v)", name, s.Name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "333  4") {
		t.Errorf("table misaligned:\n%s", out)
	}
}

func TestWarmupConstant(t *testing.T) {
	if WarmupBalance != 3*24*time.Hour {
		t.Errorf("warm-up = %v, paper uses 3 days", WarmupBalance)
	}
}
