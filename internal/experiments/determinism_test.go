package experiments

import (
	"reflect"
	"testing"
)

// determinismScale is a deliberately tiny run so the workers=1 vs workers=8
// comparison (which simulates everything twice, under -race in CI) stays
// fast while still covering multiple cells per driver.
func determinismScale() Scale {
	s := Small
	s.Name = "determinism"
	s.HarvardBytes = 8 << 20
	s.HarvardUsers = 6
	s.Days = 1
	s.AvailNodes = 16
	s.Trials = 2
	s.PerfNodes = []int{60, 100}
	s.PerfWindows = 2
	return s
}

// TestParallelDeterminism is the regression guard for the worker pool: a
// run with one worker and a run with eight must produce byte-identical
// results. Each simulation derives all randomness from its own task index
// and results are keyed by index, so scheduling order must never leak into
// the output.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double simulation run in -short mode")
	}
	serial := determinismScale()
	serial.Workers = 1
	pooled := determinismScale()
	pooled.Workers = 8

	p1 := RunPerfSweep(serial)
	p8 := RunPerfSweep(pooled)
	if !reflect.DeepEqual(p1, p8) {
		t.Error("RunPerfSweep differs between workers=1 and workers=8")
	}
	for _, render := range []func([]PerfPoint) *Table{Fig9, Fig10, Fig11, Fig13} {
		if a, b := render(p1).String(), render(p8).String(); a != b {
			t.Errorf("rendered perf table differs:\nworkers=1:\n%s\nworkers=8:\n%s", a, b)
		}
	}

	f1 := Fig7(serial)
	f8 := Fig7(pooled)
	if !reflect.DeepEqual(f1, f8) {
		t.Error("Fig7 differs between workers=1 and workers=8")
	}
	if a, b := RenderFig7(f1).String(), RenderFig7(f8).String(); a != b {
		t.Errorf("rendered Fig7 differs:\nworkers=1:\n%s\nworkers=8:\n%s", a, b)
	}
}
