// Package keys implements D2's 64-byte key space: the locality-preserving
// key encoding of Figure 4 of the paper, hashed keys for the traditional
// baselines, and arithmetic on the circular key space used by the DHT
// (comparison, circular intervals, distance, and midpoints).
package keys

import (
	"bytes"
	"crypto/sha512"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
)

// Size is the number of bytes in every DHT key and node ID.
const Size = 64

// Layout offsets for the Figure 4 locality-preserving encoding.
const (
	volumeOff    = 0  // 20-byte volume ID
	volumeLen    = 20 //
	slotsOff     = 20 // 12 two-byte directory slots
	slotWidth    = 2  //
	MaxPathDepth = 12 // path levels encoded exactly; deeper levels are hashed
	remainderOff = 44 // 8-byte hash of the path remainder
	remainderLen = 8  //
	blockOff     = 52 // 8-byte block number (0 = inode, 1.. = data blocks)
	blockLen     = 8  //
	versionOff   = 60 // 4-byte version hash
	versionLen   = 4  //
)

// Key is a point on the circular 512-bit key space. Keys are compared as
// big-endian unsigned integers. Node IDs share the same type and space.
type Key [Size]byte

// Zero is the all-zero key, the origin of the ring.
var Zero Key

// MaxKey is the largest key value.
var MaxKey = func() Key {
	var k Key
	for i := range k {
		k[i] = 0xff
	}
	return k
}()

// Compare returns -1, 0 or +1 ordering keys as big-endian integers.
func (k Key) Compare(o Key) int { return bytes.Compare(k[:], o[:]) }

// Less reports whether k sorts strictly before o.
func (k Key) Less(o Key) bool { return bytes.Compare(k[:], o[:]) < 0 }

// Equal reports whether the two keys are identical.
func (k Key) Equal(o Key) bool { return k == o }

// IsZero reports whether k is the all-zero key.
func (k Key) IsZero() bool { return k == Zero }

// String returns the full hexadecimal form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an abbreviated hex prefix for logs and test output.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// ErrBadKey reports a malformed textual key.
var ErrBadKey = errors.New("keys: malformed key")

// Parse decodes the hexadecimal form produced by String.
func Parse(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	if len(b) != Size {
		return k, fmt.Errorf("%w: got %d bytes, want %d", ErrBadKey, len(b), Size)
	}
	copy(k[:], b)
	return k, nil
}

// Between reports whether k lies in the circular half-open interval (a, b].
// This is the Chord ownership test: a node with ID b owns key k when
// k ∈ (pred, b]. When a == b the interval covers the entire ring.
func (k Key) Between(a, b Key) bool {
	switch a.Compare(b) {
	case -1: // no wrap
		return a.Less(k) && !b.Less(k)
	case +1: // wraps past the origin
		return a.Less(k) || !b.Less(k)
	default: // a == b: whole ring
		return true
	}
}

// InOpenInterval reports whether k lies in the circular open interval (a, b).
func (k Key) InOpenInterval(a, b Key) bool {
	switch a.Compare(b) {
	case -1:
		return a.Less(k) && k.Less(b)
	case +1:
		return a.Less(k) || k.Less(b)
	default:
		return !k.Equal(a)
	}
}

// Next returns k+1 (mod 2^512).
func (k Key) Next() Key {
	for i := Size - 1; i >= 0; i-- {
		k[i]++
		if k[i] != 0 {
			break
		}
	}
	return k
}

// Prev returns k-1 (mod 2^512).
func (k Key) Prev() Key {
	for i := Size - 1; i >= 0; i-- {
		k[i]--
		if k[i] != 0xff {
			break
		}
	}
	return k
}

// Add returns k+o (mod 2^512).
func (k Key) Add(o Key) Key {
	var out Key
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(k[i]) + uint16(o[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns k-o (mod 2^512).
func (k Key) Sub(o Key) Key {
	var out Key
	var borrow int16
	for i := Size - 1; i >= 0; i-- {
		d := int16(k[i]) - int16(o[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Half returns k/2 (logical shift right by one bit).
func (k Key) Half() Key {
	var out Key
	var carry byte
	for i := 0; i < Size; i++ {
		out[i] = k[i]>>1 | carry<<7
		carry = k[i] & 1
	}
	return out
}

// Distance returns the clockwise distance from k to o on the ring,
// i.e. the number of steps a key must advance from k to reach o.
func (k Key) Distance(o Key) Key { return o.Sub(k) }

// Midpoint returns the key halfway along the clockwise arc from a to b.
// It is used to pick the ID of a node splitting another node's range.
func Midpoint(a, b Key) Key { return a.Add(a.Distance(b).Half()) }

// Random returns a uniformly random key drawn from rng.
func Random(rng *rand.Rand) Key {
	var k Key
	for i := 0; i < Size; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			k[i+j] = byte(v >> (56 - 8*j))
		}
	}
	return k
}

// HashKey derives a key by hashing the given byte chunks with SHA-512.
// The traditional and traditional-file baselines use it for placement:
// consistent hashing assigns uniformly random positions on the ring.
func HashKey(chunks ...[]byte) Key {
	h := sha512.New()
	for _, c := range chunks {
		h.Write(c)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// HashString is HashKey over a single string, a convenience for
// hashed path and URL keys.
func HashString(s string) Key { return HashKey([]byte(s)) }
