package keys

import (
	"testing"
)

func TestEncodeLayout(t *testing.T) {
	vol := NewVolumeID([]byte("pubkey"), "home")
	pc := NewPathCode([]uint16{1, 2, 3}, nil)
	k := Encode(vol, pc, 7, 9)

	if got := k.Volume(); got != vol {
		t.Errorf("Volume() = %v, want %v", got, vol)
	}
	for i, want := range []uint16{1, 2, 3} {
		if got := k.Slot(i); got != want {
			t.Errorf("Slot(%d) = %d, want %d", i, got, want)
		}
	}
	if got := k.Slot(3); got != 0 {
		t.Errorf("unused Slot(3) = %d, want 0", got)
	}
	if got := k.BlockNum(); got != 7 {
		t.Errorf("BlockNum() = %d, want 7", got)
	}
	if got := k.Version(); got != 9 {
		t.Errorf("Version() = %d, want 9", got)
	}
}

func TestEncodePreservesPreorderTraversal(t *testing.T) {
	vol := NewVolumeID([]byte("pk"), "v")
	// A directory tree: /a (slot 1), /a/x (slots 1,1), /a/y (slots 1,2), /b (slot 2).
	aFile := Encode(vol, NewPathCode([]uint16{1, 1}, nil), 0, 0)
	aFile2 := Encode(vol, NewPathCode([]uint16{1, 2}, nil), 0, 0)
	bFile := Encode(vol, NewPathCode([]uint16{2, 1}, nil), 0, 0)

	if !aFile.Less(aFile2) {
		t.Error("sibling with smaller slot must sort first")
	}
	if !aFile2.Less(bFile) {
		t.Error("all of /a must sort before /b")
	}
}

func TestBlocksOfFileAreContiguous(t *testing.T) {
	vol := NewVolumeID([]byte("pk"), "v")
	inode := Encode(vol, NewPathCode([]uint16{5, 9}, nil), 0, 0)
	prev := inode
	for b := uint64(1); b <= 16; b++ {
		cur := inode.WithBlock(b)
		if !prev.Less(cur) {
			t.Fatalf("block %d key does not sort after block %d", b, b-1)
		}
		// Nothing belonging to a different file fits between consecutive
		// blocks of the same file with version 0: the gap is only versions.
		if cur.Volume() != vol || cur.Slot(0) != 5 || cur.Slot(1) != 9 {
			t.Fatalf("WithBlock changed the path prefix")
		}
		prev = cur
	}
}

func TestDeepPathsHashRemainder(t *testing.T) {
	vol := NewVolumeID([]byte("pk"), "v")
	slots := make([]uint16, 14)
	for i := range slots {
		slots[i] = uint16(i + 1)
	}
	deepA := NewPathCode(slots, []string{"m", "n"})
	deepB := NewPathCode(slots, []string{"m", "q"})
	ka := Encode(vol, deepA, 0, 0)
	kb := Encode(vol, deepB, 0, 0)
	if ka == kb {
		t.Error("different deep remainders must give different keys")
	}
	// Both share the 12-slot prefix.
	for i := 0; i < MaxPathDepth; i++ {
		if ka.Slot(i) != kb.Slot(i) {
			t.Errorf("Slot(%d) differs between deep siblings", i)
		}
	}
	if got := len(deepA.Slots); got != MaxPathDepth {
		t.Errorf("slots truncated to %d, want %d", got, MaxPathDepth)
	}
}

func TestHashedPathCodeDeterministic(t *testing.T) {
	a := HashedPathCode([]string{"com.yahoo.www", "index.html"})
	b := HashedPathCode([]string{"com.yahoo.www", "index.html"})
	if len(a.Slots) != 2 || len(b.Slots) != 2 {
		t.Fatalf("want 2 slots, got %d and %d", len(a.Slots), len(b.Slots))
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Error("HashedPathCode not deterministic")
		}
	}
	c := HashedPathCode([]string{"com.yahoo.www", "other.html"})
	if a.Slots[0] != c.Slots[0] {
		t.Error("same first component must hash to same slot")
	}
}

func TestFileBaseAndLimit(t *testing.T) {
	vol := NewVolumeID([]byte("pk"), "v")
	k := Encode(vol, NewPathCode([]uint16{3}, nil), 5, 77)
	base := k.FileBase()
	if base.BlockNum() != 0 || base.Version() != 0 {
		t.Error("FileBase must zero block number and version")
	}
	lim := k.FileLimit()
	for b := uint64(0); b < 4; b++ {
		blk := base.WithBlock(b)
		if !blk.Less(lim) {
			t.Errorf("block %d not below FileLimit", b)
		}
		if blk.Less(base) {
			t.Errorf("block %d below FileBase", b)
		}
	}
	// A sibling file with the next slot starts at or after the limit.
	sibling := Encode(vol, NewPathCode([]uint16{4}, nil), 0, 0)
	if sibling.Less(lim) {
		t.Error("sibling file key must not fall inside this file's range")
	}
}

func TestVolumeRange(t *testing.T) {
	volA := NewVolumeID([]byte("pk"), "a")
	volB := NewVolumeID([]byte("pk"), "b")
	lo, hi := VolumeRange(volA)
	inA := Encode(volA, NewPathCode([]uint16{9999}, nil), 1<<40, 12345)
	if inA.Less(lo) || !inA.Less(hi) {
		t.Error("key of volume A outside VolumeRange(A)")
	}
	inB := Encode(volB, PathCode{}, 0, 0)
	if !inB.Less(lo) && inB.Less(hi) {
		t.Error("key of volume B inside VolumeRange(A)")
	}
	if !lo.Less(hi) && lo != hi {
		// hi may wrap only for the all-0xff volume, which NewVolumeID
		// essentially never produces.
		t.Errorf("VolumeRange returned inverted range lo=%s hi=%s", lo.Short(), hi.Short())
	}
}

func TestNewVolumeIDDistinct(t *testing.T) {
	a := NewVolumeID([]byte("pk1"), "home")
	b := NewVolumeID([]byte("pk1"), "mail")
	c := NewVolumeID([]byte("pk2"), "home")
	if a == b || a == c || b == c {
		t.Error("volume IDs must be distinct across names and publishers")
	}
}
