package keys

import (
	"math/rand/v2"
	"testing"
)

// checkRingLaws asserts the algebraic laws of circular key arithmetic for
// one pair of keys. It is shared by the property test (random pairs), the
// explicit zero-crossing cases, and the fuzz target.
func checkRingLaws(t *testing.T, a, b Key) {
	t.Helper()

	// Add/Sub are inverse: (a+b)-b == a and (a-b)+b == a, even across the
	// 2^512 wraparound.
	if got := a.Add(b).Sub(b); !got.Equal(a) {
		t.Fatalf("(a+b)-b != a: a=%s b=%s got=%s", a.Short(), b.Short(), got.Short())
	}
	if got := a.Sub(b).Add(b); !got.Equal(a) {
		t.Fatalf("(a-b)+b != a: a=%s b=%s got=%s", a.Short(), b.Short(), got.Short())
	}

	// Walking the clockwise distance from a lands exactly on b.
	d := a.Distance(b)
	if got := a.Add(d); !got.Equal(b) {
		t.Fatalf("a + dist(a,b) != b: a=%s b=%s", a.Short(), b.Short())
	}
	// Distances in the two directions sum to 0 (mod 2^512).
	if got := d.Add(b.Distance(a)); !got.IsZero() && !a.Equal(b) {
		t.Fatalf("dist(a,b)+dist(b,a) != 0: a=%s b=%s", a.Short(), b.Short())
	}

	// Next/Prev are single-step Add/Sub.
	if got := a.Next(); !got.Equal(a.Add(one())) {
		t.Fatalf("Next != Add(1): a=%s", a.Short())
	}
	if got := a.Prev(); !got.Equal(a.Sub(one())) {
		t.Fatalf("Prev != Sub(1): a=%s", a.Short())
	}

	// Interval laws. For a != b the arcs (a,b] and (b,a] partition the
	// ring: every key is in exactly one of them.
	if !b.Between(a, b) {
		t.Fatalf("b not in (a,b]: a=%s b=%s", a.Short(), b.Short())
	}
	if a.Between(a, b) && !a.Equal(b) {
		t.Fatalf("a in (a,b]: a=%s b=%s", a.Short(), b.Short())
	}
	if !a.Equal(b) {
		for _, k := range []Key{a, b, a.Next(), b.Next(), Midpoint(a, b), Zero, MaxKey} {
			in1, in2 := k.Between(a, b), k.Between(b, a)
			if in1 == in2 {
				t.Fatalf("k=%s in both/neither of (a,b] and (b,a]: a=%s b=%s",
					k.Short(), a.Short(), b.Short())
			}
			// Open interval is the half-open one minus the endpoint.
			if open := k.InOpenInterval(a, b); open != (in1 && !k.Equal(b)) {
				t.Fatalf("open/half-open mismatch at k=%s: a=%s b=%s",
					k.Short(), a.Short(), b.Short())
			}
		}
	}

	// The midpoint lies on the clockwise arc from a to b, no further from
	// a than b is, with the two halves rejoining to the full distance.
	m := Midpoint(a, b)
	dm, mb := a.Distance(m), m.Distance(b)
	if dm.Compare(d) > 0 {
		t.Fatalf("midpoint overshoots: a=%s b=%s m=%s", a.Short(), b.Short(), m.Short())
	}
	if got := dm.Add(mb); !got.Equal(d) {
		t.Fatalf("midpoint halves don't sum: a=%s b=%s m=%s", a.Short(), b.Short(), m.Short())
	}
	if !a.Equal(b) && !m.Equal(a) && !m.Between(a, b) {
		t.Fatalf("midpoint outside arc: a=%s b=%s m=%s", a.Short(), b.Short(), m.Short())
	}
}

func one() Key {
	var k Key
	k[Size-1] = 1
	return k
}

func TestRingArithmeticProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 2000; i++ {
		a, b := Random(rng), Random(rng)
		checkRingLaws(t, a, b)
		checkRingLaws(t, a, a)
	}
}

// TestRingArithmeticZeroCrossing pins down the wraparound cases random
// sampling essentially never hits: arcs spanning the origin, and keys at
// the very edges of the space.
func TestRingArithmeticZeroCrossing(t *testing.T) {
	nearMax := MaxKey.Sub(one().Add(one())) // 2^512 - 3
	cases := []struct{ a, b Key }{
		{MaxKey, Zero},                        // arc of length 1 across the origin
		{Zero, MaxKey},                        // arc of everything but the origin
		{MaxKey, one()},                       // short arc spanning the origin
		{nearMax, one()},                      // slightly longer wrap
		{MaxKey.Sub(one()), MaxKey},           // arc ending at the top
		{Zero, Zero},                          // degenerate: whole ring
		{MaxKey, MaxKey},                      // degenerate at the top
		{one(), MaxKey},                       // nearly-whole ring, no wrap
		{MaxKey.Half(), MaxKey.Half().Next()}, // mid-ring unit arc
	}
	for _, c := range cases {
		checkRingLaws(t, c.a, c.b)
	}

	// Pinpoint checks of wraparound membership.
	if !Zero.Between(MaxKey, Zero) {
		t.Fatal("origin not in (max, 0]")
	}
	if MaxKey.Between(MaxKey, Zero) {
		t.Fatal("max in (max, 0]")
	}
	if !MaxKey.Next().IsZero() {
		t.Fatal("max+1 != 0")
	}
	if !Zero.Prev().Equal(MaxKey) {
		t.Fatal("0-1 != max")
	}
	if got := Midpoint(MaxKey, one()); !got.IsZero() {
		t.Fatalf("midpoint of (max, 1) = %s, want 0", got.Short())
	}
}

// FuzzRingArithmetic lets the fuzzer hunt for key pairs violating the ring
// laws, seeding it with the adversarial wraparound corpus.
func FuzzRingArithmetic(f *testing.F) {
	unit, half := one(), MaxKey.Half()
	halfNext := half.Next()
	f.Add(Zero[:], MaxKey[:])
	f.Add(MaxKey[:], Zero[:])
	f.Add(MaxKey[:], unit[:])
	f.Add(half[:], halfNext[:])
	f.Add(unit[:], unit[:])
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		var a, b Key
		copy(a[:], ab)
		copy(b[:], bb)
		checkRingLaws(t, a, b)
	})
}
