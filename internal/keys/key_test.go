package keys

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func keyFromUint(v uint64) Key {
	var k Key
	for j := 0; j < 8; j++ {
		k[Size-1-j] = byte(v >> (8 * j))
	}
	return k
}

func toBig(k Key) *big.Int { return new(big.Int).SetBytes(k[:]) }

var ringMod = new(big.Int).Lsh(big.NewInt(1), 8*Size)

func fromBig(t *testing.T, v *big.Int) Key {
	t.Helper()
	v = new(big.Int).Mod(v, ringMod)
	var k Key
	v.FillBytes(k[:])
	return k
}

func TestCompareOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b Key
		want int
	}{
		{"zero vs zero", Zero, Zero, 0},
		{"zero vs one", Zero, keyFromUint(1), -1},
		{"one vs zero", keyFromUint(1), Zero, 1},
		{"max vs zero", MaxKey, Zero, 1},
		{"equal nonzero", keyFromUint(42), keyFromUint(42), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestNextPrevRoundTrip(t *testing.T) {
	cases := []Key{Zero, MaxKey, keyFromUint(1), keyFromUint(255), keyFromUint(1 << 32)}
	for _, k := range cases {
		if got := k.Next().Prev(); got != k {
			t.Errorf("Next().Prev() of %s = %s", k.Short(), got.Short())
		}
		if got := k.Prev().Next(); got != k {
			t.Errorf("Prev().Next() of %s = %s", k.Short(), got.Short())
		}
	}
	if got := MaxKey.Next(); got != Zero {
		t.Errorf("MaxKey.Next() = %s, want zero (wraparound)", got.Short())
	}
	if got := Zero.Prev(); got != MaxKey {
		t.Errorf("Zero.Prev() = %s, want max (wraparound)", got.Short())
	}
}

func TestBetween(t *testing.T) {
	a, b, c := keyFromUint(10), keyFromUint(20), keyFromUint(30)
	tests := []struct {
		name    string
		k, x, y Key
		want    bool
	}{
		{"inside", b, a, c, true},
		{"at upper bound inclusive", c, a, c, true},
		{"at lower bound exclusive", a, a, c, false},
		{"outside", keyFromUint(40), a, c, false},
		{"wrap inside high", keyFromUint(5), c, b, true},
		{"wrap inside low", MaxKey, c, b, true},
		{"wrap outside", keyFromUint(25), c, b, false},
		{"whole ring", a, b, b, true},
		{"whole ring at bound", b, b, b, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.k.Between(tt.x, tt.y); got != tt.want {
				t.Errorf("Between(%s, %s, %s) = %v, want %v",
					tt.k.Short(), tt.x.Short(), tt.y.Short(), got, tt.want)
			}
		})
	}
}

func TestInOpenInterval(t *testing.T) {
	a, c := keyFromUint(10), keyFromUint(30)
	if !keyFromUint(20).InOpenInterval(a, c) {
		t.Error("20 should be in (10, 30)")
	}
	if c.InOpenInterval(a, c) {
		t.Error("30 should not be in (10, 30): open upper bound")
	}
	if a.InOpenInterval(a, c) {
		t.Error("10 should not be in (10, 30): open lower bound")
	}
	if a.InOpenInterval(a, a) {
		t.Error("a should not be in (a, a)")
	}
	if !keyFromUint(11).InOpenInterval(a, a) {
		t.Error("(a, a) should cover the rest of the ring")
	}
}

func TestAddSubAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		wantAdd := fromBig(t, new(big.Int).Add(toBig(a), toBig(b)))
		if got := a.Add(b); got != wantAdd {
			t.Fatalf("Add mismatch at iter %d", i)
		}
		wantSub := fromBig(t, new(big.Int).Sub(toBig(a), toBig(b)))
		if got := a.Sub(b); got != wantSub {
			t.Fatalf("Sub mismatch at iter %d", i)
		}
	}
}

func TestHalfAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		a := Random(rng)
		want := fromBig(t, new(big.Int).Rsh(toBig(a), 1))
		if got := a.Half(); got != want {
			t.Fatalf("Half mismatch at iter %d", i)
		}
	}
}

func TestMidpointBisectsArc(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if a == b {
			continue
		}
		m := Midpoint(a, b)
		// The midpoint must lie on the clockwise arc (a, b].
		if !m.Between(a, b) && m != a {
			t.Fatalf("midpoint %s outside arc (%s, %s]", m.Short(), a.Short(), b.Short())
		}
		// Distance from a to m must be half the arc length (rounded down).
		wantDist := a.Distance(b).Half()
		if got := a.Distance(m); got != wantDist {
			t.Fatalf("Distance(a, mid) = %s, want %s", got.Short(), wantDist.Short())
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 20; i++ {
		k := Random(rng)
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip mismatch")
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "zz", "abcd", "0x00"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestHashKeyDeterministicAndSpread(t *testing.T) {
	a := HashString("/home/alice/file.txt")
	b := HashString("/home/alice/file.txt")
	c := HashString("/home/alice/file2.txt")
	if a != b {
		t.Error("HashString not deterministic")
	}
	if a == c {
		t.Error("distinct inputs should hash to distinct keys")
	}
	// Adjacent names must land far apart: that is the point of hashing.
	d := a.Distance(c)
	if d[0] == 0 && d[1] == 0 && d[2] == 0 && d[3] == 0 {
		t.Error("hashed keys of sibling files are suspiciously close")
	}
}

// Property tests via testing/quick. quick generates random [Size]byte
// values directly, which convert to Key.

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		ka, kb := Key(a), Key(b)
		return ka.Add(kb).Sub(kb) == ka
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceAdditive(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		ka, kb := Key(a), Key(b)
		// a + distance(a, b) == b on the ring.
		return ka.Add(ka.Distance(kb)) == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBetweenComplement(t *testing.T) {
	f := func(k, a, b [Size]byte) bool {
		kk, ka, kb := Key(k), Key(a), Key(b)
		if ka == kb {
			return kk.Between(ka, kb)
		}
		// Exactly one of (a,b] and (b,a] contains k.
		return kk.Between(ka, kb) != kk.Between(kb, ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		ka, kb := Key(a), Key(b)
		return ka.Compare(kb) == -kb.Compare(ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompare(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	x, y := Random(rng), Random(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkBetween(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 12))
	k, x, y := Random(rng), Random(rng), Random(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Between(x, y)
	}
}
