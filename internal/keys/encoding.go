package keys

import (
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"strings"
)

// VolumeID identifies a file-system volume: the first 20 bytes of every
// locality-preserving key, so all keys of a volume form one contiguous arc.
type VolumeID [volumeLen]byte

// NewVolumeID derives a volume ID from the publisher's public key and the
// volume name, as D2-FS does when a volume is created.
func NewVolumeID(publisherKey []byte, name string) VolumeID {
	sum := sha512.Sum512(append(append([]byte{}, publisherKey...), name...))
	var v VolumeID
	copy(v[:], sum[:volumeLen])
	return v
}

func (v VolumeID) String() string { return fmt.Sprintf("%x", v[:6]) }

// PathCode is the sequence of 2-byte directory slots identifying a file's
// position in the namespace, plus a hash of any levels past MaxPathDepth.
// Slots are allocated by parent directories in creation order, so keys sort
// consistently with a preorder traversal of the directory tree (§4.2).
type PathCode struct {
	// Slots holds one 2-byte value per path level, at most MaxPathDepth.
	Slots []uint16
	// Remainder is the hash of path levels beyond MaxPathDepth (zero when
	// the path fits entirely in Slots).
	Remainder [remainderLen]byte
}

// NewPathCode builds a PathCode from explicit slot values, hashing any
// levels beyond MaxPathDepth from the remaining path components.
func NewPathCode(slots []uint16, deepComponents []string) PathCode {
	pc := PathCode{Slots: slots}
	if len(slots) > MaxPathDepth {
		pc.Slots = slots[:MaxPathDepth]
	}
	if len(deepComponents) > 0 {
		sum := sha512.Sum512([]byte(strings.Join(deepComponents, "/")))
		copy(pc.Remainder[:], sum[:remainderLen])
	}
	return pc
}

// HashedPathCode derives each slot as a 2-byte hash of the corresponding
// path component. Applications without access to parent directory state
// (such as a web cache) use this variant, losing a little locality when
// hashes collide (§4.2 footnote 2).
func HashedPathCode(components []string) PathCode {
	n := len(components)
	if n > MaxPathDepth {
		n = MaxPathDepth
	}
	slots := make([]uint16, n)
	for i := 0; i < n; i++ {
		sum := sha512.Sum512([]byte(components[i]))
		slots[i] = binary.BigEndian.Uint16(sum[:2])
	}
	return NewPathCode(slots, components[n:])
}

// Encode builds a locality-preserving key with the Figure 4 layout.
func Encode(vol VolumeID, path PathCode, blockNum uint64, version uint32) Key {
	var k Key
	copy(k[volumeOff:volumeOff+volumeLen], vol[:])
	for i, s := range path.Slots {
		if i >= MaxPathDepth {
			break
		}
		binary.BigEndian.PutUint16(k[slotsOff+i*slotWidth:], s)
	}
	copy(k[remainderOff:remainderOff+remainderLen], path.Remainder[:])
	binary.BigEndian.PutUint64(k[blockOff:], blockNum)
	binary.BigEndian.PutUint32(k[versionOff:], version)
	return k
}

// Volume extracts the 20-byte volume ID from a locality key.
func (k Key) Volume() VolumeID {
	var v VolumeID
	copy(v[:], k[volumeOff:volumeOff+volumeLen])
	return v
}

// Slot returns the 2-byte directory slot at the given path level.
func (k Key) Slot(level int) uint16 {
	return binary.BigEndian.Uint16(k[slotsOff+level*slotWidth:])
}

// BlockNum extracts the 8-byte block number.
func (k Key) BlockNum() uint64 { return binary.BigEndian.Uint64(k[blockOff:]) }

// Version extracts the 4-byte version hash.
func (k Key) Version() uint32 { return binary.BigEndian.Uint32(k[versionOff:]) }

// WithBlock returns a copy of k addressing a different block of the same
// file. Data blocks of one file therefore occupy consecutive key values.
func (k Key) WithBlock(blockNum uint64) Key {
	binary.BigEndian.PutUint64(k[blockOff:], blockNum)
	return k
}

// WithVersion returns a copy of k addressing a different version of the
// same block, so slightly stale views can still fetch old versions (§4.2).
func (k Key) WithVersion(version uint32) Key {
	binary.BigEndian.PutUint32(k[versionOff:], version)
	return k
}

// FileBase returns the key of the file's inode (block 0, version 0): the
// smallest key a file can occupy. Keys of all the file's blocks fall in
// [FileBase, FileLimit).
func (k Key) FileBase() Key { return k.WithBlock(0).WithVersion(0) }

// FileLimit returns the exclusive upper bound of the file's key range:
// the smallest key whose path prefix sorts after this file's.
func (k Key) FileLimit() Key {
	lim := k.FileBase()
	for i := blockOff; i < Size; i++ {
		lim[i] = 0
	}
	for i := blockOff - 1; i >= 0; i-- {
		lim[i]++
		if lim[i] != 0 {
			break
		}
	}
	return lim
}

// SameFile reports whether two keys address blocks of the same file:
// identical volume, path slots, and path remainder — everything before
// the block number. Combined with BlockNum arithmetic this is how the
// placement census detects contiguous runs in a sorted key walk.
func SameFile(a, b Key) bool {
	for i := 0; i < blockOff; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VolumeRange returns the inclusive lower and exclusive upper bounds of all
// keys belonging to a volume.
func VolumeRange(vol VolumeID) (lo, hi Key) {
	lo = Encode(vol, PathCode{}, 0, 0)
	hi = lo
	// Increment the volume prefix by one to get the exclusive bound.
	for i := volumeOff + volumeLen - 1; i >= volumeOff; i-- {
		hi[i]++
		if hi[i] != 0 {
			break
		}
	}
	return lo, hi
}
