// Package lookupcache implements D2's client-side lookup cache (§5): it
// remembers the key ranges owned by nodes seen in recent lookup results so
// future requests for keys inside a cached range skip the DHT lookup
// entirely. Entries expire after a TTL (1.25 h in the paper, tuned to the
// node churn rate); a stale hit only costs latency because the store falls
// back to a normal lookup when the block is not found.
package lookupcache

import (
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

// DefaultTTL is the paper's cache entry lifetime, chosen from the
// PlanetLab leave/join rate (§5).
const DefaultTTL = 75 * time.Minute

// Cache maps key ranges to values of type V (a node address or index).
// Time is passed explicitly so the simulator can drive it with virtual
// clocks. Cache is not safe for concurrent use; each client owns one.
type Cache[V any] struct {
	ttl time.Duration
	// entries are non-overlapping arcs sorted by hi. A range that wraps
	// the origin is split on insert, so for every entry either lo < hi or
	// lo == MaxKey (the arc [0, hi]).
	entries []entry[V]
	// minExpires is a lower bound on every entry's expiry, letting Sweep
	// return immediately while nothing can have expired.
	minExpires time.Duration

	hits   uint64
	misses uint64
}

type entry[V any] struct {
	lo, hi  keys.Key // arc (lo, hi]
	value   V
	expires time.Duration
}

// New creates a cache with the given TTL (DefaultTTL if zero).
func New[V any](ttl time.Duration) *Cache[V] {
	if ttl == 0 {
		ttl = DefaultTTL
	}
	return &Cache[V]{ttl: ttl}
}

// Len returns the number of live entries (including not-yet-swept expired
// ones).
func (c *Cache[V]) Len() int { return len(c.entries) }

// Stats returns the hit and miss counts accumulated by Lookup.
func (c *Cache[V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters (used between measurement
// windows).
func (c *Cache[V]) ResetStats() { c.hits, c.misses = 0, 0 }

// Lookup returns the cached value whose range covers k, if fresh.
func (c *Cache[V]) Lookup(k keys.Key, now time.Duration) (V, bool) {
	i := c.search(k)
	if i < len(c.entries) {
		e := &c.entries[i]
		if k.Between(e.lo, e.hi) {
			if e.expires > now {
				c.hits++
				return e.value, true
			}
			// Expired: drop it eagerly.
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
		}
	}
	c.misses++
	var zero V
	return zero, false
}

// search returns the index of the first entry with hi ≥ k.
func (c *Cache[V]) search(k keys.Key) int {
	return sort.Search(len(c.entries), func(i int) bool {
		return !c.entries[i].hi.Less(k)
	})
}

// Insert records that the node identified by v owned the arc (lo, hi] at
// time now. Overlapping older entries are evicted: the new result is the
// freshest view of that part of the ring.
func (c *Cache[V]) Insert(lo, hi keys.Key, v V, now time.Duration) {
	if lo.Compare(hi) > 0 {
		// Wrapping arc: split into (lo, Max] and (Max, hi] ≡ [0, hi].
		c.insertArc(lo, keys.MaxKey, v, now)
		c.insertArc(keys.MaxKey, hi, v, now)
		return
	}
	c.insertArc(lo, hi, v, now)
}

func (c *Cache[V]) insertArc(lo, hi keys.Key, v V, now time.Duration) {
	// Evict entries overlapping (lo, hi]: aLo < bHi && bLo < aHi treated
	// as linear intervals (callers split wraps). Non-wrapped entries are
	// pairwise disjoint and sorted by hi — hence also by lo — so the
	// candidates form a run starting at the first entry with e.hi > lo,
	// found by binary search, and ending at the first non-wrapped entry
	// with e.lo ≥ hi. Wrapped entries (lo == MaxKey) never satisfy
	// e.lo < hi; they are skipped in place and never end the run.
	i := c.search(lo)
	if i < len(c.entries) && c.entries[i].hi.Equal(lo) {
		i++
	}
	j := i
	for j < len(c.entries) {
		e := &c.entries[j]
		if e.lo.Less(e.hi) && !e.lo.Less(hi) {
			break
		}
		j++
	}
	w := i
	for r := i; r < j; r++ {
		if c.entries[r].lo.Less(hi) {
			continue // overlapping: evict
		}
		c.entries[w] = c.entries[r]
		w++
	}
	if w < j {
		c.entries = append(c.entries[:w], c.entries[j:]...)
	}
	e := entry[V]{lo: lo, hi: hi, value: v, expires: now + c.ttl}
	i = c.search(hi)
	c.entries = append(c.entries, entry[V]{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = e
	if len(c.entries) == 1 || e.expires < c.minExpires {
		c.minExpires = e.expires
	}
}

// Invalidate removes the entry covering k, if any: called after a cached
// node turned out not to hold the block (stale entry).
func (c *Cache[V]) Invalidate(k keys.Key) {
	i := c.search(k)
	if i < len(c.entries) && k.Between(c.entries[i].lo, c.entries[i].hi) {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// Sweep drops every expired entry; call it occasionally to bound memory in
// long-running clients. While no entry can have expired (all expiries are
// at least minExpires), it returns without walking the entries at all.
func (c *Cache[V]) Sweep(now time.Duration) {
	if now < c.minExpires || len(c.entries) == 0 {
		return
	}
	out := c.entries[:0]
	min := time.Duration(0)
	for _, e := range c.entries {
		if e.expires > now {
			if min == 0 || e.expires < min {
				min = e.expires
			}
			out = append(out, e)
		}
	}
	c.entries = out
	c.minExpires = min
}
