// Package lookupcache implements D2's client-side lookup cache (§5): it
// remembers the key ranges owned by nodes seen in recent lookup results so
// future requests for keys inside a cached range skip the DHT lookup
// entirely. Entries expire after a TTL (1.25 h in the paper, tuned to the
// node churn rate); a stale hit only costs latency because the store falls
// back to a normal lookup when the block is not found.
package lookupcache

import (
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

// DefaultTTL is the paper's cache entry lifetime, chosen from the
// PlanetLab leave/join rate (§5).
const DefaultTTL = 75 * time.Minute

// Cache maps key ranges to values of type V (a node address or index).
// Time is passed explicitly so the simulator can drive it with virtual
// clocks. Cache is not safe for concurrent use; each client owns one.
type Cache[V any] struct {
	ttl time.Duration
	// entries are non-overlapping arcs sorted by hi. A range that wraps
	// the origin is split on insert, so for every entry either lo < hi or
	// lo == MaxKey (the arc [0, hi]).
	entries []entry[V]

	hits   uint64
	misses uint64
}

type entry[V any] struct {
	lo, hi  keys.Key // arc (lo, hi]
	value   V
	expires time.Duration
}

// New creates a cache with the given TTL (DefaultTTL if zero).
func New[V any](ttl time.Duration) *Cache[V] {
	if ttl == 0 {
		ttl = DefaultTTL
	}
	return &Cache[V]{ttl: ttl}
}

// Len returns the number of live entries (including not-yet-swept expired
// ones).
func (c *Cache[V]) Len() int { return len(c.entries) }

// Stats returns the hit and miss counts accumulated by Lookup.
func (c *Cache[V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters (used between measurement
// windows).
func (c *Cache[V]) ResetStats() { c.hits, c.misses = 0, 0 }

// Lookup returns the cached value whose range covers k, if fresh.
func (c *Cache[V]) Lookup(k keys.Key, now time.Duration) (V, bool) {
	i := c.search(k)
	if i < len(c.entries) {
		e := &c.entries[i]
		if k.Between(e.lo, e.hi) {
			if e.expires > now {
				c.hits++
				return e.value, true
			}
			// Expired: drop it eagerly.
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
		}
	}
	c.misses++
	var zero V
	return zero, false
}

// search returns the index of the first entry with hi ≥ k.
func (c *Cache[V]) search(k keys.Key) int {
	return sort.Search(len(c.entries), func(i int) bool {
		return !c.entries[i].hi.Less(k)
	})
}

// Insert records that the node identified by v owned the arc (lo, hi] at
// time now. Overlapping older entries are evicted: the new result is the
// freshest view of that part of the ring.
func (c *Cache[V]) Insert(lo, hi keys.Key, v V, now time.Duration) {
	if lo.Compare(hi) > 0 {
		// Wrapping arc: split into (lo, Max] and (Max, hi] ≡ [0, hi].
		c.insertArc(lo, keys.MaxKey, v, now)
		c.insertArc(keys.MaxKey, hi, v, now)
		return
	}
	c.insertArc(lo, hi, v, now)
}

func (c *Cache[V]) insertArc(lo, hi keys.Key, v V, now time.Duration) {
	// Evict entries overlapping (lo, hi]. Entries and the new arc are
	// plain intervals in key order (wrapped arcs were split), so overlap
	// is an interval test on (lo, hi] vs (e.lo, e.hi].
	out := c.entries[:0]
	for i := range c.entries {
		e := c.entries[i]
		if overlaps(lo, hi, e.lo, e.hi) {
			continue
		}
		out = append(out, e)
	}
	c.entries = out
	e := entry[V]{lo: lo, hi: hi, value: v, expires: now + c.ttl}
	i := c.search(hi)
	c.entries = append(c.entries, entry[V]{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = e
}

// overlaps reports whether the half-open arcs (aLo, aHi] and (bLo, bHi]
// intersect, treating them as linear intervals (callers split wraps).
func overlaps(aLo, aHi, bLo, bHi keys.Key) bool {
	// (aLo, aHi] ∩ (bLo, bHi] ≠ ∅ ⇔ aLo < bHi && bLo < aHi.
	return aLo.Less(bHi) && bLo.Less(aHi)
}

// Invalidate removes the entry covering k, if any: called after a cached
// node turned out not to hold the block (stale entry).
func (c *Cache[V]) Invalidate(k keys.Key) {
	i := c.search(k)
	if i < len(c.entries) && k.Between(c.entries[i].lo, c.entries[i].hi) {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// Sweep drops every expired entry; call it occasionally to bound memory in
// long-running clients.
func (c *Cache[V]) Sweep(now time.Duration) {
	out := c.entries[:0]
	for _, e := range c.entries {
		if e.expires > now {
			out = append(out, e)
		}
	}
	c.entries = out
}
