package lookupcache

import (
	"math/rand/v2"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

func TestLookupHitAndMiss(t *testing.T) {
	c := New[int](time.Hour)
	c.Insert(k(10), k(20), 7, 0)

	if v, ok := c.Lookup(k(15), time.Minute); !ok || v != 7 {
		t.Errorf("Lookup(15) = (%d, %v), want (7, true)", v, ok)
	}
	if v, ok := c.Lookup(k(20), time.Minute); !ok || v != 7 {
		t.Errorf("Lookup(20) = (%d, %v), want hit at inclusive upper bound", v, ok)
	}
	if _, ok := c.Lookup(k(10), time.Minute); ok {
		t.Error("Lookup(10) hit: lower bound must be exclusive")
	}
	if _, ok := c.Lookup(k(25), time.Minute); ok {
		t.Error("Lookup(25) hit: outside range")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("Stats() = (%d, %d), want (2, 2)", hits, misses)
	}
}

func TestExpiry(t *testing.T) {
	c := New[int](time.Hour)
	c.Insert(k(10), k(20), 7, 0)
	if _, ok := c.Lookup(k(15), 2*time.Hour); ok {
		t.Error("entry should have expired after TTL")
	}
	if c.Len() != 0 {
		t.Error("expired entry should be dropped on lookup")
	}
}

func TestDefaultTTL(t *testing.T) {
	c := New[int](0)
	c.Insert(k(10), k(20), 1, 0)
	if _, ok := c.Lookup(k(15), DefaultTTL-time.Minute); !ok {
		t.Error("entry expired before the default 1.25h TTL")
	}
	if _, ok := c.Lookup(k(15), DefaultTTL+time.Minute); ok {
		t.Error("entry alive past the default TTL")
	}
}

func TestInsertEvictsOverlap(t *testing.T) {
	c := New[int](time.Hour)
	c.Insert(k(10), k(30), 1, 0)
	// A fresher, narrower result replaces the overlapping part.
	c.Insert(k(15), k(25), 2, time.Minute)
	if v, _ := c.Lookup(k(20), 2*time.Minute); v != 2 {
		t.Errorf("overlapped range should return the newer value, got %d", v)
	}
	// The old entry was evicted wholesale (it overlapped).
	if _, ok := c.Lookup(k(12), 2*time.Minute); ok {
		t.Error("stale overlapping entry should have been evicted")
	}
}

func TestWrappingRange(t *testing.T) {
	c := New[int](time.Hour)
	lo := keys.MaxKey.Sub(k(100))
	hi := k(50)
	c.Insert(lo, hi, 9, 0)
	if v, ok := c.Lookup(keys.MaxKey.Sub(k(10)), time.Minute); !ok || v != 9 {
		t.Errorf("high side of wrapped range: (%d, %v), want (9, true)", v, ok)
	}
	if v, ok := c.Lookup(k(25), time.Minute); !ok || v != 9 {
		t.Errorf("low side of wrapped range: (%d, %v), want (9, true)", v, ok)
	}
	if v, ok := c.Lookup(keys.Zero, time.Minute); !ok || v != 9 {
		t.Errorf("zero key in wrapped range: (%d, %v), want (9, true)", v, ok)
	}
	if _, ok := c.Lookup(k(60), time.Minute); ok {
		t.Error("key outside wrapped range hit")
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](time.Hour)
	c.Insert(k(10), k(20), 7, 0)
	c.Invalidate(k(15))
	if _, ok := c.Lookup(k(15), time.Minute); ok {
		t.Error("invalidated entry still hit")
	}
	// Invalidate of uncovered key is a no-op.
	c.Insert(k(30), k(40), 8, 0)
	c.Invalidate(k(25))
	if _, ok := c.Lookup(k(35), time.Minute); !ok {
		t.Error("unrelated entry removed by Invalidate")
	}
}

func TestSweep(t *testing.T) {
	c := New[int](time.Hour)
	c.Insert(k(10), k(20), 1, 0)
	c.Insert(k(30), k(40), 2, 30*time.Minute)
	c.Sweep(85 * time.Minute) // entry 1 expired at 60m, entry 2 expires at 90m
	if c.Len() != 1 {
		t.Errorf("Len after sweep = %d, want 1", c.Len())
	}
	if _, ok := c.Lookup(k(35), 86*time.Minute); !ok {
		t.Error("fresh entry removed by sweep")
	}
}

func TestManyDisjointEntries(t *testing.T) {
	c := New[int](time.Hour)
	for i := 0; i < 100; i++ {
		c.Insert(k(uint64(i*10)), k(uint64(i*10+9)), i, 0)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := c.Lookup(k(uint64(i*10+5)), time.Minute)
		if !ok || v != i {
			t.Fatalf("Lookup in entry %d = (%d, %v)", i, v, ok)
		}
	}
}

func TestRandomizedAgainstNaive(t *testing.T) {
	// Compare the cache against a naive list-of-arcs model under random
	// inserts and lookups.
	rng := rand.New(rand.NewPCG(42, 43))
	c := New[int](time.Hour)
	var model []arc
	now := time.Duration(0)
	for step := 0; step < 2000; step++ {
		now += time.Second
		if rng.Float64() < 0.3 {
			a := keys.Random(rng)
			span := k(uint64(rng.IntN(1 << 30)))
			b := a.Add(span)
			v := step
			c.Insert(a, b, v, now)
			// Model: remove overlapped, append.
			var out []arc
			for _, m := range model {
				if m.overlapsArc(a, b) {
					continue
				}
				out = append(out, m)
			}
			model = append(out, arc{lo: a, hi: b, v: v, exp: now + time.Hour})
		} else {
			probe := keys.Random(rng)
			got, ok := c.Lookup(probe, now)
			wantOK := false
			wantV := 0
			for _, m := range model {
				if probe.Between(m.lo, m.hi) && m.exp > now {
					wantOK = true
					wantV = m.v
					break
				}
			}
			if ok != wantOK || (ok && got != wantV) {
				t.Fatalf("step %d: Lookup = (%d, %v), model says (%d, %v)", step, got, ok, wantV, wantOK)
			}
		}
	}
}

// overlapsArc mirrors the cache's overlap logic for possibly-wrapping arcs.
func (m arc) overlapsArc(lo, hi keys.Key) bool {
	// Sample-free circular interval intersection: arcs (a, b] and (c, d]
	// intersect iff either endpoint region contains the other's bound.
	return hi.Between(m.lo, m.hi) || m.hi.Between(lo, hi)
}

type arc struct {
	lo, hi keys.Key
	v      int
	exp    time.Duration
}

func BenchmarkLookupHit(b *testing.B) {
	c := New[int](time.Hour)
	for i := 0; i < 1000; i++ {
		c.Insert(k(uint64(i*100)), k(uint64(i*100+99)), i, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(k(uint64((i%1000)*100+50)), time.Minute)
	}
}
