package node

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

// putFile stores nblocks contiguous blocks (a D2 file run) starting at
// base.WithBlock(1) and returns their keys in order.
func putFile(t testing.TB, c *Client, base keys.Key, nblocks int) []keys.Key {
	t.Helper()
	ctx := context.Background()
	ks := make([]keys.Key, nblocks)
	for b := 0; b < nblocks; b++ {
		ks[b] = base.WithBlock(uint64(b + 1))
		if err := c.Put(ctx, ks[b], blockPayload(b)); err != nil {
			t.Fatalf("put block %d: %v", b, err)
		}
	}
	return ks
}

func blockPayload(b int) []byte {
	return []byte(fmt.Sprintf("block-%04d-payload", b))
}

func TestGetManyContiguousFile(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	base := keys.HashString("batch-file").FileBase()
	ks := putFile(t, c, base, 20)

	// Include an absent key and a duplicate: absent keys are omitted,
	// duplicates fetched once.
	req := append(append([]keys.Key(nil), ks...), base.WithBlock(999), ks[3])
	got, err := c.GetMany(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(ks))
	}
	for b, k := range ks {
		if !bytes.Equal(got[k], blockPayload(b)) {
			t.Fatalf("block %d: got %q", b, got[k])
		}
	}
	if _, ok := got[base.WithBlock(999)]; ok {
		t.Fatal("absent key present in result")
	}
}

func TestGetManyAfterOwnerCrash(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	base := keys.HashString("crash-batch").FileBase()
	ks := putFile(t, c, base, 10)
	time.Sleep(150 * time.Millisecond) // let repair top up replicas

	// Crash the cached owner of the run: GetMany must fall back through
	// fresh lookups and replicas rather than fail on the stale cache.
	owner, err := c.Lookup(ctx, ks[0])
	if err != nil {
		t.Fatal(err)
	}
	var rest []*Node
	for _, n := range nodes {
		if n.Self().Addr == owner.Addr {
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rest = append(rest, n)
	}
	waitConverged(t, rest, 10*time.Second)

	got, err := c.GetMany(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	for b, k := range ks {
		if !bytes.Equal(got[k], blockPayload(b)) {
			t.Fatalf("block %d lost after owner crash", b)
		}
	}
}

func TestGetManyFollowsPointerRedirects(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	base := keys.HashString("ptr-batch").FileBase()
	ks := putFile(t, c, base, 4)

	// Replace one block at its owner with a pointer to a node that holds
	// the data (a pending §6 balance move).
	owner, err := c.Lookup(ctx, ks[1])
	if err != nil {
		t.Fatal(err)
	}
	var target *Node
	for _, n := range nodes {
		if n.Self().Addr != owner.Addr {
			target = n
			break
		}
	}
	target.Store().Put(ks[1], blockPayload(1), 0, time.Now())
	for _, n := range nodes {
		if n.Self().Addr == owner.Addr {
			n.Store().Delete(ks[1])
			n.Store().PutPointer(ks[1], target.Self().Addr, int64(len(blockPayload(1))), time.Now())
		}
	}

	got, err := c.GetMany(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[ks[1]], blockPayload(1)) {
		t.Fatalf("redirected block: got %q", got[ks[1]])
	}
}

func TestReadRangeReturnsArcInOrder(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	base := keys.HashString("range-file").FileBase()
	ks := putFile(t, c, base, 30)
	time.Sleep(150 * time.Millisecond) // replicas settle

	// (base, last block] covers exactly the file's blocks.
	entries, err := c.ReadRange(context.Background(), base, ks[len(ks)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ks) {
		t.Fatalf("ReadRange returned %d blocks, want %d", len(entries), len(ks))
	}
	for i, e := range entries {
		if !e.Key.Equal(ks[i]) {
			t.Fatalf("entry %d: key %s, want %s", i, e.Key.Short(), ks[i].Short())
		}
		if !bytes.Equal(e.Data, blockPayload(i)) {
			t.Fatalf("entry %d: data %q", i, e.Data)
		}
	}
}

func TestReadRangePaginatesLargeSegments(t *testing.T) {
	net := transport.NewMemNetwork(0)
	// Single node: the whole run lives in one segment, so a tiny
	// FetchRange limit forces the More/resume path. We drive fetchSegment
	// with an explicit limit via the raw RPC to keep the test direct.
	n := Start(net.NewEndpoint(), testConfig(1))
	defer n.Close()
	c := newClient(t, net, []*Node{n})
	defer c.Close()

	base := keys.HashString("paging").FileBase()
	ks := putFile(t, c, base, 12)

	ctx := context.Background()
	var got []keys.Key
	lo := base
	for {
		resp, err := transport.Expect[*transport.FetchRangeResp](
			c.call(ctx, n.Self().Addr, &transport.FetchRangeReq{Lo: lo, Hi: ks[len(ks)-1], Limit: 5}))
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range resp.Items {
			got = append(got, it.Key)
		}
		if !resp.More {
			break
		}
		lo = resp.Items[len(resp.Items)-1].Key
	}
	if len(got) != len(ks) {
		t.Fatalf("paged scan returned %d keys, want %d", len(got), len(ks))
	}
	for i, k := range got {
		if !k.Equal(ks[i]) {
			t.Fatalf("page order broken at %d", i)
		}
	}
}

// TestBatchedReadRPCSavings is the PR's acceptance check: on a 50-node
// ring, reading a 64-block D2 file via GetMany must cost at least 5×
// fewer RPCs than reading it block by block.
func TestBatchedReadRPCSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("50-node ring in -short mode")
	}
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 50, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	base := keys.HashString("rpc-count-file").FileBase()
	ks := putFile(t, c, base, 64)

	// Per-block read with a cold cache (fresh client state via a second
	// client would also redo lookups; reuse this one and count deltas).
	start := c.RPCs()
	for _, k := range ks {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	perBlock := c.RPCs() - start

	start = c.RPCs()
	got, err := c.GetMany(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	batched := c.RPCs() - start
	if len(got) != len(ks) {
		t.Fatalf("batched read returned %d blocks, want %d", len(got), len(ks))
	}
	if batched*5 > perBlock {
		t.Fatalf("batched read used %d RPCs vs %d per-block: less than the required 5x saving", batched, perBlock)
	}
	t.Logf("64-block file on 50 nodes: per-block %d RPCs, batched %d RPCs (%.1fx)",
		perBlock, batched, float64(perBlock)/float64(batched))
}
