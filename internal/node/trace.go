package node

import (
	"context"
	"runtime/pprof"
	"time"

	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/transport"
)

// handle is the transport-facing entry for inbound RPCs. Untraced
// requests (the overwhelming majority under sampling) go straight to
// dispatch with no span, no labels, and no allocation — unless a slow
// threshold is set, in which case they pay two clock reads so slow serves
// land in the event log even when the caller wasn't tracing. Traced
// requests get a serve.<kind> span parented to the caller's send span and
// run under pprof labels, so CPU profiles can be cut by RPC kind for
// exactly the requests a trace cares about.
func (n *Node) handle(ctx context.Context, from transport.Addr, req transport.Message) (transport.Message, error) {
	if tracing.FromContext(ctx) == nil {
		thr := n.tracer.SlowThreshold()
		if thr <= 0 {
			return n.dispatch(ctx, from, req)
		}
		start := time.Now()
		resp, err := n.dispatch(ctx, from, req)
		if dur := time.Since(start); dur >= thr {
			n.events.Log(obs.LevelWarn, "slow.request",
				"rpc", transport.RPCName(req), "from", from, "dur_ms", dur.Milliseconds())
		}
		return resp, err
	}
	sctx, sp := n.tracer.StartSpan(ctx, transport.ServeSpanName(req))
	var resp transport.Message
	var err error
	pprof.Do(sctx, pprof.Labels("d2_rpc", transport.RPCName(req)), func(c context.Context) {
		resp, err = n.dispatch(c, from, req)
	})
	sp.EndErr(err)
	if thr := n.tracer.SlowThreshold(); thr > 0 && sp != nil && sp.Duration() >= thr {
		n.events.LogCtx(sctx, obs.LevelWarn, "slow.request",
			"rpc", transport.RPCName(req), "from", from, "dur_ms", sp.Duration().Milliseconds())
	}
	return resp, err
}

// traceFetchMaxSpans caps one TraceFetch response.
const traceFetchMaxSpans = 4096

// handleTraceFetch serves the node's retained spans for one trace — the
// scrape RPC behind cross-node span assembly. A zero trace ID returns the
// node's recent root spans instead (trace discovery for /tracez-style
// listings over RPC).
func (n *Node) handleTraceFetch(r *transport.TraceFetchReq) transport.Message {
	sink := n.tracer.Sink()
	if sink == nil {
		return &transport.TraceFetchResp{}
	}
	limit := r.Limit
	if limit <= 0 || limit > traceFetchMaxSpans {
		limit = traceFetchMaxSpans
	}
	var spans []tracing.Span
	if r.Trace == 0 {
		spans = sink.Roots()
	} else {
		spans = sink.Trace(r.Trace)
	}
	if len(spans) > limit {
		spans = spans[:limit]
	}
	return &transport.TraceFetchResp{Spans: spans}
}
