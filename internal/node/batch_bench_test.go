package node

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/history"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/transport"
)

// BenchmarkBatchedRead measures reading a 64-block file three ways:
//
//   - place=d2/mode=batched    — contiguous D2 keys via GetMany: the keys
//     fall on a handful of owners, so the read costs ~one RPC per owner.
//   - place=d2/mode=perblock   — the same keys read one Get at a time,
//     the pre-batching client (one RPC per block even with a warm cache).
//   - place=hashed/mode=batched — hashed block placement via GetMany:
//     batching cannot help when every block lives on a different node.
//
// The mem variants run the acceptance configuration (50 nodes in one
// process); the tcp variants run a smaller real-socket ring and also
// exercise the pipelined transport. rpcs/op reports the client RPC count
// per whole-file read.
func BenchmarkBatchedRead(b *testing.B) {
	const blocks = 64
	var snaps []obs.Snapshot
	b.Run("transport=mem", func(b *testing.B) {
		// 100µs simulated one-way delay: without it every mem call is a
		// function call and the latency numbers say nothing about RPC
		// round trips.
		net := transport.NewMemNetwork(100 * time.Microsecond)
		nodes := startRing(b, net, 50, nil)
		defer closeAll(b, nodes)
		c := newClient(b, net, nodes)
		defer c.Close()
		benchPlacements(b, c, blocks)
		snaps = append(snaps, c.Metrics().Snapshot())
	})
	var traceSink *tracing.Sink
	var healthEngine *history.Engine
	b.Run("transport=tcp", func(b *testing.B) {
		nodes, cleanup := startTCPRing(b, 16)
		defer cleanup()
		c := newTCPClient(b, nodes)
		defer c.Close()
		// D2_BENCH_TRACE turns on 1-in-64 head sampling so the run leaves
		// real traces behind; with it unset the tracer stays configured but
		// idle, which is the zero-alloc path the bench numbers must hold on.
		if os.Getenv("D2_BENCH_TRACE") != "" {
			c.Tracer().SetSampleEvery(64)
		}
		// D2_BENCH_HEALTH brackets the TCP run with health-engine samples,
		// so the final summary carries true per-second rates over the run.
		if os.Getenv("D2_BENCH_HEALTH") != "" {
			healthEngine = history.New(history.Config{
				Registry: c.Metrics(), Node: "bench-tcp-client",
			})
			healthEngine.Tick(time.Now())
		}
		benchPlacements(b, c, blocks)
		snaps = append(snaps, c.Metrics().Snapshot())
		traceSink = c.Tracer().Sink()
	})
	// D2_BENCH_METRICS names a file to receive the merged client-side
	// metric snapshot; d2bench -metrics embeds it in BENCH_<n>.json so a
	// perf result carries its RPC and byte counts.
	if path := os.Getenv("D2_BENCH_METRICS"); path != "" && len(snaps) > 0 {
		data, err := json.MarshalIndent(obs.MergeAll(snaps...), "", "  ")
		if err == nil {
			err = os.WriteFile(path, data, 0o644)
		}
		if err != nil {
			b.Errorf("write metrics snapshot: %v", err)
		}
	}
	// D2_BENCH_TRACE names a file to receive the TCP client's sampled spans
	// as Chrome trace-event JSON (Perfetto-loadable); d2bench -trace embeds
	// the raw span form in BENCH_<n>.json.
	if path := os.Getenv("D2_BENCH_TRACE"); path != "" && traceSink != nil {
		f, err := os.Create(path)
		if err == nil {
			err = tracing.WriteChromeTrace(f, traceSink.Spans())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			b.Errorf("write trace spans: %v", err)
		}
	}
	// D2_BENCH_HEALTH names a file to receive the final cluster-health
	// summary (status document + derived run rates); d2bench -health embeds
	// it in BENCH_<n>.json next to the metrics snapshot.
	if path := os.Getenv("D2_BENCH_HEALTH"); path != "" && healthEngine != nil {
		healthEngine.Tick(time.Now())
		doc := struct {
			Status history.Status `json:"status"`
			Rates  history.Rates  `json:"rates"`
		}{healthEngine.Status(), healthEngine.Rates()}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(path, data, 0o644)
		}
		if err != nil {
			b.Errorf("write health summary: %v", err)
		}
	}
}

func benchPlacements(b *testing.B, c *Client, blocks int) {
	ctx := context.Background()

	d2Keys := make([]keys.Key, blocks)
	base := keys.HashString("bench-file").FileBase()
	for i := range d2Keys {
		d2Keys[i] = base.WithBlock(uint64(i + 1))
	}
	hashedKeys := make([]keys.Key, blocks)
	for i := range hashedKeys {
		hashedKeys[i] = keys.HashString(fmt.Sprintf("bench-file/block%d", i))
	}
	payload := make([]byte, 8<<10)
	for _, ks := range [][]keys.Key{d2Keys, hashedKeys} {
		for _, k := range ks {
			if err := c.Put(ctx, k, payload); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("place=d2/mode=batched", func(b *testing.B) {
		benchRead(b, c, func() error {
			got, err := c.GetMany(ctx, d2Keys)
			if err == nil && len(got) != blocks {
				err = fmt.Errorf("got %d blocks, want %d", len(got), blocks)
			}
			return err
		})
	})
	b.Run("place=d2/mode=perblock", func(b *testing.B) {
		benchRead(b, c, func() error {
			for _, k := range d2Keys {
				if _, err := c.Get(ctx, k); err != nil {
					return err
				}
			}
			return nil
		})
	})
	b.Run("place=hashed/mode=batched", func(b *testing.B) {
		benchRead(b, c, func() error {
			got, err := c.GetMany(ctx, hashedKeys)
			if err == nil && len(got) != blocks {
				err = fmt.Errorf("got %d blocks, want %d", len(got), blocks)
			}
			return err
		})
	})
	b.Run("place=hashed/mode=perblock", func(b *testing.B) {
		benchRead(b, c, func() error {
			for _, k := range hashedKeys {
				if _, err := c.Get(ctx, k); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// benchRead runs one whole-file read per iteration and reports the RPC
// and byte cost alongside the timing, taken from the client's registry.
func benchRead(b *testing.B, c *Client, read func() error) {
	if err := read(); err != nil { // warm the lookup cache once
		b.Fatal(err)
	}
	before := c.Metrics().Snapshot()
	start := c.RPCs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := read(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := c.Metrics().Snapshot()
	perOp := func(name string) float64 {
		return float64(after.Counters[name]-before.Counters[name]) / float64(b.N)
	}
	b.ReportMetric(float64(c.RPCs()-start)/float64(b.N), "rpcs/op")
	b.ReportMetric(perOp("d2_client_cache_hits_total"), "cachehits/op")
	// Payload bytes exist when the client's transport shares its registry
	// (the TCP bench client; the mem network's metrics are network-wide).
	if recv := perOp(`d2_rpc_payload_bytes_total{dir="recv"}`); recv > 0 {
		b.ReportMetric(recv, "recvB/op")
	}
}

// startTCPRing boots n nodes on real sockets and waits for convergence.
func startTCPRing(b *testing.B, n int) ([]*Node, func()) {
	b.Helper()
	nodes := make([]*Node, n)
	trs := make([]*transport.TCPTransport, n)
	cleanup := func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			cleanup()
			b.Fatal(err)
		}
		trs[i] = tr
		nodes[i] = Start(tr, testConfig(uint64(i+1)))
		if i > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := nodes[i].Join(ctx, nodes[0].Self().Addr)
			cancel()
			if err != nil {
				cleanup()
				b.Fatalf("node %d join: %v", i, err)
			}
		}
	}
	waitConverged(b, nodes, 30*time.Second)
	return nodes, cleanup
}

func newTCPClient(b *testing.B, nodes []*Node) *Client {
	b.Helper()
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	// Share one registry between the client and its transport so the
	// benchmark can report per-op payload bytes.
	reg := obs.New()
	tr.UseMetrics(transport.NewRPCMetrics(reg))
	c, err := NewClient(tr, ClientConfig{
		Seeds:    []transport.Addr{nodes[0].Self().Addr, nodes[len(nodes)-1].Self().Addr},
		Replicas: 3,
		Metrics:  reg,
		// Sampling starts off: the bench numbers double as proof that an
		// idle tracer costs nothing on the read path.
		Tracer: tracing.New(tracing.Config{Node: "bench-client"}),
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}
