package node

import (
	"context"
	"strconv"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/store"
	"github.com/defragdht/d2/internal/transport"
)

// handlePut stores a replica; when Replicate is set (the primary's copy),
// the block is forwarded to the r-1 following successors.
func (n *Node) handlePut(ctx context.Context, r *transport.PutReq) transport.Message {
	ttl := time.Duration(r.TTL) * time.Second
	if ttl == 0 {
		ttl = n.cfg.DefaultTTL
	}
	n.st.Put(r.Key, r.Data, ttl, time.Now())
	if r.Replicate {
		n.forwardToReplicas(ctx, &transport.PutReq{Key: r.Key, Data: r.Data, TTL: r.TTL})
	}
	return &transport.PutResp{}
}

// handleGet serves a block, redirecting when only a pointer is held.
func (n *Node) handleGet(ctx context.Context, r *transport.GetReq) transport.Message {
	b, ok := n.st.Get(r.Key)
	if !ok {
		return &transport.GetResp{Found: false}
	}
	if b.IsPointer() {
		n.metrics.ptrRedirects.Inc()
		tracing.FromContext(ctx).Annotate("redirect", b.Pointer)
		return &transport.GetResp{Found: true, Redirect: b.Pointer}
	}
	return &transport.GetResp{Found: true, Data: b.Data}
}

// handleMultiGet serves a batch of blocks in one RPC, one item per
// requested key in request order. Pointer entries report a redirect
// instead of data, exactly as handleGet does.
func (n *Node) handleMultiGet(ctx context.Context, r *transport.MultiGetReq) transport.Message {
	blocks := n.st.GetBatch(r.Keys)
	// Pooled response: over TCP the transport recycles it (and its Items
	// capacity) once the frame is written, so bulk reads stop allocating
	// response scaffolding per RPC.
	resp := transport.AcquireMultiGetResp()
	redirects := 0
	for i, b := range blocks {
		item := transport.BatchItem{Key: r.Keys[i]}
		if b != nil {
			item.Found = true
			if b.IsPointer() {
				n.metrics.ptrRedirects.Inc()
				redirects++
				item.Redirect = b.Pointer
			} else {
				item.Data = b.Data
			}
		}
		resp.Items = append(resp.Items, item)
	}
	if redirects > 0 {
		tracing.FromContext(ctx).Annotate("redirects", redirects)
	}
	return resp
}

// fetchRangeMaxItems caps one FetchRange response; larger scans paginate
// via the More flag.
const fetchRangeMaxItems = 4096

// handleFetchRange ships every block held in the arc (Lo, Hi] with its
// data — the read-path counterpart of handleRange. Pointer entries become
// redirects so the caller can chase the data.
func (n *Node) handleFetchRange(r *transport.FetchRangeReq) transport.Message {
	limit := r.Limit
	if limit <= 0 || limit > fetchRangeMaxItems {
		limit = fetchRangeMaxItems
	}
	items, more := n.st.ArcLimit(r.Lo, r.Hi, limit)
	// Pooled response; see handleMultiGet.
	resp := transport.AcquireFetchRangeResp()
	resp.More = more
	for _, it := range items {
		bi := transport.BatchItem{Key: it.Key, Found: true}
		if it.Block.IsPointer() {
			bi.Redirect = it.Block.Pointer
		} else {
			bi.Data = it.Block.Data
		}
		resp.Items = append(resp.Items, bi)
	}
	return resp
}

// handleRemove deletes a block after the removal delay (§3), forwarding to
// the replica group when asked.
func (n *Node) handleRemove(ctx context.Context, r *transport.RemoveReq) transport.Message {
	delay := time.Duration(r.DelaySec) * time.Second
	if delay == 0 {
		delay = n.cfg.RemoveDelay
	}
	n.scheduleRemoval(r.Key, delay)
	if r.Replicate {
		n.forwardToReplicas(ctx, &transport.RemoveReq{Key: r.Key, DelaySec: r.DelaySec})
	}
	return &transport.RemoveResp{}
}

// scheduleRemoval arms (or re-arms) the delayed delete for a key.
func (n *Node) scheduleRemoval(k keys.Key, delay time.Duration) {
	n.metrics.removals.Inc()
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.removeTimers[k]; ok {
		t.Stop()
	}
	n.removeTimers[k] = time.AfterFunc(delay, func() {
		n.st.Delete(k)
		n.mu.Lock()
		delete(n.removeTimers, k)
		n.mu.Unlock()
	})
}

// doomed reports whether k has a delayed removal pending. Repair and
// handoff must not push doomed blocks: the copy would land without a
// removal schedule and resurrect the block after every holder that knew
// about the remove has deleted it (§3).
func (n *Node) doomed(k keys.Key) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.removeTimers[k]
	return ok
}

// forwardToReplicas sends the request to the r-1 successors, best effort.
// ctx carries the caller's trace position so replica writes appear as
// children of the primary's handler span (it never carries cancellation —
// handlers run under background-derived contexts).
func (n *Node) forwardToReplicas(ctx context.Context, req transport.Message) {
	n.mu.Lock()
	targets := make([]transport.PeerInfo, 0, n.cfg.Replicas-1)
	for _, p := range n.succs {
		if p.Addr == n.self.Addr {
			continue
		}
		targets = append(targets, p)
		if len(targets) == n.cfg.Replicas-1 {
			break
		}
	}
	n.mu.Unlock()
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for _, p := range targets {
		_, _ = n.call(ctx, p.Addr, req)
	}
}

// handleSplit returns the byte-median of this node's primary range, so a
// light prober can take the lower half (§6). A node hands out one split
// point at a time: until the previous prober has rejoined as predecessor
// (or visibly given up), concurrent probers are refused — otherwise two
// movers would both adopt the same median as their ID and corrupt the
// ring with duplicate node IDs.
func (n *Node) handleSplit(ctx context.Context) transport.Message {
	n.mu.Lock()
	pred, self := n.pred, n.self
	settling := !n.lastSplit.IsZero() &&
		time.Since(n.lastSplitAt) < 10*n.cfg.StabilizeInterval &&
		!pred.ID.Equal(n.lastSplit)
	n.mu.Unlock()
	if pred.IsZero() || settling {
		return &transport.SplitResp{}
	}
	m, ok := n.st.MedianKey(pred.ID, self.ID)
	if !ok || m.Equal(self.ID) {
		return &transport.SplitResp{}
	}
	n.mu.Lock()
	n.lastSplit = m
	n.lastSplitAt = time.Now()
	n.mu.Unlock()
	n.metrics.splitHandouts.Inc()
	n.events.LogCtx(ctx, obs.LevelInfo, "balance.split_handout", "median", m.Short())
	// Census baseline for the split: the prober rejoining as our
	// predecessor will shrink our primary range, and its own delta event
	// records the after-state; logging ours here gives the event log both
	// ends of the migration round.
	if n.census != nil {
		n.census.SweepNow()
		runs, files := n.census.Totals()
		n.events.LogCtx(ctx, obs.LevelInfo, "census.delta",
			"op", "balance.split_handout",
			"frag_milli", strconv.FormatInt(n.census.FragMilli(), 10),
			"runs", strconv.FormatInt(runs, 10),
			"files", strconv.FormatInt(files, 10))
	}
	return &transport.SplitResp{Ok: true, Median: m}
}

// handleRange lists (or ships) the blocks in an arc.
func (n *Node) handleRange(r *transport.RangeReq) transport.Message {
	items := n.st.Arc(r.Lo, r.Hi)
	resp := &transport.RangeResp{}
	for _, it := range items {
		if it.Block.IsPointer() && !r.WithPointers {
			continue
		}
		out := transport.RangeItem{Key: it.Key, Size: it.Block.Size}
		if it.Block.IsPointer() {
			out.Pointer = it.Block.Pointer
		} else if r.WithData {
			out.Data = it.Block.Data
		}
		resp.Items = append(resp.Items, out)
		if r.Limit > 0 && len(resp.Items) >= r.Limit {
			break
		}
	}
	return resp
}

// repair runs one replica-maintenance round:
//  1. push blocks of our primary range to our r-1 successors (diffing
//     keys first so data moves only when missing), and
//  2. hand blocks outside our replica responsibility to their primary,
//     then drop them.
func (n *Node) repair() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	n.mu.Lock()
	self := n.self
	pred := n.pred
	succs := make([]transport.PeerInfo, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()
	if pred.IsZero() || len(succs) == 0 || succs[0].Addr == self.Addr {
		return
	}

	// (1) Primary-range replication to successors. Track the replica
	// deficit while pushing: slots with no successor to fill them (ring
	// smaller than the replication target, e.g. after churn) plus blocks
	// we could not confirm on a successor this round. The gauge feeds the
	// health engine's replica_deficit check.
	primary := n.st.Arc(pred.ID, self.ID)
	primaryData := 0
	for _, it := range primary {
		if !it.Block.IsPointer() && !n.doomed(it.Key) {
			primaryData++
		}
	}
	desired := n.cfg.Replicas - 1
	replicas := desired
	if replicas > len(succs) {
		replicas = len(succs)
	}
	deficit := int64(desired-replicas) * int64(primaryData)
	for i := 0; i < replicas; i++ {
		deficit += n.pushMissing(ctx, succs[i], pred.ID, self.ID, primary)
	}
	n.metrics.replicaDeficit.Set(deficit)

	// (2) Hand off blocks we should not hold. Our responsibility reaches
	// back r-1 predecessors; walk the pred chain to find the boundary.
	lo, ok := n.replicaRangeStart(ctx)
	if !ok {
		return
	}
	n.handOffOutside(ctx, lo, self.ID)
}

// pushMissing ships the primary blocks the target lacks in (lo, hi]. It
// returns the number of data blocks it could not confirm on the target
// this round (unreachable target counts every block: the replica may be
// gone), feeding repair's deficit gauge.
func (n *Node) pushMissing(ctx context.Context, target transport.PeerInfo, lo, hi keys.Key, items []storeItem) int64 {
	if target.Addr == n.tr.Addr() {
		return 0
	}
	countData := func() int64 {
		var c int64
		for _, it := range items {
			if !it.Block.IsPointer() && !n.doomed(it.Key) {
				c++
			}
		}
		return c
	}
	resp, err := transport.Expect[*transport.RangeResp](
		n.call(ctx, target.Addr, &transport.RangeReq{Lo: lo, Hi: hi}))
	if err != nil {
		return countData()
	}
	have := make(map[keys.Key]bool, len(resp.Items))
	for _, it := range resp.Items {
		have[it.Key] = true
	}
	var missing int64
	for _, it := range items {
		if it.Block.IsPointer() || have[it.Key] || n.doomed(it.Key) {
			continue
		}
		if _, err := transport.Expect[*transport.PutResp](n.call(ctx, target.Addr, &transport.PutReq{
			Key: it.Key, Data: it.Block.Data,
		})); err == nil {
			n.metrics.repairPushes.Inc()
		} else {
			missing++
		}
	}
	return missing
}

// storeItem aliases the store scan item for signatures here.
type storeItem = store.Item

// replicaRangeStart returns the lower bound of the keys this node should
// hold. We replicate for any owner among our r-1 predecessors, and an
// owner's range starts at ITS predecessor — so the bound is the r-th
// predecessor's ID, one hop past the farthest owner. Stopping a hop
// short (the farthest owner's own ID) excludes that owner's entire
// primary range: its second successor then hands those replicas off,
// the owner's repair pushes them back, and the pair ping-pongs the
// blocks forever while the cluster silently keeps r-1 copies.
func (n *Node) replicaRangeStart(ctx context.Context) (keys.Key, bool) {
	cur := n.Predecessor()
	if cur.IsZero() {
		return keys.Key{}, false
	}
	if cur.Addr == n.tr.Addr() {
		return n.Self().ID, true // alone: every key is ours
	}
	for i := 1; i < n.cfg.Replicas; i++ {
		resp, err := transport.Expect[*transport.NeighborsResp](
			n.call(ctx, cur.Addr, &transport.NeighborsReq{}))
		if err != nil || resp.Pred.IsZero() {
			return cur.ID, true
		}
		if resp.Pred.Addr == n.tr.Addr() {
			// The pred chain wrapped back to us within r hops: the ring
			// has at most r nodes, so we replicate every key. (lo == hi
			// is the whole-ring interval.)
			return n.Self().ID, true
		}
		cur = resp.Pred
	}
	return cur.ID, true
}

// handOffOutside pushes blocks outside (lo, hi] to their primary owner and
// drops the local copy once delivered.
func (n *Node) handOffOutside(ctx context.Context, lo, hi keys.Key) {
	all := n.st.Arc(hi, hi) // whole store in key order
	for _, it := range all {
		if it.Key.Between(lo, hi) || it.Block.IsPointer() || n.doomed(it.Key) {
			continue
		}
		owner, _, err := n.Lookup(ctx, it.Key)
		if err != nil || owner.Addr == n.tr.Addr() {
			continue
		}
		if _, err := transport.Expect[*transport.PutResp](n.call(ctx, owner.Addr, &transport.PutReq{
			Key: it.Key, Data: it.Block.Data, Replicate: true,
		})); err == nil {
			n.st.Delete(it.Key)
			n.metrics.handoffs.Inc()
		}
	}
}

// stabilizePointers fetches the data for pointers held longer than the
// pointer stabilization time (§6).
func (n *Node) stabilizePointers() {
	deadline := time.Now().Add(-n.cfg.PointerStabilization)
	stale := n.st.StalePointers(deadline)
	if len(stale) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, it := range stale {
		resp, err := transport.Expect[*transport.GetResp](
			n.call(ctx, it.Block.Pointer, &transport.GetReq{Key: it.Key}))
		if err != nil || !resp.Found {
			continue
		}
		if resp.Redirect != "" {
			// Pointer chain: follow one level.
			resp, err = transport.Expect[*transport.GetResp](
				n.call(ctx, resp.Redirect, &transport.GetReq{Key: it.Key}))
			if err != nil || !resp.Found || resp.Redirect != "" {
				continue
			}
		}
		n.st.Put(it.Key, resp.Data, n.cfg.DefaultTTL, time.Now())
		n.metrics.ptrResolved.Inc()
	}
}
