package node

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

func putSegmentKeys(t *testing.T, c *Client, n int) ([]keys.Key, [][]byte) {
	t.Helper()
	ctx := context.Background()
	ks := make([]keys.Key, n)
	vals := make([][]byte, n)
	for i := range ks {
		ks[i] = keys.HashString(fmt.Sprintf("seg-%03d", i))
		vals[i] = []byte(fmt.Sprintf("segment block %03d", i))
		if err := c.Put(ctx, ks[i], vals[i]); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return ks, vals
}

func TestGetSegmentStreamComplete(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 5, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ks, vals := putSegmentKeys(t, c, 32)
	got, err := c.GetSegment(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("GetSegment returned %d of %d keys", len(got), len(ks))
	}
	for i, k := range ks {
		if !bytes.Equal(got[k], vals[i]) {
			t.Fatalf("key %d payload mismatch", i)
		}
	}
}

func TestGetSegmentStreamRetriesMissing(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 4, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ks, _ := putSegmentKeys(t, c, 8)
	// Two keys that were never stored: the segment path must burn its
	// retry budget on them, then return the partial result rather than
	// failing the whole segment.
	req := append(append([]keys.Key{}, ks...),
		keys.HashString("segment-hole-a"), keys.HashString("segment-hole-b"))
	start := time.Now()
	got, err := c.GetSegment(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("GetSegment returned %d keys, want the %d stored", len(got), len(ks))
	}
	if elapsed := time.Since(start); elapsed < segmentRetryBackoff/2 {
		t.Errorf("segment with holes returned in %v; retry rounds did not run", elapsed)
	}
	if c.segRetries.Value() == 0 {
		t.Error("d2_client_segment_retries_total not incremented for missing keys")
	}
}

func TestGetSegmentStreamSurvivesNodeKill(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	c := newClient(t, net, nodes)
	defer c.Close()

	ks, vals := putSegmentKeys(t, c, 48)
	// Let the repair loop finish replicating before the failure.
	time.Sleep(300 * time.Millisecond)
	// Warm the client's range cache so the kill invalidates real state.
	if _, err := c.GetSegment(context.Background(), ks); err != nil {
		t.Fatal(err)
	}
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}
	nodes[3] = nil
	// Immediately after the kill — before the ring restabilizes — the
	// segment must still assemble from replicas via the retry path.
	got, err := c.GetSegment(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("post-kill GetSegment returned %d of %d keys", len(got), len(ks))
	}
	for i, k := range ks {
		if !bytes.Equal(got[k], vals[i]) {
			t.Fatalf("key %d payload mismatch after node kill", i)
		}
	}
}
