package node

import (
	"context"
	"strconv"
	"time"

	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/store"
	"github.com/defragdht/d2/internal/transport"
)

// balanceProbe runs one Karger–Ruhl probe (§6): sample a random node A by
// random walk; if load(A) > t · load(self), change our ID to become A's
// predecessor, taking the lower half of A's primary range through block
// pointers.
func (n *Node) balanceProbe() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	n.metrics.balanceProbes.Inc()
	sample, err := transport.Expect[*transport.SampleResp](
		n.call(ctx, n.tr.Addr(), &transport.SampleReq{Hops: 6}))
	if err != nil || sample.Peer.IsZero() || sample.Peer.Addr == n.tr.Addr() {
		return
	}
	load, err := transport.Expect[*transport.LoadResp](
		n.call(ctx, sample.Peer.Addr, &transport.LoadReq{}))
	if err != nil {
		return
	}
	mine := n.RespBytes()
	if float64(load.RespBytes) <= n.cfg.BalanceThreshold*float64(mine) {
		return
	}
	n.moveTo(ctx, load.Self)
}

// moveTo relocates this node to become a's predecessor at the byte-median
// of a's range. The move is the paper's voluntary leave+rejoin: our old
// range's new owner gets pointers to us, and we take pointers to a for
// our new range; pointer stabilization moves the data later.
func (n *Node) moveTo(ctx context.Context, a transport.PeerInfo) {
	split, err := transport.Expect[*transport.SplitResp](
		n.call(ctx, a.Addr, &transport.SplitReq{}))
	if err != nil || !split.Ok {
		return
	}
	// Census baseline: measure placement before the move so the delta
	// event below can answer "did this migration step improve locality"
	// from the live ring rather than a simulator.
	var fragBefore, runsBefore int64
	if n.census != nil {
		n.census.SweepNow()
		fragBefore = n.census.FragMilli()
		runsBefore, _ = n.census.Totals()
	}
	n.mu.Lock()
	oldSelf := n.self
	oldPred := n.pred
	succ := n.succs[0]
	n.mu.Unlock()
	if split.Median.Equal(oldSelf.ID) || succ.Addr == oldSelf.Addr {
		return
	}

	// Leave: install pointers at our successor (the new owner of our old
	// primary range) for the blocks we hold there. Entries we ourselves
	// hold only as pointers are forwarded with their real target — a
	// recent mover's arc is all pointers, and dropping them would leave
	// the successor unable to serve the inherited arc.
	if !oldPred.IsZero() {
		for _, it := range n.st.Arc(oldPred.ID, oldSelf.ID) {
			target := oldSelf.Addr
			if it.Block.IsPointer() {
				target = it.Block.Pointer
			}
			if target == succ.Addr {
				continue // the successor already stores this block
			}
			_, _ = transport.Expect[*transport.PutPtrResp](n.call(ctx, succ.Addr, &transport.PutPtrReq{
				Key: it.Key, Target: target, Size: it.Block.Size,
			}))
		}
	}

	// Learn our prospective neighbors and take pointers to a for the new
	// primary range BEFORE adopting the new identity: the moment lookups
	// route to us for (pred, median] we must already answer with data or a
	// redirect, never a spurious not-found.
	aNeighbors, err := transport.Expect[*transport.NeighborsResp](
		n.call(ctx, a.Addr, &transport.NeighborsReq{}))
	if err != nil {
		return
	}
	newPred := aNeighbors.Pred
	// The split point must still be inside a's primary range; if another
	// prober already rejoined at (or past) the median, adopting it now
	// would duplicate a live node ID.
	if !newPred.IsZero() && !split.Median.InOpenInterval(newPred.ID, a.ID) {
		return
	}
	if !newPred.IsZero() {
		// WithPointers: a may itself be a recent mover whose arc is still
		// all pointers. We must learn those keys too — taking over the arc
		// without them would make us a not-found hole — and we point at
		// the node actually storing each block so chains never grow.
		resp, err := transport.Expect[*transport.RangeResp](n.call(ctx, a.Addr, &transport.RangeReq{
			Lo: newPred.ID, Hi: split.Median, WithPointers: true,
		}))
		if err != nil {
			return
		}
		now := time.Now()
		for _, it := range resp.Items {
			if b, ok := n.st.Get(it.Key); ok && !b.IsPointer() {
				continue
			}
			target := a.Addr
			if it.Pointer != "" {
				target = it.Pointer
			}
			if target == n.tr.Addr() {
				continue // never install a self-pointer
			}
			n.st.PutPointer(it.Key, target, it.Size, now)
		}
	}

	// Rejoin at the median: a becomes our successor.
	n.mu.Lock()
	n.self = transport.PeerInfo{ID: split.Median, Addr: n.tr.Addr()}
	n.pred = newPred
	n.succs = append([]transport.PeerInfo{a}, aNeighbors.Succs...)
	n.trimSuccsLocked()
	newSelf := n.self
	n.mu.Unlock()

	// The ring position changed; a durable engine must remember the new
	// one or a restart would rejoin on the pre-move arc.
	if is, ok := n.st.(store.IdentityStore); ok {
		_ = is.SaveIdentity(newSelf.ID)
	}

	n.metrics.balanceMoves.Inc()
	n.events.Log(obs.LevelInfo, "balance.move",
		"old_id", oldSelf.ID.Short(), "new_id", newSelf.ID.Short(),
		"succ", string(a.Addr))
	_, _ = transport.Expect[*transport.NotifyResp](
		n.call(ctx, a.Addr, &transport.NotifyReq{Cand: newSelf}))

	// Census delta: resweep against the new arc immediately instead of
	// waiting out the sweep cadence, and log the before/after pair.
	if n.census != nil {
		n.census.SweepNow()
		runsAfter, _ := n.census.Totals()
		n.events.Log(obs.LevelInfo, "census.delta",
			"op", "balance.move",
			"frag_before_milli", strconv.FormatInt(fragBefore, 10),
			"frag_after_milli", strconv.FormatInt(n.census.FragMilli(), 10),
			"runs_before", strconv.FormatInt(runsBefore, 10),
			"runs_after", strconv.FormatInt(runsAfter, 10))
	}
}
