package node

import (
	"context"
	"time"

	"github.com/defragdht/d2/internal/transport"
)

// balanceProbe runs one Karger–Ruhl probe (§6): sample a random node A by
// random walk; if load(A) > t · load(self), change our ID to become A's
// predecessor, taking the lower half of A's primary range through block
// pointers.
func (n *Node) balanceProbe() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sample, err := transport.Expect[transport.SampleResp](
		n.call(ctx, n.tr.Addr(), transport.SampleReq{Hops: 6}))
	if err != nil || sample.Peer.IsZero() || sample.Peer.Addr == n.tr.Addr() {
		return
	}
	load, err := transport.Expect[transport.LoadResp](
		n.call(ctx, sample.Peer.Addr, transport.LoadReq{}))
	if err != nil {
		return
	}
	mine := n.RespBytes()
	if float64(load.RespBytes) <= n.cfg.BalanceThreshold*float64(mine) {
		return
	}
	n.moveTo(ctx, load.Self)
}

// moveTo relocates this node to become a's predecessor at the byte-median
// of a's range. The move is the paper's voluntary leave+rejoin: our old
// range's new owner gets pointers to us, and we take pointers to a for
// our new range; pointer stabilization moves the data later.
func (n *Node) moveTo(ctx context.Context, a transport.PeerInfo) {
	split, err := transport.Expect[transport.SplitResp](
		n.call(ctx, a.Addr, transport.SplitReq{}))
	if err != nil || !split.Ok {
		return
	}
	n.mu.Lock()
	oldSelf := n.self
	oldPred := n.pred
	succ := n.succs[0]
	n.mu.Unlock()
	if split.Median.Equal(oldSelf.ID) || succ.Addr == oldSelf.Addr {
		return
	}

	// Leave: install pointers at our successor (the new owner of our old
	// primary range) for the blocks we hold there.
	if !oldPred.IsZero() {
		for _, it := range n.st.Arc(oldPred.ID, oldSelf.ID) {
			if it.Block.IsPointer() {
				continue
			}
			_, _ = transport.Expect[transport.PutPtrResp](n.call(ctx, succ.Addr, transport.PutPtrReq{
				Key: it.Key, Target: oldSelf.Addr, Size: it.Block.Size,
			}))
		}
	}

	// Rejoin at the median: a becomes our successor.
	aNeighbors, err := transport.Expect[transport.NeighborsResp](
		n.call(ctx, a.Addr, transport.NeighborsReq{}))
	if err != nil {
		return
	}
	n.mu.Lock()
	n.self = transport.PeerInfo{ID: split.Median, Addr: n.tr.Addr()}
	n.pred = aNeighbors.Pred
	n.succs = append([]transport.PeerInfo{a}, aNeighbors.Succs...)
	n.trimSuccsLocked()
	newSelf := n.self
	newPred := n.pred
	n.mu.Unlock()

	_, _ = transport.Expect[transport.NotifyResp](
		n.call(ctx, a.Addr, transport.NotifyReq{Cand: newSelf}))

	// Take pointers to a for our new primary range.
	if !newPred.IsZero() {
		resp, err := transport.Expect[transport.RangeResp](n.call(ctx, a.Addr, transport.RangeReq{
			Lo: newPred.ID, Hi: newSelf.ID,
		}))
		if err == nil {
			now := time.Now()
			for _, it := range resp.Items {
				if b, ok := n.st.Get(it.Key); ok && !b.IsPointer() {
					continue
				}
				n.st.PutPointer(it.Key, a.Addr, it.Size, now)
			}
		}
	}
}
