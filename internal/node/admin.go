package node

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/census"
	"github.com/defragdht/d2/internal/obs/history"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/transport"
)

// maxRingWalk bounds a ring walk (a broken successor chain could
// otherwise loop forever through stale entries).
const maxRingWalk = 4096

// RingMember is one node discovered by a ring walk.
type RingMember struct {
	Self  transport.PeerInfo
	Pred  transport.PeerInfo
	Succs []transport.PeerInfo
}

// WalkRing enumerates the ring by following successor pointers from the
// first reachable seed until the walk returns to its start. Nodes are
// returned in ring order starting at the entry node.
func (c *Client) WalkRing(ctx context.Context) ([]RingMember, error) {
	var start transport.PeerInfo
	var lastErr error
	for _, seed := range c.seeds {
		resp, err := transport.Expect[*transport.NeighborsResp](
			c.call(ctx, seed, &transport.NeighborsReq{}))
		if err != nil {
			lastErr = err
			continue
		}
		start = resp.Self
		break
	}
	if start.IsZero() {
		return nil, fmt.Errorf("node: no reachable seed: %w", lastErr)
	}

	var members []RingMember
	seen := make(map[transport.Addr]bool)
	cur := start
	for len(members) < maxRingWalk {
		if seen[cur.Addr] {
			break // closed the ring (or hit a successor loop)
		}
		resp, err := transport.Expect[*transport.NeighborsResp](
			c.call(ctx, cur.Addr, &transport.NeighborsReq{}))
		if err != nil {
			// Skip a dead member by stepping through the previous node's
			// successor list.
			next, ok := nextAfter(members, cur, seen)
			if !ok {
				break
			}
			cur = next
			continue
		}
		seen[cur.Addr] = true
		members = append(members, RingMember{
			Self: resp.Self, Pred: resp.Pred, Succs: resp.Succs,
		})
		if len(resp.Succs) == 0 {
			break
		}
		cur = resp.Succs[0]
	}
	return members, nil
}

// nextAfter finds an unvisited fallback successor when the walk's current
// node is unreachable.
func nextAfter(members []RingMember, dead transport.PeerInfo, seen map[transport.Addr]bool) (transport.PeerInfo, bool) {
	if len(members) == 0 {
		return transport.PeerInfo{}, false
	}
	for _, p := range members[len(members)-1].Succs {
		if !seen[p.Addr] && p.Addr != dead.Addr {
			return p, true
		}
	}
	return transport.PeerInfo{}, false
}

// NodeStats is one node's scraped observability state.
type NodeStats struct {
	Self        transport.PeerInfo
	Pred        transport.PeerInfo
	RespBytes   int64
	StoredBytes int64
	Blocks      int64
	Snapshot    obs.Snapshot
}

// ClusterStats scrapes every ring member's metrics via the StatsReq RPC,
// returning per-node stats in ring order. Unreachable members are skipped.
func (c *Client) ClusterStats(ctx context.Context) ([]NodeStats, error) {
	members, err := c.WalkRing(ctx)
	if err != nil {
		return nil, err
	}
	var out []NodeStats
	for _, m := range members {
		resp, err := transport.Expect[*transport.StatsResp](
			c.call(ctx, m.Self.Addr, &transport.StatsReq{}))
		if err != nil {
			continue
		}
		ns := NodeStats{
			Self:        resp.Self,
			Pred:        resp.Pred,
			RespBytes:   resp.RespBytes,
			StoredBytes: resp.StoredBytes,
			Blocks:      resp.Blocks,
		}
		if len(resp.SnapshotJSON) > 0 {
			_ = json.Unmarshal(resp.SnapshotJSON, &ns.Snapshot)
		}
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Self.ID.Less(out[j].Self.ID) })
	return out, nil
}

// NodeHealth is one ring member's scraped health state.
type NodeHealth struct {
	Self        transport.PeerInfo
	Pred        transport.PeerInfo
	RespBytes   int64
	StoredBytes int64
	Blocks      int64
	// State is the node's own verdict ("unknown" for engine-less nodes).
	State string
	// Status and Rates are the node's history documents (nil without an
	// engine).
	Status *history.Status
	Rates  *history.Rates
}

// ClusterHealth scrapes every ring member's health via the HealthReq
// RPC, returning per-node health in ID order. Unreachable members are
// skipped — the doctor detects their absence through the survivors'
// replica-deficit checks, not through the walk itself.
func (c *Client) ClusterHealth(ctx context.Context) ([]NodeHealth, error) {
	members, err := c.WalkRing(ctx)
	if err != nil {
		return nil, err
	}
	var out []NodeHealth
	for _, m := range members {
		resp, err := transport.Expect[*transport.HealthResp](
			c.call(ctx, m.Self.Addr, &transport.HealthReq{}))
		if err != nil {
			continue
		}
		out = append(out, NodeHealth{
			Self:        resp.Self,
			Pred:        resp.Pred,
			RespBytes:   resp.RespBytes,
			StoredBytes: resp.StoredBytes,
			Blocks:      resp.Blocks,
			State:       resp.State,
			Status:      history.ParseStatus(resp.StatusJSON),
			Rates:       history.ParseRates(resp.RatesJSON),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Self.ID.Less(out[j].Self.ID) })
	return out, nil
}

// ClusterReport gathers ClusterHealth and evaluates cluster-level checks
// (§10 load imbalance, worst member state, per-node problems) — the
// document behind `d2ctl doctor`.
func (c *Client) ClusterReport(ctx context.Context) (history.ClusterReport, error) {
	nodes, err := c.ClusterHealth(ctx)
	if err != nil {
		return history.ClusterReport{}, err
	}
	members := make([]history.ClusterNode, 0, len(nodes))
	for _, n := range nodes {
		members = append(members, history.ClusterNode{
			Addr:        string(n.Self.Addr),
			State:       n.State,
			RespBytes:   n.RespBytes,
			StoredBytes: n.StoredBytes,
			Blocks:      n.Blocks,
			Status:      n.Status,
			Rates:       n.Rates,
		})
	}
	return history.BuildClusterReport(members), nil
}

// NodeCensus is one ring member's scraped placement census.
type NodeCensus struct {
	Self        transport.PeerInfo
	Pred        transport.PeerInfo
	RespBytes   int64
	StoredBytes int64
	Blocks      int64
	// Report is the node's census document (nil when the node runs
	// without a sweeper).
	Report *census.Report
}

// ClusterCensus scrapes every ring member's placement census via the
// CensusReq RPC and merges the per-node reports into the §5-style
// cluster metrics (locality score, per-volume fragmentation, §10
// imbalance, replica spread). Per-node details ride along in ID order;
// unreachable members are skipped.
func (c *Client) ClusterCensus(ctx context.Context) ([]NodeCensus, *census.Cluster, error) {
	members, err := c.WalkRing(ctx)
	if err != nil {
		return nil, nil, err
	}
	var out []NodeCensus
	for _, m := range members {
		resp, err := transport.Expect[*transport.CensusResp](
			c.call(ctx, m.Self.Addr, &transport.CensusReq{}))
		if err != nil {
			continue
		}
		out = append(out, NodeCensus{
			Self:        resp.Self,
			Pred:        resp.Pred,
			RespBytes:   resp.RespBytes,
			StoredBytes: resp.StoredBytes,
			Blocks:      resp.Blocks,
			Report:      census.ParseReport(resp.ReportJSON),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Self.ID.Less(out[j].Self.ID) })
	reports := make([]census.NodeReport, 0, len(out))
	for _, n := range out {
		reports = append(reports, census.NodeReport{
			Addr: string(n.Self.Addr),
			ID:   n.Self.ID.Short(),
			Rep:  n.Report,
		})
	}
	return out, census.BuildCluster(reports), nil
}

// FetchClusterTrace scrapes every ring member's span sink for one trace
// (TraceFetch RPC), merges the results with the client's own local spans,
// and returns the combined set sorted by start time — the raw material
// for tracing.Assemble's cross-node span tree. Unreachable members are
// skipped: a partial tree still renders, with the missing node's spans
// surfacing as orphans.
func (c *Client) FetchClusterTrace(ctx context.Context, trace uint64) ([]tracing.Span, error) {
	if trace == 0 {
		return nil, fmt.Errorf("node: FetchClusterTrace needs a trace ID")
	}
	members, err := c.WalkRing(ctx)
	if err != nil {
		return nil, err
	}
	var spans []tracing.Span
	for _, m := range members {
		resp, err := transport.Expect[*transport.TraceFetchResp](
			c.call(ctx, m.Self.Addr, &transport.TraceFetchReq{Trace: trace}))
		if err != nil {
			continue
		}
		spans = append(spans, resp.Spans...)
	}
	// The client's own spans (op roots, lookups, batch groups) live in its
	// local sink, not on any ring member.
	if sink := c.tracer.Sink(); sink != nil {
		spans = append(spans, sink.Trace(trace)...)
	}
	return tracing.SortedByStart(spans), nil
}
