package node

import (
	"context"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/transport"
)

// TestWalkRing checks that a ring walk enumerates every member exactly
// once, in ring order.
func TestWalkRing(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	members, err := c.WalkRing(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(nodes) {
		t.Fatalf("walk found %d members, want %d", len(members), len(nodes))
	}
	seen := make(map[transport.Addr]bool)
	for _, m := range members {
		if seen[m.Self.Addr] {
			t.Fatalf("member %s visited twice", m.Self.Addr)
		}
		seen[m.Self.Addr] = true
	}
	// Walk order must follow the successor chain.
	for i, m := range members {
		next := members[(i+1)%len(members)]
		if len(m.Succs) == 0 || m.Succs[0].Addr != next.Self.Addr {
			t.Fatalf("walk order broken at %s", m.Self.Addr)
		}
	}
}

// TestWalkRingSkipsDeadMember checks that the walk routes around an
// unreachable node via the previous member's successor list.
func TestWalkRingSkipsDeadMember(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	members, err := c.WalkRing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the third member in walk order (not a seed).
	dead := members[2].Self.Addr
	for _, n := range nodes {
		if n.Self().Addr == dead {
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	members, err = c.WalkRing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(nodes)-1 {
		t.Fatalf("walk found %d members, want %d", len(members), len(nodes)-1)
	}
	for _, m := range members {
		if m.Self.Addr == dead {
			t.Fatalf("dead member %s appeared in walk", dead)
		}
	}
}

// TestClusterStats exercises the full scrape path: traffic through the
// client, a StatsReq to every ring member, and a merged snapshot holding
// both server-side RPC counters and the client's cache counters.
func TestClusterStats(t *testing.T) {
	net := transport.NewMemNetwork(0)
	netReg := obs.New()
	net.UseMetrics(transport.NewRPCMetrics(netReg))
	nodes := startRing(t, net, 5, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	var total int64
	for i := 0; i < 20; i++ {
		k := keys.HashString(string(rune('a' + i)))
		data := make([]byte, 64+i)
		if err := c.Put(ctx, k, data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
		total += int64(len(data))
	}

	stats, err := c.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(nodes) {
		t.Fatalf("scraped %d nodes, want %d", len(stats), len(nodes))
	}

	var stored, blocks int64
	snaps := make([]obs.Snapshot, 0, len(stats)+1)
	for _, ns := range stats {
		stored += ns.StoredBytes
		blocks += ns.Blocks
		if ns.Snapshot.Counters == nil {
			t.Fatalf("node %s returned empty snapshot", ns.Self.Addr)
		}
		snaps = append(snaps, ns.Snapshot)
	}
	if blocks == 0 || stored < total {
		t.Fatalf("cluster totals blocks=%d stored=%d, want >0 and >=%d", blocks, stored, total)
	}

	merged := obs.MergeAll(snaps...)
	if got := merged.Gauges["d2_node_store_bytes"]; got < total {
		t.Fatalf("merged store gauge %d, want >= %d", got, total)
	}

	// The mem network records per-RPC transport counters in one shared
	// registry (d2node instead shares the node's registry with its
	// transport); merging it in must surface the served-RPC counters.
	merged = obs.MergeAll(append(snaps, netReg.Snapshot())...)
	var served uint64
	for name, v := range merged.Counters {
		if len(name) > len("d2_rpc_server_total") && name[:len("d2_rpc_server_total")] == "d2_rpc_server_total" {
			served += v
		}
	}
	if served == 0 {
		t.Fatal("merged snapshot has no served RPCs after traffic")
	}

	// The client-side registry carries the lookup-cache counters; merging
	// it in must surface them.
	merged = obs.MergeAll(append(snaps, c.Metrics().Snapshot())...)
	hits := merged.Counters["d2_client_cache_hits_total"]
	misses := merged.Counters["d2_client_cache_misses_total"]
	if hits+misses == 0 {
		t.Fatal("merged snapshot missing client cache counters")
	}
	wantHits, wantMisses := c.Stats()
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("merged cache counters %d/%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
}
