package node

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/lookupcache"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/transport"
)

// ErrNotFound reports a missing block.
var ErrNotFound = errors.New("node: block not found")

// Client reads and writes blocks through the DHT, avoiding lookups with a
// range-keyed lookup cache (§5). One Client serves one user; it is safe
// for concurrent use.
type Client struct {
	tr       transport.Transport
	seeds    []transport.Addr
	replicas int

	mu    sync.Mutex
	cache *lookupcache.Cache[transport.PeerInfo]
	rng   *rand.Rand
	start time.Time

	tracer *tracing.Tracer

	// Metrics live in the registry so Stats() is race-safe and d2ctl can
	// merge a client's view into the cluster-wide one.
	reg        *obs.Registry
	hits       *obs.Counter   // lookup-cache hits (§5)
	misses     *obs.Counter   // lookup-cache misses
	rpcs       *obs.Counter   // every outbound RPC (benchmarks compare read paths by this)
	fanout     *obs.Histogram // owner groups per GetMany
	nfRetries  *obs.Counter   // not-found retries in Get (§8.1 transients)
	lookupHops *obs.Histogram // hops per fresh lookup
	segments   *obs.Counter   // GetSegment calls (streaming read path)
	segRetries *obs.Counter   // per-key segment re-resolves under churn
}

// ClientConfig parameterizes a client.
type ClientConfig struct {
	// Seeds are entry points into the ring (at least one).
	Seeds []transport.Addr
	// Replicas is the cluster's r, used to try secondary replicas on
	// primary failure (default 3).
	Replicas int
	// CacheTTL is the lookup-cache TTL (default 75 min, §5).
	CacheTTL time.Duration
	// Seed drives replica selection.
	Seed uint64
	// Metrics is the client's registry; nil creates a fresh one.
	Metrics *obs.Registry
	// Tracer records request spans for sampled operations; nil disables
	// tracing. NewClient also attaches it to the transport endpoint when
	// the transport supports per-endpoint tracers.
	Tracer *tracing.Tracer
	// Events, when set together with Tracer, receives the slow-request
	// log: a warn event for every operation force-kept by the tracer's
	// slow threshold.
	Events *obs.EventLog
}

// NewClient creates a client using the given transport endpoint.
func NewClient(tr transport.Transport, cfg ClientConfig) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("node: client needs at least one seed")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	c := &Client{
		tr:         tr,
		seeds:      cfg.Seeds,
		replicas:   cfg.Replicas,
		tracer:     cfg.Tracer,
		cache:      lookupcache.New[transport.PeerInfo](cfg.CacheTTL),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x434c4e54)), // "CLNT"
		start:      time.Now(),
		reg:        reg,
		hits:       reg.Counter("d2_client_cache_hits_total"),
		misses:     reg.Counter("d2_client_cache_misses_total"),
		rpcs:       reg.Counter("d2_client_rpcs_total"),
		fanout:     reg.Histogram("d2_client_getmany_fanout", obs.CountBuckets),
		nfRetries:  reg.Counter("d2_client_notfound_retries_total"),
		lookupHops: reg.Histogram("d2_client_lookup_hops", obs.CountBuckets),
		segments:   reg.Counter("d2_client_segments_total"),
		segRetries: reg.Counter("d2_client_segment_retries_total"),
	}
	if cfg.Tracer != nil {
		if ut, ok := tr.(interface{ UseTracer(*tracing.Tracer) }); ok {
			ut.UseTracer(cfg.Tracer)
		}
		if ev := cfg.Events; ev != nil {
			cfg.Tracer.OnSlow(func(root tracing.Span) {
				ev.Log(obs.LevelWarn, "slow.request",
					"op", root.Name,
					"trace", tracing.TraceIDString(root.Trace),
					"dur_ms", root.Dur/1e6)
			})
		}
	}
	// A client is a pure caller; answer anything inbound with an error.
	tr.Serve(func(context.Context, transport.Addr, transport.Message) (transport.Message, error) {
		return nil, errors.New("node: client endpoint serves no requests")
	})
	return c, nil
}

// now returns the cache clock.
func (c *Client) now() time.Duration { return time.Since(c.start) }

// Stats returns the lookup-cache hit and miss counts. The counts are
// atomic registry counters, so Stats is safe to call from any goroutine
// while reads are in flight.
func (c *Client) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}

// RPCs returns the total RPCs this client has issued.
func (c *Client) RPCs() uint64 { return c.rpcs.Value() }

// Metrics returns the client's registry.
func (c *Client) Metrics() *obs.Registry { return c.reg }

// Tracer returns the client's request tracer (nil when disabled).
func (c *Client) Tracer() *tracing.Tracer { return c.tracer }

// call issues one counted RPC.
func (c *Client) call(ctx context.Context, to transport.Addr, req transport.Message) (transport.Message, error) {
	c.rpcs.Inc()
	return c.tr.Call(ctx, to, req)
}

// Lookup resolves the owner of key k, from cache when possible. Under a
// trace, a cache hit annotates the active span and a miss opens a lookup
// child span covering the full iterative resolution.
func (c *Client) Lookup(ctx context.Context, k keys.Key) (transport.PeerInfo, error) {
	c.mu.Lock()
	owner, ok := c.cache.Lookup(k, c.now())
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
		if sp := tracing.FromContext(ctx); sp != nil {
			sp.Annotate("cache", "hit")
		}
		return owner, nil
	}
	c.misses.Inc()
	sctx, sp := c.tracer.StartSpan(ctx, "lookup")
	if sp != nil {
		sp.Annotate("cache", "miss", "key", k.Short())
	}
	owner, err := c.freshLookup(sctx, k)
	sp.EndErr(err)
	return owner, err
}

// freshLookup performs a full DHT lookup and caches the owner's range.
// Lookups retry briefly: right after a crash, routing state needs a few
// stabilization rounds to drop the dead node (§8.1: routing failures are
// transient and resolved by retrying after the link repair time). Each
// attempt visits the seeds in a rotated order so one dead seed is not
// hammered first by every client, and attempts are spaced by jittered
// exponential backoff so a burst of failing clients does not retry in
// lockstep.
func (c *Client) freshLookup(ctx context.Context, k keys.Key) (transport.PeerInfo, error) {
	const attempts = 4
	var lastErr error
	backoff := 40 * time.Millisecond
	for attempt := 0; attempt < attempts; attempt++ {
		for _, seed := range c.seedOrder(attempt) {
			owner, pred, err := c.iterLookup(ctx, seed, k)
			if err != nil {
				lastErr = err
				continue
			}
			if !pred.IsZero() {
				c.mu.Lock()
				c.cache.Insert(pred.ID, owner.ID, owner, c.now())
				c.mu.Unlock()
			}
			return owner, nil
		}
		if attempt == attempts-1 {
			break
		}
		c.mu.Lock()
		jitter := time.Duration(c.rng.Int64N(int64(backoff)))
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return transport.PeerInfo{}, ctx.Err()
		case <-time.After(backoff/2 + jitter):
		}
		backoff *= 2
	}
	return transport.PeerInfo{}, fmt.Errorf("node: lookup failed: %w", lastErr)
}

// seedOrder returns the seed list for one lookup attempt. The first
// attempt uses the configured order; retries rotate by a random offset so
// a seed that just failed (or answered from a stale view) is not the
// first one asked again.
func (c *Client) seedOrder(attempt int) []transport.Addr {
	if attempt == 0 || len(c.seeds) == 1 {
		return c.seeds
	}
	c.mu.Lock()
	off := 1 + c.rng.IntN(len(c.seeds)-1)
	c.mu.Unlock()
	out := make([]transport.Addr, len(c.seeds))
	for i := range c.seeds {
		out[i] = c.seeds[(off+i)%len(c.seeds)]
	}
	return out
}

// iterLookup drives the iterative protocol from a seed. Under a trace,
// each hop is its own child span carrying the hop index and the queried
// node, so a slow lookup shows exactly which hop cost the time.
func (c *Client) iterLookup(ctx context.Context, start transport.Addr, k keys.Key) (owner, pred transport.PeerInfo, err error) {
	cur := start
	for hops := 0; hops < 128; hops++ {
		hctx, hsp := c.tracer.StartSpan(ctx, "lookup.hop")
		if hsp != nil {
			hsp.Annotate("hop", hops, "at", cur)
		}
		resp, err := transport.Expect[*transport.FindSuccResp](
			c.call(hctx, cur, &transport.FindSuccReq{Key: k}))
		hsp.EndErr(err)
		if err != nil {
			return transport.PeerInfo{}, transport.PeerInfo{}, err
		}
		if resp.Done {
			c.lookupHops.Observe(int64(hops + 1))
			return resp.Node, resp.Pred, nil
		}
		if resp.Node.Addr == cur {
			return transport.PeerInfo{}, transport.PeerInfo{}, fmt.Errorf("node: lookup stuck at %s", cur)
		}
		cur = resp.Node.Addr
	}
	return transport.PeerInfo{}, transport.PeerInfo{}, errors.New("node: lookup exceeded hop limit")
}

// invalidate drops the cache entry covering k after a stale hit.
func (c *Client) invalidate(k keys.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache.Invalidate(k)
}

// opTraced reports whether a client operation begun by StartOp is traced
// (span active or a caller's trace to propagate); untraced operations
// bypass spans and profiler labels entirely.
func opTraced(ctx context.Context, sp *tracing.ActiveSpan) bool {
	return sp != nil || tracing.FromContext(ctx) != nil
}

// Put stores a block with r replicas.
func (c *Client) Put(ctx context.Context, k keys.Key, data []byte) error {
	sctx, sp := c.tracer.StartOp(ctx, "client.put")
	if !opTraced(sctx, sp) {
		return c.put(ctx, k, data)
	}
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.put"), func(cx context.Context) {
		err = c.put(cx, k, data)
	})
	sp.EndErr(err)
	return err
}

// put is Put without the tracing shell.
func (c *Client) put(ctx context.Context, k keys.Key, data []byte) error {
	owner, err := c.Lookup(ctx, k)
	if err != nil {
		return err
	}
	_, err = transport.Expect[*transport.PutResp](c.call(ctx, owner.Addr, &transport.PutReq{
		Key: k, Data: data, Replicate: true,
	}))
	if err != nil {
		// Stale cache entry or dead node: retry once with a fresh lookup.
		c.invalidate(k)
		owner, err = c.freshLookup(ctx, k)
		if err != nil {
			return err
		}
		_, err = transport.Expect[*transport.PutResp](c.call(ctx, owner.Addr, &transport.PutReq{
			Key: k, Data: data, Replicate: true,
		}))
	}
	return err
}

// Get fetches a block, following pointer redirects and trying secondary
// replicas before falling back to a fresh lookup (§5: stale entries cost
// latency, never correctness). A not-found answer is retried briefly:
// while balance moves resettle ownership, a key can be transiently
// unreadable at its (brand-new) owner even though the block still exists
// in the ring (§8.1 treats such failures as transient and retries them).
func (c *Client) Get(ctx context.Context, k keys.Key) ([]byte, error) {
	sctx, sp := c.tracer.StartOp(ctx, "client.get")
	if !opTraced(sctx, sp) {
		return c.get(ctx, k)
	}
	var data []byte
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.get"), func(cx context.Context) {
		data, err = c.get(cx, k)
	})
	sp.EndErr(err)
	return data, err
}

// get is Get without the tracing shell.
func (c *Client) get(ctx context.Context, k keys.Key) ([]byte, error) {
	data, err := c.getOnce(ctx, k)
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 2 && errors.Is(err, ErrNotFound); attempt++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		c.nfRetries.Inc()
		data, err = c.getOnce(ctx, k)
	}
	return data, err
}

// getOnce runs one full read sequence: cached owner, fresh lookup, then
// the owner's replica group.
func (c *Client) getOnce(ctx context.Context, k keys.Key) ([]byte, error) {
	owner, err := c.Lookup(ctx, k)
	if err != nil {
		return nil, err
	}
	data, err := c.getFrom(ctx, owner.Addr, k)
	if err == nil {
		return data, nil
	}
	// Miss or stale: invalidate, re-lookup, and walk the replica group.
	c.invalidate(k)
	owner, lerr := c.freshLookup(ctx, k)
	if lerr != nil {
		return nil, lerr
	}
	data, err = c.getFrom(ctx, owner.Addr, k)
	if err == nil {
		return data, nil
	}
	succs, serr := c.successorsOf(ctx, owner)
	if serr == nil {
		for _, p := range succs {
			if data, gerr := c.getFrom(ctx, p.Addr, k); gerr == nil {
				return data, nil
			}
		}
	}
	return nil, err
}

// getFrom fetches a block from one node, following one pointer redirect.
func (c *Client) getFrom(ctx context.Context, addr transport.Addr, k keys.Key) ([]byte, error) {
	for i := 0; i < 2; i++ {
		resp, err := transport.Expect[*transport.GetResp](
			c.call(ctx, addr, &transport.GetReq{Key: k}))
		if err != nil {
			return nil, err
		}
		if !resp.Found {
			return nil, ErrNotFound
		}
		if resp.Redirect == "" {
			return resp.Data, nil
		}
		addr = resp.Redirect
	}
	return nil, fmt.Errorf("node: pointer chain too long for %s", k.Short())
}

// successorsOf fetches the replica group following the owner.
func (c *Client) successorsOf(ctx context.Context, owner transport.PeerInfo) ([]transport.PeerInfo, error) {
	resp, err := transport.Expect[*transport.NeighborsResp](
		c.call(ctx, owner.Addr, &transport.NeighborsReq{}))
	if err != nil {
		return nil, err
	}
	n := c.replicas - 1
	if n > len(resp.Succs) {
		n = len(resp.Succs)
	}
	return resp.Succs[:n], nil
}

// Remove deletes a block (and its replicas) after the node-side delay.
func (c *Client) Remove(ctx context.Context, k keys.Key) error {
	sctx, sp := c.tracer.StartOp(ctx, "client.remove")
	if !opTraced(sctx, sp) {
		return c.remove(ctx, k)
	}
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.remove"), func(cx context.Context) {
		err = c.remove(cx, k)
	})
	sp.EndErr(err)
	return err
}

// remove is Remove without the tracing shell.
func (c *Client) remove(ctx context.Context, k keys.Key) error {
	owner, err := c.Lookup(ctx, k)
	if err != nil {
		return err
	}
	_, err = transport.Expect[*transport.RemoveResp](c.call(ctx, owner.Addr, &transport.RemoveReq{
		Key: k, Replicate: true,
	}))
	if err != nil {
		c.invalidate(k)
		owner, err = c.freshLookup(ctx, k)
		if err != nil {
			return err
		}
		_, err = transport.Expect[*transport.RemoveResp](c.call(ctx, owner.Addr, &transport.RemoveReq{
			Key: k, Replicate: true,
		}))
	}
	return err
}

// Close releases the client endpoint.
func (c *Client) Close() error { return c.tr.Close() }
