package node

import (
	"context"
	"errors"
	"runtime/pprof"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

// Streaming-segment retry policy. A stream segment races churn for
// longer than a one-shot read: a balance move or node kill can make a
// key transiently unreadable at its brand-new owner (§8.1), and a
// stream abandoned on the first not-found would drop mid-playback. So
// missing keys are retried with jittered backoff for a few rounds —
// each round re-resolving ownership from scratch — before the segment
// reports the loss.
const (
	segmentRetryRounds  = 3
	segmentRetryBackoff = 150 * time.Millisecond
)

// GetSegment is the streaming read path's segment fetch: GetMany's
// owner-grouped batching plus per-key not-found retries tuned for
// consumers racing churn. Keys still missing after the retry budget are
// omitted from the result, like GetMany; the caller decides whether a
// hole is fatal.
func (c *Client) GetSegment(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error) {
	sctx, sp := c.tracer.StartOp(ctx, "client.segment")
	if !opTraced(sctx, sp) {
		return c.getSegment(ctx, ks)
	}
	sp.Annotate("keys", len(ks))
	var out map[keys.Key][]byte
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.segment"), func(cx context.Context) {
		out, err = c.getSegment(cx, ks)
	})
	sp.EndErr(err)
	return out, err
}

// getSegment is GetSegment without the tracing shell.
func (c *Client) getSegment(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error) {
	c.segments.Inc()
	out, err := c.getMany(ctx, ks)
	if err == nil && len(out) == len(ks) {
		return out, nil
	}
	// A transport error (a batch aimed at a just-killed owner answers
	// "unreachable") burns retry budget like a missing key: the next
	// round re-resolves ownership after repair has had time to run,
	// instead of aborting the stream on the first dead peer.
	if out == nil {
		out = make(map[keys.Key][]byte)
	}
	missing := missingKeys(ks, out)
	backoff := segmentRetryBackoff
	for round := 0; round < segmentRetryRounds && len(missing) > 0; round++ {
		c.mu.Lock()
		jitter := time.Duration(c.rng.Int64N(int64(backoff)))
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-time.After(backoff/2 + jitter):
		}
		backoff *= 2
		// Ownership may have resettled: drop cached ranges for the
		// stragglers and re-resolve from scratch.
		for _, k := range missing {
			c.invalidate(k)
			c.segRetries.Inc()
		}
		got, gerr := c.getMany(ctx, missing)
		err = gerr
		for k, data := range got {
			out[k] = data
		}
		missing = missingKeys(missing, out)
	}
	if len(missing) > 0 && err != nil {
		return out, err
	}
	return out, nil
}

// missingKeys returns the keys of ks absent from got, preserving order.
func missingKeys(ks []keys.Key, got map[keys.Key][]byte) []keys.Key {
	var out []keys.Key
	for _, k := range ks {
		if _, ok := got[k]; !ok {
			out = append(out, k)
		}
	}
	return out
}

// ErrSegmentIncomplete marks a segment fetch that exhausted its retry
// budget with keys still missing (exported for callers that treat a
// hole as fatal rather than skippable).
var ErrSegmentIncomplete = errors.New("node: segment incomplete after retries")
