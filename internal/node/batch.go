package node

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

// batchFanout bounds the concurrent per-owner RPCs a single GetMany or
// ReadRange issues.
const batchFanout = 8

// maxBatchKeys caps the keys in one MultiGet RPC. With D2's contiguous
// file keys a whole file often resolves to ONE owner, so an uncapped
// batch for a 64 MB file would ask for a 64 MB response — past the
// transport's frame cap. 1024 full blocks ≈ 8 MB per response, an 8×
// margin, and the chunks pipeline across the fan-out semaphore anyway.
const maxBatchKeys = 1024

// maxRangeParts bounds the owners one ReadRange may visit (a full ring
// walk on a pathological cache would otherwise loop).
const maxRangeParts = 1024

// RangeEntry is one block returned by ReadRange, in key order.
type RangeEntry struct {
	Key  keys.Key
	Data []byte
}

// ownerGroup is a run of sorted keys resolving to one owner.
type ownerGroup struct {
	owner transport.PeerInfo
	keys  []keys.Key
}

// GetMany fetches a batch of blocks with as few RPCs as the placement
// allows: keys are sorted, partitioned into runs by cached owner range
// (§5 — for D2's contiguous file keys one partition covers a whole file),
// and each owner is sent one MultiGet, with bounded fan-out across
// owners. Keys the batch path cannot resolve (stale cache, pointer
// chains, missing primaries) fall back to the per-key Get path with its
// replica walk. The result maps each found key to its data; absent keys
// are simply omitted. Duplicate keys are fetched once.
func (c *Client) GetMany(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error) {
	sctx, sp := c.tracer.StartOp(ctx, "client.get_many")
	if !opTraced(sctx, sp) {
		return c.getMany(ctx, ks)
	}
	sp.Annotate("keys", len(ks))
	var out map[keys.Key][]byte
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.get_many"), func(cx context.Context) {
		out, err = c.getMany(cx, ks)
	})
	sp.EndErr(err)
	return out, err
}

// getMany is GetMany without the tracing shell.
func (c *Client) getMany(ctx context.Context, ks []keys.Key) (map[keys.Key][]byte, error) {
	out := make(map[keys.Key][]byte, len(ks))
	if len(ks) == 0 {
		return out, nil
	}
	sorted := append([]keys.Key(nil), ks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	dedup := sorted[:1]
	for _, k := range sorted[1:] {
		if !k.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, k)
		}
	}
	groups, err := c.groupByOwner(ctx, dedup)
	if err != nil {
		return nil, err
	}
	c.fanout.Observe(int64(len(groups)))
	// Split oversized groups into frame-safe chunks (see maxBatchKeys);
	// each chunk is its own RPC, running under the same fan-out bound.
	var chunked []ownerGroup
	for _, g := range groups {
		for len(g.keys) > maxBatchKeys {
			chunked = append(chunked, ownerGroup{owner: g.owner, keys: g.keys[:maxBatchKeys]})
			g.keys = g.keys[maxBatchKeys:]
		}
		chunked = append(chunked, g)
	}
	groups = chunked

	var (
		mu       sync.Mutex
		fallback []keys.Key
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, batchFanout)
	for _, g := range groups {
		wg.Add(1)
		go func(g ownerGroup) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// One span per owner group: the unit of batching the §5 key
			// scheme optimizes for. Each goroutine derives its own child
			// from the op span, so concurrent groups never share a parent
			// pointer across goroutines.
			gctx, gsp := c.tracer.StartSpan(ctx, "batch.group")
			if gsp != nil {
				gsp.Annotate("owner", g.owner.Addr, "keys", len(g.keys))
			}
			found, missed := c.multiGet(gctx, g)
			if gsp != nil && len(missed) > 0 {
				gsp.Annotate("fallback", len(missed))
			}
			gsp.End()
			mu.Lock()
			for k, data := range found {
				out[k] = data
			}
			fallback = append(fallback, missed...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	for _, k := range fallback {
		data, err := c.Get(ctx, k)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return out, err
		}
		out[k] = data
	}
	return out, nil
}

// groupByOwner partitions sorted keys into per-owner runs. Consecutive
// keys usually hit the same cached range, so this costs one lookup per
// distinct owner, not per key.
func (c *Client) groupByOwner(ctx context.Context, sorted []keys.Key) ([]ownerGroup, error) {
	var groups []ownerGroup
	for _, k := range sorted {
		owner, err := c.Lookup(ctx, k)
		if err != nil {
			return nil, err
		}
		if n := len(groups); n > 0 && groups[n-1].owner.Addr == owner.Addr {
			groups[n-1].keys = append(groups[n-1].keys, k)
			continue
		}
		groups = append(groups, ownerGroup{owner: owner, keys: []keys.Key{k}})
	}
	return groups, nil
}

// multiGet issues one MultiGet to a group's owner, chasing pointer
// redirects. It returns the resolved blocks and the keys that need the
// per-key fallback.
func (c *Client) multiGet(ctx context.Context, g ownerGroup) (found map[keys.Key][]byte, missed []keys.Key) {
	found = make(map[keys.Key][]byte, len(g.keys))
	resp, err := transport.Expect[*transport.MultiGetResp](
		c.call(ctx, g.owner.Addr, &transport.MultiGetReq{Keys: g.keys}))
	if err != nil || len(resp.Items) != len(g.keys) {
		// Dead or stale owner: drop its cached range and let the
		// fallback path re-resolve every key.
		for _, k := range g.keys {
			c.invalidate(k)
		}
		return found, g.keys
	}
	for i, it := range resp.Items {
		k := g.keys[i]
		switch {
		case !it.Found:
			missed = append(missed, k)
		case it.Redirect != "":
			if data, gerr := c.getFrom(ctx, it.Redirect, k); gerr == nil {
				found[k] = data
			} else {
				missed = append(missed, k)
			}
		default:
			found[k] = it.Data
		}
	}
	return found, missed
}

// ReadRange reads every block stored in the circular arc (lo, hi]: the
// arc is partitioned by owner range — each partition is the intersection
// of the arc with one node's (pred, self] — and each owner is sent
// FetchRange RPCs for its partition. With D2's locality-preserving keys a
// whole file (or directory subtree) is one arc, so this reads it in ~one
// RPC per owner instead of one per block. Blocks are returned in key
// order. Requires lo != hi (a full-ring scan has no defined start).
func (c *Client) ReadRange(ctx context.Context, lo, hi keys.Key) ([]RangeEntry, error) {
	sctx, sp := c.tracer.StartOp(ctx, "client.read_range")
	if !opTraced(sctx, sp) {
		return c.readRange(ctx, lo, hi)
	}
	var out []RangeEntry
	var err error
	pprof.Do(sctx, pprof.Labels("d2_op", "client.read_range"), func(cx context.Context) {
		out, err = c.readRange(cx, lo, hi)
	})
	if sp != nil {
		sp.Annotate("blocks", len(out))
	}
	sp.EndErr(err)
	return out, err
}

// readRange is ReadRange without the tracing shell.
func (c *Client) readRange(ctx context.Context, lo, hi keys.Key) ([]RangeEntry, error) {
	if lo.Equal(hi) {
		return nil, errors.New("node: ReadRange needs a proper arc (lo != hi)")
	}
	var out []RangeEntry
	cur := lo
	for part := 0; part < maxRangeParts; part++ {
		owner, err := c.Lookup(ctx, cur.Next())
		if err != nil {
			return nil, err
		}
		// One span per owner segment: the arc∩(pred, self] unit ReadRange
		// fans out over.
		gctx, gsp := c.tracer.StartSpan(ctx, "range.segment")
		if gsp != nil {
			gsp.Annotate("owner", owner.Addr)
		}
		entries, segHi, last, err := c.fetchSegment(gctx, owner, cur, hi)
		if err != nil {
			// Stale cache: re-resolve the owner once and retry.
			c.invalidate(cur.Next())
			owner, err = c.freshLookup(gctx, cur.Next())
			if err != nil {
				gsp.EndErr(err)
				return nil, err
			}
			entries, segHi, last, err = c.fetchSegment(gctx, owner, cur, hi)
			if err != nil {
				gsp.EndErr(err)
				return nil, err
			}
		}
		if gsp != nil {
			gsp.Annotate("blocks", len(entries))
		}
		gsp.End()
		out = append(out, entries...)
		if last {
			return out, nil
		}
		cur = segHi
	}
	return nil, errors.New("node: range spans too many owners")
}

// fetchSegment reads the part of (cur, hi] owned by owner: the arc
// (cur, min(owner.ID, hi)], paginating through FetchRange responses and
// chasing pointer redirects. last reports that the segment reached hi.
func (c *Client) fetchSegment(ctx context.Context, owner transport.PeerInfo, cur, hi keys.Key) (entries []RangeEntry, segHi keys.Key, last bool, err error) {
	segHi = owner.ID
	if hi.Between(cur, owner.ID) {
		segHi, last = hi, true
	}
	lo := cur
	for {
		resp, rerr := transport.Expect[*transport.FetchRangeResp](
			c.call(ctx, owner.Addr, &transport.FetchRangeReq{Lo: lo, Hi: segHi}))
		if rerr != nil {
			return nil, segHi, last, rerr
		}
		for _, it := range resp.Items {
			if !it.Key.Between(cur, segHi) {
				continue // defensive: never return keys outside the asked arc
			}
			if it.Redirect != "" {
				data, gerr := c.getFrom(ctx, it.Redirect, it.Key)
				if gerr != nil {
					continue // pointer target gone; skip like a missing block
				}
				entries = append(entries, RangeEntry{Key: it.Key, Data: data})
				continue
			}
			entries = append(entries, RangeEntry{Key: it.Key, Data: it.Data})
		}
		if !resp.More {
			return entries, segHi, last, nil
		}
		if len(resp.Items) == 0 {
			return nil, segHi, last, fmt.Errorf("node: FetchRange from %s made no progress", owner.Addr)
		}
		lo = resp.Items[len(resp.Items)-1].Key
	}
}
