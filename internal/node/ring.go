package node

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/transport"
)

// dispatch routes one inbound RPC to its handler. ctx carries the
// caller's trace position (never its cancellation); handlers that fan out
// further RPCs thread it through so replication and forwards join the
// trace. The traced entry path is the handle wrapper in trace.go.
func (n *Node) dispatch(ctx context.Context, from transport.Addr, req transport.Message) (transport.Message, error) {
	switch r := req.(type) {
	case *transport.PingReq:
		return &transport.PingResp{Self: n.Self()}, nil
	case *transport.FindSuccReq:
		return n.handleFindSucc(r), nil
	case *transport.NeighborsReq:
		return n.handleNeighbors(), nil
	case *transport.NotifyReq:
		n.handleNotify(r.Cand)
		return &transport.NotifyResp{}, nil
	case *transport.PutReq:
		return n.handlePut(ctx, r), nil
	case *transport.GetReq:
		return n.handleGet(ctx, r), nil
	case *transport.MultiGetReq:
		return n.handleMultiGet(ctx, r), nil
	case *transport.FetchRangeReq:
		return n.handleFetchRange(r), nil
	case *transport.RemoveReq:
		return n.handleRemove(ctx, r), nil
	case *transport.PutPtrReq:
		n.st.PutPointer(r.Key, r.Target, r.Size, time.Now())
		n.metrics.ptrInstalls.Inc()
		return &transport.PutPtrResp{}, nil
	case *transport.LoadReq:
		return &transport.LoadResp{
			Self: n.Self(), RespBytes: n.RespBytes(), StoredBytes: n.StoredBytes(),
		}, nil
	case *transport.SplitReq:
		return n.handleSplit(ctx), nil
	case *transport.RangeReq:
		return n.handleRange(r), nil
	case *transport.SampleReq:
		return n.handleSample(ctx, r), nil
	case *transport.StatsReq:
		return n.handleStats(), nil
	case *transport.HealthReq:
		return n.handleHealth(), nil
	case *transport.CensusReq:
		return n.handleCensus(), nil
	case *transport.TraceFetchReq:
		return n.handleTraceFetch(r), nil
	default:
		return nil, fmt.Errorf("node: unknown request %T", req)
	}
}

// handleStats answers the admin plane's scrape: load summary plus the
// node's full metrics snapshot, JSON-encoded for obs.Merge at the scraper.
func (n *Node) handleStats() transport.Message {
	snap, err := json.Marshal(n.reg.Snapshot())
	if err != nil {
		snap = nil
	}
	return &transport.StatsResp{
		Self:         n.Self(),
		Pred:         n.Predecessor(),
		RespBytes:    n.RespBytes(),
		StoredBytes:  n.StoredBytes(),
		Blocks:       int64(n.st.Len()),
		SnapshotJSON: snap,
	}
}

// handleHealth answers the health engine's scrape: the node's verdict
// and derived-rate documents plus the load summary the doctor needs for
// the cluster-level §10 imbalance check. Nodes without an engine (bare
// test clusters) answer "unknown" with nil documents.
func (n *Node) handleHealth() transport.Message {
	resp := &transport.HealthResp{
		Self:        n.Self(),
		Pred:        n.Predecessor(),
		RespBytes:   n.RespBytes(),
		StoredBytes: n.StoredBytes(),
		Blocks:      int64(n.st.Len()),
		State:       "unknown",
	}
	if e := n.cfg.Health; e != nil {
		resp.State = e.State().String()
		resp.StatusJSON = e.StatusJSON()
		resp.RatesJSON = e.RatesJSON()
	}
	return resp
}

// handleCensus answers the placement-census scrape: the node's latest
// sweep report plus the load summary, so d2ctl frag/map can compute
// the §5 locality metrics and §10 imbalance in one ring walk. Nodes
// without a sweeper (census disabled) answer with a nil report.
func (n *Node) handleCensus() transport.Message {
	resp := &transport.CensusResp{
		Self:        n.Self(),
		Pred:        n.Predecessor(),
		RespBytes:   n.RespBytes(),
		StoredBytes: n.StoredBytes(),
		Blocks:      int64(n.st.Len()),
	}
	if n.census != nil {
		resp.ReportJSON = n.census.ReportJSON()
	}
	return resp
}

// owns reports whether this node owns key k: k ∈ (pred, self]. A node
// without a predecessor claims the whole ring only when it is genuinely
// alone (bootstrap): a node that merely lost its predecessor during churn
// must not over-claim keys it cannot serve — its predecessor-side
// neighbor asserts this node's range instead (the Done-succ branch of
// FindSucc).
func (n *Node) owns(k keys.Key) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.IsZero() || n.pred.Addr == n.self.Addr {
		return n.succs[0].Addr == n.self.Addr && len(n.links) == 0
	}
	return k.Between(n.pred.ID, n.self.ID)
}

// handleFindSucc answers one routing step: done if we own the key or our
// first successor does; otherwise the best next hop.
func (n *Node) handleFindSucc(r *transport.FindSuccReq) transport.Message {
	if n.owns(r.Key) {
		return &transport.FindSuccResp{Done: true, Node: n.Self(), Pred: n.Predecessor()}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	succ := n.succs[0]
	if succ.Addr == n.self.Addr && !n.pred.IsZero() && n.pred.Addr != n.self.Addr {
		// Two-node bootstrap: our notifier is both predecessor and
		// successor until the next stabilization round.
		succ = n.pred
	}
	if succ.Addr != n.self.Addr && r.Key.Between(n.self.ID, succ.ID) {
		return &transport.FindSuccResp{Done: true, Node: succ, Pred: n.self}
	}
	// Greedy: the closest preceding node among successors and long links.
	best := succ
	bestDist := n.self.ID.Distance(best.ID)
	keyDist := n.self.ID.Distance(r.Key)
	consider := func(p transport.PeerInfo) {
		if p.IsZero() || p.Addr == n.self.Addr {
			return
		}
		d := n.self.ID.Distance(p.ID)
		if d.Compare(keyDist) <= 0 && bestDist.Less(d) {
			best = p
			bestDist = d
		}
	}
	for _, p := range n.succs {
		consider(p)
	}
	for _, p := range n.links {
		consider(p)
	}
	return &transport.FindSuccResp{Done: false, Node: best}
}

func (n *Node) handleNeighbors() transport.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	succs := make([]transport.PeerInfo, len(n.succs))
	copy(succs, n.succs)
	return &transport.NeighborsResp{Self: n.self, Pred: n.pred, Succs: succs}
}

// handleNotify adopts a candidate predecessor if it is closer than the
// current one.
func (n *Node) handleNotify(cand transport.PeerInfo) {
	if cand.IsZero() || cand.Addr == n.tr.Addr() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.IsZero() || n.pred.Addr == n.self.Addr ||
		cand.ID.InOpenInterval(n.pred.ID, n.self.ID) {
		n.pred = cand
	}
}

// handleSample implements random-walk peer sampling: forward the request
// with one fewer hop to a random neighbor, or answer with self.
func (n *Node) handleSample(ctx context.Context, r *transport.SampleReq) transport.Message {
	if r.Hops <= 0 {
		return &transport.SampleResp{Peer: n.Self()}
	}
	n.mu.Lock()
	pool := make([]transport.PeerInfo, 0, len(n.succs)+len(n.links))
	for _, p := range n.succs {
		if p.Addr != n.self.Addr {
			pool = append(pool, p)
		}
	}
	pool = append(pool, n.links...)
	var next transport.PeerInfo
	if len(pool) > 0 {
		next = pool[n.rng.IntN(len(pool))]
	}
	n.mu.Unlock()
	if next.IsZero() {
		return &transport.SampleResp{Peer: n.Self()}
	}
	// ctx carries the trace position only (no caller cancellation), so the
	// forwarded hop joins the walk's trace under its own deadline.
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	resp, err := transport.Expect[*transport.SampleResp](
		n.call(ctx, next.Addr, &transport.SampleReq{Hops: r.Hops - 1}))
	if err != nil {
		return &transport.SampleResp{Peer: n.Self()}
	}
	return resp
}

// stabilize runs one round of ring maintenance: verify the successor,
// adopt its predecessor when closer, refresh the successor list, and
// notify.
func (n *Node) stabilize() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	n.mu.Lock()
	self := n.self
	succ := n.succs[0]
	pred := n.pred
	n.mu.Unlock()
	if succ.Addr == self.Addr {
		// Alone, or our successor list collapsed. If someone notified us
		// (two-node bootstrap), they are both our predecessor and our
		// successor.
		if pred.IsZero() || pred.Addr == self.Addr {
			n.rejoinViaLink(ctx)
			return
		}
		n.mu.Lock()
		n.succs = []transport.PeerInfo{pred}
		n.mu.Unlock()
		succ = pred
	}
	resp, err := transport.Expect[*transport.NeighborsResp](
		n.call(ctx, succ.Addr, &transport.NeighborsReq{}))
	if err != nil {
		n.dropSuccessor(succ)
		return
	}
	if !resp.Self.ID.Equal(succ.ID) {
		// The successor changed its ring position (a balance move):
		// treat the stale entry as departed and remember the new spot.
		n.dropSuccessor(succ)
		n.learnLink(resp.Self)
		return
	}
	n.verifyPred(ctx)
	n.mu.Lock()
	// succ.pred may sit between us and succ: adopt it as new successor.
	if !resp.Pred.IsZero() && resp.Pred.Addr != self.Addr &&
		resp.Pred.ID.InOpenInterval(self.ID, succ.ID) {
		n.succs = append([]transport.PeerInfo{resp.Pred}, n.succs...)
	}
	// Merge the successor's list after our own head.
	merged := []transport.PeerInfo{n.succs[0]}
	if n.succs[0].Addr == succ.Addr {
		merged = append(merged, resp.Succs...)
	} else {
		merged = append(merged, succ)
		merged = append(merged, resp.Succs...)
	}
	n.succs = merged
	n.trimSuccsLocked()
	head := n.succs[0]
	n.mu.Unlock()

	_, _ = transport.Expect[*transport.NotifyResp](
		n.call(ctx, head.Addr, &transport.NotifyReq{Cand: self}))
	n.learnLink(head)
	n.probeOneLink(ctx)
}

// rejoinViaLink re-enters the ring through a long link after the
// successor list collapsed. Heavy balance churn can invalidate every
// successor entry (each move changes a node's ID) faster than
// replacements are learned, leaving a node isolated — claiming nothing
// and reachable by stale links — even though its link table still names
// live peers. Look up our own ID from a link and adopt the answer as
// successor, exactly as an initial Join does.
func (n *Node) rejoinViaLink(ctx context.Context) {
	n.mu.Lock()
	var start transport.Addr
	if len(n.links) > 0 {
		start = n.links[n.rng.IntN(len(n.links))].Addr
	}
	id := n.self.ID
	n.mu.Unlock()
	if start == "" {
		return // genuinely alone: nothing to rejoin
	}
	owner, pred, err := n.iterLookup(ctx, start, id)
	if err != nil || owner.Addr == n.tr.Addr() {
		return
	}
	n.mu.Lock()
	if n.pred.IsZero() && !pred.IsZero() && pred.Addr != n.tr.Addr() {
		n.pred = pred
	}
	n.succs = append([]transport.PeerInfo{owner}, n.succs...)
	n.trimSuccsLocked()
	self := n.self
	n.mu.Unlock()
	n.metrics.rejoins.Inc()
	n.events.Log(obs.LevelWarn, "ring.rejoin",
		"via", string(start), "succ", string(owner.Addr))
	_, _ = transport.Expect[*transport.NotifyResp](
		n.call(ctx, owner.Addr, &transport.NotifyReq{Cand: self}))
}

// probeOneLink pings a random long link, dropping it (and refreshing its
// recorded position) if dead or moved, so routing state sheds crashed
// nodes within a few stabilization rounds.
func (n *Node) probeOneLink(ctx context.Context) {
	n.mu.Lock()
	if len(n.links) == 0 {
		n.mu.Unlock()
		return
	}
	i := n.rng.IntN(len(n.links))
	link := n.links[i]
	n.mu.Unlock()

	resp, err := transport.Expect[*transport.PingResp](
		n.call(ctx, link.Addr, &transport.PingReq{}))
	if err == nil && resp.Self.ID.Equal(link.ID) {
		return
	}
	n.mu.Lock()
	out := n.links[:0]
	for _, l := range n.links {
		if l.Addr != link.Addr {
			out = append(out, l)
		}
	}
	n.links = out
	n.mu.Unlock()
	if err == nil {
		n.learnLink(resp.Self) // moved, not dead
	}
}

// verifyPred clears a dead or relocated predecessor so notifies can
// install the true one.
func (n *Node) verifyPred(ctx context.Context) {
	pred := n.Predecessor()
	if pred.IsZero() || pred.Addr == n.tr.Addr() {
		return
	}
	resp, err := transport.Expect[*transport.PingResp](
		n.call(ctx, pred.Addr, &transport.PingReq{}))
	if err != nil || !resp.Self.ID.Equal(pred.ID) {
		n.mu.Lock()
		if n.pred.Addr == pred.Addr {
			n.pred = transport.PeerInfo{}
		}
		n.mu.Unlock()
	}
}

// trimSuccsLocked dedups the successor list, removes self, keeps ring
// order, and caps the length. Callers hold n.mu.
func (n *Node) trimSuccsLocked() {
	seen := map[transport.Addr]bool{}
	out := n.succs[:0]
	for _, p := range n.succs {
		if p.IsZero() || p.Addr == n.self.Addr || seen[p.Addr] {
			continue
		}
		seen[p.Addr] = true
		out = append(out, p)
		if len(out) == n.cfg.SuccListLen {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, n.self)
	}
	n.succs = out
}

// dropSuccessor removes a dead successor and promotes the next.
func (n *Node) dropSuccessor(dead transport.PeerInfo) {
	n.metrics.succDrops.Inc()
	n.events.Log(obs.LevelInfo, "ring.drop_succ", "addr", string(dead.Addr))
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.succs[:0]
	for _, p := range n.succs {
		if p.Addr != dead.Addr {
			out = append(out, p)
		}
	}
	n.succs = out
	if len(n.succs) == 0 {
		n.succs = []transport.PeerInfo{n.self}
	}
	if n.pred.Addr == dead.Addr {
		n.pred = transport.PeerInfo{}
	}
	// Purge from links too.
	links := n.links[:0]
	for _, p := range n.links {
		if p.Addr != dead.Addr {
			links = append(links, p)
		}
	}
	n.links = links
}

// learnLink remembers a peer in the long-link table (random replacement
// once full), giving routing its small-world shortcuts.
func (n *Node) learnLink(p transport.PeerInfo) {
	if p.IsZero() || p.Addr == n.tr.Addr() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if l.Addr == p.Addr {
			return
		}
	}
	if len(n.links) < n.cfg.MaxLinks {
		n.links = append(n.links, p)
		return
	}
	n.links[n.rng.IntN(len(n.links))] = p
}

// iterLookup drives an iterative lookup starting from the given address,
// returning the owner and its predecessor.
func (n *Node) iterLookup(ctx context.Context, start transport.Addr, k keys.Key) (owner, pred transport.PeerInfo, err error) {
	cur := start
	for hops := 0; hops < 128; hops++ {
		resp, err := transport.Expect[*transport.FindSuccResp](
			n.call(ctx, cur, &transport.FindSuccReq{Key: k}))
		if err != nil {
			return transport.PeerInfo{}, transport.PeerInfo{}, err
		}
		n.learnLink(resp.Node)
		if resp.Done {
			n.metrics.lookupHops.Observe(int64(hops + 1))
			return resp.Node, resp.Pred, nil
		}
		if resp.Node.Addr == cur {
			return transport.PeerInfo{}, transport.PeerInfo{}, fmt.Errorf("node: lookup stuck at %s", cur)
		}
		cur = resp.Node.Addr
	}
	return transport.PeerInfo{}, transport.PeerInfo{}, fmt.Errorf("node: lookup for %s exceeded hop limit", k.Short())
}

// Lookup finds the owner of key k from this node's own routing state.
func (n *Node) Lookup(ctx context.Context, k keys.Key) (owner, pred transport.PeerInfo, err error) {
	if n.owns(k) {
		return n.Self(), n.Predecessor(), nil
	}
	return n.iterLookup(ctx, n.tr.Addr(), k)
}
