// Package node implements a live D2 DHT node: ring membership with
// successor-list stabilization, iterative lookups over small-world links,
// replication on the r successors of each key, Karger–Ruhl load balancing
// through voluntary leave/rejoin with block pointers (§6), pointer
// stabilization, delayed removal (§3), and TTL expiry. Nodes communicate
// over any transport.Transport; the in-memory transport runs a 1,000-node
// cluster in one process.
package node

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/census"
	"github.com/defragdht/d2/internal/obs/history"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/store"
	"github.com/defragdht/d2/internal/transport"
)

// Config holds node parameters; zero values take defaults suited to live
// operation (tests shorten the intervals).
type Config struct {
	// ID is the node's ring position; zero picks a random one.
	ID keys.Key
	// Replicas is r (default 3).
	Replicas int
	// SuccListLen is the successor-list length (default max(r, 4)).
	SuccListLen int
	// StabilizeInterval drives ring maintenance (default 500 ms).
	StabilizeInterval time.Duration
	// RepairInterval drives replica repair and stale-block handoff
	// (default 5 s).
	RepairInterval time.Duration
	// BalanceInterval is the load-balance probe period; zero disables
	// balancing (the paper uses 10 min).
	BalanceInterval time.Duration
	// BalanceThreshold is t (default 4).
	BalanceThreshold float64
	// PointerStabilization is how long pointers are held before fetching
	// (default 1 h; §8.1).
	PointerStabilization time.Duration
	// RemoveDelay postpones removals (default 30 s; §3).
	RemoveDelay time.Duration
	// DefaultTTL is applied to blocks stored without an explicit TTL
	// (zero = no expiry).
	DefaultTTL time.Duration
	// MaxLinks caps the long-link table (default 16).
	MaxLinks int
	// Seed drives ID choice and sampling.
	Seed uint64
	// Metrics is the node's registry; nil creates a fresh one per node
	// (d2node shares its registry with the transport so one admin page
	// covers both layers).
	Metrics *obs.Registry
	// Events receives the node's structured event log; nil disables
	// event logging (obs.EventLog is nil-safe).
	Events *obs.EventLog
	// Tracer records request spans for sampled traces; nil disables
	// tracing (the tracing API is nil-safe). Start also attaches it to
	// the transport when the transport supports per-endpoint tracers.
	Tracer *tracing.Tracer
	// Health is the node's cluster-health engine; when set, HealthReq
	// RPCs answer with its status and rates documents (nil nodes answer
	// State "unknown"). The engine's lifecycle belongs to the caller.
	Health *history.Engine
	// CensusInterval drives the placement-census sweep (default 5 s;
	// negative disables the census entirely). The sweeper walks the
	// store index once per tick and publishes the d2_census_* gauges.
	CensusInterval time.Duration
	// Store is the node's block store; nil creates an in-memory one. The
	// engine's lifecycle belongs to the caller (Close flushes but does
	// not close it). An engine that also implements store.IdentityStore
	// gives the node a persistent ring identity: a persisted ID is
	// preferred over a random one, so a restarted node rejoins with its
	// old arc intact, and the ID is re-persisted after balance moves.
	Store store.Engine
}

func (c *Config) applyDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.SuccListLen == 0 {
		c.SuccListLen = c.Replicas
		if c.SuccListLen < 4 {
			c.SuccListLen = 4
		}
	}
	if c.StabilizeInterval == 0 {
		c.StabilizeInterval = 500 * time.Millisecond
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 5 * time.Second
	}
	if c.BalanceThreshold == 0 {
		c.BalanceThreshold = 4
	}
	if c.PointerStabilization == 0 {
		c.PointerStabilization = time.Hour
	}
	if c.RemoveDelay == 0 {
		c.RemoveDelay = 30 * time.Second
	}
	if c.MaxLinks == 0 {
		c.MaxLinks = 16
	}
	if c.CensusInterval == 0 {
		c.CensusInterval = 5 * time.Second
	}
}

// Node is one live DHT participant.
type Node struct {
	cfg Config
	tr  transport.Transport
	st  store.Engine

	mu    sync.Mutex
	self  transport.PeerInfo
	pred  transport.PeerInfo
	succs []transport.PeerInfo
	links []transport.PeerInfo
	rng   *rand.Rand
	// lastSplit records the median most recently handed to a balance
	// prober, so concurrent probers cannot all be told the same split
	// point and rejoin with identical IDs.
	lastSplit   keys.Key
	lastSplitAt time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	// removeTimers tracks pending delayed removals so Close cancels them.
	removeTimers map[keys.Key]*time.Timer

	reg     *obs.Registry
	metrics *nodeMetrics
	events  *obs.EventLog
	tracer  *tracing.Tracer
	census  *census.Sweeper
}

// Start creates a node on the transport and begins serving. The node
// initially forms a one-node ring; call Join to enter an existing one.
func Start(tr transport.Transport, cfg Config) *Node {
	cfg.applyDefaults()
	seed := cfg.Seed
	if seed == 0 {
		// Seed 0 means "random per node". Deriving it from the PCG
		// default would give every node the same "random" ID — separate
		// d2node processes would all join the ring at one position.
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
	}
	rng := rand.New(rand.NewPCG(seed, 0x4e4f4445)) // "NODE"
	st := cfg.Store
	if st == nil {
		st = store.New()
	}
	id := cfg.ID
	if id.IsZero() {
		// A durable engine may hold the identity of the node's previous
		// life; adopting it lets the node rejoin the ring on its old arc,
		// with every block it recovered still primary where it was.
		if is, ok := st.(store.IdentityStore); ok {
			if saved, found := is.LoadIdentity(); found {
				id = saved
			}
		}
	}
	if id.IsZero() {
		id = keys.Random(rng)
	}
	if is, ok := st.(store.IdentityStore); ok {
		_ = is.SaveIdentity(id)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	n := &Node{
		cfg:          cfg,
		tr:           tr,
		st:           st,
		self:         transport.PeerInfo{ID: id, Addr: tr.Addr()},
		rng:          rng,
		stop:         make(chan struct{}),
		removeTimers: make(map[keys.Key]*time.Timer),
		reg:          reg,
		events:       cfg.Events,
		tracer:       cfg.Tracer,
	}
	n.metrics = newNodeMetrics(reg, n)
	if cfg.CensusInterval >= 0 {
		n.census = census.New(census.Config{
			Store:      st,
			Bounds:     n.censusBounds,
			Registry:   reg,
			StaleAfter: cfg.PointerStabilization,
		})
	}
	n.succs = []transport.PeerInfo{n.self}
	if cfg.Tracer != nil {
		if ut, ok := tr.(interface{ UseTracer(*tracing.Tracer) }); ok {
			ut.UseTracer(cfg.Tracer)
		}
	}
	tr.Serve(n.handle)
	n.startLoops()
	return n
}

func (n *Node) startLoops() {
	n.loop(n.cfg.StabilizeInterval, n.stabilize)
	n.loop(n.cfg.RepairInterval, n.repair)
	n.loop(n.cfg.RepairInterval, n.stabilizePointers)
	n.loop(time.Minute, func() {
		if dropped := n.st.SweepExpired(time.Now()); dropped > 0 {
			n.metrics.expired.Add(uint64(dropped))
		}
	})
	if n.cfg.BalanceInterval > 0 {
		n.loop(n.cfg.BalanceInterval, n.balanceProbe)
	}
	if n.census != nil {
		n.loop(n.cfg.CensusInterval, n.census.Sweep)
	}
}

// loop runs fn every interval until the node closes.
func (n *Node) loop(interval time.Duration, fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// Self returns the node's identity.
func (n *Node) Self() transport.PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// Predecessor returns the current predecessor (zero if unknown).
func (n *Node) Predecessor() transport.PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// Successor returns the first successor.
func (n *Node) Successor() transport.PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succs[0]
}

// Store exposes the local block store (read-mostly, for tests and tools).
func (n *Node) Store() store.Engine { return n.st }

// Neighbors returns the node's ring view: predecessor and a copy of the
// successor list (for the admin plane's /ringz).
func (n *Node) Neighbors() (pred transport.PeerInfo, succs []transport.PeerInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	succs = make([]transport.PeerInfo, len(n.succs))
	copy(succs, n.succs)
	return n.pred, succs
}

// Metrics returns the node's registry (for the admin plane and tests).
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Events returns the node's event log (nil when disabled).
func (n *Node) Events() *obs.EventLog { return n.events }

// Tracer returns the node's request tracer (nil when disabled).
func (n *Node) Tracer() *tracing.Tracer { return n.tracer }

// StoredBytes returns the node's stored data volume.
func (n *Node) StoredBytes() int64 { return n.st.Bytes() }

// RespBytes returns the node's primary-responsibility load: the bytes
// (including pointers) in its (pred, self] range (§6).
func (n *Node) RespBytes() int64 {
	n.mu.Lock()
	pred, self := n.pred, n.self
	n.mu.Unlock()
	if pred.IsZero() {
		return n.st.Bytes()
	}
	return n.st.ArcBytes(pred.ID, self.ID)
}

// Census returns the node's placement-census sweeper (nil when
// disabled), for the admin plane and tests.
func (n *Node) Census() *census.Sweeper { return n.census }

// censusBounds supplies the census sweeper with the node's current ring
// position, so the sweep can classify entries as primary or replica.
func (n *Node) censusBounds() census.Bounds {
	n.mu.Lock()
	self, pred := n.self, n.pred
	n.mu.Unlock()
	return census.Bounds{Self: self.ID, Pred: pred.ID, Ok: true}
}

// Join enters the ring known to the seed address.
func (n *Node) Join(ctx context.Context, seed transport.Addr) error {
	n.mu.Lock()
	id := n.self.ID
	n.mu.Unlock()
	owner, pred, err := n.iterLookup(ctx, seed, id)
	if err != nil {
		return fmt.Errorf("node: join via %s: %w", seed, err)
	}
	if owner.Addr == n.tr.Addr() {
		// The lookup terminated on ourselves: a durable node restarting
		// before the ring forgot its previous incarnation is reachable
		// at its old address with its old ID, so stale links route the
		// join lookup straight back to the joiner — which, as a
		// singleton, claims its own key. Adopting that answer would
		// leave us a one-node ring forever. Link via the seed instead;
		// stabilization walks us to our true position within a few
		// rounds.
		resp, perr := transport.Expect[*transport.PingResp](
			n.call(ctx, seed, &transport.PingReq{}))
		if perr != nil {
			return fmt.Errorf("node: join via %s: %w", seed, perr)
		}
		owner, pred = resp.Self, transport.PeerInfo{}
	}
	n.mu.Lock()
	n.pred = pred
	if owner.Addr != n.self.Addr {
		n.succs = append([]transport.PeerInfo{owner}, n.succs...)
		n.trimSuccsLocked()
	}
	n.mu.Unlock()
	// Announce ourselves so the ring links in quickly.
	_, _ = transport.Expect[*transport.NotifyResp](
		n.call(ctx, owner.Addr, &transport.NotifyReq{Cand: n.Self()}))
	n.stabilize()
	return nil
}

// Close stops background loops and the transport. Data is not handed off:
// the replica repair of surviving nodes restores redundancy, exactly as
// with a crash.
func (n *Node) Close() error {
	select {
	case <-n.stop:
		return nil // already closed
	default:
	}
	close(n.stop)
	n.mu.Lock()
	for _, t := range n.removeTimers {
		t.Stop()
	}
	n.removeTimers = map[keys.Key]*time.Timer{}
	n.mu.Unlock()
	err := n.tr.Close()
	n.wg.Wait()
	// Clean-shutdown barrier: every acknowledged write reaches stable
	// storage before the process may exit (no-op for volatile engines).
	if ferr := n.st.Flush(); err == nil {
		err = ferr
	}
	return err
}

// Leave performs a graceful departure: push every stored block to the
// nodes now responsible, then close.
func (n *Node) Leave(ctx context.Context) error {
	items := n.st.Arc(n.Self().ID, n.Self().ID) // whole store
	for _, it := range items {
		if it.Block.IsPointer() || n.doomed(it.Key) {
			continue
		}
		owner, _, err := n.Lookup(ctx, it.Key)
		if err != nil || owner.Addr == n.tr.Addr() {
			continue
		}
		_, _ = transport.Expect[*transport.PutResp](n.call(ctx, owner.Addr, &transport.PutReq{
			Key: it.Key, Data: it.Block.Data, Replicate: true,
		}))
	}
	return n.Close()
}

// call is the node's outbound RPC helper with a default timeout.
func (n *Node) call(ctx context.Context, to transport.Addr, req transport.Message) (transport.Message, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
	}
	return n.tr.Call(ctx, to, req)
}
