package node

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

// testConfig returns aggressive intervals so rings converge in tens of
// milliseconds.
func testConfig(seed uint64) Config {
	return Config{
		Replicas:             3,
		StabilizeInterval:    10 * time.Millisecond,
		RepairInterval:       30 * time.Millisecond,
		PointerStabilization: 150 * time.Millisecond,
		RemoveDelay:          50 * time.Millisecond,
		Seed:                 seed,
	}
}

// startRing boots n nodes on a shared memory network and waits for the
// ring to converge.
func startRing(t testing.TB, net *transport.MemNetwork, n int, mutate func(i int, c *Config)) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		cfg := testConfig(uint64(i + 1))
		if mutate != nil {
			mutate(i, &cfg)
		}
		nodes[i] = Start(net.NewEndpoint(), cfg)
		if i > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := nodes[i].Join(ctx, nodes[0].Self().Addr); err != nil {
				cancel()
				t.Fatalf("node %d join: %v", i, err)
			}
			cancel()
		}
	}
	waitConverged(t, nodes, 10*time.Second)
	return nodes
}

// waitConverged polls until successor pointers form the correct cycle.
func waitConverged(t testing.TB, nodes []*Node, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if ringConsistent(nodes) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not converge within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ringConsistent checks that following first successors visits every node
// in ID order.
func ringConsistent(nodes []*Node) bool {
	type entry struct {
		id   keys.Key
		addr transport.Addr
		succ transport.Addr
		pred transport.Addr
	}
	entries := make([]entry, len(nodes))
	for i, n := range nodes {
		entries[i] = entry{
			id:   n.Self().ID,
			addr: n.Self().Addr,
			succ: n.Successor().Addr,
			pred: n.Predecessor().Addr,
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id.Less(entries[j].id) })
	for i, e := range entries {
		next := entries[(i+1)%len(entries)]
		if e.succ != next.addr {
			return false
		}
		if next.pred != e.addr {
			return false
		}
	}
	return true
}

func closeAll(t testing.TB, nodes []*Node) {
	t.Helper()
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

func newClient(t testing.TB, net *transport.MemNetwork, nodes []*Node) *Client {
	t.Helper()
	c, err := NewClient(net.NewEndpoint(), ClientConfig{
		Seeds:    []transport.Addr{nodes[0].Self().Addr, nodes[len(nodes)-1].Self().Addr},
		Replicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSingleNodePutGet(t *testing.T) {
	net := transport.NewMemNetwork(0)
	n := Start(net.NewEndpoint(), testConfig(1))
	defer n.Close()
	c := newClient(t, net, []*Node{n})
	defer c.Close()

	ctx := context.Background()
	k := keys.HashString("solo")
	if err := c.Put(ctx, k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := c.Get(ctx, k)
	if err != nil || string(data) != "payload" {
		t.Fatalf("Get = (%q, %v)", data, err)
	}
	if _, err := c.Get(ctx, keys.HashString("absent")); err == nil {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestRingConvergesAndRoutes(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	// Every key's lookup must agree with the ground-truth ring.
	ids := make([]keys.Key, len(nodes))
	byID := map[keys.Key]*Node{}
	for i, n := range nodes {
		ids[i] = n.Self().ID
		byID[n.Self().ID] = n
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		k := keys.HashString(fmt.Sprintf("probe-%d", i))
		owner, err := c.Lookup(ctx, k)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		j := sort.Search(len(ids), func(j int) bool { return !ids[j].Less(k) })
		want := ids[j%len(ids)]
		if owner.ID != want {
			t.Fatalf("lookup %d: owner %s, want %s", i, owner.ID.Short(), want.Short())
		}
	}
}

func TestReplicationSurvivesPrimaryCrash(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	k := keys.HashString("precious")
	if err := c.Put(ctx, k, []byte("data")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let repair top up replicas

	owner, err := c.Lookup(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	var victim *Node
	var rest []*Node
	for _, n := range nodes {
		if n.Self().Addr == owner.Addr {
			victim = n
		} else {
			rest = append(rest, n)
		}
	}
	if victim == nil {
		t.Fatal("owner not among nodes")
	}
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, rest, 10*time.Second)

	data, err := c.Get(ctx, k)
	if err != nil || string(data) != "data" {
		t.Fatalf("Get after primary crash = (%q, %v)", data, err)
	}
}

func TestDelayedRemove(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 4, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	k := keys.HashString("doomed")
	if err := c.Put(ctx, k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, k); err != nil {
		t.Fatal(err)
	}
	// Still present during the delay window (§3: views may be 30s stale).
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatalf("block vanished before the removal delay: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Get(ctx, k); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("block not removed after delay")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestLookupCacheHitsOnLocality(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 8, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	// Contiguous keys (a D2 file): after the first lookup the rest hit
	// the cached range (unless they straddle a node boundary).
	base := keys.HashString("file-base")
	for b := uint64(0); b < 20; b++ {
		if err := c.Put(ctx, base.WithBlock(b), []byte("blk")); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if hits < 15 {
		t.Errorf("contiguous keys: %d hits / %d misses; locality should hit the cache", hits, misses)
	}
}

func TestTTLExpiry(t *testing.T) {
	net := transport.NewMemNetwork(0)
	cfg := testConfig(1)
	cfg.DefaultTTL = 100 * time.Millisecond
	n := Start(net.NewEndpoint(), cfg)
	defer n.Close()

	k := keys.HashString("ephemeral")
	n.Store().Put(k, []byte("x"), cfg.DefaultTTL, time.Now())
	if n.Store().SweepExpired(time.Now().Add(time.Second)) != 1 {
		t.Fatal("TTL sweep did not remove the block")
	}
}

func TestGracefulLeaveHandsOffData(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	var ks []keys.Key
	for i := 0; i < 20; i++ {
		k := keys.HashString(fmt.Sprintf("leave-%d", i))
		ks = append(ks, k)
		if err := c.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// The heaviest node leaves gracefully.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].StoredBytes() > nodes[j].StoredBytes() })
	leaver := nodes[0]
	rest := nodes[1:]
	if err := leaver.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, rest, 10*time.Second)
	for _, k := range ks {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatalf("block %s lost after graceful leave: %v", k.Short(), err)
		}
	}
	nodes = rest
}

func TestBalanceMovesNodesToHotspot(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 10, func(i int, c *Config) {
		c.BalanceInterval = 50 * time.Millisecond
		c.PointerStabilization = 100 * time.Millisecond
	})
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	// All data in one tight arc: one node owns everything initially.
	base := keys.HashString("hot")
	var ks []keys.Key
	k := base
	for i := 0; i < 200; i++ {
		k = k.Next()
		ks = append(ks, k)
		if err := c.Put(ctx, k, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for balance moves to spread primary responsibility.
	deadline := time.Now().Add(15 * time.Second)
	for {
		owners := map[transport.Addr]bool{}
		for _, probe := range []int{0, 50, 100, 150, 199} {
			owner, err := c.freshLookup(ctx, ks[probe])
			if err == nil {
				owners[owner.Addr] = true
			}
		}
		if len(owners) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hotspot still owned by %d node(s) after balancing", len(owners))
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Every block must remain readable throughout and after the moves.
	for _, key := range ks {
		if _, err := c.Get(ctx, key); err != nil {
			t.Fatalf("block %s unreadable after balancing: %v", key.Short(), err)
		}
	}
}

func TestHundredNodeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("100-node ring in -short mode")
	}
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 100, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	for i := 0; i < 50; i++ {
		k := keys.HashString(fmt.Sprintf("scale-%d", i))
		if err := c.Put(ctx, k, []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		k := keys.HashString(fmt.Sprintf("scale-%d", i))
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

// TestRejoinWithStaleSelfEntry reproduces the durable-restart hole: a
// node that comes back on its old address with its persisted identity is
// reachable exactly where the ring remembers its previous incarnation,
// so a stale link routes the join lookup straight back to the joiner —
// which, as a freshly started singleton, claims its own key. Join must
// not adopt itself as its own successor; it falls back to linking via
// the seed and stabilization walks it to its true position.
func TestRejoinWithStaleSelfEntry(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 4, func(i int, c *Config) {
		// Live-operation default: the ring keeps the dead incarnation's
		// entries far longer than the restart takes.
		c.RemoveDelay = 30 * time.Second
	})
	defer closeAll(t, nodes)

	// Ring order: pick the victim v and join via the survivor w that is
	// neither v's predecessor nor v's successor. After the kill, v's arc
	// is absorbed by its successor, so w neither owns v's ID nor has it
	// in its immediate-successor range — w must route the lookup, and
	// the stale link (at exactly the looked-up ID) wins the greedy hop.
	byAddr := func(a transport.Addr) int {
		for i, n := range nodes {
			if n.Self().Addr == a {
				return i
			}
		}
		t.Fatalf("address %s not found among nodes", a)
		return -1
	}
	vi := byAddr(nodes[0].Successor().Addr)
	ui := byAddr(nodes[vi].Successor().Addr)
	wi := byAddr(nodes[ui].Successor().Addr)
	seedNode := nodes[wi]
	old := nodes[vi]
	id := old.Self().ID
	addr := old.Self().Addr
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	// Let the survivors heal (as a real cluster does in the minutes
	// before an operator restarts the dead node).
	survivors := make([]*Node, 0, 3)
	for i, n := range nodes {
		if i != vi {
			survivors = append(survivors, n)
		}
	}
	waitConverged(t, survivors, 10*time.Second)

	// Restart on the same address with the same identity. The new
	// incarnation answers pings for the old one, so the stale reference
	// injected below never gets purged — exactly the live condition,
	// where the survivors' link tables still name the dead node's
	// address and keep it because the restarted listener responds.
	cfg := testConfig(0)
	cfg.ID = id
	cfg.RemoveDelay = 30 * time.Second
	nb := Start(net.NewEndpointAt(addr), cfg)
	nodes[vi] = nb
	seedNode.learnLink(transport.PeerInfo{ID: id, Addr: addr})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nb.Join(ctx, seedNode.Self().Addr); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if nb.Successor().Addr == addr {
		t.Fatalf("rejoined node adopted itself as successor (singleton ring)")
	}
	waitConverged(t, nodes, 10*time.Second)
}

// TestReplicaCountConvergesAndHolds pins the replica-responsibility
// bound in replicaRangeStart: every data block must settle on exactly r
// nodes and stay there. With the bound one predecessor short, the
// farthest owner's last replica treats its legitimate copies as stale
// and hands them off, the owner's repair pushes them back, and the
// cluster oscillates between r-1 and r copies forever — silently
// degraded redundancy plus a permanent handoff/repair ping-pong that a
// durable store pays for in WAL growth.
func TestReplicaCountConvergesAndHolds(t *testing.T) {
	net := transport.NewMemNetwork(0)
	nodes := startRing(t, net, 6, nil)
	defer closeAll(t, nodes)
	c := newClient(t, net, nodes)
	defer c.Close()

	ctx := context.Background()
	var ks []keys.Key
	for i := 0; i < 24; i++ {
		k := keys.HashString(fmt.Sprintf("replica-%d", i))
		if err := c.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}

	copies := func(k keys.Key) int {
		held := 0
		for _, nd := range nodes {
			if b, ok := nd.Store().Get(k); ok && !b.IsPointer() {
				held++
			}
		}
		return held
	}

	// Converge: every key reaches r copies.
	deadline := time.Now().Add(10 * time.Second)
	for {
		short := -1
		for i, k := range ks {
			if copies(k) < 3 {
				short = i
				break
			}
		}
		if short < 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %d stuck at %d copies, want 3", short, copies(ks[short]))
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Hold: with the ring stable and every replica in place, repair must
	// go quiet. Any handoff now means a holder is misjudging its own
	// responsibility range (the ping-pong).
	before := uint64(0)
	for _, nd := range nodes {
		before += nd.metrics.handoffs.Value()
	}
	time.Sleep(10 * testConfig(0).RepairInterval)
	after := uint64(0)
	for _, nd := range nodes {
		after += nd.metrics.handoffs.Value()
	}
	if after != before {
		t.Fatalf("%d handoffs during steady state (replica ping-pong)", after-before)
	}
	for _, k := range ks {
		if got := copies(k); got < 3 {
			t.Fatalf("key dropped to %d copies in steady state", got)
		}
	}
}
