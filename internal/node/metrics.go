package node

import (
	"github.com/defragdht/d2/internal/obs"
)

// nodeMetrics instruments a node's DHT behavior against its obs.Registry:
// lookup routing cost, balance activity (§6), pointer lifecycle, replica
// repair, and churn handling. Every node owns a registry (a fresh one
// unless Config.Metrics shares one), so the fields are never nil.
type nodeMetrics struct {
	lookupHops *obs.Histogram // hops per iterative lookup issued by this node

	balanceProbes *obs.Counter // §6 probes run
	balanceMoves  *obs.Counter // §6 leave/rejoin moves executed
	splitHandouts *obs.Counter // split medians handed to probers

	ptrInstalls  *obs.Counter // block pointers installed locally
	ptrRedirects *obs.Counter // reads answered with a redirect
	ptrResolved  *obs.Counter // pointers replaced by data (stabilization)

	repairPushes   *obs.Counter // blocks pushed to successors by repair
	replicaDeficit *obs.Gauge   // replica slots the last repair round left unfilled
	handoffs       *obs.Counter // blocks handed to their primary and dropped
	rejoins        *obs.Counter // ring re-entries after successor collapse
	succDrops      *obs.Counter // successors dropped as dead or moved
	removals       *obs.Counter // delayed removals scheduled (§3)
	expired        *obs.Counter // blocks dropped by TTL sweep
}

// newNodeMetrics registers the node metrics and the store gauges on reg.
func newNodeMetrics(reg *obs.Registry, n *Node) *nodeMetrics {
	reg.GaugeFunc("d2_node_store_bytes", n.StoredBytes)
	reg.GaugeFunc("d2_node_store_blocks", func() int64 { return int64(n.st.Len()) })
	reg.GaugeFunc("d2_node_resp_bytes", n.RespBytes)
	return &nodeMetrics{
		lookupHops:     reg.Histogram("d2_node_lookup_hops", obs.CountBuckets),
		balanceProbes:  reg.Counter("d2_node_balance_probes_total"),
		balanceMoves:   reg.Counter("d2_node_balance_moves_total"),
		splitHandouts:  reg.Counter("d2_node_split_handouts_total"),
		ptrInstalls:    reg.Counter("d2_node_ptr_installs_total"),
		ptrRedirects:   reg.Counter("d2_node_ptr_redirects_total"),
		ptrResolved:    reg.Counter("d2_node_ptr_resolved_total"),
		repairPushes:   reg.Counter("d2_node_repair_pushes_total"),
		replicaDeficit: reg.Gauge("d2_node_replica_deficit"),
		handoffs:       reg.Counter("d2_node_handoffs_total"),
		rejoins:        reg.Counter("d2_node_rejoins_total"),
		succDrops:      reg.Counter("d2_node_succ_drops_total"),
		removals:       reg.Counter("d2_node_removals_scheduled_total"),
		expired:        reg.Counter("d2_node_expired_total"),
	}
}
