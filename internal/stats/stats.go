// Package stats provides the small set of summary statistics the paper's
// evaluation reports: means, normalized standard deviation (the load
// imbalance metric of §10), geometric means (the speedup metric of §9.3),
// and percentiles.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// NormStdDev returns the standard deviation divided by the mean: the load
// imbalance metric used in Figures 16 and 17. It returns 0 when the mean
// is 0 (an empty system is perfectly balanced).
func NormStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// GeoMean returns the geometric mean of xs. Non-positive values are
// skipped, since speedup ratios are always positive. It returns 0 for an
// empty (or all-skipped) slice.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank interpolation. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
