package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want) {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); !almostEqual(got, 0) {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1) {
		t.Errorf("StdDev({1,3}) = %v, want 1", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v, want 0", got)
	}
}

func TestNormStdDev(t *testing.T) {
	if got := NormStdDev([]float64{10, 10, 10}); !almostEqual(got, 0) {
		t.Errorf("balanced system imbalance = %v, want 0", got)
	}
	if got := NormStdDev([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mean imbalance = %v, want 0", got)
	}
	// Doubling all loads must not change the normalized deviation.
	a := NormStdDev([]float64{1, 2, 3})
	b := NormStdDev([]float64{2, 4, 6})
	if !almostEqual(a, b) {
		t.Errorf("NormStdDev not scale invariant: %v vs %v", a, b)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2) {
		t.Errorf("GeoMean({1,4}) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); !almostEqual(got, 4) {
		t.Errorf("GeoMean must skip non-positive values, got %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// Geometric mean of x and 1/x is 1: speedups and slowdowns cancel.
	if got := GeoMean([]float64{3, 1.0 / 3}); !almostEqual(got, 1) {
		t.Errorf("GeoMean({3,1/3}) = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice behaviour")
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		// Clamp inputs to a range whose sums cannot overflow.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e12))
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
