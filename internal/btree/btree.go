// Package btree implements an in-memory B-tree keyed by DHT keys. The
// simulator uses it to enumerate the blocks of a key range when replica
// groups change, and the live store uses it for migration range scans. A
// hash map cannot serve these: defragmentation is all about key *ranges*.
package btree

import (
	"github.com/defragdht/d2/internal/keys"
)

// degree is the minimum number of children of an internal node (except the
// root). Nodes hold between degree-1 and 2*degree-1 items.
const degree = 16

const maxItems = 2*degree - 1

// Tree is a B-tree mapping keys.Key to values of type V. The zero value is
// an empty tree ready for use. Tree is not safe for concurrent use.
type Tree[V any] struct {
	root *node[V]
	size int
}

type item[V any] struct {
	key   keys.Key
	value V
}

type node[V any] struct {
	items    []item[V]
	children []*node[V] // nil for leaves
}

func (n *node[V]) leaf() bool { return len(n.children) == 0 }

// find returns the index of the first item with key ≥ k, and whether it is
// an exact match.
func (n *node[V]) find(k keys.Key) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].key.Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && n.items[lo].key.Equal(k) {
		return lo, true
	}
	return lo, false
}

// Len returns the number of items.
func (t *Tree[V]) Len() int { return t.size }

// Get returns the value stored under k.
func (t *Tree[V]) Get(k keys.Key) (V, bool) {
	n := t.root
	for n != nil {
		i, ok := n.find(k)
		if ok {
			return n.items[i].value, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Set stores v under k, returning the previous value if one existed.
func (t *Tree[V]) Set(k keys.Key, v V) (V, bool) {
	var zero V
	if t.root == nil {
		t.root = &node[V]{items: []item[V]{{key: k, value: v}}}
		t.size = 1
		return zero, false
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node[V]{children: []*node[V]{old}}
		t.root.splitChild(0)
	}
	prev, replaced := t.root.insert(k, v)
	if !replaced {
		t.size++
	}
	return prev, replaced
}

// splitChild splits the full child at index i, lifting its median into n.
func (n *node[V]) splitChild(i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	median := child.items[mid]
	right := &node[V]{items: append([]item[V](nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node[V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, item[V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node[V]) insert(k keys.Key, v V) (V, bool) {
	i, ok := n.find(k)
	if ok {
		prev := n.items[i].value
		n.items[i].value = v
		return prev, true
	}
	var zero V
	if n.leaf() {
		n.items = append(n.items, item[V]{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item[V]{key: k, value: v}
		return zero, false
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		if n.items[i].key.Less(k) {
			i++
		} else if n.items[i].key.Equal(k) {
			prev := n.items[i].value
			n.items[i].value = v
			return prev, true
		}
	}
	return n.children[i].insert(k, v)
}

// Delete removes k, returning its value if present.
func (t *Tree[V]) Delete(k keys.Key) (V, bool) {
	var zero V
	if t.root == nil {
		return zero, false
	}
	v, ok := t.root.delete(k)
	if ok {
		t.size--
	}
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	return v, ok
}

// delete removes k from the subtree rooted at n (CLRS B-tree delete: every
// recursive descent is into a child with at least degree items).
func (n *node[V]) delete(k keys.Key) (V, bool) {
	var zero V
	i, ok := n.find(k)
	if n.leaf() {
		if !ok {
			return zero, false
		}
		v := n.items[i].value
		n.items = append(n.items[:i], n.items[i+1:]...)
		return v, true
	}
	if ok {
		v := n.items[i].value
		switch {
		case len(n.children[i].items) >= degree:
			// Replace with the in-order predecessor and delete it below.
			pred := n.children[i].deleteMax()
			n.items[i] = pred
		case len(n.children[i+1].items) >= degree:
			succ := n.children[i+1].deleteMin()
			n.items[i] = succ
		default:
			// Both neighbours minimal: merge and recurse.
			n.mergeChildren(i)
			n.children[i].delete(k)
		}
		return v, true
	}
	i = n.growChild(i, k)
	return n.children[i].delete(k)
}

// deleteMax removes and returns the largest item of the subtree.
func (n *node[V]) deleteMax() item[V] {
	if n.leaf() {
		it := n.items[len(n.items)-1]
		n.items = n.items[:len(n.items)-1]
		return it
	}
	i := len(n.children) - 1
	i = n.growChild(i, n.children[i].lastKey())
	return n.children[i].deleteMax()
}

// deleteMin removes and returns the smallest item of the subtree.
func (n *node[V]) deleteMin() item[V] {
	if n.leaf() {
		it := n.items[0]
		n.items = append(n.items[:0], n.items[1:]...)
		return it
	}
	i := n.growChild(0, n.children[0].firstKey())
	return n.children[i].deleteMin()
}

func (n *node[V]) lastKey() keys.Key  { return n.items[len(n.items)-1].key }
func (n *node[V]) firstKey() keys.Key { return n.items[0].key }

// growChild ensures n.children[i] has at least degree items before a
// descent, borrowing from a sibling or merging. It returns the index of
// the child that now covers key k (merging can shift indices).
func (n *node[V]) growChild(i int, k keys.Key) int {
	child := n.children[i]
	if len(child.items) >= degree {
		return i
	}
	if i > 0 && len(n.children[i-1].items) >= degree {
		// Borrow from the left sibling through the separator.
		left := n.children[i-1]
		child.items = append(child.items, item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		// Borrow from the right sibling.
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i > 0 {
		i--
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren merges children i and i+1 around separator i.
func (n *node[V]) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendRange calls fn for every item with ge ≤ key ≤ le, in order,
// stopping early if fn returns false.
func (t *Tree[V]) AscendRange(ge, le keys.Key, fn func(k keys.Key, v V) bool) {
	if t.root != nil {
		t.root.ascend(ge, le, fn)
	}
}

func (n *node[V]) ascend(ge, le keys.Key, fn func(k keys.Key, v V) bool) bool {
	i, _ := n.find(ge)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(ge, le, fn) {
			return false
		}
		if le.Less(n.items[i].key) {
			return true
		}
		if !fn(n.items[i].key, n.items[i].value) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(ge, le, fn)
	}
	return true
}

// AscendArc calls fn for every item in the circular arc (lo, hi], handling
// wraparound — the natural query for DHT ownership ranges.
func (t *Tree[V]) AscendArc(lo, hi keys.Key, fn func(k keys.Key, v V) bool) {
	if lo.Compare(hi) < 0 {
		t.AscendRange(lo.Next(), hi, fn)
		return
	}
	if lo.Equal(hi) {
		// Whole ring.
		t.AscendRange(keys.Zero, keys.MaxKey, fn)
		return
	}
	cont := true
	t.AscendRange(lo.Next(), keys.MaxKey, func(k keys.Key, v V) bool {
		cont = fn(k, v)
		return cont
	})
	if cont {
		t.AscendRange(keys.Zero, hi, fn)
	}
}

// Min returns the smallest key, or false on an empty tree.
func (t *Tree[V]) Min() (keys.Key, V, bool) {
	if t.root == nil {
		var zero V
		return keys.Key{}, zero, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	it := n.items[0]
	return it.key, it.value, true
}
