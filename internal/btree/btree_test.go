package btree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"github.com/defragdht/d2/internal/keys"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

func TestSetGetDelete(t *testing.T) {
	var tr Tree[int]
	if _, ok := tr.Get(k(1)); ok {
		t.Error("Get on empty tree")
	}
	if prev, replaced := tr.Set(k(1), 10); replaced {
		t.Errorf("first Set replaced %d", prev)
	}
	if v, ok := tr.Get(k(1)); !ok || v != 10 {
		t.Errorf("Get = (%d, %v)", v, ok)
	}
	if prev, replaced := tr.Set(k(1), 20); !replaced || prev != 10 {
		t.Errorf("replacing Set = (%d, %v)", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if v, ok := tr.Delete(k(1)); !ok || v != 20 {
		t.Errorf("Delete = (%d, %v)", v, ok)
	}
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
	if _, ok := tr.Delete(k(1)); ok {
		t.Error("double delete succeeded")
	}
}

func TestManySequential(t *testing.T) {
	var tr Tree[int]
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Set(k(uint64(i)), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := tr.Get(k(uint64(i))); !ok || v != i {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, ok := tr.Delete(k(uint64(i))); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d after deletes, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(k(uint64(i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 100; i++ {
		tr.Set(k(uint64(i*10)), i)
	}
	var got []int
	tr.AscendRange(k(95), k(250), func(key keys.Key, v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.AscendRange(keys.Zero, keys.MaxKey, func(keys.Key, int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAscendArc(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 10; i++ {
		tr.Set(k(uint64(i*10)), i)
	}
	collect := func(lo, hi keys.Key) []int {
		var out []int
		tr.AscendArc(lo, hi, func(_ keys.Key, v int) bool {
			out = append(out, v)
			return true
		})
		return out
	}
	// Plain arc (15, 45] → keys 20, 30, 40.
	if got := collect(k(15), k(45)); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("plain arc = %v", got)
	}
	// Inclusive upper bound, exclusive lower.
	if got := collect(k(20), k(40)); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("bounds arc = %v", got)
	}
	// Wrapping arc (75, 25] → 80, 90, 0, 10, 20.
	if got := collect(k(75), k(25)); len(got) != 5 || got[0] != 8 || got[4] != 2 {
		t.Errorf("wrap arc = %v", got)
	}
	// Whole ring (lo == hi).
	if got := collect(k(33), k(33)); len(got) != 10 {
		t.Errorf("whole ring arc visited %d", len(got))
	}
	// Early stop across the wrap point.
	count := 0
	tr.AscendArc(k(75), k(25), func(keys.Key, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("wrap early stop visited %d", count)
	}
}

func TestMin(t *testing.T) {
	var tr Tree[int]
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	tr.Set(k(50), 5)
	tr.Set(k(10), 1)
	tr.Set(k(90), 9)
	key, v, ok := tr.Min()
	if !ok || v != 1 || key != k(10) {
		t.Errorf("Min = (%s, %d, %v)", key.Short(), v, ok)
	}
}

// TestRandomizedAgainstMap runs thousands of random operations against a
// reference map and checks full ordered iteration after each phase.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	var tr Tree[uint64]
	ref := map[keys.Key]uint64{}
	universe := make([]keys.Key, 600)
	for i := range universe {
		universe[i] = keys.Random(rng)
	}
	for step := 0; step < 30000; step++ {
		key := universe[rng.IntN(len(universe))]
		switch rng.IntN(3) {
		case 0, 1:
			v := rng.Uint64()
			_, repl := tr.Set(key, v)
			if _, exists := ref[key]; exists != repl {
				t.Fatalf("step %d: Set replaced=%v, ref exists=%v", step, repl, exists)
			}
			ref[key] = v
		case 2:
			v, ok := tr.Delete(key)
			refV, exists := ref[key]
			if ok != exists || (ok && v != refV) {
				t.Fatalf("step %d: Delete=(%d,%v), ref=(%d,%v)", step, v, ok, refV, exists)
			}
			delete(ref, key)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d, ref=%d", step, tr.Len(), len(ref))
		}
	}
	// Final: full iteration must be sorted and match ref exactly.
	var iterated []keys.Key
	tr.AscendRange(keys.Zero, keys.MaxKey, func(key keys.Key, v uint64) bool {
		if ref[key] != v {
			t.Fatalf("iteration value mismatch at %s", key.Short())
		}
		iterated = append(iterated, key)
		return true
	})
	if len(iterated) != len(ref) {
		t.Fatalf("iterated %d keys, ref has %d", len(iterated), len(ref))
	}
	if !sort.SliceIsSorted(iterated, func(i, j int) bool { return iterated[i].Less(iterated[j]) }) {
		t.Fatal("iteration not sorted")
	}
}

func TestRandomArcQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	var tr Tree[int]
	var all []keys.Key
	for i := 0; i < 500; i++ {
		key := keys.Random(rng)
		tr.Set(key, i)
		all = append(all, key)
	}
	for q := 0; q < 200; q++ {
		lo, hi := keys.Random(rng), keys.Random(rng)
		want := 0
		for _, key := range all {
			if key.Between(lo, hi) {
				want++
			}
		}
		got := 0
		tr.AscendArc(lo, hi, func(key keys.Key, _ int) bool {
			if !key.Between(lo, hi) {
				t.Fatalf("arc query returned key outside arc")
			}
			got++
			return true
		})
		if got != want {
			t.Fatalf("arc query %d: got %d keys, want %d", q, got, want)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	ks := make([]keys.Key, 100000)
	for i := range ks {
		ks[i] = keys.Random(rng)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var tr Tree[int]
	for i := 0; i < b.N; i++ {
		tr.Set(ks[i%len(ks)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	var tr Tree[int]
	ks := make([]keys.Key, 100000)
	for i := range ks {
		ks[i] = keys.Random(rng)
		tr.Set(ks[i], i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(ks[i%len(ks)])
	}
}
