package placement

import (
	"fmt"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/ring"
)

func testRing(n int) *ring.Ring {
	var ids []keys.Key
	for i := 0; i < n; i++ {
		ids = append(ids, keys.HashString(fmt.Sprintf("hnode%d", i)))
	}
	return ring.New(ids)
}

func TestHybridSmallFilesStayLocal(t *testing.T) {
	h := NewHybrid(testVol, 256)
	r := testRing(100)
	nodes := map[int]bool{}
	// A small file (all blocks under the cutoff) in one directory.
	for b := uint64(0); b <= 100; b++ {
		nodes[r.SuccessorIndex(h.BlockKey("/docs/small", b))] = true
	}
	if len(nodes) > 2 {
		t.Errorf("small file spread over %d nodes, want locality (≤ 2)", len(nodes))
	}
}

func TestHybridLargeFileTailSpreads(t *testing.T) {
	h := NewHybrid(testVol, 64)
	r := testRing(100)
	tail := map[int]bool{}
	for b := uint64(65); b < 165; b++ {
		tail[r.SuccessorIndex(h.BlockKey("/media/huge.iso", b))] = true
	}
	if len(tail) < 40 {
		t.Errorf("large-file tail on %d nodes, want wide spread", len(tail))
	}
	// The head (and inode) remain local.
	head := map[int]bool{}
	for b := uint64(0); b <= 64; b++ {
		head[r.SuccessorIndex(h.BlockKey("/media/huge.iso", b))] = true
	}
	if len(head) > 2 {
		t.Errorf("large-file head on %d nodes, want locality", len(head))
	}
}

func TestHybridDeterministic(t *testing.T) {
	a := NewHybrid(testVol, 0)
	if a.cutoff != DefaultHybridCutoffBlocks {
		t.Errorf("default cutoff = %d", a.cutoff)
	}
	k1 := a.BlockKey("/f", 1000)
	k2 := a.BlockKey("/f", 1000)
	if k1 != k2 {
		t.Error("hashed tail keys must be stable")
	}
	if a.Strategy() != D2 {
		t.Errorf("Strategy() = %v", a.Strategy())
	}
}
