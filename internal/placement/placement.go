// Package placement implements the three block-to-key strategies the paper
// compares (§7): D2's locality-preserving keys, per-block consistent
// hashing (the "traditional" DHT), and per-file consistent hashing (the
// "traditional-file" DHT). All three produce 64-byte keys in the same key
// space so the rest of the system is shared, exactly as in the paper's
// prototype.
package placement

import (
	"encoding/binary"
	"strings"

	"github.com/defragdht/d2/internal/keys"
)

// Strategy enumerates the placement strategies under comparison.
type Strategy int

// The three systems of the evaluation.
const (
	// D2 assigns locality-preserving keys: blocks of one file are
	// contiguous, files of one directory adjacent, directories ordered by
	// a preorder traversal of the namespace.
	D2 Strategy = iota + 1
	// HashedBlock is the traditional DHT: every block hashes to a
	// uniformly random key (CFS-style).
	HashedBlock
	// HashedFile is the traditional-file DHT: a whole file hashes to one
	// random point; all its blocks are placed there (PAST-style).
	HashedFile
)

func (s Strategy) String() string {
	switch s {
	case D2:
		return "d2"
	case HashedBlock:
		return "traditional"
	case HashedFile:
		return "traditional-file"
	default:
		return "unknown"
	}
}

// Keyer maps a file block to its DHT key under one strategy.
type Keyer interface {
	// BlockKey returns the key for the given block of the file at path.
	// Block 0 is the file's inode/metadata block; data blocks are 1..N.
	BlockKey(path string, block uint64) keys.Key
	// Strategy identifies the strategy.
	Strategy() Strategy
}

// ForStrategy returns a Keyer for the given strategy. D2 keyers carry
// namespace state (directory slot tables), so each volume needs its own.
func ForStrategy(s Strategy, vol keys.VolumeID) Keyer {
	switch s {
	case D2:
		return NewNamespace(vol)
	case HashedBlock:
		return hashedBlockKeyer{}
	case HashedFile:
		return hashedFileKeyer{}
	default:
		panic("placement: unknown strategy")
	}
}

// hashedBlockKeyer implements the traditional DHT: uniform random keys per
// block.
type hashedBlockKeyer struct{}

var _ Keyer = hashedBlockKeyer{}

func (hashedBlockKeyer) Strategy() Strategy { return HashedBlock }

func (hashedBlockKeyer) BlockKey(path string, block uint64) keys.Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], block)
	return keys.HashKey([]byte(path), b[:])
}

// hashedFileKeyer implements the traditional-file DHT: the file's path
// hashes to one random point; block numbers occupy the low key bytes so
// blocks are distinct keys placed (essentially always) on the same node.
type hashedFileKeyer struct{}

var _ Keyer = hashedFileKeyer{}

func (hashedFileKeyer) Strategy() Strategy { return HashedFile }

func (hashedFileKeyer) BlockKey(path string, block uint64) keys.Key {
	k := keys.HashKey([]byte(path))
	return k.WithBlock(block).WithVersion(0)
}

// Namespace implements D2's locality-preserving keys for a volume. It
// assigns each directory entry a 2-byte slot in creation order, as D2-FS
// does when files are added to directories (§4.2), and remembers the
// assignment so a path always encodes to the same key.
//
// Namespace is not safe for concurrent use; the FS layer serializes volume
// mutations (single-writer volumes, §3).
type Namespace struct {
	vol  keys.VolumeID
	dirs map[string]*dirSlots
}

var _ Keyer = (*Namespace)(nil)

type dirSlots struct {
	slots map[string]uint16
	next  uint16
}

// NewNamespace creates an empty namespace for the volume.
func NewNamespace(vol keys.VolumeID) *Namespace {
	return &Namespace{vol: vol, dirs: make(map[string]*dirSlots)}
}

// Strategy identifies the D2 strategy.
func (ns *Namespace) Strategy() Strategy { return D2 }

// SplitPath splits a slash-separated path into components, dropping empty
// segments.
func SplitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// slotFor returns the 2-byte slot of name within dir, assigning the next
// unused value on first use.
func (ns *Namespace) slotFor(dir, name string) uint16 {
	d := ns.dirs[dir]
	if d == nil {
		d = &dirSlots{slots: make(map[string]uint16), next: 1}
		ns.dirs[dir] = d
	}
	if s, ok := d.slots[name]; ok {
		return s
	}
	s := d.next
	d.next++
	d.slots[name] = s
	return s
}

// PathCode encodes the path's directory slots, assigning new slots as
// needed and hashing levels beyond the 12-level budget.
func (ns *Namespace) PathCode(path string) keys.PathCode {
	comps := SplitPath(path)
	n := len(comps)
	depth := n
	if depth > keys.MaxPathDepth {
		depth = keys.MaxPathDepth
	}
	slots := make([]uint16, depth)
	dir := ""
	for i := 0; i < depth; i++ {
		slots[i] = ns.slotFor(dir, comps[i])
		dir = dir + "/" + comps[i]
	}
	return keys.NewPathCode(slots, comps[depth:])
}

// BlockKey returns the locality-preserving key for a block of the file at
// path.
func (ns *Namespace) BlockKey(path string, block uint64) keys.Key {
	return keys.Encode(ns.vol, ns.PathCode(path), block, 0)
}

// URLNamespace implements D2 keys for applications that cannot consult
// parent directories, such as a web cache: each path component is encoded
// as a 2-byte hash (§4.2 footnote 2). It is stateless and safe for
// concurrent use.
type URLNamespace struct {
	vol keys.VolumeID
}

var _ Keyer = URLNamespace{}

// NewURLNamespace creates a hash-slot namespace for the volume.
func NewURLNamespace(vol keys.VolumeID) URLNamespace { return URLNamespace{vol: vol} }

// Strategy identifies the D2 strategy.
func (URLNamespace) Strategy() Strategy { return D2 }

// BlockKey returns the locality key with hashed per-component slots.
func (u URLNamespace) BlockKey(path string, block uint64) keys.Key {
	return keys.Encode(u.vol, keys.HashedPathCode(SplitPath(path)), block, 0)
}
