package placement

import (
	"encoding/binary"

	"github.com/defragdht/d2/internal/keys"
)

// DefaultHybridCutoffBlocks places the first 2 MB of every file with
// locality keys.
const DefaultHybridCutoffBlocks = 256

// Hybrid implements the paper's future-work placement (§11): it combines
// locality-preserving and consistent-hashing placement so that small files
// keep D2's availability and lookup locality while large files regain the
// parallel download bandwidth of a traditional DHT. The first
// CutoffBlocks data blocks of each file (and all metadata) use locality
// keys; blocks past the cutoff hash to uniformly random nodes.
type Hybrid struct {
	ns *Namespace
	// CutoffBlocks is the number of leading data blocks kept local.
	cutoff uint64
}

var _ Keyer = (*Hybrid)(nil)

// NewHybrid creates a hybrid keyer for the volume. cutoffBlocks ≤ 0 takes
// the default (256 blocks = 2 MB).
func NewHybrid(vol keys.VolumeID, cutoffBlocks int) *Hybrid {
	if cutoffBlocks <= 0 {
		cutoffBlocks = DefaultHybridCutoffBlocks
	}
	return &Hybrid{ns: NewNamespace(vol), cutoff: uint64(cutoffBlocks)}
}

// Strategy identifies hybrid as a D2 variant (it shares the locality key
// space; only large-file tails leave it).
func (h *Hybrid) Strategy() Strategy { return D2 }

// BlockKey returns a locality key for metadata and early blocks, and a
// hashed key for blocks past the cutoff.
func (h *Hybrid) BlockKey(path string, block uint64) keys.Key {
	if block <= h.cutoff {
		return h.ns.BlockKey(path, block)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], block)
	return keys.HashKey([]byte(path), b[:])
}
