package placement

import (
	"fmt"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/ring"
)

var testVol = keys.NewVolumeID([]byte("pk"), "test")

func TestSplitPath(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"/a/b/c", 3},
		{"a/b", 2},
		{"/", 0},
		{"", 0},
		{"//a//b/", 2},
	}
	for _, tt := range tests {
		if got := SplitPath(tt.in); len(got) != tt.want {
			t.Errorf("SplitPath(%q) = %v, want %d components", tt.in, got, tt.want)
		}
	}
}

func TestNamespaceStableKeys(t *testing.T) {
	ns := NewNamespace(testVol)
	k1 := ns.BlockKey("/home/alice/doc.txt", 1)
	k2 := ns.BlockKey("/home/alice/doc.txt", 1)
	if k1 != k2 {
		t.Error("same path+block must produce the same key")
	}
	if k1 == ns.BlockKey("/home/alice/doc.txt", 2) {
		t.Error("different blocks must produce different keys")
	}
	if k1 == ns.BlockKey("/home/alice/other.txt", 1) {
		t.Error("different files must produce different keys")
	}
}

func TestNamespaceDirectoryLocality(t *testing.T) {
	// All blocks of files in one directory must be mutually closer than
	// blocks of files in a different top-level directory.
	ns := NewNamespace(testVol)
	var dirA, dirB []keys.Key
	for i := 0; i < 5; i++ {
		dirA = append(dirA, ns.BlockKey(fmt.Sprintf("/a/f%d", i), 1))
		dirB = append(dirB, ns.BlockKey(fmt.Sprintf("/b/f%d", i), 1))
	}
	// Every key in dirA shares the first-level slot; compare to dirB.
	for _, ka := range dirA {
		for _, kb := range dirB {
			if ka.Slot(0) == kb.Slot(0) {
				t.Fatal("files of /a and /b share first-level slot")
			}
		}
	}
	// Keys of dirA files must all fall between the smallest and largest
	// dirA key without any dirB key in between.
	minA, maxA := dirA[0], dirA[0]
	for _, k := range dirA {
		if k.Less(minA) {
			minA = k
		}
		if maxA.Less(k) {
			maxA = k
		}
	}
	for _, kb := range dirB {
		if minA.Less(kb) && kb.Less(maxA) {
			t.Fatalf("key of /b file interleaves inside /a's key range")
		}
	}
}

func TestNamespaceBlocksContiguous(t *testing.T) {
	ns := NewNamespace(testVol)
	prev := ns.BlockKey("/x/y", 0)
	for b := uint64(1); b < 10; b++ {
		cur := ns.BlockKey("/x/y", b)
		if !prev.Less(cur) {
			t.Fatalf("block %d not after block %d", b, b-1)
		}
		prev = cur
	}
}

func TestNamespaceDeepPaths(t *testing.T) {
	ns := NewNamespace(testVol)
	deep := "/a/b/c/d/e/f/g/h/i/j/k/l/m/n/o"
	k1 := ns.BlockKey(deep, 1)
	k2 := ns.BlockKey(deep, 1)
	if k1 != k2 {
		t.Error("deep paths must still be stable")
	}
	other := "/a/b/c/d/e/f/g/h/i/j/k/l/m/n/p"
	if k1 == ns.BlockKey(other, 1) {
		t.Error("deep siblings must differ (remainder hash)")
	}
}

func TestHashedBlockSpreads(t *testing.T) {
	keyer := ForStrategy(HashedBlock, testVol)
	// Keys of consecutive blocks must land on different ring nodes almost
	// always; measure with a 100-node ring.
	var ids []keys.Key
	for i := 0; i < 100; i++ {
		ids = append(ids, keys.HashString(fmt.Sprintf("node%d", i)))
	}
	r := ring.New(ids)
	nodes := map[int]bool{}
	for b := uint64(0); b < 50; b++ {
		nodes[r.SuccessorIndex(keyer.BlockKey("/file", b))] = true
	}
	if len(nodes) < 30 {
		t.Errorf("50 hashed blocks landed on %d nodes, want ~40+", len(nodes))
	}
}

func TestHashedFileKeepsBlocksTogether(t *testing.T) {
	keyer := ForStrategy(HashedFile, testVol)
	var ids []keys.Key
	for i := 0; i < 100; i++ {
		ids = append(ids, keys.HashString(fmt.Sprintf("node%d", i)))
	}
	r := ring.New(ids)
	nodes := map[int]bool{}
	for b := uint64(0); b < 50; b++ {
		nodes[r.SuccessorIndex(keyer.BlockKey("/file", b))] = true
	}
	if len(nodes) > 2 {
		t.Errorf("50 blocks of one file landed on %d nodes, want 1 (or 2 at a boundary)", len(nodes))
	}
	// Different files still spread.
	fileNodes := map[int]bool{}
	for f := 0; f < 50; f++ {
		fileNodes[r.SuccessorIndex(keyer.BlockKey(fmt.Sprintf("/file%d", f), 0))] = true
	}
	if len(fileNodes) < 30 {
		t.Errorf("50 hashed files landed on %d nodes, want ~40+", len(fileNodes))
	}
}

func TestD2KeepsDirectoryOnFewNodes(t *testing.T) {
	ns := NewNamespace(testVol)
	var ids []keys.Key
	for i := 0; i < 100; i++ {
		ids = append(ids, keys.HashString(fmt.Sprintf("node%d", i)))
	}
	r := ring.New(ids)
	nodes := map[int]bool{}
	for f := 0; f < 20; f++ {
		for b := uint64(0); b < 5; b++ {
			nodes[r.SuccessorIndex(ns.BlockKey(fmt.Sprintf("/proj/src/f%02d", f), b))] = true
		}
	}
	// 100 blocks that are contiguous in key space hit very few of the 100
	// random nodes.
	if len(nodes) > 3 {
		t.Errorf("directory's 100 contiguous blocks landed on %d nodes, want ≤ 3", len(nodes))
	}
}

func TestURLNamespace(t *testing.T) {
	u := NewURLNamespace(testVol)
	k1 := u.BlockKey("/com.yahoo.www/index.html", 1)
	k2 := u.BlockKey("/com.yahoo.www/index.html", 1)
	if k1 != k2 {
		t.Error("URL keys must be deterministic")
	}
	k3 := u.BlockKey("/com.yahoo.www/other.html", 1)
	if k1.Slot(0) != k3.Slot(0) {
		t.Error("same-domain objects must share the first slot")
	}
	k4 := u.BlockKey("/org.example/whatever", 1)
	if k1.Slot(0) == k4.Slot(0) {
		t.Error("different domains should (almost always) differ in slot 0")
	}
}

func TestForStrategy(t *testing.T) {
	for _, s := range []Strategy{D2, HashedBlock, HashedFile} {
		keyer := ForStrategy(s, testVol)
		if keyer.Strategy() != s {
			t.Errorf("ForStrategy(%v).Strategy() = %v", s, keyer.Strategy())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown strategy must panic")
		}
	}()
	ForStrategy(Strategy(99), testVol)
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		D2: "d2", HashedBlock: "traditional", HashedFile: "traditional-file", Strategy(0): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, got, want)
		}
	}
}
