package transport

import (
	"context"
	"errors"
	"time"

	"github.com/defragdht/d2/internal/obs"
)

// rpcKind indexes the per-RPC-type metric arrays. Kinds are derived from
// the request message type; responses are attributed to their request's
// kind.
type rpcKind int

const (
	kindPing rpcKind = iota
	kindFindSucc
	kindNeighbors
	kindNotify
	kindPut
	kindGet
	kindMultiGet
	kindFetchRange
	kindRemove
	kindLoad
	kindSplit
	kindRange
	kindPutPtr
	kindSample
	kindStats
	kindTraceFetch
	kindHealth
	kindCensus
	kindOther
	numKinds
)

var kindNames = [numKinds]string{
	"ping", "find_succ", "neighbors", "notify", "put", "get",
	"multi_get", "fetch_range", "remove", "load", "split", "range",
	"put_ptr", "sample", "stats", "trace_fetch", "health", "census",
	"other",
}

// kindOf classifies a request message.
func kindOf(m Message) rpcKind {
	switch m.(type) {
	case *PingReq:
		return kindPing
	case *FindSuccReq:
		return kindFindSucc
	case *NeighborsReq:
		return kindNeighbors
	case *NotifyReq:
		return kindNotify
	case *PutReq:
		return kindPut
	case *GetReq:
		return kindGet
	case *MultiGetReq:
		return kindMultiGet
	case *FetchRangeReq:
		return kindFetchRange
	case *RemoveReq:
		return kindRemove
	case *LoadReq:
		return kindLoad
	case *SplitReq:
		return kindSplit
	case *RangeReq:
		return kindRange
	case *PutPtrReq:
		return kindPutPtr
	case *SampleReq:
		return kindSample
	case *StatsReq:
		return kindStats
	case *TraceFetchReq:
		return kindTraceFetch
	case *HealthReq:
		return kindHealth
	case *CensusReq:
		return kindCensus
	default:
		return kindOther
	}
}

// wireKinds maps a wire type byte to its rpcKind (responses count under
// their request's kind), for metric attribution without a type switch on
// the decode path.
var wireKinds = [numWireTypes]rpcKind{
	tPingReq: kindPing, tPingResp: kindPing,
	tFindSuccReq: kindFindSucc, tFindSuccResp: kindFindSucc,
	tNeighborsReq: kindNeighbors, tNeighborsResp: kindNeighbors,
	tNotifyReq: kindNotify, tNotifyResp: kindNotify,
	tPutReq: kindPut, tPutResp: kindPut,
	tGetReq: kindGet, tGetResp: kindGet,
	tRemoveReq: kindRemove, tRemoveResp: kindRemove,
	tLoadReq: kindLoad, tLoadResp: kindLoad,
	tSplitReq: kindSplit, tSplitResp: kindSplit,
	tRangeReq: kindRange, tRangeResp: kindRange,
	tMultiGetReq: kindMultiGet, tMultiGetResp: kindMultiGet,
	tFetchRangeReq: kindFetchRange, tFetchRangeResp: kindFetchRange,
	tPutPtrReq: kindPutPtr, tPutPtrResp: kindPutPtr,
	tSampleReq: kindSample, tSampleResp: kindSample,
	tStatsReq: kindStats, tStatsResp: kindStats,
	tTraceFetchReq: kindTraceFetch, tTraceFetchResp: kindTraceFetch,
	tHealthReq: kindHealth, tHealthResp: kindHealth,
	tCensusReq: kindCensus, tCensusResp: kindCensus,
	tErrResp: kindOther,
}

// payloadBytes returns the block-data bytes a message carries — the
// transport-independent "useful bytes" measure shared by the mem and TCP
// transports (the TCP transport additionally counts real wire bytes).
func payloadBytes(m Message) int64 {
	switch v := m.(type) {
	case *PutReq:
		return int64(len(v.Data))
	case *GetResp:
		return int64(len(v.Data))
	case *MultiGetResp:
		var n int64
		for i := range v.Items {
			n += int64(len(v.Items[i].Data))
		}
		return n
	case *FetchRangeResp:
		var n int64
		for i := range v.Items {
			n += int64(len(v.Items[i].Data))
		}
		return n
	case *RangeResp:
		var n int64
		for i := range v.Items {
			n += int64(len(v.Items[i].Data))
		}
		return n
	case *StatsResp:
		return int64(len(v.SnapshotJSON))
	case *HealthResp:
		return int64(len(v.StatusJSON) + len(v.RatesJSON))
	case *CensusResp:
		return int64(len(v.ReportJSON))
	default:
		return 0
	}
}

// RPCMetrics instruments one transport endpoint against an obs.Registry:
// per-RPC-type call counts, error counts, and latency histograms on the
// client side; served counts and a pipelining-depth gauge on the server
// side; payload byte counters both ways; and dial/retry/timeout counters
// for the TCP path. All methods are safe on a nil receiver (metrics off),
// so the transports carry a single pointer and no conditional wiring.
type RPCMetrics struct {
	calls   [numKinds]*obs.Counter
	errs    [numKinds]*obs.Counter
	latency [numKinds]*obs.Histogram
	served  [numKinds]*obs.Counter

	bytesSent *obs.Counter
	bytesRecv *obs.Counter

	inflight *obs.Gauge     // concurrent inbound handlers (pipelining depth)
	depth    *obs.Histogram // observed depth at each inbound request

	dials    *obs.Counter
	retries  *obs.Counter
	timeouts *obs.Counter
	wireIn   *obs.Counter
	wireOut  *obs.Counter

	poolConns *obs.Gauge   // live pooled connections across peers
	evictions *obs.Counter // idle connections closed by the janitor
	failfast  *obs.Counter // calls refused during a peer's backoff window
}

// NewRPCMetrics registers the transport metrics on reg.
func NewRPCMetrics(reg *obs.Registry) *RPCMetrics {
	m := &RPCMetrics{
		bytesSent: reg.Counter(`d2_rpc_payload_bytes_total{dir="sent"}`),
		bytesRecv: reg.Counter(`d2_rpc_payload_bytes_total{dir="recv"}`),
		inflight:  reg.Gauge("d2_rpc_server_inflight"),
		depth:     reg.Histogram("d2_rpc_server_pipeline_depth", obs.CountBuckets),
		dials:     reg.Counter("d2_tcp_dials_total"),
		retries:   reg.Counter("d2_tcp_retries_total"),
		timeouts:  reg.Counter("d2_rpc_timeouts_total"),
		wireIn:    reg.Counter(`d2_tcp_wire_bytes_total{dir="read"}`),
		wireOut:   reg.Counter(`d2_tcp_wire_bytes_total{dir="written"}`),
		poolConns: reg.Gauge("d2_tcp_pool_conns"),
		evictions: reg.Counter("d2_tcp_pool_evictions_total"),
		failfast:  reg.Counter("d2_tcp_pool_failfast_total"),
	}
	for k := rpcKind(0); k < numKinds; k++ {
		label := `{rpc="` + kindNames[k] + `"}`
		m.calls[k] = reg.Counter("d2_rpc_client_total" + label)
		m.errs[k] = reg.Counter("d2_rpc_client_errors_total" + label)
		m.latency[k] = reg.Histogram("d2_rpc_client_latency_ns"+label, obs.LatencyBuckets)
		m.served[k] = reg.Counter("d2_rpc_server_total" + label)
	}
	return m
}

// startCall records an outbound request and returns its kind and start
// time for finishCall.
func (m *RPCMetrics) startCall(req Message) (rpcKind, time.Time) {
	if m == nil {
		return kindOther, time.Time{}
	}
	k := kindOf(req)
	m.calls[k].Inc()
	if n := payloadBytes(req); n > 0 {
		m.bytesSent.Add(uint64(n))
	}
	return k, time.Now()
}

// finishCall records an outbound call's outcome.
func (m *RPCMetrics) finishCall(k rpcKind, start time.Time, resp Message, err error) {
	if m == nil {
		return
	}
	m.latency[k].Observe(int64(time.Since(start)))
	if err != nil {
		m.errs[k].Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			m.timeouts.Inc()
		}
		return
	}
	if n := payloadBytes(resp); n > 0 {
		m.bytesRecv.Add(uint64(n))
	}
}

// serveStart records one inbound request beginning service (pair with
// serveEnd). It reports the pipelining depth observed at arrival (how
// many handlers were already running, plus this one).
func (m *RPCMetrics) serveStart(req Message) {
	if m == nil {
		return
	}
	m.served[kindOf(req)].Inc()
	m.depth.Observe(m.inflight.Value() + 1)
	m.inflight.Add(1)
}

// serveEnd records one inbound request finishing service.
func (m *RPCMetrics) serveEnd() {
	if m != nil {
		m.inflight.Add(-1)
	}
}

// dialed counts one TCP dial attempt.
func (m *RPCMetrics) dialed() {
	if m != nil {
		m.dials.Inc()
	}
}

// retried counts one TCP call retry after a dead connection.
func (m *RPCMetrics) retried() {
	if m != nil {
		m.retries.Inc()
	}
}

// wireRead / wireWritten count raw TCP bytes. The framing layer reports
// whole frames (a conn wrapper would defeat writev vectoring).
func (m *RPCMetrics) wireRead(n int) {
	if m != nil && n > 0 {
		m.wireIn.Add(uint64(n))
	}
}

func (m *RPCMetrics) wireWritten(n int) {
	if m != nil && n > 0 {
		m.wireOut.Add(uint64(n))
	}
}

// connAdded / connRemoved track the pooled-connection gauge.
func (m *RPCMetrics) connAdded() {
	if m != nil {
		m.poolConns.Add(1)
	}
}

func (m *RPCMetrics) connRemoved() {
	if m != nil {
		m.poolConns.Add(-1)
	}
}

// evicted counts one idle connection closed by the pool janitor.
func (m *RPCMetrics) evicted() {
	if m != nil {
		m.evictions.Inc()
	}
}

// failedFast counts one call refused during a peer's dial-backoff window.
func (m *RPCMetrics) failedFast() {
	if m != nil {
		m.failfast.Inc()
	}
}
