package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/obs"
)

func servePing(t *TCPTransport) {
	t.Serve(func(context.Context, Addr, Message) (Message, error) {
		return &PingResp{}, nil
	})
}

// TestPoolReconnectAfterPeerRestart kills a peer's listener, checks that
// calls fail fast during the backoff window instead of queueing on the
// dialer, restarts the peer on the same address, and checks that calls
// succeed again once the backoff expires.
func TestPoolReconnectAfterPeerRestart(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servePing(srv)
	addr := srv.Addr()

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	reg := obs.New()
	m := NewRPCMetrics(reg)
	cli.UseMetrics(m)
	const backoffBase = 400 * time.Millisecond
	cli.SetPoolConfig(2, backoffBase, backoffBase, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := Expect[*PingResp](cli.Call(ctx, addr, &PingReq{})); err != nil {
		t.Fatalf("call before kill: %v", err)
	}

	// Kill the peer. The pooled connection dies; the next call redials,
	// gets connection-refused, and opens the backoff window.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(ctx, addr, &PingReq{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to dead peer: %v, want ErrUnreachable", err)
	}

	// Inside the window calls must be refused immediately — no dial.
	dialsBefore := m.dials.Value()
	start := time.Now()
	_, err = cli.Call(ctx, addr, &PingReq{})
	if !errors.Is(err, ErrUnreachable) || !strings.Contains(err.Error(), "backoff") {
		t.Fatalf("call during backoff: %v, want fail-fast ErrUnreachable", err)
	}
	if el := time.Since(start); el > backoffBase/2 {
		t.Fatalf("fail-fast call took %v", el)
	}
	if d := m.dials.Value(); d != dialsBefore {
		t.Fatalf("fail-fast call dialed anyway (%d -> %d)", dialsBefore, d)
	}
	if m.failfast.Value() == 0 {
		t.Fatal("failfast counter not incremented")
	}

	// Restart the peer on the same address and wait out the backoff; the
	// pool must dial fresh and succeed.
	var srv2 *TCPTransport
	for i := 0; ; i++ {
		srv2, err = ListenTCP(string(addr))
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer srv2.Close()
	servePing(srv2)

	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err = Expect[*PingResp](cli.Call(ctx, addr, &PingReq{})); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after peer restart: %v", err)
		}
		time.Sleep(backoffBase / 4)
	}
}

// TestPoolKillMidBatch kills the peer while a batch of calls is blocked
// in its handlers; every caller must get an error promptly rather than
// hanging on the dead connections.
func TestPoolKillMidBatch(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var arrived atomic.Int64
	srv.Serve(func(context.Context, Addr, Message) (Message, error) {
		arrived.Add(1)
		<-release
		return &PingResp{}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 16
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make(chan error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cli.Call(ctx, srv.Addr(), &PingReq{})
			errs <- err
		}()
	}
	for arrived.Load() < calls {
		if ctx.Err() != nil {
			t.Fatalf("only %d/%d calls arrived", arrived.Load(), calls)
		}
		time.Sleep(time.Millisecond)
	}

	// Close the server concurrently (Close waits for the stuck handlers,
	// which release only after the clients have seen their errors).
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Error("call survived peer death")
		} else if errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("call hung until deadline: %v", err)
		}
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close did not return")
	}
}

// TestPoolGrowsUnderLoad checks least-loaded dispatch's other half: when
// every stream is busy the pool dials extra connections up to its size.
func TestPoolGrowsUnderLoad(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := make(chan struct{})
	srv.Serve(func(context.Context, Addr, Message) (Message, error) {
		<-release
		return &PingResp{}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const size = 3
	cli.SetPoolConfig(size, 0, 0, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli.Call(ctx, srv.Addr(), &PingReq{})
		}()
	}
	defer wg.Wait()
	defer close(release) // unblock handlers first, then join the callers

	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		inbound := len(srv.serving)
		srv.mu.Unlock()
		if inbound > 1 {
			if inbound > size {
				t.Fatalf("pool grew past its size: %d conns", inbound)
			}
			return // grew beyond a single stream, capped at size
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never grew under load")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolEvictsIdle checks the janitor: connections idle past the
// configured timeout are closed (and counted), and the next call simply
// redials.
func TestPoolEvictsIdle(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	servePing(srv)

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	m := NewRPCMetrics(obs.New())
	cli.UseMetrics(m)
	cli.SetPoolConfig(2, 0, 0, 50*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := Expect[*PingResp](cli.Call(ctx, srv.Addr(), &PingReq{})); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for m.evictions.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := m.poolConns.Value(); g != 0 {
		t.Fatalf("pool gauge = %d after eviction, want 0", g)
	}

	if _, err := Expect[*PingResp](cli.Call(ctx, srv.Addr(), &PingReq{})); err != nil {
		t.Fatalf("call after eviction: %v", err)
	}
}
