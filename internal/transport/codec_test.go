package transport

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/wire"
)

// testKey builds a deterministic key from a seed byte.
func testKey(seed byte) (k keys.Key) {
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

func testPeer(seed byte) PeerInfo {
	return PeerInfo{ID: testKey(seed), Addr: Addr(fmt.Sprintf("10.0.0.%d:7000", seed))}
}

// encodeFrame flattens one message into complete frame bytes (length
// prefix included) using the production encoder.
func encodeFrame(t testing.TB, tag, trace, span uint64, from Addr, m Message, crc bool) []byte {
	t.Helper()
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encode(tag, trace, span, from, m, crc); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	return e.appendBytes(nil)
}

// decodeFrame parses complete frame bytes back into a message.
func decodeFrame(frame []byte) (frameHeader, Message, error) {
	if len(frame) < 4 {
		return frameHeader{}, nil, wire.ErrTruncated
	}
	if got := int(wire.U32(frame, 0)); got != len(frame)-4 {
		return frameHeader{}, nil, fmt.Errorf("length prefix %d != %d", got, len(frame)-4)
	}
	h, err := parseFrame(frame[4:])
	if err != nil {
		return h, nil, err
	}
	m, err := decodeMessage(h.typ, h.body)
	return h, m, err
}

// sampleMessages covers every wire type with representative field values,
// including payloads above and below the vectoring threshold.
func sampleMessages() []Message {
	big := bytes.Repeat([]byte{0xEE}, vectorMin*3) // forces writev cuts
	return []Message{
		&PingReq{},
		&PingResp{Self: testPeer(1)},
		&FindSuccReq{Key: testKey(2)},
		&FindSuccResp{Done: true, Node: testPeer(3), Pred: testPeer(4)},
		&NeighborsReq{},
		&NeighborsResp{Self: testPeer(5), Pred: testPeer(6), Succs: []PeerInfo{testPeer(7), testPeer(8), testPeer(9)}},
		&NotifyReq{Cand: testPeer(10)},
		&NotifyResp{},
		&PutReq{Key: testKey(11), Data: []byte("small-block"), Replicate: true, TTL: 3600},
		&PutReq{Key: testKey(12), Data: big},
		&PutResp{},
		&GetReq{Key: testKey(13)},
		&GetResp{Found: true, Data: []byte("payload")},
		&GetResp{Redirect: "10.9.9.9:7000"},
		&RemoveReq{Key: testKey(14), DelaySec: 30, Replicate: true},
		&RemoveResp{},
		&LoadReq{},
		&LoadResp{Self: testPeer(15), RespBytes: 1 << 30, StoredBytes: 42},
		&SplitReq{},
		&SplitResp{Ok: true, Median: testKey(16)},
		&RangeReq{Lo: testKey(17), Hi: testKey(18), WithData: true, WithPointers: true, Limit: 128},
		&RangeResp{Items: []RangeItem{
			{Key: testKey(19), Size: 7, Data: []byte("range-a")},
			{Key: testKey(20), Size: int64(len(big)), Data: big, Pointer: "10.1.1.1:7000"},
		}},
		&MultiGetReq{Keys: []keys.Key{testKey(21), testKey(22), testKey(23)}},
		&MultiGetResp{Items: []BatchItem{
			{Key: testKey(24), Found: true, Data: []byte("mg")},
			{Key: testKey(25), Redirect: "10.2.2.2:7000"},
		}},
		&FetchRangeReq{Lo: testKey(26), Hi: testKey(27), Limit: 64},
		&FetchRangeResp{More: true, Items: []BatchItem{
			{Key: testKey(28), Found: true, Data: big},
			{Key: testKey(29), Found: true, Data: []byte("fr")},
		}},
		&PutPtrReq{Key: testKey(30), Target: "10.3.3.3:7000", Size: 4096},
		&PutPtrResp{},
		&SampleReq{Hops: 5},
		&SampleResp{Peer: testPeer(31)},
		&StatsReq{},
		&StatsResp{Self: testPeer(32), Pred: testPeer(33), RespBytes: 1, StoredBytes: 2, Blocks: 3, SnapshotJSON: []byte(`{"x":1}`)},
		&TraceFetchReq{Trace: 0xDEADBEEF, Limit: 100},
		&TraceFetchResp{Spans: []tracing.Span{
			{Trace: 1, ID: 2, Parent: 3, Name: "rpc.get", Node: "n1", Start: 1000, Dur: 50, Attrs: "k=v"},
			{Trace: 1, ID: 4, Name: "store.read", Node: "n2", Start: 1050, Dur: 10},
		}},
		&ErrResp{Err: "not the owner"},
	}
}

// TestCodecRoundTripAll encodes every message type and decodes it back,
// checking header fields and full struct equality, with and without CRC.
func TestCodecRoundTripAll(t *testing.T) {
	for _, crc := range []bool{false, true} {
		for _, m := range sampleMessages() {
			name := fmt.Sprintf("%T/crc=%v", m, crc)
			frame := encodeFrame(t, 7, 0xABCD, 0x1234, "127.0.0.1:9999", m, crc)
			h, got, err := decodeFrame(frame)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if h.tag != 7 || h.trace != 0xABCD || h.span != 0x1234 || string(h.from) != "127.0.0.1:9999" {
				t.Fatalf("%s: header = %+v", name, h)
			}
			if wantCRC := h.flags&flagCRC != 0; wantCRC != crc {
				t.Fatalf("%s: crc flag = %v", name, wantCRC)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s:\n got %+v\nwant %+v", name, got, m)
			}
		}
	}
}

// TestCodecRoundTripRecycled re-decodes into recycled pooled structs to
// prove no stale field survives reuse (the aliasing hazard of pooling).
func TestCodecRoundTripRecycled(t *testing.T) {
	wide := &NeighborsResp{Self: testPeer(40), Pred: testPeer(41), Succs: []PeerInfo{testPeer(42), testPeer(43), testPeer(44), testPeer(45)}}
	narrow := &NeighborsResp{Self: testPeer(50), Pred: testPeer(51), Succs: []PeerInfo{testPeer(52)}}
	for i := 0; i < 4; i++ {
		for _, m := range []Message{wide, narrow} {
			frame := encodeFrame(t, 1, 0, 0, "a", m, false)
			_, got, err := decodeFrame(frame)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round %d:\n got %+v\nwant %+v", i, got, m)
			}
			recycleMessage(got)
		}
	}
}

// goldenFrames pins the v1 wire encoding byte for byte. If one of these
// fails, the change is a wire-protocol break: bump wireVersion and add a
// new fixture set instead of editing these.
var goldenFrames = []struct {
	name string
	msg  Message
	hex  string
}{
	{
		name: "PingReq",
		msg:  &PingReq{},
		hex:  "0000001d01000101000000000000002a000000000000000000000000000000006e",
	},
	{
		name: "GetReq",
		msg:  &GetReq{Key: testKey(3)},
		hex: "0000005d01000b01000000000000002a000000000000000000000000000000006e" +
			"030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f2021222324" +
			"25262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142",
	},
	{
		name: "PutReq",
		msg:  &PutReq{Key: testKey(5), Data: []byte("block"), Replicate: true, TTL: 60},
		hex: "0000006f01000901000000000000002a000000000000000000000000000000006e" +
			"05060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223242526" +
			"2728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f4041424344" +
			"01000000000000003c00000005626c6f636b",
	},
	{
		name: "FindSuccResp",
		msg:  &FindSuccResp{Done: true, Node: testPeer(1), Pred: testPeer(2)},
		hex: "000000bc01000401000000000000002a000000000000000000000000000000006e01" +
			"0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122" +
			"232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f40" +
			"000d31302e302e302e313a37303030" +
			"02030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223" +
			"2425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f4041" +
			"000d31302e302e302e323a37303030",
	},
	{
		name: "FetchRangeResp",
		msg:  &FetchRangeResp{More: true, Items: []BatchItem{{Key: testKey(9), Found: true, Data: []byte("it")}}},
		hex: "0000006b01001801000000000000002a000000000000000000000000000000006e" +
			"0100000001" +
			"090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223242526272829" +
			"2a2b2c2d2e2f303132333435363738393a3b3c3d3e3f4041424344454647" +
			"48010000000000026974",
	},
	{
		name: "ErrResp",
		msg:  &ErrResp{Err: "boom"},
		hex:  "0000002501002101000000000000002a000000000000000000000000000000006e00000004626f6f6d",
	},
}

// TestCodecGoldenV1 checks pinned fixtures; regenerate with -run
// TestCodecGoldenV1 -v on mismatch and inspect the diff before accepting.
func TestCodecGoldenV1(t *testing.T) {
	for _, g := range goldenFrames {
		frame := encodeFrame(t, 42, 0, 0, "n", g.msg, false)
		if g.hex == "" {
			t.Errorf("%s: missing fixture; actual: %x", g.name, frame)
			continue
		}
		want, err := hex.DecodeString(strings.ReplaceAll(g.hex, "\n", ""))
		if err != nil {
			t.Fatalf("%s: bad fixture hex: %v", g.name, err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%s: encoding changed (wire break!)\n got %x\nwant %x", g.name, frame, want)
		}
		// And the fixture must still decode to the same message.
		_, m, err := decodeFrame(want)
		if err != nil {
			t.Fatalf("%s: fixture no longer decodes: %v", g.name, err)
		}
		if !reflect.DeepEqual(m, g.msg) {
			t.Errorf("%s: fixture decodes to %+v, want %+v", g.name, m, g.msg)
		}
	}
}

// TestCodecTruncatedRejected checks that every strict prefix of a valid
// frame is rejected with an error — never a panic, never a bogus message.
func TestCodecTruncatedRejected(t *testing.T) {
	for _, m := range sampleMessages() {
		frame := encodeFrame(t, 9, 1, 2, "127.0.0.1:7000", m, true)
		for cut := 4; cut < len(frame); cut++ {
			if h, err := parseFrame(frame[4:cut]); err == nil {
				if _, err := decodeMessage(h.typ, h.body); err == nil {
					t.Fatalf("%T: prefix of %d/%d bytes decoded successfully", m, cut, len(frame))
				}
			}
		}
	}
}

// TestCodecMalformedRejected covers the corrupt-frame cases one at a time.
func TestCodecMalformedRejected(t *testing.T) {
	valid := encodeFrame(t, 1, 0, 0, "a", &GetReq{Key: testKey(1)}, false)

	t.Run("wrong version", func(t *testing.T) {
		f := append([]byte(nil), valid...)
		f[4] = wireVersion + 1
		if _, _, err := decodeFrame(f); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		for _, typ := range []byte{tInvalid, numWireTypes, 0xFF} {
			f := append([]byte(nil), valid...)
			f[6] = typ
			if _, _, err := decodeFrame(f); !errors.Is(err, wire.ErrMalformed) {
				t.Fatalf("type %d: err = %v", typ, err)
			}
		}
	})
	t.Run("crc mismatch", func(t *testing.T) {
		f := encodeFrame(t, 1, 0, 0, "a", &PutReq{Key: testKey(2), Data: []byte("block")}, true)
		f[len(f)-5] ^= 0x40 // flip a payload bit under the CRC
		if _, _, err := decodeFrame(f); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		f := append([]byte(nil), valid...)
		f = append(f, 0xAA)
		wire.PutU32(f, 0, uint32(len(f)-4))
		if _, _, err := decodeFrame(f); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("hostile count", func(t *testing.T) {
		// A MultiGetReq claiming 2^32-1 keys in a tiny body must be
		// rejected by the count guard without attempting the allocation.
		body := wire.AppendU32(nil, 0xFFFFFFFF)
		if _, err := decodeMessage(tMultiGetReq, body); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("non-canonical bool", func(t *testing.T) {
		f := append([]byte(nil), encodeFrame(t, 1, 0, 0, "a", &FindSuccResp{Done: true, Node: testPeer(1), Pred: testPeer(2)}, false)...)
		f[frameHeaderLen+1] = 2 // Done byte, after the 1-byte from addr
		if _, _, err := decodeFrame(f); !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("oversized encode", func(t *testing.T) {
		e := getEncoder()
		defer putEncoder(e)
		huge := make([]byte, maxFrame+1)
		if err := e.encode(1, 0, 0, "a", &PutReq{Data: huge}, false); err == nil {
			t.Fatal("oversized frame encoded")
		}
	})
}

// FuzzCodecRoundTrip decodes arbitrary frame bytes; whenever they parse,
// the message is re-encoded and must survive a second round trip with a
// byte-identical encoding (canonical form is a fixed point). No input may
// panic or allocate unboundedly.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(encodeFrame(f, 3, 5, 7, "seed:1", m, false)[4:])
		f.Add(encodeFrame(f, 3, 5, 7, "seed:1", m, true)[4:])
	}
	f.Add([]byte{wireVersion, 0, tPingReq, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFrame {
			return // the transport's read loop rejects these before parse
		}
		h, err := parseFrame(data)
		if err != nil {
			return
		}
		m, err := decodeMessage(h.typ, h.body)
		if err != nil {
			return
		}
		crc := h.flags&flagCRC != 0
		once := encodeFrame(t, h.tag, h.trace, h.span, Addr(h.from), m, crc)
		_, m2, err := decodeFrame(once)
		if err != nil {
			t.Fatalf("re-decode of canonical frame failed: %v", err)
		}
		twice := encodeFrame(t, h.tag, h.trace, h.span, Addr(h.from), m2, crc)
		if !bytes.Equal(once, twice) {
			t.Fatalf("canonical encoding not a fixed point:\n %x\n %x", once, twice)
		}
	})
}
