package transport

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// peerPool owns the outbound connections to one destination: up to
// poolSize pipelined streams with least-loaded dispatch. Dials are
// single-flight; after a failed dial the pool fails calls fast for a
// jittered exponential backoff window instead of letting every caller
// queue on the dialer, and a transport-wide janitor evicts streams that
// sit idle. Health is implicit: a stream that dies is pruned on its next
// selection (or by drop), and the next call redials.
type peerPool struct {
	t  *TCPTransport
	to Addr

	mu       sync.Mutex
	conns    []*clientConn
	dialing  chan struct{} // non-nil while one dial is in flight
	failures int           // consecutive dial failures
	nextTry  time.Time     // end of the current backoff window
}

// get returns a live connection for one call, dialing if the pool is
// empty. During a backoff window with no live connections it fails fast.
func (p *peerPool) get(ctx context.Context) (*clientConn, error) {
	for {
		p.mu.Lock()
		p.pruneLocked()
		if len(p.conns) > 0 {
			cc := p.leastLoadedLocked()
			// Grow the pool in the background when every stream is busy
			// and there is room — the current call proceeds on cc.
			if cc.load() > 0 && len(p.conns) < p.size() && p.dialing == nil {
				ch := make(chan struct{})
				p.dialing = ch
				go func() {
					_, err := p.dialOne(context.Background())
					p.dialDone(err, ch)
				}()
			}
			p.mu.Unlock()
			return cc, nil
		}
		if ch := p.dialing; ch != nil {
			p.mu.Unlock()
			select {
			case <-ch:
				continue // dial settled; re-evaluate
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if now := time.Now(); now.Before(p.nextTry) {
			p.mu.Unlock()
			p.t.rpcMetrics().failedFast()
			return nil, fmt.Errorf("%w: %s: in dial backoff", ErrUnreachable, p.to)
		}
		ch := make(chan struct{})
		p.dialing = ch
		p.mu.Unlock()
		cc, err := p.dialOne(ctx)
		p.dialDone(err, ch)
		if err != nil {
			return nil, err
		}
		return cc, nil
	}
}

// size reads the configured pool size.
func (p *peerPool) size() int {
	size, _, _, _ := p.t.poolConfig()
	return size
}

// pruneLocked drops dead connections. Callers hold p.mu.
func (p *peerPool) pruneLocked() {
	live := p.conns[:0]
	for _, cc := range p.conns {
		if cc.lastErr() == nil {
			live = append(live, cc)
		} else {
			p.t.rpcMetrics().connRemoved()
		}
	}
	p.conns = live
}

// leastLoadedLocked picks the stream with the fewest in-flight calls.
// Callers hold p.mu and guarantee the pool is non-empty.
func (p *peerPool) leastLoadedLocked() *clientConn {
	best := p.conns[0]
	min := best.load()
	for _, cc := range p.conns[1:] {
		if l := cc.load(); l < min {
			best, min = cc, l
		}
	}
	return best
}

// dialOne establishes and registers one connection.
func (p *peerPool) dialOne(ctx context.Context) (*clientConn, error) {
	m := p.t.rpcMetrics()
	m.dialed()
	d := net.Dialer{Timeout: p.t.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(p.to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, p.to, err)
	}
	cc := newClientConn(conn, m)

	p.t.mu.Lock()
	if p.t.closed {
		p.t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	p.t.wg.Add(1)
	p.t.mu.Unlock()
	p.mu.Lock()
	p.conns = append(p.conns, cc)
	p.mu.Unlock()
	m.connAdded()
	go func() {
		defer p.t.wg.Done()
		cc.readLoop()
		p.remove(cc)
	}()
	return cc, nil
}

// dialDone settles the single-flight marker and the backoff state.
func (p *peerPool) dialDone(err error, ch chan struct{}) {
	p.mu.Lock()
	if p.dialing == ch {
		p.dialing = nil
	}
	if err != nil {
		p.failures++
		p.nextTry = time.Now().Add(p.backoff())
	} else {
		p.failures = 0
		p.nextTry = time.Time{}
	}
	p.mu.Unlock()
	close(ch)
}

// backoff returns the jittered exponential delay for the current failure
// count. Callers hold p.mu.
func (p *peerPool) backoff() time.Duration {
	_, base, max, _ := p.t.poolConfig()
	d := base << (p.failures - 1)
	if d <= 0 || d > max {
		d = max
	}
	// Jitter into [d/2, d) so a burst of callers against a dead peer does
	// not re-dial in lockstep.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// drop discards a connection after a call-level failure so the next call
// does not reuse the dead stream.
func (p *peerPool) drop(cc *clientConn, err error) {
	cc.fail(err)
	p.remove(cc)
}

// remove takes a connection out of the pool (idempotent) and kills it.
func (p *peerPool) remove(cc *clientConn) {
	p.mu.Lock()
	for i, c := range p.conns {
		if c == cc {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			p.t.rpcMetrics().connRemoved()
			break
		}
	}
	p.mu.Unlock()
	cc.fail(ErrClosed)
}

// evictIdle closes connections idle longer than the configured timeout.
func (p *peerPool) evictIdle(now time.Time, idle time.Duration) {
	p.mu.Lock()
	var evict []*clientConn
	live := p.conns[:0]
	for _, cc := range p.conns {
		if cc.lastErr() == nil && cc.idleSince(now) > idle {
			evict = append(evict, cc)
		} else {
			live = append(live, cc)
		}
	}
	p.conns = live
	p.mu.Unlock()
	m := p.t.rpcMetrics()
	for _, cc := range evict {
		cc.fail(ErrClosed)
		m.connRemoved()
		m.evicted()
	}
}

// close kills every connection (transport shutdown).
func (p *peerPool) close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	m := p.t.rpcMetrics()
	for _, cc := range conns {
		cc.fail(ErrClosed)
		m.connRemoved()
	}
}
