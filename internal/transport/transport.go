// Package transport provides the RPC layer for live D2 nodes: a request/
// response interface with two implementations — an in-memory network for
// running hundreds or thousands of nodes in one process (the deployment-
// scale tests), and a TCP implementation (pipelined, tag-multiplexed
// streams of hand-rolled binary frames, pooled per peer) for
// multi-process clusters. D2-Store used TCP in the paper's prototype
// (§7).
package transport

import (
	"context"
	"errors"
	"fmt"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// Addr identifies a node endpoint ("mem://n42" or "127.0.0.1:7000").
type Addr string

// Handler processes one request and returns the response. ctx carries the
// caller's trace position (tracing.WithRemote) when the request belongs to
// a sampled trace; it does not carry the caller's cancellation — the
// transports hand every handler a background-derived context, so a
// pipelined handler outlives an impatient caller exactly as it would over
// a real wire.
type Handler func(ctx context.Context, from Addr, req Message) (Message, error)

// Transport sends requests and serves responses.
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Call sends req to the destination and waits for its response.
	Call(ctx context.Context, to Addr, req Message) (Message, error)
	// Serve installs the request handler. It must be called before the
	// first inbound request and at most once.
	Serve(h Handler)
	// Close releases the endpoint.
	Close() error
}

// Message is a marker for RPC payloads. Every implementation is a
// *pointer* to one of the request/response structs in this package —
// pointers keep interface conversions allocation-free on the hot path —
// and carries a hand-rolled binary marshaler in codec.go (the wire is
// reflection-free; gob is gone from the module).
type Message interface{ isMessage() }

// PeerInfo describes a node: its ring position and address.
type PeerInfo struct {
	ID   keys.Key
	Addr Addr
}

// IsZero reports whether the peer info is unset.
func (p PeerInfo) IsZero() bool { return p.Addr == "" }

// --- request/response types (the node protocol) ---

// PingReq checks liveness and identity.
type PingReq struct{}

// PingResp returns the node's current identity.
type PingResp struct{ Self PeerInfo }

// FindSuccReq asks for routing progress toward Key's owner. The reply
// either names the owner (Done) or the best next hop.
type FindSuccReq struct{ Key keys.Key }

// FindSuccResp carries one routing step's result.
type FindSuccResp struct {
	Done bool
	// Node is the owner when Done, otherwise the next hop.
	Node PeerInfo
	// Pred is the owner's predecessor when Done (the owned range's lower
	// bound, for lookup caches).
	Pred PeerInfo
}

// NeighborsReq fetches a node's predecessor and successor list.
type NeighborsReq struct{}

// NeighborsResp returns ring neighbors.
type NeighborsResp struct {
	Self  PeerInfo
	Pred  PeerInfo
	Succs []PeerInfo
}

// NotifyReq tells a node about a possible predecessor.
type NotifyReq struct{ Cand PeerInfo }

// NotifyResp acknowledges a notify.
type NotifyResp struct{}

// PutReq stores a block replica.
type PutReq struct {
	Key keys.Key
	// Data is the block payload.
	Data []byte
	// Replicate asks the primary to forward to its successors.
	Replicate bool
	// TTL is the block lifetime in seconds (0 = no expiry).
	TTL int64
}

// PutResp acknowledges a put.
type PutResp struct{}

// GetReq fetches a block.
type GetReq struct{ Key keys.Key }

// GetResp returns the block or reports absence. When the node only holds
// a pointer, Redirect names the node storing the data (§6).
type GetResp struct {
	Found    bool
	Data     []byte
	Redirect Addr
}

// RemoveReq deletes a block after DelaySec seconds (§3).
type RemoveReq struct {
	Key       keys.Key
	DelaySec  int64
	Replicate bool
}

// RemoveResp acknowledges a remove.
type RemoveResp struct{}

// LoadReq asks for the node's primary-responsibility load (§6).
type LoadReq struct{}

// LoadResp returns load accounting.
type LoadResp struct {
	Self PeerInfo
	// RespBytes is the primary load used by the balancer.
	RespBytes int64
	// StoredBytes is the node's total stored volume.
	StoredBytes int64
}

// SplitReq asks an overloaded node for the byte-median key of its primary
// range, so the prober can rejoin as its predecessor.
type SplitReq struct{}

// SplitResp returns the split point (Ok=false when the range is empty).
type SplitResp struct {
	Ok     bool
	Median keys.Key
}

// RangeReq pulls the keys (and optionally data) of an arc, for replica
// repair and migration.
type RangeReq struct {
	Lo, Hi keys.Key
	// WithData includes block payloads; otherwise only keys are listed.
	WithData bool
	// WithPointers also lists pointer entries (never their data): a
	// balance mover taking over an arc must learn where pointed-to blocks
	// actually live, or it would take ownership of keys it cannot serve.
	WithPointers bool
	// Limit caps the number of returned blocks (0 = no cap).
	Limit int
}

// RangeItem is one block in a RangeResp.
type RangeItem struct {
	Key keys.Key
	// Size is the block's data size (always set, even without data).
	Size int64
	Data []byte
	// Pointer, when set, names the node actually storing the block (the
	// listed entry is a §6 block pointer, included under WithPointers).
	Pointer Addr
}

// RangeResp returns an arc's blocks.
type RangeResp struct{ Items []RangeItem }

// BatchItem is one block result in a batched read response. Exactly one of
// Data and Redirect is meaningful when Found; a pointer entry reports the
// node actually storing the data (§6).
type BatchItem struct {
	Key      keys.Key
	Found    bool
	Data     []byte
	Redirect Addr
}

// MultiGetReq fetches several blocks from one node in a single RPC. The
// client groups a key run by owner so D2's contiguous file keys cost ~one
// RPC per replica group instead of one per block.
type MultiGetReq struct{ Keys []keys.Key }

// MultiGetResp returns one item per requested key, in request order.
// Build busy-server responses with AcquireMultiGetResp to reuse the Items
// scaffolding across RPCs.
type MultiGetResp struct {
	Items []BatchItem

	// pooled marks a response built by AcquireMultiGetResp; the TCP
	// transport recycles it after the frame is written. Never on the wire.
	pooled bool
}

// FetchRangeReq reads every data block a node holds in the arc (Lo, Hi],
// the read-path counterpart of RangeReq: it always ships data and reports
// pointer redirects instead of skipping pointer entries.
type FetchRangeReq struct {
	Lo, Hi keys.Key
	// Limit caps the items per response (0 = server default). When the
	// scan is truncated the response sets More and the caller resumes
	// from the last returned key.
	Limit int
}

// FetchRangeResp returns the arc's blocks in key order. Build busy-server
// responses with AcquireFetchRangeResp to reuse the Items scaffolding
// across RPCs.
type FetchRangeResp struct {
	Items []BatchItem
	// More is set when Limit truncated the scan.
	More bool

	// pooled marks a response built by AcquireFetchRangeResp; the TCP
	// transport recycles it after the frame is written. Never on the wire.
	pooled bool
}

// PutPtrReq installs a block pointer: the receiver becomes responsible
// for Key but the data stays at Target until pointer stabilization (§6).
type PutPtrReq struct {
	Key    keys.Key
	Target Addr
	Size   int64
}

// PutPtrResp acknowledges a pointer install.
type PutPtrResp struct{}

// SampleReq asks for a uniformly random peer from the node's view, used by
// Mercury-style random-walk sampling for balance probes (§6).
type SampleReq struct{ Hops int }

// SampleResp returns the sampled peer.
type SampleResp struct{ Peer PeerInfo }

// TraceFetchReq asks a node for the spans it retains for one trace — the
// scrape RPC behind d2ctl trace's cross-node span assembly. A zero Trace
// asks for the node's recent root spans instead (trace discovery).
type TraceFetchReq struct {
	Trace uint64
	// Limit caps returned spans (0 = server default).
	Limit int
}

// TraceFetchResp returns one node's retained spans for the asked trace
// (or its recent roots), ordered by start time.
type TraceFetchResp struct{ Spans []tracing.Span }

// StatsReq asks a node for its metrics snapshot and load summary — the
// admin plane's scrape RPC, used by d2ctl stats/top to build cluster-wide
// views without an HTTP round trip.
type StatsReq struct{}

// StatsResp carries one node's observability state.
type StatsResp struct {
	Self PeerInfo
	Pred PeerInfo
	// RespBytes is the node's primary-responsibility load (§6) and
	// StoredBytes its total stored volume; reported per node (not merged)
	// so the scraper can compute the §10 load-imbalance metric.
	RespBytes   int64
	StoredBytes int64
	// Blocks is the number of store entries (data and pointers).
	Blocks int64
	// SnapshotJSON is the node's obs.Snapshot, JSON-encoded. Mergeable
	// with other nodes' snapshots via obs.Merge.
	SnapshotJSON []byte
}

// HealthReq asks a node for its health verdict and derived rates — the
// cluster health engine's scrape RPC, used by d2ctl watch/doctor to
// build ring-wide health views without an HTTP round trip.
type HealthReq struct{}

// HealthResp carries one node's health state.
type HealthResp struct {
	Self PeerInfo
	Pred PeerInfo
	// RespBytes/StoredBytes/Blocks mirror StatsResp so the doctor can
	// evaluate §10 load imbalance from the same walk.
	RespBytes   int64
	StoredBytes int64
	Blocks      int64
	// State is the overall verdict ("ok", "degraded", "failing", or
	// "unknown" for nodes without a health engine).
	State string
	// StatusJSON is the node's history.Status document and RatesJSON its
	// history.Rates document, both JSON-encoded; nil without an engine.
	StatusJSON []byte
	RatesJSON  []byte
}

// CensusReq asks a node for its placement census — per-role block
// tallies and per-volume run-length stats from its background sweeper.
// d2ctl frag/map aggregate the reports over WalkRing into the §5
// cluster locality metrics.
type CensusReq struct{}

// CensusResp carries one node's placement census.
type CensusResp struct {
	Self PeerInfo
	Pred PeerInfo
	// RespBytes/StoredBytes/Blocks mirror StatsResp so the census walk
	// can compute §10 load imbalance without a second scrape.
	RespBytes   int64
	StoredBytes int64
	Blocks      int64
	// ReportJSON is the node's census.Report, JSON-encoded; nil on
	// nodes without a census sweeper.
	ReportJSON []byte
}

// ErrResp carries an application-level error back to the caller.
type ErrResp struct{ Err string }

func (*PingReq) isMessage()        {}
func (*PingResp) isMessage()       {}
func (*FindSuccReq) isMessage()    {}
func (*FindSuccResp) isMessage()   {}
func (*NeighborsReq) isMessage()   {}
func (*NeighborsResp) isMessage()  {}
func (*NotifyReq) isMessage()      {}
func (*NotifyResp) isMessage()     {}
func (*PutReq) isMessage()         {}
func (*PutResp) isMessage()        {}
func (*GetReq) isMessage()         {}
func (*GetResp) isMessage()        {}
func (*RemoveReq) isMessage()      {}
func (*RemoveResp) isMessage()     {}
func (*LoadReq) isMessage()        {}
func (*LoadResp) isMessage()       {}
func (*SplitReq) isMessage()       {}
func (*SplitResp) isMessage()      {}
func (*RangeReq) isMessage()       {}
func (*RangeResp) isMessage()      {}
func (*MultiGetReq) isMessage()    {}
func (*MultiGetResp) isMessage()   {}
func (*FetchRangeReq) isMessage()  {}
func (*FetchRangeResp) isMessage() {}
func (*PutPtrReq) isMessage()      {}
func (*PutPtrResp) isMessage()     {}
func (*SampleReq) isMessage()      {}
func (*SampleResp) isMessage()     {}
func (*StatsReq) isMessage()       {}
func (*StatsResp) isMessage()      {}
func (*TraceFetchReq) isMessage()  {}
func (*TraceFetchResp) isMessage() {}
func (*ErrResp) isMessage()        {}
func (*HealthReq) isMessage()      {}
func (*HealthResp) isMessage()     {}
func (*CensusReq) isMessage()      {}
func (*CensusResp) isMessage()     {}

// AsError converts an ErrResp into a Go error, passing other messages
// through.
func AsError(m Message) (Message, error) {
	if e, ok := m.(*ErrResp); ok {
		return nil, errors.New(e.Err)
	}
	return m, nil
}

// ToErrResp wraps a handler error for the wire.
func ToErrResp(err error) Message { return &ErrResp{Err: err.Error()} }

// ErrClosed reports an operation on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnreachable reports an unknown or dead destination.
var ErrUnreachable = errors.New("transport: unreachable")

// wrongType builds the error for an unexpected response message.
func wrongType(m Message) error {
	return fmt.Errorf("transport: unexpected response type %T", m)
}

// Expect asserts the concrete response type, collapsing the usual
// call-and-assert boilerplate at call sites.
func Expect[T Message](m Message, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	m, err = AsError(m)
	if err != nil {
		return zero, err
	}
	v, ok := m.(T)
	if !ok {
		return zero, wrongType(m)
	}
	return v, nil
}
