package transport

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/wire"
)

// benchMessages is the per-type benchmark matrix; FetchRangeResp/64 is
// the bulk-migration shape the vectored writer exists for.
func benchMessages() []struct {
	name string
	msg  Message
} {
	blk := bytes.Repeat([]byte{0xAB}, 4<<10)
	items := make([]BatchItem, 64)
	for i := range items {
		items[i] = BatchItem{Key: testKey(byte(i)), Found: true, Data: bytes.Repeat([]byte{byte(i)}, 1<<10)}
	}
	spans := make([]tracing.Span, 16)
	for i := range spans {
		spans[i] = tracing.Span{Trace: 1, ID: uint64(i), Parent: 3, Name: "rpc.get", Node: "n1", Start: 1000, Dur: 50}
	}
	return []struct {
		name string
		msg  Message
	}{
		{"PingReq", &PingReq{}},
		{"GetReq", &GetReq{Key: testKey(1)}},
		{"PutReq/4KiB", &PutReq{Key: testKey(2), Data: blk, TTL: 60}},
		{"GetResp/4KiB", &GetResp{Found: true, Data: blk}},
		{"NeighborsResp", &NeighborsResp{Self: testPeer(1), Pred: testPeer(2), Succs: []PeerInfo{testPeer(3), testPeer(4), testPeer(5)}}},
		{"MultiGetReq/16", &MultiGetReq{Keys: make([]keys.Key, 16)}},
		{"FetchRangeResp/64", &FetchRangeResp{Items: items}},
		{"TraceFetchResp/16", &TraceFetchResp{Spans: spans}},
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, bm := range benchMessages() {
		b.Run(bm.name, func(b *testing.B) {
			e := getEncoder()
			defer putEncoder(e)
			var total int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.encode(uint64(i), 0, 0, "127.0.0.1:7000", bm.msg, false); err != nil {
					b.Fatal(err)
				}
				total += int64(e.size())
			}
			b.SetBytes(total / int64(b.N))
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, bm := range benchMessages() {
		b.Run(bm.name, func(b *testing.B) {
			frame := encodeFrame(b, 1, 0, 0, "127.0.0.1:7000", bm.msg, false)
			body := frame[4:]
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := parseFrame(body)
				if err != nil {
					b.Fatal(err)
				}
				m, err := decodeMessage(h.typ, h.body)
				if err != nil {
					b.Fatal(err)
				}
				recycleMessage(m)
			}
		})
	}
}

func BenchmarkChecksum(b *testing.B) {
	buf := bytes.Repeat([]byte{0x5A}, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire.Checksum(buf)
	}
}

// BenchmarkTCPServePath drives a live TCP server from a raw socket with
// pre-encoded request frames, so allocs/op is the server's inbound
// read→decode→handle→encode→writev path plus nothing else. The verify
// tier gates this at 0 allocs/op.
func BenchmarkTCPServePath(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	resp := &GetResp{Found: true, Data: bytes.Repeat([]byte{0xCD}, 512)}
	srv.Serve(func(context.Context, Addr, Message) (Message, error) {
		return resp, nil
	})

	conn, err := net.Dial("tcp", string(srv.Addr()))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	req := encodeFrame(b, 1, 0, 0, "bench:1", &GetReq{Key: testKey(1)}, false)
	br := bufio.NewReaderSize(conn, 64<<10)
	var lenb [4]byte
	respBuf := make([]byte, 4096)

	// Prime the connection once so one-time costs (conn bookkeeping,
	// first worker spawn, iovec cache) land before the measured loop.
	if _, err := conn.Write(req); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(br, respBuf[:wire.U32(lenb[:], 0)]); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(int64(len(req)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			b.Fatal(err)
		}
		n := int(wire.U32(lenb[:], 0))
		if n > len(respBuf) {
			b.Fatalf("response frame of %d bytes", n)
		}
		if _, err := io.ReadFull(br, respBuf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
