package transport

import (
	"context"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// rpcSpanNames maps an rpcKind to its client-side send span name,
// precomputed so the traced path never concatenates strings per call.
var rpcSpanNames = func() [numKinds]string {
	var out [numKinds]string
	for k := rpcKind(0); k < numKinds; k++ {
		out[k] = "rpc." + kindNames[k]
	}
	return out
}()

// serveSpanNames maps an rpcKind to its server-side handler span name.
var serveSpanNames = func() [numKinds]string {
	var out [numKinds]string
	for k := rpcKind(0); k < numKinds; k++ {
		out[k] = "serve." + kindNames[k]
	}
	return out
}()

// RPCName returns the wire name of a request's kind ("get", "multi_get",
// ...), for span and profiler-label naming at higher layers. The string is
// precomputed — callers on traced paths pay no per-call concatenation.
func RPCName(m Message) string { return kindNames[kindOf(m)] }

// ServeSpanName returns the precomputed server-side span name for a
// request ("serve.get", ...).
func ServeSpanName(m Message) string { return serveSpanNames[kindOf(m)] }

// startSend opens the transport's client-side span for one outbound RPC:
// a child of whatever trace ctx carries, named rpc.<kind>. It returns the
// context to dispatch with (carrying the send span, so the remote handler
// parents to it) and the span; both pass through untouched when the call
// is untraced. A nil tracer still propagates the caller's trace position —
// the remote spans then parent to the caller's span directly.
func startSend(ctx context.Context, tr *tracing.Tracer, to Addr, req Message) (context.Context, *tracing.ActiveSpan) {
	if tracing.FromContext(ctx) == nil {
		return ctx, nil
	}
	sctx, sp := tr.StartSpan(ctx, rpcSpanNames[kindOf(req)])
	sp.Annotate("to", to)
	return sctx, sp
}

// finishSend completes a send span with the call outcome.
func finishSend(sp *tracing.ActiveSpan, err error) {
	if sp == nil {
		return
	}
	sp.EndErr(err)
}
