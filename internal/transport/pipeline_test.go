package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPPipelinesOnOneConnection proves the multiplexing claim: many
// concurrent calls from one client reach the server simultaneously over a
// single TCP connection, and out-of-order responses are matched back to
// the right callers by tag.
func TestTCPPipelinesOnOneConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const calls = 16
	var inflight, peak atomic.Int64
	release := make(chan struct{})
	arrived := make(chan struct{}, calls)
	srv.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		arrived <- struct{}{}
		<-release // hold every request open until all have arrived
		return &PutResp{}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Pin the peer pool to one stream so every call shares a single
	// connection — the point under test is pipelining, not pooling.
	cli.SetPoolConfig(1, 0, 0, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Expect[*PutResp](cli.Call(ctx, srv.Addr(), &PutReq{})); err != nil {
				errs <- err
			}
		}()
	}

	// All calls must arrive while every earlier one is still unanswered —
	// impossible without pipelining on a request-per-response stream.
	for i := 0; i < calls; i++ {
		select {
		case <-arrived:
		case <-ctx.Done():
			t.Fatalf("only %d/%d calls in flight: requests serialized", i, calls)
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if p := peak.Load(); p != calls {
		t.Fatalf("peak concurrent handlers %d, want %d", p, calls)
	}
	srv.mu.Lock()
	inbound := len(srv.serving)
	srv.mu.Unlock()
	if inbound != 1 {
		t.Fatalf("server saw %d inbound connections, want 1 multiplexed", inbound)
	}
}

// TestTCPConcurrentMixedSizes hammers one connection with concurrent calls
// of wildly different payload sizes; run under -race it checks the shared
// encoder/decoder and pending-tag bookkeeping.
func TestTCPConcurrentMixedSizes(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		p := req.(*PutReq)
		return &GetResp{Found: true, Data: p.Data}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sizes := []int{0, 1, 17, 1 << 10, 64 << 10, 512 << 10}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				size := sizes[(g+i)%len(sizes)]
				data := bytes.Repeat([]byte{byte(g*16 + i)}, size)
				resp, err := Expect[*GetResp](cli.Call(ctx, srv.Addr(), &PutReq{Data: data}))
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, data) {
					errs <- fmt.Errorf("goroutine %d call %d: echo mismatch (%d bytes)", g, i, size)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTCPCancelLeavesConnectionUsable checks that abandoning one call via
// ctx does not poison the multiplexed connection for the others.
func TestTCPCancelLeavesConnectionUsable(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	srv.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		if r, ok := req.(*PutReq); ok && r.TTL == 1 {
			<-block
		}
		return &PutResp{}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	slowCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(slowCtx, srv.Addr(), &PutReq{TTL: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call: got %v, want deadline exceeded", err)
	}
	close(block)

	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := Expect[*PutResp](cli.Call(ctx, srv.Addr(), &PutReq{})); err != nil {
		t.Fatalf("call after cancelled call: %v", err)
	}
}

// TestMemCallHonorsContext checks both mem-transport cancellation points:
// an already-cancelled context fails before the handler runs, and
// cancellation during injected latency cuts the call short.
func TestMemCallHonorsContext(t *testing.T) {
	net := NewMemNetwork(0)
	a, b := net.NewEndpoint(), net.NewEndpoint()
	var handled atomic.Int64
	b.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		handled.Add(1)
		return &PingResp{}, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Call(ctx, b.Addr(), &PingReq{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call: got %v, want context.Canceled", err)
	}
	if n := handled.Load(); n != 0 {
		t.Fatalf("handler ran %d times on a cancelled call", n)
	}

	slow := NewMemNetwork(time.Hour)
	c, d := slow.NewEndpoint(), slow.NewEndpoint()
	d.Serve(func(_ context.Context, from Addr, req Message) (Message, error) { return &PingResp{}, nil })
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := c.Call(ctx2, d.Addr(), &PingReq{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency call: got %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation during latency took %v", el)
	}
}
