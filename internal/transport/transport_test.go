package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

func TestMemCallRoundTrip(t *testing.T) {
	net := NewMemNetwork(0)
	a := net.NewEndpoint()
	b := net.NewEndpoint()
	b.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		if from != a.Addr() {
			t.Errorf("from = %s, want %s", from, a.Addr())
		}
		return &PingResp{Self: PeerInfo{Addr: b.Addr()}}, nil
	})
	resp, err := Expect[*PingResp](a.Call(context.Background(), b.Addr(), &PingReq{}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Self.Addr != b.Addr() {
		t.Errorf("resp addr = %s", resp.Self.Addr)
	}
}

func TestMemUnreachable(t *testing.T) {
	net := NewMemNetwork(0)
	a := net.NewEndpoint()
	if _, err := a.Call(context.Background(), "mem://nope", &PingReq{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	b := net.NewEndpoint()
	b.Serve(func(context.Context, Addr, Message) (Message, error) { return &PingResp{}, nil })
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), b.Addr(), &PingReq{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to closed endpoint: %v, want ErrUnreachable", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), b.Addr(), &PingReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call from closed endpoint: %v, want ErrClosed", err)
	}
}

func TestMemLatency(t *testing.T) {
	net := NewMemNetwork(20 * time.Millisecond)
	a := net.NewEndpoint()
	b := net.NewEndpoint()
	b.Serve(func(context.Context, Addr, Message) (Message, error) { return &PingResp{}, nil })
	start := time.Now()
	if _, err := a.Call(context.Background(), b.Addr(), &PingReq{}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Errorf("RTT = %v, want ≥ 40ms (two one-way delays)", rtt)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var k keys.Key
	k[0] = 0xAB
	srv.Serve(func(_ context.Context, from Addr, req Message) (Message, error) {
		get, ok := req.(*GetReq)
		if !ok {
			return nil, fmt.Errorf("unexpected %T", req)
		}
		if get.Key != k {
			return &GetResp{Found: false}, nil
		}
		return &GetResp{Found: true, Data: []byte("tcp-data")}, nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := Expect[*GetResp](cli.Call(context.Background(), srv.Addr(), &GetReq{Key: k}))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || string(resp.Data) != "tcp-data" {
		t.Fatalf("resp = %+v", resp)
	}
	// Second call reuses the pooled connection.
	if _, err := Expect[*GetResp](cli.Call(context.Background(), srv.Addr(), &GetReq{Key: k})); err != nil {
		t.Fatal(err)
	}
}

func TestTCPHandlerError(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(context.Context, Addr, Message) (Message, error) {
		return nil, errors.New("boom")
	})
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = Expect[*PingResp](cli.Call(context.Background(), srv.Addr(), &PingReq{}))
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(_ context.Context, _ Addr, req Message) (Message, error) {
		return req, nil // echo
	})
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var k keys.Key
			k[0] = byte(i)
			resp, err := Expect[*GetReq](cli.Call(context.Background(), srv.Addr(), &GetReq{Key: k}))
			if err != nil {
				errs <- err
				return
			}
			if resp.Key != k {
				errs <- fmt.Errorf("echo mismatch for %d", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPContextTimeout(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(context.Context, Addr, Message) (Message, error) {
		time.Sleep(500 * time.Millisecond)
		return &PingResp{}, nil
	})
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, srv.Addr(), &PingReq{}); err == nil {
		t.Fatal("slow call did not time out")
	}
}

func TestExpectWrongType(t *testing.T) {
	if _, err := Expect[*PingResp](&NotifyResp{}, nil); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := Expect[*PingResp](nil, errors.New("x")); err == nil {
		t.Error("error swallowed")
	}
	if _, err := Expect[*PingResp](&ErrResp{Err: "remote"}, nil); err == nil || err.Error() != "remote" {
		t.Errorf("ErrResp not converted: %v", err)
	}
}

func TestPeerInfoIsZero(t *testing.T) {
	if !(PeerInfo{}).IsZero() {
		t.Error("zero PeerInfo not zero")
	}
	if (PeerInfo{Addr: "x"}).IsZero() {
		t.Error("non-zero PeerInfo zero")
	}
}
