package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// envelope is the on-wire unit: a tagged request or response. Tags let
// many requests share one connection — responses may arrive out of order
// and are matched back to their callers by tag. Trace and Span carry the
// caller's trace position for sampled requests (zero otherwise), so spans
// recorded by the remote handler join the caller's trace; responses leave
// them zero.
type envelope struct {
	Tag   uint64
	From  Addr
	Trace uint64
	Span  uint64
	Msg   Message
}

// TCPTransport is a Transport over TCP with pipelined gob streams. All
// requests to one destination multiplex over a single connection: each
// call writes a tagged envelope and waits for the response carrying its
// tag, so batch fan-out never serializes behind earlier in-flight calls
// (the paper's D2-Store prototype used one request per connection, §7;
// this is the production version of that path). Encoder and decoder
// state persist for the life of a connection, which also amortizes gob's
// type dictionary across calls instead of resending it per frame.
type TCPTransport struct {
	addr Addr
	ln   net.Listener

	mu      sync.Mutex
	handler Handler
	conns   map[Addr]*clientConn
	serving map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration

	metrics *RPCMetrics
	tracer  *tracing.Tracer
}

// UseTracer attaches a request tracer to the endpoint: outbound calls
// belonging to a sampled trace record an rpc.<kind> send span, and the
// trace position rides the envelope either way.
func (t *TCPTransport) UseTracer(tr *tracing.Tracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracer = tr
}

// endpointTracer returns the endpoint's tracer (nil when off).
func (t *TCPTransport) endpointTracer() *tracing.Tracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tracer
}

// UseMetrics attaches RPC metrics to the endpoint. Call before traffic
// starts; connections opened earlier do not count wire bytes.
func (t *TCPTransport) UseMetrics(m *RPCMetrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = m
}

// rpcMetrics returns the endpoint's metrics (nil when off).
func (t *TCPTransport) rpcMetrics() *RPCMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics
}

// countingConn wraps a net.Conn, reporting raw wire bytes to RPCMetrics.
type countingConn struct {
	net.Conn
	m *RPCMetrics
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.wireRead(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.wireWritten(n)
	return n, err
}

// countConn wraps conn with byte counting when metrics are on.
func (m *RPCMetrics) countConn(conn net.Conn) net.Conn {
	if m == nil {
		return conn
	}
	return &countingConn{Conn: conn, m: m}
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts a TCP endpoint on the given address ("127.0.0.1:0"
// picks a free port).
func ListenTCP(bind string) (*TCPTransport, error) {
	registerMessages()
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	t := &TCPTransport{
		addr:        Addr(ln.Addr().String()),
		ln:          ln,
		conns:       make(map[Addr]*clientConn),
		serving:     make(map[net.Conn]struct{}),
		DialTimeout: 5 * time.Second,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound address.
func (t *TCPTransport) Addr() Addr { return t.addr }

// Serve installs the handler.
func (t *TCPTransport) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.serving, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn answers requests on one inbound connection until it closes.
// Each request is handled in its own goroutine so a slow handler does not
// stall the requests pipelined behind it; response writes are serialized.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	m := t.rpcMetrics()
	counted := m.countConn(conn)
	dec := gob.NewDecoder(bufio.NewReader(counted))
	bw := bufio.NewWriter(counted)
	enc := gob.NewEncoder(bw)
	var wmu sync.Mutex
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		hwg.Add(1)
		go func(env envelope) {
			defer hwg.Done()
			m.serveStart(env.Msg)
			defer m.serveEnd()
			var resp Message
			if h == nil {
				resp = ToErrResp(fmt.Errorf("node not serving"))
			} else {
				hctx := tracing.WithRemote(context.Background(), env.Trace, env.Span)
				r, herr := h(hctx, env.From, env.Msg)
				switch {
				case herr != nil:
					resp = ToErrResp(herr)
				case r == nil:
					resp = ToErrResp(fmt.Errorf("nil response"))
				default:
					resp = r
				}
			}
			wmu.Lock()
			if enc.Encode(&envelope{Tag: env.Tag, From: t.addr, Msg: resp}) == nil {
				_ = bw.Flush()
			}
			wmu.Unlock()
		}(env)
	}
}

// clientConn is one multiplexed outbound connection: a write-serialized
// gob stream out, a reader goroutine matching tagged responses to waiting
// callers.
type clientConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes envelope writes
	bw  *bufio.Writer
	enc *gob.Encoder
	dec *gob.Decoder

	mu      sync.Mutex
	pending map[uint64]chan envelope
	nextTag uint64
	err     error
	done    chan struct{}
}

func newClientConn(conn net.Conn, m *RPCMetrics) *clientConn {
	counted := m.countConn(conn)
	bw := bufio.NewWriter(counted)
	return &clientConn{
		conn:    conn,
		bw:      bw,
		enc:     gob.NewEncoder(bw),
		dec:     gob.NewDecoder(bufio.NewReader(counted)),
		pending: make(map[uint64]chan envelope),
		done:    make(chan struct{}),
	}
}

// fail records the terminal error, wakes every waiter, and closes the
// socket. Idempotent.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		close(cc.done)
	}
	cc.mu.Unlock()
	cc.conn.Close()
}

func (cc *clientConn) lastErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err
}

// forget drops a pending tag after a caller stops waiting (cancellation);
// a late response with that tag is discarded by the read loop.
func (cc *clientConn) forget(tag uint64) {
	cc.mu.Lock()
	delete(cc.pending, tag)
	cc.mu.Unlock()
}

// readLoop dispatches responses to waiting callers until the stream dies.
func (cc *clientConn) readLoop() {
	for {
		var env envelope
		if err := cc.dec.Decode(&env); err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch := cc.pending[env.Tag]
		delete(cc.pending, env.Tag)
		cc.mu.Unlock()
		if ch != nil {
			ch <- env // buffered: never blocks the loop
		}
	}
}

// call sends one tagged request and waits for its response or ctx.
func (cc *clientConn) call(ctx context.Context, from Addr, req Message) (Message, error) {
	ch := make(chan envelope, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.nextTag++
	tag := cc.nextTag
	cc.pending[tag] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetWriteDeadline(dl)
	} else {
		_ = cc.conn.SetWriteDeadline(time.Time{})
	}
	trace, span := tracing.WireContext(ctx)
	err := cc.enc.Encode(&envelope{Tag: tag, From: from, Trace: trace, Span: span, Msg: req})
	if err == nil {
		err = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if err != nil {
		// A half-written envelope corrupts the stream for everyone:
		// kill the connection.
		cc.fail(err)
		cc.forget(tag)
		return nil, err
	}

	select {
	case env := <-ch:
		return env.Msg, nil
	case <-ctx.Done():
		cc.forget(tag)
		return nil, ctx.Err()
	case <-cc.done:
		return nil, cc.lastErr()
	}
}

// Call sends the request over the destination's multiplexed connection
// and waits for the tagged reply. A dead cached connection is replaced
// and the call retried once (all node RPCs are idempotent).
func (t *TCPTransport) Call(ctx context.Context, to Addr, req Message) (Message, error) {
	m := t.rpcMetrics()
	kind, start := m.startCall(req)
	sctx, sp := startSend(ctx, t.endpointTracer(), to, req)
	resp, err := t.doCall(sctx, to, req, m)
	finishSend(sp, err)
	m.finishCall(kind, start, resp, err)
	return resp, err
}

// doCall is Call's retry loop, without instrumentation.
func (t *TCPTransport) doCall(ctx context.Context, to Addr, req Message, m *RPCMetrics) (Message, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			m.retried()
		}
		cc, err := t.clientConn(ctx, to)
		if err != nil {
			return nil, err
		}
		resp, err := cc.call(ctx, t.addr, req)
		if err == nil {
			return AsError(resp)
		}
		if ctx.Err() != nil {
			return nil, err
		}
		t.dropConn(to, cc)
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, lastErr)
}

// clientConn returns the live multiplexed connection to the destination,
// dialing one if needed.
func (t *TCPTransport) clientConn(ctx context.Context, to Addr) (*clientConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if cc := t.conns[to]; cc != nil {
		t.mu.Unlock()
		return cc, nil
	}
	t.mu.Unlock()

	m := t.rpcMetrics()
	m.dialed()
	d := net.Dialer{Timeout: t.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	cc := newClientConn(conn, m)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if exist := t.conns[to]; exist != nil {
		// Lost a dial race; use the established connection.
		t.mu.Unlock()
		conn.Close()
		return exist, nil
	}
	t.conns[to] = cc
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		cc.readLoop()
		t.dropConn(to, cc)
	}()
	return cc, nil
}

// dropConn discards a dead connection so the next call redials.
func (t *TCPTransport) dropConn(to Addr, cc *clientConn) {
	t.mu.Lock()
	if t.conns[to] == cc {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	cc.fail(ErrClosed)
}

// Close shuts the listener and every connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[Addr]*clientConn)
	// Unblock in-flight serveConn reads so Close does not wait forever
	// on idle inbound connections.
	for c := range t.serving {
		c.Close()
	}
	t.mu.Unlock()
	for _, cc := range conns {
		cc.fail(ErrClosed)
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
