package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single RPC frame (a range transfer of many blocks can
// be large; 64 MB is far beyond anything the node protocol produces).
const maxFrame = 64 << 20

// envelope is the on-wire frame payload.
type envelope struct {
	From Addr
	Msg  Message
}

// TCPTransport is a Transport over TCP with length-prefixed gob frames.
// Each call uses a pooled connection to the destination (one in-flight
// request per connection, as in the paper's TCP-based D2-Store, §7).
type TCPTransport struct {
	addr Addr
	ln   net.Listener

	mu      sync.Mutex
	handler Handler
	pools   map[Addr][]net.Conn
	serving map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts a TCP endpoint on the given address ("127.0.0.1:0"
// picks a free port).
func ListenTCP(bind string) (*TCPTransport, error) {
	registerMessages()
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	t := &TCPTransport{
		addr:        Addr(ln.Addr().String()),
		ln:          ln,
		pools:       make(map[Addr][]net.Conn),
		serving:     make(map[net.Conn]struct{}),
		DialTimeout: 5 * time.Second,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound address.
func (t *TCPTransport) Addr() Addr { return t.addr }

// Serve installs the handler.
func (t *TCPTransport) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.serving, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn answers requests on one inbound connection until it closes.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		env, err := readFrame(conn)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		var resp Message
		if h == nil {
			resp = ToErrResp(fmt.Errorf("node not serving"))
		} else {
			r, herr := h(env.From, env.Msg)
			if herr != nil {
				resp = ToErrResp(herr)
			} else {
				resp = r
			}
		}
		if err := writeFrame(conn, envelope{From: t.addr, Msg: resp}); err != nil {
			return
		}
	}
}

// Call sends the request over a pooled connection and reads the reply.
func (t *TCPTransport) Call(ctx context.Context, to Addr, req Message) (Message, error) {
	conn, err := t.getConn(ctx, to)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(conn, envelope{From: t.addr, Msg: req}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	env, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	t.putConn(to, conn)
	return AsError(env.Msg)
}

func (t *TCPTransport) getConn(ctx context.Context, to Addr) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	pool := t.pools[to]
	if n := len(pool); n > 0 {
		conn := pool[n-1]
		t.pools[to] = pool[:n-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()
	d := net.Dialer{Timeout: t.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	return conn, nil
}

func (t *TCPTransport) putConn(to Addr, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.pools[to]) >= 4 {
		conn.Close()
		return
	}
	t.pools[to] = append(t.pools[to], conn)
}

// Close shuts the listener and all pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, pool := range t.pools {
		for _, c := range pool {
			c.Close()
		}
	}
	t.pools = make(map[Addr][]net.Conn)
	// Unblock in-flight serveConn reads so Close does not wait forever
	// on idle inbound connections.
	for c := range t.serving {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// writeFrame encodes the envelope as a 4-byte length prefix plus gob body.
func writeFrame(w io.Writer, env envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame decodes one length-prefixed gob frame.
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return envelope{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return envelope{}, fmt.Errorf("transport: decode: %w", err)
	}
	return env, nil
}
