package transport

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/wire"
)

// TCPTransport is a Transport over TCP speaking the hand-rolled binary
// frame protocol in codec.go. Requests to one destination spread over a
// small pool of pipelined connections (pool.go): each call writes a
// tagged frame on the least-loaded stream and waits for the response
// carrying its tag, so batch fan-out neither serializes behind earlier
// in-flight calls nor behind one socket's bandwidth. The serve path is
// allocation-free at steady state: pooled frame buffers, pooled request
// structs, reused worker goroutines, and vectored (writev) responses
// whose block payloads leave the process without a coalescing copy. (The
// paper's D2-Store prototype used one request per connection, §7; this is
// the production version of that path.)
type TCPTransport struct {
	addr Addr
	ln   net.Listener

	mu      sync.Mutex
	handler Handler
	pools   map[Addr]*peerPool
	serving map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	stop    chan struct{}

	// DialTimeout bounds connection establishment. Set before traffic.
	DialTimeout time.Duration

	// pool knobs, guarded by mu (SetPoolConfig).
	poolSize    int
	backoffBase time.Duration
	backoffMax  time.Duration
	idleTimeout time.Duration

	crc bool

	metrics *RPCMetrics
	tracer  *tracing.Tracer
}

// Pool and framing defaults.
const (
	defaultPoolSize    = 4
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 3 * time.Second
	defaultIdleTimeout = 2 * time.Minute
)

// UseTracer attaches a request tracer to the endpoint: outbound calls
// belonging to a sampled trace record an rpc.<kind> send span, and the
// trace position rides the frame header either way.
func (t *TCPTransport) UseTracer(tr *tracing.Tracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracer = tr
}

// endpointTracer returns the endpoint's tracer (nil when off).
func (t *TCPTransport) endpointTracer() *tracing.Tracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tracer
}

// UseMetrics attaches RPC metrics to the endpoint. Call before traffic
// starts; connections opened earlier are not counted.
func (t *TCPTransport) UseMetrics(m *RPCMetrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = m
}

// rpcMetrics returns the endpoint's metrics (nil when off).
func (t *TCPTransport) rpcMetrics() *RPCMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics
}

// UseCRC toggles CRC-32C trailers on outbound frames. Inbound frames are
// verified whenever they carry the flag, so mixed clusters interoperate.
func (t *TCPTransport) UseCRC(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crc = on
}

func (t *TCPTransport) useCRC() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crc
}

// SetPoolConfig tunes the per-peer connection pools: size is the stream
// count per peer, base/max bound the reconnect backoff, idle is the
// eviction age for unused connections. Zero keeps a knob's default.
func (t *TCPTransport) SetPoolConfig(size int, base, max, idle time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if size > 0 {
		t.poolSize = size
	}
	if base > 0 {
		t.backoffBase = base
	}
	if max > 0 {
		t.backoffMax = max
	}
	if idle > 0 {
		t.idleTimeout = idle
	}
}

// poolConfig reads the pool knobs consistently.
func (t *TCPTransport) poolConfig() (size int, base, max, idle time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.poolSize, t.backoffBase, t.backoffMax, t.idleTimeout
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts a TCP endpoint on the given address ("127.0.0.1:0"
// picks a free port).
func ListenTCP(bind string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	t := &TCPTransport{
		addr:        Addr(ln.Addr().String()),
		ln:          ln,
		pools:       make(map[Addr]*peerPool),
		serving:     make(map[net.Conn]struct{}),
		stop:        make(chan struct{}),
		DialTimeout: 5 * time.Second,
		poolSize:    defaultPoolSize,
		backoffBase: defaultBackoffBase,
		backoffMax:  defaultBackoffMax,
		idleTimeout: defaultIdleTimeout,
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.janitor()
	return t, nil
}

// Addr returns the bound address.
func (t *TCPTransport) Addr() Addr { return t.addr }

// Serve installs the handler.
func (t *TCPTransport) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.serving, conn)
			t.mu.Unlock()
		}()
	}
}

// serveReq is one decoded inbound request handed to a serve worker.
// Pooled: the read loop fills one per frame, the worker returns it.
type serveReq struct {
	tag   uint64
	trace uint64
	span  uint64
	from  Addr
	msg   Message
}

var serveReqPool = sync.Pool{New: func() any { return new(serveReq) }}

// serveState is the per-inbound-connection state shared by the read loop
// and its workers.
type serveState struct {
	t    *TCPTransport
	conn net.Conn
	wmu  sync.Mutex // serializes response writes
	m    *RPCMetrics

	// lastFrom caches the previous frame's sender so repeat senders on a
	// pipelined stream cost no string allocation.
	lastFrom Addr
}

// serveConn answers requests on one inbound connection until it closes.
// Workers are reused across requests: the read loop hands each request to
// an idle worker over an unbuffered channel and spawns a new one only
// when all are busy, so a steady stream of pipelined requests runs on a
// fixed goroutine set with no per-request spawn.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	st := &serveState{t: t, conn: conn, m: t.rpcMetrics()}
	work := make(chan *serveReq)
	done := make(chan struct{})
	var hwg sync.WaitGroup
	defer hwg.Wait()
	defer close(done)

	br := bufio.NewReaderSize(conn, 64<<10)
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return
		}
		n := int(wire.U32(lenb[:], 0))
		if n < frameHeaderLen-4 || n > maxFrame {
			return // corrupt stream; no way to resync
		}
		f := getFrame(n)
		if _, err := io.ReadFull(br, f.b); err != nil {
			return
		}
		st.m.wireRead(n + 4)
		h, err := parseFrame(f.b)
		if err != nil {
			return
		}
		msg, err := decodeMessage(h.typ, h.body)
		if err != nil {
			return
		}
		sr := serveReqPool.Get().(*serveReq)
		sr.tag, sr.trace, sr.span, sr.msg = h.tag, h.trace, h.span, msg
		// Alloc-free when the sender repeats (the common case: one client
		// per conn).
		if string(h.from) != string(st.lastFrom) {
			st.lastFrom = Addr(h.from)
		}
		sr.from = st.lastFrom
		if !borrows[h.typ] {
			putFrame(f) // decode copied everything out
		}
		select {
		case work <- sr: // an idle worker picks it up
		default:
			hwg.Add(1)
			go func(sr *serveReq) {
				defer hwg.Done()
				for {
					st.serveOne(sr)
					select {
					case sr = <-work:
					case <-done:
						return
					}
				}
			}(sr)
		}
	}
}

// serveOne runs the handler for one request and writes its response.
func (st *serveState) serveOne(sr *serveReq) {
	st.m.serveStart(sr.msg)
	st.t.mu.Lock()
	h := st.t.handler
	st.t.mu.Unlock()
	var resp Message
	if h == nil {
		resp = ToErrResp(fmt.Errorf("node not serving"))
	} else {
		// WithRemote returns ctx unchanged for untraced requests, so the
		// common path allocates no context.
		hctx := tracing.WithRemote(context.Background(), sr.trace, sr.span)
		r, herr := h(hctx, sr.from, sr.msg)
		switch {
		case herr != nil:
			resp = ToErrResp(herr)
		case r == nil:
			resp = ToErrResp(fmt.Errorf("nil response"))
		default:
			resp = r
		}
	}
	st.m.serveEnd()

	enc := getEncoder()
	err := enc.encode(sr.tag, 0, 0, st.t.addr, resp, st.t.useCRC())
	if err != nil {
		// An unencodable response (typically one that overflows the frame
		// cap) must still answer the call: silently dropping the reply
		// leaves the client blocked on its tag forever. encode resets the
		// encoder at entry, so reusing it for the error reply is safe.
		err = enc.encode(sr.tag, 0, 0, st.t.addr, ToErrResp(err), st.t.useCRC())
	}
	if err == nil {
		st.wmu.Lock()
		_, werr := enc.buffers().WriteTo(st.conn)
		st.wmu.Unlock()
		if werr != nil {
			// A half-written frame corrupts the stream for every pipelined
			// peer request; kill the connection.
			st.conn.Close()
		} else {
			st.m.wireWritten(enc.size())
		}
	}
	putEncoder(enc)
	// The wire no longer borrows anything: recycle the request struct
	// (unless the handler echoed it back) and any Acquire-built response.
	if resp != sr.msg {
		recycleMessage(sr.msg)
	}
	recycleResponse(resp)
	sr.msg = nil
	serveReqPool.Put(sr)
}

// clientConn is one pipelined outbound connection: a write-serialized
// binary frame stream out, a reader goroutine matching tagged responses
// to waiting callers. Its load (in-flight calls) steers the pool's
// least-loaded dispatch.
type clientConn struct {
	conn net.Conn
	m    *RPCMetrics

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan Message
	nextTag uint64
	err     error
	done    chan struct{}

	inflight int64 // guarded by mu; pool reads via load()
	lastUsed time.Time
}

func newClientConn(conn net.Conn, m *RPCMetrics) *clientConn {
	return &clientConn{
		conn:     conn,
		m:        m,
		pending:  make(map[uint64]chan Message),
		done:     make(chan struct{}),
		lastUsed: time.Now(),
	}
}

// fail records the terminal error, wakes every waiter, and closes the
// socket. Idempotent.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		close(cc.done)
	}
	cc.mu.Unlock()
	cc.conn.Close()
}

func (cc *clientConn) lastErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err
}

// load returns the in-flight call count (least-loaded dispatch).
func (cc *clientConn) load() int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.inflight
}

// idleSince reports how long the conn has been idle (zero while loaded).
func (cc *clientConn) idleSince(now time.Time) time.Duration {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.inflight > 0 {
		return 0
	}
	return now.Sub(cc.lastUsed)
}

// forget drops a pending tag after a caller stops waiting (cancellation);
// a late response with that tag is discarded by the read loop.
func (cc *clientConn) forget(tag uint64) {
	cc.mu.Lock()
	delete(cc.pending, tag)
	cc.mu.Unlock()
}

// readLoop dispatches responses to waiting callers until the stream dies.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			cc.fail(err)
			return
		}
		n := int(wire.U32(lenb[:], 0))
		if n < frameHeaderLen-4 || n > maxFrame {
			cc.fail(fmt.Errorf("transport: bad frame length %d", n))
			return
		}
		f := getFrame(n)
		if _, err := io.ReadFull(br, f.b); err != nil {
			cc.fail(err)
			return
		}
		cc.m.wireRead(n + 4)
		h, err := parseFrame(f.b)
		if err != nil {
			cc.fail(err)
			return
		}
		msg, err := decodeMessage(h.typ, h.body)
		if err != nil {
			cc.fail(err)
			return
		}
		if !borrows[h.typ] {
			putFrame(f)
		}
		cc.mu.Lock()
		ch := cc.pending[h.tag]
		delete(cc.pending, h.tag)
		cc.mu.Unlock()
		if ch != nil {
			ch <- msg // buffered: never blocks the loop
		}
	}
}

// call sends one tagged request and waits for its response or ctx.
func (cc *clientConn) call(ctx context.Context, from Addr, req Message, crc bool) (Message, error) {
	ch := make(chan Message, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.nextTag++
	tag := cc.nextTag
	cc.pending[tag] = ch
	cc.inflight++
	cc.mu.Unlock()
	defer func() {
		cc.mu.Lock()
		cc.inflight--
		cc.lastUsed = time.Now()
		cc.mu.Unlock()
	}()

	trace, span := tracing.WireContext(ctx)
	enc := getEncoder()
	err := enc.encode(tag, trace, span, from, req, crc)
	if err == nil {
		cc.wmu.Lock()
		if dl, ok := ctx.Deadline(); ok {
			_ = cc.conn.SetWriteDeadline(dl)
		} else {
			_ = cc.conn.SetWriteDeadline(time.Time{})
		}
		_, err = enc.buffers().WriteTo(cc.conn)
		cc.wmu.Unlock()
	}
	if err == nil {
		cc.m.wireWritten(enc.size())
	}
	putEncoder(enc)
	if err != nil {
		// A half-written frame corrupts the stream for everyone: kill the
		// connection.
		cc.fail(err)
		cc.forget(tag)
		return nil, err
	}

	select {
	case msg := <-ch:
		return msg, nil
	case <-ctx.Done():
		cc.forget(tag)
		return nil, ctx.Err()
	case <-cc.done:
		return nil, cc.lastErr()
	}
}

// Call sends the request over one of the destination pool's connections
// and waits for the tagged reply. A dead connection is dropped from the
// pool and the call retried once (all node RPCs are idempotent).
func (t *TCPTransport) Call(ctx context.Context, to Addr, req Message) (Message, error) {
	m := t.rpcMetrics()
	kind, start := m.startCall(req)
	sctx, sp := startSend(ctx, t.endpointTracer(), to, req)
	resp, err := t.doCall(sctx, to, req, m)
	finishSend(sp, err)
	m.finishCall(kind, start, resp, err)
	return resp, err
}

// doCall is Call's retry loop, without instrumentation.
func (t *TCPTransport) doCall(ctx context.Context, to Addr, req Message, m *RPCMetrics) (Message, error) {
	crc := t.useCRC()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			m.retried()
		}
		p, err := t.pool(to)
		if err != nil {
			return nil, err
		}
		cc, err := p.get(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := cc.call(ctx, t.addr, req, crc)
		if err == nil {
			return AsError(resp)
		}
		if ctx.Err() != nil {
			return nil, err
		}
		p.drop(cc, err)
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, lastErr)
}

// pool returns the destination's connection pool, creating it if needed.
func (t *TCPTransport) pool(to Addr) (*peerPool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	p := t.pools[to]
	if p == nil {
		p = &peerPool{t: t, to: to}
		t.pools[to] = p
	}
	return p, nil
}

// janitor evicts idle pooled connections until the transport closes.
func (t *TCPTransport) janitor() {
	defer t.wg.Done()
	for {
		_, _, _, idle := t.poolConfig()
		wait := idle / 4
		if wait < 10*time.Millisecond {
			wait = 10 * time.Millisecond
		}
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		select {
		case <-t.stop:
			return
		case <-time.After(wait):
		}
		t.mu.Lock()
		pools := make([]*peerPool, 0, len(t.pools))
		for _, p := range t.pools {
			pools = append(pools, p)
		}
		t.mu.Unlock()
		now := time.Now()
		for _, p := range pools {
			p.evictIdle(now, idle)
		}
	}
}

// Close shuts the listener and every connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	pools := t.pools
	t.pools = make(map[Addr]*peerPool)
	// Unblock in-flight serveConn reads so Close does not wait forever
	// on idle inbound connections.
	for c := range t.serving {
		c.Close()
	}
	t.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
