package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// MemNetwork is an in-process network: endpoints exchange messages by
// direct handler invocation, optionally with injected latency. It runs
// thousands of nodes in one process for deployment-scale tests.
type MemNetwork struct {
	mu      sync.RWMutex
	eps     map[Addr]*MemTransport
	nextID  int
	latency time.Duration
	// metrics, when set, instruments every endpoint on the network (the
	// in-process cluster is observed as one unit; per-node metrics come
	// from the node layer's own registries).
	metrics *RPCMetrics
}

// NewMemNetwork creates an empty in-memory network. latency, if non-zero,
// is the simulated one-way delay applied to every call.
func NewMemNetwork(latency time.Duration) *MemNetwork {
	return &MemNetwork{eps: make(map[Addr]*MemTransport), latency: latency}
}

// UseMetrics attaches RPC metrics to the network; all endpoints (existing
// and future) report through it.
func (n *MemNetwork) UseMetrics(m *RPCMetrics) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics = m
}

// rpcMetrics returns the network's metrics (nil when off).
func (n *MemNetwork) rpcMetrics() *RPCMetrics {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.metrics
}

// NewEndpoint creates a fresh endpoint with a unique address.
func (n *MemNetwork) NewEndpoint() *MemTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	addr := Addr(fmt.Sprintf("mem://n%d", n.nextID))
	ep := &MemTransport{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// NewEndpointAt creates an endpoint bound to a specific address,
// replacing any prior registration — the mem-network equivalent of a
// restarted process rebinding its old port. Durable-restart tests need
// the new incarnation reachable at the address the ring remembers.
func (n *MemNetwork) NewEndpointAt(addr Addr) *MemTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &MemTransport{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// lookupEndpoint finds a live endpoint.
func (n *MemNetwork) lookupEndpoint(a Addr) (*MemTransport, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.eps[a]
	return ep, ok
}

// remove deletes a closed endpoint.
func (n *MemNetwork) remove(a Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.eps, a)
}

// MemTransport is one in-memory endpoint.
type MemTransport struct {
	net  *MemNetwork
	addr Addr

	mu      sync.RWMutex
	handler Handler
	tracer  *tracing.Tracer
	closed  bool
}

var _ Transport = (*MemTransport)(nil)

// Addr returns the endpoint address.
func (t *MemTransport) Addr() Addr { return t.addr }

// Serve installs the handler.
func (t *MemTransport) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// UseTracer attaches a request tracer to this endpoint: outbound calls
// that belong to a sampled trace record an rpc.<kind> send span.
func (t *MemTransport) UseTracer(tr *tracing.Tracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracer = tr
}

// endpointTracer returns the endpoint's tracer (nil when off).
func (t *MemTransport) endpointTracer() *tracing.Tracer {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tracer
}

// Call invokes the destination's handler synchronously (plus the
// configured latency on each direction). Context cancellation is honored
// at every step the transport controls: before dispatch, during injected
// latency, and after the handler returns — so a batched fan-out that
// cancels its context stops promptly instead of draining every call.
func (t *MemTransport) Call(ctx context.Context, to Addr, req Message) (Message, error) {
	m := t.net.rpcMetrics()
	kind, start := m.startCall(req)
	sctx, sp := startSend(ctx, t.endpointTracer(), to, req)
	resp, err := t.call(sctx, to, req, m)
	finishSend(sp, err)
	m.finishCall(kind, start, resp, err)
	return resp, err
}

// call is the uninstrumented dispatch path.
func (t *MemTransport) call(ctx context.Context, to Addr, req Message, m *RPCMetrics) (Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	dst, ok := t.net.lookupEndpoint(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	dst.mu.RLock()
	h := dst.handler
	dstClosed := dst.closed
	dst.mu.RUnlock()
	if dstClosed || h == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if t.net.latency > 0 {
		select {
		case <-time.After(t.net.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m.serveStart(req)
	// The handler runs under a background-derived context carrying only
	// the caller's trace position — exactly what the TCP envelope would
	// deliver, so mem and TCP handlers behave identically.
	resp, err := h(tracing.HandlerContext(ctx), t.addr, req)
	m.serveEnd()
	if err != nil {
		return nil, err
	}
	if t.net.latency > 0 {
		select {
		case <-time.After(t.net.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// Close removes the endpoint from the network; subsequent calls to it
// fail with ErrUnreachable.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.net.remove(t.addr)
	return nil
}
