package transport

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/obs/tracing"
)

// TestTCPTracePropagation checks that trace and span IDs survive the wire:
// a traced call's envelope carries the client-side rpc span, and the
// handler context reconstructs it as a remote parent.
func TestTCPTracePropagation(t *testing.T) {
	srv, cli := tracedPair(t)

	srv.Serve(func(ctx context.Context, from Addr, req Message) (Message, error) {
		trID, spID := tracing.WireContext(ctx)
		return &GetResp{Found: true, Data: packIDs(trID, spID)}, nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cliTracer := cli.endpointTracer()
	sctx, root := cliTracer.ForceOp(ctx, "test.op")
	resp, err := Expect[*GetResp](cli.Call(sctx, srv.Addr(), &GetReq{}))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, gotSpan := unpackIDs(resp.Data)
	if gotTrace != root.TraceID() {
		t.Fatalf("server saw trace %x, want %x", gotTrace, root.TraceID())
	}
	// The span on the wire is the client's rpc.get send span, a child of
	// the root op.
	rootID := func() uint64 { _, id := root.IDs(); return id }()
	var rpcSpan *tracing.Span
	for _, sp := range cliTracer.Sink().Trace(root.TraceID()) {
		if sp.ID == gotSpan {
			cp := sp
			rpcSpan = &cp
		}
	}
	if rpcSpan == nil {
		t.Fatalf("span %x seen by the server is not in the client sink", gotSpan)
	}
	if rpcSpan.Name != "rpc.get" || rpcSpan.Parent != rootID {
		t.Fatalf("wire span = %q parent %x, want rpc.get under root %x",
			rpcSpan.Name, rpcSpan.Parent, rootID)
	}

	// An untraced call must put zero IDs on the wire.
	resp, err = Expect[*GetResp](cli.Call(ctx, srv.Addr(), &GetReq{}))
	if err != nil {
		t.Fatal(err)
	}
	if trID, spID := unpackIDs(resp.Data); trID != 0 || spID != 0 {
		t.Fatalf("untraced call leaked IDs (%x, %x) onto the wire", trID, spID)
	}
}

// TestTCPTraceNoCrossPollination hammers one pipelined connection with
// concurrent traced calls; every response must report the trace ID of the
// root that issued it, and the wire span must be that root's own rpc
// child. Run under -race this also exercises the envelope encode path.
func TestTCPTraceNoCrossPollination(t *testing.T) {
	srv, cli := tracedPair(t)

	srv.Serve(func(ctx context.Context, from Addr, req Message) (Message, error) {
		trID, spID := tracing.WireContext(ctx)
		return &GetResp{Found: true, Data: packIDs(trID, spID)}, nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cliTracer := cli.endpointTracer()

	const goroutines = 16
	const callsEach = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				sctx, root := cliTracer.ForceOp(ctx, "test.op")
				resp, err := Expect[*GetResp](cli.Call(sctx, srv.Addr(), &GetReq{}))
				root.End()
				if err != nil {
					errs <- err
					return
				}
				gotTrace, gotSpan := unpackIDs(resp.Data)
				if gotTrace != root.TraceID() {
					t.Errorf("cross-pollination: server saw trace %x, caller was %x",
						gotTrace, root.TraceID())
					return
				}
				rootID := func() uint64 { _, id := root.IDs(); return id }()
				found := false
				for _, sp := range cliTracer.Sink().Trace(gotTrace) {
					if sp.ID == gotSpan && sp.Parent == rootID {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("wire span %x is not a child of its own root %x", gotSpan, rootID)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMemTransportTraceParity checks the in-memory transport matches TCP
// semantics: handlers get a background-derived context carrying the
// caller's trace position as a remote parent.
func TestMemTransportTraceParity(t *testing.T) {
	net := NewMemNetwork(0)
	a, b := net.NewEndpoint(), net.NewEndpoint()
	tr := tracing.New(tracing.Config{Node: "mem-client"})
	a.UseTracer(tr)

	b.Serve(func(ctx context.Context, from Addr, req Message) (Message, error) {
		if ctx.Done() != nil {
			t.Error("mem handler context inherits caller cancellation")
		}
		trID, spID := tracing.WireContext(ctx)
		return &GetResp{Found: true, Data: packIDs(trID, spID)}, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sctx, root := tr.ForceOp(ctx, "test.op")
	resp, err := Expect[*GetResp](a.Call(sctx, b.Addr(), &GetReq{}))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, gotSpan := unpackIDs(resp.Data)
	if gotTrace != root.TraceID() || gotSpan == 0 {
		t.Fatalf("mem handler saw (%x, %x), want trace %x with a live span",
			gotTrace, gotSpan, root.TraceID())
	}
}

// tracedPair builds a server and client TCP transport with tracers
// attached, cleaned up with the test.
func tracedPair(t *testing.T) (srv, cli *TCPTransport) {
	t.Helper()
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.UseTracer(tracing.New(tracing.Config{Node: "server"}))
	cli, err = ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	cli.UseTracer(tracing.New(tracing.Config{Node: "client"}))
	return srv, cli
}

func packIDs(trace, span uint64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[:8], trace)
	binary.BigEndian.PutUint64(buf[8:], span)
	return buf
}

func unpackIDs(data []byte) (trace, span uint64) {
	if len(data) != 16 {
		return 0, 0
	}
	return binary.BigEndian.Uint64(data[:8]), binary.BigEndian.Uint64(data[8:])
}
