// Hand-rolled binary wire codec for the transport: a length-prefixed
// frame header plus per-message append/decode marshalers built on
// internal/wire. No reflection, no interface boxing, no per-message type
// dictionaries — the encoder appends straight into a pooled buffer and
// large payloads ride out as borrowed net.Buffers segments (writev), so a
// 64-item FetchRangeResp leaves the process without a coalescing copy.
//
// Frame layout (v1), big-endian:
//
//	u32  len    — byte count of everything after this field
//	u8   ver    — wireVersion; receivers reject other versions
//	u8   flags  — bit 0: frame carries a trailing CRC-32C
//	u8   typ    — message type (tPingReq..tErrResp)
//	u8   fromLen
//	u64  tag    — request/response matching on a multiplexed stream
//	u64  trace  — caller's trace ID (0 = untraced)
//	u64  span   — caller's span ID
//	...  from   — sender address, fromLen bytes
//	...  body   — message fields, layouts below
//	[u32 crc]   — CRC-32C over ver..body, present iff flagCRC
//
// Buffer-ownership contract (the whole point of the design):
//
//   - Decode borrows: []byte fields of decoded messages alias the frame
//     buffer. For message types that carry block payloads (the `borrows`
//     table) the frame buffer's ownership passes to the receiver of the
//     message and the buffer is never pooled; for every other type the
//     transport recycles the buffer as soon as decode returns.
//   - Encode borrows the other way: payload slices handed to the encoder
//     are read, not copied, until the frame is fully written.
//   - Decoded request structs come from per-type pools and are recycled
//     after the handler returns. Handlers may retain slice fields they
//     extracted (the store keeps PutReq.Data) but must not retain the
//     message struct itself.
package transport

import (
	"fmt"
	"net"
	"sync"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/wire"
)

const (
	// wireVersion is the protocol generation. Bump on any layout change;
	// receivers drop frames from other generations instead of guessing.
	wireVersion = 1

	// flagCRC marks a frame carrying a trailing CRC-32C.
	flagCRC = 0x01

	// frameHeaderLen is the fixed header size including the length prefix.
	frameHeaderLen = 4 + 4 + 24

	// maxFrame caps a frame's post-length-prefix size. Anything larger is
	// a corrupt or hostile stream; rejecting before allocation bounds
	// decode memory.
	maxFrame = 64 << 20

	// vectorMin is the payload size at which the encoder stops copying
	// into the frame buffer and emits a borrowed writev segment instead.
	// Below it the iovec bookkeeping costs more than the copy.
	vectorMin = 256

	// maxPooledBuf caps the capacity of frame buffers kept in the pool so
	// one giant migration frame does not pin megabytes forever.
	maxPooledBuf = 1 << 20
)

// Wire message types, fixed for v1. Order is append-only: new types take
// new numbers, removed types leave holes.
const (
	tInvalid byte = iota
	tPingReq
	tPingResp
	tFindSuccReq
	tFindSuccResp
	tNeighborsReq
	tNeighborsResp
	tNotifyReq
	tNotifyResp
	tPutReq
	tPutResp
	tGetReq
	tGetResp
	tRemoveReq
	tRemoveResp
	tLoadReq
	tLoadResp
	tSplitReq
	tSplitResp
	tRangeReq
	tRangeResp
	tMultiGetReq
	tMultiGetResp
	tFetchRangeReq
	tFetchRangeResp
	tPutPtrReq
	tPutPtrResp
	tSampleReq
	tSampleResp
	tStatsReq
	tStatsResp
	tTraceFetchReq
	tTraceFetchResp
	tErrResp
	tHealthReq
	tHealthResp
	tCensusReq
	tCensusResp
	numWireTypes
)

// wireType maps a message to its wire type byte (0 for foreign types).
func wireType(m Message) byte {
	switch m.(type) {
	case *PingReq:
		return tPingReq
	case *PingResp:
		return tPingResp
	case *FindSuccReq:
		return tFindSuccReq
	case *FindSuccResp:
		return tFindSuccResp
	case *NeighborsReq:
		return tNeighborsReq
	case *NeighborsResp:
		return tNeighborsResp
	case *NotifyReq:
		return tNotifyReq
	case *NotifyResp:
		return tNotifyResp
	case *PutReq:
		return tPutReq
	case *PutResp:
		return tPutResp
	case *GetReq:
		return tGetReq
	case *GetResp:
		return tGetResp
	case *RemoveReq:
		return tRemoveReq
	case *RemoveResp:
		return tRemoveResp
	case *LoadReq:
		return tLoadReq
	case *LoadResp:
		return tLoadResp
	case *SplitReq:
		return tSplitReq
	case *SplitResp:
		return tSplitResp
	case *RangeReq:
		return tRangeReq
	case *RangeResp:
		return tRangeResp
	case *MultiGetReq:
		return tMultiGetReq
	case *MultiGetResp:
		return tMultiGetResp
	case *FetchRangeReq:
		return tFetchRangeReq
	case *FetchRangeResp:
		return tFetchRangeResp
	case *PutPtrReq:
		return tPutPtrReq
	case *PutPtrResp:
		return tPutPtrResp
	case *SampleReq:
		return tSampleReq
	case *SampleResp:
		return tSampleResp
	case *StatsReq:
		return tStatsReq
	case *StatsResp:
		return tStatsResp
	case *TraceFetchReq:
		return tTraceFetchReq
	case *TraceFetchResp:
		return tTraceFetchResp
	case *ErrResp:
		return tErrResp
	case *HealthReq:
		return tHealthReq
	case *HealthResp:
		return tHealthResp
	case *CensusReq:
		return tCensusReq
	case *CensusResp:
		return tCensusResp
	default:
		return tInvalid
	}
}

// borrows marks the message types whose decoded form aliases block-payload
// bytes in the frame buffer. Their frame buffers change ownership at
// decode (store or caller keeps the data) and are never pooled; all other
// types are fully copied out at decode and their buffers recycle
// immediately.
var borrows = [numWireTypes]bool{
	tPutReq:         true,
	tGetResp:        true,
	tMultiGetResp:   true,
	tFetchRangeResp: true,
	tRangeResp:      true,
	tStatsResp:      true,
	tHealthResp:     true,
	tCensusResp:     true,
}

// --- message struct pools ---

// msgPools holds one pool per wire type so the serve path reuses request
// structs (and their slice capacity) instead of allocating per frame.
// Structs taken for client-side responses simply never come back — a pool
// miss is an allocation, exactly the pre-pool behavior.
var msgPools = [numWireTypes]*sync.Pool{
	tPingReq:        {New: func() any { return new(PingReq) }},
	tPingResp:       {New: func() any { return new(PingResp) }},
	tFindSuccReq:    {New: func() any { return new(FindSuccReq) }},
	tFindSuccResp:   {New: func() any { return new(FindSuccResp) }},
	tNeighborsReq:   {New: func() any { return new(NeighborsReq) }},
	tNeighborsResp:  {New: func() any { return new(NeighborsResp) }},
	tNotifyReq:      {New: func() any { return new(NotifyReq) }},
	tNotifyResp:     {New: func() any { return new(NotifyResp) }},
	tPutReq:         {New: func() any { return new(PutReq) }},
	tPutResp:        {New: func() any { return new(PutResp) }},
	tGetReq:         {New: func() any { return new(GetReq) }},
	tGetResp:        {New: func() any { return new(GetResp) }},
	tRemoveReq:      {New: func() any { return new(RemoveReq) }},
	tRemoveResp:     {New: func() any { return new(RemoveResp) }},
	tLoadReq:        {New: func() any { return new(LoadReq) }},
	tLoadResp:       {New: func() any { return new(LoadResp) }},
	tSplitReq:       {New: func() any { return new(SplitReq) }},
	tSplitResp:      {New: func() any { return new(SplitResp) }},
	tRangeReq:       {New: func() any { return new(RangeReq) }},
	tRangeResp:      {New: func() any { return new(RangeResp) }},
	tMultiGetReq:    {New: func() any { return new(MultiGetReq) }},
	tMultiGetResp:   {New: func() any { return new(MultiGetResp) }},
	tFetchRangeReq:  {New: func() any { return new(FetchRangeReq) }},
	tFetchRangeResp: {New: func() any { return new(FetchRangeResp) }},
	tPutPtrReq:      {New: func() any { return new(PutPtrReq) }},
	tPutPtrResp:     {New: func() any { return new(PutPtrResp) }},
	tSampleReq:      {New: func() any { return new(SampleReq) }},
	tSampleResp:     {New: func() any { return new(SampleResp) }},
	tStatsReq:       {New: func() any { return new(StatsReq) }},
	tStatsResp:      {New: func() any { return new(StatsResp) }},
	tTraceFetchReq:  {New: func() any { return new(TraceFetchReq) }},
	tTraceFetchResp: {New: func() any { return new(TraceFetchResp) }},
	tErrResp:        {New: func() any { return new(ErrResp) }},
	tHealthReq:      {New: func() any { return new(HealthReq) }},
	tHealthResp:     {New: func() any { return new(HealthResp) }},
	tCensusReq:      {New: func() any { return new(CensusReq) }},
	tCensusResp:     {New: func() any { return new(CensusResp) }},
}

// recycleMessage returns a decoded message struct to its type pool. Safe
// only when no one retains the struct itself; decode reassigns every
// field, so stale slice aliases in pooled structs are overwritten before
// the next use.
func recycleMessage(m Message) {
	if t := wireType(m); t != tInvalid {
		msgPools[t].Put(m)
	}
}

// AcquireFetchRangeResp returns a pooled response whose Items slice keeps
// its capacity across uses. A response built this way is recycled by the
// TCP transport after it is written to the wire, so a busy server's bulk
// read path stops allocating response scaffolding per RPC. Over the mem
// transport the struct simply escapes to the caller (never recycled).
func AcquireFetchRangeResp() *FetchRangeResp {
	r := msgPools[tFetchRangeResp].Get().(*FetchRangeResp)
	r.Items = r.Items[:0]
	r.More = false
	r.pooled = true
	return r
}

// AcquireMultiGetResp is AcquireFetchRangeResp for MultiGetResp.
func AcquireMultiGetResp() *MultiGetResp {
	r := msgPools[tMultiGetResp].Get().(*MultiGetResp)
	r.Items = r.Items[:0]
	r.pooled = true
	return r
}

// recycleResponse returns an Acquire-built response to its pool once the
// wire no longer borrows its payload slices. Non-pooled responses pass
// through untouched.
func recycleResponse(m Message) {
	switch v := m.(type) {
	case *FetchRangeResp:
		if v.pooled {
			v.pooled = false
			msgPools[tFetchRangeResp].Put(v)
		}
	case *MultiGetResp:
		if v.pooled {
			v.pooled = false
			msgPools[tMultiGetResp].Put(v)
		}
	}
}

// --- frame buffer pool ---

// frameBuf is a pooled read buffer. It is a wrapper (not a bare []byte)
// so pool round trips do not re-box the slice header.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

// getFrame returns a pooled buffer resized to exactly n bytes.
func getFrame(n int) *frameBuf {
	f := framePool.Get().(*frameBuf)
	if cap(f.b) < n {
		f.b = make([]byte, n)
	}
	f.b = f.b[:n]
	return f
}

// putFrame recycles a frame buffer whose bytes are no longer referenced.
func putFrame(f *frameBuf) {
	if cap(f.b) <= maxPooledBuf {
		framePool.Put(f)
	}
}

// --- encoder ---

// frameEncoder builds one frame: fixed header and small fields append into
// buf; payloads at least vectorMin long are recorded as (offset, slice)
// cuts and materialized as separate net.Buffers segments at finish, after
// buf can no longer reallocate. Encoders are pooled; one instance's buf,
// cut list, and iovec list all retain capacity across frames.
type frameEncoder struct {
	buf  []byte
	cuts []int    // buf offsets where a payload splices in
	pays [][]byte // the payloads, parallel to cuts
	iov  [][]byte // persistent iovec backing; out aliases it
	out  net.Buffers
	n    int // total frame bytes, set by finish
}

var encPool = sync.Pool{New: func() any { return new(frameEncoder) }}

func getEncoder() *frameEncoder  { return encPool.Get().(*frameEncoder) }
func putEncoder(e *frameEncoder) { encPool.Put(e) }

// blob appends a u32-length-prefixed payload, vectoring large slices.
func (e *frameEncoder) blob(p []byte) {
	e.buf = wire.AppendU32(e.buf, uint32(len(p)))
	if len(p) == 0 {
		return
	}
	if len(p) < vectorMin {
		e.buf = append(e.buf, p...)
		return
	}
	e.cuts = append(e.cuts, len(e.buf))
	e.pays = append(e.pays, p)
}

func (e *frameEncoder) peer(p *PeerInfo) {
	e.buf = append(e.buf, p.ID[:]...)
	e.buf = wire.AppendShortString(e.buf, string(p.Addr))
}

// encode builds the complete frame for one message. After it returns,
// buffers() yields the writev segments; the payload slices inside m stay
// borrowed until the write completes.
func (e *frameEncoder) encode(tag, trace, span uint64, from Addr, m Message, crc bool) error {
	typ := wireType(m)
	if typ == tInvalid {
		return fmt.Errorf("transport: cannot encode message type %T", m)
	}
	if len(from) > 0xff {
		return fmt.Errorf("transport: from address %q too long", from)
	}
	var flags byte
	if crc {
		flags = flagCRC
	}
	e.cuts = e.cuts[:0]
	e.pays = e.pays[:0]
	b := e.buf[:0]
	b = wire.AppendU32(b, 0) // length, patched below
	b = append(b, wireVersion, flags, typ, byte(len(from)))
	b = wire.AppendU64(b, tag)
	b = wire.AppendU64(b, trace)
	b = wire.AppendU64(b, span)
	b = append(b, from...)
	e.buf = b
	e.body(typ, m)

	total := len(e.buf) - 4
	for _, p := range e.pays {
		total += len(p)
	}
	if crc {
		sum := e.checksum()
		e.buf = wire.AppendU32(e.buf, sum)
		total += 4
	}
	if total > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds %d limit", total, maxFrame)
	}
	wire.PutU32(e.buf, 0, uint32(total))
	e.n = total + 4

	// Materialize writev segments only now: every append above may have
	// moved buf, so subslices taken earlier would dangle. The segments
	// build in e.iov (whose capacity persists across frames) and e.out is
	// a fresh header over it — net.Buffers.WriteTo consumes the header it
	// is given, so handing it e.iov itself would strip the capacity and
	// re-allocate the iovec list every frame.
	iov := e.iov[:0]
	prev := 0
	for i, cut := range e.cuts {
		iov = append(iov, e.buf[prev:cut], e.pays[i])
		prev = cut
	}
	iov = append(iov, e.buf[prev:])
	e.iov = iov
	e.out = net.Buffers(iov)
	return nil
}

// checksum computes the CRC-32C over ver..body in segment order (the CRC
// field itself is excluded; the length prefix is too).
func (e *frameEncoder) checksum() uint32 {
	var sum uint32
	prev := 4
	for i, cut := range e.cuts {
		sum = wire.ChecksumUpdate(sum, e.buf[prev:cut])
		sum = wire.ChecksumUpdate(sum, e.pays[i])
		prev = cut
	}
	return wire.ChecksumUpdate(sum, e.buf[prev:])
}

// buffers returns the frame's writev segments. Valid until the next
// encode on this encoder. net.Buffers.WriteTo consumes the slice, so
// callers pass &e.out directly and it is rebuilt next encode.
func (e *frameEncoder) buffers() *net.Buffers { return &e.out }

// size returns the total frame length in bytes, length prefix included.
func (e *frameEncoder) size() int { return e.n }

// appendBytes flattens the frame into dst (tests, fixtures, non-socket
// surfaces). Must be called before anything consumes buffers().
func (e *frameEncoder) appendBytes(dst []byte) []byte {
	for _, seg := range e.out {
		dst = append(dst, seg...)
	}
	return dst
}

// body appends the message fields for each wire type. Field order is part
// of the v1 wire contract (golden tests pin it); payload blobs go last so
// the cut list stays short.
func (e *frameEncoder) body(typ byte, m Message) {
	b := e.buf
	switch typ {
	case tPingReq, tNeighborsReq, tNotifyResp, tPutResp, tRemoveResp,
		tLoadReq, tSplitReq, tPutPtrResp, tStatsReq, tHealthReq, tCensusReq:
		return // empty bodies
	case tPingResp:
		v := m.(*PingResp)
		e.peer(&v.Self)
		return
	case tFindSuccReq:
		v := m.(*FindSuccReq)
		e.buf = append(b, v.Key[:]...)
		return
	case tFindSuccResp:
		v := m.(*FindSuccResp)
		b = wire.AppendBool(b, v.Done)
		e.buf = b
		e.peer(&v.Node)
		e.peer(&v.Pred)
		return
	case tNeighborsResp:
		v := m.(*NeighborsResp)
		e.peer(&v.Self)
		e.peer(&v.Pred)
		e.buf = wire.AppendU32(e.buf, uint32(len(v.Succs)))
		for i := range v.Succs {
			e.peer(&v.Succs[i])
		}
		return
	case tNotifyReq:
		v := m.(*NotifyReq)
		e.peer(&v.Cand)
		return
	case tPutReq:
		v := m.(*PutReq)
		b = append(b, v.Key[:]...)
		b = wire.AppendBool(b, v.Replicate)
		b = wire.AppendI64(b, v.TTL)
		e.buf = b
		e.blob(v.Data)
		return
	case tGetReq:
		v := m.(*GetReq)
		e.buf = append(b, v.Key[:]...)
		return
	case tGetResp:
		v := m.(*GetResp)
		b = wire.AppendBool(b, v.Found)
		b = wire.AppendShortString(b, string(v.Redirect))
		e.buf = b
		e.blob(v.Data)
		return
	case tRemoveReq:
		v := m.(*RemoveReq)
		b = append(b, v.Key[:]...)
		b = wire.AppendI64(b, v.DelaySec)
		b = wire.AppendBool(b, v.Replicate)
		e.buf = b
		return
	case tLoadResp:
		v := m.(*LoadResp)
		e.peer(&v.Self)
		b = wire.AppendI64(e.buf, v.RespBytes)
		b = wire.AppendI64(b, v.StoredBytes)
		e.buf = b
		return
	case tSplitResp:
		v := m.(*SplitResp)
		b = wire.AppendBool(b, v.Ok)
		b = append(b, v.Median[:]...)
		e.buf = b
		return
	case tRangeReq:
		v := m.(*RangeReq)
		b = append(b, v.Lo[:]...)
		b = append(b, v.Hi[:]...)
		b = wire.AppendBool(b, v.WithData)
		b = wire.AppendBool(b, v.WithPointers)
		b = wire.AppendI64(b, int64(v.Limit))
		e.buf = b
		return
	case tRangeResp:
		v := m.(*RangeResp)
		e.buf = wire.AppendU32(b, uint32(len(v.Items)))
		for i := range v.Items {
			it := &v.Items[i]
			nb := append(e.buf, it.Key[:]...)
			nb = wire.AppendI64(nb, it.Size)
			nb = wire.AppendShortString(nb, string(it.Pointer))
			e.buf = nb
			e.blob(it.Data)
		}
		return
	case tMultiGetReq:
		v := m.(*MultiGetReq)
		b = wire.AppendU32(b, uint32(len(v.Keys)))
		for i := range v.Keys {
			b = append(b, v.Keys[i][:]...)
		}
		e.buf = b
		return
	case tMultiGetResp:
		v := m.(*MultiGetResp)
		e.buf = wire.AppendU32(b, uint32(len(v.Items)))
		e.batchItems(v.Items)
		return
	case tFetchRangeReq:
		v := m.(*FetchRangeReq)
		b = append(b, v.Lo[:]...)
		b = append(b, v.Hi[:]...)
		b = wire.AppendI64(b, int64(v.Limit))
		e.buf = b
		return
	case tFetchRangeResp:
		v := m.(*FetchRangeResp)
		b = wire.AppendBool(b, v.More)
		e.buf = wire.AppendU32(b, uint32(len(v.Items)))
		e.batchItems(v.Items)
		return
	case tPutPtrReq:
		v := m.(*PutPtrReq)
		b = append(b, v.Key[:]...)
		b = wire.AppendShortString(b, string(v.Target))
		b = wire.AppendI64(b, v.Size)
		e.buf = b
		return
	case tSampleReq:
		v := m.(*SampleReq)
		e.buf = wire.AppendI64(b, int64(v.Hops))
		return
	case tSampleResp:
		v := m.(*SampleResp)
		e.peer(&v.Peer)
		return
	case tStatsResp:
		v := m.(*StatsResp)
		e.peer(&v.Self)
		e.peer(&v.Pred)
		b = wire.AppendI64(e.buf, v.RespBytes)
		b = wire.AppendI64(b, v.StoredBytes)
		b = wire.AppendI64(b, v.Blocks)
		e.buf = b
		e.blob(v.SnapshotJSON)
		return
	case tTraceFetchReq:
		v := m.(*TraceFetchReq)
		b = wire.AppendU64(b, v.Trace)
		b = wire.AppendI64(b, int64(v.Limit))
		e.buf = b
		return
	case tTraceFetchResp:
		v := m.(*TraceFetchResp)
		b = wire.AppendU32(b, uint32(len(v.Spans)))
		for i := range v.Spans {
			s := &v.Spans[i]
			b = wire.AppendU64(b, s.Trace)
			b = wire.AppendU64(b, s.ID)
			b = wire.AppendU64(b, s.Parent)
			b = wire.AppendShortString(b, s.Name)
			b = wire.AppendShortString(b, s.Node)
			b = wire.AppendI64(b, s.Start)
			b = wire.AppendI64(b, s.Dur)
			b = wire.AppendString(b, s.Attrs)
		}
		e.buf = b
		return
	case tErrResp:
		v := m.(*ErrResp)
		e.buf = wire.AppendString(b, v.Err)
		return
	case tHealthResp:
		v := m.(*HealthResp)
		e.peer(&v.Self)
		e.peer(&v.Pred)
		b = wire.AppendI64(e.buf, v.RespBytes)
		b = wire.AppendI64(b, v.StoredBytes)
		b = wire.AppendI64(b, v.Blocks)
		b = wire.AppendShortString(b, v.State)
		e.buf = b
		e.blob(v.StatusJSON)
		e.blob(v.RatesJSON)
		return
	case tCensusResp:
		v := m.(*CensusResp)
		e.peer(&v.Self)
		e.peer(&v.Pred)
		b = wire.AppendI64(e.buf, v.RespBytes)
		b = wire.AppendI64(b, v.StoredBytes)
		b = wire.AppendI64(b, v.Blocks)
		e.buf = b
		e.blob(v.ReportJSON)
		return
	}
}

// batchItems appends a run of BatchItems (shared by MultiGetResp and
// FetchRangeResp). The caller has already written the count.
func (e *frameEncoder) batchItems(items []BatchItem) {
	for i := range items {
		it := &items[i]
		b := append(e.buf, it.Key[:]...)
		b = wire.AppendBool(b, it.Found)
		b = wire.AppendShortString(b, string(it.Redirect))
		e.buf = b
		e.blob(it.Data)
	}
}

// --- decoder ---

// frameHeader is a parsed frame before message decode. from and body
// borrow the frame buffer.
type frameHeader struct {
	typ   byte
	flags byte
	tag   uint64
	trace uint64
	span  uint64
	from  []byte
	body  []byte
}

// parseFrame splits a frame (the bytes after the length prefix) into its
// header and body and verifies version and checksum.
func parseFrame(buf []byte) (frameHeader, error) {
	var h frameHeader
	if len(buf) < frameHeaderLen-4 {
		return h, fmt.Errorf("%w: frame of %d bytes", wire.ErrTruncated, len(buf))
	}
	if buf[0] != wireVersion {
		return h, fmt.Errorf("%w: wire version %d (want %d)", wire.ErrMalformed, buf[0], wireVersion)
	}
	h.flags = buf[1]
	h.typ = buf[2]
	fromLen := int(buf[3])
	r := wire.NewReader(buf[4:])
	h.tag = r.U64()
	h.trace = r.U64()
	h.span = r.U64()
	h.from = r.Take(fromLen)
	if err := r.Err(); err != nil {
		return h, err
	}
	body := buf[4+24+fromLen:]
	if h.flags&flagCRC != 0 {
		if len(body) < 4 {
			return h, fmt.Errorf("%w: CRC flag without CRC", wire.ErrTruncated)
		}
		body = body[:len(body)-4]
		want := wire.U32(buf, len(buf)-4)
		if got := wire.Checksum(buf[:len(buf)-4]); got != want {
			return h, fmt.Errorf("%w: CRC mismatch %08x != %08x", wire.ErrMalformed, got, want)
		}
	}
	if h.typ == tInvalid || h.typ >= numWireTypes {
		return h, fmt.Errorf("%w: unknown message type %d", wire.ErrMalformed, h.typ)
	}
	h.body = body
	return h, nil
}

// sliceFor reuses s's capacity for n elements, allocating only on growth.
func sliceFor[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func readKey(r *wire.Reader, k *keys.Key) {
	copy(k[:], r.Take(keys.Size))
}

func readPeer(r *wire.Reader, p *PeerInfo) {
	readKey(r, &p.ID)
	p.Addr = Addr(r.ShortString())
}

// minPeer is the smallest encoded PeerInfo (empty address).
const minPeer = keys.Size + 2

// decodeMessage decodes a frame body into a (pooled) message struct.
// []byte fields borrow body; see the package comment for ownership. On
// error the partially filled struct is discarded, not recycled — the
// error path is cold and dropping it avoids reasoning about aliases.
func decodeMessage(typ byte, body []byte) (Message, error) {
	r := wire.NewReader(body)
	m := decodeBody(typ, &r)
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("transport: decode %s: %w", kindNames[wireKinds[typ]], err)
	}
	return m, nil
}

// decodeBody reads one message's fields. Split from decodeMessage so the
// trailing-garbage check and error wrap live in one place.
func decodeBody(typ byte, r *wire.Reader) Message {
	m := msgPools[typ].Get().(Message)
	switch typ {
	case tPingReq, tNeighborsReq, tNotifyResp, tPutResp, tRemoveResp,
		tLoadReq, tSplitReq, tPutPtrResp, tStatsReq, tHealthReq, tCensusReq:
		return m
	case tPingResp:
		v := m.(*PingResp)
		readPeer(r, &v.Self)
	case tFindSuccReq:
		v := m.(*FindSuccReq)
		readKey(r, &v.Key)
	case tFindSuccResp:
		v := m.(*FindSuccResp)
		v.Done = r.Bool()
		readPeer(r, &v.Node)
		readPeer(r, &v.Pred)
	case tNeighborsResp:
		v := m.(*NeighborsResp)
		readPeer(r, &v.Self)
		readPeer(r, &v.Pred)
		n := r.Count(minPeer)
		v.Succs = sliceFor(v.Succs, n)
		for i := range v.Succs {
			readPeer(r, &v.Succs[i])
		}
	case tNotifyReq:
		v := m.(*NotifyReq)
		readPeer(r, &v.Cand)
	case tPutReq:
		v := m.(*PutReq)
		readKey(r, &v.Key)
		v.Replicate = r.Bool()
		v.TTL = r.I64()
		v.Data = r.Bytes()
	case tGetReq:
		v := m.(*GetReq)
		readKey(r, &v.Key)
	case tGetResp:
		v := m.(*GetResp)
		v.Found = r.Bool()
		v.Redirect = Addr(r.ShortString())
		v.Data = r.Bytes()
	case tRemoveReq:
		v := m.(*RemoveReq)
		readKey(r, &v.Key)
		v.DelaySec = r.I64()
		v.Replicate = r.Bool()
	case tLoadResp:
		v := m.(*LoadResp)
		readPeer(r, &v.Self)
		v.RespBytes = r.I64()
		v.StoredBytes = r.I64()
	case tSplitResp:
		v := m.(*SplitResp)
		v.Ok = r.Bool()
		readKey(r, &v.Median)
	case tRangeReq:
		v := m.(*RangeReq)
		readKey(r, &v.Lo)
		readKey(r, &v.Hi)
		v.WithData = r.Bool()
		v.WithPointers = r.Bool()
		v.Limit = int(r.I64())
	case tRangeResp:
		v := m.(*RangeResp)
		n := r.Count(keys.Size + 8 + 2 + 4)
		v.Items = sliceFor(v.Items, n)
		for i := range v.Items {
			it := &v.Items[i]
			readKey(r, &it.Key)
			it.Size = r.I64()
			it.Pointer = Addr(r.ShortString())
			it.Data = r.Bytes()
		}
	case tMultiGetReq:
		v := m.(*MultiGetReq)
		n := r.Count(keys.Size)
		v.Keys = sliceFor(v.Keys, n)
		for i := range v.Keys {
			readKey(r, &v.Keys[i])
		}
	case tMultiGetResp:
		v := m.(*MultiGetResp)
		n := r.Count(minBatchItem)
		v.Items = readBatchItems(r, sliceFor(v.Items, n))
	case tFetchRangeReq:
		v := m.(*FetchRangeReq)
		readKey(r, &v.Lo)
		readKey(r, &v.Hi)
		v.Limit = int(r.I64())
	case tFetchRangeResp:
		v := m.(*FetchRangeResp)
		v.More = r.Bool()
		n := r.Count(minBatchItem)
		v.Items = readBatchItems(r, sliceFor(v.Items, n))
	case tPutPtrReq:
		v := m.(*PutPtrReq)
		readKey(r, &v.Key)
		v.Target = Addr(r.ShortString())
		v.Size = r.I64()
	case tSampleReq:
		v := m.(*SampleReq)
		v.Hops = int(r.I64())
	case tSampleResp:
		v := m.(*SampleResp)
		readPeer(r, &v.Peer)
	case tStatsResp:
		v := m.(*StatsResp)
		readPeer(r, &v.Self)
		readPeer(r, &v.Pred)
		v.RespBytes = r.I64()
		v.StoredBytes = r.I64()
		v.Blocks = r.I64()
		v.SnapshotJSON = r.Bytes()
	case tTraceFetchReq:
		v := m.(*TraceFetchReq)
		v.Trace = r.U64()
		v.Limit = int(r.I64())
	case tTraceFetchResp:
		v := m.(*TraceFetchResp)
		n := r.Count(3*8 + 2 + 2 + 8 + 8 + 4)
		v.Spans = sliceFor(v.Spans, n)
		for i := range v.Spans {
			s := &v.Spans[i]
			*s = tracing.Span{
				Trace:  r.U64(),
				ID:     r.U64(),
				Parent: r.U64(),
				Name:   r.ShortString(),
				Node:   r.ShortString(),
				Start:  r.I64(),
				Dur:    r.I64(),
				Attrs:  r.String(),
			}
		}
	case tErrResp:
		v := m.(*ErrResp)
		v.Err = r.String()
	case tHealthResp:
		v := m.(*HealthResp)
		readPeer(r, &v.Self)
		readPeer(r, &v.Pred)
		v.RespBytes = r.I64()
		v.StoredBytes = r.I64()
		v.Blocks = r.I64()
		v.State = r.ShortString()
		v.StatusJSON = r.Bytes()
		v.RatesJSON = r.Bytes()
	case tCensusResp:
		v := m.(*CensusResp)
		readPeer(r, &v.Self)
		readPeer(r, &v.Pred)
		v.RespBytes = r.I64()
		v.StoredBytes = r.I64()
		v.Blocks = r.I64()
		v.ReportJSON = r.Bytes()
	}
	return m
}

// minBatchItem is the smallest encoded BatchItem.
const minBatchItem = keys.Size + 1 + 2 + 4

// readBatchItems fills a pre-sized BatchItem slice.
func readBatchItems(r *wire.Reader, items []BatchItem) []BatchItem {
	for i := range items {
		it := &items[i]
		readKey(r, &it.Key)
		it.Found = r.Bool()
		it.Redirect = Addr(r.ShortString())
		it.Data = r.Bytes()
	}
	return items
}
