package synth

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/trace"
)

// HarvardConfig controls the Harvard-like NFS workload generator: a week of
// research/email file-system activity by a population of users, with
// name-space-local tasks and 10–20 %/day data churn (Tables 1 and 3).
type HarvardConfig struct {
	Seed  uint64
	Users int // default 83, as in the paper's trace
	Days  int // default 7
	// TargetBytes is the initial active data volume (default 4 GB, a
	// scaled-down stand-in for the trace's 83 GB; experiments scale
	// per-node capacity accordingly).
	TargetBytes int64
	// SessionsPerDay is the mean number of work sessions per user-day.
	SessionsPerDay float64 // default 4
	// TasksPerSession is the mean number of tasks per session.
	TasksPerSession float64 // default 5
	// FilesPerTask is the mean number of files a task touches.
	FilesPerTask float64 // default 10
	// WriteTaskFrac is the fraction of tasks that also write.
	WriteTaskFrac float64 // default 0.3
	// ChurnPerDay is the target daily created/deleted byte volume as a
	// fraction of TargetBytes (default 0.15, matching Table 3's 10–20 %).
	ChurnPerDay float64
	// MaxReadBytes caps the bytes read from one file in one event.
	MaxReadBytes int64 // default 512 KB
}

func (c *HarvardConfig) applyDefaults() {
	if c.Users == 0 {
		c.Users = 83
	}
	if c.Days == 0 {
		c.Days = 7
	}
	if c.TargetBytes == 0 {
		c.TargetBytes = 4 << 30
	}
	if c.SessionsPerDay == 0 {
		c.SessionsPerDay = 4
	}
	if c.TasksPerSession == 0 {
		c.TasksPerSession = 5
	}
	if c.FilesPerTask == 0 {
		c.FilesPerTask = 10
	}
	if c.WriteTaskFrac == 0 {
		c.WriteTaskFrac = 0.3
	}
	if c.ChurnPerDay == 0 {
		c.ChurnPerDay = 0.15
	}
	if c.MaxReadBytes == 0 {
		c.MaxReadBytes = 512 << 10
	}
}

// liveDir tracks the mutable file population of one directory during
// generation, so deletes reference live files and creates extend it.
type liveDir struct {
	path    string
	files   []trace.File
	live    []bool
	nextGen int // suffix for trace-created files
	initial int // how many of files existed at t=0
}

func (d *liveDir) liveIndices() []int {
	var out []int
	for i, l := range d.live {
		if l {
			out = append(out, i)
		}
	}
	return out
}

// harvardGen holds generator state.
type harvardGen struct {
	cfg      HarvardConfig
	rng      *rand.Rand
	dirs     []*liveDir
	userDirs [][]int // per user: indices into dirs, favorites first
	favor    []*zipf // per user: zipf over userDirs
	events   []trace.Event
	// tree layout: [first dir index, dir count] per subtree
	homeRanges [][2]int
	projRanges [][2]int
	libRange   [2]int
	// daily churn quotas in bytes
	createQuota []int64
	deleteQuota []int64
	// taskChurnBudget is the create/delete byte volume one write task
	// should contribute so the daily quota is actually consumed.
	taskChurnBudget int64
	// maxFileBytes caps generated file sizes (scaled to the volume).
	maxFileBytes int64
}

// Harvard generates the Harvard-like workload.
func Harvard(cfg HarvardConfig) *trace.Trace {
	cfg.applyDefaults()
	g := &harvardGen{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x48415256)), // "HARV"
	}
	g.buildFilesystem()
	g.assignWorkingSets()
	quota := int64(float64(cfg.TargetBytes) * cfg.ChurnPerDay)
	g.createQuota = make([]int64, cfg.Days)
	g.deleteQuota = make([]int64, cfg.Days)
	for d := range g.createQuota {
		g.createQuota[d] = quota
		g.deleteQuota[d] = quota
	}
	// Spread the daily quota across the expected number of write tasks so
	// the generated volume actually tracks ChurnPerDay at every scale.
	writeTasksPerDay := float64(cfg.Users) * cfg.SessionsPerDay *
		cfg.TasksPerSession * cfg.WriteTaskFrac
	if writeTasksPerDay < 1 {
		writeTasksPerDay = 1
	}
	g.taskChurnBudget = int64(float64(quota) / writeTasksPerDay)
	// Schedule every session first, then generate them in global time
	// order so creates and deletes respect causality across users: a
	// file read in a later session can only be missing if a temporally
	// earlier (or overlapping) session deleted it.
	sessions := g.scheduleSessions()
	for _, s := range sessions {
		g.genSession(s.user, s.day, s.at)
	}
	sortEventsStable(g.events)

	tr := &trace.Trace{
		Name:     "harvard",
		Duration: time.Duration(cfg.Days) * 24 * time.Hour,
		Users:    cfg.Users,
		Events:   g.events,
	}
	for _, d := range g.dirs {
		// Initial snapshot: only the files that existed at t=0; files
		// appended during generation enter via OpCreate events.
		tr.Initial = append(tr.Initial, d.files[:d.initial]...)
	}
	return tr
}

// buildFilesystem creates the initial tree: per-user homes (60 % of bytes),
// shared project directories (35 %), and a small shared /lib (5 %).
func (g *harvardGen) buildFilesystem() {
	cfg := g.cfg
	homeBytes := cfg.TargetBytes * 60 / 100
	projBytes := cfg.TargetBytes * 35 / 100
	libBytes := cfg.TargetBytes - homeBytes - projBytes

	// Cap individual file sizes at ~1.5 % of the volume so the "very
	// large file" tail scales with the workload (at full scale this is
	// the paper's multi-GB tail; at test scales it stays below a node's
	// capacity most of the time).
	maxFile := cfg.TargetBytes / 64
	if maxFile < 1<<20 {
		maxFile = 1 << 20
	}
	g.maxFileBytes = maxFile
	addTree := func(root string, bytes int64, depth int) (first, count int) {
		dirs := GenTree(g.rng, TreeConfig{Root: root, TargetBytes: bytes, MaxDepth: depth, MaxFileBytes: maxFile})
		first = len(g.dirs)
		for i := range dirs {
			ld := &liveDir{path: dirs[i].Path, files: dirs[i].Files}
			ld.live = make([]bool, len(ld.files))
			for j := range ld.live {
				ld.live[j] = true
			}
			ld.initial = len(ld.files)
			g.dirs = append(g.dirs, ld)
		}
		return first, len(dirs)
	}

	perHome := homeBytes / int64(cfg.Users)
	g.homeRanges = make([][2]int, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		f, n := addTree(fmt.Sprintf("/home/u%03d", u), perHome, 5)
		g.homeRanges[u] = [2]int{f, n}
	}
	nProj := cfg.Users/3 + 1
	perProj := projBytes / int64(nProj)
	g.projRanges = make([][2]int, nProj)
	for p := 0; p < nProj; p++ {
		f, n := addTree(fmt.Sprintf("/proj/p%03d", p), perProj, 4)
		g.projRanges[p] = [2]int{f, n}
	}
	f, n := addTree("/lib", libBytes, 3)
	g.libRange = [2]int{f, n}
}

// assignWorkingSets gives each user their home dirs, 2–4 shared projects,
// and /lib, with Zipf-skewed favorites.
func (g *harvardGen) assignWorkingSets() {
	cfg := g.cfg
	g.userDirs = make([][]int, cfg.Users)
	g.favor = make([]*zipf, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		var ds []int
		hr := g.homeRanges[u]
		for i := 0; i < hr[1]; i++ {
			ds = append(ds, hr[0]+i)
		}
		nShared := 2 + g.rng.IntN(3)
		for s := 0; s < nShared; s++ {
			pr := g.projRanges[g.rng.IntN(len(g.projRanges))]
			for i := 0; i < pr[1]; i++ {
				ds = append(ds, pr[0]+i)
			}
		}
		lr := g.libRange
		for i := 0; i < lr[1]; i++ {
			ds = append(ds, lr[0]+i)
		}
		g.userDirs[u] = ds
		g.favor[u] = newZipf(len(ds), 1.1)
	}
}

type session struct {
	user int32
	day  int
	at   time.Duration
}

// scheduleSessions draws every user's session start times: mostly during
// the 9 AM–6 PM workday, sorted globally by start time.
func (g *harvardGen) scheduleSessions() []session {
	cfg := g.cfg
	day := 24 * time.Hour
	var out []session
	for u := 0; u < cfg.Users; u++ {
		for d := 0; d < cfg.Days; d++ {
			nSessions := poisson(g.rng, cfg.SessionsPerDay)
			for s := 0; s < nSessions; s++ {
				var startHour float64
				if g.rng.Float64() < 0.9 {
					startHour = 9 + g.rng.Float64()*9
				} else {
					startHour = g.rng.Float64() * 24
				}
				out = append(out, session{
					user: int32(u),
					day:  d,
					at:   time.Duration(d)*day + time.Duration(startHour*float64(time.Hour)),
				})
			}
		}
	}
	sortSessions(out)
	return out
}

func sortSessions(ss []session) {
	sortFunc := func(i, j int) bool {
		if ss[i].at != ss[j].at {
			return ss[i].at < ss[j].at
		}
		return ss[i].user < ss[j].user
	}
	sort.Slice(ss, sortFunc)
}

// genSession emits one session: a series of tasks separated by think times.
func (g *harvardGen) genSession(u int32, dayIdx int, at time.Duration) {
	cfg := g.cfg
	nTasks := 1 + poisson(g.rng, cfg.TasksPerSession-1)
	for t := 0; t < nTasks; t++ {
		at = g.genTask(u, dayIdx, at)
		// Inter-task think time: long enough to split tasks at every
		// threshold the paper studies (1 s … 1 min) with some mass at
		// each scale.
		at += time.Duration(expDur(g.rng, 90) * float64(time.Second))
		if at >= time.Duration(cfg.Days)*24*time.Hour {
			return
		}
	}
}

// genTask emits one task: reads of a locality-preserving run of files in
// one or two working-set directories, plus writes for write tasks. It
// returns the time after the last event.
func (g *harvardGen) genTask(u int32, dayIdx int, at time.Duration) time.Duration {
	cfg := g.cfg
	end := time.Duration(cfg.Days) * 24 * time.Hour
	nDirs := 1
	if g.rng.Float64() < 0.3 {
		nDirs = 2
	}
	filesWanted := 1 + poisson(g.rng, cfg.FilesPerTask-1)
	perDir := (filesWanted + nDirs - 1) / nDirs

	for di := 0; di < nDirs; di++ {
		dir := g.dirs[g.userDirs[u][g.favor[u].Sample(g.rng)]]
		liveIdx := dir.liveIndices()
		if len(liveIdx) == 0 {
			continue
		}
		// Read a consecutive run of files: tasks exhibit name-space
		// locality, the property D2's key encoding exploits.
		start := g.rng.IntN(len(liveIdx))
		for k := 0; k < perDir && start+k < len(liveIdx); k++ {
			f := dir.files[liveIdx[start+k]]
			length := clampI64(f.Size, 1, cfg.MaxReadBytes)
			if at >= end {
				return at
			}
			g.events = append(g.events, trace.Event{
				At: at, User: u, Op: trace.OpRead, Path: f.Path, Length: length,
			})
			// Intra-task gaps: mostly sub-second, occasionally a few
			// seconds, so the 1 s / 5 s / 15 s / 1 min thresholds of
			// Table 2 produce graded task sizes.
			gap := expDur(g.rng, 0.35)
			if k%5 == 4 {
				gap += expDur(g.rng, 3)
			}
			at += time.Duration(gap * float64(time.Second))
		}
		if g.rng.Float64() < cfg.WriteTaskFrac {
			// Churn lands in a uniformly chosen working-set directory:
			// reads concentrate on favorites, but creation and deletion
			// spread across the namespace (mail folders, build outputs),
			// as in the NFS trace whose daily churn Table 3 reports.
			wdir := g.dirs[pick(g.rng, g.userDirs[u])]
			at = g.genWrites(u, dayIdx, at, wdir)
		}
	}
	return at
}

// genWrites emits modify/create/delete events in dir, consuming the day's
// churn quota.
func (g *harvardGen) genWrites(u int32, dayIdx int, at time.Duration, dir *liveDir) time.Duration {
	end := time.Duration(g.cfg.Days) * 24 * time.Hour
	step := func(meanSec float64) {
		at += time.Duration(expDur(g.rng, meanSec) * float64(time.Second))
	}
	// Modify one or two live files.
	liveIdx := dir.liveIndices()
	nMod := 1 + g.rng.IntN(2)
	for m := 0; m < nMod && len(liveIdx) > 0; m++ {
		f := dir.files[pick(g.rng, liveIdx)]
		length := clampI64(int64(lognormal(g.rng, 8.5, 1.0)), 1, f.Size)
		offset := int64(0)
		if f.Size > length {
			offset = g.rng.Int64N(f.Size - length + 1)
		}
		if at >= end {
			return at
		}
		g.events = append(g.events, trace.Event{
			At: at, User: u, Op: trace.OpWrite, Path: f.Path, Offset: offset, Length: length,
		})
		g.createQuota[dayIdx] -= length // modifications count as written bytes
		step(0.5)
	}
	// Create new files until this task's share of the day's quota (and
	// the quota itself) is spent.
	taskCreate := g.taskChurnBudget
	for g.createQuota[dayIdx] > 0 && taskCreate > 0 {
		size := clampI64(int64(lognormal(g.rng, 9.01, 2.0)), 1, g.maxFileBytes)
		taskCreate -= size
		path := fmt.Sprintf("%s/g%05d", dir.path, dir.nextGen)
		dir.nextGen++
		dir.files = append(dir.files, trace.File{Path: path, Size: size})
		dir.live = append(dir.live, true)
		if at >= end {
			return at
		}
		g.events = append(g.events, trace.Event{
			At: at, User: u, Op: trace.OpCreate, Path: path, Length: size,
		})
		g.createQuota[dayIdx] -= size
		step(0.5)
	}
	// Delete live files until this task's share of the quota is spent.
	taskDelete := g.taskChurnBudget
	for g.deleteQuota[dayIdx] > 0 && taskDelete > 0 {
		liveIdx = dir.liveIndices()
		if len(liveIdx) <= 2 { // keep directories from emptying out
			break
		}
		i := pick(g.rng, liveIdx)
		f := dir.files[i]
		dir.live[i] = false
		if at >= end {
			return at
		}
		g.events = append(g.events, trace.Event{
			At: at, User: u, Op: trace.OpDelete, Path: f.Path,
		})
		g.deleteQuota[dayIdx] -= f.Size
		taskDelete -= f.Size
		step(0.5)
	}
	return at
}
