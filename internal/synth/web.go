package synth

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/defragdht/d2/internal/trace"
)

// WebConfig controls the NLANR-like web access workload: clients fetching
// URLs whose names are reversed-domain paths ("com.yahoo.www/index.html"
// becomes "/com.yahoo.www/index.html"), so ordering keys by name clusters
// each site's objects (§4.1).
type WebConfig struct {
	Seed    uint64
	Clients int // default 200
	Days    int // default 7
	Domains int // default 1500
	// PagesPerDomain is the mean object count per domain.
	PagesPerDomain float64 // default 40
	// TargetBytes approximates the total corpus size (default 4 GB).
	TargetBytes int64
	// RequestsPerClientHour is the mean request rate.
	RequestsPerClientHour float64 // default 15
	// PagesPerVisit is the mean pages fetched per site visit.
	PagesPerVisit float64 // default 8
}

func (c *WebConfig) applyDefaults() {
	if c.Clients == 0 {
		c.Clients = 200
	}
	if c.Days == 0 {
		c.Days = 7
	}
	if c.Domains == 0 {
		c.Domains = 1500
	}
	if c.PagesPerDomain == 0 {
		c.PagesPerDomain = 40
	}
	if c.TargetBytes == 0 {
		c.TargetBytes = 4 << 30
	}
	if c.RequestsPerClientHour == 0 {
		c.RequestsPerClientHour = 15
	}
	if c.PagesPerVisit == 0 {
		c.PagesPerVisit = 8
	}
}

// Web generates the web access workload: a read-only GET stream over a
// fixed corpus. Use WebCache to convert it into the insert-on-miss,
// expire-after-TTL workload of §10.
func Web(cfg WebConfig) *trace.Trace {
	cfg.applyDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x57454200)) // "WEB"

	// Build the corpus: Zipf-popular domains with lognormal object sizes.
	type site struct {
		objects []trace.File
	}
	sites := make([]site, cfg.Domains)
	var initial []trace.File
	bytesBudget := cfg.TargetBytes
	for d := 0; d < cfg.Domains && bytesBudget > 0; d++ {
		n := 1 + poisson(rng, cfg.PagesPerDomain-1)
		for p := 0; p < n && bytesBudget > 0; p++ {
			size := clampI64(int64(lognormal(rng, 9.4, 1.6)), 64, 64<<20) // median ~12 KB
			if size > bytesBudget {
				size = bytesBudget
			}
			f := trace.File{
				Path: fmt.Sprintf("/com.dom%04d.www/p%02d/o%04d", d, p%7, p),
				Size: size,
			}
			sites[d].objects = append(sites[d].objects, f)
			initial = append(initial, f)
			bytesBudget -= size
		}
	}

	domainPop := newZipf(cfg.Domains, 0.8)
	var events []trace.Event
	hours := cfg.Days * 24
	for c := 0; c < cfg.Clients; c++ {
		// Each client favors a handful of domains but also follows
		// global popularity.
		affinity := make([]int, 8)
		for i := range affinity {
			affinity[i] = domainPop.Sample(rng)
		}
		for h := 0; h < hours; h++ {
			// Web traffic has a mild diurnal cycle.
			mean := cfg.RequestsPerClientHour
			hourOfDay := h % 24
			if hourOfDay < 7 {
				mean *= 0.3
			}
			budget := poisson(rng, mean)
			for budget > 0 {
				var d int
				if rng.Float64() < 0.25 {
					d = affinity[rng.IntN(len(affinity))]
				} else {
					d = domainPop.Sample(rng)
				}
				objs := sites[d].objects
				if len(objs) == 0 {
					budget--
					continue
				}
				// A visit reads several objects of the same site:
				// name-space locality in the URL ordering.
				nPages := 1 + poisson(rng, cfg.PagesPerVisit-1)
				if nPages > budget {
					nPages = budget
				}
				at := time.Duration(h)*time.Hour +
					time.Duration(rng.Float64()*float64(time.Hour))
				start := rng.IntN(len(objs))
				for p := 0; p < nPages && start+p < len(objs); p++ {
					f := objs[start+p]
					events = append(events, trace.Event{
						At: at, User: int32(c), Op: trace.OpRead,
						Path: f.Path, Length: f.Size,
					})
					at += time.Duration(expDur(rng, 2) * float64(time.Second))
					budget--
				}
			}
		}
	}
	sortEventsStable(events)
	return &trace.Trace{
		Name:     "web",
		Duration: time.Duration(cfg.Days) * 24 * time.Hour,
		Users:    cfg.Clients,
		Initial:  initial,
		Events:   events,
	}
}

// expiryHeap orders cached objects by expiry time.
type expiryEntry struct {
	at   time.Duration
	path string
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WebCache converts a GET stream into the Squirrel-style DHT web-cache
// workload of §10: a requested object missing from the cache is inserted
// (OpCreate), a present one is read (OpRead), and objects not refreshed
// within ttl are evicted (OpDelete). The cache starts empty, producing the
// extreme data churn of Table 3's Webcache rows.
func WebCache(web *trace.Trace, ttl time.Duration) *trace.Trace {
	sizes := make(map[string]int64, len(web.Initial))
	for _, f := range web.Initial {
		sizes[f.Path] = f.Size
	}
	expiry := make(map[string]time.Duration)
	var pending expiryHeap
	var events []trace.Event

	evictDue := func(now time.Duration) {
		for len(pending) > 0 && pending[0].at <= now {
			e := heap.Pop(&pending).(expiryEntry)
			exp, ok := expiry[e.path]
			if !ok || exp != e.at {
				continue // refreshed since this entry was queued
			}
			delete(expiry, e.path)
			events = append(events, trace.Event{
				At: e.at, User: 0, Op: trace.OpDelete, Path: e.path,
			})
		}
	}

	for i := range web.Events {
		ev := web.Events[i]
		evictDue(ev.At)
		size := sizes[ev.Path]
		if size == 0 {
			size = ev.Length
		}
		if _, cached := expiry[ev.Path]; cached {
			events = append(events, trace.Event{
				At: ev.At, User: ev.User, Op: trace.OpRead, Path: ev.Path, Length: size,
			})
		} else {
			events = append(events, trace.Event{
				At: ev.At, User: ev.User, Op: trace.OpCreate, Path: ev.Path, Length: size,
			})
		}
		exp := ev.At + ttl
		expiry[ev.Path] = exp
		heap.Push(&pending, expiryEntry{at: exp, path: ev.Path})
	}
	evictDue(web.Duration)

	return &trace.Trace{
		Name:     "webcache",
		Duration: web.Duration,
		Users:    web.Users,
		Initial:  nil, // the cache starts empty
		Events:   events,
	}
}
