package synth

import (
	"math/rand/v2"
	"time"

	"github.com/defragdht/d2/internal/trace"
)

// HPConfig controls the HP-like block-level disk workload: applications
// (identified by pid) accessing extents of a multi-disk server. The whole
// disk is modeled as one large file whose block numbers are the physical
// block numbers, so ordering keys by block number reproduces the paper's
// "ordered" scenario for HP (§4.1).
type HPConfig struct {
	Seed uint64
	Apps int // default 40
	Days int // default 7
	// DiskBytes is the disk size (default 2 GB, scaled from 40 GB).
	DiskBytes int64
	// RegionsPerApp is how many contiguous disk regions each app owns,
	// mimicking files allocated near each other by a local FS.
	RegionsPerApp int // default 6
	// BurstsPerAppHour is the mean access bursts per app per hour.
	BurstsPerAppHour float64 // default 25
	// MeanRunBlocks is the mean length of a sequential access run.
	MeanRunBlocks float64 // default 12
	// WriteFrac is the fraction of bursts that write.
	WriteFrac float64 // default 0.3
}

func (c *HPConfig) applyDefaults() {
	if c.Apps == 0 {
		c.Apps = 40
	}
	if c.Days == 0 {
		c.Days = 7
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 2 << 30
	}
	if c.RegionsPerApp == 0 {
		c.RegionsPerApp = 6
	}
	if c.BurstsPerAppHour == 0 {
		c.BurstsPerAppHour = 25
	}
	if c.MeanRunBlocks == 0 {
		c.MeanRunBlocks = 12
	}
	if c.WriteFrac == 0 {
		c.WriteFrac = 0.3
	}
}

// DiskPath is the pseudo-file representing the whole disk in HP traces.
const DiskPath = "/disk"

// HP generates the HP-like block-level workload.
func HP(cfg HPConfig) *trace.Trace {
	cfg.applyDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x48500042)) // "HP"

	totalBlocks := cfg.DiskBytes / trace.BlockSize
	// Carve the disk into contiguous per-app regions. Local file systems
	// put blocks written together near each other, which is exactly the
	// locality the ordered scenario exploits.
	type region struct{ start, size int64 }
	regions := make([][]region, cfg.Apps)
	nRegions := int64(cfg.Apps * cfg.RegionsPerApp)
	regionSize := totalBlocks / nRegions
	idx := int64(0)
	for r := int64(0); r < nRegions; r++ {
		app := int(r) % cfg.Apps
		regions[app] = append(regions[app], region{start: idx, size: regionSize})
		idx += regionSize
	}

	var events []trace.Event
	favor := newZipf(cfg.RegionsPerApp, 1.0)
	hours := cfg.Days * 24
	for app := 0; app < cfg.Apps; app++ {
		for h := 0; h < hours; h++ {
			// Apps are busier during the workday.
			mean := cfg.BurstsPerAppHour
			hourOfDay := h % 24
			if hourOfDay < 8 || hourOfDay > 19 {
				mean *= 0.25
			}
			n := poisson(rng, mean)
			for b := 0; b < n; b++ {
				at := time.Duration(h)*time.Hour +
					time.Duration(rng.Float64()*float64(time.Hour))
				reg := regions[app][favor.Sample(rng)]
				run := 1 + int64(poisson(rng, cfg.MeanRunBlocks-1))
				start := reg.start
				if reg.size > run {
					start += rng.Int64N(reg.size - run)
				} else {
					run = reg.size
				}
				op := trace.OpRead
				if rng.Float64() < cfg.WriteFrac {
					op = trace.OpWrite
				}
				events = append(events, trace.Event{
					At:     at,
					User:   int32(app),
					Op:     op,
					Path:   DiskPath,
					Offset: start * trace.BlockSize,
					Length: run * trace.BlockSize,
				})
			}
		}
	}
	sortEventsStable(events)
	return &trace.Trace{
		Name:     "hp",
		Duration: time.Duration(cfg.Days) * 24 * time.Hour,
		Users:    cfg.Apps,
		Initial:  []trace.File{{Path: DiskPath, Size: cfg.DiskBytes}},
		Events:   events,
	}
}
