// Package synth generates the synthetic workloads and failure schedules
// that stand in for the paper's proprietary traces: a Harvard-like NFS
// workload, an HP-like block-level disk workload, an NLANR-like web
// workload, and a PlanetLab-like node failure schedule. All generators are
// deterministic given their seed. DESIGN.md documents why each substitution
// preserves the behaviour the experiments measure.
package synth

import (
	"math"
	"math/rand/v2"
	"sort"
)

// lognormal samples exp(N(mu, sigma)) — the file-size distribution: most
// files are small with a multi-order-of-magnitude heavy tail, matching the
// paper's observation that mean and max file sizes differ by over four
// orders of magnitude (§10).
func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// expDur samples an exponential with the given mean.
func expDur(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha using a precomputed CDF. It models popularity skew in
// file, directory, domain, and URL choice.
type zipf struct {
	cdf []float64
}

// newZipf builds a Zipf sampler over n ranks with exponent alpha.
func newZipf(n int, alpha float64) *zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipf{cdf: cdf}
}

// Sample draws one rank.
func (z *zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *zipf) N() int { return len(z.cdf) }

// poisson samples a Poisson variate with the given mean (Knuth's method;
// means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // numerical guard for absurd means
			return k
		}
	}
}

// pick returns a uniformly random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.IntN(len(xs))]
}

// clampI64 bounds v to [lo, hi].
func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
