package synth

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/defragdht/d2/internal/trace"
)

// TreeConfig controls synthetic directory tree generation.
type TreeConfig struct {
	// Root is the path prefix under which the tree is generated, without a
	// trailing slash (e.g. "/home/u7").
	Root string
	// TargetBytes is the approximate total size of generated files.
	TargetBytes int64
	// MeanSubdirs is the mean number of subdirectories per directory.
	MeanSubdirs float64
	// MeanFiles is the mean number of files per directory.
	MeanFiles float64
	// MaxDepth bounds directory nesting below Root.
	MaxDepth int
	// SizeMu and SizeSigma parameterize the lognormal file size (bytes).
	// Zero values default to median 8 KB with sigma 2.0.
	SizeMu    float64
	SizeSigma float64
	// MaxFileBytes caps individual file sizes (0 means 256 MB).
	MaxFileBytes int64
}

func (c *TreeConfig) applyDefaults() {
	if c.MeanSubdirs == 0 {
		c.MeanSubdirs = 3
	}
	if c.MeanFiles == 0 {
		c.MeanFiles = 8
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.SizeMu == 0 {
		c.SizeMu = 9.01 // ln(8192): median 8 KB
	}
	if c.SizeSigma == 0 {
		c.SizeSigma = 2.0
	}
	if c.MaxFileBytes == 0 {
		c.MaxFileBytes = 256 << 20
	}
}

// Dir is one directory of a generated tree with its direct files.
type Dir struct {
	Path  string
	Files []trace.File
}

// Bytes returns the total size of the directory's direct files.
func (d *Dir) Bytes() int64 {
	var total int64
	for _, f := range d.Files {
		total += f.Size
	}
	return total
}

// GenTree generates a directory tree under cfg.Root totalling roughly
// cfg.TargetBytes, returning directories in preorder-traversal order. File
// and directory names are short and unique within their parent.
func GenTree(rng *rand.Rand, cfg TreeConfig) []Dir {
	cfg.applyDefaults()
	var out []Dir
	var remaining = cfg.TargetBytes

	var walk func(path string, depth int)
	walk = func(path string, depth int) {
		if remaining <= 0 {
			return
		}
		d := Dir{Path: path}
		nFiles := 1 + poisson(rng, cfg.MeanFiles-1)
		for i := 0; i < nFiles && remaining > 0; i++ {
			size := clampI64(int64(lognormal(rng, cfg.SizeMu, cfg.SizeSigma)), 1, cfg.MaxFileBytes)
			if size > remaining {
				size = remaining
			}
			d.Files = append(d.Files, trace.File{
				Path: fmt.Sprintf("%s/f%03d", path, i),
				Size: size,
			})
			remaining -= size
		}
		out = append(out, d)
		if depth >= cfg.MaxDepth || remaining <= 0 {
			return
		}
		nSub := poisson(rng, cfg.MeanSubdirs)
		for i := 0; i < nSub && remaining > 0; i++ {
			walk(fmt.Sprintf("%s/d%03d", path, i), depth+1)
		}
	}
	// Keep sprouting top-level subtrees until the byte budget is spent, so
	// TargetBytes is met even when a single walk terminates early.
	for i := 0; remaining > 0; i++ {
		walk(fmt.Sprintf("%s/t%03d", cfg.Root, i), 0)
		if i > 1<<20 {
			break // safety: cannot happen with sane configs
		}
	}
	return out
}

// Flatten returns all files of the given directories, preorder.
func Flatten(dirs []Dir) []trace.File {
	var out []trace.File
	for _, d := range dirs {
		out = append(out, d.Files...)
	}
	return out
}

// TotalBytes sums the sizes of all files in dirs.
func TotalBytes(dirs []Dir) int64 {
	var total int64
	for i := range dirs {
		total += dirs[i].Bytes()
	}
	return total
}

// sortEventsStable sorts events by time, breaking ties by user then path so
// generation order does not leak into the result.
func sortEventsStable(events []trace.Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if events[i].User != events[j].User {
			return events[i].User < events[j].User
		}
		return events[i].Path < events[j].Path
	})
}
