package synth

import (
	"math/rand/v2"
	"sort"
	"time"
)

// FailureConfig controls the PlanetLab-like node failure schedule used by
// the availability experiments (§8.1): independent per-node crash/repair
// cycles plus a few large correlated failure events, calibrated so the
// probability that all nodes of a 3-node replica group are simultaneously
// down at some point in the week is around 0.02 (§8.2).
type FailureConfig struct {
	Seed     uint64
	Nodes    int           // default 247, as in the paper
	Duration time.Duration // default 7 days
	// MeanUp and MeanDown are the mean lengths of up and down sessions.
	MeanUp   time.Duration // default 100 h
	MeanDown time.Duration // default 2 h
	// FlakySigma is the lognormal spread of per-node failure-rate
	// multipliers: some PlanetLab nodes fail far more often than others.
	FlakySigma float64 // default 0.8
	// CorrelatedEvents is the number of mass-failure events in the trace.
	CorrelatedEvents int // default 3
	// CorrelatedFrac is the fraction of nodes taken down by each event.
	CorrelatedFrac float64 // default 0.10
	// CorrelatedDown is the mean outage length of a correlated event.
	CorrelatedDown time.Duration // default 3 h
}

func (c *FailureConfig) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 247
	}
	if c.Duration == 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if c.MeanUp == 0 {
		c.MeanUp = 100 * time.Hour
	}
	if c.MeanDown == 0 {
		c.MeanDown = 2 * time.Hour
	}
	if c.FlakySigma == 0 {
		c.FlakySigma = 0.8
	}
	if c.CorrelatedEvents == 0 {
		c.CorrelatedEvents = 3
	}
	if c.CorrelatedFrac == 0 {
		c.CorrelatedFrac = 0.10
	}
	if c.CorrelatedDown == 0 {
		c.CorrelatedDown = 3 * time.Hour
	}
}

// Downtime is one contiguous outage of one node.
type Downtime struct {
	Start, End time.Duration
}

// Transition is a node going down or coming back up.
type Transition struct {
	At   time.Duration
	Node int
	Up   bool
}

// Schedule is a complete failure schedule: per-node sorted, merged outage
// intervals over the trace duration.
type Schedule struct {
	Nodes    int
	Duration time.Duration
	// ByNode[i] lists node i's outages, sorted and non-overlapping.
	ByNode [][]Downtime
}

// Failures generates a failure schedule.
func Failures(cfg FailureConfig) *Schedule {
	cfg.applyDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4641494c)) // "FAIL"
	s := &Schedule{Nodes: cfg.Nodes, Duration: cfg.Duration, ByNode: make([][]Downtime, cfg.Nodes)}

	// Independent crash/repair cycles with per-node flakiness.
	for n := 0; n < cfg.Nodes; n++ {
		flaky := lognormal(rng, 0, cfg.FlakySigma)
		meanUp := float64(cfg.MeanUp) / flaky
		t := time.Duration(expDur(rng, meanUp)) // first crash
		for t < cfg.Duration {
			down := time.Duration(expDur(rng, float64(cfg.MeanDown)))
			end := t + down
			if end > cfg.Duration {
				end = cfg.Duration
			}
			s.ByNode[n] = append(s.ByNode[n], Downtime{Start: t, End: end})
			t = end + time.Duration(expDur(rng, meanUp))
		}
	}

	// Correlated mass failures: a random subset crashes simultaneously.
	for e := 0; e < cfg.CorrelatedEvents; e++ {
		at := time.Duration(rng.Float64() * float64(cfg.Duration))
		down := time.Duration(expDur(rng, float64(cfg.CorrelatedDown)))
		end := at + down
		if end > cfg.Duration {
			end = cfg.Duration
		}
		for n := 0; n < cfg.Nodes; n++ {
			if rng.Float64() < cfg.CorrelatedFrac {
				s.ByNode[n] = append(s.ByNode[n], Downtime{Start: at, End: end})
			}
		}
	}

	for n := range s.ByNode {
		s.ByNode[n] = mergeDowntimes(s.ByNode[n])
	}
	return s
}

// mergeDowntimes sorts and merges overlapping outage intervals.
func mergeDowntimes(ds []Downtime) []Downtime {
	if len(ds) == 0 {
		return ds
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Start < ds[j].Start })
	out := ds[:1]
	for _, d := range ds[1:] {
		last := &out[len(out)-1]
		if d.Start <= last.End {
			if d.End > last.End {
				last.End = d.End
			}
			continue
		}
		out = append(out, d)
	}
	return out
}

// IsUp reports whether node n is up at time at. Outage intervals are
// half-open [Start, End): a node is back up at the instant repair
// completes.
func (s *Schedule) IsUp(n int, at time.Duration) bool {
	ds := s.ByNode[n]
	i := sort.Search(len(ds), func(i int) bool { return ds[i].End > at })
	return i == len(ds) || ds[i].Start > at
}

// Transitions returns every down/up transition in time order.
func (s *Schedule) Transitions() []Transition {
	var out []Transition
	for n, ds := range s.ByNode {
		for _, d := range ds {
			out = append(out, Transition{At: d.Start, Node: n, Up: false})
			if d.End < s.Duration {
				out = append(out, Transition{At: d.End, Node: n, Up: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		// Process ups before downs at identical instants so a node count
		// never transiently underflows reality.
		return out[i].Up && !out[j].Up
	})
	return out
}

// DownFraction returns the fraction of the node-time that is down, a
// sanity metric for calibration.
func (s *Schedule) DownFraction() float64 {
	var down time.Duration
	for _, ds := range s.ByNode {
		for _, d := range ds {
			down += d.End - d.Start
		}
	}
	return float64(down) / float64(time.Duration(s.Nodes)*s.Duration)
}

// GroupFailureProb estimates, by Monte Carlo over random r-node groups,
// the probability that all r nodes are simultaneously down at some point
// during the schedule — the quantity the paper reports as 0.02 for r = 3
// without regeneration (§8.2).
func (s *Schedule) GroupFailureProb(r, samples int, seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, 0x47525550)) // "GRUP"
	hit := 0
	for i := 0; i < samples; i++ {
		group := make([]int, r)
		for j := range group {
			group[j] = rng.IntN(s.Nodes)
		}
		if s.groupEverAllDown(group) {
			hit++
		}
	}
	return float64(hit) / float64(samples)
}

// groupEverAllDown reports whether there is an instant at which every node
// in group is down, by fully intersecting their outage interval lists.
func (s *Schedule) groupEverAllDown(group []int) bool {
	cur := s.ByNode[group[0]]
	for _, n := range group[1:] {
		cur = intersectDowntimes(cur, s.ByNode[n])
		if len(cur) == 0 {
			return false
		}
	}
	return len(cur) > 0
}

// intersectDowntimes returns the intervals during which both input lists
// (sorted, non-overlapping) are down.
func intersectDowntimes(a, b []Downtime) []Downtime {
	var out []Downtime
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if lo < hi {
			out = append(out, Downtime{Start: lo, End: hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}
