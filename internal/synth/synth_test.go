package synth

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/trace"
)

// smallHarvard is a fast configuration for unit tests.
func smallHarvard(seed uint64) HarvardConfig {
	return HarvardConfig{
		Seed:        seed,
		Users:       12,
		Days:        3,
		TargetBytes: 64 << 20,
	}
}

func TestGenTreeRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	dirs := GenTree(rng, TreeConfig{Root: "/r", TargetBytes: 10 << 20})
	total := TotalBytes(dirs)
	if total < 10<<20 || total > 11<<20 {
		t.Errorf("total bytes = %d, want ~%d", total, 10<<20)
	}
	for _, d := range dirs {
		if !strings.HasPrefix(d.Path, "/r/") {
			t.Errorf("dir %q not under root", d.Path)
		}
		for _, f := range d.Files {
			if !strings.HasPrefix(f.Path, d.Path+"/") {
				t.Errorf("file %q not under dir %q", f.Path, d.Path)
			}
			if f.Size <= 0 {
				t.Errorf("file %q has size %d", f.Path, f.Size)
			}
		}
	}
}

func TestGenTreeDeterministic(t *testing.T) {
	a := GenTree(rand.New(rand.NewPCG(7, 7)), TreeConfig{Root: "/r", TargetBytes: 1 << 20})
	b := GenTree(rand.New(rand.NewPCG(7, 7)), TreeConfig{Root: "/r", TargetBytes: 1 << 20})
	if len(a) != len(b) {
		t.Fatalf("different dir counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path || len(a[i].Files) != len(b[i].Files) {
			t.Fatal("tree generation not deterministic")
		}
	}
}

func TestHarvardValid(t *testing.T) {
	tr := Harvard(smallHarvard(42))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events generated")
	}
	if len(tr.Initial) == 0 {
		t.Fatal("no initial files")
	}
	got := tr.TotalInitialBytes()
	if got < 60<<20 || got > 72<<20 {
		t.Errorf("initial bytes = %d, want ~%d", got, 64<<20)
	}
}

func TestHarvardDeterministic(t *testing.T) {
	a := Harvard(smallHarvard(1))
	b := Harvard(smallHarvard(1))
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Harvard(smallHarvard(2))
	if len(a.Events) == len(c.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestHarvardCausality(t *testing.T) {
	// Reads must overwhelmingly hit live files: deletes respect global
	// time order during generation.
	tr := Harvard(smallHarvard(3))
	cat := trace.NewCatalog(tr.Initial)
	deadReads := 0
	reads := 0
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Op == trace.OpRead {
			reads++
			if idx, ok := cat.Lookup(e.Path); !ok || !cat.Live(idx) {
				deadReads++
			}
		}
		cat.Apply(e)
	}
	if reads == 0 {
		t.Fatal("no reads")
	}
	if frac := float64(deadReads) / float64(reads); frac > 0.02 {
		t.Errorf("%.2f%% of reads hit dead files, want < 2%%", frac*100)
	}
}

func TestHarvardChurnMatchesTable3(t *testing.T) {
	// Table 3: Harvard writes and removes 10–20 % of resident data per
	// day (after day 1, which is partial in the paper too).
	tr := Harvard(HarvardConfig{Seed: 5, Users: 20, Days: 4, TargetBytes: 128 << 20})
	churn := trace.DailyChurn(tr)
	if len(churn) != 4 {
		t.Fatalf("got %d churn days", len(churn))
	}
	for d := 1; d < len(churn); d++ {
		w := churn[d].WriteRatio()
		if w < 0.04 || w > 0.45 {
			t.Errorf("day %d write ratio %.3f outside [0.04, 0.45]", d, w)
		}
	}
}

func TestHarvardTaskShapeMatchesTable2(t *testing.T) {
	// Table 2 shape: tasks at inter=5 s touch on the order of 10–20
	// files and ~50–150 blocks on average, and longer thresholds give
	// strictly larger tasks.
	tr := Harvard(HarvardConfig{Seed: 7, Users: 30, Days: 2, TargetBytes: 256 << 20})
	meanStats := func(inter time.Duration) (files, blocks float64) {
		tasks := trace.Tasks(tr, inter, 5*time.Minute)
		if len(tasks) == 0 {
			t.Fatal("no tasks")
		}
		var fsum, bsum float64
		for _, task := range tasks {
			fset := map[string]bool{}
			var blk float64
			for _, ei := range task.Events {
				e := &tr.Events[ei]
				fset[e.Path] = true
				_, n := e.BlockSpan()
				blk += float64(n) + 1 // data blocks + inode
			}
			fsum += float64(len(fset))
			bsum += blk
		}
		n := float64(len(tasks))
		return fsum / n, bsum / n
	}
	files5, blocks5 := meanStats(5 * time.Second)
	files60, blocks60 := meanStats(time.Minute)
	if files5 < 3 || files5 > 40 {
		t.Errorf("mean files per 5s-task = %.1f, want O(10)", files5)
	}
	if blocks5 < 15 || blocks5 > 400 {
		t.Errorf("mean blocks per 5s-task = %.1f, want O(100)", blocks5)
	}
	if files60 <= files5 || blocks60 <= blocks5 {
		t.Errorf("1min tasks (%.1f files, %.1f blocks) not larger than 5s tasks (%.1f, %.1f)",
			files60, blocks60, files5, blocks5)
	}
}

func TestHPValid(t *testing.T) {
	tr := HP(HPConfig{Seed: 1, Apps: 8, Days: 2, DiskBytes: 128 << 20})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Path != DiskPath {
			t.Fatalf("event %d path %q, want %q", i, e.Path, DiskPath)
		}
		if e.Offset+e.Length > 128<<20 {
			t.Fatalf("event %d range [%d, %d) beyond disk end", i, e.Offset, e.Offset+e.Length)
		}
		if e.Offset%trace.BlockSize != 0 || e.Length%trace.BlockSize != 0 {
			t.Fatalf("event %d not block aligned", i)
		}
	}
}

func TestHPSpatialLocality(t *testing.T) {
	// Each app's accesses must cluster in a small portion of the disk.
	tr := HP(HPConfig{Seed: 2, Apps: 10, Days: 1, DiskBytes: 256 << 20, RegionsPerApp: 4})
	minOff := map[int32]int64{}
	maxOff := map[int32]int64{}
	for i := range tr.Events {
		e := &tr.Events[i]
		if v, ok := minOff[e.User]; !ok || e.Offset < v {
			minOff[e.User] = e.Offset
		}
		if v, ok := maxOff[e.User]; !ok || e.Offset+e.Length > v {
			maxOff[e.User] = e.Offset + e.Length
		}
	}
	// Regions are striped, so an app's span can cover much of the disk;
	// instead check that distinct apps touch distinct block sets mostly.
	blocksOf := func(u int32) map[int64]bool {
		out := map[int64]bool{}
		for i := range tr.Events {
			e := &tr.Events[i]
			if e.User != u {
				continue
			}
			first, n := e.BlockSpan()
			for b := first; b < first+n; b++ {
				out[b] = true
			}
		}
		return out
	}
	a, b := blocksOf(0), blocksOf(1)
	overlap := 0
	for blk := range a {
		if b[blk] {
			overlap++
		}
	}
	if len(a) > 0 && float64(overlap)/float64(len(a)) > 0.05 {
		t.Errorf("apps 0 and 1 share %.1f%% of blocks, want ~0 (disjoint regions)",
			100*float64(overlap)/float64(len(a)))
	}
}

func TestWebValid(t *testing.T) {
	tr := Web(WebConfig{Seed: 1, Clients: 20, Days: 1, Domains: 100, TargetBytes: 64 << 20})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || len(tr.Initial) == 0 {
		t.Fatal("empty web trace")
	}
	known := map[string]bool{}
	for _, f := range tr.Initial {
		known[f.Path] = true
		if !strings.HasPrefix(f.Path, "/com.dom") {
			t.Fatalf("object path %q lacks reversed-domain prefix", f.Path)
		}
	}
	for i := range tr.Events {
		if !known[tr.Events[i].Path] {
			t.Fatalf("event references unknown object %q", tr.Events[i].Path)
		}
		if tr.Events[i].Op != trace.OpRead {
			t.Fatalf("web trace must be read-only, got %v", tr.Events[i].Op)
		}
	}
}

func TestWebCacheSemantics(t *testing.T) {
	web := Web(WebConfig{Seed: 2, Clients: 10, Days: 2, Domains: 50, TargetBytes: 16 << 20})
	wc := WebCache(web, 24*time.Hour)
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(wc.Initial) != 0 {
		t.Error("web cache must start empty")
	}
	cached := map[string]bool{}
	for i := range wc.Events {
		e := &wc.Events[i]
		switch e.Op {
		case trace.OpCreate:
			if cached[e.Path] {
				t.Fatalf("create of already-cached %q", e.Path)
			}
			cached[e.Path] = true
		case trace.OpRead:
			if !cached[e.Path] {
				t.Fatalf("read of uncached %q", e.Path)
			}
		case trace.OpDelete:
			if !cached[e.Path] {
				t.Fatalf("delete of uncached %q", e.Path)
			}
			delete(cached, e.Path)
		default:
			t.Fatalf("unexpected op %v", e.Op)
		}
	}
}

func TestWebCacheChurnIsExtreme(t *testing.T) {
	// Table 3: webcache insert volume rivals or exceeds resident data.
	web := Web(WebConfig{Seed: 3, Clients: 30, Days: 3, Domains: 2000, TargetBytes: 256 << 20})
	wc := WebCache(web, 24*time.Hour)
	churn := trace.DailyChurn(wc)
	extreme := false
	for d := 1; d < len(churn); d++ {
		if churn[d].WriteRatio() > 0.5 || churn[d].RemoveRatio() > 0.5 {
			extreme = true
		}
	}
	if !extreme {
		t.Error("webcache churn not extreme; Table 3 reproduction needs W_i/T_i ~ 1")
	}
}

func TestFailuresSchedule(t *testing.T) {
	s := Failures(FailureConfig{Seed: 1, Nodes: 50, Duration: 48 * time.Hour})
	if s.Nodes != 50 {
		t.Fatalf("Nodes = %d", s.Nodes)
	}
	for n, ds := range s.ByNode {
		for i, d := range ds {
			if d.Start >= d.End {
				t.Fatalf("node %d outage %d empty: %v", n, i, d)
			}
			if i > 0 && ds[i-1].End >= d.Start {
				t.Fatalf("node %d outages overlap after merge", n)
			}
			if d.End > s.Duration {
				t.Fatalf("node %d outage past end", n)
			}
		}
	}
}

func TestFailuresIsUpConsistentWithTransitions(t *testing.T) {
	s := Failures(FailureConfig{Seed: 2, Nodes: 30, Duration: 24 * time.Hour})
	up := make([]bool, s.Nodes)
	for i := range up {
		up[i] = true
	}
	for _, tr := range s.Transitions() {
		up[tr.Node] = tr.Up
		// Probe just after the transition.
		at := tr.At + time.Millisecond
		if at < s.Duration && s.IsUp(tr.Node, at) != tr.Up {
			t.Fatalf("IsUp(%d, %v) = %v, transitions say %v", tr.Node, at, !tr.Up, tr.Up)
		}
	}
}

func TestFailuresCalibration(t *testing.T) {
	// §8.2: P(all 3 replicas simultaneously down at some point in the
	// week) ≈ 0.02 without regeneration. Allow a generous band.
	s := Failures(FailureConfig{Seed: 11})
	p := s.GroupFailureProb(3, 4000, 99)
	if p < 0.004 || p > 0.10 {
		t.Errorf("3-group failure probability = %.4f, want ≈ 0.02 (band [0.004, 0.10])", p)
	}
	down := s.DownFraction()
	if down < 0.01 || down > 0.25 {
		t.Errorf("down fraction = %.3f, want a few percent", down)
	}
}

func TestIntersectDowntimes(t *testing.T) {
	a := []Downtime{{Start: 0, End: 10}, {Start: 20, End: 30}}
	b := []Downtime{{Start: 5, End: 25}}
	got := intersectDowntimes(a, b)
	want := []Downtime{{Start: 5, End: 10}, {Start: 20, End: 25}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := intersectDowntimes(a, nil); len(out) != 0 {
		t.Error("intersection with empty list must be empty")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	z := newZipf(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Error("rank 0 should be far more popular than rank 50")
	}
	if counts[0] < 1000 {
		t.Errorf("rank 0 drew %d of 10000, want heavy head", counts[0])
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var sum int
	n := 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 5)
	}
	mean := float64(sum) / float64(n)
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("poisson(5) sample mean = %.2f", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) must be 0")
	}
}
