package ring

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"github.com/defragdht/d2/internal/keys"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

func TestNewSortsAndDedupes(t *testing.T) {
	r := New([]keys.Key{k(30), k(10), k(20), k(10)})
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	for i, want := range []uint64{10, 20, 30} {
		if r.At(i) != k(want) {
			t.Errorf("At(%d) = %s, want %d", i, r.At(i).Short(), want)
		}
	}
}

func TestSuccessor(t *testing.T) {
	r := New([]keys.Key{k(10), k(20), k(30)})
	tests := []struct {
		name string
		key  keys.Key
		want keys.Key
	}{
		{"below all", k(5), k(10)},
		{"exact hit", k(20), k(20)},
		{"between", k(21), k(30)},
		{"wraps", k(31), k(10)},
		{"zero", keys.Zero, k(10)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Successor(tt.key); got != tt.want {
				t.Errorf("Successor(%s) = %s, want %s", tt.key.Short(), got.Short(), tt.want.Short())
			}
		})
	}
}

func TestReplicaGroupWrapsRing(t *testing.T) {
	r := New([]keys.Key{k(10), k(20), k(30), k(40)})
	got := r.ReplicaGroup(k(35), 3)
	want := []keys.Key{k(40), k(10), k(20)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ReplicaGroup[%d] = %s, want %s", i, got[i].Short(), want[i].Short())
		}
	}
}

func TestReplicaGroupClampedToRingSize(t *testing.T) {
	r := New([]keys.Key{k(10), k(20)})
	got := r.ReplicaGroup(k(5), 5)
	if len(got) != 2 {
		t.Fatalf("replica group of size %d, want 2 (ring size)", len(got))
	}
	if got[0] != k(10) || got[1] != k(20) {
		t.Error("replica group should cover each node exactly once")
	}
}

func TestRangeAndOwns(t *testing.T) {
	r := New([]keys.Key{k(10), k(20), k(30)})
	lo, hi := r.Range(1) // node 20 owns (10, 20]
	if lo != k(10) || hi != k(20) {
		t.Fatalf("Range(1) = (%s, %s], want (10, 20]", lo.Short(), hi.Short())
	}
	if !r.Owns(1, k(15)) || !r.Owns(1, k(20)) {
		t.Error("node 20 must own (10, 20]")
	}
	if r.Owns(1, k(10)) || r.Owns(1, k(25)) {
		t.Error("node 20 must not own keys outside (10, 20]")
	}
	// Node at rank 0 owns the wrapping range (30, 10].
	if !r.Owns(0, k(5)) || !r.Owns(0, k(35)) {
		t.Error("first node must own the wrapping range")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New([]keys.Key{k(42)})
	for _, key := range []keys.Key{keys.Zero, k(41), k(42), k(43), keys.MaxKey} {
		if !r.Owns(0, key) {
			t.Errorf("single node must own %s", key.Short())
		}
	}
}

func TestAddRemove(t *testing.T) {
	r := New([]keys.Key{k(10), k(30)})
	rank, err := r.Add(k(20))
	if err != nil || rank != 1 {
		t.Fatalf("Add(20) = (%d, %v), want (1, nil)", rank, err)
	}
	if _, err := r.Add(k(20)); err == nil {
		t.Error("duplicate Add must fail")
	}
	rank, err = r.Remove(k(20))
	if err != nil || rank != 1 {
		t.Fatalf("Remove(20) = (%d, %v), want (1, nil)", rank, err)
	}
	if _, err := r.Remove(k(20)); err == nil {
		t.Error("Remove of absent node must fail")
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d after add+remove, want 2", r.Len())
	}
}

func TestRankDistance(t *testing.T) {
	r := New([]keys.Key{k(10), k(20), k(30), k(40)})
	if d := r.RankDistance(0, 3); d != 3 {
		t.Errorf("RankDistance(0,3) = %d, want 3", d)
	}
	if d := r.RankDistance(3, 0); d != 1 {
		t.Errorf("RankDistance(3,0) = %d, want 1 (wrap)", d)
	}
	if d := r.RankDistance(2, 2); d != 0 {
		t.Errorf("RankDistance(2,2) = %d, want 0", d)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	r := New([]keys.Key{k(10), k(20)})
	c := r.Clone()
	if _, err := c.Add(k(15)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || c.Len() != 3 {
		t.Error("Clone must not share state with the original")
	}
}

// Property: for random rings, every key's successor is the unique node
// whose (pred, id] range contains it.
func TestQuickOwnershipPartition(t *testing.T) {
	f := func(seed uint64, probe [keys.Size]byte) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 1 + rng.IntN(20)
		ids := make([]keys.Key, n)
		for i := range ids {
			ids[i] = keys.Random(rng)
		}
		r := New(ids)
		key := keys.Key(probe)
		owner := r.SuccessorIndex(key)
		count := 0
		for i := 0; i < r.Len(); i++ {
			if r.Owns(i, key) {
				count++
				if i != owner {
					return false
				}
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add keeps the ring sorted.
func TestQuickAddKeepsSorted(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		r := New(nil)
		for i := 0; i < 50; i++ {
			if _, err := r.Add(keys.Random(rng)); err != nil {
				return false
			}
		}
		return sort.SliceIsSorted(r.IDs(), func(i, j int) bool {
			return r.At(i).Less(r.At(j))
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
