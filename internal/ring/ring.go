// Package ring maintains a sorted view of DHT node IDs on the circular key
// space and answers ownership queries: which node is the successor of a key,
// which r nodes form a key's replica group, and what key range each node is
// responsible for. The simulator, the analysis tools, and tests all share
// this view; live nodes answer the same queries from their routing state.
package ring

import (
	"fmt"
	"sort"

	"github.com/defragdht/d2/internal/keys"
)

// Ring is a sorted set of node IDs. The zero value is an empty ring ready
// for use. Ring is not safe for concurrent mutation.
type Ring struct {
	ids []keys.Key
}

// New builds a ring from the given node IDs. Duplicates are dropped.
func New(ids []keys.Key) *Ring {
	r := &Ring{ids: make([]keys.Key, len(ids))}
	copy(r.ids, ids)
	sort.Slice(r.ids, func(i, j int) bool { return r.ids[i].Less(r.ids[j]) })
	// Deduplicate in place.
	out := r.ids[:0]
	for i, id := range r.ids {
		if i == 0 || !id.Equal(r.ids[i-1]) {
			out = append(out, id)
		}
	}
	r.ids = out
	return r
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.ids) }

// IDs returns the sorted node IDs. The caller must not mutate the result.
func (r *Ring) IDs() []keys.Key { return r.ids }

// At returns the node ID at the given rank (sorted position).
func (r *Ring) At(i int) keys.Key { return r.ids[i] }

// Rank returns the sorted position of id and whether it is on the ring.
func (r *Ring) Rank(id keys.Key) (int, bool) {
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(id) })
	if i < len(r.ids) && r.ids[i].Equal(id) {
		return i, true
	}
	return i, false
}

// SuccessorIndex returns the rank of the node that owns key k: the node
// with the smallest ID ≥ k, wrapping to rank 0 past the highest ID.
// The ring must be non-empty.
func (r *Ring) SuccessorIndex(k keys.Key) int {
	if len(r.ids) == 0 {
		panic("ring: SuccessorIndex on empty ring")
	}
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(k) })
	if i == len(r.ids) {
		return 0
	}
	return i
}

// Successor returns the ID of the node owning key k.
func (r *Ring) Successor(k keys.Key) keys.Key { return r.ids[r.SuccessorIndex(k)] }

// ReplicaIndices returns the ranks of the rep nodes succeeding key k: the
// primary replica first, then the secondaries, clockwise. If the ring has
// fewer than rep nodes, every node is returned once.
func (r *Ring) ReplicaIndices(k keys.Key, rep int) []int {
	n := len(r.ids)
	if rep > n {
		rep = n
	}
	out := make([]int, 0, rep)
	start := r.SuccessorIndex(k)
	for i := 0; i < rep; i++ {
		out = append(out, (start+i)%n)
	}
	return out
}

// ReplicaGroup returns the IDs of the rep nodes succeeding key k.
func (r *Ring) ReplicaGroup(k keys.Key, rep int) []keys.Key {
	idx := r.ReplicaIndices(k, rep)
	out := make([]keys.Key, len(idx))
	for i, j := range idx {
		out[i] = r.ids[j]
	}
	return out
}

// PredecessorIndex returns the rank of the node immediately preceding the
// node at rank i, wrapping around the ring.
func (r *Ring) PredecessorIndex(i int) int {
	n := len(r.ids)
	return (i - 1 + n) % n
}

// Range returns the half-open key range (pred, id] owned by the node at
// rank i. With a single node, the range is the entire ring.
func (r *Ring) Range(i int) (lo, hi keys.Key) {
	return r.ids[r.PredecessorIndex(i)], r.ids[i]
}

// Owns reports whether the node at rank i is the primary owner of key k.
func (r *Ring) Owns(i int, k keys.Key) bool {
	if len(r.ids) == 1 {
		return true
	}
	lo, hi := r.Range(i)
	return k.Between(lo, hi)
}

// Add inserts a node ID, keeping the ring sorted. It returns the new rank,
// or an error if the ID is already present (IDs must be unique).
func (r *Ring) Add(id keys.Key) (int, error) {
	i, ok := r.Rank(id)
	if ok {
		return 0, fmt.Errorf("ring: duplicate node ID %s", id.Short())
	}
	r.ids = append(r.ids, keys.Key{})
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return i, nil
}

// Remove deletes a node ID. It returns the rank it occupied, or an error
// if the ID is not on the ring.
func (r *Ring) Remove(id keys.Key) (int, error) {
	i, ok := r.Rank(id)
	if !ok {
		return 0, fmt.Errorf("ring: unknown node ID %s", id.Short())
	}
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return i, nil
}

// Clone returns an independent copy of the ring.
func (r *Ring) Clone() *Ring {
	ids := make([]keys.Key, len(r.ids))
	copy(ids, r.ids)
	return &Ring{ids: ids}
}

// RankDistance returns the clockwise distance in ranks from node i to node
// j, used by Mercury-style small-world link selection.
func (r *Ring) RankDistance(i, j int) int {
	n := len(r.ids)
	return ((j-i)%n + n) % n
}
