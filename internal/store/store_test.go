// Engine-parametrized store suite: every behavioural case runs against
// both the in-memory store and the durable disk engine through the same
// store.Engine table, so the two implementations cannot drift apart.
package store_test

import (
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/store"
	"github.com/defragdht/d2/internal/store/disk"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

var t0 = time.Unix(1000, 0)

// engines is the implementation table: each test below runs once per row.
var engines = []struct {
	name string
	open func(t *testing.T) store.Engine
}{
	{"memory", func(t *testing.T) store.Engine { return store.New() }},
	{"disk", func(t *testing.T) store.Engine {
		s, err := disk.Open(t.TempDir(), disk.Options{Fsync: disk.FsyncNever})
		if err != nil {
			t.Fatalf("disk.Open: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}},
}

// forEachEngine runs fn once per engine implementation.
func forEachEngine(t *testing.T, fn func(t *testing.T, s store.Engine)) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			fn(t, eng.open(t))
		})
	}
}

func TestPutGetDelete(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.Put(k(1), []byte("hello"), 0, t0)
		b, ok := s.Get(k(1))
		if !ok || string(b.Data) != "hello" || b.IsPointer() {
			t.Fatalf("Get = (%+v, %v)", b, ok)
		}
		if s.Bytes() != 5 || s.Len() != 1 {
			t.Errorf("Bytes=%d Len=%d", s.Bytes(), s.Len())
		}
		s.Put(k(1), []byte("hi"), 0, t0) // replace shrinks accounting
		if s.Bytes() != 2 {
			t.Errorf("Bytes after replace = %d", s.Bytes())
		}
		if !s.Delete(k(1)) || s.Bytes() != 0 || s.Len() != 0 {
			t.Error("Delete accounting wrong")
		}
		if s.Delete(k(1)) {
			t.Error("double delete succeeded")
		}
	})
}

func TestPointerSemantics(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.PutPointer(k(1), "addr-a", 8192, t0)
		b, ok := s.Get(k(1))
		if !ok || !b.IsPointer() || b.Size != 8192 {
			t.Fatalf("pointer entry = %+v", b)
		}
		if s.Bytes() != 0 {
			t.Errorf("pointers must not count as stored bytes, got %d", s.Bytes())
		}
		// Data replaces the pointer.
		s.Put(k(1), make([]byte, 100), 0, t0)
		b, _ = s.Get(k(1))
		if b.IsPointer() || s.Bytes() != 100 {
			t.Error("data did not replace pointer cleanly")
		}
		// A later pointer must not clobber real data.
		s.PutPointer(k(1), "addr-b", 50, t0)
		if b, _ = s.Get(k(1)); b.IsPointer() {
			t.Error("pointer overwrote data")
		}
	})
}

func TestTTLSweep(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.Put(k(1), []byte("a"), time.Minute, t0)
		s.Put(k(2), []byte("b"), time.Hour, t0)
		s.Put(k(3), []byte("c"), 0, t0)
		if n := s.SweepExpired(t0.Add(10 * time.Minute)); n != 1 {
			t.Fatalf("swept %d, want 1", n)
		}
		if _, ok := s.Get(k(1)); ok {
			t.Error("expired block survived sweep")
		}
		if _, ok := s.Get(k(3)); !ok {
			t.Error("no-TTL block swept")
		}
		// Refresh extends life.
		s.Refresh(k(2), time.Hour, t0.Add(50*time.Minute))
		if n := s.SweepExpired(t0.Add(90 * time.Minute)); n != 0 {
			t.Errorf("refreshed block swept (%d)", n)
		}
		if s.Refresh(k(99), time.Hour, t0) {
			t.Error("Refresh of absent key succeeded")
		}
	})
}

func TestArcAndBytes(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		for i := uint64(1); i <= 10; i++ {
			s.Put(k(i*10), make([]byte, 100), 0, t0)
		}
		items := s.Arc(k(25), k(55))
		if len(items) != 3 { // 30, 40, 50
			t.Fatalf("Arc returned %d items", len(items))
		}
		if got := s.ArcBytes(k(25), k(55)); got != 300 {
			t.Errorf("ArcBytes = %d", got)
		}
		// Wrapping arc.
		if got := len(s.Arc(k(85), k(25))); got != 4 { // 90, 100, 10, 20
			t.Errorf("wrap arc = %d items", got)
		}
	})
}

// TestArcVisit pins the index-only walk the placement census sweeps
// with: key order, arc bounds (including the whole-ring lo==hi form and
// wrapping arcs), pointer metadata, and early termination.
func TestArcVisit(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		for i := uint64(1); i <= 5; i++ {
			s.Put(k(i*10), make([]byte, int(i)), 0, t0)
		}
		s.PutPointer(k(60), "peer:1", 99, t0)

		collect := func(lo, hi keys.Key) (ks []keys.Key, ms []store.Meta) {
			s.ArcVisit(lo, hi, func(key keys.Key, m store.Meta) bool {
				ks = append(ks, key)
				ms = append(ms, m)
				return true
			})
			return
		}

		// Whole ring (lo == hi): every entry once, in ascending key order.
		ks, ms := collect(k(10), k(10))
		if len(ks) != 6 {
			t.Fatalf("whole-ring visit saw %d entries, want 6", len(ks))
		}
		for i := 1; i < len(ks); i++ {
			if !ks[i-1].Less(ks[i]) {
				t.Fatalf("visit out of order at %d: %s !< %s", i, ks[i-1].Short(), ks[i].Short())
			}
		}
		if ms[0].Size != 1 || ms[0].IsPointer() {
			t.Fatalf("first meta = %+v, want size-1 data entry", ms[0])
		}
		last := ms[len(ms)-1]
		if !last.IsPointer() || last.Pointer != "peer:1" || last.Size != 99 {
			t.Fatalf("pointer meta = %+v", last)
		}
		if last.PointerSince != t0.UnixNano() {
			t.Fatalf("PointerSince = %d, want %d", last.PointerSince, t0.UnixNano())
		}

		// Sub-arc (25, 45]: entries 30 and 40 only.
		if ks, _ := collect(k(25), k(45)); len(ks) != 2 || ks[0] != k(30) || ks[1] != k(40) {
			t.Fatalf("sub-arc visit = %v", ks)
		}
		// Wrapping arc (45, 25]: 50, 60, then 10, 20.
		if ks, _ := collect(k(45), k(25)); len(ks) != 4 || ks[0] != k(50) || ks[3] != k(20) {
			t.Fatalf("wrap visit = %v", ks)
		}
		// Early termination: fn returning false stops the walk.
		n := 0
		s.ArcVisit(k(10), k(10), func(keys.Key, store.Meta) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("terminated visit saw %d entries, want 3", n)
		}
	})
}

func TestMedianKey(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		for i := uint64(1); i <= 4; i++ {
			s.Put(k(i*10), make([]byte, 100), 0, t0)
		}
		m, ok := s.MedianKey(k(5), k(45))
		if !ok || m != k(20) {
			t.Fatalf("MedianKey = (%s, %v), want 20", m.Short(), ok)
		}
		if _, ok := s.MedianKey(k(200), k(300)); ok {
			t.Error("median of empty arc")
		}
	})
}

func TestStalePointers(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.PutPointer(k(1), "a", 10, t0)
		s.PutPointer(k(2), "b", 10, t0.Add(time.Hour))
		s.Put(k(3), []byte("x"), 0, t0)
		stale := s.StalePointers(t0.Add(30 * time.Minute))
		if len(stale) != 1 || stale[0].Key != k(1) {
			t.Fatalf("StalePointers = %v", stale)
		}
	})
}

func TestKeysSnapshot(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.Put(k(2), []byte("b"), 0, t0)
		s.Put(k(1), []byte("a"), 0, t0)
		ks := s.Keys()
		if len(ks) != 2 || !ks[0].Less(ks[1]) {
			t.Fatalf("Keys = %v", ks)
		}
	})
}

func TestGetBatch(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		s.Put(k(1), []byte("a"), 0, t0)
		s.Put(k(3), []byte("c"), 0, t0)
		s.PutPointer(k(5), "addr-p", 64, t0)

		got := s.GetBatch([]keys.Key{k(1), k(2), k(3), k(5), k(1)})
		if len(got) != 5 {
			t.Fatalf("GetBatch returned %d entries, want 5", len(got))
		}
		if got[0] == nil || string(got[0].Data) != "a" {
			t.Errorf("entry 0 = %+v", got[0])
		}
		if got[1] != nil {
			t.Errorf("absent key returned %+v", got[1])
		}
		if got[2] == nil || string(got[2].Data) != "c" {
			t.Errorf("entry 2 = %+v", got[2])
		}
		if got[3] == nil || !got[3].IsPointer() {
			t.Errorf("pointer entry = %+v", got[3])
		}
		if got[4] == nil || string(got[4].Data) != "a" {
			t.Error("duplicate key did not resolve")
		}
		if out := s.GetBatch(nil); len(out) != 0 {
			t.Errorf("empty batch returned %d entries", len(out))
		}
	})
}

func TestArcLimit(t *testing.T) {
	forEachEngine(t, func(t *testing.T, s store.Engine) {
		for i := uint64(1); i <= 10; i++ {
			s.Put(k(i*10), []byte{byte(i)}, 0, t0)
		}

		// Truncated scan, resumed from the last returned key, walks the whole
		// arc in order without duplicates.
		var all []store.Item
		lo := k(5)
		for {
			items, more := s.ArcLimit(lo, k(95), 3)
			all = append(all, items...)
			if !more {
				break
			}
			if len(items) != 3 {
				t.Fatalf("truncated page had %d items", len(items))
			}
			lo = items[len(items)-1].Key
		}
		if len(all) != 9 { // 10..90
			t.Fatalf("paged walk saw %d items, want 9", len(all))
		}
		for i, it := range all {
			if !it.Key.Equal(k(uint64(i+1) * 10)) {
				t.Fatalf("page order broken at %d: %s", i, it.Key.Short())
			}
		}

		// limit <= 0 means no cap; a wrapping arc pages the same way.
		if items, more := s.ArcLimit(k(5), k(95), 0); more || len(items) != 9 {
			t.Errorf("uncapped scan = (%d items, more=%v)", len(items), more)
		}
		items, more := s.ArcLimit(k(85), k(25), 3)
		if !more || len(items) != 3 || !items[0].Key.Equal(k(90)) {
			t.Fatalf("wrap page 1 = (%d items, more=%v)", len(items), more)
		}
		items2, more2 := s.ArcLimit(items[len(items)-1].Key, k(25), 3)
		if more2 || len(items2) != 1 || !items2[0].Key.Equal(k(20)) {
			t.Fatalf("wrap page 2 = (%d items, more=%v)", len(items2), more2)
		}
		// Exact fit: limit equal to the remaining entries reports no more.
		if _, more := s.ArcLimit(k(5), k(95), 9); more {
			t.Error("exact-fit scan reported more")
		}
	})
}
