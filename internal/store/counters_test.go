package store

import (
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

func ck(v uint64) keys.Key {
	var key keys.Key
	key[keys.Size-1] = byte(v)
	return key
}

// TestCheapCounters pins the ttls/ptrs bookkeeping that lets
// SweepExpired and StalePointers skip their full-tree scans: every
// mutation path must keep the counters exact, or a sweep would silently
// stop finding work.
func TestCheapCounters(t *testing.T) {
	s := New()
	now := time.Unix(1000, 0)

	check := func(step string, ttls, ptrs int) {
		t.Helper()
		if s.ttls != ttls || s.ptrs != ptrs {
			t.Fatalf("%s: ttls=%d ptrs=%d, want %d/%d", step, s.ttls, s.ptrs, ttls, ptrs)
		}
	}

	s.Put(ck(1), []byte("a"), time.Minute, now)
	check("put with ttl", 1, 0)
	s.Put(ck(1), []byte("b"), 0, now)
	check("replace clears ttl", 0, 0)
	s.Put(ck(1), []byte("c"), time.Minute, now)
	check("replace restores ttl", 1, 0)

	s.PutPointer(ck(2), "addr", 10, now)
	check("pointer", 1, 1)
	s.PutPointer(ck(2), "addr2", 10, now)
	check("pointer replace", 1, 1)
	s.Put(ck(2), []byte("d"), 0, now)
	check("data replaces pointer", 1, 0)

	s.Refresh(ck(2), time.Minute, now)
	check("refresh adds ttl", 2, 0)
	s.Refresh(ck(2), 0, now)
	check("refresh clears ttl", 1, 0)

	s.Delete(ck(1))
	check("delete drops ttl", 0, 0)

	s.PutPointer(ck(3), "addr", 10, now)
	s.Delete(ck(3))
	check("delete drops pointer", 0, 0)

	s.Put(ck(4), []byte("e"), time.Minute, now)
	if n := s.SweepExpired(now.Add(time.Hour)); n != 1 {
		t.Fatalf("sweep = %d", n)
	}
	check("sweep drops ttl", 0, 0)

	// The early exits themselves: a store with zero counters must not
	// find (or scan for) anything.
	if n := s.SweepExpired(now.Add(time.Hour)); n != 0 {
		t.Errorf("empty sweep = %d", n)
	}
	if got := s.StalePointers(now.Add(time.Hour)); got != nil {
		t.Errorf("empty stale pointers = %v", got)
	}
}
