package disk

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
	"github.com/defragdht/d2/internal/wire"
)

// Log-file framing. WAL and segment files share one record format — a
// segment is simply a sorted, fully-compacted log — so recovery is a
// single replay loop over both kinds.
//
//	file   := header record*
//	header := magic(8) | u64 fileSeq
//	record := u32 bodyLen | u32 crc32c(body) | body
//	body   := u8 op | key(64) | op-specific fields
//
//	opPut:     u64 expiresUnixNano | u32 payloadLen | payload
//	opPointer: i64 size | i64 sinceUnixNano | u16 addrLen | addr
//	opDelete:  (empty)
//	opRefresh: u64 expiresUnixNano
//
// The CRC-32C covers the whole body, payload included, so replay verifies
// every block it resurrects. A record that fails its length, CRC, or
// structural checks ends replay of that file: everything before it is
// kept, the torn tail is discarded (and truncated off the active WAL so
// new appends start on a clean boundary).
const (
	headerSize = 16

	opPut     = 1
	opPointer = 2
	opDelete  = 3
	opRefresh = 4

	// recHeadSize is the fixed prefix of every record: length + CRC.
	recHeadSize = 8
	// putPayloadOff is the payload's offset from the record start:
	// head(8) + op(1) + key(64) + expires(8) + payloadLen(4).
	putPayloadOff = recHeadSize + 1 + keys.Size + 8 + 4

	// maxBody caps a record body on replay so a corrupt length field
	// cannot drive an allocation (64-byte key + bounded payload).
	maxBody = 1 + keys.Size + 8 + 4 + (128 << 20)
)

var (
	magicWAL = [8]byte{'D', '2', 'W', 'A', 'L', 'v', '0', '1'}
	magicSeg = [8]byte{'D', '2', 'S', 'E', 'G', 'v', '0', '1'}
)

// appendHeader appends a log-file header.
func appendHeader(b []byte, magic [8]byte, seq uint64) []byte {
	b = append(b, magic[:]...)
	return wire.AppendU64(b, seq)
}

// appendRecord frames body (already op-encoded) as a record.
func appendRecord(b, body []byte) []byte {
	b = wire.AppendU32(b, uint32(len(body)))
	b = wire.AppendU32(b, wire.Checksum(body))
	return append(b, body...)
}

// appendPut appends an opPut record for k.
func appendPut(b []byte, k keys.Key, expires int64, data []byte) []byte {
	body := make([]byte, 0, 1+keys.Size+8+4+len(data))
	body = wire.AppendU8(body, opPut)
	body = append(body, k[:]...)
	body = wire.AppendU64(body, uint64(expires))
	body = wire.AppendU32(body, uint32(len(data)))
	body = append(body, data...)
	return appendRecord(b, body)
}

// appendPointer appends an opPointer record for k.
func appendPointer(b []byte, k keys.Key, target transport.Addr, size, since int64) []byte {
	body := make([]byte, 0, 1+keys.Size+8+8+2+len(target))
	body = wire.AppendU8(body, opPointer)
	body = append(body, k[:]...)
	body = wire.AppendI64(body, size)
	body = wire.AppendI64(body, since)
	body = wire.AppendShortString(body, string(target))
	return appendRecord(b, body)
}

// appendDelete appends an opDelete record for k.
func appendDelete(b []byte, k keys.Key) []byte {
	body := make([]byte, 0, 1+keys.Size)
	body = wire.AppendU8(body, opDelete)
	body = append(body, k[:]...)
	return appendRecord(b, body)
}

// appendRefresh appends an opRefresh record for k.
func appendRefresh(b []byte, k keys.Key, expires int64) []byte {
	body := make([]byte, 0, 1+keys.Size+8)
	body = wire.AppendU8(body, opRefresh)
	body = append(body, k[:]...)
	body = wire.AppendU64(body, uint64(expires))
	return appendRecord(b, body)
}

// record is one decoded log record.
type record struct {
	op      byte
	key     keys.Key
	expires int64
	size    int64
	since   int64
	addr    transport.Addr
	// payloadOff/payloadLen locate an opPut payload inside the record
	// body (relative to the body start).
	payloadOff int
	payloadLen int
}

// decodeBody parses a record body (CRC already verified).
func decodeBody(body []byte) (record, error) {
	r := wire.NewReader(body)
	var rec record
	rec.op = r.U8()
	kb := r.Take(keys.Size)
	if kb != nil {
		copy(rec.key[:], kb)
	}
	switch rec.op {
	case opPut:
		rec.expires = int64(r.U64())
		n := r.U32()
		rec.payloadOff = 1 + keys.Size + 8 + 4
		rec.payloadLen = int(n)
		if r.Take(int(n)) == nil {
			return rec, fmt.Errorf("%w: put payload", wire.ErrTruncated)
		}
	case opPointer:
		rec.size = r.I64()
		rec.since = r.I64()
		rec.addr = transport.Addr(r.ShortString())
		if rec.addr == "" && r.Err() == nil {
			return rec, fmt.Errorf("%w: empty pointer target", wire.ErrMalformed)
		}
	case opDelete:
	case opRefresh:
		rec.expires = int64(r.U64())
	default:
		return rec, fmt.Errorf("%w: unknown op %d", wire.ErrMalformed, rec.op)
	}
	if err := r.Err(); err != nil {
		return rec, err
	}
	r.ExpectEmpty()
	return rec, r.Err()
}

// FsyncPolicy selects when acknowledged writes reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways group-commits: every write waits for an fsync covering
	// its record, but concurrent writers share one fsync (default).
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a timer; writes return immediately and a
	// crash can lose up to one interval of acknowledged writes.
	FsyncInterval
	// FsyncNever leaves flushing to the OS (and to Flush/Close).
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("disk: unknown fsync policy %q (want always, interval, or never)", s)
}

// walWriter appends records to the active WAL file and runs the
// group-commit fsync machinery. Appends are serialized by the store's
// write lock; the commit state below has its own lock so waiters never
// hold up appenders.
type walWriter struct {
	seq uint64
	f   *os.File
	off int64

	policy      FsyncPolicy
	stallThresh time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	appended uint64 // records appended so far (commit sequence numbers)
	synced   uint64 // records covered by a completed fsync
	syncErr  error  // sticky fsync failure
	closing  bool

	kick chan struct{} // wakes the syncer; buffered(1) so kicks coalesce
	quit chan struct{}
	wg   sync.WaitGroup

	m *metrics
}

func newWALWriter(f *os.File, seq uint64, off int64, policy FsyncPolicy, interval, stallThresh time.Duration, m *metrics) *walWriter {
	w := &walWriter{
		seq: seq, f: f, off: off,
		policy:      policy,
		stallThresh: stallThresh,
		kick:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		m:           m,
	}
	w.cond = sync.NewCond(&w.mu)
	switch policy {
	case FsyncAlways:
		w.wg.Add(1)
		go w.syncLoop()
	case FsyncInterval:
		w.wg.Add(1)
		go w.intervalLoop(interval)
	}
	return w
}

// append writes one framed record, returning its start offset and commit
// sequence number. The caller must hold the store's write lock.
func (w *walWriter) append(rec []byte) (start int64, seq uint64, err error) {
	start = w.off
	if _, err = w.f.Write(rec); err != nil {
		return 0, 0, err
	}
	w.off += int64(len(rec))
	w.m.walAppends.Inc()
	w.m.walBytes.Add(uint64(len(rec)))
	w.mu.Lock()
	w.appended++
	seq = w.appended
	w.mu.Unlock()
	return start, seq, nil
}

// wait blocks until the record with the given commit sequence is durable
// under the writer's policy. Call without holding the store lock.
func (w *walWriter) wait(seq uint64) error {
	if w.policy != FsyncAlways {
		return nil
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
	start := time.Now()
	w.mu.Lock()
	for w.synced < seq && w.syncErr == nil && !w.closing {
		w.cond.Wait()
	}
	err := w.syncErr
	w.mu.Unlock()
	if d := time.Since(start); d >= w.stallThresh {
		w.m.walStalls.Inc()
	}
	return err
}

// syncLoop is the group-commit goroutine: each pass covers every record
// appended before the fsync started, so N concurrent writers share one
// fsync.
func (w *walWriter) syncLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.quit:
			return
		case <-w.kick:
		}
		w.mu.Lock()
		target := w.appended
		done := target <= w.synced
		w.mu.Unlock()
		if done {
			continue
		}
		w.syncTo(target)
	}
}

// intervalLoop fsyncs on a timer under FsyncInterval.
func (w *walWriter) intervalLoop(interval time.Duration) {
	defer w.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			return
		case <-t.C:
			w.mu.Lock()
			target := w.appended
			done := target <= w.synced
			w.mu.Unlock()
			if !done {
				w.syncTo(target)
			}
		}
	}
}

// syncTo fsyncs the file and marks records up to target durable.
func (w *walWriter) syncTo(target uint64) {
	t0 := time.Now()
	err := w.f.Sync()
	w.m.walFsyncs.Inc()
	w.m.fsyncNs.Observe(time.Since(t0).Nanoseconds())
	w.mu.Lock()
	if err != nil && w.syncErr == nil {
		w.syncErr = err
		w.m.walErrors.Inc()
	}
	if target > w.synced {
		w.synced = target
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// flush forces an fsync covering everything appended so far (the
// clean-shutdown and checkpoint barrier), regardless of policy.
func (w *walWriter) flush() error {
	w.mu.Lock()
	target := w.appended
	w.mu.Unlock()
	w.syncTo(target)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncErr
}

// close stops the sync machinery after a final flush. It does not close
// the underlying file, which stays open for reads until the store drops
// it.
func (w *walWriter) close() error {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		return w.syncErr
	}
	w.closing = true
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()
	return w.flush()
}
