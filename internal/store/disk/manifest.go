package disk

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/wire"
)

// The MANIFEST names the files recovery must replay: the newest durable
// segment (0 = none) and the WAL files layered over it, oldest first
// (the last one is the active WAL). It is rewritten atomically
// (tmp + fsync + rename + dir fsync) at every WAL rotation and
// checkpoint commit, so a crash leaves either the old or the new
// manifest — never a torn one. Any wal-/seg- file the manifest does not
// reference is an orphan from an interrupted checkpoint and is deleted
// at open.
//
//	manifest := magic(8) | u64 segSeq | u32 nWALs | u64 walSeq* | u32 crc
const (
	manifestName = "MANIFEST"
	identityName = "IDENTITY"
)

var (
	magicManifest = [8]byte{'D', '2', 'M', 'A', 'N', 'v', '0', '1'}
	magicIdentity = [8]byte{'D', '2', 'I', 'D', 'v', '0', '0', '1'}
)

// manifest is the parsed MANIFEST content.
type manifest struct {
	segSeq  uint64
	walSeqs []uint64
}

func encodeManifest(m manifest) []byte {
	b := make([]byte, 0, 8+8+4+8*len(m.walSeqs)+4)
	b = append(b, magicManifest[:]...)
	b = wire.AppendU64(b, m.segSeq)
	b = wire.AppendU32(b, uint32(len(m.walSeqs)))
	for _, s := range m.walSeqs {
		b = wire.AppendU64(b, s)
	}
	return wire.AppendU32(b, wire.Checksum(b))
}

func decodeManifest(b []byte) (manifest, error) {
	var m manifest
	if len(b) < 8+8+4+4 {
		return m, fmt.Errorf("disk: %w: manifest too short", wire.ErrTruncated)
	}
	body, sum := b[:len(b)-4], wire.U32(b, len(b)-4)
	if wire.Checksum(body) != sum {
		return m, fmt.Errorf("disk: %w: manifest checksum", wire.ErrMalformed)
	}
	r := wire.NewReader(body)
	magic := r.Take(8)
	if magic == nil || [8]byte(magic) != magicManifest {
		return m, fmt.Errorf("disk: %w: manifest magic", wire.ErrMalformed)
	}
	m.segSeq = r.U64()
	n := r.Count(8)
	for i := 0; i < n; i++ {
		m.walSeqs = append(m.walSeqs, r.U64())
	}
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("disk: manifest: %w", err)
	}
	if len(m.walSeqs) == 0 {
		return m, fmt.Errorf("disk: %w: manifest names no WAL", wire.ErrMalformed)
	}
	return m, nil
}

// writeFileAtomic durably replaces dir/name with data: write a temp
// file, fsync it, rename over the target, fsync the directory.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeManifest persists m.
func writeManifest(dir string, m manifest) error {
	return writeFileAtomic(dir, manifestName, encodeManifest(m))
}

// readManifest loads the MANIFEST; ok is false when none exists yet.
func readManifest(dir string) (manifest, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	m, err := decodeManifest(b)
	if err != nil {
		return manifest{}, false, err
	}
	return m, true, nil
}

// LoadIdentity returns the node ID persisted in the data directory, if
// any (a corrupt identity file is treated as absent: the node picks a
// fresh ID rather than adopting a damaged one).
func (s *Store) LoadIdentity() (keys.Key, bool) {
	var id keys.Key
	b, err := os.ReadFile(filepath.Join(s.dir, identityName))
	if err != nil || len(b) != 8+keys.Size+4 {
		return id, false
	}
	body, sum := b[:len(b)-4], wire.U32(b, len(b)-4)
	if wire.Checksum(body) != sum || [8]byte(body[:8]) != magicIdentity {
		return id, false
	}
	copy(id[:], body[8:])
	return id, true
}

// SaveIdentity durably records the node's ring ID so a restart rejoins
// with its old arc.
func (s *Store) SaveIdentity(id keys.Key) error {
	b := make([]byte, 0, 8+keys.Size+4)
	b = append(b, magicIdentity[:]...)
	b = append(b, id[:]...)
	b = wire.AppendU32(b, wire.Checksum(b))
	return writeFileAtomic(s.dir, identityName, b)
}

// walName / segName build the on-disk file names.
func walName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }
func segName(seq uint64) string { return fmt.Sprintf("seg-%016d.seg", seq) }
