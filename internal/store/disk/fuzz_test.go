package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALReplay feeds arbitrary bytes to the recovery path as the active
// WAL's contents. The invariants: Open never panics, never returns a
// block whose record did not carry a valid CRC (no torn-record
// resurrection), and always leaves a store that accepts new writes and
// survives a clean reopen.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed WAL (header + two records), plus truncated
	// and bit-flipped variants so the corpus starts on the interesting
	// boundaries.
	valid := appendHeader(nil, magicWAL, 1)
	valid = appendPut(valid, k(1), 0, []byte("seed-payload"))
	valid = appendPointer(valid, k(2), "peer:1", 64, t0.UnixNano())
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(valid[:headerSize])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// Install the fuzz input as the active WAL of a 1-WAL manifest.
		if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := writeManifest(dir, manifest{walSeqs: []uint64{1}}); err != nil {
			t.Fatal(err)
		}

		s, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			return // structurally rejected (e.g. bad magic) — fine
		}
		// Whatever replay produced must be internally consistent: every
		// readable block's bytes come from a CRC-verified record, so
		// reading them all must succeed.
		for _, key := range s.Keys() {
			if b, ok := s.Get(key); ok && b.Data == nil && !b.IsPointer() {
				t.Fatalf("key %s: block with neither data nor pointer", key.Short())
			}
		}
		// The store must remain writable on the truncated boundary...
		s.Put(k(9999), []byte("post-fuzz"), 0, time.Unix(2000, 0))
		if b, ok := s.Get(k(9999)); !ok || string(b.Data) != "post-fuzz" {
			t.Fatal("store not writable after fuzzed replay")
		}
		before := s.Len()
		if err := s.Close(); err != nil {
			t.Fatalf("Close after fuzzed replay: %v", err)
		}
		// ...and a clean reopen must see the same state (replay is
		// deterministic and the repaired WAL is well-formed).
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after fuzzed replay: %v", err)
		}
		defer r.Close()
		if r.Recovery().TornRecords != 0 {
			t.Fatalf("repaired WAL still torn on reopen: %+v", r.Recovery())
		}
		if r.Len() != before {
			t.Fatalf("reopen changed entry count: %d != %d", r.Len(), before)
		}
		if b, ok := r.Get(k(9999)); !ok || string(b.Data) != "post-fuzz" {
			t.Fatal("post-fuzz write lost on reopen")
		}
	})
}
