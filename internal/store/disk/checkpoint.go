package disk

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/defragdht/d2/internal/keys"
)

// Checkpointing compacts the log: the live index is streamed, in key
// order, into a fresh segment file, after which the old WAL(s) and old
// segment are deleted. The protocol is crash-safe at every step because
// a manifest naming a coherent replay set is always durable before the
// files it abandons go away:
//
//  1. Rotate: create a new WAL file and durably write a rotation
//     manifest listing the old files PLUS the new WAL — before any
//     record reaches it. A crash here replays everything.
//  2. Swap writers and snapshot the index under the write lock (entry
//     pointers + value copies), then stream the snapshot into the
//     segment without holding the lock; concurrent writes go to the new
//     WAL and are replayed over the segment, so they win regardless.
//  3. Commit: fsync the segment, durably write the final manifest
//     {segment, active WAL}. A crash before this replays the old set;
//     after it, the new.
//  4. Retarget unchanged index entries at their segment copies and
//     delete the old files. Readers are blocked only for the retarget
//     pass; payload reads never race a close because files are closed
//     under the write lock.

// maybeCheckpoint starts a background checkpoint when the WAL has grown
// past the configured threshold and none is already running.
func (s *Store) maybeCheckpoint(walSize int64) {
	if walSize < s.opt.CheckpointBytes {
		return
	}
	if !s.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptRunning.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.m.ckptErrors.Inc()
		}
	}()
}

// ckptSnap is one index entry captured for checkpointing: the live
// pointer (for the identity check at retarget time) plus a value copy so
// the streaming pass reads no shared state.
type ckptSnap struct {
	k keys.Key
	e *entry
	v entry
	// segOff is filled during streaming: the payload offset in the new
	// segment (data entries only).
	segOff int64
}

// Checkpoint compacts the store into one segment file plus a fresh WAL.
// It is safe to call concurrently with reads and writes; concurrent
// checkpoints serialize.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Allocate file sequence numbers and write the rotation manifest.
	// ckptMu is the only writer of man/seq besides Open, so reading them
	// under the read lock is stable for the rest of this call.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil
	}
	oldMan := manifest{segSeq: s.man.segSeq, walSeqs: append([]uint64(nil), s.man.walSeqs...)}
	walSeq := s.seq + 1
	segSeq := s.seq + 2
	s.mu.RUnlock()

	walFile, err := createLogFile(s.dir, walName(walSeq), magicWAL, walSeq)
	if err != nil {
		return fmt.Errorf("disk: checkpoint: %w", err)
	}
	rotMan := manifest{segSeq: oldMan.segSeq, walSeqs: append(append([]uint64(nil), oldMan.walSeqs...), walSeq)}
	if err := writeManifest(s.dir, rotMan); err != nil {
		walFile.Close()
		os.Remove(filepath.Join(s.dir, walName(walSeq)))
		return fmt.Errorf("disk: checkpoint: %w", err)
	}

	// Swap writers and snapshot the index.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		walFile.Close()
		return nil
	}
	oldW := s.w
	s.w = newWALWriter(walFile, walSeq, headerSize,
		s.opt.Fsync, s.opt.FsyncInterval, s.opt.StallThreshold, s.m)
	s.files[walSeq] = walFile
	s.man = rotMan
	s.seq = segSeq
	snaps := make([]ckptSnap, 0, s.tree.Len())
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, e *entry) bool {
		snaps = append(snaps, ckptSnap{k: k, e: e, v: *e})
		return true
	})
	readFiles := make(map[uint64]*os.File, len(s.files))
	for seq, f := range s.files {
		readFiles[seq] = f
	}
	s.mu.Unlock()

	// The old writer's goroutines are no longer needed; its file stays
	// open in s.files for payload reads until the commit below.
	if err := oldW.close(); err != nil {
		// A sticky fsync error means records acknowledged under the old
		// writer may not be durable; the segment copy we are about to
		// write supersedes them, so continue — the error was already
		// counted in d2_store_wal_errors_total.
		_ = err
	}

	segFile, err := s.writeSegment(segSeq, snaps, readFiles)
	if err != nil {
		os.Remove(filepath.Join(s.dir, segName(segSeq)))
		return fmt.Errorf("disk: checkpoint: %w", err)
	}
	segInfo, err := segFile.Stat()
	if err != nil {
		segFile.Close()
		os.Remove(filepath.Join(s.dir, segName(segSeq)))
		return fmt.Errorf("disk: checkpoint: %w", err)
	}

	// Commit: after this manifest is durable, recovery uses the new set.
	finalMan := manifest{segSeq: segSeq, walSeqs: []uint64{walSeq}}
	if err := writeManifest(s.dir, finalMan); err != nil {
		segFile.Close()
		os.Remove(filepath.Join(s.dir, segName(segSeq)))
		return fmt.Errorf("disk: checkpoint: %w", err)
	}

	// Retarget live entries at the segment and drop the old files.
	s.mu.Lock()
	s.man = finalMan
	s.files[segSeq] = segFile
	s.segBytes = segInfo.Size()
	for i := range snaps {
		sn := &snaps[i]
		if sn.v.isPointer() {
			continue
		}
		if cur, ok := s.tree.Get(sn.k); ok && cur == sn.e {
			cur.file = segSeq
			cur.off = sn.segOff
		}
	}
	var dead []uint64
	for seq, f := range s.files {
		if seq != segSeq && seq != walSeq {
			f.Close()
			delete(s.files, seq)
			dead = append(dead, seq)
		}
	}
	closed := s.closed
	s.mu.Unlock()

	if !closed {
		for _, seq := range dead {
			name := segName(seq)
			if seq != oldMan.segSeq {
				name = walName(seq)
			}
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	s.m.checkpoints.Inc()
	return nil
}

// writeSegment streams the snapshot into a new segment file in key
// order, recording each data entry's payload offset, and fsyncs it.
// Payloads are read from the files captured at snapshot time; entries
// whose payload read fails are skipped (counted as read errors) rather
// than aborting the checkpoint with a half-written segment.
func (s *Store) writeSegment(segSeq uint64, snaps []ckptSnap, readFiles map[uint64]*os.File) (*os.File, error) {
	f, err := createLogFile(s.dir, segName(segSeq), magicSeg, segSeq)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*os.File, error) {
		f.Close()
		return nil, err
	}

	off := int64(headerSize)
	var recBuf, payload []byte
	for i := range snaps {
		sn := &snaps[i]
		if sn.v.isPointer() {
			recBuf = appendPointer(recBuf[:0], sn.k, sn.v.ptr, sn.v.size, sn.v.ptrSince)
		} else {
			n := int(sn.v.length)
			if cap(payload) < n {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			if n > 0 {
				src := readFiles[sn.v.file]
				if src == nil {
					s.m.readErrors.Inc()
					continue
				}
				if _, err := src.ReadAt(payload, sn.v.off); err != nil {
					s.m.readErrors.Inc()
					continue
				}
			}
			recBuf = appendPut(recBuf[:0], sn.k, sn.v.expires, payload)
			sn.segOff = off + putPayloadOff
		}
		if _, err := f.Write(recBuf); err != nil {
			return fail(err)
		}
		off += int64(len(recBuf))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f, nil
}
