// Package disk is D2's durable local block store: a write-ahead log with
// group-commit fsync, immutable segment files produced by checkpointing,
// and an in-memory ordered index (the shared B-tree, holding file
// offsets instead of payloads) so the range scans migration and load
// balancing depend on stay fast. It implements store.Engine; the paper's
// D2-Store sat on BerkeleyDB, this plays that role natively.
//
// Every mutation is appended to the active WAL before it is applied to
// the index; a put's payload is thereafter served straight from the log
// file by offset (pread), so the write path costs one sequential write
// plus a shared fsync, and the memory footprint is index metadata only —
// volumes larger than RAM fit. When the WAL exceeds a threshold a
// checkpoint streams the live entries, in key order, into a fresh
// segment file and truncates the log; recovery replays the newest
// segment and then the WAL layered over it, verifying every record's
// CRC-32C and discarding a torn tail. The node's ring identity persists
// alongside the blocks (IDENTITY), so a restarted node rejoins with its
// old arc intact.
package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/defragdht/d2/internal/btree"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/store"
	"github.com/defragdht/d2/internal/transport"
	"github.com/defragdht/d2/internal/wire"
)

// Options tunes the engine; zero values take production defaults.
type Options struct {
	// Fsync selects the durability policy (default FsyncAlways:
	// group-committed fsync per acknowledged write).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval (default
	// 100 ms).
	FsyncInterval time.Duration
	// CheckpointBytes is the WAL size that triggers a background
	// checkpoint (default 64 MiB).
	CheckpointBytes int64
	// StallThreshold is how long a commit may wait for its fsync before
	// it counts as a WAL stall (default 100 ms) — the signal behind the
	// wal_stall health check.
	StallThreshold time.Duration
	// Metrics receives the d2_store_* series (nil = private registry).
	Metrics *obs.Registry
}

func (o *Options) applyDefaults() {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.StallThreshold == 0 {
		o.StallThreshold = 100 * time.Millisecond
	}
}

// entry is one index slot: where a block's payload lives on disk plus
// the metadata range scans and expiry need without touching the disk.
type entry struct {
	file   uint64 // seq of the WAL/segment file holding the payload
	off    int64  // payload offset within that file
	length uint32 // payload length
	size   int64  // logical size (pointers: the pointed-to size)

	expires  int64          // TTL deadline, unixnano (0 = none)
	ptr      transport.Addr // non-empty = pointer entry, no payload
	ptrSince int64          // unixnano
}

func (e *entry) isPointer() bool { return e.ptr != "" }

// RecoveryStats describes what Open rebuilt from disk.
type RecoveryStats struct {
	// Blocks and Pointers are the live entries after replay.
	Blocks, Pointers int
	// Records is the total log records replayed (including superseded
	// and deleted ones).
	Records int
	// TornRecords counts records discarded for failing length, CRC, or
	// structural checks.
	TornRecords int
	// Segments and WALs are the files replayed.
	Segments, WALs int
}

// Store is the durable engine. It is safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu    sync.RWMutex
	tree  btree.Tree[*entry]
	bytes int64
	ttls  int
	ptrs  int

	files    map[uint64]*os.File // open handles: segment + WAL files
	man      manifest            // current durable manifest
	segBytes int64
	w        *walWriter
	seq      uint64 // last allocated file sequence number
	closed   bool

	ckptMu      sync.Mutex // serializes checkpoints
	ckptRunning atomic.Bool

	m   *metrics
	rec RecoveryStats

	// encBuf recycles record encode buffers across mutations.
	encPool sync.Pool
}

var _ store.Engine = (*Store)(nil)
var _ store.IdentityStore = (*Store)(nil)

// Open loads (or initializes) the engine at dir: read the MANIFEST,
// delete orphans from interrupted checkpoints, replay the newest segment
// and the WALs over it verifying checksums, truncate any torn tail off
// the active WAL, and resume appending.
func Open(dir string, opt Options) (*Store, error) {
	opt.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opt:   opt,
		files: map[uint64]*os.File{},
	}
	s.m = newMetrics(opt.Metrics, s)

	man, ok, err := readManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", dir, err)
	}
	if !ok {
		// Fresh directory: WAL 1, no segment.
		man = manifest{walSeqs: []uint64{1}}
		if _, err := createLogFile(dir, walName(1), magicWAL, 1); err != nil {
			return nil, fmt.Errorf("disk: open %s: %w", dir, err)
		}
		if err := writeManifest(dir, man); err != nil {
			return nil, fmt.Errorf("disk: open %s: %w", dir, err)
		}
	}
	s.man = man
	if err := s.removeOrphans(); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("disk: open %s: %w", dir, err)
	}

	// Replay: segment first, then the WALs layered over it, oldest
	// first. The active WAL (last) gets its torn tail truncated so new
	// appends start on a clean record boundary.
	if man.segSeq != 0 {
		if _, err := s.replayFile(man.segSeq, segName(man.segSeq), magicSeg, false); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("disk: open %s: %w", dir, err)
		}
		s.rec.Segments++
		if f := s.files[man.segSeq]; f != nil {
			if st, err := f.Stat(); err == nil {
				s.segBytes = st.Size()
			}
		}
	}
	var walEnd int64
	for i, seq := range man.walSeqs {
		active := i == len(man.walSeqs)-1
		end, err := s.replayFile(seq, walName(seq), magicWAL, active)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("disk: open %s: %w", dir, err)
		}
		s.rec.WALs++
		if active {
			walEnd = end
		}
	}
	for _, seq := range man.walSeqs {
		if seq > s.seq {
			s.seq = seq
		}
	}
	if man.segSeq > s.seq {
		s.seq = man.segSeq
	}

	// Count the live state recovery produced.
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(_ keys.Key, e *entry) bool {
		if e.isPointer() {
			s.rec.Pointers++
		} else {
			s.rec.Blocks++
		}
		return true
	})

	activeSeq := man.walSeqs[len(man.walSeqs)-1]
	activeFile := s.files[activeSeq]
	if _, err := activeFile.Seek(walEnd, 0); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("disk: open %s: %w", dir, err)
	}
	s.w = newWALWriter(activeFile, activeSeq, walEnd,
		opt.Fsync, opt.FsyncInterval, opt.StallThreshold, s.m)
	return s, nil
}

// createLogFile creates a WAL or segment file with its header written
// and synced, returning the open handle.
func createLogFile(dir, name string, magic [8]byte, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := appendHeader(make([]byte, 0, headerSize), magic, seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// removeOrphans deletes wal-/seg- files the manifest does not reference
// (leftovers of a checkpoint interrupted by a crash) and stray temp
// files.
func (s *Store) removeOrphans() error {
	referenced := map[string]bool{manifestName: true, identityName: true}
	for _, seq := range s.man.walSeqs {
		referenced[walName(seq)] = true
	}
	if s.man.segSeq != 0 {
		referenced[segName(s.man.segSeq)] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		if referenced[name] {
			continue
		}
		if strings.HasSuffix(name, ".tmp") ||
			strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "seg-") {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayFile opens and replays one log file into the index, verifying
// each record's CRC. It stops at the first bad record; when truncate is
// set (the active WAL) the torn tail is cut off so appends resume
// cleanly. Returns the end offset of the valid prefix.
func (s *Store) replayFile(seq uint64, name string, magic [8]byte, truncate bool) (int64, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	s.files[seq] = f

	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		// A header shorter than headerSize is a file torn at creation:
		// recoverable for the active WAL (rewrite the header), fatal for
		// a segment (it was synced before the manifest named it).
		if !truncate {
			return 0, fmt.Errorf("replay %s: header: %w", name, err)
		}
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		h := appendHeader(make([]byte, 0, headerSize), magic, seq)
		if _, err := f.WriteAt(h, 0); err != nil {
			return 0, err
		}
		s.m.torn.Inc()
		s.rec.TornRecords++
		return headerSize, nil
	}
	if [8]byte(hdr[:8]) != magic {
		return 0, fmt.Errorf("replay %s: bad magic", name)
	}

	off := int64(headerSize)
	head := make([]byte, recHeadSize)
	var body []byte
	for {
		if _, err := f.ReadAt(head, off); err != nil {
			break // clean EOF or torn length field: stop
		}
		bodyLen := int(uint32(head[0])<<24 | uint32(head[1])<<16 | uint32(head[2])<<8 | uint32(head[3]))
		sum := uint32(head[4])<<24 | uint32(head[5])<<16 | uint32(head[6])<<8 | uint32(head[7])
		if bodyLen == 0 || bodyLen > maxBody {
			s.m.torn.Inc()
			s.rec.TornRecords++
			break
		}
		if cap(body) < bodyLen {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := f.ReadAt(body, off+recHeadSize); err != nil {
			s.m.torn.Inc()
			s.rec.TornRecords++
			break
		}
		if crc(body) != sum {
			s.m.torn.Inc()
			s.rec.TornRecords++
			break
		}
		rec, err := decodeBody(body)
		if err != nil {
			s.m.torn.Inc()
			s.rec.TornRecords++
			break
		}
		s.applyRecord(seq, off, rec)
		s.m.replayed.Inc()
		s.rec.Records++
		off += recHeadSize + int64(bodyLen)
	}
	if truncate {
		if st, err := f.Stat(); err == nil && st.Size() > off {
			if err := f.Truncate(off); err != nil {
				return 0, err
			}
		}
	}
	return off, nil
}

// applyRecord replays one decoded record into the index. Records were
// logged only when they applied live, so replay applies them
// unconditionally, in order.
func (s *Store) applyRecord(file uint64, recOff int64, rec record) {
	switch rec.op {
	case opPut:
		e := &entry{
			file:    file,
			off:     recOff + recHeadSize + int64(rec.payloadOff),
			length:  uint32(rec.payloadLen),
			size:    int64(rec.payloadLen),
			expires: rec.expires,
		}
		s.setEntry(rec.key, e)
	case opPointer:
		e := &entry{size: rec.size, ptr: rec.addr, ptrSince: rec.since}
		s.setEntry(rec.key, e)
	case opDelete:
		if prev, ok := s.tree.Delete(rec.key); ok {
			s.dropCounts(prev)
		}
	case opRefresh:
		if e, ok := s.tree.Get(rec.key); ok {
			s.retime(e, rec.expires)
		}
	}
}

// setEntry installs e under k, maintaining the accounting counters.
// Callers hold the write lock (or have exclusive access during replay).
func (s *Store) setEntry(k keys.Key, e *entry) {
	if prev, had := s.tree.Set(k, e); had {
		s.dropCounts(prev)
	}
	if e.isPointer() {
		s.ptrs++
	} else {
		s.bytes += e.size
	}
	if e.expires != 0 {
		s.ttls++
	}
}

// dropCounts reverses setEntry's accounting for a removed entry.
func (s *Store) dropCounts(e *entry) {
	if e.isPointer() {
		s.ptrs--
	} else {
		s.bytes -= e.size
	}
	if e.expires != 0 {
		s.ttls--
	}
}

// retime changes an entry's TTL deadline, maintaining the ttls counter.
func (s *Store) retime(e *entry, expires int64) {
	if (e.expires != 0) != (expires != 0) {
		if expires != 0 {
			s.ttls++
		} else {
			s.ttls--
		}
	}
	e.expires = expires
}

// crc is a local alias so replay reads naturally.
func crc(b []byte) uint32 { return wire.Checksum(b) }

// Dir returns the engine's data directory.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open rebuilt from disk.
func (s *Store) Recovery() RecoveryStats { return s.rec }

// --- store.Engine: mutations -------------------------------------------

// getBuf borrows a record encode buffer.
func (s *Store) getBuf() []byte {
	if b, ok := s.encPool.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return make([]byte, 0, 512)
}

func (s *Store) putBuf(b []byte) {
	if cap(b) > 1<<20 {
		return // don't pin huge payload buffers
	}
	s.encPool.Put(&b)
}

// Put stores block data, replacing any previous entry. The record is in
// the WAL — and, under FsyncAlways, fsynced — before Put returns.
func (s *Store) Put(k keys.Key, data []byte, ttl time.Duration, now time.Time) {
	var expires int64
	if ttl > 0 {
		expires = now.Add(ttl).UnixNano()
	}
	buf := appendPut(s.getBuf(), k, expires, data)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.putBuf(buf)
		return
	}
	start, seq, err := s.w.append(buf)
	if err != nil {
		s.m.walErrors.Inc()
		s.mu.Unlock()
		s.putBuf(buf)
		return
	}
	s.setEntry(k, &entry{
		file:    s.w.seq,
		off:     start + putPayloadOff,
		length:  uint32(len(data)),
		size:    int64(len(data)),
		expires: expires,
	})
	w := s.w
	walSize := w.off
	s.mu.Unlock()
	s.putBuf(buf)
	_ = w.wait(seq)
	s.maybeCheckpoint(walSize)
}

// PutPointer installs a pointer entry unless data is already present.
func (s *Store) PutPointer(k keys.Key, target transport.Addr, size int64, now time.Time) {
	buf := appendPointer(s.getBuf(), k, target, size, now.UnixNano())

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.putBuf(buf)
		return
	}
	if prev, ok := s.tree.Get(k); ok && !prev.isPointer() {
		s.mu.Unlock()
		s.putBuf(buf)
		return // real data wins over a pointer
	}
	_, seq, err := s.w.append(buf)
	if err != nil {
		s.m.walErrors.Inc()
		s.mu.Unlock()
		s.putBuf(buf)
		return
	}
	s.setEntry(k, &entry{size: size, ptr: target, ptrSince: now.UnixNano()})
	w := s.w
	s.mu.Unlock()
	s.putBuf(buf)
	_ = w.wait(seq)
}

// Delete removes the entry under k immediately. The deletion is applied
// to the index even if logging it fails (the node treats deletes as
// infallible); a WAL error is surfaced through d2_store_wal_errors_total.
func (s *Store) Delete(k keys.Key) bool {
	buf := appendDelete(s.getBuf(), k)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.putBuf(buf)
		return false
	}
	prev, ok := s.tree.Delete(k)
	if !ok {
		s.mu.Unlock()
		s.putBuf(buf)
		return false
	}
	s.dropCounts(prev)
	_, seq, err := s.w.append(buf)
	if err != nil {
		s.m.walErrors.Inc()
		s.mu.Unlock()
		s.putBuf(buf)
		return true
	}
	w := s.w
	s.mu.Unlock()
	s.putBuf(buf)
	_ = w.wait(seq)
	return true
}

// Refresh extends a block's TTL (zero ttl clears it).
func (s *Store) Refresh(k keys.Key, ttl time.Duration, now time.Time) bool {
	var expires int64
	if ttl > 0 {
		expires = now.Add(ttl).UnixNano()
	}
	buf := appendRefresh(s.getBuf(), k, expires)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.putBuf(buf)
		return false
	}
	e, ok := s.tree.Get(k)
	if !ok {
		s.mu.Unlock()
		s.putBuf(buf)
		return false
	}
	_, seq, err := s.w.append(buf)
	if err != nil {
		s.m.walErrors.Inc()
		s.mu.Unlock()
		s.putBuf(buf)
		return true
	}
	s.retime(e, expires)
	w := s.w
	s.mu.Unlock()
	s.putBuf(buf)
	_ = w.wait(seq)
	return true
}

// SweepExpired removes entries whose TTL passed, returning the count.
// The whole sweep shares one group-commit wait. When no live entry
// carries a TTL the scan is skipped entirely.
func (s *Store) SweepExpired(now time.Time) int {
	nowNano := now.UnixNano()
	s.mu.Lock()
	if s.closed || s.ttls == 0 {
		s.mu.Unlock()
		return 0
	}
	var dead []keys.Key
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, e *entry) bool {
		if e.expires != 0 && e.expires < nowNano {
			dead = append(dead, k)
		}
		return true
	})
	var w *walWriter
	var lastSeq uint64
	buf := s.getBuf()
	for _, k := range dead {
		prev, ok := s.tree.Delete(k)
		if !ok {
			continue
		}
		s.dropCounts(prev)
		buf = appendDelete(buf[:0], k)
		if _, seq, err := s.w.append(buf); err != nil {
			s.m.walErrors.Inc()
		} else {
			w, lastSeq = s.w, seq
		}
	}
	s.mu.Unlock()
	s.putBuf(buf)
	if w != nil {
		_ = w.wait(lastSeq)
	}
	return len(dead)
}

// --- store.Engine: reads -----------------------------------------------

// blockFor materializes a store.Block for e, reading the payload from
// its log file. Callers hold at least the read lock.
func (s *Store) blockFor(e *entry) (*store.Block, bool) {
	b := &store.Block{Size: e.size}
	if e.expires != 0 {
		b.Expires = time.Unix(0, e.expires)
	}
	if e.isPointer() {
		b.Pointer = e.ptr
		b.PointerSince = time.Unix(0, e.ptrSince)
		return b, true
	}
	data := make([]byte, e.length)
	if e.length > 0 {
		f := s.files[e.file]
		if f == nil {
			s.m.readErrors.Inc()
			return nil, false
		}
		if _, err := f.ReadAt(data, e.off); err != nil {
			s.m.readErrors.Inc()
			return nil, false
		}
	}
	b.Data = data
	return b, true
}

// Get returns the entry under k, reading the payload from disk.
func (s *Store) Get(k keys.Key) (*store.Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.tree.Get(k)
	if !ok {
		return nil, false
	}
	return s.blockFor(e)
}

// ReadInto copies the payload of the data entry under k into buf,
// returning the payload length. It is the allocation-free indexed read
// path: the index lookup and the pread reuse the caller's buffer. ok is
// false when k is absent, a pointer entry, or buf is too small (the
// returned length then tells the caller how much room it needs).
func (s *Store) ReadInto(k keys.Key, buf []byte) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.tree.Get(k)
	if !ok || e.isPointer() {
		return 0, false
	}
	n := int(e.length)
	if n > len(buf) {
		return n, false
	}
	if n > 0 {
		f := s.files[e.file]
		if f == nil {
			s.m.readErrors.Inc()
			return 0, false
		}
		if _, err := f.ReadAt(buf[:n], e.off); err != nil {
			s.m.readErrors.Inc()
			return 0, false
		}
	}
	return n, true
}

// GetBatch returns the entries for a batch of keys (nil for absent ones)
// under a single lock acquisition.
func (s *Store) GetBatch(ks []keys.Key) []*store.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*store.Block, len(ks))
	for i, k := range ks {
		if e, ok := s.tree.Get(k); ok {
			if b, ok := s.blockFor(e); ok {
				out[i] = b
			}
		}
	}
	return out
}

// Arc returns the entries in the circular arc (lo, hi], in key order,
// payloads included.
func (s *Store) Arc(lo, hi keys.Key) []store.Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []store.Item
	s.tree.AscendArc(lo, hi, func(k keys.Key, e *entry) bool {
		if b, ok := s.blockFor(e); ok {
			out = append(out, store.Item{Key: k, Block: b})
		}
		return true
	})
	return out
}

// ArcLimit returns up to limit entries of the circular arc (lo, hi] in
// key order, reporting whether the scan was truncated.
func (s *Store) ArcLimit(lo, hi keys.Key, limit int) (items []store.Item, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendArc(lo, hi, func(k keys.Key, e *entry) bool {
		if limit > 0 && len(items) == limit {
			more = true
			return false
		}
		if b, ok := s.blockFor(e); ok {
			items = append(items, store.Item{Key: k, Block: b})
		}
		return true
	})
	return items, more
}

// ArcBytes returns the byte volume in the arc (lo, hi] — index metadata
// only, no disk reads.
func (s *Store) ArcBytes(lo, hi keys.Key) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	s.tree.AscendArc(lo, hi, func(_ keys.Key, e *entry) bool {
		total += e.size
		return true
	})
	return total
}

// ArcVisit walks the index metadata of the arc (lo, hi] in key order —
// entry headers only, no payload materialization, no disk reads, no
// per-entry allocation. This is the census sweep path: unlike ArcLimit
// it never calls blockFor, so a full-store sweep costs just the tree
// walk even when every payload lives in segment files.
func (s *Store) ArcVisit(lo, hi keys.Key, fn func(k keys.Key, m store.Meta) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendArc(lo, hi, func(k keys.Key, e *entry) bool {
		return fn(k, store.Meta{Size: e.size, Pointer: e.ptr, PointerSince: e.ptrSince})
	})
}

// MedianKey returns the key splitting the arc (lo, hi] into two
// byte-balanced halves — index metadata only.
func (s *Store) MedianKey(lo, hi keys.Key) (keys.Key, bool) {
	total := s.ArcBytes(lo, hi)
	if total == 0 {
		return keys.Key{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var acc int64
	var split keys.Key
	found := false
	s.tree.AscendArc(lo, hi, func(k keys.Key, e *entry) bool {
		acc += e.size
		if acc >= total/2 {
			split = k
			found = true
			return false
		}
		return true
	})
	return split, found
}

// StalePointers returns pointers installed before the deadline. When no
// pointer entries exist the scan is skipped entirely.
func (s *Store) StalePointers(deadline time.Time) []store.Item {
	dl := deadline.UnixNano()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ptrs == 0 {
		return nil
	}
	var out []store.Item
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, e *entry) bool {
		if e.isPointer() && e.ptrSince < dl {
			b := &store.Block{Size: e.size, Pointer: e.ptr, PointerSince: time.Unix(0, e.ptrSince)}
			out = append(out, store.Item{Key: k, Block: b})
		}
		return true
	})
	return out
}

// Keys returns every stored key (snapshot).
func (s *Store) Keys() []keys.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]keys.Key, 0, s.tree.Len())
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, _ *entry) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Len returns the number of entries (data and pointers).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Bytes returns the stored data volume (pointers excluded).
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Flush blocks until every acknowledged write is on stable storage — the
// clean-shutdown barrier, and the only fsync under FsyncNever.
func (s *Store) Flush() error {
	s.mu.RLock()
	w := s.w
	closed := s.closed
	s.mu.RUnlock()
	if closed || w == nil {
		return nil
	}
	return w.flush()
}

// Close flushes and releases the engine. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	w := s.w
	s.mu.Unlock()

	// Wait out any in-flight checkpoint before tearing files down.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	var err error
	if w != nil {
		err = w.close()
	}
	s.mu.Lock()
	s.closeFiles()
	s.mu.Unlock()
	return err
}

// closeFiles closes every open file handle. Callers hold the write lock
// or have exclusive access.
func (s *Store) closeFiles() {
	for seq, f := range s.files {
		f.Close()
		delete(s.files, seq)
	}
}
