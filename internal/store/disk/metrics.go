package disk

import (
	"github.com/defragdht/d2/internal/obs"
)

// metrics instruments the engine against an obs.Registry. The d2_store_*
// families surface in d2ctl stats/top and feed the wal_stall health
// check; when no registry is supplied a private one keeps the handles
// non-nil so the hot paths never branch.
type metrics struct {
	walAppends *obs.Counter   // d2_store_wal_appends_total
	walBytes   *obs.Counter   // d2_store_wal_bytes_total
	walFsyncs  *obs.Counter   // d2_store_wal_fsyncs_total
	walStalls  *obs.Counter   // d2_store_wal_stalls_total: commits that waited ≥ the stall threshold for their fsync
	walErrors  *obs.Counter   // d2_store_wal_errors_total: append or fsync IO failures
	fsyncNs    *obs.Histogram // d2_store_wal_fsync_ns

	checkpoints *obs.Counter // d2_store_checkpoints_total
	ckptErrors  *obs.Counter // d2_store_checkpoint_errors_total
	readErrors  *obs.Counter // d2_store_read_errors_total: payload preads that failed

	replayed *obs.Counter // d2_store_recovered_records_total
	torn     *obs.Counter // d2_store_torn_records_total: records discarded at recovery
}

// newMetrics registers the engine's series on reg and the state gauges
// reading s (which must outlive the registry's scrapes).
func newMetrics(reg *obs.Registry, s *Store) *metrics {
	if reg == nil {
		reg = obs.New()
	}
	reg.GaugeFunc("d2_store_wal_size_bytes", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.w == nil {
			return 0
		}
		return s.w.off
	})
	reg.GaugeFunc("d2_store_segment_files", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.man.segSeq == 0 {
			return 0
		}
		return 1
	})
	reg.GaugeFunc("d2_store_segment_bytes", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.segBytes
	})
	reg.GaugeFunc("d2_store_recovered_blocks", func() int64 {
		return int64(s.rec.Blocks + s.rec.Pointers)
	})
	return &metrics{
		walAppends:  reg.Counter("d2_store_wal_appends_total"),
		walBytes:    reg.Counter("d2_store_wal_bytes_total"),
		walFsyncs:   reg.Counter("d2_store_wal_fsyncs_total"),
		walStalls:   reg.Counter("d2_store_wal_stalls_total"),
		walErrors:   reg.Counter("d2_store_wal_errors_total"),
		fsyncNs:     reg.Histogram("d2_store_wal_fsync_ns", obs.LatencyBuckets),
		checkpoints: reg.Counter("d2_store_checkpoints_total"),
		ckptErrors:  reg.Counter("d2_store_checkpoint_errors_total"),
		readErrors:  reg.Counter("d2_store_read_errors_total"),
		replayed:    reg.Counter("d2_store_recovered_records_total"),
		torn:        reg.Counter("d2_store_torn_records_total"),
	}
}
