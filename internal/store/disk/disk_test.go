package disk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

var t0 = time.Unix(1000, 0)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestRecovery is the round trip: put a mixed volume, close cleanly,
// reopen, and expect every entry back byte-identical.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := uint64(1); i <= 50; i++ {
		s.Put(k(i), bytes.Repeat([]byte{byte(i)}, int(i)), 0, t0)
	}
	s.Put(k(100), []byte("ttl"), time.Hour, t0)
	s.PutPointer(k(200), "host:1234", 4096, t0)
	s.Delete(k(7))
	s.Refresh(k(100), 2*time.Hour, t0)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	rec := r.Recovery()
	if rec.Blocks != 50 || rec.Pointers != 1 { // 49 puts survive + the ttl block
		t.Fatalf("recovery stats = %+v", rec)
	}
	if rec.TornRecords != 0 {
		t.Fatalf("clean close produced torn records: %+v", rec)
	}
	for i := uint64(1); i <= 50; i++ {
		b, ok := r.Get(k(i))
		if i == 7 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
			continue
		}
		if !ok || !bytes.Equal(b.Data, bytes.Repeat([]byte{byte(i)}, int(i))) {
			t.Fatalf("key %d: (%v, %v)", i, b, ok)
		}
	}
	b, ok := r.Get(k(100))
	if !ok || !b.Expires.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("refresh not replayed: %+v %v", b, ok)
	}
	if b, ok := r.Get(k(200)); !ok || b.Pointer != "host:1234" || b.Size != 4096 {
		t.Fatalf("pointer not recovered: %+v %v", b, ok)
	}
}

// TestCrashRecovery abandons a store without Close (the writer goroutine
// keeps running, but we reopen the directory as a crashed process would)
// and expects every write that completed to survive: the WAL is written
// synchronously on the mutation path.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	for i := uint64(1); i <= 20; i++ {
		s.Put(k(i), []byte(fmt.Sprintf("block-%d", i)), 0, t0)
	}
	// No Close: simulate a crash. (The OS file contents are what a
	// kill -9 would leave, since puts write(2) before returning.)
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Recovery().Blocks != 20 {
		t.Fatalf("recovered %d blocks, want 20", r.Recovery().Blocks)
	}
	for i := uint64(1); i <= 20; i++ {
		if b, ok := r.Get(k(i)); !ok || string(b.Data) != fmt.Sprintf("block-%d", i) {
			t.Fatalf("key %d lost after crash", i)
		}
	}
	s.Close() // quiesce the abandoned writer's goroutines
}

// TestTornTail corrupts the active WAL's last record and expects
// recovery to keep everything before it, drop the tail, and resume
// appending cleanly.
func TestTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(path string, t *testing.T)
	}{
		{"truncated", func(path string, t *testing.T) {
			st, _ := os.Stat(path)
			if err := os.Truncate(path, st.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(path string, t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			s.Put(k(1), []byte("keep-me"), 0, t0)
			s.Put(k(2), []byte("torn"), 0, t0)
			s.Close()

			tc.mut(filepath.Join(dir, walName(1)), t)

			r := mustOpen(t, dir, Options{})
			rec := r.Recovery()
			if rec.Blocks != 1 || rec.TornRecords == 0 {
				t.Fatalf("recovery stats = %+v", rec)
			}
			if _, ok := r.Get(k(2)); ok {
				t.Fatal("torn record resurrected")
			}
			if b, ok := r.Get(k(1)); !ok || string(b.Data) != "keep-me" {
				t.Fatal("valid prefix lost")
			}
			// Appends must land on the truncated boundary and survive
			// another cycle.
			r.Put(k(3), []byte("after-tear"), 0, t0)
			r.Close()
			r2 := mustOpen(t, dir, Options{})
			defer r2.Close()
			if b, ok := r2.Get(k(3)); !ok || string(b.Data) != "after-tear" {
				t.Fatal("post-tear append lost")
			}
			if r2.Recovery().TornRecords != 0 {
				t.Fatalf("second recovery still torn: %+v", r2.Recovery())
			}
		})
	}
}

// TestCheckpoint fills the store, checkpoints, and expects reads, a
// compacted file set, and recovery from the segment alone to all work.
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	payload := func(i uint64) []byte { return bytes.Repeat([]byte{byte(i)}, 64) }
	for i := uint64(1); i <= 100; i++ {
		s.Put(k(i), payload(i), 0, t0)
	}
	s.Delete(k(50))
	s.PutPointer(k(200), "peer:9", 512, t0)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Live reads go to the segment now.
	for i := uint64(1); i <= 100; i++ {
		b, ok := s.Get(k(i))
		if i == 50 {
			if ok {
				t.Fatal("deleted key in segment")
			}
			continue
		}
		if !ok || !bytes.Equal(b.Data, payload(i)) {
			t.Fatalf("post-checkpoint read %d failed", i)
		}
	}
	// The old WAL is gone; one segment + one fresh WAL remain.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatal("old WAL not deleted")
	}
	// Writes after the checkpoint layer over the segment.
	s.Put(k(10), []byte("updated"), 0, t0)
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	rec := r.Recovery()
	if rec.Segments != 1 || rec.Blocks != 99 || rec.Pointers != 1 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	if b, ok := r.Get(k(10)); !ok || string(b.Data) != "updated" {
		t.Fatal("post-checkpoint write lost")
	}
	if b, ok := r.Get(k(99)); !ok || !bytes.Equal(b.Data, payload(99)) {
		t.Fatal("segment block lost")
	}
}

// TestCheckpointConcurrent checkpoints while writers are running and
// then verifies every write survives a reopen — the retarget pass must
// not lose concurrent updates.
func TestCheckpointConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	for i := uint64(0); i < 200; i++ {
		s.Put(k(i), []byte(fmt.Sprintf("v0-%d", i)), 0, t0)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 200; i++ {
			s.Put(k(i), []byte(fmt.Sprintf("v1-%d", i)), 0, t0)
		}
	}()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	<-done
	for i := uint64(0); i < 200; i++ {
		if b, ok := s.Get(k(i)); !ok || string(b.Data) != fmt.Sprintf("v1-%d", i) {
			t.Fatalf("live read %d = %v after concurrent checkpoint", i, b)
		}
	}
	s.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	for i := uint64(0); i < 200; i++ {
		if b, ok := r.Get(k(i)); !ok || string(b.Data) != fmt.Sprintf("v1-%d", i) {
			t.Fatalf("recovered read %d = %v", i, b)
		}
	}
}

// TestAutoCheckpoint drives the WAL past the threshold through the
// public API and expects a background checkpoint to compact it.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever, CheckpointBytes: 32 << 10})
	for i := uint64(0); i < 200; i++ {
		s.Put(k(i%20), bytes.Repeat([]byte{byte(i)}, 1024), 0, t0)
	}
	segSeq := func() uint64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.man.segSeq
	}
	deadline := time.Now().Add(5 * time.Second)
	for segSeq() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if segSeq() == 0 {
		t.Fatal("no auto checkpoint after exceeding threshold")
	}
	s.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Recovery().Blocks != 20 {
		t.Fatalf("recovered %d blocks, want 20", r.Recovery().Blocks)
	}
}

// TestIdentityRoundTrip pins the IDENTITY file: save, reload, and
// corruption handling.
func TestIdentityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if _, ok := s.LoadIdentity(); ok {
		t.Fatal("identity present in fresh dir")
	}
	id := k(424242)
	if err := s.SaveIdentity(id); err != nil {
		t.Fatalf("SaveIdentity: %v", err)
	}
	got, ok := s.LoadIdentity()
	if !ok || got != id {
		t.Fatalf("LoadIdentity = (%s, %v)", got.Short(), ok)
	}
	// A corrupt identity is treated as absent, never adopted.
	path := filepath.Join(dir, identityName)
	b, _ := os.ReadFile(path)
	b[10] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, ok := s.LoadIdentity(); ok {
		t.Fatal("corrupt identity accepted")
	}
}

// TestReadInto pins the allocation-free read path's contract.
func TestReadInto(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put(k(1), []byte("payload"), 0, t0)
	s.PutPointer(k(2), "addr", 10, t0)

	buf := make([]byte, 64)
	n, ok := s.ReadInto(k(1), buf)
	if !ok || string(buf[:n]) != "payload" {
		t.Fatalf("ReadInto = (%d, %v)", n, ok)
	}
	if n, ok := s.ReadInto(k(1), buf[:3]); ok || n != 7 {
		t.Fatalf("short buffer = (%d, %v), want (7, false)", n, ok)
	}
	if _, ok := s.ReadInto(k(2), buf); ok {
		t.Fatal("ReadInto served a pointer")
	}
	if _, ok := s.ReadInto(k(3), buf); ok {
		t.Fatal("ReadInto served an absent key")
	}
}

// TestEmptyValues pins zero-length payloads through the full cycle.
func TestEmptyValues(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(k(1), nil, 0, t0)
	if b, ok := s.Get(k(1)); !ok || len(b.Data) != 0 {
		t.Fatalf("empty block = %+v %v", b, ok)
	}
	s.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if b, ok := r.Get(k(1)); !ok || len(b.Data) != 0 {
		t.Fatalf("empty block lost: %+v %v", b, ok)
	}
}

// TestFsyncPolicies exercises each policy end to end (the durability
// distinction needs real power loss to observe; this pins the API and
// that writes complete under each).
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Fsync: p, FsyncInterval: 5 * time.Millisecond})
		for i := uint64(0); i < 10; i++ {
			s.Put(k(i), []byte("x"), 0, t0)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("policy %d Flush: %v", p, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("policy %d Close: %v", p, err)
		}
		r := mustOpen(t, dir, Options{})
		if r.Recovery().Blocks != 10 {
			t.Fatalf("policy %d recovered %d", p, r.Recovery().Blocks)
		}
		r.Close()
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncAlways, "always": FsyncAlways,
		"interval": FsyncInterval, "never": FsyncNever,
	} {
		if got, err := ParseFsyncPolicy(s); err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v)", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestCrashLoop is the soak: repeated abandon-and-reopen cycles with
// writes in flight, verifying no acknowledged write is ever lost. The
// duration is gated by D2_DISK_SOAK (used by scripts/verify.sh disk).
func TestCrashLoop(t *testing.T) {
	dur := 500 * time.Millisecond
	if env := os.Getenv("D2_DISK_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("D2_DISK_SOAK: %v", err)
		}
		dur = d
	}
	dir := t.TempDir()
	deadline := time.Now().Add(dur)
	acked := map[uint64]string{}
	var i uint64
	cycles := 0
	for time.Now().Before(deadline) {
		s := mustOpen(t, dir, Options{Fsync: FsyncNever, CheckpointBytes: 64 << 10})
		// Everything acknowledged before the last "crash" must be back.
		for key, val := range acked {
			if b, ok := s.Get(k(key)); !ok || string(b.Data) != val {
				t.Fatalf("cycle %d: acked key %d lost (ok=%v)", cycles, key, ok)
			}
		}
		for j := 0; j < 50; j++ {
			i++
			val := fmt.Sprintf("cycle-%d-%d", cycles, i)
			s.Put(k(i%512), []byte(val), 0, t0)
			acked[i%512] = val
		}
		// An in-process "crash" cannot drop the page cache, so Close is
		// equivalent to abandonment here; what this loop exercises is
		// repeated recovery with checkpoints interleaved. Genuine torn
		// tails are covered by TestTornTail, FuzzWALReplay, and the
		// kill -9 e2e.
		s.Close()
		cycles++
	}
	if cycles < 2 {
		t.Fatalf("soak managed only %d cycles", cycles)
	}
	t.Logf("crash loop: %d cycles, %d writes", cycles, i)
}

// BenchmarkDiskReadInto is the 0 allocs/op gate on the indexed read
// path (scripts/verify.sh disk greps its output).
func BenchmarkDiskReadInto(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	const n = 512
	for i := uint64(0); i < n; i++ {
		s.Put(k(i), payload, 0, t0)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.ReadInto(k(uint64(i)%n), buf); !ok {
			b.Fatal("read failed")
		}
	}
}

// BenchmarkDiskPut measures the write path (group-commit disabled so the
// numbers reflect CPU cost, not the device).
func BenchmarkDiskPut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Fsync: FsyncNever, CheckpointBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(k(uint64(i)%1024), payload, 0, t0)
	}
}
