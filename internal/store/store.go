// Package store is the local block store of a live D2 node (the paper's
// D2-Store used BerkeleyDB). It defines the Engine interface every block
// store implements — the in-memory B-tree store here, and the durable
// WAL+segment engine in store/disk — plus the two operations
// defragmentation needs beyond put/get/remove: ordered range scans (for
// migration and replica repair) and block pointers — lightweight entries
// that record where a block's data actually lives while a load-balance
// move is pending (§6).
package store

import (
	"sync"
	"time"

	"github.com/defragdht/d2/internal/btree"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

// Block is one stored entry: either actual data or a pointer.
type Block struct {
	// Data is the block payload (nil for pointer entries).
	Data []byte
	// Pointer, when set, names the node that stores the data.
	Pointer transport.Addr
	// Size is the data size (pointers record the pointed-to size so load
	// accounting reflects eventual storage).
	Size int64
	// PointerSince is when the pointer was installed, for stabilization.
	PointerSince time.Time
	// Expires, when non-zero, is the block's TTL deadline (§3: blocks
	// are removed after a refreshable TTL in case explicit removal is
	// lost in a partition).
	Expires time.Time
}

// IsPointer reports whether this entry is a block pointer.
func (b *Block) IsPointer() bool { return b.Pointer != "" }

// Item pairs a key with its entry in scan results.
type Item struct {
	Key   keys.Key
	Block *Block
}

// Meta is the index-resident metadata of one stored entry, handed to
// ArcVisit callbacks without materializing block payloads. It is a plain
// value so visitors can run allocation-free.
type Meta struct {
	// Size is the data size (pointers report the pointed-to size).
	Size int64
	// Pointer, when set, names the node holding the data.
	Pointer transport.Addr
	// PointerSince is the pointer install time in Unix nanoseconds
	// (zero for data entries), for staleness accounting.
	PointerSince int64
}

// IsPointer reports whether the entry is a block pointer.
func (m Meta) IsPointer() bool { return m.Pointer != "" }

// Engine is the block-store contract a D2 node runs against. Two
// implementations exist: the in-memory Store below (fast, volatile) and
// the durable disk engine in store/disk (WAL + segment files + crash
// recovery). All methods are safe for concurrent use.
//
// Mutating methods carry no error returns by design: the node treats its
// local store as infallible and relies on replication for durability
// beyond the engine's own guarantees. A durable engine surfaces IO
// failures through its metrics and health checks instead.
type Engine interface {
	// Put stores block data, replacing any previous entry (including a
	// pointer: the data has arrived). A zero ttl means no expiry.
	Put(k keys.Key, data []byte, ttl time.Duration, now time.Time)
	// PutPointer installs a pointer entry unless data is already present.
	PutPointer(k keys.Key, target transport.Addr, size int64, now time.Time)
	// Get returns the entry under k.
	Get(k keys.Key) (*Block, bool)
	// GetBatch returns the entries for a batch of keys (nil for absent
	// ones), serving MultiGet without paying per-key lock traffic.
	GetBatch(ks []keys.Key) []*Block
	// Delete removes the entry under k immediately.
	Delete(k keys.Key) bool
	// Refresh extends a block's TTL (zero ttl clears it).
	Refresh(k keys.Key, ttl time.Duration, now time.Time) bool
	// SweepExpired removes entries whose TTL passed, returning the count.
	SweepExpired(now time.Time) int
	// Arc returns the entries in the circular arc (lo, hi], in key order.
	Arc(lo, hi keys.Key) []Item
	// ArcLimit returns up to limit entries of the arc (lo, hi] in key
	// order, reporting whether the scan was truncated (the caller resumes
	// from the last returned key). limit ≤ 0 means no cap.
	ArcLimit(lo, hi keys.Key, limit int) (items []Item, more bool)
	// ArcBytes returns the byte volume (data plus pointer sizes) in the
	// arc (lo, hi] — the primary-responsibility load the balancer
	// compares (§6).
	ArcBytes(lo, hi keys.Key) int64
	// ArcVisit walks the index metadata of the circular arc (lo, hi] in
	// key order, calling fn for each entry until it returns false. The
	// walk is index-only — implementations must not touch block payloads
	// or allocate per entry — so the placement census can sweep the whole
	// store every tick with zero allocations.
	ArcVisit(lo, hi keys.Key, fn func(k keys.Key, m Meta) bool)
	// MedianKey returns the key splitting the arc (lo, hi] into two
	// byte-balanced halves (false when the arc is empty).
	MedianKey(lo, hi keys.Key) (keys.Key, bool)
	// StalePointers returns pointers installed before the deadline, due
	// for stabilization (§6).
	StalePointers(deadline time.Time) []Item
	// Keys returns every stored key (snapshot).
	Keys() []keys.Key
	// Len returns the number of entries (data and pointers).
	Len() int
	// Bytes returns the stored data volume (pointers excluded).
	Bytes() int64
	// Flush blocks until every previously acknowledged write is durable
	// (a clean-shutdown barrier; no-op for volatile engines).
	Flush() error
	// Close releases the engine's resources. A durable engine flushes
	// first; the engine must not be used afterwards.
	Close() error
}

// IdentityStore is implemented by engines that can persist the node's
// ring identity alongside its blocks, so a restarted node rejoins with
// its old arc intact. The node saves its ID at startup and after every
// balance move, and adopts a persisted ID in preference to a random one.
type IdentityStore interface {
	// LoadIdentity returns the persisted node ID, if any.
	LoadIdentity() (keys.Key, bool)
	// SaveIdentity durably records the node ID.
	SaveIdentity(id keys.Key) error
}

// Store is a thread-safe ordered in-memory block store.
type Store struct {
	mu    sync.RWMutex
	tree  btree.Tree[*Block]
	bytes int64 // data bytes actually stored (pointers excluded)
	// ttls and ptrs count entries carrying a TTL deadline / pointer
	// entries, so SweepExpired and StalePointers can skip their full-tree
	// scans when there is nothing they could find — the common case on
	// nodes that never see TTL writes or balance moves.
	ttls int
	ptrs int
}

var _ Engine = (*Store)(nil)

// New creates an empty store.
func New() *Store { return &Store{} }

// Len returns the number of entries (data and pointers).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Bytes returns the stored data volume (pointers excluded).
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// dropCounts adjusts the cheap-scan counters for a removed entry.
func (s *Store) dropCounts(b *Block) {
	if b.IsPointer() {
		s.ptrs--
	} else {
		s.bytes -= b.Size
	}
	if !b.Expires.IsZero() {
		s.ttls--
	}
}

// Put stores block data, replacing any previous entry (including a
// pointer: the data has arrived). A zero ttl means no expiry.
func (s *Store) Put(k keys.Key, data []byte, ttl time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &Block{Data: data, Size: int64(len(data))}
	if ttl > 0 {
		b.Expires = now.Add(ttl)
		s.ttls++
	}
	if prev, had := s.tree.Set(k, b); had {
		s.dropCounts(prev)
	}
	s.bytes += b.Size
}

// PutPointer installs a pointer entry unless data is already present.
func (s *Store) PutPointer(k keys.Key, target transport.Addr, size int64, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.tree.Get(k); ok && !prev.IsPointer() {
		return // real data wins over a pointer
	}
	if prev, had := s.tree.Set(k, &Block{Pointer: target, Size: size, PointerSince: now}); had {
		s.dropCounts(prev)
	}
	s.ptrs++
}

// Get returns the entry under k.
func (s *Store) Get(k keys.Key) (*Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Get(k)
}

// GetBatch returns the entries for a batch of keys (nil for absent ones)
// under a single lock acquisition, serving MultiGet without paying the
// read-lock once per block.
func (s *Store) GetBatch(ks []keys.Key) []*Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Block, len(ks))
	for i, k := range ks {
		if b, ok := s.tree.Get(k); ok {
			out[i] = b
		}
	}
	return out
}

// Delete removes the entry under k immediately.
func (s *Store) Delete(k keys.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.tree.Delete(k)
	if ok {
		s.dropCounts(prev)
	}
	return ok
}

// Refresh extends a block's TTL.
func (s *Store) Refresh(k keys.Key, ttl time.Duration, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.tree.Get(k)
	if !ok {
		return false
	}
	had := !b.Expires.IsZero()
	if ttl > 0 {
		b.Expires = now.Add(ttl)
		if !had {
			s.ttls++
		}
	} else {
		b.Expires = time.Time{}
		if had {
			s.ttls--
		}
	}
	return true
}

// SweepExpired removes entries whose TTL passed, returning the count.
// When no live entry carries a TTL the scan is skipped entirely.
func (s *Store) SweepExpired(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ttls == 0 {
		return 0
	}
	var dead []keys.Key
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, b *Block) bool {
		if !b.Expires.IsZero() && b.Expires.Before(now) {
			dead = append(dead, k)
		}
		return true
	})
	for _, k := range dead {
		if prev, ok := s.tree.Delete(k); ok {
			s.dropCounts(prev)
		}
	}
	return len(dead)
}

// Arc returns the entries in the circular arc (lo, hi], in key order.
func (s *Store) Arc(lo, hi keys.Key) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		out = append(out, Item{Key: k, Block: b})
		return true
	})
	return out
}

// ArcLimit returns up to limit entries of the circular arc (lo, hi] in
// key order, reporting whether the scan was truncated (the caller resumes
// from the last returned key). limit ≤ 0 means no cap.
func (s *Store) ArcLimit(lo, hi keys.Key, limit int) (items []Item, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		if limit > 0 && len(items) == limit {
			more = true
			return false
		}
		items = append(items, Item{Key: k, Block: b})
		return true
	})
	return items, more
}

// ArcBytes returns the byte volume (data plus pointer sizes) in the arc
// (lo, hi] — the primary-responsibility load the balancer compares (§6).
func (s *Store) ArcBytes(lo, hi keys.Key) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	s.tree.AscendArc(lo, hi, func(_ keys.Key, b *Block) bool {
		total += b.Size
		return true
	})
	return total
}

// ArcVisit walks the index metadata of the arc (lo, hi] in key order.
// Only the entry header is exposed — no payload reference escapes — and
// nothing is allocated per entry, so a census sweep over the whole store
// costs just the tree walk.
func (s *Store) ArcVisit(lo, hi keys.Key, fn func(k keys.Key, m Meta) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		m := Meta{Size: b.Size, Pointer: b.Pointer}
		if !b.PointerSince.IsZero() {
			m.PointerSince = b.PointerSince.UnixNano()
		}
		return fn(k, m)
	})
}

// MedianKey returns the key splitting the arc (lo, hi] into two
// byte-balanced halves (false when the arc is empty).
func (s *Store) MedianKey(lo, hi keys.Key) (keys.Key, bool) {
	total := s.ArcBytes(lo, hi)
	if total == 0 {
		return keys.Key{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var acc int64
	var split keys.Key
	found := false
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		acc += b.Size
		if acc >= total/2 {
			split = k
			found = true
			return false
		}
		return true
	})
	return split, found
}

// StalePointers returns pointers installed before the deadline, due for
// stabilization (§6: a node retrieves the block for a pointer it has held
// longer than the pointer stabilization time). When no pointer entries
// exist the scan is skipped entirely.
func (s *Store) StalePointers(deadline time.Time) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ptrs == 0 {
		return nil
	}
	var out []Item
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, b *Block) bool {
		if b.IsPointer() && b.PointerSince.Before(deadline) {
			out = append(out, Item{Key: k, Block: b})
		}
		return true
	})
	return out
}

// Keys returns every stored key (snapshot).
func (s *Store) Keys() []keys.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]keys.Key, 0, s.tree.Len())
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, _ *Block) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Flush is a no-op: the in-memory store has no durability to wait for.
func (s *Store) Flush() error { return nil }

// Close is a no-op for the in-memory store.
func (s *Store) Close() error { return nil }
