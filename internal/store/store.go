// Package store is the local block store of a live D2 node (the paper's
// D2-Store used BerkeleyDB; this is a pure-Go ordered in-memory store).
// Beyond put/get/remove it supports the two operations defragmentation
// needs: ordered range scans (for migration and replica repair) and block
// pointers — lightweight entries that record where a block's data actually
// lives while a load-balance move is pending (§6).
package store

import (
	"sync"
	"time"

	"github.com/defragdht/d2/internal/btree"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/transport"
)

// Block is one stored entry: either actual data or a pointer.
type Block struct {
	// Data is the block payload (nil for pointer entries).
	Data []byte
	// Pointer, when set, names the node that stores the data.
	Pointer transport.Addr
	// Size is the data size (pointers record the pointed-to size so load
	// accounting reflects eventual storage).
	Size int64
	// PointerSince is when the pointer was installed, for stabilization.
	PointerSince time.Time
	// Expires, when non-zero, is the block's TTL deadline (§3: blocks
	// are removed after a refreshable TTL in case explicit removal is
	// lost in a partition).
	Expires time.Time
}

// IsPointer reports whether this entry is a block pointer.
func (b *Block) IsPointer() bool { return b.Pointer != "" }

// Store is a thread-safe ordered block store.
type Store struct {
	mu    sync.RWMutex
	tree  btree.Tree[*Block]
	bytes int64 // data bytes actually stored (pointers excluded)
}

// New creates an empty store.
func New() *Store { return &Store{} }

// Len returns the number of entries (data and pointers).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Bytes returns the stored data volume (pointers excluded).
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Put stores block data, replacing any previous entry (including a
// pointer: the data has arrived). A zero ttl means no expiry.
func (s *Store) Put(k keys.Key, data []byte, ttl time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &Block{Data: data, Size: int64(len(data))}
	if ttl > 0 {
		b.Expires = now.Add(ttl)
	}
	if prev, had := s.tree.Set(k, b); had && !prev.IsPointer() {
		s.bytes -= prev.Size
	}
	s.bytes += b.Size
}

// PutPointer installs a pointer entry unless data is already present.
func (s *Store) PutPointer(k keys.Key, target transport.Addr, size int64, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.tree.Get(k); ok && !prev.IsPointer() {
		return // real data wins over a pointer
	}
	s.tree.Set(k, &Block{Pointer: target, Size: size, PointerSince: now})
}

// Get returns the entry under k.
func (s *Store) Get(k keys.Key) (*Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Get(k)
}

// GetBatch returns the entries for a batch of keys (nil for absent ones)
// under a single lock acquisition, serving MultiGet without paying the
// read-lock once per block.
func (s *Store) GetBatch(ks []keys.Key) []*Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Block, len(ks))
	for i, k := range ks {
		if b, ok := s.tree.Get(k); ok {
			out[i] = b
		}
	}
	return out
}

// Delete removes the entry under k immediately.
func (s *Store) Delete(k keys.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.tree.Delete(k)
	if ok && !prev.IsPointer() {
		s.bytes -= prev.Size
	}
	return ok
}

// Refresh extends a block's TTL.
func (s *Store) Refresh(k keys.Key, ttl time.Duration, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.tree.Get(k)
	if !ok {
		return false
	}
	if ttl > 0 {
		b.Expires = now.Add(ttl)
	} else {
		b.Expires = time.Time{}
	}
	return true
}

// SweepExpired removes entries whose TTL passed, returning the count.
func (s *Store) SweepExpired(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dead []keys.Key
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, b *Block) bool {
		if !b.Expires.IsZero() && b.Expires.Before(now) {
			dead = append(dead, k)
		}
		return true
	})
	for _, k := range dead {
		if prev, ok := s.tree.Delete(k); ok && !prev.IsPointer() {
			s.bytes -= prev.Size
		}
	}
	return len(dead)
}

// Item pairs a key with its entry in scan results.
type Item struct {
	Key   keys.Key
	Block *Block
}

// Arc returns the entries in the circular arc (lo, hi], in key order.
func (s *Store) Arc(lo, hi keys.Key) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		out = append(out, Item{Key: k, Block: b})
		return true
	})
	return out
}

// ArcLimit returns up to limit entries of the circular arc (lo, hi] in
// key order, reporting whether the scan was truncated (the caller resumes
// from the last returned key). limit ≤ 0 means no cap.
func (s *Store) ArcLimit(lo, hi keys.Key, limit int) (items []Item, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		if limit > 0 && len(items) == limit {
			more = true
			return false
		}
		items = append(items, Item{Key: k, Block: b})
		return true
	})
	return items, more
}

// ArcBytes returns the byte volume (data plus pointer sizes) in the arc
// (lo, hi] — the primary-responsibility load the balancer compares (§6).
func (s *Store) ArcBytes(lo, hi keys.Key) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	s.tree.AscendArc(lo, hi, func(_ keys.Key, b *Block) bool {
		total += b.Size
		return true
	})
	return total
}

// MedianKey returns the key splitting the arc (lo, hi] into two
// byte-balanced halves (false when the arc is empty).
func (s *Store) MedianKey(lo, hi keys.Key) (keys.Key, bool) {
	total := s.ArcBytes(lo, hi)
	if total == 0 {
		return keys.Key{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var acc int64
	var split keys.Key
	found := false
	s.tree.AscendArc(lo, hi, func(k keys.Key, b *Block) bool {
		acc += b.Size
		if acc >= total/2 {
			split = k
			found = true
			return false
		}
		return true
	})
	return split, found
}

// StalePointers returns pointers installed before the deadline, due for
// stabilization (§6: a node retrieves the block for a pointer it has held
// longer than the pointer stabilization time).
func (s *Store) StalePointers(deadline time.Time) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, b *Block) bool {
		if b.IsPointer() && b.PointerSince.Before(deadline) {
			out = append(out, Item{Key: k, Block: b})
		}
		return true
	})
	return out
}

// Keys returns every stored key (snapshot).
func (s *Store) Keys() []keys.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]keys.Key, 0, s.tree.Len())
	s.tree.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, _ *Block) bool {
		out = append(out, k)
		return true
	})
	return out
}
