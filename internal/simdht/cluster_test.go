package simdht

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/sim"
)

func newTestCluster(t *testing.T, nodes int, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := &sim.Engine{}
	cfg.Nodes = nodes
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	return eng, New(eng, cfg)
}

// checkInvariants validates global consistency: holder lists and per-node
// held sets agree, byte accounting matches, and every live block with any
// up holder is reported available.
func checkInvariants(t *testing.T, c *Cluster) {
	t.Helper()
	heldBytes := make(map[int]int64)
	ptrCount := make(map[int]int)
	fetchCount := make(map[int]int)
	for h := range c.blocks {
		b := &c.blocks[h]
		if !b.live {
			continue
		}
		seen := map[int32]bool{}
		for _, holder := range b.holders {
			if seen[holder] {
				t.Fatalf("block %s lists holder %d twice", b.key.Short(), holder)
			}
			seen[holder] = true
			n := c.nodes[holder]
			if _, ok := n.held[int32(h)]; !ok {
				t.Fatalf("block %s lists holder %d but node does not hold it", b.key.Short(), holder)
			}
			heldBytes[int(holder)] += int64(b.size)
		}
		for _, p := range b.pointers {
			if !c.hasPointer(p.node, int32(h)) {
				t.Fatalf("block %s lists pointer at %d but node index lacks it", b.key.Short(), p.node)
			}
			ptrCount[p.node]++
		}
		for _, f := range b.fetching {
			if !c.isFetching(int(f), int32(h)) {
				t.Fatalf("block %s lists fetch at %d but node index lacks it", b.key.Short(), f)
			}
			fetchCount[int(f)]++
		}
	}
	for _, n := range c.nodes {
		if len(n.ptrs) != ptrCount[n.Idx] {
			t.Fatalf("node %d pointer index has %d entries, blocks list %d", n.Idx, len(n.ptrs), ptrCount[n.Idx])
		}
		if len(n.fetch) != fetchCount[n.Idx] {
			t.Fatalf("node %d fetch index has %d entries, blocks list %d", n.Idx, len(n.fetch), fetchCount[n.Idx])
		}
	}
	for _, n := range c.nodes {
		for h := range n.held {
			if !c.blocks[h].live {
				t.Fatalf("node %d holds dead block %d", n.Idx, h)
			}
			if !c.holds(n.Idx, h) {
				t.Fatalf("node %d holds block %d not listing it", n.Idx, h)
			}
		}
		if n.HeldBytes != heldBytes[n.Idx] {
			t.Fatalf("node %d HeldBytes=%d, recomputed=%d", n.Idx, n.HeldBytes, heldBytes[n.Idx])
		}
	}
	// Global tree and byKey agree.
	count := 0
	c.global.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, h int32) bool {
		count++
		if got, ok := c.byKey[k]; !ok || got != h {
			t.Fatalf("global tree and byKey disagree at %s", k.Short())
		}
		return true
	})
	if count != len(c.byKey) {
		t.Fatalf("global tree has %d blocks, byKey has %d", count, len(c.byKey))
	}
}

// checkRespBytes verifies the incrementally-maintained responsibility
// bytes against a fresh recomputation.
func checkRespBytes(t *testing.T, c *Cluster) {
	t.Helper()
	want := make(map[int]int64)
	c.global.AscendRange(keys.Zero, keys.MaxKey, func(k keys.Key, h int32) bool {
		if owner := c.ownerNode(k); owner >= 0 {
			want[owner] += int64(c.blocks[h].size)
		}
		return true
	})
	for _, n := range c.nodes {
		if n.RespBytes != want[n.Idx] {
			t.Fatalf("node %d RespBytes=%d, recomputed=%d", n.Idx, n.RespBytes, want[n.Idx])
		}
	}
}

func TestPutPlacesOnReplicaGroup(t *testing.T) {
	_, c := newTestCluster(t, 10, Config{Replicas: 3})
	k := keys.HashString("some-block")
	c.PutInstant(k, 8192)

	exists, avail := c.BlockStatus(k)
	if !exists || !avail {
		t.Fatalf("BlockStatus = (%v, %v), want available", exists, avail)
	}
	h := c.byKey[k]
	if got := len(c.blocks[h].holders); got != 3 {
		t.Fatalf("block has %d holders, want 3", got)
	}
	desired := c.replicaNodes(k)
	for _, holder := range c.blocks[h].holders {
		found := false
		for _, d := range desired {
			if int(holder) == d {
				found = true
			}
		}
		if !found {
			t.Errorf("holder %d not in replica group %v", holder, desired)
		}
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestPutInstantOverwriteAdjustsSize(t *testing.T) {
	_, c := newTestCluster(t, 5, Config{Replicas: 2})
	k := keys.HashString("blk")
	c.PutInstant(k, 8192)
	c.PutInstant(k, 4096)
	h := c.byKey[k]
	if c.blocks[h].size != 4096 {
		t.Fatalf("size after overwrite = %d", c.blocks[h].size)
	}
	if c.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1", c.NumBlocks())
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestRemoveAfterDelay(t *testing.T) {
	eng, c := newTestCluster(t, 5, Config{Replicas: 2, RemoveDelay: 30 * time.Second})
	k := keys.HashString("gone")
	c.PutInstant(k, 100)
	c.Remove(k)
	eng.Run(10 * time.Second)
	if exists, _ := c.BlockStatus(k); !exists {
		t.Fatal("block removed before the 30s delay")
	}
	eng.Run(time.Minute)
	if exists, _ := c.BlockStatus(k); exists {
		t.Fatal("block still present after removal delay")
	}
	if c.NumBlocks() != 0 {
		t.Fatalf("NumBlocks = %d", c.NumBlocks())
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestWriteThroughUserLink(t *testing.T) {
	eng, c := newTestCluster(t, 5, Config{Replicas: 2, UserWriteBPS: 8000}) // 1000 B/s
	k := keys.HashString("written")
	done := false
	c.Write(1, k, 2000, func() { done = true })
	eng.Run(time.Second)
	if done {
		t.Fatal("2000B write done in 1s at 1000B/s")
	}
	eng.Run(3 * time.Second)
	if !done {
		t.Fatal("write not completed")
	}
	if exists, avail := c.BlockStatus(k); !exists || !avail {
		t.Fatal("written block not available")
	}
	if c.WrittenBytes() != 2000 {
		t.Fatalf("WrittenBytes = %d", c.WrittenBytes())
	}
}

func TestFailureRegeneration(t *testing.T) {
	eng, c := newTestCluster(t, 10, Config{Replicas: 3, MigrationBPS: 8_000_000})
	// Insert blocks, fail one replica holder, and check the group
	// restocks to 3 actual copies.
	var ks []keys.Key
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50; i++ {
		k := keys.Random(rng)
		ks = append(ks, k)
		c.PutInstant(k, 8192)
	}
	victim := int(c.blocks[c.byKey[ks[0]]].holders[0])
	c.NodeFail(victim)

	// Immediately after the failure the block is still available from
	// the surviving replicas.
	if _, avail := c.BlockStatus(ks[0]); !avail {
		t.Fatal("block unavailable right after a single failure with r=3")
	}
	eng.Run(time.Hour)
	for _, k := range ks {
		h := c.byKey[k]
		b := &c.blocks[h]
		up := 0
		for _, holder := range b.holders {
			if c.nodes[holder].Up {
				up++
			}
		}
		if up < 3 {
			t.Fatalf("block %s has %d live replicas after regeneration, want 3", k.Short(), up)
		}
	}
	if c.MigratedBytes() == 0 {
		t.Fatal("regeneration moved no bytes")
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestRecoveryDropsStaleExtras(t *testing.T) {
	eng, c := newTestCluster(t, 8, Config{Replicas: 2, MigrationBPS: 8_000_000})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 40; i++ {
		c.PutInstant(keys.Random(rng), 8192)
	}
	victim := 0
	heldBefore := c.nodes[victim].HeldBytes
	if heldBefore == 0 {
		t.Skip("node 0 holds nothing in this layout")
	}
	c.NodeFail(victim)
	eng.Run(time.Hour) // survivors regenerate
	c.NodeRecover(victim)
	eng.Run(2 * time.Hour)
	// After recovery and resync, every block must have exactly r actual
	// replicas on up nodes (extras dropped).
	for h := range c.blocks {
		b := &c.blocks[h]
		if !b.live {
			continue
		}
		if got := len(b.holders); got != 2 {
			t.Fatalf("block %s has %d holders after recovery, want 2", b.key.Short(), got)
		}
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestTotalFailureThenRecovery(t *testing.T) {
	eng, c := newTestCluster(t, 4, Config{Replicas: 2, MigrationBPS: 8_000_000})
	k := keys.HashString("persistent")
	c.PutInstant(k, 8192)
	holders := append([]int32(nil), c.blocks[c.byKey[k]].holders...)
	for _, holder := range holders {
		c.NodeFail(int(holder))
	}
	if _, avail := c.BlockStatus(k); avail {
		t.Fatal("block available with every holder down")
	}
	eng.Run(30 * time.Minute)
	c.NodeRecover(int(holders[0]))
	eng.Run(2 * time.Hour) // regeneration retries find the source
	if _, avail := c.BlockStatus(k); !avail {
		t.Fatal("block not available after holder recovery")
	}
	checkInvariants(t, c)
}

func TestBalancerConvergesOnSkewedKeys(t *testing.T) {
	eng, c := newTestCluster(t, 30, Config{
		Replicas:             3,
		Balance:              true,
		MigrationBPS:         80_000_000,
		PointerStabilization: 10 * time.Minute,
	})
	// All keys in one narrow arc: the worst case for consistent hashing.
	base := keys.HashString("hotspot")
	k := base
	for i := 0; i < 3000; i++ {
		k = k.Next()
		c.PutInstant(k, 8192)
	}
	before := c.Imbalance()
	eng.Run(24 * time.Hour)
	after := c.Imbalance()
	if after >= before/2 {
		t.Fatalf("imbalance %0.3f -> %0.3f: balancer did not converge", before, after)
	}
	if ratio := c.MaxLoadRatio(); ratio > 5.5 {
		t.Fatalf("max/mean load ratio %.2f after balancing, want ≲ t+slack", ratio)
	}
	if c.Moves() == 0 {
		t.Fatal("balancer performed no moves")
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestPointersKeepDataAvailableDuringMove(t *testing.T) {
	eng, c := newTestCluster(t, 20, Config{
		Replicas:             3,
		Balance:              true,
		MigrationBPS:         8_000_000,
		PointerStabilization: time.Hour,
	})
	base := keys.HashString("arc")
	k := base
	var ks []keys.Key
	for i := 0; i < 1000; i++ {
		k = k.Next()
		ks = append(ks, k)
		c.PutInstant(k, 8192)
	}
	// Probe availability continuously while the balancer reshuffles.
	failures := 0
	eng.Every(time.Minute, func() bool {
		for _, k := range ks[:50] {
			if _, avail := c.BlockStatus(k); !avail {
				failures++
			}
		}
		return true
	})
	eng.Run(6 * time.Hour)
	if failures != 0 {
		t.Fatalf("%d availability probes failed during pointer-based rebalancing", failures)
	}
	checkInvariants(t, c)
}

func TestPointerAblationMovesMoreData(t *testing.T) {
	run := func(disable bool) int64 {
		eng := &sim.Engine{}
		c := New(eng, Config{
			Nodes:                20,
			Replicas:             3,
			Balance:              true,
			DisablePointers:      disable,
			MigrationBPS:         80_000_000,
			PointerStabilization: 2 * time.Hour,
			Seed:                 11,
		})
		base := keys.HashString("ablation")
		k := base
		for i := 0; i < 2000; i++ {
			k = k.Next()
			c.PutInstant(k, 8192)
		}
		eng.Run(8 * time.Hour)
		return c.MigratedBytes()
	}
	withPointers := run(false)
	withoutPointers := run(true)
	if withoutPointers <= withPointers {
		t.Fatalf("pointers did not reduce migration: with=%d without=%d", withPointers, withoutPointers)
	}
}

func TestBalancerIdleOnUniformLoad(t *testing.T) {
	eng, c := newTestCluster(t, 20, Config{Replicas: 3, Balance: true, Seed: 5})
	rng := rand.New(rand.NewPCG(8, 9))
	for i := 0; i < 4000; i++ {
		c.PutInstant(keys.Random(rng), 8192)
	}
	eng.Run(6 * time.Hour)
	// Uniform keys under consistent hashing: some imbalance exists, but
	// moves should be few once loads are within the t=4 band.
	if c.Moves() > 40 {
		t.Fatalf("balancer churned %d moves on uniform load", c.Moves())
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestAffectedArcCoversGroupChanges(t *testing.T) {
	_, c := newTestCluster(t, 12, Config{Replicas: 3})
	// For every member x: keys in affectedArc(x) are exactly those whose
	// replica group contains x.
	rng := rand.New(rand.NewPCG(10, 11))
	for trial := 0; trial < 50; trial++ {
		probe := keys.Random(rng)
		group := c.replicaNodes(probe)
		for _, m := range c.members {
			lo, hi := c.affectedArc(m.id)
			inArc := probe.Between(lo, hi)
			inGroup := false
			for _, g := range group {
				if g == m.node {
					inGroup = true
				}
			}
			if inGroup && !inArc {
				t.Fatalf("key %s in group of node %s but outside affectedArc",
					probe.Short(), m.id.Short())
			}
		}
	}
}

func TestManyRandomOpsKeepInvariants(t *testing.T) {
	eng, c := newTestCluster(t, 15, Config{
		Replicas:     3,
		Balance:      true,
		MigrationBPS: 8_000_000,
		Seed:         13,
	})
	rng := rand.New(rand.NewPCG(14, 15))
	var live []keys.Key
	for step := 0; step < 400; step++ {
		switch rng.IntN(10) {
		case 0, 1, 2, 3, 4:
			k := keys.Random(rng)
			c.PutInstant(k, int32(1+rng.IntN(8192)))
			live = append(live, k)
		case 5, 6:
			if len(live) > 0 {
				i := rng.IntN(len(live))
				c.Remove(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		case 7:
			idx := rng.IntN(len(c.nodes))
			if c.nodes[idx].Up && len(c.members) > 4 {
				c.NodeFail(idx)
			}
		case 8:
			idx := rng.IntN(len(c.nodes))
			if !c.nodes[idx].Up {
				c.NodeRecover(idx)
			}
		case 9:
			eng.Run(eng.Now() + time.Duration(rng.IntN(3600))*time.Second)
		}
	}
	for _, n := range c.nodes {
		if !n.Up {
			c.NodeRecover(n.Idx)
		}
	}
	eng.Run(eng.Now() + 48*time.Hour)
	checkInvariants(t, c)
	checkRespBytes(t, c)
	// Every live block must be fully stocked after the dust settles.
	for h := range c.blocks {
		b := &c.blocks[h]
		if !b.live {
			continue
		}
		if !c.groupFullyStocked(b, int32(h)) {
			t.Fatalf("block %s not fully stocked at steady state (holders=%v fetching=%v pointers=%v)",
				b.key.Short(), b.holders, b.fetching, b.pointers)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Replicas != 3 || cfg.BalanceThreshold != 4 ||
		cfg.ProbeInterval != 10*time.Minute || cfg.PointerStabilization != time.Hour ||
		cfg.MigrationBPS != 750_000 || cfg.UserWriteBPS != 1_500_000 ||
		cfg.RemoveDelay != 30*time.Second {
		t.Errorf("defaults do not match §8.1: %+v", cfg)
	}
}

func TestSmallRingReplicaClamp(t *testing.T) {
	_, c := newTestCluster(t, 2, Config{Replicas: 3})
	k := keys.HashString("tiny")
	c.PutInstant(k, 100)
	h := c.byKey[k]
	if got := len(c.blocks[h].holders); got != 2 {
		t.Fatalf("2-node ring stored %d replicas, want 2", got)
	}
}

func ExampleCluster_BlockStatus() {
	eng := &sim.Engine{}
	c := New(eng, Config{Nodes: 5, Replicas: 3, Seed: 1})
	k := keys.HashString("/home/alice/notes.txt#1")
	c.PutInstant(k, 8192)
	exists, available := c.BlockStatus(k)
	fmt.Println(exists, available)
	// Output: true true
}
