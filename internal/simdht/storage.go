package simdht

import (
	"fmt"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/sim"
)

// allocBlock creates metadata for a new block.
func (c *Cluster) allocBlock(k keys.Key, size int32) int32 {
	var h int32
	if n := len(c.free); n > 0 {
		h = c.free[n-1]
		c.free = c.free[:n-1]
		c.blocks[h] = blockMeta{key: k, size: size, live: true}
	} else {
		h = int32(len(c.blocks))
		c.blocks = append(c.blocks, blockMeta{key: k, size: size, live: true})
	}
	c.byKey[k] = h
	c.global.Set(k, h)
	return h
}

// PutInstant stores a block immediately on all live members of its replica
// group, bypassing write bandwidth. Used for initial file system loading
// (§8.1 inserts the day-0 snapshot before the simulation starts).
func (c *Cluster) PutInstant(k keys.Key, size int32) {
	if h, exists := c.byKey[k]; exists {
		// Overwrite in place: size may change.
		c.rewriteBlock(h, size)
		return
	}
	h := c.allocBlock(k, size)
	if owner := c.ownerNode(k); owner >= 0 {
		c.nodes[owner].RespBytes += int64(size)
	}
	for _, d := range c.replicaNodes(k) {
		c.addReplica(c.nodes[d], h)
	}
}

// rewriteBlock models an in-place modification: placement is unchanged;
// only the size delta propagates to holders and responsibility.
func (c *Cluster) rewriteBlock(h int32, size int32) {
	b := &c.blocks[h]
	delta := int64(size) - int64(b.size)
	b.size = size
	if delta == 0 {
		return
	}
	for _, holder := range b.holders {
		c.nodes[holder].HeldBytes += delta
	}
	if owner := c.ownerNode(b.key); owner >= 0 {
		c.nodes[owner].RespBytes += delta
	}
}

// Write stores a block through the user's write link: the put completes
// when the user's 1500 kbps uplink has pushed the bytes (§8.1).
func (c *Cluster) Write(user int32, k keys.Key, size int32, done func()) {
	link := c.userLinks[user]
	if link == nil {
		link = sim.NewLink(c.Eng, c.cfg.UserWriteBPS)
		c.userLinks[user] = link
	}
	c.writtenBytes.Add(uint64(size))
	link.Enqueue(int64(size), func() {
		c.PutInstant(k, size)
		if done != nil {
			done()
		}
	})
}

// Remove deletes a block after the configured removal delay (§3: quick
// removal preserves locality; 30 s covers write-back staleness).
func (c *Cluster) Remove(k keys.Key) {
	c.Eng.After(c.cfg.RemoveDelay, func() {
		h, ok := c.byKey[k]
		if !ok {
			return
		}
		c.removeNow(h)
	})
}

func (c *Cluster) removeNow(h int32) {
	b := &c.blocks[h]
	if !b.live {
		return
	}
	if owner := c.ownerNode(b.key); owner >= 0 {
		c.nodes[owner].RespBytes -= int64(b.size)
	}
	for _, holder := range b.holders {
		n := c.nodes[holder]
		delete(n.held, h)
		n.HeldBytes -= int64(b.size)
	}
	for _, p := range b.pointers {
		delete(c.nodes[p.node].ptrs, h)
	}
	for _, f := range b.fetching {
		delete(c.nodes[f].fetch, h)
	}
	b.holders = nil
	b.pointers = nil
	b.fetching = nil
	b.live = false
	c.global.Delete(b.key)
	delete(c.byKey, b.key)
	c.free = append(c.free, h)
}

// addReplica records that node n stores the block.
func (c *Cluster) addReplica(n *Node, h int32) {
	if _, ok := n.held[h]; ok {
		return
	}
	b := &c.blocks[h]
	n.held[h] = struct{}{}
	n.HeldBytes += int64(b.size)
	b.holders = append(b.holders, int32(n.Idx))
}

// dropReplica removes the node's stored copy.
func (c *Cluster) dropReplica(n *Node, h int32) {
	if _, ok := n.held[h]; !ok {
		return
	}
	b := &c.blocks[h]
	delete(n.held, h)
	n.HeldBytes -= int64(b.size)
	for i, holder := range b.holders {
		if int(holder) == n.Idx {
			b.holders = append(b.holders[:i], b.holders[i+1:]...)
			break
		}
	}
}

// resyncArc re-establishes the replica invariant for every block in the
// arc (lo, hi]: each of the r successors must hold (or be acquiring) the
// block. viaPointers marks voluntary moves, which defer data movement
// with block pointers (§6); involuntary changes (failures) regenerate by
// fetching over the migration link.
func (c *Cluster) resyncArc(lo, hi keys.Key, viaPointers bool) {
	pending := c.pendScratch[:0]
	c.global.AscendArc(lo, hi, func(_ keys.Key, h int32) bool {
		pending = append(pending, h)
		return true
	})
	c.pendScratch = pending
	for _, h := range pending {
		c.resyncBlock(h, viaPointers)
	}
}

// resyncBlock fixes one block's replica set.
func (c *Cluster) resyncBlock(h int32, viaPointers bool) {
	b := &c.blocks[h]
	if !b.live {
		return
	}
	// desired aliases the replica scratch: everything below that runs
	// before maybeDropExtras must not call replicaNodes again.
	desired := c.replicaNodes(b.key)
	for _, d := range desired {
		if c.holds(d, h) || c.hasPointer(d, h) || c.isFetching(d, h) {
			continue
		}
		if viaPointers && !c.cfg.DisablePointers {
			if target := c.pickSource(b, h); target >= 0 {
				c.createPointer(d, h, target)
				continue
			}
		}
		c.scheduleFetch(d, h)
	}
	// Pointers at nodes no longer in the group vanish (their data never
	// moved); the new group members created their own pointers above,
	// which is the paper's pointer hand-off (B transfers pointers to D).
	if len(b.pointers) > 0 {
		out := b.pointers[:0]
		for _, p := range b.pointers {
			if c.inIntSlice(desired, p.node) {
				out = append(out, p)
			} else {
				delete(c.nodes[p.node].ptrs, h)
			}
		}
		b.pointers = out
	}
	c.maybeDropExtras(h)
}

func (c *Cluster) inIntSlice(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// maybeDropExtras deletes unnecessary replicas once every desired member
// stores an actual copy, never risking the last copy.
func (c *Cluster) maybeDropExtras(h int32) {
	b := &c.blocks[h]
	if !b.live {
		return
	}
	desired := c.replicaNodes(b.key)
	if len(desired) == 0 {
		return
	}
	for _, d := range desired {
		if !c.holds(d, h) {
			return
		}
	}
	extras := c.extraScratch[:0]
	for _, holder := range b.holders {
		if !c.inIntSlice(desired, int(holder)) {
			extras = append(extras, holder)
		}
	}
	c.extraScratch = extras
	for _, e := range extras {
		c.dropReplica(c.nodes[e], h)
	}
}

// pickSource returns a node to fetch the block from: a live holder if one
// exists, otherwise a live pointer target holding the block, otherwise -1.
func (c *Cluster) pickSource(b *blockMeta, h int32) int {
	for _, holder := range b.holders {
		if c.nodes[holder].Up {
			return int(holder)
		}
	}
	for _, p := range b.pointers {
		if c.nodes[p.target].Up && c.holds(p.target, h) {
			return p.target
		}
	}
	return -1
}

// createPointer installs a block pointer at node d targeting the block's
// current holder, and schedules its stabilization: after the pointer has
// been held for PointerStabilization, d fetches the real block (§6).
func (c *Cluster) createPointer(d int, h int32, target int) {
	b := &c.blocks[h]
	b.pointers = append(b.pointers, ptrRef{node: d, target: target})
	c.nodes[d].ptrs[h] = struct{}{}
	c.Eng.After(c.cfg.PointerStabilization, func() {
		c.stabilizePointer(d, h)
	})
}

// stabilizePointer converts a pointer into a fetch if it still stands.
func (c *Cluster) stabilizePointer(d int, h int32) {
	b := &c.blocks[h]
	if !b.live || !c.hasPointer(d, h) {
		return
	}
	if c.holds(d, h) || c.isFetching(d, h) {
		return
	}
	c.scheduleFetch(d, h)
}

// scheduleFetch queues a block transfer into node d over its migration
// link. If no live source exists, it retries after FetchRetry.
func (c *Cluster) scheduleFetch(d int, h int32) {
	b := &c.blocks[h]
	if c.holds(d, h) || c.isFetching(d, h) {
		return
	}
	node := c.nodes[d]
	if !node.Up {
		return
	}
	if c.pickSource(b, h) < 0 {
		// All copies offline: retry once a source may be back.
		c.Eng.After(c.cfg.FetchRetry, func() {
			bb := &c.blocks[h]
			if bb.live && c.nodeInGroup(d, bb.key) {
				c.scheduleFetch(d, h)
			}
		})
		return
	}
	b.fetching = append(b.fetching, int32(d))
	node.fetch[h] = struct{}{}
	size := int64(b.size)
	start := c.Eng.Now()
	node.link.Enqueue(size, func() {
		c.finishFetch(d, h, size, start)
	})
}

// finishFetch completes a block transfer.
func (c *Cluster) finishFetch(d int, h int32, size int64, start time.Duration) {
	b := &c.blocks[h]
	for i, f := range b.fetching {
		if int(f) == d {
			b.fetching = append(b.fetching[:i], b.fetching[i+1:]...)
			break
		}
	}
	delete(c.nodes[d].fetch, h)
	if !b.live {
		return
	}
	node := c.nodes[d]
	if !node.Up {
		return
	}
	c.migratedBytes.Add(uint64(size))
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(tracing.Span{
			Trace: uint64(h) + 1, // one trace per block; +1 keeps handle 0 valid
			ID:    c.cfg.Trace.Total() + 1,
			Name:  "sim.fetch",
			Node:  fmt.Sprintf("sim-node-%d", d),
			Start: int64(start),
			Dur:   int64(c.Eng.Now() - start),
			Attrs: fmt.Sprintf("block=%d bytes=%d", h, size),
		})
	}
	c.addReplica(node, h)
	// The fulfilled pointer disappears.
	for i, p := range b.pointers {
		if p.node == d {
			b.pointers = append(b.pointers[:i], b.pointers[i+1:]...)
			delete(node.ptrs, h)
			break
		}
	}
	c.maybeDropExtras(h)
}

// BlockStatus reports whether the block exists and whether it is readable:
// some live node stores it, or a live node holds a pointer to a live
// holder (pointers keep data reachable during deferred migration, §6).
func (c *Cluster) BlockStatus(k keys.Key) (exists, available bool) {
	h, ok := c.byKey[k]
	if !ok {
		return false, false
	}
	b := &c.blocks[h]
	for _, holder := range b.holders {
		if c.nodes[holder].Up {
			return true, true
		}
	}
	for _, p := range b.pointers {
		if c.nodes[p.node].Up && c.nodes[p.target].Up && c.holds(p.target, h) {
			return true, true
		}
	}
	return true, false
}
