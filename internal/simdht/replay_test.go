package simdht

import (
	"testing"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/sim"
	"github.com/defragdht/d2/internal/synth"
	"github.com/defragdht/d2/internal/trace"
)

func testTrace() *trace.Trace {
	return synth.Harvard(synth.HarvardConfig{
		Seed:        21,
		Users:       6,
		Days:        2,
		TargetBytes: 24 << 20,
	})
}

func TestReplayNoFailuresNoReadLoss(t *testing.T) {
	eng := &sim.Engine{}
	c := New(eng, Config{Nodes: 16, Replicas: 3, Balance: true, Seed: 3,
		MigrationBPS: 8_000_000})
	tr := testTrace()
	vol := keys.NewVolumeID([]byte("pk"), "harvard")
	rep := NewReplay(c, placement.ForStrategy(placement.D2, vol), tr, 12*time.Hour)
	rep.InsertInitial()
	if c.NumBlocks() == 0 {
		t.Fatal("no blocks after initial insert")
	}

	reads, failed := 0, 0
	rep.ScheduleEvents(func(_ int, ok bool) {
		reads++
		if !ok {
			failed++
		}
	})
	eng.Run(12*time.Hour + tr.Duration + time.Hour)

	if reads == 0 {
		t.Fatal("no reads observed")
	}
	if failed != 0 {
		t.Fatalf("%d/%d reads failed with no node failures", failed, reads)
	}
	if c.WrittenBytes() == 0 {
		t.Fatal("no write traffic recorded")
	}
	checkInvariants(t, c)
	checkRespBytes(t, c)
}

func TestReplayDeleteRemovesBlocks(t *testing.T) {
	eng := &sim.Engine{}
	c := New(eng, Config{Nodes: 8, Replicas: 2, Seed: 4})
	tr := &trace.Trace{
		Name:     "mini",
		Duration: time.Hour,
		Users:    1,
		Initial:  []trace.File{{Path: "/a/f", Size: 3 * trace.BlockSize}},
		Events: []trace.Event{
			{At: time.Minute, User: 0, Op: trace.OpDelete, Path: "/a/f"},
		},
	}
	vol := keys.NewVolumeID([]byte("pk"), "mini")
	rep := NewReplay(c, placement.ForStrategy(placement.D2, vol), tr, 0)
	rep.InsertInitial()
	if got := c.NumBlocks(); got != 4 { // inode + 3 data blocks
		t.Fatalf("NumBlocks after insert = %d, want 4", got)
	}
	rep.ScheduleEvents(nil)
	eng.Run(2 * time.Hour)
	if got := c.NumBlocks(); got != 0 {
		t.Fatalf("NumBlocks after delete = %d, want 0", got)
	}
}

func TestReplayWithFailuresDetectsUnavailability(t *testing.T) {
	eng := &sim.Engine{}
	// Tiny migration bandwidth so regeneration cannot mask failures, and
	// r=1 so any holder failure makes data unavailable.
	c := New(eng, Config{Nodes: 10, Replicas: 1, Seed: 5, MigrationBPS: 1})
	tr := &trace.Trace{
		Name:     "probe",
		Duration: 3 * time.Hour,
		Users:    1,
		Initial:  []trace.File{{Path: "/x", Size: trace.BlockSize}},
	}
	// One read per minute for 3 hours.
	for m := 1; m < 180; m++ {
		tr.Events = append(tr.Events, trace.Event{
			At: time.Duration(m) * time.Minute, User: 0,
			Op: trace.OpRead, Path: "/x", Length: trace.BlockSize,
		})
	}
	vol := keys.NewVolumeID([]byte("pk"), "probe")
	keyer := placement.ForStrategy(placement.D2, vol)
	rep := NewReplay(c, keyer, tr, 0)
	rep.InsertInitial()

	// Fail the holder of the data block from minute 60 to minute 120.
	holder := int(c.blocks[c.byKey[keyer.BlockKey("/x", 1)]].holders[0])
	sched := &synth.Schedule{
		Nodes:    10,
		Duration: 3 * time.Hour,
		ByNode:   make([][]synth.Downtime, 10),
	}
	sched.ByNode[holder] = []synth.Downtime{{Start: time.Hour, End: 2 * time.Hour}}
	rep.ScheduleFailures(sched)

	var outcomes []bool
	rep.ScheduleEvents(func(_ int, ok bool) { outcomes = append(outcomes, ok) })
	eng.Run(4 * time.Hour)

	if len(outcomes) != 179 {
		t.Fatalf("observed %d reads, want 179", len(outcomes))
	}
	// Reads during the outage must fail; others must succeed. The inode
	// may live on a different node, so check a read in the middle.
	if !outcomes[10] {
		t.Error("read before outage failed")
	}
	failedDuring := 0
	for m := 61; m < 119; m++ {
		if !outcomes[m-1] {
			failedDuring++
		}
	}
	if failedDuring < 50 {
		t.Errorf("only %d/58 reads failed during the outage", failedDuring)
	}
	if !outcomes[150] {
		t.Error("read after recovery failed")
	}
}

func TestBlockSizeHelper(t *testing.T) {
	tests := []struct {
		fileSize int64
		block    int64
		want     int32
	}{
		{trace.BlockSize * 2, 1, trace.BlockSize},
		{trace.BlockSize * 2, 2, trace.BlockSize},
		{trace.BlockSize + 5, 2, 5},
		{5, 1, 5},
		{trace.BlockSize, 2, 0},
	}
	for _, tt := range tests {
		if got := blockSize(tt.fileSize, tt.block); got != tt.want {
			t.Errorf("blockSize(%d, %d) = %d, want %d", tt.fileSize, tt.block, got, tt.want)
		}
	}
}
