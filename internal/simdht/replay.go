package simdht

import (
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/synth"
	"github.com/defragdht/d2/internal/trace"
)

// InodeBytes is the modeled size of a file's metadata block (block 0).
const InodeBytes = 512

// Replay drives a workload trace into a simulated cluster: initial files
// are inserted instantly (as the paper initializes its simulations, §8.1),
// then creates, writes, and deletes flow through user write links and the
// removal delay, while reads probe block availability.
type Replay struct {
	C     *Cluster
	Keyer placement.Keyer
	Trace *trace.Trace
	// Offset is the virtual time at which trace time zero falls, leaving
	// room for a load-balance warm-up phase before the workload starts.
	Offset time.Duration

	sizes map[string]int64
}

// NewReplay prepares a replay.
func NewReplay(c *Cluster, keyer placement.Keyer, tr *trace.Trace, offset time.Duration) *Replay {
	return &Replay{C: c, Keyer: keyer, Trace: tr, Offset: offset, sizes: make(map[string]int64)}
}

// blockSize returns the size of data block i (1-based) in a file of the
// given total size.
func blockSize(fileSize int64, i int64) int32 {
	rem := fileSize - (i-1)*trace.BlockSize
	if rem >= trace.BlockSize {
		return trace.BlockSize
	}
	if rem < 0 {
		return 0
	}
	return int32(rem)
}

// InsertInitial loads the trace's initial file system into the cluster.
func (r *Replay) InsertInitial() {
	for _, f := range r.Trace.Initial {
		r.sizes[f.Path] = f.Size
		r.C.PutInstant(r.Keyer.BlockKey(f.Path, 0), InodeBytes)
		for b := int64(1); b <= f.NumBlocks(); b++ {
			r.C.PutInstant(r.Keyer.BlockKey(f.Path, uint64(b)), blockSize(f.Size, b))
		}
	}
}

// ReadProbe is invoked for every read event with the availability verdict.
type ReadProbe func(eventIdx int, ok bool)

// ScheduleEvents schedules every trace event on the cluster's engine.
// onRead (optional) receives the outcome of each read: ok is false when
// any block the read needs is unavailable. Reads of files that do not
// exist (trace causality noise) are skipped silently.
func (r *Replay) ScheduleEvents(onRead ReadProbe) {
	for i := range r.Trace.Events {
		i := i
		e := &r.Trace.Events[i]
		r.C.Eng.At(r.Offset+e.At, func() { r.apply(i, onRead) })
	}
}

func (r *Replay) apply(i int, onRead ReadProbe) {
	e := &r.Trace.Events[i]
	switch e.Op {
	case trace.OpCreate:
		r.sizes[e.Path] = e.Length
		r.C.Write(e.User, r.Keyer.BlockKey(e.Path, 0), InodeBytes, nil)
		n := (e.Length + trace.BlockSize - 1) / trace.BlockSize
		for b := int64(1); b <= n; b++ {
			r.C.Write(e.User, r.Keyer.BlockKey(e.Path, uint64(b)), blockSize(e.Length, b), nil)
		}
	case trace.OpWrite:
		size, ok := r.sizes[e.Path]
		if !ok {
			// Write to an unseen file: treat as creation of the range.
			size = 0
		}
		if end := e.Offset + e.Length; end > size {
			size = end
			r.sizes[e.Path] = size
		}
		first, count := e.BlockSpan()
		for b := first; b < first+count; b++ {
			r.C.Write(e.User, r.Keyer.BlockKey(e.Path, uint64(b)), blockSize(size, b), nil)
		}
		// Metadata update along the path: modeled as the inode rewrite.
		r.C.Write(e.User, r.Keyer.BlockKey(e.Path, 0), InodeBytes, nil)
	case trace.OpDelete:
		size, ok := r.sizes[e.Path]
		if !ok {
			return
		}
		delete(r.sizes, e.Path)
		r.C.Remove(r.Keyer.BlockKey(e.Path, 0))
		n := (size + trace.BlockSize - 1) / trace.BlockSize
		for b := int64(1); b <= n; b++ {
			r.C.Remove(r.Keyer.BlockKey(e.Path, uint64(b)))
		}
	case trace.OpRead:
		if _, ok := r.sizes[e.Path]; !ok {
			return
		}
		ok := r.readAvailable(e)
		if onRead != nil {
			onRead(i, ok)
		}
	}
}

// readAvailable checks that the inode and every data block the read spans
// exist and are reachable.
func (r *Replay) readAvailable(e *trace.Event) bool {
	if !r.blockOK(r.Keyer.BlockKey(e.Path, 0)) {
		return false
	}
	first, count := e.BlockSpan()
	for b := first; b < first+count; b++ {
		if !r.blockOK(r.Keyer.BlockKey(e.Path, uint64(b))) {
			return false
		}
	}
	return true
}

func (r *Replay) blockOK(k keys.Key) bool {
	exists, avail := r.C.BlockStatus(k)
	// A block mid-write (queued on the user link) does not exist yet;
	// D2-FS's 30 s write-back cache hides exactly this window from the
	// writer, so treat it as available rather than failed.
	if !exists {
		return true
	}
	return avail
}

// ScheduleFailures applies a failure schedule's transitions, offset like
// the trace events.
func (r *Replay) ScheduleFailures(s *synth.Schedule) {
	for _, t := range s.Transitions() {
		t := t
		r.C.Eng.At(r.Offset+t.At, func() {
			if t.Up {
				r.C.NodeRecover(t.Node)
			} else {
				r.C.NodeFail(t.Node)
			}
		})
	}
}
