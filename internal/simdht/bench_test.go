package simdht

import (
	"math/rand/v2"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/sim"
)

// benchCluster builds a populated cluster for the hot-path benchmarks: the
// membership/metadata scans below dominate resyncArc during churn, so they
// are measured against a ring with a realistic block count.
func benchCluster(nodes, blocks int) (*Cluster, []keys.Key) {
	eng := &sim.Engine{}
	c := New(eng, Config{Nodes: nodes, Replicas: 3, Seed: 11})
	rng := rand.New(rand.NewPCG(11, 17))
	ks := make([]keys.Key, blocks)
	for i := range ks {
		ks[i] = keys.Random(rng)
		c.PutInstant(ks[i], 4096)
	}
	return c, ks
}

// BenchmarkHolds measures the per-block holder membership test, the
// innermost predicate of every resync pass.
func BenchmarkHolds(b *testing.B) {
	b.ReportAllocs()
	c, ks := benchCluster(128, 4096)
	handles := make([]int32, len(ks))
	holders := make([]int, len(ks))
	for i, k := range ks {
		handles[i] = c.byKey[k]
		holders[i] = int(c.blocks[handles[i]].holders[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ks)
		if !c.holds(holders[j], handles[j]) {
			b.Fatal("holder lost")
		}
	}
}

// BenchmarkNodeInGroup measures the replica-group membership test used when
// deciding whether a retried fetch is still wanted.
func BenchmarkNodeInGroup(b *testing.B) {
	b.ReportAllocs()
	c, ks := benchCluster(128, 4096)
	owners := make([]int, len(ks))
	for i, k := range ks {
		owners[i] = c.ownerNode(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ks)
		if !c.nodeInGroup(owners[j], ks[j]) {
			b.Fatal("owner left group")
		}
	}
}

// BenchmarkReplicaNodes measures successor-group resolution (scratch-backed,
// so steady state should not allocate).
func BenchmarkReplicaNodes(b *testing.B) {
	b.ReportAllocs()
	c, ks := benchCluster(128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.replicaNodes(ks[i%len(ks)])) == 0 {
			b.Fatal("empty group")
		}
	}
}

// BenchmarkResyncBlockStable measures a full no-op resync pass over a block
// whose replica set is already correct — the common case during churn, and
// pure metadata scanning.
func BenchmarkResyncBlockStable(b *testing.B) {
	b.ReportAllocs()
	c, ks := benchCluster(128, 4096)
	handles := make([]int32, len(ks))
	for i, k := range ks {
		handles[i] = c.byKey[k]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.resyncBlock(handles[i%len(handles)], false)
	}
}

// BenchmarkMemberRank measures ring-position lookup, used by every
// responsibility recomputation and median split.
func BenchmarkMemberRank(b *testing.B) {
	b.ReportAllocs()
	c, _ := benchCluster(128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.memberRank(c.nodes[i%len(c.nodes)]) < 0 {
			b.Fatal("node not a member")
		}
	}
}
