package simdht

import (
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/stats"
)

// startBalancers schedules each node's periodic load-balance probe with a
// random phase so probes spread over the interval.
func (c *Cluster) startBalancers() {
	for _, n := range c.nodes {
		n := n
		offset := time.Duration(c.rng.Float64() * float64(c.cfg.ProbeInterval))
		c.Eng.After(offset, func() { c.probeLoop(n) })
	}
}

func (c *Cluster) probeLoop(n *Node) {
	if n.Up {
		c.probe(n)
	}
	c.Eng.After(c.cfg.ProbeInterval, func() { c.probeLoop(n) })
}

// probe implements the Karger–Ruhl step (§6, Figure 5): node B contacts a
// random node A; if load(A) > t·load(B), B changes its ID to become A's
// predecessor, taking half of A's load. The ID change is a voluntary
// leave+rejoin, so data moves through block pointers.
func (c *Cluster) probe(b *Node) {
	if len(c.members) < 3 {
		return
	}
	a := c.nodes[c.members[c.rng.IntN(len(c.members))].node]
	if a.Idx == b.Idx || !a.Up {
		return
	}
	if float64(a.RespBytes) <= c.cfg.BalanceThreshold*float64(b.RespBytes) {
		return
	}
	c.moveNode(b, a)
}

// moveNode relocates node b to become the predecessor of node a, splitting
// a's primary load at its median byte.
func (c *Cluster) moveNode(b, a *Node) {
	newID, ok := c.medianSplit(a)
	if !ok {
		return
	}
	if _, taken := c.rankOf(newID); taken {
		return // the split key is an existing member ID; skip this round
	}
	if newID.Equal(b.ID) {
		return
	}

	// Leave: b's old ranges regenerate via pointers to b (it still has
	// the data).
	oldID := b.ID
	c.deleteMember(b)
	if len(c.members) > 0 {
		lo, hi := c.affectedArc(oldID)
		c.resyncArc(lo, hi, true)
		c.recomputeResp(c.nodes[c.ownerNode(oldID)])
	}

	// Rejoin as a's predecessor at the median of a's range.
	b.ID = newID
	c.insertMember(b)
	lo, hi := c.affectedArc(newID)
	c.resyncArc(lo, hi, true)
	c.recomputeResp(b)
	c.recomputeResp(a)
	c.moves.Inc()
	c.sweepStale(b)
}

// medianSplit returns the key splitting node a's primary range into two
// byte-balanced halves: the new predecessor takes (pred, median] and a
// keeps (median, a].
func (c *Cluster) medianSplit(a *Node) (keys.Key, bool) {
	rank := c.memberRank(a)
	if rank < 0 {
		return keys.Key{}, false
	}
	lo, hi := c.rangeOf(rank)
	var total int64
	c.global.AscendArc(lo, hi, func(_ keys.Key, h int32) bool {
		total += int64(c.blocks[h].size)
		return true
	})
	if total == 0 {
		return keys.Key{}, false
	}
	var acc int64
	var split keys.Key
	found := false
	c.global.AscendArc(lo, hi, func(k keys.Key, h int32) bool {
		acc += int64(c.blocks[h].size)
		if acc >= total/2 {
			split = k
			found = true
			return false
		}
		return true
	})
	if !found || split.Equal(a.ID) {
		return keys.Key{}, false
	}
	return split, true
}

// Imbalance returns the normalized standard deviation of stored bytes over
// up nodes — the Figure 16/17 metric.
func (c *Cluster) Imbalance() float64 {
	return stats.NormStdDev(c.upLoads())
}

// MaxLoadRatio returns the maximum stored load divided by the mean.
func (c *Cluster) MaxLoadRatio() float64 {
	loads := c.upLoads()
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	return max / mean
}

func (c *Cluster) upLoads() []float64 {
	var loads []float64
	for _, n := range c.nodes {
		if n.Up {
			loads = append(loads, float64(n.HeldBytes))
		}
	}
	return loads
}
