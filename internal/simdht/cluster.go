// Package simdht simulates a complete D2 cluster over virtual time: block
// placement and replication on a DHT ring, replica regeneration after
// failures under a per-node migration bandwidth limit, and the
// Karger–Ruhl/Mercury active load balancer with block pointers (§6). The
// same cluster runs the traditional and traditional-file baselines by
// swapping the placement strategy and disabling balancing, as the paper's
// prototype does (§7).
package simdht

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/btree"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/sim"
)

// Config holds the cluster parameters; zero values take the paper's
// defaults (§8.1).
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Replicas is r, the copies per block (default 3).
	Replicas int
	// Balance enables the active load balancer (off for the traditional
	// baselines unless testing Traditional+Merc).
	Balance bool
	// BalanceThreshold is t: a probe relocates the prober when the
	// probed node's load exceeds t times its own (default 4).
	BalanceThreshold float64
	// ProbeInterval is the per-node load-balance probe period
	// (default 10 min).
	ProbeInterval time.Duration
	// UsePointers defers data movement on voluntary moves (default on;
	// disable only for the pointer ablation). Set DisablePointers to turn
	// off.
	DisablePointers bool
	// PointerStabilization is how long a pointer is held before the
	// pointing node fetches the block (default 1 h).
	PointerStabilization time.Duration
	// MigrationBPS is the per-node bandwidth limit on data migration and
	// replica regeneration (default 750 kbps).
	MigrationBPS int64
	// UserWriteBPS is each user's write bandwidth (default 1500 kbps).
	UserWriteBPS int64
	// RemoveDelay postpones block removal (default 30 s, §3).
	RemoveDelay time.Duration
	// FetchRetry is the wait before retrying a regeneration fetch that
	// found no live source (default 5 min).
	FetchRetry time.Duration
	// Seed drives node ID assignment and probe randomness.
	Seed uint64
	// Metrics is the cluster's registry; nil creates a fresh one. The
	// simulator reports through the same obs counters as the live node so
	// experiment output and live scrapes share a vocabulary.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one span per completed block transfer
	// (regeneration, rebalance, and pointer-stabilization fetches) stamped
	// with simulated time, so a run's migration timeline exports as a
	// Perfetto-loadable Chrome trace (d2sim -trace).
	Trace *tracing.Sink
}

func (c *Config) applyDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.BalanceThreshold == 0 {
		c.BalanceThreshold = 4
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 10 * time.Minute
	}
	if c.PointerStabilization == 0 {
		c.PointerStabilization = time.Hour
	}
	if c.MigrationBPS == 0 {
		c.MigrationBPS = 750_000
	}
	if c.UserWriteBPS == 0 {
		c.UserWriteBPS = 1_500_000
	}
	if c.RemoveDelay == 0 {
		c.RemoveDelay = 30 * time.Second
	}
	if c.FetchRetry == 0 {
		c.FetchRetry = 5 * time.Minute
	}
}

// Node is one simulated DHT node.
type Node struct {
	// Idx is the node's stable index (its identity across ID changes).
	Idx int
	// ID is the node's current position on the ring.
	ID keys.Key
	// Up reports whether the node is alive.
	Up bool
	// HeldBytes is the actual stored volume (replicas the node holds).
	HeldBytes int64
	// RespBytes is the primary responsibility: bytes of blocks whose key
	// falls in the node's (pred, id] range, whether stored or pointed-to.
	// The balancer compares these (§6 uses primary load).
	RespBytes int64

	held map[int32]struct{}
	// ptrs and fetch index the node's block pointers and in-flight fetches
	// by block handle, mirroring the per-block pointer/fetching lists so
	// membership tests are O(1) on the resync hot path.
	ptrs  map[int32]struct{}
	fetch map[int32]struct{}
	link  *sim.Link
}

// member pairs a ring position with the node occupying it.
type member struct {
	id   keys.Key
	node int
}

// ptrRef records that node holds a pointer for a block, targeting the
// node that actually stores it.
type ptrRef struct {
	node   int
	target int
}

type blockMeta struct {
	key      keys.Key
	size     int32
	holders  []int32
	pointers []ptrRef
	fetching []int32
	live     bool
}

// Cluster is the simulated DHT.
type Cluster struct {
	Eng *sim.Engine
	cfg Config
	rng *rand.Rand

	nodes   []*Node
	members []member // sorted by id; only up nodes
	// rankByNode maps node index → current rank in members (-1 when the
	// node is not a member), maintained on every membership change so a
	// member's own rank never needs a binary search.
	rankByNode []int

	global btree.Tree[int32]
	blocks []blockMeta
	free   []int32
	byKey  map[keys.Key]int32

	// Scratch buffers reused across events to keep the per-event resync
	// path allocation-free. Values returned by replicaNodes alias
	// repScratch and are only valid until the next replicaNodes call.
	repScratch   []int
	pendScratch  []int32
	extraScratch []int32
	dropScratch  []int32

	userLinks map[int32]*sim.Link

	reg *obs.Registry
	// migratedBytes counts all regeneration + rebalance transfer bytes
	// (Table 4's L); writtenBytes counts user-written bytes (Table 4's W);
	// moves counts voluntary ID changes performed by the balancer.
	migratedBytes *obs.Counter
	writtenBytes  *obs.Counter
	moves         *obs.Counter
}

// MigratedBytes returns the total regeneration + rebalance transfer bytes
// (Table 4's L).
func (c *Cluster) MigratedBytes() int64 { return int64(c.migratedBytes.Value()) }

// WrittenBytes returns the total user-written bytes (Table 4's W).
func (c *Cluster) WrittenBytes() int64 { return int64(c.writtenBytes.Value()) }

// Moves returns the voluntary ID changes performed by the balancer.
func (c *Cluster) Moves() int64 { return int64(c.moves.Value()) }

// Metrics returns the cluster's registry.
func (c *Cluster) Metrics() *obs.Registry { return c.reg }

// New creates a cluster of cfg.Nodes up nodes with uniformly random IDs.
func New(eng *sim.Engine, cfg Config) *Cluster {
	cfg.applyDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	c := &Cluster{
		Eng:           eng,
		cfg:           cfg,
		rng:           rand.New(rand.NewPCG(cfg.Seed, 0x53494d44)), // "SIMD"
		byKey:         make(map[keys.Key]int32),
		userLinks:     make(map[int32]*sim.Link),
		reg:           reg,
		migratedBytes: reg.Counter("d2_sim_migrated_bytes_total"),
		writtenBytes:  reg.Counter("d2_sim_written_bytes_total"),
		moves:         reg.Counter("d2_sim_balance_moves_total"),
	}
	c.rankByNode = make([]int, cfg.Nodes)
	for i := range c.rankByNode {
		c.rankByNode[i] = -1
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Idx:   i,
			Up:    true,
			held:  make(map[int32]struct{}),
			ptrs:  make(map[int32]struct{}),
			fetch: make(map[int32]struct{}),
			link:  sim.NewLink(eng, cfg.MigrationBPS),
		}
		for {
			n.ID = keys.Random(c.rng)
			if _, taken := c.rankOf(n.ID); !taken {
				break
			}
			// Collision in a 512-bit space: effectively unreachable, but
			// IDs must be unique.
		}
		c.nodes = append(c.nodes, n)
		c.insertMember(n)
	}
	if cfg.Balance {
		c.startBalancers()
	}
	return c
}

// Config returns the cluster configuration (with defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the cluster's nodes, indexed by stable node index.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NumBlocks returns the number of live blocks.
func (c *Cluster) NumBlocks() int { return c.global.Len() }

// rankOf returns the sorted position of id among members and whether a
// member with exactly that id exists. For a node's own current position
// use memberRank, which is O(1).
func (c *Cluster) rankOf(id keys.Key) (int, bool) {
	i := sort.Search(len(c.members), func(i int) bool {
		return !c.members[i].id.Less(id)
	})
	if i < len(c.members) && c.members[i].id.Equal(id) {
		return i, true
	}
	return i, false
}

// memberRank returns the node's current rank in the member list, or -1
// when the node is not a member.
func (c *Cluster) memberRank(n *Node) int { return c.rankByNode[n.Idx] }

// succRank returns the rank of the member owning key k.
func (c *Cluster) succRank(k keys.Key) int {
	i, _ := c.rankOf(k)
	if i == len(c.members) {
		return 0
	}
	return i
}

// replicaNodes returns the node indices of the r members succeeding key k.
// The returned slice aliases a scratch buffer valid only until the next
// replicaNodes call; callers that nest resync operations must copy it.
func (c *Cluster) replicaNodes(k keys.Key) []int {
	l := len(c.members)
	if l == 0 {
		return nil
	}
	r := c.cfg.Replicas
	if r > l {
		r = l
	}
	out := c.repScratch[:0]
	start := c.succRank(k)
	for i := 0; i < r; i++ {
		out = append(out, c.members[(start+i)%l].node)
	}
	c.repScratch = out
	return out
}

// ownerNode returns the node index primarily responsible for key k, or -1
// if the ring is empty.
func (c *Cluster) ownerNode(k keys.Key) int {
	if len(c.members) == 0 {
		return -1
	}
	return c.members[c.succRank(k)].node
}

// rangeOf returns the primary range (pred, id] of the member at rank i.
func (c *Cluster) rangeOf(i int) (lo, hi keys.Key) {
	l := len(c.members)
	return c.members[(i-1+l)%l].id, c.members[i].id
}

// insertMember adds the node to the sorted member list (no resync).
func (c *Cluster) insertMember(n *Node) {
	i, exists := c.rankOf(n.ID)
	if exists {
		panic(fmt.Sprintf("simdht: duplicate member ID %s", n.ID.Short()))
	}
	c.members = append(c.members, member{})
	copy(c.members[i+1:], c.members[i:])
	c.members[i] = member{id: n.ID, node: n.Idx}
	for j := i; j < len(c.members); j++ {
		c.rankByNode[c.members[j].node] = j
	}
}

// deleteMember removes the node from the member list (no resync).
func (c *Cluster) deleteMember(n *Node) {
	i := c.memberRank(n)
	if i < 0 || c.members[i].node != n.Idx || !c.members[i].id.Equal(n.ID) {
		panic(fmt.Sprintf("simdht: removing absent member %s", n.ID.Short()))
	}
	c.members = append(c.members[:i], c.members[i+1:]...)
	c.rankByNode[n.Idx] = -1
	for j := i; j < len(c.members); j++ {
		c.rankByNode[c.members[j].node] = j
	}
}

// affectedArc returns the key arc whose replica groups changed after a
// membership change at position x: (r-th predecessor of x, x]. Call it
// after the mutation. When the ring is too small, the whole ring is
// affected (lo == hi).
func (c *Cluster) affectedArc(x keys.Key) (lo, hi keys.Key) {
	l := len(c.members)
	if l == 0 || l <= c.cfg.Replicas {
		return x, x
	}
	rank, exists := c.rankOf(x)
	if exists {
		// x joined: walk back r members from it.
		return c.members[(rank-c.cfg.Replicas+l)%l].id, x
	}
	// x left: its keys now belong to its successor; groups changed for
	// the same arc ending at x.
	succ := c.succRank(x)
	return c.members[(succ-c.cfg.Replicas+l)%l].id, x
}

// recomputeResp recalculates a node's primary responsibility bytes by
// scanning its range.
func (c *Cluster) recomputeResp(n *Node) {
	n.RespBytes = 0
	if !n.Up {
		return
	}
	rank := c.memberRank(n)
	if rank < 0 {
		return
	}
	if len(c.members) == 1 {
		c.global.AscendRange(keys.Zero, keys.MaxKey, func(_ keys.Key, h int32) bool {
			n.RespBytes += int64(c.blocks[h].size)
			return true
		})
		return
	}
	lo, hi := c.rangeOf(rank)
	c.global.AscendArc(lo, hi, func(_ keys.Key, h int32) bool {
		n.RespBytes += int64(c.blocks[h].size)
		return true
	})
}

// NodeFail takes a node down: it leaves the ring (keeping its disk) and
// its ranges' replica groups regenerate on the survivors.
func (c *Cluster) NodeFail(idx int) {
	n := c.nodes[idx]
	if !n.Up {
		return
	}
	n.Up = false
	c.deleteMember(n)
	n.RespBytes = 0
	if len(c.members) == 0 {
		return
	}
	lo, hi := c.affectedArc(n.ID)
	c.resyncArc(lo, hi, false)
	c.recomputeResp(c.nodes[c.ownerNode(n.ID)])
}

// NodeRecover brings a node back up at its previous ID with its stored
// blocks intact.
func (c *Cluster) NodeRecover(idx int) {
	n := c.nodes[idx]
	if n.Up {
		return
	}
	n.Up = true
	for {
		if _, taken := c.rankOf(n.ID); !taken {
			break
		}
		// Another node moved onto this exact ID while we were down
		// (effectively impossible in a 512-bit space).
		n.ID = keys.Random(c.rng)
	}
	c.insertMember(n)
	lo, hi := c.affectedArc(n.ID)
	c.resyncArc(lo, hi, false)
	c.recomputeResp(n)
	if rank := c.memberRank(n); rank >= 0 {
		l := len(c.members)
		c.recomputeResp(c.nodes[c.members[(rank+1)%l].node])
	}
	// Blocks the node holds that no longer belong to it (groups moved on
	// while it was down) are dropped as their arcs resync; sweep the ones
	// outside the resynced arc now.
	c.sweepStale(n)
}

// sweepStale drops the node's held replicas that are no longer in their
// block's replica group, provided the group is fully stocked.
func (c *Cluster) sweepStale(n *Node) {
	drop := c.dropScratch[:0]
	for h := range n.held {
		b := &c.blocks[h]
		if !b.live {
			drop = append(drop, h)
			continue
		}
		if c.nodeInGroup(n.Idx, b.key) {
			continue
		}
		if c.groupFullyStocked(b, h) {
			drop = append(drop, h)
		}
	}
	c.dropScratch = drop
	for _, h := range drop {
		c.dropReplica(n, h)
	}
}

// nodeInGroup reports whether idx is one of the r successors of key k,
// walking the member ring directly so no replica slice is built.
func (c *Cluster) nodeInGroup(idx int, k keys.Key) bool {
	l := len(c.members)
	if l == 0 {
		return false
	}
	r := c.cfg.Replicas
	if r > l {
		r = l
	}
	start := c.succRank(k)
	for i := 0; i < r; i++ {
		if c.members[(start+i)%l].node == idx {
			return true
		}
	}
	return false
}

// groupFullyStocked reports whether every desired replica of the block is
// an actual stored copy.
func (c *Cluster) groupFullyStocked(b *blockMeta, h int32) bool {
	desired := c.replicaNodes(b.key)
	for _, d := range desired {
		if !c.holds(d, h) {
			return false
		}
	}
	return len(desired) > 0
}

// holds reports whether node idx stores block h (O(1) via the node's held
// index, which addReplica/dropReplica keep in sync with b.holders).
func (c *Cluster) holds(idx int, h int32) bool {
	_, ok := c.nodes[idx].held[h]
	return ok
}

// hasPointer reports whether node idx holds a pointer for block h.
func (c *Cluster) hasPointer(idx int, h int32) bool {
	_, ok := c.nodes[idx].ptrs[h]
	return ok
}

// isFetching reports whether node idx has an in-flight fetch of block h.
func (c *Cluster) isFetching(idx int, h int32) bool {
	_, ok := c.nodes[idx].fetch[h]
	return ok
}
