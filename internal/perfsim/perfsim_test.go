package perfsim

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/netmodel"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/synth"
	"github.com/defragdht/d2/internal/trace"
)

func k(v uint64) keys.Key {
	var key keys.Key
	for j := 0; j < 8; j++ {
		key[keys.Size-1-j] = byte(v >> (8 * j))
	}
	return key
}

func TestRouterReachesOwner(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ids := randomRing(200, rng)
	r := newRouter(ids, rng)
	for trial := 0; trial < 200; trial++ {
		start := rng.IntN(200)
		key := keys.Random(rng)
		path := r.lookup(start, key)
		owner := r.ownerRank(key)
		if start == owner {
			if len(path) != 0 {
				t.Fatalf("lookup from owner took %d hops", len(path))
			}
			continue
		}
		if len(path) == 0 || path[len(path)-1] != owner {
			t.Fatalf("lookup did not reach owner: path=%v owner=%d", path, owner)
		}
	}
}

func TestRouterHopsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	meanHops := func(n int) float64 {
		ids := randomRing(n, rng)
		r := newRouter(ids, rng)
		total := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			total += len(r.lookup(rng.IntN(n), keys.Random(rng)))
		}
		return float64(total) / trials
	}
	h200 := meanHops(200)
	h1000 := meanHops(1000)
	if h1000 > 4*h200 {
		t.Errorf("hops grew from %.1f (200) to %.1f (1000): not logarithmic-ish", h200, h1000)
	}
	if h1000 > 25 {
		t.Errorf("mean hops at 1000 nodes = %.1f, want O(log n)", h1000)
	}
	if h200 < 1 {
		t.Errorf("mean hops at 200 nodes = %.1f, suspiciously low", h200)
	}
}

func TestBalancedRingEqualizesBytes(t *testing.T) {
	// 1000 blocks of 8 KB in a tight arc, 10 nodes: each node's range
	// should hold ~100 blocks.
	var blocks []keys.Key
	var sizes []int64
	cur := k(1 << 40)
	for i := 0; i < 1000; i++ {
		cur = cur.Add(k(1000))
		blocks = append(blocks, cur)
		sizes = append(sizes, trace.BlockSize)
	}
	ids := balancedRing(blocks, sizes, 10)
	if len(ids) != 10 {
		t.Fatalf("got %d ids", len(ids))
	}
	r := newRouter(ids, rand.New(rand.NewPCG(5, 6)))
	counts := make([]int, 10)
	for _, b := range blocks {
		counts[r.ownerRank(b)]++
	}
	for i, c := range counts {
		if c < 80 || c > 120 {
			t.Errorf("node %d owns %d blocks, want ~100", i, c)
		}
	}
}

func TestBalancedRingUniqueSorted(t *testing.T) {
	// Boundaries landing on one giant file must still give unique IDs.
	blocks := []keys.Key{k(100), k(200)}
	sizes := []int64{1 << 30, 1}
	ids := balancedRing(blocks, sizes, 5)
	if len(ids) != 5 {
		t.Fatalf("got %d ids", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatalf("ids not strictly increasing at %d", i)
		}
	}
}

func perfTrace() *trace.Trace {
	return synth.Harvard(synth.HarvardConfig{
		Seed:        31,
		Users:       20,
		Days:        2,
		TargetBytes: 96 << 20,
	})
}

func perfConfig(nodes int, parallel bool) Config {
	return Config{
		Nodes:      nodes,
		Parallel:   parallel,
		NumWindows: 4,
		Seed:       7,
	}
}

func runBoth(t *testing.T, nodes int, parallel bool) (d2, trad *Result) {
	t.Helper()
	tr := perfTrace()
	topo := netmodel.NewTopology(nodes, 77)
	vol := keys.NewVolumeID([]byte("pk"), "perf")
	d2 = Run(perfConfig(nodes, parallel), System{
		Name: "d2", Keyer: placement.ForStrategy(placement.D2, vol), Balanced: true,
	}, tr, topo)
	trad = Run(perfConfig(nodes, parallel), System{
		Name: "traditional", Keyer: placement.ForStrategy(placement.HashedBlock, vol),
	}, tr, topo)
	return d2, trad
}

func TestD2BeatsTraditionalOnLookups(t *testing.T) {
	d2, trad := runBoth(t, 100, false)
	if d2.Lookups == 0 || trad.Lookups == 0 {
		t.Fatalf("no lookups recorded: d2=%d trad=%d", d2.Lookups, trad.Lookups)
	}
	if d2.MsgsPerNode() >= trad.MsgsPerNode() {
		t.Errorf("D2 lookup msgs/node %.1f not below traditional %.1f",
			d2.MsgsPerNode(), trad.MsgsPerNode())
	}
	if d2.MeanUserMissRate() >= trad.MeanUserMissRate() {
		t.Errorf("D2 miss rate %.2f not below traditional %.2f",
			d2.MeanUserMissRate(), trad.MeanUserMissRate())
	}
}

func TestD2SequentialSpeedup(t *testing.T) {
	d2, trad := runBoth(t, 100, false)
	if len(d2.Groups) == 0 {
		t.Fatal("no groups measured")
	}
	// Geometric-mean speedup over common groups must exceed 1.
	var logSum float64
	n := 0
	for gi, dLat := range d2.Groups {
		tLat, ok := trad.Groups[gi]
		if !ok || dLat <= 0 || tLat <= 0 {
			continue
		}
		logSum += logRatio(float64(tLat), float64(dLat))
		n++
	}
	if n < 10 {
		t.Fatalf("only %d common groups", n)
	}
	speedup := expApprox(logSum / float64(n))
	if speedup <= 1.0 {
		t.Errorf("sequential geomean speedup = %.2f, want > 1", speedup)
	}
	t.Logf("seq speedup over traditional at 100 nodes: %.2f (%d groups)", speedup, n)
}

func TestGroupsMatchAcrossSystems(t *testing.T) {
	d2, trad := runBoth(t, 50, true)
	common := 0
	for gi := range d2.Groups {
		if _, ok := trad.Groups[gi]; ok {
			common++
			if d2.GroupUser[gi] != trad.GroupUser[gi] {
				t.Fatal("group user mismatch across systems")
			}
		}
	}
	if common == 0 {
		t.Fatal("no common groups between systems")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := perfTrace()
	topo := netmodel.NewTopology(50, 77)
	vol := keys.NewVolumeID([]byte("pk"), "perf")
	sys := System{Name: "d2", Keyer: placement.ForStrategy(placement.D2, vol), Balanced: true}
	a := Run(perfConfig(50, false), sys, tr, topo)
	b := Run(perfConfig(50, false), sys, tr, topo)
	if a.LookupMsgs != b.LookupMsgs || len(a.Groups) != len(b.Groups) {
		t.Fatal("perf runs not deterministic")
	}
	for gi, lat := range a.Groups {
		if b.Groups[gi] != lat {
			t.Fatal("group latencies differ between identical runs")
		}
	}
}

func logRatio(a, b float64) float64 { return math.Log(a / b) }

func expApprox(x float64) float64 { return math.Exp(x) }
