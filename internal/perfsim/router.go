// Package perfsim models the paper's Emulab performance experiments
// (§9): clients replay file-system access groups against a DHT with
// Mercury-style small-world routing, per-node access-link bandwidth, TCP
// slow-start behaviour, and client lookup caches, measuring lookup traffic
// (Fig. 9), end-to-end speedups (Figs. 10–12), cache miss rates (Fig. 13),
// and access-group latency scatter (Figs. 14–15).
package perfsim

import (
	"math"
	"math/rand/v2"
	"sort"

	"github.com/defragdht/d2/internal/keys"
)

// router answers lookups over a static ring snapshot with hop counting.
// Each node keeps its successor plus ~log2(n) long links chosen by
// Mercury's harmonic rank-distance sampling, which yields O(log n)-hop
// greedy routes even under non-uniform key distributions (§6).
type router struct {
	ids   []keys.Key // sorted node IDs
	links [][]int    // per rank: outgoing link ranks (successor first)
}

// newRouter builds routing tables over the sorted IDs.
func newRouter(ids []keys.Key, rng *rand.Rand) *router {
	n := len(ids)
	r := &router{ids: ids, links: make([][]int, n)}
	if n == 0 {
		return r
	}
	k := int(math.Ceil(math.Log2(float64(n + 1))))
	logN := math.Log(float64(n))
	for i := 0; i < n; i++ {
		links := []int{(i + 1) % n} // successor
		for j := 0; j < k; j++ {
			// Harmonic sampling: P(distance = d) ∝ 1/d over [1, n).
			// Inverse-CDF: d = exp(U · ln n).
			d := int(math.Exp(rng.Float64() * logN))
			if d < 1 {
				d = 1
			}
			if d >= n {
				d = n - 1
			}
			links = append(links, (i+d)%n)
		}
		r.links[i] = links
	}
	return r
}

// ownerRank returns the rank of the node owning key k.
func (r *router) ownerRank(k keys.Key) int {
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(k) })
	if i == len(r.ids) {
		return 0
	}
	return i
}

// rangeOf returns the (pred, id] range of the node at the given rank.
func (r *router) rangeOf(rank int) (lo, hi keys.Key) {
	n := len(r.ids)
	return r.ids[(rank-1+n)%n], r.ids[rank]
}

// rankDist returns the clockwise rank distance from a to b.
func (r *router) rankDist(a, b int) int {
	n := len(r.ids)
	return ((b-a)%n + n) % n
}

// lookup routes greedily from the start rank to the owner of key k,
// returning the ranks visited after start (one per message hop).
func (r *router) lookup(start int, k keys.Key) []int {
	owner := r.ownerRank(k)
	var path []int
	cur := start
	for cur != owner {
		remaining := r.rankDist(cur, owner)
		best := -1
		bestAdvance := 0
		for _, l := range r.links[cur] {
			adv := r.rankDist(cur, l)
			if adv <= remaining && adv > bestAdvance {
				best = l
				bestAdvance = adv
			}
		}
		if best == -1 {
			best = r.links[cur][0] // successor always advances by one
		}
		cur = best
		path = append(path, cur)
		if len(path) > len(r.ids) {
			// Defensive: greedy clockwise routing cannot loop, but never
			// spin if an invariant breaks.
			break
		}
	}
	return path
}

// balancedRing returns n node IDs that partition the given sorted block
// keys into equal-byte ranges: the steady state D2's balancer converges to
// (§6). sizes[i] is the byte size of blocks[i].
func balancedRing(blocks []keys.Key, sizes []int64, n int) []keys.Key {
	if len(blocks) == 0 || n == 0 {
		return nil
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	ids := make([]keys.Key, 0, n)
	var acc int64
	next := 1
	for i, k := range blocks {
		acc += sizes[i]
		for next <= n && acc >= total*int64(next)/int64(n) {
			id := k
			// Guarantee uniqueness when several boundaries land on one
			// block (gigantic files).
			for len(ids) > 0 && !ids[len(ids)-1].Less(id) {
				id = id.Next()
			}
			ids = append(ids, id)
			next++
		}
	}
	for len(ids) < n {
		ids = append(ids, ids[len(ids)-1].Next())
	}
	return ids
}

// randomRing returns n uniformly random node IDs: consistent hashing.
func randomRing(n int, rng *rand.Rand) []keys.Key {
	ids := make([]keys.Key, n)
	for i := range ids {
		ids[i] = keys.Random(rng)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}
