package perfsim

import (
	"math/rand/v2"
	"sort"
	"time"

	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/lookupcache"
	"github.com/defragdht/d2/internal/netmodel"
	"github.com/defragdht/d2/internal/placement"
	"github.com/defragdht/d2/internal/sim"
	"github.com/defragdht/d2/internal/trace"
)

// Config parameterizes one performance run (§9.1 defaults).
type Config struct {
	// Nodes is the DHT size (200, 500, or 1000 in the paper).
	Nodes int
	// Replicas is r (4 in the performance experiments).
	Replicas int
	// AccessBPS is each node's access-link capacity (1500 or 384 kbps).
	AccessBPS int64
	// Concurrency caps a client's simultaneous transfers (15, §9.1).
	Concurrency int
	// CacheTTL is the lookup-cache entry lifetime (75 min, §5).
	CacheTTL time.Duration
	// Think is the access-group think-time threshold (1 s, §9.1).
	Think time.Duration
	// WindowLen is the measured window length (15 min, §9.1).
	WindowLen time.Duration
	// NumWindows is how many windows are measured (8, §9.1).
	NumWindows int
	// Parallel selects the para extreme; false is seq (§9.1).
	Parallel bool
	// Seed drives ring, gateway, and replica-choice randomness.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.AccessBPS == 0 {
		c.AccessBPS = 1_500_000
	}
	if c.Concurrency == 0 {
		c.Concurrency = 15
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = lookupcache.DefaultTTL
	}
	if c.Think == 0 {
		c.Think = time.Second
	}
	if c.WindowLen == 0 {
		c.WindowLen = 15 * time.Minute
	}
	if c.NumWindows == 0 {
		c.NumWindows = 8
	}
}

// System describes one of the compared designs.
type System struct {
	// Name labels output rows.
	Name string
	// Keyer maps blocks to keys (the strategy under test).
	Keyer placement.Keyer
	// Balanced lays node IDs out as equal-byte partitions of the block
	// keys — the converged state of D2's active balancer. Unbalanced
	// systems use uniformly random IDs (consistent hashing).
	Balanced bool
}

// Result aggregates one run's measurements.
type Result struct {
	System string
	Nodes  int
	// Lookups and LookupMsgs count DHT lookups and their routing
	// messages during measured windows (Fig. 9 reports msgs per node).
	Lookups    int64
	LookupMsgs int64
	// CacheHits/CacheMisses are totals over measured windows.
	CacheHits   uint64
	CacheMisses uint64
	// PerUserMiss maps user → [hits, misses] (Fig. 13 averages per-user
	// miss rates).
	PerUserMiss map[int32][2]uint64
	// Groups maps access-group index (stable across systems) to the
	// group's completion latency.
	Groups map[int]time.Duration
	// GroupUser maps group index to its user, for per-user speedups.
	GroupUser map[int]int32
}

// MsgsPerNode returns lookup messages per node (Fig. 9's y-axis).
func (r *Result) MsgsPerNode() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return float64(r.LookupMsgs) / float64(r.Nodes)
}

// MeanUserMissRate returns the mean per-user cache miss rate (Fig. 13).
func (r *Result) MeanUserMissRate() float64 {
	var sum float64
	var n int
	for _, hm := range r.PerUserMiss {
		total := hm[0] + hm[1]
		if total == 0 {
			continue
		}
		sum += float64(hm[1]) / float64(total)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// runner is the per-run state.
type runner struct {
	cfg     Config
	sys     System
	tr      *trace.Trace
	topo    *netmodel.Topology
	eng     *sim.Engine
	rng     *rand.Rand
	rngWin  *rand.Rand
	rngGate *rand.Rand
	rngRep  *rand.Rand
	router  *router
	tcp     *netmodel.TCP
	links   []*sim.Link // per node rank: upload link

	gateway map[int32]int                     // user → node rank
	caches  map[int32]*lookupcache.Cache[int] // user → lookup cache
	sizes   map[string]int64                  // live file sizes
	res     *Result
}

// Run executes one performance run of the given system over the trace.
func Run(cfg Config, sys System, tr *trace.Trace, topo *netmodel.Topology) *Result {
	cfg.applyDefaults()
	r := &runner{
		cfg:  cfg,
		sys:  sys,
		tr:   tr,
		topo: topo,
		eng:  &sim.Engine{},
		// Purpose-split RNGs: windows and gateways must be identical
		// across compared systems regardless of how many draws ring
		// construction consumes.
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x52494e47)), // ring
		rngWin:  rand.New(rand.NewPCG(cfg.Seed, 0x57494e44)), // windows
		rngGate: rand.New(rand.NewPCG(cfg.Seed, 0x47415445)), // gateways
		rngRep:  rand.New(rand.NewPCG(cfg.Seed, 0x5245504c)), // replicas
		tcp:     netmodel.NewTCP(),
		gateway: make(map[int32]int),
		caches:  make(map[int32]*lookupcache.Cache[int]),
		sizes:   make(map[string]int64),
		res: &Result{
			System:      sys.Name,
			Nodes:       cfg.Nodes,
			PerUserMiss: make(map[int32][2]uint64),
			Groups:      make(map[int]time.Duration),
			GroupUser:   make(map[int]int32),
		},
	}
	r.buildRing()
	r.links = make([]*sim.Link, cfg.Nodes)
	for i := range r.links {
		r.links[i] = sim.NewLink(r.eng, cfg.AccessBPS)
	}
	for u := int32(0); u < int32(tr.Users); u++ {
		r.gateway[u] = r.rngGate.IntN(cfg.Nodes)
		r.caches[u] = lookupcache.New[int](cfg.CacheTTL)
	}
	r.replay()
	return r.res
}

// buildRing lays out node IDs: byte-balanced over the initial file system
// for Balanced systems, random otherwise.
func (r *runner) buildRing() {
	var ids []keys.Key
	if r.sys.Balanced {
		type kb struct {
			k keys.Key
			s int64
		}
		var all []kb
		for _, f := range r.tr.Initial {
			all = append(all, kb{r.sys.Keyer.BlockKey(f.Path, 0), InodeBytes})
			for b := int64(1); b <= f.NumBlocks(); b++ {
				all = append(all, kb{r.sys.Keyer.BlockKey(f.Path, uint64(b)), blockBytes(f.Size, b)})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].k.Less(all[j].k) })
		ks := make([]keys.Key, len(all))
		ss := make([]int64, len(all))
		for i, x := range all {
			ks[i] = x.k
			ss[i] = x.s
		}
		ids = balancedRing(ks, ss, r.cfg.Nodes)
	} else {
		ids = randomRing(r.cfg.Nodes, r.rng)
	}
	r.router = newRouter(ids, r.rng)
}

// InodeBytes matches the simulator's modeled metadata block size.
const InodeBytes = 512

func blockBytes(fileSize, i int64) int64 {
	rem := fileSize - (i-1)*trace.BlockSize
	if rem >= trace.BlockSize {
		return trace.BlockSize
	}
	if rem < 0 {
		return 0
	}
	return rem
}

// windowStarts picks the measured windows: evenly spread over the trace's
// working days, always inside 9 AM–6 PM (§9.1).
func (r *runner) windowStarts() []time.Duration {
	day := 24 * time.Hour
	days := int(r.tr.Duration / day)
	if days == 0 {
		days = 1
	}
	var out []time.Duration
	for i := 0; i < r.cfg.NumWindows; i++ {
		d := i % days
		hour := 9*time.Hour + time.Duration(r.rngWin.Float64()*float64(9*time.Hour-r.cfg.WindowLen))
		out = append(out, time.Duration(d)*day+hour)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// replay walks the trace: events outside measured windows only maintain
// the file catalog and warm the lookup caches; access groups starting
// inside a window are fully simulated.
func (r *runner) replay() {
	groups := trace.AccessGroups(r.tr, r.cfg.Think)
	groupOf := make(map[int]int, len(r.tr.Events))
	for gi := range groups {
		for _, ei := range groups[gi].Events {
			groupOf[ei] = gi
		}
	}
	windows := r.windowStarts()
	inWindow := func(at time.Duration) bool {
		i := sort.Search(len(windows), func(i int) bool { return windows[i] > at })
		return i > 0 && at < windows[i-1]+r.cfg.WindowLen
	}

	measured := make(map[int]bool)
	userBusyUntil := make(map[int32]time.Duration)

	for ei := range r.tr.Events {
		e := &r.tr.Events[ei]
		switch e.Op {
		case trace.OpCreate:
			r.sizes[e.Path] = e.Length
		case trace.OpWrite:
			if end := e.Offset + e.Length; end > r.sizes[e.Path] {
				r.sizes[e.Path] = end
			}
		case trace.OpDelete:
			delete(r.sizes, e.Path)
		case trace.OpRead:
			if _, ok := r.sizes[e.Path]; !ok {
				continue
			}
			gi := groupOf[ei]
			if measured[gi] {
				continue // scheduled with its group
			}
			if inWindow(groups[gi].Start) {
				measured[gi] = true
				r.scheduleGroup(gi, &groups[gi], userBusyUntil)
			} else {
				r.warmRead(e)
			}
		}
	}
	r.eng.Run(r.tr.Duration + time.Hour)
}

// warmRead updates the user's lookup cache as the paper's warm-up
// simulation does, without timing anything.
func (r *runner) warmRead(e *trace.Event) {
	r.forEachBlock(e, func(k keys.Key) {
		cache := r.caches[e.User]
		if _, ok := cache.Lookup(k, e.At); !ok {
			owner := r.router.ownerRank(k)
			lo, hi := r.router.rangeOf(owner)
			cache.Insert(lo, hi, owner, e.At)
		}
	})
}

// forEachBlock enumerates the block keys a read touches (inode + data).
func (r *runner) forEachBlock(e *trace.Event, fn func(keys.Key)) {
	fn(r.sys.Keyer.BlockKey(e.Path, 0))
	first, count := e.BlockSpan()
	size := r.sizes[e.Path]
	for b := first; b < first+count; b++ {
		if (b-1)*trace.BlockSize >= size {
			break
		}
		fn(r.sys.Keyer.BlockKey(e.Path, uint64(b)))
	}
}

// blockFetch is one block retrieval within a measured group.
type blockFetch struct {
	key  keys.Key
	size int64
}

// scheduleGroup simulates one access group: sequentially in seq mode, with
// bounded parallelism in para mode. Latency is measured from the group's
// (possibly delayed) start to the last block's arrival.
func (r *runner) scheduleGroup(gi int, g *trace.Task, busyUntil map[int32]time.Duration) {
	// Collect the group's unique blocks (the 30 s buffer cache collapses
	// repeat reads within a group, §3).
	var fetches []blockFetch
	seen := make(map[keys.Key]bool)
	for _, ei := range g.Events {
		e := &r.tr.Events[ei]
		if e.Op != trace.OpRead {
			continue
		}
		size := r.sizes[e.Path]
		r.forEachBlock(e, func(k keys.Key) {
			if seen[k] {
				return
			}
			seen[k] = true
			n := int64(trace.BlockSize)
			if k.Equal(r.sys.Keyer.BlockKey(e.Path, 0)) {
				n = InodeBytes
			} else if size < trace.BlockSize {
				n = size
			}
			fetches = append(fetches, blockFetch{key: k, size: n})
		})
	}
	if len(fetches) == 0 {
		return
	}
	start := g.Start
	if bu := busyUntil[g.User]; bu > start {
		start = bu
	}
	user := g.User
	gidx := gi
	done := func(end time.Duration) {
		r.res.Groups[gidx] = end - start
		r.res.GroupUser[gidx] = user
		busyUntil[user] = end
	}
	// Reserve the user's timeline pessimistically; done() sets the real
	// end when the last block lands.
	busyUntil[user] = start + r.cfg.WindowLen

	if r.cfg.Parallel {
		r.eng.At(start, func() { r.runParallel(user, fetches, done) })
	} else {
		r.eng.At(start, func() { r.runSequential(user, fetches, 0, done) })
	}
}

// runSequential fetches blocks one at a time.
func (r *runner) runSequential(user int32, fetches []blockFetch, i int, done func(time.Duration)) {
	if i == len(fetches) {
		done(r.eng.Now())
		return
	}
	r.fetchBlock(user, fetches[i], func() {
		r.runSequential(user, fetches, i+1, done)
	})
}

// runParallel issues all blocks with the client concurrency cap.
func (r *runner) runParallel(user int32, fetches []blockFetch, done func(time.Duration)) {
	next := 0
	inflight := 0
	remaining := len(fetches)
	var pump func()
	pump = func() {
		for inflight < r.cfg.Concurrency && next < len(fetches) {
			f := fetches[next]
			next++
			inflight++
			r.fetchBlock(user, f, func() {
				inflight--
				remaining--
				if remaining == 0 {
					done(r.eng.Now())
					return
				}
				pump()
			})
		}
	}
	pump()
}

// fetchBlock performs lookup (cached or routed) then the block transfer.
func (r *runner) fetchBlock(user int32, f blockFetch, done func()) {
	client := r.gateway[user]
	cache := r.caches[user]
	now := r.eng.Now()

	owner, hit := cache.Lookup(f.key, now)
	hm := r.res.PerUserMiss[user]
	var lookupDelay time.Duration
	if hit {
		hm[0]++
	} else {
		hm[1]++
		path := r.router.lookup(client, f.key)
		r.res.Lookups++
		r.res.LookupMsgs += int64(len(path))
		prev := client
		for _, hop := range path {
			lookupDelay += r.topo.OneWay(prev, hop)
			prev = hop
		}
		owner = r.router.ownerRank(f.key)
		lookupDelay += r.topo.OneWay(owner, client) // result returns directly
		lo, hi := r.router.rangeOf(owner)
		cache.Insert(lo, hi, owner, now)
	}
	r.res.PerUserMiss[user] = hm

	// Pick a random replica (§4.3: D2 selects replicas randomly) among
	// the r successors of the owner.
	rep := r.cfg.Replicas
	if rep > r.cfg.Nodes {
		rep = r.cfg.Nodes
	}
	server := (owner + r.rngRep.IntN(rep)) % r.cfg.Nodes

	r.eng.After(lookupDelay+r.topo.OneWay(client, server), func() {
		// Request arrived at the server: window rounds + upload queueing.
		arrive := r.eng.Now()
		rounds := r.tcp.TransferRounds(server, client, f.size, arrive)
		windowed := arrive + time.Duration(rounds)*r.topo.RTT(server, client)
		linkDone := r.links[server].Enqueue(f.size, nil)
		end := windowed
		if linkDone > end {
			end = linkDone
		}
		end += r.topo.OneWay(server, client)
		r.eng.At(end, done)
	})
}
