// Package trace defines the workload model shared by every experiment: a
// timestamped stream of file-system accesses by users, plus the paper's two
// segmentations of that stream — tasks (sequences split by an inter-arrival
// threshold, §8.1) and access groups (split by ≥ 1 s think times, §9.1).
package trace

import (
	"fmt"
	"sort"
	"time"
)

// BlockSize is D2's storage unit: all blocks are at most 8 KB (§3).
const BlockSize = 8 * 1024

// Op enumerates workload operations.
type Op uint8

// Workload operations. OpCreate writes a brand-new file, OpWrite modifies
// an existing one (new versions of the touched blocks), OpDelete removes a
// file, and OpRead fetches a byte range.
const (
	OpRead Op = iota + 1
	OpWrite
	OpCreate
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one access in a workload trace.
type Event struct {
	// At is the event time as an offset from the trace start.
	At time.Duration
	// User identifies the user (Harvard), application (HP), or client IP
	// (Web) issuing the access.
	User int32
	// Op is the operation.
	Op Op
	// Path names the file: a slash-separated path, a disk block region
	// name (HP), or a reversed-domain URL (Web).
	Path string
	// Offset and Length delimit the byte range touched. For OpCreate,
	// Offset is 0 and Length is the new file's size. For OpDelete both
	// are 0 (the whole file is removed).
	Offset int64
	Length int64
}

// BlockSpan returns the index of the first data block the event touches and
// the number of blocks, with data blocks numbered from 1 (block 0 is the
// file's inode/metadata block).
func (e *Event) BlockSpan() (first, count int64) {
	if e.Op == OpDelete || e.Length == 0 {
		return 1, 0
	}
	lo := e.Offset / BlockSize
	hi := (e.Offset + e.Length - 1) / BlockSize
	return lo + 1, hi - lo + 1
}

// File describes one file present in a file system snapshot.
type File struct {
	Path string
	Size int64
}

// NumBlocks returns the number of data blocks the file occupies.
func (f File) NumBlocks() int64 {
	if f.Size == 0 {
		return 0
	}
	return (f.Size + BlockSize - 1) / BlockSize
}

// Trace is a complete workload: an initial file system plus an event stream
// sorted by time.
type Trace struct {
	// Name labels the workload ("harvard", "hp", "web").
	Name string
	// Duration is the trace length.
	Duration time.Duration
	// Users is the number of distinct users issuing events.
	Users int
	// Initial lists the files existing at trace start.
	Initial []File
	// Events is the access stream, sorted by At.
	Events []Event
}

// Validate checks the structural invariants the experiments rely on.
func (t *Trace) Validate() error {
	if !sort.SliceIsSorted(t.Events, func(i, j int) bool {
		return t.Events[i].At < t.Events[j].At
	}) {
		return fmt.Errorf("trace %q: events not sorted by time", t.Name)
	}
	for i := range t.Events {
		e := &t.Events[i]
		if e.At < 0 || e.At > t.Duration {
			return fmt.Errorf("trace %q: event %d at %v outside [0, %v]", t.Name, i, e.At, t.Duration)
		}
		if int(e.User) < 0 || int(e.User) >= t.Users {
			return fmt.Errorf("trace %q: event %d has user %d, want [0, %d)", t.Name, i, e.User, t.Users)
		}
		if e.Op < OpRead || e.Op > OpDelete {
			return fmt.Errorf("trace %q: event %d has invalid op %d", t.Name, i, e.Op)
		}
		if e.Length < 0 || e.Offset < 0 {
			return fmt.Errorf("trace %q: event %d has negative range", t.Name, i)
		}
	}
	return nil
}

// TotalInitialBytes returns the number of bytes in the initial file system.
func (t *Trace) TotalInitialBytes() int64 {
	var total int64
	for _, f := range t.Initial {
		total += f.Size
	}
	return total
}

// Task is a maximal sequence of one user's events where consecutive events
// are separated by less than the inter-arrival threshold, capped at the
// maximum task duration (§8.1). Events holds indices into Trace.Events.
type Task struct {
	User   int32
	Start  time.Duration
	End    time.Duration
	Events []int
}

// Tasks segments the trace into per-user tasks using the given
// inter-arrival threshold and maximum task duration. A zero maxDur means
// no cap. The paper uses maxDur = 5 min.
func Tasks(t *Trace, inter, maxDur time.Duration) []Task {
	open := make(map[int32]*Task)
	var out []Task
	flush := func(u int32) {
		if task := open[u]; task != nil {
			out = append(out, *task)
			delete(open, u)
		}
	}
	for i := range t.Events {
		e := &t.Events[i]
		task := open[e.User]
		if task != nil {
			gap := e.At - t.Events[task.Events[len(task.Events)-1]].At
			tooLong := maxDur > 0 && e.At-task.Start > maxDur
			if gap >= inter || tooLong {
				flush(e.User)
				task = nil
			}
		}
		if task == nil {
			open[e.User] = &Task{User: e.User, Start: e.At, End: e.At, Events: []int{i}}
			continue
		}
		task.End = e.At
		task.Events = append(task.Events, i)
	}
	for u := range open {
		flush(u)
	}
	// Flushing map entries loses order; restore chronological order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].User < out[j].User
	})
	return out
}

// AccessGroups segments the trace into per-user access groups: runs of
// events separated by think times shorter than think (§9.1 uses 1 s).
// Access groups are Tasks with no duration cap.
func AccessGroups(t *Trace, think time.Duration) []Task {
	return Tasks(t, think, 0)
}

// BlockID compactly identifies one block of one file for set-membership
// accounting: the file's index in some catalog order, and the block number.
type BlockID struct {
	FileIdx  int32
	BlockNum int64
}

// Catalog tracks the set of live files while replaying a trace, assigning
// each distinct path a stable index.
type Catalog struct {
	idx   map[string]int32
	paths []string
	sizes []int64
	live  []bool
}

// NewCatalog builds a catalog seeded with the trace's initial files.
func NewCatalog(initial []File) *Catalog {
	c := &Catalog{idx: make(map[string]int32, len(initial))}
	for _, f := range initial {
		c.ensure(f.Path)
		i := c.idx[f.Path]
		c.sizes[i] = f.Size
		c.live[i] = true
	}
	return c
}

func (c *Catalog) ensure(path string) int32 {
	if i, ok := c.idx[path]; ok {
		return i
	}
	i := int32(len(c.paths))
	c.idx[path] = i
	c.paths = append(c.paths, path)
	c.sizes = append(c.sizes, 0)
	c.live = append(c.live, false)
	return i
}

// Index returns the stable index for path, creating one if needed.
func (c *Catalog) Index(path string) int32 { return c.ensure(path) }

// Lookup returns the index for path without creating one.
func (c *Catalog) Lookup(path string) (int32, bool) {
	i, ok := c.idx[path]
	return i, ok
}

// Path returns the path at index i.
func (c *Catalog) Path(i int32) string { return c.paths[i] }

// Size returns the current size of the file at index i (0 if deleted).
func (c *Catalog) Size(i int32) int64 {
	if !c.live[i] {
		return 0
	}
	return c.sizes[i]
}

// Live reports whether the file at index i currently exists.
func (c *Catalog) Live(i int32) bool { return c.live[i] }

// NumFiles returns the number of distinct paths seen so far.
func (c *Catalog) NumFiles() int { return len(c.paths) }

// TotalBytes returns the bytes of all live files.
func (c *Catalog) TotalBytes() int64 {
	var total int64
	for i, sz := range c.sizes {
		if c.live[i] {
			total += sz
		}
	}
	return total
}

// Apply replays one event against the catalog and returns the file index.
// Creates mark the file live with the new size; writes grow the file if the
// range extends past the end; deletes mark it dead.
func (c *Catalog) Apply(e *Event) int32 {
	i := c.ensure(e.Path)
	switch e.Op {
	case OpCreate:
		c.live[i] = true
		c.sizes[i] = e.Length
	case OpWrite:
		c.live[i] = true
		if end := e.Offset + e.Length; end > c.sizes[i] {
			c.sizes[i] = end
		}
	case OpDelete:
		c.live[i] = false
	}
	return i
}

// ChurnDay summarizes one day of writes and removals for Table 3.
type ChurnDay struct {
	// StartBytes is the total live bytes at the start of the day (T_i).
	StartBytes int64
	// WrittenBytes is the bytes written during the day (W_i).
	WrittenBytes int64
	// RemovedBytes is the bytes removed during the day (R_i).
	RemovedBytes int64
}

// WriteRatio returns W_i / T_i (0 when the system started empty).
func (d ChurnDay) WriteRatio() float64 {
	if d.StartBytes == 0 {
		return 0
	}
	return float64(d.WrittenBytes) / float64(d.StartBytes)
}

// RemoveRatio returns R_i / T_i.
func (d ChurnDay) RemoveRatio() float64 {
	if d.StartBytes == 0 {
		return 0
	}
	return float64(d.RemovedBytes) / float64(d.StartBytes)
}

// DailyChurn replays the trace and returns per-day write/remove volumes
// relative to the data present at the start of each day (Table 3).
func DailyChurn(t *Trace) []ChurnDay {
	days := int(t.Duration / (24 * time.Hour))
	if t.Duration%(24*time.Hour) != 0 {
		days++
	}
	if days == 0 {
		return nil
	}
	out := make([]ChurnDay, days)
	cat := NewCatalog(t.Initial)
	out[0].StartBytes = cat.TotalBytes()
	day := 0
	for i := range t.Events {
		e := &t.Events[i]
		for d := int(e.At / (24 * time.Hour)); day < d && day+1 < days; {
			day++
			out[day].StartBytes = cat.TotalBytes()
		}
		switch e.Op {
		case OpCreate:
			out[day].WrittenBytes += e.Length
		case OpWrite:
			out[day].WrittenBytes += e.Length
		case OpDelete:
			if idx, ok := cat.Lookup(e.Path); ok {
				out[day].RemovedBytes += cat.Size(idx)
			}
		}
		cat.Apply(e)
	}
	return out
}
