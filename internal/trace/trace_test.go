package trace

import (
	"testing"
	"time"
)

func sec(s int) time.Duration { return time.Duration(s) * time.Second }

func TestBlockSpan(t *testing.T) {
	tests := []struct {
		name      string
		ev        Event
		wantFirst int64
		wantCount int64
	}{
		{"first block", Event{Op: OpRead, Offset: 0, Length: 1}, 1, 1},
		{"exactly one block", Event{Op: OpRead, Offset: 0, Length: BlockSize}, 1, 1},
		{"spans two", Event{Op: OpRead, Offset: BlockSize - 1, Length: 2}, 1, 2},
		{"second block", Event{Op: OpRead, Offset: BlockSize, Length: 10}, 2, 1},
		{"large read", Event{Op: OpRead, Offset: 0, Length: 5 * BlockSize}, 1, 5},
		{"delete touches none", Event{Op: OpDelete}, 1, 0},
		{"empty read", Event{Op: OpRead, Offset: 100, Length: 0}, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			first, count := tt.ev.BlockSpan()
			if first != tt.wantFirst || count != tt.wantCount {
				t.Errorf("BlockSpan() = (%d, %d), want (%d, %d)", first, count, tt.wantFirst, tt.wantCount)
			}
		})
	}
}

func TestFileNumBlocks(t *testing.T) {
	tests := []struct {
		size int64
		want int64
	}{
		{0, 0}, {1, 1}, {BlockSize, 1}, {BlockSize + 1, 2}, {10 * BlockSize, 10},
	}
	for _, tt := range tests {
		if got := (File{Size: tt.size}).NumBlocks(); got != tt.want {
			t.Errorf("NumBlocks(size=%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func newTestTrace(events []Event) *Trace {
	return &Trace{Name: "test", Duration: time.Hour, Users: 4, Events: events}
}

func TestTasksSplitOnGap(t *testing.T) {
	tr := newTestTrace([]Event{
		{At: sec(0), User: 0, Op: OpRead, Length: 1, Path: "/a"},
		{At: sec(2), User: 0, Op: OpRead, Length: 1, Path: "/b"},
		{At: sec(20), User: 0, Op: OpRead, Length: 1, Path: "/c"}, // gap 18s >= 5s
	})
	tasks := Tasks(tr, 5*time.Second, 5*time.Minute)
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(tasks))
	}
	if len(tasks[0].Events) != 2 || len(tasks[1].Events) != 1 {
		t.Errorf("task sizes = %d, %d; want 2, 1", len(tasks[0].Events), len(tasks[1].Events))
	}
}

func TestTasksPerUser(t *testing.T) {
	tr := newTestTrace([]Event{
		{At: sec(0), User: 0, Op: OpRead, Length: 1, Path: "/a"},
		{At: sec(1), User: 1, Op: OpRead, Length: 1, Path: "/b"},
		{At: sec(2), User: 0, Op: OpRead, Length: 1, Path: "/c"},
		{At: sec(3), User: 1, Op: OpRead, Length: 1, Path: "/d"},
	})
	tasks := Tasks(tr, 5*time.Second, 0)
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks, want 2 (one per user)", len(tasks))
	}
	for _, task := range tasks {
		if len(task.Events) != 2 {
			t.Errorf("user %d task has %d events, want 2", task.User, len(task.Events))
		}
	}
}

func TestTasksDurationCap(t *testing.T) {
	var events []Event
	for i := 0; i < 120; i++ {
		events = append(events, Event{At: sec(i * 4), User: 0, Op: OpRead, Length: 1, Path: "/a"})
	}
	tr := newTestTrace(events)
	tr.Duration = time.Hour
	tasks := Tasks(tr, 5*time.Second, 5*time.Minute)
	if len(tasks) < 2 {
		t.Fatalf("5-minute cap should split the 8-minute run, got %d tasks", len(tasks))
	}
	for _, task := range tasks {
		if task.End-task.Start > 5*time.Minute+sec(4) {
			t.Errorf("task duration %v exceeds cap", task.End-task.Start)
		}
	}
}

func TestTasksChronologicalOrder(t *testing.T) {
	tr := newTestTrace([]Event{
		{At: sec(0), User: 1, Op: OpRead, Length: 1, Path: "/a"},
		{At: sec(1), User: 0, Op: OpRead, Length: 1, Path: "/b"},
		{At: sec(30), User: 1, Op: OpRead, Length: 1, Path: "/c"},
	})
	tasks := Tasks(tr, 5*time.Second, 0)
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Start < tasks[i-1].Start {
			t.Error("tasks not in chronological order")
		}
	}
}

func TestValidate(t *testing.T) {
	good := newTestTrace([]Event{{At: sec(1), User: 0, Op: OpRead, Length: 1, Path: "/a"}})
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	unsorted := newTestTrace([]Event{
		{At: sec(2), User: 0, Op: OpRead, Length: 1},
		{At: sec(1), User: 0, Op: OpRead, Length: 1},
	})
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted trace accepted")
	}
	badUser := newTestTrace([]Event{{At: sec(1), User: 99, Op: OpRead, Length: 1}})
	if err := badUser.Validate(); err == nil {
		t.Error("out-of-range user accepted")
	}
	badOp := newTestTrace([]Event{{At: sec(1), User: 0, Op: 0, Length: 1}})
	if err := badOp.Validate(); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := NewCatalog([]File{{Path: "/a", Size: 100}})
	if got := c.TotalBytes(); got != 100 {
		t.Fatalf("TotalBytes = %d, want 100", got)
	}
	c.Apply(&Event{Op: OpCreate, Path: "/b", Length: 50})
	if got := c.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes after create = %d, want 150", got)
	}
	// A write extending /a grows it.
	c.Apply(&Event{Op: OpWrite, Path: "/a", Offset: 90, Length: 30})
	if i, _ := c.Lookup("/a"); c.Size(i) != 120 {
		t.Errorf("size after extending write = %d, want 120", c.Size(i))
	}
	// An interior write does not grow it.
	c.Apply(&Event{Op: OpWrite, Path: "/a", Offset: 0, Length: 10})
	if i, _ := c.Lookup("/a"); c.Size(i) != 120 {
		t.Errorf("size after interior write = %d, want 120", c.Size(i))
	}
	c.Apply(&Event{Op: OpDelete, Path: "/b"})
	if got := c.TotalBytes(); got != 120 {
		t.Fatalf("TotalBytes after delete = %d, want 120", got)
	}
	i, ok := c.Lookup("/b")
	if !ok || c.Live(i) {
		t.Error("deleted file should be known but not live")
	}
}

func TestCatalogStableIndices(t *testing.T) {
	c := NewCatalog(nil)
	a := c.Index("/x")
	b := c.Index("/y")
	if a == b {
		t.Fatal("distinct paths share an index")
	}
	if c.Index("/x") != a {
		t.Error("index of /x changed")
	}
	if c.Path(a) != "/x" {
		t.Errorf("Path(%d) = %q", a, c.Path(a))
	}
}

func TestDailyChurn(t *testing.T) {
	day := 24 * time.Hour
	tr := &Trace{
		Name:     "churn",
		Duration: 3 * day,
		Users:    1,
		Initial:  []File{{Path: "/a", Size: 1000}},
		Events: []Event{
			{At: time.Hour, User: 0, Op: OpCreate, Path: "/b", Length: 500},
			{At: day + time.Hour, User: 0, Op: OpDelete, Path: "/a"},
			{At: day + 2*time.Hour, User: 0, Op: OpWrite, Path: "/b", Offset: 0, Length: 200},
			{At: 2*day + time.Hour, User: 0, Op: OpCreate, Path: "/c", Length: 100},
		},
	}
	churn := DailyChurn(tr)
	if len(churn) != 3 {
		t.Fatalf("got %d days, want 3", len(churn))
	}
	if churn[0].StartBytes != 1000 || churn[0].WrittenBytes != 500 || churn[0].RemovedBytes != 0 {
		t.Errorf("day 0 = %+v", churn[0])
	}
	if churn[1].StartBytes != 1500 || churn[1].WrittenBytes != 200 || churn[1].RemovedBytes != 1000 {
		t.Errorf("day 1 = %+v", churn[1])
	}
	if churn[2].StartBytes != 500 || churn[2].WrittenBytes != 100 {
		t.Errorf("day 2 = %+v", churn[2])
	}
	if r := churn[0].WriteRatio(); r != 0.5 {
		t.Errorf("day 0 write ratio = %v, want 0.5", r)
	}
	if r := churn[1].RemoveRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("day 1 remove ratio = %v, want ~2/3", r)
	}
}

func TestDailyChurnEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", Duration: 0, Users: 0}
	if got := DailyChurn(tr); got != nil {
		t.Errorf("DailyChurn(empty) = %v, want nil", got)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpRead: "read", OpWrite: "write", OpCreate: "create", OpDelete: "delete", Op(9): "op(9)"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}
