// Package parexp fans independent experiment tasks out across a bounded
// worker pool. Every paper experiment decomposes into (system × config ×
// trial) cells that share no mutable state — each builds its own engine,
// cluster, and keyer, and derives its randomness from the cell index — so
// the pool preserves determinism by construction: results are stored by
// task index, never by completion order, and a run with one worker is
// byte-identical to a run with many.
package parexp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values above zero are taken
// as-is; zero and negative values mean "use every core" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (Workers semantics: ≤ 0 means all cores) and returns the results in
// index order. fn must not share mutable state across indices; it may be
// called from multiple goroutines concurrently. With one worker, or n ≤ 1,
// everything runs on the calling goroutine.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Do runs the given tasks on at most workers goroutines and waits for all
// of them. It is Map for heterogeneous task lists that write their own
// results.
func Do(workers int, tasks ...func()) {
	Map(workers, len(tasks), func(i int) struct{} {
		tasks[i]()
		return struct{}{}
	})
}
