package parexp

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d, want 4", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	cores := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != cores {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, cores)
	}
	if got := Workers(-3); got != cores {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, cores)
	}
}

func TestMapOrdering(t *testing.T) {
	// Results land at their task index regardless of worker count or
	// scheduling order.
	for _, workers := range []int{1, 2, 7, 64} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d, want 100", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	calls := make([]atomic.Int32, 50)
	Map(8, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d called %d times, want 1", i, n)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Errorf("Map with n=0 = %v, want nil", out)
	}
	if out := Map(4, -5, func(i int) int { return i }); out != nil {
		t.Errorf("Map with n<0 = %v, want nil", out)
	}
}

func TestMapSingle(t *testing.T) {
	out := Map(16, 1, func(i int) string { return "only" })
	if len(out) != 1 || out[0] != "only" {
		t.Errorf("Map n=1 = %v", out)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(3,
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Errorf("Do left tasks unrun: %d %d %d", a.Load(), b.Load(), c.Load())
	}
}
