// Package netmodel models the wide-area network of the paper's Emulab
// deployment (§9.1): pairwise end-to-end latencies shaped like the King
// inter-DNS measurements (clustered continents, mean RTT ≈ 90 ms), and the
// TCP behaviour the paper analyzes in §9.3 — connections idle longer than
// an RTO drop back to slow start, making isolated 8 KB block fetches cost
// at least 2 RTTs, while D2's repeated fetches from the same replica group
// keep windows open.
package netmodel

import (
	"math"
	"math/rand/v2"
	"time"
)

// Topology assigns each node a position in a clustered 2-D latency space.
type Topology struct {
	pos [][2]float64
	// baseRTT is the minimum RTT between distinct nodes.
	baseRTT time.Duration
}

// NewTopology places n nodes in clusters ("continents") so that
// intra-cluster RTTs are tens of milliseconds and cross-cluster RTTs are
// 100–300 ms, giving a mean pairwise RTT near the paper's 90 ms.
func NewTopology(n int, seed uint64) *Topology {
	rng := rand.New(rand.NewPCG(seed, 0x544f504f)) // "TOPO"
	const clusters = 6
	centers := make([][2]float64, clusters)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 120, rng.Float64() * 120}
	}
	t := &Topology{pos: make([][2]float64, n), baseRTT: 2 * time.Millisecond}
	for i := 0; i < n; i++ {
		c := centers[rng.IntN(clusters)]
		t.pos[i] = [2]float64{
			c[0] + rng.NormFloat64()*8,
			c[1] + rng.NormFloat64()*8,
		}
	}
	return t
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.pos) }

// RTT returns the round-trip time between nodes i and j: symmetric,
// deterministic, with RTT(i, i) equal to the small base RTT.
func (t *Topology) RTT(i, j int) time.Duration {
	if i == j {
		return t.baseRTT
	}
	dx := t.pos[i][0] - t.pos[j][0]
	dy := t.pos[i][1] - t.pos[j][1]
	dist := math.Sqrt(dx*dx + dy*dy)
	return t.baseRTT + time.Duration(dist*float64(time.Millisecond))
}

// OneWay returns half the RTT.
func (t *Topology) OneWay(i, j int) time.Duration { return t.RTT(i, j) / 2 }

// MeanRTT estimates the mean pairwise RTT by sampling.
func (t *Topology) MeanRTT(samples int, seed uint64) time.Duration {
	rng := rand.New(rand.NewPCG(seed, 1))
	var sum time.Duration
	n := len(t.pos)
	for s := 0; s < samples; s++ {
		i, j := rng.IntN(n), rng.IntN(n)
		for j == i {
			j = rng.IntN(n)
		}
		sum += t.RTT(i, j)
	}
	return sum / time.Duration(samples)
}

// TCP parameters of the §9.3 analysis.
const (
	// MSS is the sender's maximum segment payload.
	MSS = 1460
	// InitCwnd is Linux's initial window of 2 segments (§9.3 footnote 7).
	InitCwnd = 2
	// MaxCwnd caps window growth (64 segments ≈ 93 KB in flight).
	MaxCwnd = 64
	// RTO is the idle time after which a connection re-enters slow start.
	RTO = time.Second
)

// TCP tracks per-connection congestion windows so the simulator can charge
// slow-start rounds exactly when the paper's analysis says they occur.
type TCP struct {
	pairs map[[2]int32]*connState
}

type connState struct {
	cwnd    int
	lastUse time.Duration
}

// NewTCP creates an empty connection table. Connections are considered
// pre-established (the paper pre-opens all pairs, §9.1), so there is no
// handshake cost — only window state.
func NewTCP() *TCP {
	return &TCP{pairs: make(map[[2]int32]*connState)}
}

// Segments returns the number of MSS segments needed for n bytes.
func Segments(n int64) int {
	return int((n + MSS - 1) / MSS)
}

// TransferRounds returns the number of RTT-long window rounds needed to
// move n bytes from src to dst at virtual time now, and updates the
// connection state. A connection idle for more than RTO restarts from
// InitCwnd (slow start); otherwise the window carries over and one round
// usually suffices.
func (t *TCP) TransferRounds(src, dst int, n int64, now time.Duration) int {
	key := [2]int32{int32(src), int32(dst)}
	st := t.pairs[key]
	if st == nil {
		st = &connState{cwnd: InitCwnd}
		t.pairs[key] = st
	} else if now-st.lastUse > RTO {
		st.cwnd = InitCwnd
	}
	segs := Segments(n)
	rounds := 0
	w := st.cwnd
	sent := 0
	for sent < segs {
		rounds++
		sent += w
		if w < MaxCwnd {
			w *= 2
			if w > MaxCwnd {
				w = MaxCwnd
			}
		}
	}
	st.cwnd = w
	st.lastUse = now
	if rounds == 0 {
		rounds = 1
	}
	return rounds
}

// Reset drops all connection state (between measurement windows).
func (t *TCP) Reset() { t.pairs = make(map[[2]int32]*connState) }
