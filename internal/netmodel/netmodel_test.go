package netmodel

import (
	"testing"
	"time"
)

func TestTopologyRTTProperties(t *testing.T) {
	topo := NewTopology(200, 1)
	if topo.Len() != 200 {
		t.Fatalf("Len = %d", topo.Len())
	}
	for _, pair := range [][2]int{{0, 1}, {5, 199}, {42, 17}} {
		i, j := pair[0], pair[1]
		a, b := topo.RTT(i, j), topo.RTT(j, i)
		if a != b {
			t.Errorf("RTT not symmetric for (%d,%d): %v vs %v", i, j, a, b)
		}
		if a <= 0 {
			t.Errorf("RTT(%d,%d) = %v", i, j, a)
		}
	}
	if self := topo.RTT(7, 7); self > 5*time.Millisecond {
		t.Errorf("self RTT = %v, want tiny", self)
	}
	if ow := topo.OneWay(0, 1); ow != topo.RTT(0, 1)/2 {
		t.Errorf("OneWay = %v, want RTT/2", ow)
	}
}

func TestTopologyMeanRTTNearPaper(t *testing.T) {
	topo := NewTopology(1000, 2)
	mean := topo.MeanRTT(20000, 3)
	// The paper's network has mean RTT ≈ 90 ms; accept a broad band.
	if mean < 50*time.Millisecond || mean > 150*time.Millisecond {
		t.Errorf("mean RTT = %v, want ≈ 90ms", mean)
	}
}

func TestTopologyDeterministic(t *testing.T) {
	a := NewTopology(50, 9)
	b := NewTopology(50, 9)
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			if a.RTT(i, j) != b.RTT(i, j) {
				t.Fatal("topology not deterministic")
			}
		}
	}
}

func TestSegments(t *testing.T) {
	tests := []struct {
		n    int64
		want int
	}{
		{1, 1}, {MSS, 1}, {MSS + 1, 2}, {8192, 6}, {0, 0},
	}
	for _, tt := range tests {
		if got := Segments(tt.n); got != tt.want {
			t.Errorf("Segments(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestColdTransferTakesTwoRounds(t *testing.T) {
	// §9.3: an 8 KB block on a cold connection needs ≥ 2 RTTs (2 then 4
	// segments).
	tcp := NewTCP()
	rounds := tcp.TransferRounds(0, 1, 8192, 0)
	if rounds != 2 {
		t.Errorf("cold 8KB transfer = %d rounds, want 2", rounds)
	}
}

func TestWarmConnectionSingleRound(t *testing.T) {
	tcp := NewTCP()
	tcp.TransferRounds(0, 1, 8192, 0)
	// Immediately reuse: window is open (2+4 doubled to 8 ≥ 6 segments).
	rounds := tcp.TransferRounds(0, 1, 8192, 100*time.Millisecond)
	if rounds != 1 {
		t.Errorf("warm 8KB transfer = %d rounds, want 1", rounds)
	}
}

func TestIdleConnectionRestartsSlowStart(t *testing.T) {
	tcp := NewTCP()
	tcp.TransferRounds(0, 1, 8192, 0)
	// Idle 14 s ≫ RTO: the paper's traditional-DHT scenario.
	rounds := tcp.TransferRounds(0, 1, 8192, 14*time.Second)
	if rounds != 2 {
		t.Errorf("idle 8KB transfer = %d rounds, want 2 (slow-start restart)", rounds)
	}
}

func TestConnectionsAreIndependent(t *testing.T) {
	tcp := NewTCP()
	tcp.TransferRounds(0, 1, 8192, 0)
	rounds := tcp.TransferRounds(0, 2, 8192, time.Millisecond)
	if rounds != 2 {
		t.Errorf("fresh pair rounds = %d, want 2", rounds)
	}
	// Direction matters: (1, 0) is a different sender state.
	rounds = tcp.TransferRounds(1, 0, 8192, 2*time.Millisecond)
	if rounds != 2 {
		t.Errorf("reverse pair rounds = %d, want 2", rounds)
	}
}

func TestLargeTransferCapsWindow(t *testing.T) {
	tcp := NewTCP()
	// 1 MB cold: rounds with cwnd 2,4,...,64,64,... = 719 segs.
	rounds := tcp.TransferRounds(0, 1, 1<<20, 0)
	if rounds < 7 {
		t.Errorf("1MB cold transfer = %d rounds, want many", rounds)
	}
	// Warm big transfers keep the capped window.
	again := tcp.TransferRounds(0, 1, 1<<20, time.Millisecond)
	if again >= rounds {
		t.Errorf("warm transfer (%d) not faster than cold (%d)", again, rounds)
	}
}

func TestReset(t *testing.T) {
	tcp := NewTCP()
	tcp.TransferRounds(0, 1, 8192, 0)
	tcp.Reset()
	if rounds := tcp.TransferRounds(0, 1, 8192, time.Millisecond); rounds != 2 {
		t.Errorf("rounds after Reset = %d, want 2 (cold)", rounds)
	}
}
