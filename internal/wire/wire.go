// Package wire holds the binary encoding primitives shared by D2's wire
// surfaces: the transport RPC codec and the D2-FS block codec. Everything
// is hand-rolled big-endian append/read code — no reflection, no interface
// boxing, and decode never panics or allocates proportionally to a
// length field an attacker controls (counts are validated against the
// bytes actually present before any allocation).
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Decode errors. ErrTruncated reports a field extending past the input;
// ErrMalformed reports structurally invalid input (bad magic, impossible
// counts, trailing garbage).
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrMalformed = errors.New("wire: malformed input")
)

// castagnoli is the CRC-32C table used for optional frame checksums
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ChecksumUpdate folds more data into a running CRC-32C.
func ChecksumUpdate(sum uint32, data []byte) uint32 {
	return crc32.Update(sum, castagnoli, data)
}

// --- append-style encoders ---

// AppendU8 appends one byte.
func AppendU8(b []byte, v byte) []byte { return append(b, v) }

// AppendU16 appends a big-endian uint16.
func AppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

// AppendU32 appends a big-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendU64 appends a big-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendI64 appends an int64 (two's-complement big-endian).
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(b, v []byte) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendString appends a u32-length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendShortString appends a u16-length-prefixed string (addresses,
// span names — anything bounded well under 64 KiB). Longer strings are
// truncated rather than corrupting the frame.
func AppendShortString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = AppendU16(b, uint16(len(s)))
	return append(b, s...)
}

// PutU32 overwrites b[off:off+4] with a big-endian uint32 (for patching
// a length field after the body is known). b must have the room.
func PutU32(b []byte, off int, v uint32) {
	b[off] = byte(v >> 24)
	b[off+1] = byte(v >> 16)
	b[off+2] = byte(v >> 8)
	b[off+3] = byte(v)
}

// U32 reads a big-endian uint32 at off without a Reader (frame-length
// peeks). The caller guarantees len(b) >= off+4.
func U32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}

// --- bounds-checked reader ---

// Reader consumes a byte slice with sticky-error semantics: after the
// first failure every subsequent read returns zero values and Err()
// reports the failure, so decoders read a whole struct and check once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader borrows b; it never
// copies or mutates it.
func NewReader(b []byte) Reader { return Reader{b: b} }

// Err returns the first decode failure (nil while healthy).
func (r *Reader) Err() error { return r.err }

// Len returns the unread byte count.
func (r *Reader) Len() int { return len(r.b) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take consumes n bytes, returning nil (and failing) when they are not
// all present.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, r.Len()))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return uint16(v[0])<<8 | uint16(v[1])
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return uint32(v[0])<<24 | uint32(v[1])<<16 | uint32(v[2])<<8 | uint32(v[3])
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return uint64(v[0])<<56 | uint64(v[1])<<48 | uint64(v[2])<<40 | uint64(v[3])<<32 |
		uint64(v[4])<<24 | uint64(v[5])<<16 | uint64(v[6])<<8 | uint64(v[7])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads one byte as a bool; any value other than 0 or 1 is
// malformed (canonical encodings keep fuzzing honest).
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail(fmt.Errorf("%w: bool byte %d", ErrMalformed, v))
		return false
	}
	return v == 1
}

// Bytes reads a u32-length-prefixed byte field, borrowing the underlying
// input (zero copy). Empty fields return nil.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if n == 0 {
		return nil
	}
	v := r.take(int(n))
	if v == nil {
		return nil
	}
	return v
}

// BytesCopy reads a u32-length-prefixed byte field into a fresh slice.
func (r *Reader) BytesCopy() []byte {
	v := r.Bytes()
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// String reads a u32-length-prefixed string (one copy, as any
// []byte→string conversion).
func (r *Reader) String() string {
	v := r.Bytes()
	if len(v) == 0 {
		return ""
	}
	return string(v)
}

// ShortString reads a u16-length-prefixed string.
func (r *Reader) ShortString() string {
	n := r.U16()
	if n == 0 {
		return ""
	}
	v := r.take(int(n))
	if v == nil {
		return ""
	}
	return string(v)
}

// Take consumes exactly n raw bytes (fixed-width fields: keys, hashes).
func (r *Reader) Take(n int) []byte { return r.take(n) }

// Count reads a u32 element count and validates it against the bytes
// remaining: each element needs at least minElem bytes, so a count that
// could not possibly fit fails before the caller allocates anything.
func (r *Reader) Count(minElem int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if int64(n)*int64(minElem) > int64(r.Len()) {
		r.fail(fmt.Errorf("%w: count %d × ≥%dB exceeds %d remaining bytes",
			ErrMalformed, n, minElem, r.Len()))
		return 0
	}
	return int(n)
}

// ExpectEmpty fails unless the input is fully consumed — canonical
// frames carry no trailing garbage.
func (r *Reader) ExpectEmpty() {
	if r.err == nil && r.Len() != 0 {
		r.fail(fmt.Errorf("%w: %d trailing bytes", ErrMalformed, r.Len()))
	}
}
