package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU16(b, 0xBEEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 0x0123456789ABCDEF)
	b = AppendI64(b, -42)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte("payload"))
	b = AppendString(b, "hello")
	b = AppendShortString(b, "addr:1234")

	r := NewReader(b)
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.ShortString(); got != "addr:1234" {
		t.Errorf("ShortString = %q", got)
	}
	r.ExpectEmpty()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendBytes(AppendU32(nil, 7), []byte("0123456789"))
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U32()
		r.Bytes()
		r.ExpectEmpty()
		if r.Err() == nil {
			t.Errorf("cut at %d: no error", cut)
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected truncation error")
	}
	r.U64()
	r.Bytes()
	if !errors.Is(r.Err(), ErrTruncated) || r.Err() != first {
		t.Errorf("sticky error lost: %v", r.Err())
	}
}

func TestBoolCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("non-canonical bool accepted: %v", r.Err())
	}
}

// TestCountGuardsAllocation is the no-unbounded-allocation property: a
// hostile count field larger than the remaining input must fail before
// the caller would size a slice from it.
func TestCountGuardsAllocation(t *testing.T) {
	b := AppendU32(nil, 0xFFFFFFFF)
	r := NewReader(b)
	if n := r.Count(8); n != 0 || !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("hostile count passed: n=%d err=%v", n, r.Err())
	}

	// A count that exactly fits is accepted.
	b = AppendU32(nil, 3)
	b = append(b, make([]byte, 24)...)
	r = NewReader(b)
	if n := r.Count(8); n != 3 || r.Err() != nil {
		t.Errorf("valid count rejected: n=%d err=%v", n, r.Err())
	}
}

func TestTrailingGarbage(t *testing.T) {
	b := AppendU32(nil, 1)
	b = append(b, 0xFF)
	r := NewReader(b)
	r.U32()
	r.ExpectEmpty()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("trailing garbage accepted: %v", r.Err())
	}
}

func TestPutU32Patch(t *testing.T) {
	b := AppendU32(nil, 0) // placeholder
	b = AppendString(b, "body")
	PutU32(b, 0, uint32(len(b)-4))
	if got := U32(b, 0); int(got) != len(b)-4 {
		t.Errorf("patched len = %d, want %d", got, len(b)-4)
	}
}

func TestChecksum(t *testing.T) {
	data := []byte("the quick brown fox")
	want := Checksum(data)
	got := ChecksumUpdate(ChecksumUpdate(0, data[:7]), data[7:])
	if got != want {
		t.Errorf("incremental CRC %#x != one-shot %#x", got, want)
	}
}
