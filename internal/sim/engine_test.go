package sim

import (
	"testing"
	"time"
)

func TestRunOrdersEvents(t *testing.T) {
	var eng Engine
	var order []int
	eng.At(3*time.Second, func() { order = append(order, 3) })
	eng.At(time.Second, func() { order = append(order, 1) })
	eng.At(2*time.Second, func() { order = append(order, 2) })
	n := eng.Run(time.Minute)
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if eng.Now() != time.Minute {
		t.Errorf("Now() = %v, want run bound", eng.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var eng Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(time.Second, func() { order = append(order, i) })
	}
	eng.Run(time.Second)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunStopsAtBound(t *testing.T) {
	var eng Engine
	fired := false
	eng.At(2*time.Second, func() { fired = true })
	eng.Run(time.Second)
	if fired {
		t.Error("event past the bound fired")
	}
	if eng.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", eng.Pending())
	}
	eng.Run(3 * time.Second)
	if !fired {
		t.Error("event not fired on later run")
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var eng Engine
	var at time.Duration
	eng.At(time.Second, func() {
		eng.After(5*time.Second, func() { at = eng.Now() })
	})
	eng.Run(time.Minute)
	if at != 6*time.Second {
		t.Errorf("After fired at %v, want 6s", at)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	var eng Engine
	var at time.Duration
	eng.At(10*time.Second, func() {
		eng.At(time.Second, func() { at = eng.Now() })
	})
	eng.Run(time.Minute)
	if at != 10*time.Second {
		t.Errorf("past event fired at %v, want clamped to 10s", at)
	}
}

func TestEvery(t *testing.T) {
	var eng Engine
	count := 0
	eng.Every(time.Second, func() bool {
		count++
		return count < 5
	})
	eng.Run(time.Minute)
	if count != 5 {
		t.Errorf("periodic fired %d times, want 5", count)
	}
}

func TestLinkSerialTransfers(t *testing.T) {
	var eng Engine
	link := NewLink(&eng, 8000) // 1000 bytes/sec
	var done []time.Duration
	link.Enqueue(1000, func() { done = append(done, eng.Now()) })
	link.Enqueue(2000, func() { done = append(done, eng.Now()) })
	eng.Run(time.Minute)
	if len(done) != 2 {
		t.Fatalf("%d transfers completed", len(done))
	}
	if done[0] != time.Second {
		t.Errorf("first transfer completed at %v, want 1s", done[0])
	}
	if done[1] != 3*time.Second {
		t.Errorf("second transfer completed at %v, want 3s (serialized)", done[1])
	}
	if link.TotalBytes() != 3000 {
		t.Errorf("TotalBytes = %d", link.TotalBytes())
	}
	if link.Backlog() != 0 {
		t.Errorf("Backlog = %d after drain", link.Backlog())
	}
}

func TestLinkBacklogDuringTransfer(t *testing.T) {
	var eng Engine
	link := NewLink(&eng, 8000)
	link.Enqueue(4000, nil)
	if link.Backlog() != 4000 {
		t.Errorf("Backlog = %d, want 4000", link.Backlog())
	}
	if link.BusyUntil() != 4*time.Second {
		t.Errorf("BusyUntil = %v, want 4s", link.BusyUntil())
	}
	eng.Run(time.Minute)
	if link.Backlog() != 0 {
		t.Errorf("Backlog = %d after run", link.Backlog())
	}
}

func TestLinkIdleGapThenTransfer(t *testing.T) {
	var eng Engine
	link := NewLink(&eng, 8000)
	var completed time.Duration
	eng.At(10*time.Second, func() {
		link.Enqueue(1000, func() { completed = eng.Now() })
	})
	eng.Run(time.Minute)
	if completed != 11*time.Second {
		t.Errorf("transfer after idle completed at %v, want 11s", completed)
	}
}
