// Package sim provides the discrete-event simulation engine used by the
// availability, performance, and load-balance experiments: a virtual clock
// with an event heap, and serial bandwidth-limited links that model
// per-node migration and access-link capacity.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a discrete-event simulator with a virtual clock. The zero
// value is ready for use. Engine is not safe for concurrent use: event
// callbacks run on the caller's goroutine, one at a time, in timestamp
// order (FIFO among equal timestamps).
type Engine struct {
	pq  eventHeap
	now time.Duration
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at the given absolute virtual time. Scheduling in
// the past runs it at the current time (never rewinding the clock).
func (e *Engine) At(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run periodically with the given period, starting
// one period from now, until the engine stops or fn returns false.
func (e *Engine) Every(period time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// Run processes events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until are processed. It returns the
// number of events processed.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for len(e.pq) > 0 && e.pq[0].at <= until {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// Link models a serial bandwidth-limited link: transfers queue and complete
// in FIFO order at the configured rate. It models per-node migration
// bandwidth (750 kbps in §8.1) and access-link capacity (§9.1).
type Link struct {
	eng *Engine
	// BitsPerSec is the link capacity.
	BitsPerSec int64
	busyUntil  time.Duration
	// queuedBytes tracks bytes accepted but not yet completed.
	queuedBytes int64
	// totalBytes counts all bytes ever transferred (for Table 4).
	totalBytes int64
}

// NewLink creates a link on the engine with the given capacity.
func NewLink(eng *Engine, bitsPerSec int64) *Link {
	return &Link{eng: eng, BitsPerSec: bitsPerSec}
}

// TransferTime returns how long the link needs to move n bytes once the
// transfer starts.
func (l *Link) TransferTime(n int64) time.Duration {
	return time.Duration(float64(n*8) / float64(l.BitsPerSec) * float64(time.Second))
}

// Enqueue schedules a transfer of n bytes. done (optional) runs when the
// transfer completes. It returns the completion time.
func (l *Link) Enqueue(n int64, done func()) time.Duration {
	start := l.eng.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	finish := start + l.TransferTime(n)
	l.busyUntil = finish
	l.queuedBytes += n
	l.totalBytes += n
	l.eng.At(finish, func() {
		l.queuedBytes -= n
		if done != nil {
			done()
		}
	})
	return finish
}

// Backlog returns the bytes accepted but not yet delivered.
func (l *Link) Backlog() int64 { return l.queuedBytes }

// TotalBytes returns all bytes ever enqueued on the link.
func (l *Link) TotalBytes() int64 { return l.totalBytes }

// BusyUntil returns the time at which the link drains its queue.
func (l *Link) BusyUntil() time.Duration { return l.busyUntil }
