package d2_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/obs/tracing"
)

// TestClusterTraceAssembly is the d2ctl-trace path end to end: a 3-node
// TCP cluster serves a multi-owner batched read under a forced trace, and
// FetchClusterTrace scrapes every member's sink into one span tree that
// covers the client and at least two distinct server nodes.
func TestClusterTraceAssembly(t *testing.T) {
	ctx := context.Background()
	opts := fastOptions()
	var nodes []*d2.Node
	for i := 0; i < 3; i++ {
		seed := ""
		if i > 0 {
			seed = nodes[0].Addr()
		}
		n, err := d2.StartNode(ctx, "127.0.0.1:0", seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	time.Sleep(300 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{nodes[0].Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Hashed keys scatter across the ring, so with 3 nodes a 24-key batch
	// reaches multiple owner groups — the multi-owner read the trace must
	// cover.
	var ks []d2.Key
	for i := 0; i < 24; i++ {
		k := keys.HashString(fmt.Sprintf("traced-block-%d", i))
		if err := client.Put(ctx, k, []byte("traced-payload")); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}

	sctx, root := client.StartTrace(ctx, "test.trace")
	got, err := client.GetMany(sctx, ks)
	root.EndErr(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("GetMany returned %d blocks, want %d", len(got), len(ks))
	}

	spans, err := client.FetchClusterTrace(ctx, root.TraceID())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("FetchClusterTrace returned no spans")
	}

	// One assembled tree, rooted at the forced op.
	tree := tracing.Assemble(spans)
	if len(tree) != 1 {
		for _, n := range tree {
			t.Logf("top-level span: %s on %s (parent %x)", n.Span.Name, n.Span.Node, n.Span.Parent)
		}
		t.Fatalf("assembled %d top-level spans, want 1 rooted tree", len(tree))
	}
	if tree[0].Span.Name != "test.trace" {
		t.Fatalf("tree root is %q, want test.trace", tree[0].Span.Name)
	}

	// The trace must cover work on at least two distinct server nodes
	// (plus the client's own spans).
	servers := map[string]bool{}
	var serves int
	for _, sp := range spans {
		for _, n := range nodes {
			if sp.Node == n.Addr() {
				servers[sp.Node] = true
			}
		}
		if sp.Name == "serve.multi_get" {
			serves++
		}
	}
	if len(servers) < 2 {
		t.Fatalf("trace touches %d server nodes (%v), want >= 2", len(servers), servers)
	}
	if serves == 0 {
		t.Fatal("trace has no serve.multi_get spans")
	}
	if n := tracing.NodeCount(spans); n < 3 {
		t.Fatalf("NodeCount = %d, want >= 3 (client + 2 servers)", n)
	}

	// The range-read path fans out per owner arc the same way: a forced
	// ReadRange over the stored keys must leave the op root plus at least
	// one range.segment span in the client's sink.
	lo, hi := ks[0], ks[0]
	for _, k := range ks[1:] {
		if k.Less(lo) {
			lo = k
		}
		if hi.Less(k) {
			hi = k
		}
	}
	rctx, rroot := client.StartTrace(ctx, "test.range")
	entries, err := client.ReadRange(rctx, lo, hi)
	rroot.EndErr(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("ReadRange returned no entries")
	}
	rnames := map[string]bool{}
	for _, sp := range client.TraceSpans() {
		if sp.Trace == rroot.TraceID() {
			rnames[sp.Name] = true
		}
	}
	for _, want := range []string{"test.range", "client.read_range", "range.segment"} {
		if !rnames[want] {
			t.Fatalf("range trace missing %q span; have %v", want, rnames)
		}
	}
}

// TestMemClusterForcedTrace checks the in-process cluster records the same
// span shapes as TCP: a forced Put leaves the root plus its lookup and rpc
// children in the client's sink.
func TestMemClusterForcedTrace(t *testing.T) {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 3, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sctx, root := client.StartTrace(ctx, "test.op")
	err = client.Put(sctx, keys.HashString("evt-block"), []byte("x"))
	root.EndErr(err)
	if err != nil {
		t.Fatal(err)
	}
	if root.TraceID() == 0 {
		t.Fatal("forced trace has zero ID")
	}
	names := map[string]bool{}
	for _, sp := range client.TraceSpans() {
		if sp.Trace == root.TraceID() {
			names[sp.Name] = true
		}
	}
	for _, want := range []string{"test.op", "client.put", "rpc.put"} {
		if !names[want] {
			t.Fatalf("client sink missing %q span; have %v", want, names)
		}
	}
}
