package d2_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
)

// The durable-storage e2e runs REAL d2node processes (the test binary
// re-executes itself as a node when D2_E2E_NODE=1, so kill -9 is a
// genuine process death, not an in-process simulation): a 3-node TCP
// ring on disk engines, traffic in flight, one node killed with SIGKILL
// mid-stream, reads served from replicas during the outage, and the
// restarted node recovering its arc — same ring ID, blocks replayed
// from the WAL, payloads byte-verified — with zero acknowledged writes
// lost.

// TestMain intercepts the re-exec: with D2_E2E_NODE=1 the binary is a
// DHT node, not a test run.
func TestMain(m *testing.M) {
	if os.Getenv("D2_E2E_NODE") == "1" {
		runE2ENode()
		return
	}
	os.Exit(m.Run())
}

// runE2ENode is the child-process body: start a durable TCP node from
// env config, report its address/identity/recovery on stdout, and serve
// until killed.
func runE2ENode() {
	nd, err := d2.StartNode(context.Background(),
		os.Getenv("D2_E2E_BIND"), os.Getenv("D2_E2E_SEED"),
		d2.NodeOptions{
			Replicas:          3,
			StabilizeInterval: 50 * time.Millisecond,
			RepairInterval:    200 * time.Millisecond,
			RemoveDelay:       time.Second,
			DataDir:           os.Getenv("D2_E2E_DATADIR"),
			Fsync:             os.Getenv("D2_E2E_FSYNC"),
		})
	if err != nil {
		fmt.Printf("D2E2E ERROR %v\n", err)
		os.Exit(1)
	}
	rec := nd.Recovery()
	id := nd.ID()
	fmt.Printf("D2E2E ADDR %s\n", nd.Addr())
	fmt.Printf("D2E2E ID %x\n", id[:])
	fmt.Printf("D2E2E RECOVERED blocks=%d pointers=%d records=%d torn=%d\n",
		rec.Blocks, rec.Pointers, rec.Records, rec.TornRecords)
	select {} // serve until SIGKILL
}

// nodeProc is one child node process under test control.
type nodeProc struct {
	cmd       *exec.Cmd
	addr      string
	id        string
	recovered map[string]int
}

// spawnNode re-executes the test binary as a durable node and parses its
// banner. Respawns on the same bind address retry briefly (the killed
// process's port may linger).
func spawnNode(t *testing.T, bind, seed, dataDir string) *nodeProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"D2_E2E_NODE=1",
			"D2_E2E_BIND="+bind,
			"D2_E2E_SEED="+seed,
			"D2_E2E_DATADIR="+dataDir,
			"D2_E2E_FSYNC=interval", // realistic durable config, fast enough for CI
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		p := &nodeProc{cmd: cmd, recovered: map[string]int{}}
		sc := bufio.NewScanner(out)
		failed := false
		for p.addr == "" || p.id == "" || len(p.recovered) == 0 {
			if !sc.Scan() {
				failed = true
				break
			}
			fields := strings.Fields(sc.Text())
			if len(fields) < 2 || fields[0] != "D2E2E" {
				continue
			}
			switch fields[1] {
			case "ADDR":
				p.addr = fields[2]
			case "ID":
				p.id = fields[2]
			case "RECOVERED":
				for _, kv := range fields[2:] {
					name, val, _ := strings.Cut(kv, "=")
					n := 0
					fmt.Sscanf(val, "%d", &n)
					p.recovered[name] = n
				}
			case "ERROR":
				failed = true
			}
		}
		if !failed {
			// Keep draining so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			t.Cleanup(func() {
				if p.cmd.Process != nil {
					_ = p.cmd.Process.Kill()
					_, _ = p.cmd.Process.Wait()
				}
			})
			return p
		}
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		if time.Now().After(deadline) {
			t.Fatalf("node on %s failed to start before deadline", bind)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// kill9 delivers SIGKILL — the crash under test — and reaps the child.
func (p *nodeProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = p.cmd.Process.Wait()
}

func TestDiskNodeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real node processes")
	}
	ctx := context.Background()

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	n1 := spawnNode(t, "127.0.0.1:0", "", dirs[0])
	n2 := spawnNode(t, "127.0.0.1:0", n1.addr, dirs[1])
	n3 := spawnNode(t, "127.0.0.1:0", n1.addr, dirs[2])

	client, err := d2.ConnectTCP([]string{n1.addr, n3.addr}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitRing(t, ctx, client, 3)

	// Write a volume of blocks and remember every acknowledged payload.
	rng := rand.New(rand.NewPCG(7, 9))
	acked := map[d2.Key][]byte{}
	var ackedMu sync.Mutex
	putOne := func(i uint64) error {
		var k d2.Key
		for j := range k {
			k[j] = byte(rng.Uint64())
		}
		data := make([]byte, 256+rng.IntN(4096))
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := client.Put(pctx, k, data); err != nil {
			return err
		}
		ackedMu.Lock()
		acked[k] = data
		ackedMu.Unlock()
		return nil
	}
	for i := uint64(0); i < 150; i++ {
		if err := putOne(i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Kill node 2 with traffic in flight: a writer goroutine keeps
	// putting while the SIGKILL lands. Only writes whose Put returned
	// success count as acknowledged.
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := uint64(1000); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = putOne(i) // failures during the outage are expected
		}
	}()
	time.Sleep(100 * time.Millisecond)
	n2.kill9(t)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	writerWG.Wait()

	// During the outage every acknowledged block must still be readable
	// from the survivors' replicas.
	ackedMu.Lock()
	snapshot := make(map[d2.Key][]byte, len(acked))
	for k, v := range acked {
		snapshot[k] = v
	}
	ackedMu.Unlock()
	verifyAll(t, ctx, client, snapshot, "during outage")

	// Restart the killed node on its old data directory: it must come
	// back with the same ring identity and a non-empty recovered arc.
	n2b := spawnNode(t, n2.addr, n1.addr, dirs[1])
	if n2b.id != n2.id {
		t.Fatalf("restarted node changed identity: %s -> %s", n2.id[:16], n2b.id[:16])
	}
	if n2b.recovered["blocks"] == 0 {
		t.Fatalf("restarted node recovered no blocks: %v", n2b.recovered)
	}
	t.Logf("restart recovered %d blocks, %d records (%d torn) with identity intact",
		n2b.recovered["blocks"], n2b.recovered["records"], n2b.recovered["torn"])
	waitRing(t, ctx, client, 3)

	// With the ring whole again, every acknowledged write must verify
	// byte-for-byte (recovery CRC-checks each record it replays; this
	// checks the payloads end to end).
	verifyAll(t, ctx, client, snapshot, "after restart")
}

// waitRing polls until the client sees n ring members.
func waitRing(t *testing.T, ctx context.Context, client *d2.Client, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		wctx, cancel := context.WithTimeout(ctx, 3*time.Second)
		members, err := client.WalkRing(wctx)
		cancel()
		if err == nil && len(members) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never reached %d members (last: %d, err=%v)", n, len(members), err)
		}
		time.Sleep(150 * time.Millisecond)
	}
}

// verifyAll reads every acknowledged block, retrying transient failures
// (ownership may be moving during heal), and byte-compares payloads.
func verifyAll(t *testing.T, ctx context.Context, client *d2.Client, acked map[d2.Key][]byte, phase string) {
	t.Helper()
	for k, want := range acked {
		var got []byte
		var err error
		deadline := time.Now().Add(15 * time.Second)
		for {
			gctx, cancel := context.WithTimeout(ctx, 3*time.Second)
			got, err = client.Get(gctx, k)
			cancel()
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("%s: acked block %x... unreadable: %v", phase, k[:6], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: acked block %x... corrupted (%d vs %d bytes)", phase, k[:6], len(got), len(want))
		}
	}
}
