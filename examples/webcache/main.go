// Webcache: a Squirrel-style cooperative web cache on a D2 cluster (§10).
// Clients check the DHT for each requested URL; on a miss the object is
// fetched from a (simulated) origin server and inserted with a TTL, so
// the next client gets a cache hit. URLs are encoded with D2's hashed
// 2-byte directory slots (§4.2 footnote 2), so one site's objects cluster
// on few nodes — a whole site visit costs roughly one lookup.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/placement"
)

// origin simulates the web: deterministic page content per URL.
func origin(url string) []byte {
	return []byte(fmt.Sprintf("<html><!-- content of %s --></html>", url))
}

// webCache is the Squirrel-style cache layer over a D2 client.
type webCache struct {
	client *d2.Client
	keyer  placement.URLNamespace
	hits   int
	misses int
}

// fetch returns the page, from the DHT when cached, inserting on miss.
func (w *webCache) fetch(ctx context.Context, url string) ([]byte, error) {
	k := w.keyer.BlockKey(url, 0)
	if data, err := w.client.Get(ctx, k); err == nil {
		w.hits++
		return data, nil
	}
	w.misses++
	data := origin(url)
	if err := w.client.Put(ctx, k, data); err != nil {
		return nil, err
	}
	return data, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 10, d2.NodeOptions{
		Replicas:          3,
		StabilizeInterval: 20 * time.Millisecond,
		RepairInterval:    100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		return err
	}
	defer client.Close()

	vol := keys.NewVolumeID([]byte("webcache-demo"), "cache")
	cache := &webCache{client: client, keyer: placement.NewURLNamespace(vol)}

	// Two browsing sessions over the same sites: the second one is
	// almost entirely cache hits served from the DHT.
	rng := rand.New(rand.NewPCG(1, 2))
	sites := []string{"com.example.www", "org.golang.go", "edu.cmu.cs"}
	var urls []string
	for _, site := range sites {
		for p := 0; p < 12; p++ {
			urls = append(urls, fmt.Sprintf("/%s/page%02d.html", site, p))
		}
	}
	for session := 1; session <= 2; session++ {
		cache.hits, cache.misses = 0, 0
		for _, i := range rng.Perm(len(urls)) {
			if _, err := cache.fetch(ctx, urls[i]); err != nil {
				return err
			}
		}
		fmt.Printf("session %d: %d hits, %d misses\n", session, cache.hits, cache.misses)
	}

	lh, lm := client.CacheStats()
	fmt.Printf("DHT lookup cache: %d hits, %d misses — each site's objects live on few nodes\n", lh, lm)
	return nil
}
