// Quickstart: start an in-process D2 cluster, publish a file-system
// volume, and exercise the D2-FS API — writes, reads, directory listings,
// and a rename (which never moves data blocks). Prints the client's
// lookup-cache statistics at the end: locality-preserving keys make most
// block fetches hit the cached node ranges (§5).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	d2 "github.com/defragdht/d2"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	fmt.Println("starting a 12-node in-process D2 cluster...")
	cluster, err := d2.NewCluster(ctx, 12, d2.NodeOptions{
		Replicas:          3,
		StabilizeInterval: 20 * time.Millisecond,
		RepairInterval:    100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		return err
	}
	defer client.Close()

	_, priv, err := d2.GenerateKey()
	if err != nil {
		return err
	}
	vol, err := client.CreateVolume(ctx, "home", priv, d2.VolumeOptions{})
	if err != nil {
		return err
	}

	fmt.Println("writing /alice/notes/*.txt ...")
	if err := vol.MkdirAll(ctx, "/alice/notes"); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/alice/notes/day%d.txt", i)
		content := bytes.Repeat([]byte(fmt.Sprintf("entry %d. ", i)), 2000)
		if err := vol.WriteFile(ctx, path, content); err != nil {
			return err
		}
	}
	if err := vol.Sync(ctx); err != nil { // flush the 30s write-back cache
		return err
	}

	infos, err := vol.ReadDir(ctx, "/alice/notes")
	if err != nil {
		return err
	}
	fmt.Println("listing /alice/notes:")
	for _, fi := range infos {
		fmt.Printf("  %-12s %6d bytes\n", fi.Name, fi.Size)
	}

	data, err := vol.ReadFile(ctx, "/alice/notes/day3.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read day3.txt: %d bytes\n", len(data))

	fmt.Println("renaming /alice/notes -> /alice/archive (no data moves)...")
	if err := vol.Rename(ctx, "/alice/notes", "/alice/archive"); err != nil {
		return err
	}
	if err := vol.Sync(ctx); err != nil {
		return err
	}
	data, err = vol.ReadFile(ctx, "/alice/archive/day3.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read via new path: %d bytes\n", len(data))

	hits, misses := client.CacheStats()
	fmt.Printf("lookup cache: %d hits, %d misses (%.0f%% hit rate — defragmentation at work)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))
	return nil
}
