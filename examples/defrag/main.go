// Defrag: watch D2's load balancer at work (§6). A whole project tree is
// written into a fresh cluster — with locality-preserving keys everything
// initially lands on one node (the paper's worst case). The Karger–Ruhl
// balancer then relocates nodes into the hot arc through block pointers,
// and the example prints the per-node storage distribution as it
// equalizes while the data stays readable throughout.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	d2 "github.com/defragdht/d2"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func bar(bytes int64, max int64) string {
	if max == 0 {
		return ""
	}
	n := int(40 * bytes / max)
	return strings.Repeat("#", n)
}

func printLoads(label string, loads []int64) {
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	fmt.Println(label)
	for i, l := range loads {
		fmt.Printf("  node %2d %8d B %s\n", i, l, bar(l, max))
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 8, d2.NodeOptions{
		Replicas:             2,
		StabilizeInterval:    20 * time.Millisecond,
		RepairInterval:       100 * time.Millisecond,
		BalanceInterval:      200 * time.Millisecond, // paper: 10 min
		PointerStabilization: 400 * time.Millisecond, // paper: 1 h
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		return err
	}
	defer client.Close()

	_, priv, err := d2.GenerateKey()
	if err != nil {
		return err
	}
	vol, err := client.CreateVolume(ctx, "project", priv, d2.VolumeOptions{})
	if err != nil {
		return err
	}

	fmt.Println("writing a project tree (contiguous keys -> one hot node)...")
	var paths []string
	for d := 0; d < 4; d++ {
		dir := fmt.Sprintf("/src/mod%d", d)
		if err := vol.MkdirAll(ctx, dir); err != nil {
			return err
		}
		for f := 0; f < 10; f++ {
			path := fmt.Sprintf("%s/file%02d.go", dir, f)
			paths = append(paths, path)
			if err := vol.WriteFile(ctx, path, bytes.Repeat([]byte("code\n"), 4000)); err != nil {
				return err
			}
		}
	}
	if err := vol.Sync(ctx); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)
	printLoads("before balancing:", cluster.StoredBytes())

	fmt.Println("\nbalancing (Karger–Ruhl probes + block pointers)...")
	time.Sleep(4 * time.Second)
	printLoads("after balancing:", cluster.StoredBytes())

	// The tree stays fully readable across all the moves.
	for _, p := range paths {
		if _, err := vol.ReadFile(ctx, p); err != nil {
			return fmt.Errorf("read %s after balancing: %w", p, err)
		}
	}
	fmt.Printf("\nall %d files readable after rebalancing\n", len(paths))
	return nil
}
