module github.com/defragdht/d2

go 1.22
