#!/bin/sh
# verify.sh — repo verification tiers.
#
#   scripts/verify.sh        tier 1: build + full test suite
#   scripts/verify.sh lint   lint tier: go vet and a gofmt -l check
#   scripts/verify.sh race   tier 2: tier 1 plus lint and the race
#                            detector (catches data races in the parallel
#                            experiment pool and the obs hot paths;
#                            several times slower)
#   scripts/verify.sh bench  tier 3: tier 1 plus a one-iteration smoke run
#                            of the batched-read benchmark through the
#                            d2bench converter with an embedded metrics
#                            snapshot (checks the harness still works; not
#                            a performance measurement)
#   scripts/verify.sh trace  trace tier: the request-tracing tests under
#                            -race (TCP propagation, sink wraparound, the
#                            cross-node e2e assembly) plus the alloc guard
#                            proving the unsampled path stays
#                            zero-allocation
#   scripts/verify.sh wire   wire tier: the binary-codec golden/malformed
#                            tests and connection-pool robustness tests
#                            under -race, a short codec fuzz pass, and the
#                            alloc guard proving the TCP serve path
#                            (read→decode→handle→encode→writev) stays
#                            zero-allocation
#   scripts/verify.sh stream stream tier: the windowed-readahead pipeline
#                            tests under -race (backpressure, adaptive
#                            window, cancellation, the mid-stream
#                            node-kill e2e) plus the alloc gate proving
#                            segment buffers recycle through the pool
#                            (< 4 MB allocated per 8 MB streamed)
#   scripts/verify.sh obs    obs tier: the history/health/flight tests and
#                            the doctor + flight e2e under -race, a 10 s
#                            concurrent sampler soak, and the alloc gates
#                            proving the sampling tick and the health
#                            evaluation both stay zero-allocation
#   scripts/verify.sh census census tier: the placement-census tests under
#                            -race (golden layouts, merge associativity,
#                            the live balance-improves-locality e2e, the
#                            store ArcVisit walk), a 10 s sweep-during-
#                            churn soak, and the alloc gate proving the
#                            steady-state sweep tick stays zero-allocation
#   scripts/verify.sh disk   disk tier: the durable-engine tests under
#                            -race (recovery, checkpoint, torn tails, the
#                            kill -9 process e2e), a 10 s crash-loop soak
#                            (repeated recover cycles with checkpoints
#                            interleaved), a 10 s WAL-replay fuzz pass,
#                            and the alloc gate proving the indexed read
#                            path (ReadInto) stays zero-allocation
set -eu
cd "$(dirname "$0")/.."

lint() {
	echo "== lint: go vet ./... && gofmt -l ."
	go vet ./...
	fmt=$(gofmt -l .)
	if [ -n "$fmt" ]; then
		echo "gofmt: needs formatting:" >&2
		echo "$fmt" >&2
		exit 1
	fi
}

if [ "${1:-}" = "lint" ]; then
	lint
	exit 0
fi

if [ "${1:-}" = "trace" ]; then
	echo "== trace tier: tracing tests under -race"
	go test -race ./internal/obs/tracing/
	go test -race -run 'Trace' ./internal/obs/ ./internal/transport/ ./internal/node/ .
	echo "== trace tier: unsampled-path alloc guard (want 0 allocs/op)"
	out=$(go test -run '^$' -bench 'BenchmarkStartOpUnsampled' -benchmem \
		./internal/obs/tracing/ | tee /dev/stderr)
	echo "$out" | grep -q 'BenchmarkStartOpUnsampled.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "trace tier: unsampled StartOp allocates" >&2
		exit 1
	}
	exit 0
fi

if [ "${1:-}" = "wire" ]; then
	echo "== wire tier: codec + pool tests under -race"
	go test -race -run 'Codec|Pool|TCP' ./internal/transport/
	echo "== wire tier: codec fuzz (10s)"
	go test -run '^$' -fuzz 'FuzzCodecRoundTrip' -fuzztime 10s ./internal/transport/
	echo "== wire tier: TCP serve-path alloc guard (want 0 allocs/op)"
	out=$(go test -run '^$' -bench 'BenchmarkTCPServePath' -benchmem \
		./internal/transport/ | tee /dev/stderr)
	echo "$out" | grep -q 'BenchmarkTCPServePath.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "wire tier: TCP serve path allocates" >&2
		exit 1
	}
	exit 0
fi

if [ "${1:-}" = "stream" ]; then
	echo "== stream tier: streaming pipeline tests under -race"
	go test -race -run 'Stream|ReadCacheByteCap' ./internal/fs/ ./internal/node/ .
	echo "== stream tier: consume-path alloc gate (want < 4 MB/op for an 8 MB stream)"
	out=$(go test -run '^$' -bench 'BenchmarkStreamConsume' -benchmem \
		./internal/fs/ | tee /dev/stderr)
	echo "$out" | awk '
		/BenchmarkStreamConsume/ { for (i = 2; i <= NF; i++) if ($i == "B/op") bytes = $(i-1) }
		END {
			if (bytes == "" || bytes + 0 >= 4194304) {
				print "stream tier: consume path allocated " bytes " B/op (segment pool regression?)" > "/dev/stderr"
				exit 1
			}
		}'
	exit 0
fi

if [ "${1:-}" = "obs" ]; then
	echo "== obs tier: history/health/flight tests under -race"
	go test -race ./internal/obs/history/
	go test -race -run 'Health|Doctor|Flight|ExpositionStrict|AdminPlane' .
	echo "== obs tier: 10s concurrent sampler soak under -race"
	D2_HISTORY_SOAK=10s go test -race -run 'TestSamplerSoak' ./internal/obs/history/
	echo "== obs tier: tick + evaluation alloc gates (want 0 allocs/op)"
	out=$(go test -run '^$' -bench 'BenchmarkSamplerTick|BenchmarkHealthEvaluate' -benchmem \
		./internal/obs/history/ | tee /dev/stderr)
	echo "$out" | grep -q 'BenchmarkSamplerTick.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "obs tier: sampling tick allocates" >&2
		exit 1
	}
	echo "$out" | grep -q 'BenchmarkHealthEvaluate.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "obs tier: health evaluation allocates" >&2
		exit 1
	}
	exit 0
fi

if [ "${1:-}" = "census" ]; then
	echo "== census tier: census + store-walk tests under -race"
	go test -race ./internal/obs/census/
	go test -race -run 'TestArcVisit' ./internal/store/
	go test -race -run 'TestCensusLocalityImprovesAfterBalance' .
	echo "== census tier: 10s sweep-during-churn soak under -race"
	D2_CENSUS_SOAK=10s go test -race -run 'TestSweepDuringChurn' ./internal/obs/census/
	echo "== census tier: sweep-tick alloc gate (want 0 allocs/op)"
	out=$(go test -run '^$' -bench 'BenchmarkSweepTick' -benchmem \
		./internal/obs/census/ | tee /dev/stderr)
	echo "$out" | grep -q 'BenchmarkSweepTick.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "census tier: steady-state sweep tick allocates" >&2
		exit 1
	}
	exit 0
fi

if [ "${1:-}" = "disk" ]; then
	echo "== disk tier: durable-engine tests under -race (incl. kill -9 e2e)"
	go test -race ./internal/store/ ./internal/store/disk/
	go test -race -run 'TestDiskNodeCrashRecovery' .
	echo "== disk tier: 10s crash-loop soak"
	D2_DISK_SOAK=10s go test -race -run 'TestCrashLoop' ./internal/store/disk/
	echo "== disk tier: WAL replay fuzz (10s)"
	go test -run '^$' -fuzz 'FuzzWALReplay' -fuzztime 10s ./internal/store/disk/
	echo "== disk tier: indexed-read alloc gate (want 0 allocs/op)"
	out=$(go test -run '^$' -bench 'BenchmarkDiskReadInto' -benchmem \
		./internal/store/disk/ | tee /dev/stderr)
	echo "$out" | grep -q 'BenchmarkDiskReadInto.* 0 B/op[[:space:]]*0 allocs/op' || {
		echo "disk tier: indexed read path allocates" >&2
		exit 1
	}
	exit 0
fi

echo "== tier 1: go build ./... && go test ./..."
go build ./...
go test ./...

if [ "${1:-}" = "race" ]; then
	lint
	echo "== tier 2: go test -race (full suite, incl. internal/obs)"
	go test -race ./...
fi

if [ "${1:-}" = "bench" ]; then
	echo "== tier 3: BenchmarkBatchedRead smoke (1 iteration, mem only)"
	snap=$(mktemp)
	D2_BENCH_METRICS="$snap" go test -run '^$' \
		-bench 'BenchmarkBatchedRead/transport=mem' \
		-benchtime 1x ./internal/node |
		go run ./cmd/d2bench -metrics "$snap"
	rm -f "$snap"
fi
