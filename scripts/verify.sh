#!/bin/sh
# verify.sh — repo verification tiers.
#
#   scripts/verify.sh        tier 1: build + full test suite
#   scripts/verify.sh race   tier 2: tier 1 plus go vet and the race
#                            detector (catches data races in the parallel
#                            experiment pool; several times slower)
#   scripts/verify.sh bench  tier 3: tier 1 plus a one-iteration smoke run
#                            of the batched-read benchmark (checks the
#                            benchmark harness and the d2bench converter
#                            still work; not a performance measurement)
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./... && go test ./..."
go build ./...
go test ./...

if [ "${1:-}" = "race" ]; then
	echo "== tier 2: go vet ./... && go test -race ./..."
	go vet ./...
	go test -race ./...
fi

if [ "${1:-}" = "bench" ]; then
	echo "== tier 3: BenchmarkBatchedRead smoke (1 iteration, mem only)"
	go test -run '^$' -bench 'BenchmarkBatchedRead/transport=mem' \
		-benchtime 1x ./internal/node | go run ./cmd/d2bench
fi
