#!/bin/sh
# verify.sh — repo verification tiers.
#
#   scripts/verify.sh        tier 1: build + full test suite
#   scripts/verify.sh race   tier 2: tier 1 plus go vet and the race
#                            detector (catches data races in the parallel
#                            experiment pool; several times slower)
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./... && go test ./..."
go build ./...
go test ./...

if [ "${1:-}" = "race" ]; then
	echo "== tier 2: go vet ./... && go test -race ./..."
	go vet ./...
	go test -race ./...
fi
