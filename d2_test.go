package d2_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
	"github.com/defragdht/d2/internal/keys"
)

func fastOptions() d2.NodeOptions {
	return d2.NodeOptions{
		Replicas:          3,
		StabilizeInterval: 10 * time.Millisecond,
		RepairInterval:    30 * time.Millisecond,
		RemoveDelay:       50 * time.Millisecond,
	}
}

func TestClusterBlockRoundTrip(t *testing.T) {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 5, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	k := keys.HashString("facade-block")
	if err := client.Put(ctx, k, []byte("value")); err != nil {
		t.Fatal(err)
	}
	data, err := client.Get(ctx, k)
	if err != nil || string(data) != "value" {
		t.Fatalf("Get = (%q, %v)", data, err)
	}
}

func TestVolumeEndToEnd(t *testing.T) {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 6, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pub, priv, err := d2.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	vol, err := client.CreateVolume(ctx, "home", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.MkdirAll(ctx, "/alice/docs"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("d2!"), 6000) // > 1 block
	if err := vol.WriteFile(ctx, "/alice/docs/report.txt", content); err != nil {
		t.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// A second client opens the volume read-only and sees the data.
	client2, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	rvol, err := client2.OpenVolume(ctx, "home", pub, nil, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rvol.ReadFile(ctx, "/alice/docs/report.txt")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("reader content mismatch: %v", err)
	}
	if err := rvol.WriteFile(ctx, "/x", nil); !errors.Is(err, d2.ErrReadOnly) {
		t.Errorf("read-only volume accepted write: %v", err)
	}

	// Locality cash-out: reading the file again through a fresh client
	// should mostly hit the lookup cache after the first block.
	hits, misses := client2.CacheStats()
	if hits == 0 {
		t.Errorf("no cache hits while reading a multi-block file (hits=%d misses=%d)", hits, misses)
	}
}

func TestClusterSurvivesNodeCrash(t *testing.T) {
	ctx := context.Background()
	cluster, err := d2.NewCluster(ctx, 8, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var ks []d2.Key
	for i := 0; i < 30; i++ {
		k := keys.HashString(fmt.Sprintf("crash-%d", i))
		ks = append(ks, k)
		if err := client.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond) // replica repair tops up

	// Crash two nodes (r=3 tolerates it for every block).
	if err := cluster.CloseNode(0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CloseNode(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // ring heals

	for _, k := range ks {
		if _, err := client.Get(ctx, k); err != nil {
			t.Fatalf("block %s lost after crashes: %v", k.Short(), err)
		}
	}
}

func TestTCPNodeAndClient(t *testing.T) {
	ctx := context.Background()
	n1, err := d2.StartNode(ctx, "127.0.0.1:0", "", fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := d2.StartNode(ctx, "127.0.0.1:0", n1.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n3, err := d2.StartNode(ctx, "127.0.0.1:0", n1.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	time.Sleep(200 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{n1.Addr(), n2.Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pub, priv, _ := d2.GenerateKey()
	vol, err := client.CreateVolume(ctx, "tcpvol", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFile(ctx, "/over-tcp.txt", []byte("wire")); err != nil {
		t.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rvol, err := client.OpenVolume(ctx, "tcpvol", pub, nil, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rvol.ReadFile(ctx, "/over-tcp.txt")
	if err != nil || string(data) != "wire" {
		t.Fatalf("TCP volume read = (%q, %v)", data, err)
	}
}

// TestThousandNodeDeployment reproduces the paper's deployment scale: a
// 1,000-node D2 ring in one process (the paper used 50 Emulab machines
// hosting 1,000 virtual nodes, §9.1).
func TestThousandNodeDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-node deployment in -short mode")
	}
	ctx := context.Background()
	opts := fastOptions()
	opts.StabilizeInterval = 50 * time.Millisecond
	opts.RepairInterval = 500 * time.Millisecond
	cluster, err := d2.NewCluster(ctx, 1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.NumNodes() != 1000 {
		t.Fatalf("NumNodes = %d", cluster.NumNodes())
	}
	client, err := cluster.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pub, priv, _ := d2.GenerateKey()
	vol, err := client.CreateVolume(ctx, "bigring", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.MkdirAll(ctx, "/data"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/data/file%02d", i)
		if err := vol.WriteFile(ctx, path, bytes.Repeat([]byte{byte(i)}, 9000)); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	_ = pub
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/data/file%02d", i)
		data, err := vol.ReadFile(ctx, path)
		if err != nil || len(data) != 9000 || data[0] != byte(i) {
			t.Fatalf("read %s: len=%d err=%v", path, len(data), err)
		}
	}
}
