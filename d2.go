// Package d2 is a defragmented DHT-based distributed file system: blocks
// get locality-preserving keys (files of one directory occupy contiguous
// key ranges), clients cache node key ranges to skip lookups, and an
// active Karger–Ruhl load balancer with block pointers keeps storage
// balanced despite the non-uniform key distribution. It reproduces the
// system "D2" from Pang et al., Defragmenting DHT-based Distributed File
// Systems (ICDCS 2007).
//
// The public API has three layers:
//
//   - Cluster / Node: run DHT nodes, in-process (NewCluster) or over TCP
//     (StartNode / ConnectTCP).
//   - Client: block-level put/get/remove with a lookup cache (§5).
//   - Volume: the D2-FS file-system API (CreateVolume / OpenVolume) with
//     signed metadata, versioned blocks, inline small files, rename
//     without data movement, and a 30 s write-back cache (§3).
//
// The internal packages additionally contain the paper's full evaluation
// apparatus; see DESIGN.md and EXPERIMENTS.md.
package d2

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/defragdht/d2/internal/fs"
	"github.com/defragdht/d2/internal/keys"
	"github.com/defragdht/d2/internal/node"
	"github.com/defragdht/d2/internal/obs"
	"github.com/defragdht/d2/internal/obs/census"
	"github.com/defragdht/d2/internal/obs/history"
	"github.com/defragdht/d2/internal/obs/tracing"
	"github.com/defragdht/d2/internal/store/disk"
	"github.com/defragdht/d2/internal/transport"
)

// Key is a 64-byte DHT key (re-exported for block-level users).
type Key = keys.Key

// FileInfo describes a file or directory in a volume listing.
type FileInfo = fs.FileInfo

// Volume is a D2-FS file-system volume.
type Volume = fs.Volume

// VolumeOptions tunes volume behaviour.
type VolumeOptions = fs.Options

// File-system errors, re-exported for callers using errors.Is.
var (
	ErrNotExist = fs.ErrNotExist
	ErrExist    = fs.ErrExist
	ErrIsDir    = fs.ErrIsDir
	ErrNotDir   = fs.ErrNotDir
	ErrNotEmpty = fs.ErrNotEmpty
	ErrReadOnly = fs.ErrReadOnly
)

// GenerateKey creates a publisher signing key pair for volumes.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

// NodeOptions configures a DHT node.
type NodeOptions struct {
	// Replicas is r, copies per block (default 3).
	Replicas int
	// Balance enables the active load balancer with the given probe
	// interval (zero disables; the paper uses 10 min).
	BalanceInterval time.Duration
	// PointerStabilization is how long a load-balance pointer is held
	// before data moves (default 1 h).
	PointerStabilization time.Duration
	// RemoveDelay postpones block removals (default 30 s).
	RemoveDelay time.Duration
	// StabilizeInterval drives ring maintenance (default 500 ms).
	StabilizeInterval time.Duration
	// RepairInterval drives replica repair (default 5 s).
	RepairInterval time.Duration
	// Seed makes node identity deterministic (0 = random per node).
	Seed uint64
	// TraceSampleEvery keeps 1 in N requests' traces (0 disables head
	// sampling). Forced traces (d2ctl trace) work regardless.
	TraceSampleEvery int
	// TraceSlowThreshold force-keeps the trace of any operation at least
	// this slow, regardless of sampling (0 disables). Setting it makes
	// every operation provisionally traced, which costs allocations.
	TraceSlowThreshold time.Duration
	// HistoryInterval is the health engine's sampling period (default
	// 2 s). The engine always runs on TCP nodes; the interval only tunes
	// its resolution.
	HistoryInterval time.Duration
	// CensusInterval is the placement-census sweep period (default 5 s;
	// negative disables the census). The sweeper walks the store index
	// once per tick and publishes the d2_census_* gauges behind
	// /censusz, d2ctl frag/map, and the fragmentation health check.
	CensusInterval time.Duration
	// FlightDir enables the flight recorder: on health transitions, slow
	// requests, and peer deaths the node dumps a JSON diagnostic bundle
	// there. Empty disables dumps.
	FlightDir string
	// FlightMinGap rate-limits flight-recorder dumps (default 10 s).
	FlightMinGap time.Duration
	// DataDir enables the durable on-disk store: blocks are written to a
	// WAL and compacted into segment files there, and the node's ring
	// identity persists so a restart rejoins with its old arc and every
	// block it held. Empty keeps the in-memory store (a crash loses local
	// state; replicas regenerate it).
	DataDir string
	// Fsync selects when acknowledged writes reach stable storage:
	// "always" (group-committed fsync per write, the default),
	// "interval" (timer-driven), or "never" (OS-paced; Flush/Close still
	// sync). Ignored without DataDir.
	Fsync string
	// FsyncInterval is the timer period under Fsync "interval" (default
	// 100 ms).
	FsyncInterval time.Duration
	// CheckpointBytes is the WAL size that triggers background
	// compaction into a segment file (default 64 MiB).
	CheckpointBytes int64
}

// tracer builds the per-node (or per-client) request tracer. Every node
// gets one — with sampling off its cost is near zero — so TraceFetch and
// forced traces always work.
func (o NodeOptions) tracer(label string) *tracing.Tracer {
	return tracing.New(tracing.Config{
		Node:          label,
		SampleEvery:   o.TraceSampleEvery,
		SlowThreshold: o.TraceSlowThreshold,
	})
}

func (o NodeOptions) toConfig(seed uint64) node.Config {
	if o.Seed != 0 {
		seed = o.Seed
	}
	return node.Config{
		Replicas:             o.Replicas,
		BalanceInterval:      o.BalanceInterval,
		PointerStabilization: o.PointerStabilization,
		RemoveDelay:          o.RemoveDelay,
		StabilizeInterval:    o.StabilizeInterval,
		RepairInterval:       o.RepairInterval,
		CensusInterval:       o.CensusInterval,
		Seed:                 seed,
	}
}

// Cluster is an in-process DHT: every node runs in this process over an
// in-memory transport. It hosts the paper's 1,000-node deployment test on
// one machine and backs the examples.
type Cluster struct {
	net   *transport.MemNetwork
	nodes []*node.Node
	opts  NodeOptions
	reg   *obs.Registry
}

// NewCluster starts an in-process cluster of n nodes and waits for the
// ring to form.
func NewCluster(ctx context.Context, n int, opts NodeOptions) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("d2: cluster needs at least one node, got %d", n)
	}
	c := &Cluster{net: transport.NewMemNetwork(0), opts: opts, reg: obs.New()}
	// One RPCMetrics covers the whole in-process network (the cluster is
	// observed as a unit); each node still has its own registry.
	c.net.UseMetrics(transport.NewRPCMetrics(c.reg))
	for i := 0; i < n; i++ {
		if err := c.AddNode(ctx); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// AddNode starts one more node and joins it to the ring.
func (c *Cluster) AddNode(ctx context.Context) error {
	ep := c.net.NewEndpoint()
	cfg := c.opts.toConfig(uint64(len(c.nodes) + 1))
	cfg.Tracer = c.opts.tracer(string(ep.Addr()))
	nd := node.Start(ep, cfg)
	if len(c.nodes) > 0 {
		if err := nd.Join(ctx, c.nodes[0].Self().Addr); err != nil {
			_ = nd.Close()
			return fmt.Errorf("d2: add node: %w", err)
		}
	}
	c.nodes = append(c.nodes, nd)
	return nil
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Seeds returns a few node addresses for clients.
func (c *Cluster) Seeds() []transport.Addr {
	var out []transport.Addr
	for i, nd := range c.nodes {
		out = append(out, nd.Self().Addr)
		if i == 2 {
			break
		}
	}
	return out
}

// StoredBytes returns each node's stored volume, for balance inspection.
func (c *Cluster) StoredBytes() []int64 {
	out := make([]int64, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.StoredBytes()
	}
	return out
}

// CloseNode crashes the i-th node (for failure testing); the ring heals
// and replicas regenerate on the survivors.
func (c *Cluster) CloseNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("d2: no node %d", i)
	}
	return c.nodes[i].Close()
}

// Client creates a block-level client attached to the cluster.
func (c *Cluster) Client() (*Client, error) {
	replicas := c.opts.Replicas
	if replicas == 0 {
		replicas = 3
	}
	inner, err := node.NewClient(c.net.NewEndpoint(), node.ClientConfig{
		Seeds:    c.Seeds(),
		Replicas: replicas,
		Tracer:   c.opts.tracer("client"),
	})
	if err != nil {
		return nil, fmt.Errorf("d2: client: %w", err)
	}
	return &Client{inner: inner}, nil
}

// MetricsSnapshot freezes the cluster's shared transport metrics (RPC
// counts, payload bytes, latency histograms across all in-process nodes).
func (c *Cluster) MetricsSnapshot() obs.Snapshot { return c.reg.Snapshot() }

// Close shuts down every node.
func (c *Cluster) Close() error {
	var firstErr error
	for _, nd := range c.nodes {
		if err := nd.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Node is a standalone DHT node on a TCP transport, for multi-process
// deployments (cmd/d2node wraps it).
type Node struct {
	inner  *node.Node
	tr     *transport.TCPTransport
	reg    *obs.Registry
	events *obs.EventLog
	engine *history.Engine
	store  *disk.Store // nil when running in-memory
}

// StartNode boots a TCP node bound to bind ("127.0.0.1:0" for an
// ephemeral port). If seed is non-empty the node joins that ring.
func StartNode(ctx context.Context, bind, seed string, opts NodeOptions) (*Node, error) {
	tr, err := transport.ListenTCP(bind)
	if err != nil {
		return nil, fmt.Errorf("d2: start node: %w", err)
	}
	// One registry covers the node and its transport, so a single scrape
	// (StatsReq or the admin HTTP page) sees both layers.
	reg := obs.New()
	events := obs.NewEventLog(1024)
	events.CountDrops(reg.Counter("d2_events_dropped_total"))
	tr.UseMetrics(transport.NewRPCMetrics(reg))
	cfg := opts.toConfig(0)
	cfg.Metrics = reg
	cfg.Events = events
	cfg.Tracer = opts.tracer(string(tr.Addr()))

	// With a data directory the node runs on the durable engine: WAL +
	// segment files + persistent ring identity, scraped through the same
	// registry as everything else.
	var ds *disk.Store
	if opts.DataDir != "" {
		policy, err := disk.ParseFsyncPolicy(opts.Fsync)
		if err != nil {
			_ = tr.Close()
			return nil, fmt.Errorf("d2: start node: %w", err)
		}
		ds, err = disk.Open(opts.DataDir, disk.Options{
			Fsync:           policy,
			FsyncInterval:   opts.FsyncInterval,
			CheckpointBytes: opts.CheckpointBytes,
			Metrics:         reg,
		})
		if err != nil {
			_ = tr.Close()
			return nil, fmt.Errorf("d2: start node: %w", err)
		}
		cfg.Store = ds
	}

	// The health engine samples the shared registry and answers HealthReq
	// and /healthz. The node itself can't depend on the engine's
	// lifecycle, so the wiring lives here.
	engine := history.New(history.Config{
		Registry:     reg,
		Events:       events,
		Sink:         cfg.Tracer.Sink(),
		Node:         string(tr.Addr()),
		Interval:     opts.HistoryInterval,
		FlightDir:    opts.FlightDir,
		FlightMinGap: opts.FlightMinGap,
	})
	cfg.Health = engine
	// Flight-recorder triggers ride the event stream: the node logs
	// slow.request (with the trace when sampled) and ring.drop_succ as
	// they happen, and health.transition comes from the engine itself
	// (Tick triggers directly, so no hook needed for it here).
	events.Notify(func(ev obs.Event) {
		switch ev.Name {
		case "slow.request":
			engine.Trigger("slow_request", ev.Fields, ev.Trace)
		case "ring.drop_succ":
			engine.Trigger("peer_dead", ev.Fields, ev.Trace)
		}
	})

	nd := node.Start(tr, cfg)
	engine.Start()
	if seed != "" {
		if err := nd.Join(ctx, transport.Addr(seed)); err != nil {
			engine.Close()
			_ = nd.Close()
			if ds != nil {
				_ = ds.Close()
			}
			return nil, fmt.Errorf("d2: join %s: %w", seed, err)
		}
	}
	return &Node{inner: nd, tr: tr, reg: reg, events: events, engine: engine, store: ds}, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return string(n.inner.Self().Addr) }

// ID returns the node's ring position.
func (n *Node) ID() Key { return n.inner.Self().ID }

// StoredBytes returns the node's stored data volume.
func (n *Node) StoredBytes() int64 { return n.inner.StoredBytes() }

// Close stops the node. On a durable engine every acknowledged write is
// flushed and the store closed, so the next start recovers cleanly; on
// the in-memory store this is crash-style (replicas regenerate
// elsewhere).
func (n *Node) Close() error {
	if n.engine != nil {
		n.engine.Close()
	}
	err := n.inner.Close()
	if n.store != nil {
		if serr := n.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// RecoveryStats describes what a durable node rebuilt from its data
// directory at startup.
type RecoveryStats struct {
	// Blocks and Pointers are the live entries recovered.
	Blocks, Pointers int
	// Records is the total log records replayed.
	Records int
	// TornRecords counts records discarded for failing checksum or
	// structural checks (a torn WAL tail after a crash).
	TornRecords int
}

// Recovery reports what the node recovered from its data directory
// (zero value when running in-memory).
func (n *Node) Recovery() RecoveryStats {
	if n.store == nil {
		return RecoveryStats{}
	}
	r := n.store.Recovery()
	return RecoveryStats{
		Blocks:      r.Blocks,
		Pointers:    r.Pointers,
		Records:     r.Records,
		TornRecords: r.TornRecords,
	}
}

// Health returns the node's current overall health state ("ok",
// "degraded", "failing").
func (n *Node) Health() string { return n.engine.State().String() }

// AdminHandler returns the node's admin/debug plane: Prometheus /metrics,
// /statsz (JSON snapshot), /eventz (structured event log), /tracez
// (retained request traces), /healthz (the health engine's status
// document), /historyz (the retained sample ring and derived rates),
// /censusz (the placement census's latest report), /ringz (the node's
// ring view), and net/http/pprof under /debug/pprof/.
// Serve it on a loopback or otherwise-protected port; it is
// unauthenticated.
func (n *Node) AdminHandler() http.Handler {
	mux := obs.NewMux(n.reg, n.events, n.inner.Tracer().Sink())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := n.engine.Status()
		w.Header().Set("Content-Type", "application/json")
		if st.State == "failing" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/historyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.URL.Query().Get("view") == "rates" {
			_ = enc.Encode(n.engine.Rates())
			return
		}
		_ = enc.Encode(n.engine.DumpHistory(0))
	})
	mux.HandleFunc("/censusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		sw := n.inner.Census()
		if sw == nil {
			http.Error(w, `{"error":"census disabled"}`, http.StatusNotFound)
			return
		}
		_ = enc.Encode(sw.Snapshot())
	})
	mux.HandleFunc("/ringz", func(w http.ResponseWriter, r *http.Request) {
		pred, succs := n.inner.Neighbors()
		view := ringView{
			Self: peerView{ID: n.inner.Self().ID.Short(), Addr: string(n.inner.Self().Addr)},
			Pred: peerView{ID: pred.ID.Short(), Addr: string(pred.Addr)},
		}
		for _, s := range succs {
			view.Succs = append(view.Succs, peerView{ID: s.ID.Short(), Addr: string(s.Addr)})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
	return mux
}

// peerView and ringView shape /ringz output.
type peerView struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

type ringView struct {
	Self  peerView   `json:"self"`
	Pred  peerView   `json:"pred"`
	Succs []peerView `json:"succs"`
}

// Leave departs gracefully, handing blocks to their new owners first.
// A durable node that means to come back should Close instead: Leave
// gives the arc away, Close keeps it on disk for the restart.
func (n *Node) Leave(ctx context.Context) error {
	if n.engine != nil {
		n.engine.Close()
	}
	err := n.inner.Leave(ctx)
	if n.store != nil {
		if serr := n.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// ConnectTCP creates a client for a TCP cluster.
func ConnectTCP(seeds []string, replicas int) (*Client, error) {
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("d2: connect: %w", err)
	}
	addrs := make([]transport.Addr, len(seeds))
	for i, s := range seeds {
		addrs[i] = transport.Addr(s)
	}
	// The client's registry instruments its transport too, so one
	// snapshot covers cache behavior and per-RPC latency together.
	reg := obs.New()
	tr.UseMetrics(transport.NewRPCMetrics(reg))
	inner, err := node.NewClient(tr, node.ClientConfig{
		Seeds:    addrs,
		Replicas: replicas,
		Metrics:  reg,
		Tracer:   NodeOptions{}.tracer("client@" + string(tr.Addr())),
		Events:   obs.NewEventLog(256),
	})
	if err != nil {
		return nil, err
	}
	return &Client{inner: inner}, nil
}

// Client performs block operations against a D2 cluster, with the §5
// lookup cache. It also implements the volume block service.
type Client struct {
	inner *node.Client
}

// Put stores a block under key k with r replicas.
func (c *Client) Put(ctx context.Context, k Key, data []byte) error {
	return c.inner.Put(ctx, k, data)
}

// Get fetches the block under key k.
func (c *Client) Get(ctx context.Context, k Key) ([]byte, error) {
	return c.inner.Get(ctx, k)
}

// GetMany fetches a batch of blocks, grouping keys by owner so one RPC
// covers a whole run of contiguous keys (a D2 file) per owner. Found
// blocks map key → data; absent keys are omitted.
func (c *Client) GetMany(ctx context.Context, ks []Key) (map[Key][]byte, error) {
	return c.inner.GetMany(ctx, ks)
}

// GetSegment fetches a streaming-read segment: GetMany's owner-grouped
// batching plus per-key not-found retries tuned for consumers racing
// churn (a mid-stream node kill re-resolves the moved keys instead of
// dropping the stream). Volume.ReadStream uses it automatically.
func (c *Client) GetSegment(ctx context.Context, ks []Key) (map[Key][]byte, error) {
	return c.inner.GetSegment(ctx, ks)
}

// StreamStats reports a stream's TTFB, delivered bytes, stalls, and
// adaptive-window trajectory; ReadStream's reader implements StatStream.
type StreamStats = fs.StreamStats

// StatStream is the interface ReadStream's io.ReadCloser also satisfies.
type StatStream = fs.StatStream

// RangeEntry is one block returned by ReadRange, in key order.
type RangeEntry = node.RangeEntry

// ReadRange reads every block in the circular arc (lo, hi] — for
// locality-preserving keys, a whole file or directory subtree — issuing
// about one RPC per owning node.
func (c *Client) ReadRange(ctx context.Context, lo, hi Key) ([]RangeEntry, error) {
	return c.inner.ReadRange(ctx, lo, hi)
}

// RPCs returns the total RPCs this client has issued (reads, writes, and
// lookups), for measuring the batched read path.
func (c *Client) RPCs() uint64 { return c.inner.RPCs() }

// Remove deletes the block under key k (after the node-side delay).
func (c *Client) Remove(ctx context.Context, k Key) error {
	return c.inner.Remove(ctx, k)
}

// CacheStats returns the lookup cache's hit and miss counts.
func (c *Client) CacheStats() (hits, misses uint64) { return c.inner.Stats() }

// TraceSpan is an in-flight span handle returned by StartTrace.
type TraceSpan = tracing.ActiveSpan

// TraceRecord is one completed span, as fetched by FetchClusterTrace.
type TraceRecord = tracing.Span

// SetTraceSampling reconfigures the client's tracer at runtime: keep the
// trace of 1 in every `every` operations (0 disables head sampling), and
// always keep operations at least `slow` long (0 disables the slow-path
// escape hatch).
func (c *Client) SetTraceSampling(every int, slow time.Duration) {
	t := c.inner.Tracer()
	t.SetSampleEvery(every)
	t.SetSlowThreshold(slow)
}

// StartTrace opens a force-sampled root span: every client operation made
// with the returned context joins the trace regardless of sampling. End
// the span, then pass its TraceID to FetchClusterTrace to assemble the
// cross-node tree (d2ctl trace drives exactly this).
func (c *Client) StartTrace(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return c.inner.Tracer().ForceOp(ctx, name)
}

// FetchClusterTrace scrapes every ring member (plus the client's own
// sink) for spans of the given trace and returns them sorted by start
// time; feed the result to tracing.Assemble / WriteTree / WriteChromeTrace.
func (c *Client) FetchClusterTrace(ctx context.Context, trace uint64) ([]TraceRecord, error) {
	return c.inner.FetchClusterTrace(ctx, trace)
}

// TraceSpans snapshots the spans retained in the client's local sink
// (roots it sampled plus child spans of its own operations).
func (c *Client) TraceSpans() []TraceRecord { return c.inner.Tracer().Sink().Spans() }

// MetricsSnapshot freezes the client's own metrics (lookup cache, RPCs,
// per-RPC latency when on TCP).
func (c *Client) MetricsSnapshot() obs.Snapshot { return c.inner.Metrics().Snapshot() }

// NodeStats is one cluster node's scraped load and metrics state.
type NodeStats = node.NodeStats

// RingMember is one node discovered by a ring walk.
type RingMember = node.RingMember

// WalkRing enumerates the ring in successor order from the first
// reachable seed.
func (c *Client) WalkRing(ctx context.Context) ([]RingMember, error) {
	return c.inner.WalkRing(ctx)
}

// ClusterStats scrapes every ring member's metrics snapshot and load
// accounting (the d2ctl stats/top data source).
func (c *Client) ClusterStats(ctx context.Context) ([]NodeStats, error) {
	return c.inner.ClusterStats(ctx)
}

// NodeHealth is one ring member's scraped health state.
type NodeHealth = node.NodeHealth

// ClusterReport is the doctor's cluster-level health document.
type ClusterReport = history.ClusterReport

// ClusterHealth scrapes every ring member's health verdict, status, and
// derived rates (the d2ctl watch data source).
func (c *Client) ClusterHealth(ctx context.Context) ([]NodeHealth, error) {
	return c.inner.ClusterHealth(ctx)
}

// ClusterDoctor gathers cluster health and evaluates cluster-level
// checks — §10 load imbalance plus every member's failing or degraded
// check, naming the node responsible (the d2ctl doctor data source).
func (c *Client) ClusterDoctor(ctx context.Context) (ClusterReport, error) {
	return c.inner.ClusterReport(ctx)
}

// NodeCensus is one ring member's placement-census report.
type NodeCensus = node.NodeCensus

// CensusReport is a single node's placement census (blocks and bytes by
// role, per-volume run-length histograms).
type CensusReport = census.Report

// ClusterCensusReport is the merged cluster-wide census with the §5
// locality score, per-volume fragmentation ratios, §10 load imbalance,
// and replica-placement spread.
type ClusterCensusReport = census.Cluster

// ClusterCensus scrapes every ring member's placement census and merges
// the reports into cluster-wide placement metrics (the d2ctl frag/map
// data source).
func (c *Client) ClusterCensus(ctx context.Context) ([]NodeCensus, *ClusterCensusReport, error) {
	return c.inner.ClusterCensus(ctx)
}

// Close releases the client.
func (c *Client) Close() error { return c.inner.Close() }

// CreateVolume publishes a new file-system volume signed by priv. The
// volume reports block IO into the client's registry unless opts.Metrics
// overrides it.
func (c *Client) CreateVolume(ctx context.Context, name string, priv ed25519.PrivateKey, opts VolumeOptions) (*Volume, error) {
	if opts.Metrics == nil {
		opts.Metrics = c.inner.Metrics()
	}
	return fs.Create(ctx, c, name, priv, opts)
}

// OpenVolume attaches to an existing volume; pass priv to write, nil to
// read.
func (c *Client) OpenVolume(ctx context.Context, name string, pub ed25519.PublicKey, priv ed25519.PrivateKey, opts VolumeOptions) (*Volume, error) {
	if opts.Metrics == nil {
		opts.Metrics = c.inner.Metrics()
	}
	return fs.Open(ctx, c, name, pub, priv, opts)
}

var _ fs.BlockService = (*Client)(nil)
var _ fs.BatchBlockService = (*Client)(nil)
var _ fs.SegmentBlockService = (*Client)(nil)
