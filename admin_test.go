package d2_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	d2 "github.com/defragdht/d2"
)

// TestAdminPlane starts a 3-node TCP ring, drives traffic through a
// client, and checks every admin endpoint on each node.
func TestAdminPlane(t *testing.T) {
	ctx := context.Background()
	n1, err := d2.StartNode(ctx, "127.0.0.1:0", "", fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := d2.StartNode(ctx, "127.0.0.1:0", n1.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n3, err := d2.StartNode(ctx, "127.0.0.1:0", n1.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	time.Sleep(200 * time.Millisecond)

	client, err := d2.ConnectTCP([]string{n1.Addr()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, priv, _ := d2.GenerateKey()
	vol, err := client.CreateVolume(ctx, "adminvol", priv, d2.VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFile(ctx, "/probe.txt", []byte("observable")); err != nil {
		t.Fatal(err)
	}
	if err := vol.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	for i, nd := range []*d2.Node{n1, n2, n3} {
		srv := httptest.NewServer(nd.AdminHandler())
		get := func(path string) (int, string) {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatalf("node %d GET %s: %v", i, path, err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(body)
		}

		code, body := get("/healthz")
		if code != 200 {
			t.Fatalf("node %d /healthz: code=%d body=%q", i, code, body)
		}
		var health struct {
			Node   string `json:"node"`
			State  string `json:"state"`
			Checks []struct {
				Name  string `json:"name"`
				State string `json:"state"`
			} `json:"checks"`
		}
		if err := json.Unmarshal([]byte(body), &health); err != nil {
			t.Fatalf("node %d /healthz not JSON: %v (%q)", i, err, body)
		}
		if health.Node != nd.Addr() || health.State == "" || len(health.Checks) == 0 {
			t.Fatalf("node %d /healthz incomplete: %+v", i, health)
		}
		if code, body := get("/historyz?view=rates"); code != 200 || !json.Valid([]byte(body)) {
			t.Fatalf("node %d /historyz: code=%d body=%q", i, code, body)
		}
		if code, body := get("/metrics"); code != 200 ||
			!strings.Contains(body, "d2_node_store_bytes") ||
			!strings.Contains(body, "d2_rpc_server_total") {
			t.Fatalf("node %d /metrics missing expected series (code=%d)", i, code)
		}
		if code, body := get("/statsz"); code != 200 || !json.Valid([]byte(body)) {
			t.Fatalf("node %d /statsz: code=%d valid=%v", i, code, json.Valid([]byte(body)))
		}
		code, body = get("/ringz")
		if code != 200 {
			t.Fatalf("node %d /ringz: code=%d", i, code)
		}
		var ring struct {
			Self  struct{ ID, Addr string }
			Succs []struct{ ID, Addr string }
		}
		if err := json.Unmarshal([]byte(body), &ring); err != nil {
			t.Fatalf("node %d /ringz: %v", i, err)
		}
		if ring.Self.Addr != nd.Addr() || len(ring.Succs) == 0 {
			t.Fatalf("node %d /ringz: self=%q succs=%d", i, ring.Self.Addr, len(ring.Succs))
		}
		if code, _ := get("/eventz"); code != 200 {
			t.Fatalf("node %d /eventz: code=%d", i, code)
		}
		if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
			t.Fatalf("node %d /debug/pprof/: code=%d", i, code)
		}
		srv.Close()
	}

	// The DHT scrape path must see all three nodes with traffic recorded.
	stats, err := client.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("ClusterStats returned %d nodes, want 3", len(stats))
	}
	var stored int64
	for _, ns := range stats {
		stored += ns.StoredBytes
	}
	if stored == 0 {
		t.Fatal("scraped cluster reports zero stored bytes after writes")
	}
}
