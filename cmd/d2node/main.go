// Command d2node runs one live D2 DHT node over TCP. Start a first node,
// then join more to it:
//
//	d2node -bind 127.0.0.1:7001 -admin 127.0.0.1:8001
//	d2node -bind 127.0.0.1:7002 -seed 127.0.0.1:7001
//	d2node -bind 127.0.0.1:7003 -seed 127.0.0.1:7001 -balance 10m
//
// The -admin address serves the observability plane: /metrics (Prometheus
// text), /statsz (JSON), /eventz, /tracez, /healthz (the health engine's
// status document), /historyz (retained metric samples and derived
// rates), /ringz, and /debug/pprof/. Pass -trace-sample / -trace-slow to
// retain request traces; "d2ctl trace <file>" assembles them across
// nodes. Pass -flight-dir to enable the flight recorder: on a health
// transition, a slow request, or a peer death the node dumps a JSON
// diagnostic bundle (health, rates, recent events, triggering spans)
// there. Use cmd/d2ctl to read and write blocks and volumes ("d2ctl
// stats"/"top" build cluster-wide metric views; "d2ctl watch"/"doctor"
// build cluster-wide health views).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	d2 "github.com/defragdht/d2"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "d2node:", err)
		os.Exit(1)
	}
}

func run() error {
	bind := flag.String("bind", "127.0.0.1:0", "listen address")
	seed := flag.String("seed", "", "address of a ring member to join (empty = new ring)")
	replicas := flag.Int("replicas", 3, "replicas per block (r)")
	balance := flag.Duration("balance", 0, "load-balance probe interval (0 = off; paper uses 10m)")
	pointerStab := flag.Duration("pointer-stab", time.Hour, "pointer stabilization time")
	removeDelay := flag.Duration("remove-delay", 30*time.Second, "block removal delay")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats print interval (0 = quiet)")
	admin := flag.String("admin", "", "admin/debug HTTP address (empty = off); serves /metrics, /statsz, /eventz, /tracez, /healthz, /ringz, /debug/pprof/")
	traceSample := flag.Int("trace-sample", 0, "keep 1 in N request traces (0 = off; forced traces always work)")
	traceSlow := flag.Duration("trace-slow", 0, "always keep traces of requests at least this slow (0 = off)")
	historyIv := flag.Duration("history-interval", 0, "health-engine sampling interval (0 = default 2s)")
	censusIv := flag.Duration("census-interval", 0, "placement-census sweep interval (0 = default 5s, negative = off)")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder diagnostic bundles (empty = off)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory; blocks and ring identity survive restarts)")
	fsync := flag.String("fsync", "always", "fsync policy with -data-dir: always (group commit), interval, never")
	fsyncIv := flag.Duration("fsync-interval", 0, "fsync timer period under -fsync interval (0 = default 100ms)")
	ckptBytes := flag.Int64("checkpoint-bytes", 0, "WAL size triggering background compaction (0 = default 64MiB)")
	flag.Parse()

	ctx := context.Background()
	nd, err := d2.StartNode(ctx, *bind, *seed, d2.NodeOptions{
		Replicas:             *replicas,
		BalanceInterval:      *balance,
		PointerStabilization: *pointerStab,
		RemoveDelay:          *removeDelay,
		TraceSampleEvery:     *traceSample,
		TraceSlowThreshold:   *traceSlow,
		HistoryInterval:      *historyIv,
		CensusInterval:       *censusIv,
		FlightDir:            *flightDir,
		DataDir:              *dataDir,
		Fsync:                *fsync,
		FsyncInterval:        *fsyncIv,
		CheckpointBytes:      *ckptBytes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("d2node listening on %s (id %s)\n", nd.Addr(), nd.ID().Short())
	if *dataDir != "" {
		rec := nd.Recovery()
		fmt.Printf("recovered %d blocks, %d pointers from %s (%d records replayed, %d torn)\n",
			rec.Blocks, rec.Pointers, *dataDir, rec.Records, rec.TornRecords)
	}

	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			_ = nd.Close()
			return fmt.Errorf("admin listen %s: %w", *admin, err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, nd.AdminHandler()) }()
		fmt.Printf("admin plane on http://%s/\n", ln.Addr())
	}

	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-t.C:
					fmt.Printf("stored: %d bytes\n", nd.StoredBytes())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopStats)
	if *dataDir != "" {
		// A durable node keeps its arc: flush, close, and let the restart
		// rejoin at the same ring position with its blocks intact.
		fmt.Println("flushing and shutting down (data kept in", *dataDir+")...")
		return nd.Close()
	}
	fmt.Println("leaving ring...")
	leaveCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	return nd.Leave(leaveCtx)
}
